(* Seed-replayable QCheck runner for the property suites.

   Every property executable draws its generator randomness from one
   seed: $QCHECK_SEED when set, otherwise a fresh random seed.  On any
   property failure the seed and a one-line replay command are printed,
   so counterexamples (already minimized by the arbitraries' shrinkers)
   are reproducible across machines and CI runs.  $QCHECK_LONG switches
   the properties to their long mode (QCheck's ~long_factor). *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> i
    | None -> failwith "QCHECK_SEED must be an integer")
  | None ->
    Random.self_init ();
    Random.int 1_000_000_000

let long = Sys.getenv_opt "QCHECK_LONG" <> None

let rand () = Random.State.make [| seed |]

let replay_hint () =
  Printf.sprintf "QCHECK_SEED=%d dune exec test/%s" seed
    (Filename.basename Sys.executable_name)

let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~long ~rand:(rand ()) test
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.eprintf "\n[qcheck] property failed under seed %d\n[qcheck] replay: %s\n%!"
          seed (replay_hint ());
        raise e )

let to_alcotest_list tests = List.map to_alcotest tests
