(* Random-pipeline generators shared by the property-based suites
   (test_random_pipelines, test_plan_check): random stencil stages,
   restrictions, interpolations and pointwise combinations over a random
   DAG, plus the harness that compiles and runs one.  No top-level
   effects — this module is linked into every test executable. *)

open Repro_ir
open Repro_core
module Grid = Repro_grid.Grid

(* A generated stage description.  Producers are indices into the list of
   previously created stages (0 = the input grid). *)
type gen_stage =
  | G_stencil of int * float array * float  (* producer, 3x3 weights, factor *)
  | G_restrict of int
  | G_interp of int
  | G_combine of int * int * float  (* a + c*b, at equal scales *)
  | G_chain of int * int  (* tstencil of given steps on producer *)

let gen_pipeline_of (stages : gen_stage list) =
  let n_sym = Sizeexpr.add_const Sizeexpr.n (-1) in
  let ctx = Dsl.create "random" in
  let input = Dsl.grid ctx "IN" ~dims:2 ~sizes:[| n_sym; n_sym |] in
  (* track created stages with their scale level (0 = finest) *)
  let created = ref [ (input, 0) ] in
  let get i = List.nth (List.rev !created) (i mod List.length !created) in
  let counter = ref 0 in
  let name tag =
    incr counter;
    Printf.sprintf "%s%d" tag !counter
  in
  List.iter
    (fun g ->
      let add f lvl = created := (f, lvl) :: !created in
      match g with
      | G_stencil (p, w, factor) ->
        let src, lvl = get p in
        let weights =
          Weights.w2
            [| [| w.(0); w.(1); w.(2) |];
               [| w.(3); w.(4); w.(5) |];
               [| w.(6); w.(7); w.(8) |] |]
        in
        (* all-zero weight tensors are rejected by the Dsl; perturb *)
        let weights =
          if Array.for_all (fun x -> x = 0.0) w then
            Weights.w2 [| [| 0.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 0. |] |]
          else weights
        in
        add
          (Dsl.func ctx ~name:(name "st") ~sizes:src.Func.sizes
             (Dsl.stencil src weights ~factor:(Expr.const factor) ()))
          lvl
      | G_restrict p ->
        let src, lvl = get p in
        (* keep the coarsest size sane: interior >= 3 at n = 32 *)
        if lvl < 2 then
          add (Dsl.restrict_fn ctx ~name:(name "rs") ~input:src ()) (lvl + 1)
      | G_interp p ->
        let src, lvl = get p in
        if lvl > 0 then
          add (Dsl.interp_fn ctx ~name:(name "ip") ~input:src ()) (lvl - 1)
      | G_combine (p, q, c) ->
        let a, la = get p in
        let b, lb = get q in
        if la = lb then
          add
            (Dsl.func ctx ~name:(name "cb") ~sizes:a.Func.sizes
               Expr.(
                 load a.Func.id [| 0; 0 |]
                 + (const c * load b.Func.id [| 0; 0 |])))
            la
      | G_chain (p, steps) ->
        let src, lvl = get p in
        let steps = 1 + (abs steps mod 4) in
        add
          (Dsl.tstencil ctx ~name:(name "ch") ~steps ~init:src (fun ~v ->
               Expr.(
                 (const 0.6 * load v.Func.id [| 0; 0 |])
                 + (const 0.1
                    * (load v.Func.id [| -1; 0 |] + load v.Func.id [| 1; 0 |]
                       + load v.Func.id [| 0; -1 |]
                       + load v.Func.id [| 0; 1 |])))))
          lvl)
    stages;
  (* output: the last created non-input stage, or a trivial one *)
  let out =
    match !created with
    | (f, _) :: _ when not (Func.is_input f) -> f
    | _ ->
      Dsl.func ctx ~name:"out" ~sizes:[| n_sym; n_sym |]
        (Expr.load input.Func.id [| 0; 0 |])
  in
  (Dsl.finish ctx ~outputs:[ out ], input.Func.id, out.Func.id)

let stage_gen =
  QCheck.Gen.(
    let weight = float_range (-1.0) 1.0 in
    frequency
      [ (4, map2 (fun p (w, f) -> G_stencil (p, w, f))
             (int_range 0 10)
             (pair (array_repeat 9 weight) (float_range 0.1 1.0)));
        (2, map (fun p -> G_restrict p) (int_range 0 10));
        (2, map (fun p -> G_interp p) (int_range 0 10));
        (2, map2 (fun (p, q) c -> G_combine (p, q, c))
             (pair (int_range 0 10) (int_range 0 10))
             (float_range (-1.0) 1.0));
        (1, map2 (fun p s -> G_chain (p, s)) (int_range 0 10) (int_range 1 4)) ])

let print_stage = function
  | G_stencil (p, w, f) ->
    Printf.sprintf "G_stencil (%d, [|%s|], %g)" p
      (String.concat "; "
         (Array.to_list (Array.map (Printf.sprintf "%g") w)))
      f
  | G_restrict p -> Printf.sprintf "G_restrict %d" p
  | G_interp p -> Printf.sprintf "G_interp %d" p
  | G_combine (p, q, c) -> Printf.sprintf "G_combine (%d, %d, %g)" p q c
  | G_chain (p, s) -> Printf.sprintf "G_chain (%d, %d)" p s

let print_stages stages =
  "[ " ^ String.concat ";\n  " (List.map print_stage stages) ^ " ]"

(* Per-stage shrinker: pull producers to 0, zero weights one at a time,
   simplify coefficients and chain lengths.  Every step moves strictly
   toward a fixed point, so combined with [Shrink.list] (which drops
   stages) counterexamples arrive as short lists of trivial stages. *)
let shrink_stage st yield =
  match st with
  | G_stencil (p, w, f) ->
    if p <> 0 then yield (G_stencil (0, w, f));
    Array.iteri
      (fun i x ->
        if x <> 0.0 then begin
          let w' = Array.copy w in
          w'.(i) <- 0.0;
          yield (G_stencil (p, w', f))
        end)
      w;
    if f <> 1.0 then yield (G_stencil (p, w, 1.0))
  | G_restrict p -> if p <> 0 then yield (G_restrict 0)
  | G_interp p -> if p <> 0 then yield (G_interp 0)
  | G_combine (p, q, c) ->
    if p <> 0 then yield (G_combine (0, q, c));
    if q <> 0 then yield (G_combine (p, 0, c));
    if c <> 0.0 then yield (G_combine (p, q, 0.0))
  | G_chain (p, s) ->
    if p <> 0 then yield (G_chain (0, s));
    if s <> 1 then yield (G_chain (p, 1))

let pipelines_arb =
  QCheck.make ~print:print_stages
    ~shrink:(QCheck.Shrink.list ~shrink:shrink_stage)
    QCheck.Gen.(list_size (int_range 1 12) stage_gen)

let build_plan (p, _in_id, _out_id) ~opts ~n =
  Plan.build p ~opts ~n ~params:(fun s -> invalid_arg s)

(* Executes an already-built plan for the generated pipeline — the
   governance suite uses this to run individual ladder rungs. *)
let run_plan (p, in_id, out_id) plan ~n =
  let f = Pipeline.func p out_id in
  let out_n = Sizeexpr.eval ~n f.Func.sizes.(0) in
  let input = Grid.interior ~dims:2 (n - 1) in
  Grid.fill_interior input ~f:(fun idx ->
      sin (float_of_int ((idx.(0) * 7) + (idx.(1) * 3)) /. 5.0));
  let out = Grid.interior ~dims:2 out_n in
  Exec.with_runtime (fun rt ->
      Exec.run plan rt ~inputs:[ (in_id, input) ] ~outputs:[ (out_id, out) ]);
  out

let run_pipeline t ~opts ~n = run_plan t (build_plan t ~opts ~n) ~n
