(* Native backend: differential correctness against the interpreter,
   cache-key determinism (one compile, then memory and disk hits), torn
   .so rejection, compile-failure fallback accounting, and a
   seed-replayable property running random pipelines through both
   backends.  Every test needing a real compiler skips visibly when none
   is installed. *)

open Repro_mg
open Repro_core
module Grid = Repro_grid.Grid
module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Json = Repro_runtime.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let c_compiles = Telemetry.counter "native.compiles"
let c_cache_hits = Telemetry.counter "native.cache_hits"
let c_cache_rejects = Telemetry.counter "native.cache_rejects"
let c_kernel_calls = Telemetry.counter "native.kernel_calls"
let c_fallbacks = Telemetry.counter "native.fallbacks"

(* Bracket a test with an isolated, empty kernel cache and live
   counters: interned kernels are dropped on both sides so hit/compile
   accounting starts from zero, and nothing leaks into the shared
   POLYMG_NATIVE_CACHE location other tests or users may rely on. *)
let with_native_env ?(tag = "t") f () =
  match Native.cc () with
  | None ->
    Printf.printf "native: skipped (no C compiler found)\n%!";
    Alcotest.skip ()
  | Some compiler ->
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "polymg-native-test-%d-%s" (Unix.getpid ()) tag)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    Native.unload_all ();
    Native.set_cache_dir (Some dir);
    Telemetry.set_enabled true;
    Telemetry.reset ();
    Fun.protect
      ~finally:(fun () ->
        Native.unload_all ();
        Native.set_cache_dir None;
        Native.set_compiler_override None;
        Telemetry.set_enabled false;
        Telemetry.reset ())
      (fun () -> f ~compiler ~dir)

(* One V-cycle through both backends on the same problem; the budget is
   the conformance vs_c budget (TESTING.md). *)
let budget = 1e-10

let cycle_plan ?(opts = Options.opt_plus) ~n () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  Solver.polymg_plan cfg ~n ~opts

let run_both plan kernel ~n =
  let pipeline = plan.Plan.pipeline in
  let vin = Cycle.input_v pipeline in
  let fin = Cycle.input_f pipeline in
  let out_id = Cycle.output pipeline in
  let problem = Problem.poisson ~dims:2 ~n in
  let ext = Grid.extents problem.Problem.v in
  let out_i = Grid.create ext in
  let out_n = Grid.create ext in
  Exec.with_runtime (fun rt ->
      Exec.run plan rt
        ~inputs:[ (vin, problem.Problem.v); (fin, problem.Problem.f) ]
        ~outputs:[ (out_id, out_i) ]);
  Native.run kernel
    ~inputs:[ (vin, problem.Problem.v); (fin, problem.Problem.f) ]
    ~outputs:[ (out_id, out_n) ];
  Grid.max_abs_diff out_i out_n

let load_exn plan =
  match Native.load plan with
  | Ok k -> k
  | Error e -> Alcotest.failf "Native.load: %s" e

(* -- direct differential correctness ----------------------------------- *)

let test_matches_interp =
  with_native_env ~tag:"diff" (fun ~compiler:_ ~dir:_ ->
      let plan = cycle_plan ~n:32 () in
      let k = load_exn plan in
      let d = run_both plan k ~n:32 in
      check_bool
        (Printf.sprintf "native within %g of interpreter (got %g)" budget d)
        true (d < budget);
      check_bool "kernel calls counted" true
        (Telemetry.value c_kernel_calls >= 1))

(* -- cache-key determinism: one compile, then memory and disk hits ----- *)

let test_cache_determinism =
  with_native_env ~tag:"cache" (fun ~compiler ~dir ->
      let plan = cycle_plan ~n:32 () in
      check_bool "cache key is deterministic" true
        (Native.cache_key plan ~compiler = Native.cache_key plan ~compiler);
      let k1 = load_exn plan in
      check_int "first load compiles" 1 (Telemetry.value c_compiles);
      check_int "first load is no hit" 0 (Telemetry.value c_cache_hits);
      let k2 = load_exn plan in
      check_int "second load is a memory hit" 1
        (Telemetry.value c_cache_hits);
      check_int "no recompile on memory hit" 1 (Telemetry.value c_compiles);
      check_bool "interned: same kernel object" true (k1 == k2);
      (* a fresh process is simulated by dropping the interned table:
         the third load must come from the disk cache, still without
         compiling *)
      Native.unload_all ();
      let k3 = load_exn plan in
      check_int "third load is a disk hit" 2 (Telemetry.value c_cache_hits);
      check_int "no recompile on disk hit" 1 (Telemetry.value c_compiles);
      check_bool "artifact lives in the isolated cache" true
        (String.length (Native.so_path k3) > String.length dir
         && String.sub (Native.so_path k3) 0 (String.length dir) = dir);
      let d = run_both plan k3 ~n:32 in
      check_bool "disk-cached kernel still correct" true (d < budget))

(* -- torn/corrupt .so: rejected by the CRC sidecar, recompiled --------- *)

let test_torn_so_rejected =
  with_native_env ~tag:"torn" (fun ~compiler:_ ~dir:_ ->
      let plan = cycle_plan ~n:32 () in
      let k = load_exn plan in
      let so = Native.so_path k in
      Native.unload_all ();
      (* overwrite the artifact's head in place: same size, wrong
         bytes — exactly what a torn write leaves behind *)
      let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 so in
      output_string oc "GARBAGE!";
      close_out oc;
      let k2 = load_exn plan in
      check_int "corrupt artifact rejected" 1
        (Telemetry.value c_cache_rejects);
      check_int "rejection forces a recompile" 2
        (Telemetry.value c_compiles);
      let d = run_both plan k2 ~n:32 in
      check_bool "recompiled kernel correct" true (d < budget))

(* -- compile failure: forced Native errors, Auto falls back loudly ----- *)

let test_compile_failure_fallback =
  with_native_env ~tag:"fail" (fun ~compiler:_ ~dir:_ ->
      Native.set_compiler_override (Some "/bin/false");
      let incident_dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "polymg-native-incidents-%d" (Unix.getpid ()))
      in
      if Sys.file_exists incident_dir then
        Array.iter
          (fun f -> Sys.remove (Filename.concat incident_dir f))
          (Sys.readdir incident_dir);
      Flightrec.reset ();
      Flightrec.set_enabled true;
      Flightrec.set_incident_dir (Some incident_dir);
      Fun.protect
        ~finally:(fun () ->
          Flightrec.set_incident_dir None;
          Flightrec.set_enabled false;
          Flightrec.reset ())
        (fun () ->
          let n = 32 in
          (* forced native: a compile failure must be an error, not a
             silent downgrade *)
          let forced =
            cycle_plan ~opts:{ Options.opt_plus with Options.backend = Options.Native }
              ~n ()
          in
          Exec.with_runtime (fun rt ->
              try
                let (_ : Solver.stepper) = Solver.plan_stepper forced ~rt in
                Alcotest.fail "forced Native must raise Unavailable"
              with Native.Unavailable _ -> ());
          (* Auto: same failure falls back to the interpreter, counted
             and filed as an incident *)
          let auto =
            cycle_plan ~opts:{ Options.opt_plus with Options.backend = Options.Auto }
              ~n ()
          in
          let problem = Problem.poisson ~dims:2 ~n in
          let r =
            Exec.with_runtime (fun rt ->
                Solver.iterate
                  (Solver.plan_stepper auto ~rt)
                  ~problem ~cycles:1 ())
          in
          check_bool "fallback solve converges like the interpreter" true
            (match r.Solver.stats with
             | [ s ] -> Float.is_finite s.Solver.residual
             | _ -> false);
          check_bool "fallback counted" true
            (Telemetry.value c_fallbacks >= 1);
          let incidents = Sys.readdir incident_dir in
          check_bool "incident filed" true (Array.length incidents > 0);
          let read path =
            let ic = open_in_bin path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          let kind_of f =
            match Json.parse (read (Filename.concat incident_dir f)) with
            | Ok doc -> Option.bind (Json.member "kind" doc) Json.to_str
            | Error _ -> None
          in
          check_bool "incident kind is native-fallback" true
            (Array.exists
               (fun f -> kind_of f = Some "native-fallback")
               incidents)))

(* -- property: random pipelines agree across backends ------------------ *)

let prop_native_matches_interp =
  QCheck.Test.make ~name:"random pipelines: native matches interpreter"
    ~count:25 Pipeline_gen.pipelines_arb
    (fun stages ->
      let built = Pipeline_gen.gen_pipeline_of stages in
      let n = 32 in
      let plan = Pipeline_gen.build_plan built ~opts:Options.opt_plus ~n in
      match Native.load plan with
      | Error _ ->
        (* unemittable plan (or no compiler): vacuously true — the
           backend refused, it did not miscompute *)
        true
      | Ok kernel ->
        let (p, in_id, out_id) = built in
        let f = Repro_ir.Pipeline.func p out_id in
        let out_n = Repro_ir.Sizeexpr.eval ~n f.Repro_ir.Func.sizes.(0) in
        let input = Grid.interior ~dims:2 (n - 1) in
        Grid.fill_interior input ~f:(fun idx ->
            sin (float_of_int ((idx.(0) * 7) + (idx.(1) * 3)) /. 5.0));
        let reference = Pipeline_gen.run_plan built plan ~n in
        let out = Grid.interior ~dims:2 out_n in
        Native.run kernel ~inputs:[ (in_id, input) ]
          ~outputs:[ (out_id, out) ];
        Grid.max_abs_diff reference out < budget)

let properties =
  List.map
    (fun (name, speed, run) ->
      (name, speed, with_native_env ~tag:"qc" (fun ~compiler:_ ~dir:_ -> run ())))
    (Qc_replay.to_alcotest_list [ prop_native_matches_interp ])

let () =
  Alcotest.run "native"
    [ ( "backend",
        [ Alcotest.test_case "matches interpreter" `Quick test_matches_interp;
          Alcotest.test_case "cache determinism" `Quick
            test_cache_determinism;
          Alcotest.test_case "torn .so rejected" `Quick test_torn_so_rejected;
          Alcotest.test_case "compile failure falls back" `Quick
            test_compile_failure_fallback ] );
      ("properties", properties) ]
