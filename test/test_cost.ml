(* Cost model: hand-computed bytes/FLOPs for a two-stage 2-D Jacobi
   pipeline must match Cost.of_plan exactly under both storage regimes
   (naive per-stage arrays vs fused scratch), and modelled DRAM traffic
   must never increase when the optimizations are enabled.

   Hand derivation, interior m×m with m = n, halo ring h = n+2:
     each Jacobi stage linearizes to 6 terms (4 neighbours + centre +
     rhs), i.e. 12 FLOPs/point; its 5-point read footprint over the
     interior is h², the rhs (centre-only) footprint is m².

     naive (2 groups, arrays only):
       reads  = 2 stages × 8(h² + m²)      writes = 2 × 8m²
       flops  = 2 × 12m²                   scratch = 0
     opt, single tile (1 group, T1 in scratch):
       T1 computes the halo too (h² points) into scratch; T2 reads it
       back from scratch and writes the only live-out:
       reads  = 8(h² + 2m²)                writes = 8m²
       flops  = 12(h² + m²)                scratch = 2 × 8h² *)

open Repro_ir
open Repro_core

let jac src f =
  Expr.(
    (const 0.25 * load src.Func.id [| -1; 0 |])
    + (const 0.25 * load src.Func.id [| 1; 0 |])
    + (const 0.25 * load src.Func.id [| 0; -1 |])
    + (const 0.25 * load src.Func.id [| 0; 1 |])
    + (const 0.2 * load src.Func.id [| 0; 0 |])
    + (const 0.05 * load f.Func.id [| 0; 0 |]))

let jacobi2 () =
  let s = Sizeexpr.n in
  let ctx = Dsl.create "jac2" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:[| s; s |] in
  let f = Dsl.grid ctx "F" ~dims:2 ~sizes:[| s; s |] in
  let t1 = Dsl.func ctx ~name:"T1" ~sizes:[| s; s |] (jac v f) in
  let t2 = Dsl.func ctx ~name:"T2" ~sizes:[| s; s |] (jac t1 f) in
  Dsl.finish ctx ~outputs:[ t2 ]

let cost_of ~opts ~n p = Cost.of_plan (Plan.build p ~opts ~n ~params:invalid_arg)

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let test_naive_exact () =
  let n = 16 in
  let m2 = n * n and h2 = (n + 2) * (n + 2) in
  let c = cost_of ~opts:Options.naive ~n (jacobi2 ()) in
  check "stages" 2 (Array.length c.Cost.stages);
  Array.iter
    (fun (s : Cost.stage) ->
      checkf (s.Cost.name ^ " flops/pt") 12.0 s.Cost.flops_per_point;
      check (s.Cost.name ^ " points") m2 s.Cost.points;
      check (s.Cost.name ^ " dram read") (8 * (h2 + m2)) s.Cost.dram_read;
      check (s.Cost.name ^ " dram write") (8 * m2) s.Cost.dram_write;
      check (s.Cost.name ^ " scratch") 0
        (s.Cost.scratch_read + s.Cost.scratch_write))
    c.Cost.stages;
  check "total dram read" (2 * 8 * (h2 + m2)) c.Cost.dram_read;
  check "total dram write" (2 * 8 * m2) c.Cost.dram_write;
  check "total scratch" 0 c.Cost.scratch_traffic;
  checkf "total flops" (float_of_int (24 * m2)) c.Cost.flops;
  checkf "intensity"
    (float_of_int (24 * m2) /. float_of_int ((2 * 8 * (h2 + m2)) + (2 * 8 * m2)))
    c.Cost.intensity

let test_opt_exact () =
  let n = 16 in
  let m2 = n * n and h2 = (n + 2) * (n + 2) in
  let c = cost_of ~opts:Options.opt ~n (jacobi2 ()) in
  check "one fused group" 1 (Array.length c.Cost.groups);
  check "stages" 2 (Array.length c.Cost.stages);
  let t1 = c.Cost.stages.(0) and t2 = c.Cost.stages.(1) in
  Alcotest.(check string) "order" "T1" t1.Cost.name;
  (* T1: computes the halo redundantly into scratch, reads V + rhs *)
  check "T1 points (halo included)" h2 t1.Cost.points;
  check "T1 domain" m2 t1.Cost.domain;
  check "T1 dram read" (8 * (h2 + m2)) t1.Cost.dram_read;
  check "T1 dram write" 0 t1.Cost.dram_write;
  check "T1 scratch write" (8 * h2) t1.Cost.scratch_write;
  (* T2: reads T1 back through scratch, writes the only live-out *)
  check "T2 scratch read" (8 * h2) t2.Cost.scratch_read;
  check "T2 dram read (rhs only)" (8 * m2) t2.Cost.dram_read;
  check "T2 dram write" (8 * m2) t2.Cost.dram_write;
  checkf "flops include redundancy"
    (float_of_int (12 * (h2 + m2)))
    c.Cost.flops;
  checkf "useful flops" (float_of_int (24 * m2)) c.Cost.useful_flops;
  check "total scratch" (2 * 8 * h2) c.Cost.scratch_traffic;
  (* naive vs opt: fusing away T1's array removes exactly one h² read
     and one m² write of DRAM traffic *)
  let cn = cost_of ~opts:Options.naive ~n (jacobi2 ()) in
  check "read saving" (8 * h2) (cn.Cost.dram_read - c.Cost.dram_read);
  check "write saving" (8 * m2) (cn.Cost.dram_write - c.Cost.dram_write)

(* Reuse can only re-route traffic off DRAM (or drop whole arrays), never
   add bytes: for any generated pipeline, the modelled DRAM traffic of an
   optimized plan is bounded by the naive plan's. *)
let prop_reuse_never_increases_traffic =
  QCheck.Test.make ~count:60 ~name:"optimized DRAM traffic <= naive"
    Pipeline_gen.pipelines_arb (fun stages ->
      let p, _, _ = Pipeline_gen.gen_pipeline_of stages in
      let n = 32 in
      let naive = cost_of ~opts:Options.naive ~n p in
      List.for_all
        (fun opts ->
          let c = cost_of ~opts ~n p in
          Cost.total_bytes c <= Cost.total_bytes naive
          && c.Cost.dram_read <= naive.Cost.dram_read
          && c.Cost.dram_write <= naive.Cost.dram_write)
        [ Options.opt; Options.opt_plus ])

let () =
  Alcotest.run "cost"
    [ ( "hand-computed",
        [ Alcotest.test_case "2-stage Jacobi, naive storage" `Quick
            test_naive_exact;
          Alcotest.test_case "2-stage Jacobi, fused scratch storage" `Quick
            test_opt_exact ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_reuse_never_increases_traffic ] )
    ]
