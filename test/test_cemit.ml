open Repro_core
open Repro_mg

let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let plan_of ?(opts = Options.opt_plus) ?(n = 32) cfg =
  Plan.build (Cycle.build cfg) ~opts ~n ~params:(Cycle.params cfg ~n)

let vcfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4)

let test_emit_markers () =
  let s = C_emit.to_string (plan_of vcfg) in
  List.iter
    (fun marker ->
      check_bool ("contains " ^ marker) true (contains s marker))
    [ "pool_allocate"; "pool_deallocate"; "#pragma omp parallel for";
      "collapse(2)"; "double _buf_"; "users:"; "#pragma ivdep";
      "void pipeline_V_2D_4_4_4" ]

let test_emit_scratch_reuse_visible () =
  (* with scratch reuse, some buffer serves several smoothing steps *)
  let s = C_emit.to_string (plan_of vcfg) in
  check_bool "a shared scratchpad exists" true
    (contains s "_t0; " || contains s "_t1; ")

let test_emit_diamond_marker () =
  let s = C_emit.to_string (plan_of ~opts:Options.dtile_opt_plus vcfg) in
  check_bool "diamond group" true (contains s "diamond time tiling")

let test_emit_3d_collapse () =
  let cfg = Cycle.default ~dims:3 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let s = C_emit.to_string (plan_of ~n:16 cfg) in
  check_bool "collapse(3)" true (contains s "collapse(3)")

let test_line_counts_ordering () =
  (* W-cycle code is larger than V-cycle code (Table 3 trend) *)
  let v = C_emit.line_count (plan_of vcfg) in
  let w =
    C_emit.line_count
      (plan_of (Cycle.default ~dims:2 ~shape:Cycle.W ~smoothing:(4, 4, 4)))
  in
  check_bool (Printf.sprintf "W (%d) > V (%d) > 100" w v) true
    (w > v && v > 100)

let test_emit_all_benchmarks () =
  List.iter
    (fun (dims, shape, sm) ->
      let cfg = Cycle.default ~dims ~shape ~smoothing:sm in
      let n = if dims = 2 then 32 else 16 in
      List.iter
        (fun opts ->
          let s = C_emit.to_string (plan_of ~opts ~n cfg) in
          check_bool (Cycle.bench_name cfg) true (String.length s > 500))
        [ Options.naive; Options.opt; Options.opt_plus; Options.dtile_opt_plus ])
    [ (2, Cycle.V, (4, 4, 4)); (2, Cycle.V, (10, 0, 0));
      (2, Cycle.W, (4, 4, 4)); (3, Cycle.V, (4, 4, 4));
      (3, Cycle.W, (10, 0, 0)) ]

(* Compile-and-run promotion of the old -fsyntax-only check: the
   emitted-C driver is compiled (gcc, falling back to cc), executed and
   diffed against the engine through the conformance harness.  Skips
   visibly when no C compiler exists. *)
let test_emitted_c_runs () =
  match Conformance.cc_available () with
  | None ->
    Printf.printf "compile-and-run skipped: no C compiler (tried gcc, cc)\n%!";
    Alcotest.skip ()
  | Some _ ->
    List.iter
      (fun (dims, shape, sm, opts, n) ->
        let cfg = Cycle.default ~dims ~shape ~smoothing:sm in
        let plan =
          Plan.build (Cycle.build cfg) ~opts ~n ~params:(Cycle.params cfg ~n)
        in
        let what =
          Printf.sprintf "%s %s computes what the engine computes"
            (Cycle.bench_name cfg) (Options.name opts)
        in
        match Conformance.c_equivalence plan with
        | Conformance.C_ok _ -> ()
        | Conformance.C_skip reason -> Alcotest.failf "%s: unexpected skip: %s" what reason
        | Conformance.C_fail { reason; max_abs; max_ulp } ->
          Alcotest.failf "%s: %s (max_abs=%.3e, max_ulp=%.1e)" what reason
            max_abs max_ulp)
      [ (2, Cycle.V, (4, 4, 4), Options.opt_plus, 32);
        (2, Cycle.W, (10, 0, 0), Options.opt, 32);
        (3, Cycle.V, (4, 4, 4), Options.opt_plus, 16);
        (2, Cycle.V, (10, 0, 0), Options.dtile_opt_plus, 32);
        (2, Cycle.V, (2, 2, 2), Options.naive, 32) ]

let test_parity_cases_emitted () =
  let s = C_emit.to_string (plan_of vcfg) in
  check_bool "parity comment" true (contains s "parity case")

let () =
  Alcotest.run "c_emit"
    [ ( "emission",
        [ Alcotest.test_case "markers" `Quick test_emit_markers;
          Alcotest.test_case "scratch reuse" `Quick test_emit_scratch_reuse_visible;
          Alcotest.test_case "diamond" `Quick test_emit_diamond_marker;
          Alcotest.test_case "3d collapse" `Quick test_emit_3d_collapse;
          Alcotest.test_case "line counts" `Quick test_line_counts_ordering;
          Alcotest.test_case "all benchmarks emit" `Quick test_emit_all_benchmarks;
          Alcotest.test_case "parity cases" `Quick test_parity_cases_emitted;
          Alcotest.test_case "compile and run vs engine" `Quick
            test_emitted_c_runs ] ) ]
