(* Metrics registry: percentiles on a known distribution, OpenMetrics
   exposition well-formedness (label escaping, counter monotonicity),
   JSON document round-trips through the parser, and the disabled path
   allocating nothing. *)

module Telemetry = Repro_runtime.Telemetry
module Metrics = Repro_runtime.Metrics
module Json = Repro_runtime.Json

let with_metrics f =
  Metrics.reset ();
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Telemetry.reset ();
      Metrics.reset ())
    f

let in_range name lo hi v =
  if not (v >= lo && v <= hi) then
    Alcotest.failf "%s: %g not in [%g, %g]" name v lo hi

(* 90 observations of 100 and 10 of 10000: count/sum/min/max are exact;
   percentiles land in the right log2 bucket, clamped to observed
   extremes (p50 in [100, 128); p99 in [8192, 10000]). *)
let test_percentiles () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "t_hist" in
  for _ = 1 to 90 do
    Metrics.observe h 100.0
  done;
  for _ = 1 to 10 do
    Metrics.observe h 10000.0
  done;
  Alcotest.(check int) "count" 100 (Metrics.hist_count h);
  Alcotest.(check (float 1e-6)) "sum" 109000.0 (Metrics.hist_sum h);
  in_range "p50" 100.0 128.0 (Metrics.percentile h 0.5);
  in_range "p90" 100.0 10000.0 (Metrics.percentile h 0.9);
  in_range "p99" 8192.0 10000.0 (Metrics.percentile h 0.99);
  let p50 = Metrics.percentile h 0.5
  and p90 = Metrics.percentile h 0.9
  and p99 = Metrics.percentile h 0.99 in
  Alcotest.(check bool) "monotone quantiles" true (p50 <= p90 && p90 <= p99);
  (* extreme quantiles clamp to the observed min/max *)
  Alcotest.(check (float 1e-6)) "p0" 100.0 (Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-6)) "p100" 10000.0 (Metrics.percentile h 1.0)

(* An empty series has no percentiles: every quantile is nan (and the
   JSON sink renders them as null), never a fabricated 0. *)
let test_percentiles_empty () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "t_empty" in
  Alcotest.(check int) "count" 0 (Metrics.hist_count h);
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "p%g is nan" (100.0 *. q))
        true
        (Float.is_nan (Metrics.percentile h q)))
    [ 0.0; 0.5; 1.0 ];
  match Json.member "histograms" (Metrics.to_json ()) with
  | None -> Alcotest.fail "no histograms block"
  | Some hs ->
    let h0 = List.hd (Json.to_list hs) in
    List.iter
      (fun k ->
        Alcotest.(check bool)
          (k ^ " is null") true
          (Json.member k h0 = Some Json.Null))
      [ "p50"; "p90"; "p99" ]

(* One sample: every quantile collapses to it. *)
let test_percentiles_one_sample () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "t_one" in
  Metrics.observe h 300.0;
  Alcotest.(check (float 1e-9)) "p0" 300.0 (Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p50" 300.0 (Metrics.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p100" 300.0 (Metrics.percentile h 1.0)

(* Two samples in distant log2 buckets: the median stays in the lower
   bucket, clamped below by the observed min; p100 is the exact max. *)
let test_percentiles_two_buckets () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "t_two" in
  Metrics.observe h 100.0;
  Metrics.observe h 10000.0;
  Alcotest.(check (float 1e-9)) "p0" 100.0 (Metrics.percentile h 0.0);
  in_range "p50" 100.0 128.0 (Metrics.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p100" 10000.0 (Metrics.percentile h 1.0)

let is_float s = match float_of_string_opt s with Some _ -> true | None -> false

(* minimal exposition-format checker: every non-comment line must be
   `name value` or `name{k="v",...} value` with a numeric value *)
let check_exposition text =
  let check_line ln =
    if ln = "" || String.length ln >= 1 && ln.[0] = '#' then ()
    else begin
      let sp =
        match String.rindex_opt ln ' ' with
        | Some i -> i
        | None -> Alcotest.failf "no value separator in %S" ln
      in
      let series = String.sub ln 0 sp in
      let value = String.sub ln (sp + 1) (String.length ln - sp - 1) in
      if not (is_float value) then
        Alcotest.failf "non-numeric value %S in %S" value ln;
      let name =
        match String.index_opt series '{' with
        | Some i ->
          if series.[String.length series - 1] <> '}' then
            Alcotest.failf "unterminated label set in %S" ln;
          String.sub series 0 i
        | None -> series
      in
      if name = "" then Alcotest.failf "empty metric name in %S" ln;
      String.iter
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
          | c -> Alcotest.failf "bad char %C in metric name %S" c name)
        name
    end
  in
  List.iter check_line (String.split_on_char '\n' text)

let test_openmetrics () =
  with_metrics @@ fun () ->
  let h =
    Metrics.histogram ~labels:[ ("name", "stage:a\"b\\c\nd") ] "span_ns"
  in
  Metrics.observe h 5.0;
  Metrics.observe h 300.0;
  let c = Metrics.lcounter ~labels:[ ("kind", "tiles") ] "work" in
  Metrics.incr_by c 7;
  let g = Metrics.gauge "bandwidth_gbs" in
  Metrics.set_gauge g 12.5;
  ignore (Telemetry.counter "exec.tiles");
  let text = Metrics.to_openmetrics () in
  check_exposition text;
  let contains_in hay sub =
    let nh = String.length hay and ns = String.length sub in
    let rec go i = i + ns <= nh && (String.sub hay i ns = sub || go (i + 1)) in
    ns = 0 || go 0
  in
  let contains sub = contains_in text sub in
  Alcotest.(check bool) "ends with EOF" true
    (String.length text >= 6
     && String.sub text (String.length text - 6) 6 = "# EOF\n");
  Alcotest.(check bool) "histogram declared" true
    (contains "# TYPE polymg_span_ns histogram");
  Alcotest.(check bool) "escaped label value" true
    (contains "name=\"stage:a\\\"b\\\\c\\nd\"");
  Alcotest.(check bool) "counter sample is _total" true
    (contains "polymg_work_total{kind=\"tiles\"} 7");
  Alcotest.(check bool) "+Inf bucket present" true
    (contains "le=\"+Inf\"");
  (* counter monotonicity across successive scrapes *)
  Metrics.incr_by c 3;
  let text2 = Metrics.to_openmetrics () in
  Alcotest.(check bool) "counter grew monotonically" true
    (contains_in text2 "polymg_work_total{kind=\"tiles\"} 10")

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Num x, Json.Num y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Json.Str x, Json.Str y -> x = y
  | Json.Arr x, Json.Arr y ->
    List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Obj x, Json.Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
         x y
  | _ -> false

let test_json_roundtrip () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram ~labels:[ ("name", "x\"y\\z") ] "span_ns" in
  Metrics.observe h 17.0;
  Metrics.observe h 90000.0;
  Metrics.set_gauge (Metrics.gauge "g") 0.25;
  Metrics.incr_by (Metrics.lcounter "c") 3;
  let doc = Metrics.to_json () in
  let text = Json.to_string doc in
  match Json.parse text with
  | Error m -> Alcotest.failf "metrics JSON does not parse: %s" m
  | Ok doc' ->
    Alcotest.(check bool) "round-trips" true (json_equal doc doc');
    (* and the accessors reach into the parsed document *)
    let hists =
      Json.to_list (Option.get (Json.member "histograms" doc'))
    in
    Alcotest.(check int) "one histogram" 1 (List.length hists);
    let h0 = List.hd hists in
    Alcotest.(check (option int)) "count" (Some 2)
      (Option.bind (Json.member "count" h0) Json.to_int)

let test_disabled_allocates_nothing () =
  Metrics.reset ();
  Telemetry.reset ();
  Telemetry.set_enabled false;
  (* interning happens once, outside the measured window *)
  let h = Metrics.histogram "noalloc_h" in
  let c = Metrics.lcounter "noalloc_c" in
  (* a pre-boxed value: the loop must not allocate, and neither may the
     disabled observe/incr paths *)
  let v = Sys.opaque_identity 17.0 in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Metrics.observe h v;
    Metrics.incr_by c 1
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f minor words" words)
    true (words < 256.0);
  Alcotest.(check int) "no observations recorded" 0 (Metrics.hist_count h);
  Alcotest.(check int) "no counts recorded" 0 (Metrics.lcounter_value c)

let () =
  Alcotest.run "metrics"
    [ ( "histogram",
        [ Alcotest.test_case "percentiles on known distribution" `Quick
            test_percentiles;
          Alcotest.test_case "empty series has nan percentiles" `Quick
            test_percentiles_empty;
          Alcotest.test_case "one-sample percentiles collapse" `Quick
            test_percentiles_one_sample;
          Alcotest.test_case "two-bucket percentiles clamp" `Quick
            test_percentiles_two_buckets ] );
      ( "sinks",
        [ Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip ] );
      ( "overhead",
        [ Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_allocates_nothing ] ) ]
