(* Flight-recorder semantics: ring-buffer edge cases, multi-domain
   interleaving, drop accounting, and incident-dump determinism (the
   property leg replays under QCHECK_SEED like every property suite). *)

open Repro_runtime
module Ring = Flightrec.Ring

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let test_ring_wraparound () =
  let r = Ring.create 4 in
  check_int "empty length" 0 (Ring.length r);
  check_int "capacity" 4 (Ring.capacity r);
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "oldest-first tail" [ 7; 8; 9; 10 ]
    (Ring.to_list r);
  check_int "length saturates" 4 (Ring.length r);
  check_int "dropped counts overwrites" 6 (Ring.dropped r)

let test_ring_partial () =
  let r = Ring.create 8 in
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check (list int)) "no wrap: insertion order" [ 1; 2; 3 ]
    (Ring.to_list r);
  check_int "no drops below capacity" 0 (Ring.dropped r)

let test_ring_capacity_one () =
  let r = Ring.create 1 in
  Ring.push r 41;
  Alcotest.(check (list int)) "holds one" [ 41 ] (Ring.to_list r);
  Ring.push r 42;
  Ring.push r 43;
  Alcotest.(check (list int)) "keeps only the newest" [ 43 ] (Ring.to_list r);
  check_int "two overwrites" 2 (Ring.dropped r)

let test_ring_bad_capacity () =
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Flightrec.Ring.create: capacity must be >= 1")
    (fun () -> ignore (Ring.create 0))

(* ------------------------------------------------------------------ *)
(* Recorder: drops, ordering, multi-domain interleaving *)

(* reset-bracket a test so recorder state never bleeds across tests *)
let with_recorder ?(capacity = 512) f () =
  Flightrec.set_capacity capacity;
  Flightrec.reset ();
  Flightrec.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flightrec.set_enabled false;
      Flightrec.set_capacity 512;
      Flightrec.reset ())
    f

let test_emit_drop_counting =
  with_recorder ~capacity:8 (fun () ->
      for c = 1 to 20 do
        Flightrec.emit (Flightrec.Checkpoint { cycle = c; residual = 0.0 })
      done;
      let events = Flightrec.events () in
      check_int "ring keeps capacity" 8 (List.length events);
      check_int "overflow counted" 12 (Flightrec.dropped_events ());
      let cycles =
        List.map
          (fun (e : Flightrec.event) ->
            match e.Flightrec.kind with
            | Flightrec.Checkpoint { cycle; _ } -> cycle
            | _ -> -1)
          events
      in
      Alcotest.(check (list int)) "newest tail survives"
        [ 13; 14; 15; 16; 17; 18; 19; 20 ]
        cycles)

let test_multi_domain_interleaving =
  with_recorder (fun () ->
      let per_domain = 100 in
      let emit_range () =
        for c = 1 to per_domain do
          Flightrec.emit (Flightrec.Checkpoint { cycle = c; residual = 0.0 })
        done
      in
      let doms = Array.init 3 (fun _ -> Domain.spawn emit_range) in
      emit_range ();
      Array.iter Domain.join doms;
      let events = Flightrec.events () in
      check_int "all domains' events retained" (4 * per_domain)
        (List.length events);
      check_int "nothing dropped" 0 (Flightrec.dropped_events ());
      (* merged view is in strictly increasing global seq order *)
      let seqs = List.map (fun e -> e.Flightrec.seq) events in
      check_bool "seq strictly increasing" true
        (List.for_all2 (fun a b -> a < b) seqs (List.tl seqs @ [ max_int ]));
      (* at least two distinct domains actually recorded concurrently *)
      let domains =
        List.sort_uniq compare (List.map (fun e -> e.Flightrec.dom) events)
      in
      check_bool "several domains recorded" true (List.length domains >= 2);
      (* per domain, emission order is preserved in the merged list *)
      List.iter
        (fun d ->
          let cycles =
            List.filter_map
              (fun (e : Flightrec.event) ->
                if e.Flightrec.dom = d then
                  match e.Flightrec.kind with
                  | Flightrec.Checkpoint { cycle; _ } -> Some cycle
                  | _ -> None
                else None)
              events
          in
          check_bool
            (Printf.sprintf "domain %d in emission order" d)
            true
            (cycles = List.init per_domain (fun i -> i + 1)))
        domains)

let test_disabled_is_silent =
  with_recorder (fun () ->
      Flightrec.set_enabled false;
      Flightrec.emit (Flightrec.Note "should vanish");
      check_int "no event recorded while disabled" 0
        (List.length (Flightrec.events ()));
      check_bool "incident refused while disabled" true
        (Flightrec.incident ~kind:"test" () = None))

(* ------------------------------------------------------------------ *)
(* Incident dumps *)

let temp_incident_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flightrec-test-%d-%s" (Unix.getpid ()) tag)
  in
  (* fresh per run: stale files would alias incident numbering *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_incident_dump =
  with_recorder (fun () ->
      let dir = temp_incident_dir "dump" in
      Flightrec.set_incident_dir (Some dir);
      Fun.protect
        ~finally:(fun () -> Flightrec.set_incident_dir None)
        (fun () ->
          Flightrec.note_plan ~digest:"cafe" ~variant:"opt+";
          Flightrec.emit
            (Flightrec.Fault { cycle = 3; fault = "nan" });
          match
            Flightrec.incident ~kind:"nan" ~cycle:3
              ~detail:[ ("fault", Json.Str "nan") ]
              ()
          with
          | None -> Alcotest.fail "incident not written"
          | Some path ->
            check_bool "file exists" true (Sys.file_exists path);
            let doc =
              match Json.parse (read_file path) with
              | Ok d -> d
              | Error m -> Alcotest.fail ("unparseable incident: " ^ m)
            in
            let mem k = Option.value (Json.member k doc) ~default:Json.Null in
            check_bool "schema" true
              (Json.to_str (mem "schema") = Some "polymg.incident/1");
            check_bool "kind" true (Json.to_str (mem "kind") = Some "nan");
            check_bool "cycle" true (Json.to_int (mem "cycle") = Some 3);
            check_bool "plan digest" true
              (Option.bind (Json.member "plan" doc) (Json.member "digest")
               |> Option.map Json.to_str
               = Some (Some "cafe"));
            check_bool "events present" true
              (Json.to_list (mem "events") <> []);
            check_int "incident counted" 1 (Flightrec.incident_count ())))

let test_incident_cap =
  with_recorder (fun () ->
      let dir = temp_incident_dir "cap" in
      Flightrec.set_incident_dir (Some dir);
      Flightrec.set_max_incidents 1;
      Fun.protect
        ~finally:(fun () ->
          Flightrec.set_max_incidents 32;
          Flightrec.set_incident_dir None)
        (fun () ->
          Flightrec.emit (Flightrec.Note "x");
          check_bool "first incident written" true
            (Flightrec.incident ~kind:"first" () <> None);
          check_bool "second suppressed by cap" true
            (Flightrec.incident ~kind:"second" () = None);
          check_int "only one counted" 1 (Flightrec.incident_count ())))

(* ------------------------------------------------------------------ *)
(* Incident-dump determinism (property, QCHECK_SEED-replayable):
   re-emitting the same event sequence from reset state dumps the same
   report, once the wall-clock fields are masked. *)

let rec mask_volatile (j : Json.t) : Json.t =
  match j with
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           if k = "t_ns" then (k, Json.Null) else (k, mask_volatile v))
         fields)
  | Json.Arr l -> Json.Arr (List.map mask_volatile l)
  | other -> other

let gen_kind =
  QCheck.Gen.(
    oneof
      [ map
          (fun c -> Flightrec.Cycle_begin { cycle = c; fallback = c mod 2 = 0 })
          (int_bound 50);
        map
          (fun c ->
            Flightrec.Cycle_end
              { cycle = c; residual = float_of_int c /. 7.0; status = "ok" })
          (int_bound 50);
        map (fun g -> Flightrec.Group_begin { gid = g; kind = "tiled" })
          (int_bound 9);
        map (fun g -> Flightrec.Group_end { gid = g }) (int_bound 9);
        map
          (fun c -> Flightrec.Fault { cycle = c; fault = "nan" })
          (int_bound 50);
        map (fun c -> Flightrec.Rollback { cycle = c }) (int_bound 50);
        map
          (fun b ->
            Flightrec.High_water { bytes = b; budget_bytes = 2 * b + 1 })
          (int_bound 1_000_000);
        map (fun s -> Flightrec.Note (Printf.sprintf "n%d" s)) (int_bound 99)
      ])

let arb_kinds =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<%d events>" (List.length l))
    QCheck.Gen.(list_size (int_range 1 40) gen_kind)

let dump_masked ~dir kinds =
  Flightrec.set_capacity 16;
  Flightrec.reset ();
  Flightrec.set_enabled true;
  Flightrec.set_incident_dir (Some dir);
  Flightrec.note_plan ~digest:"feed" ~variant:"opt+";
  List.iter Flightrec.emit kinds;
  let path =
    match
      Flightrec.incident ~kind:"replay" ~cycle:1
        ~detail:[ ("n", Json.num (List.length kinds)) ]
        ()
    with
    | Some p -> p
    | None -> Alcotest.fail "incident not written"
  in
  Flightrec.set_incident_dir None;
  Flightrec.set_enabled false;
  let doc =
    match Json.parse (read_file path) with
    | Ok d -> d
    | Error m -> Alcotest.fail ("unparseable incident: " ^ m)
  in
  Sys.remove path;
  mask_volatile doc

let prop_incident_deterministic =
  QCheck.Test.make ~count:30 ~name:"incident dump is deterministic"
    arb_kinds
    (fun kinds ->
      let dir = temp_incident_dir "replay" in
      let a = dump_masked ~dir kinds in
      let b = dump_masked ~dir kinds in
      Flightrec.set_capacity 512;
      Flightrec.reset ();
      a = b)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "flightrec"
    [ ( "ring",
        [ ("wraparound ordering", `Quick, test_ring_wraparound);
          ("partial fill", `Quick, test_ring_partial);
          ("capacity one", `Quick, test_ring_capacity_one);
          ("bad capacity", `Quick, test_ring_bad_capacity) ] );
      ( "recorder",
        [ ("drop counting", `Quick, test_emit_drop_counting);
          ("multi-domain interleaving", `Quick, test_multi_domain_interleaving);
          ("disabled is silent", `Quick, test_disabled_is_silent) ] );
      ( "incidents",
        [ ("dump contents", `Quick, test_incident_dump);
          ("per-process cap", `Quick, test_incident_cap) ] );
      ( "properties",
        [ Qc_replay.to_alcotest prop_incident_deterministic ] ) ]
