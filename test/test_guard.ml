(* Guarded execution: injected NaNs, divergence, and crashes must be
   detected within one cycle, rolled back, and recovered through the
   naive-plan fallback; inherent faults and stagnation must stop the
   solve with the last good iterate intact. *)

open Repro_mg
open Repro_core
module Grid = Repro_grid.Grid
module Buf = Repro_grid.Buf
module Telemetry = Repro_runtime.Telemetry

let cfg2 = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4)
let cfg3 = Cycle.default ~dims:3 ~shape:Cycle.V ~smoothing:(4, 4, 4)

(* -- fault-injecting stepper wrappers ----------------------------------- *)

let nan_every k stepper =
  let attempts = ref 0 in
  fun ~v ~f ~out ->
    stepper ~v ~f ~out;
    incr attempts;
    if !attempts mod k = 0 then
      Buf.set out.Grid.buf (Buf.len out.Grid.buf / 2) Float.nan

let diverge_every k stepper =
  let attempts = ref 0 in
  fun ~v ~f ~out ->
    stepper ~v ~f ~out;
    incr attempts;
    if !attempts mod k = 0 then Buf.map_inplace (fun x -> x *. 1e8) out.Grid.buf

let crash_every k stepper =
  let attempts = ref 0 in
  fun ~v ~f ~out ->
    incr attempts;
    if !attempts mod k = 0 then failwith "injected crash";
    stepper ~v ~f ~out

let identity_stepper ~v ~f:_ ~out = Grid.blit ~src:v ~dst:out

let is_nan_fault = function Guard.Fault_nan -> true | _ -> false
let is_div_fault = function Guard.Fault_diverged -> true | _ -> false
let is_crash_fault = function Guard.Fault_crash _ -> true | _ -> false

let counter name = Telemetry.value (Telemetry.counter name)

(* Runs a guarded solve with the primary wrapped by [wrap], a naive-plan
   fallback, and telemetry on; returns (result, counters snapshot). *)
let guarded_solve ?(dims = 2) ?(wrap = fun s -> s) ?(fallback = true)
    ?(policy =
        { Guard.default_policy with
          Guard.tol = Some 1e-8;
          Guard.max_cycles = 60 }) () =
  let cfg = if dims = 2 then cfg2 else cfg3 in
  let n = if dims = 2 then 64 else 32 in
  let problem = Problem.poisson ~dims ~n in
  Exec.with_runtime @@ fun rt ->
  (* check_plan on: every plan the guard suite executes is validated *)
  let opts = { Options.opt_plus with Options.check_plan = true } in
  let primary = wrap (Solver.polymg_stepper cfg ~n ~opts ~rt) in
  let fb =
    if fallback then
      Some (fun () -> Solver.polymg_stepper cfg ~n ~opts:Options.naive ~rt)
    else None
  in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let r = Guard.run ~policy ~primary ?fallback:fb ~problem () in
  Telemetry.set_enabled false;
  r

let check_converged name (r : Guard.result) =
  (match r.Guard.outcome with
  | Guard.Converged -> ()
  | o -> Alcotest.failf "%s: outcome %s, not converged" name (Guard.outcome_name o));
  Alcotest.(check bool) (name ^ ": residual at tol") true (r.Guard.residual <= 1e-8);
  Alcotest.(check bool)
    (name ^ ": final iterate finite") true
    (Buf.find_nonfinite r.Guard.v.Grid.buf = None)

let test_clean_early_stop () =
  let r = guarded_solve () in
  check_converged "clean" r;
  Alcotest.(check int) "no faults" 0 (List.length r.Guard.events);
  Alcotest.(check int) "no fallback cycles" 0 r.Guard.fallback_cycles;
  Alcotest.(check bool) "early stop counted" true (counter "guard.early_stops" >= 1);
  Alcotest.(check bool)
    "stopped before the cycle budget" true
    (List.length r.Guard.stats < 60)

let test_nan_detected_and_recovered () =
  let r = guarded_solve ~wrap:(nan_every 3) () in
  check_converged "nan" r;
  Alcotest.(check bool) "nan faults recorded" true
    (List.exists (fun e -> is_nan_fault e.Guard.fault) r.Guard.events);
  (* detection within one cycle: every faulted attempt appears in stats
     with status Nan, and the very next accepted entry for that cycle is
     clean — i.e. no accepted cycle ever carries a non-finite residual *)
  List.iter
    (fun (s : Solver.cycle_stats) ->
      if s.Solver.status <> Solver.Nan then
        Alcotest.(check bool) "accepted residual finite" true
          (Float.is_finite s.Solver.residual))
    r.Guard.stats;
  Alcotest.(check bool) "fallback used" true (r.Guard.fallback_cycles >= 1);
  Alcotest.(check bool) "telemetry: nan detected" true (counter "guard.nan_detected" >= 1);
  Alcotest.(check bool) "telemetry: rollbacks" true (counter "guard.rollbacks" >= 1);
  Alcotest.(check bool) "telemetry: switches" true
    (counter "guard.fallback_switches" >= 1)

let test_divergence_detected () =
  let r = guarded_solve ~wrap:(diverge_every 2) () in
  check_converged "divergence" r;
  Alcotest.(check bool) "divergence faults recorded" true
    (List.exists (fun e -> is_div_fault e.Guard.fault) r.Guard.events);
  Alcotest.(check bool) "telemetry: divergence detected" true
    (counter "guard.divergence_detected" >= 1)

let test_crash_recovered () =
  let r = guarded_solve ~wrap:(crash_every 3) () in
  check_converged "crash" r;
  Alcotest.(check bool) "crash faults recorded" true
    (List.exists (fun e -> is_crash_fault e.Guard.fault) r.Guard.events);
  Alcotest.(check bool) "telemetry: crash detected" true
    (counter "guard.crash_detected" >= 1)

let test_quarantine_after_repeated_faults () =
  let r = guarded_solve ~wrap:(nan_every 2) () in
  check_converged "quarantine" r;
  Alcotest.(check bool) "primary quarantined" true
    (List.exists
       (fun e -> e.Guard.action = Guard.Quarantined_primary)
       r.Guard.events);
  Alcotest.(check bool) "rest of solve on fallback" true
    (r.Guard.fallback_cycles > 2)

let test_no_fallback_gives_up () =
  let r = guarded_solve ~wrap:(nan_every 1) ~fallback:false () in
  (match r.Guard.outcome with
  | Guard.Faulted f -> Alcotest.(check bool) "nan fault" true (is_nan_fault f)
  | o -> Alcotest.failf "outcome %s, expected faulted" (Guard.outcome_name o));
  Alcotest.(check bool) "iterate rolled back to finite state" true
    (Buf.find_nonfinite r.Guard.v.Grid.buf = None);
  List.iter
    (fun e -> Alcotest.(check bool) "gave up" true (e.Guard.action = Guard.Gave_up))
    r.Guard.events

let test_fault_on_fallback_gives_up () =
  let problem = Problem.poisson ~dims:2 ~n:64 in
  Exec.with_runtime @@ fun rt ->
  let primary = nan_every 1 (Solver.polymg_stepper cfg2 ~n:64 ~opts:Options.opt_plus ~rt) in
  let fb () = nan_every 1 (Solver.polymg_stepper cfg2 ~n:64 ~opts:Options.naive ~rt) in
  let r = Guard.run ~primary ~fallback:fb ~problem () in
  (match r.Guard.outcome with
  | Guard.Faulted _ -> ()
  | o -> Alcotest.failf "outcome %s, expected faulted" (Guard.outcome_name o));
  Alcotest.(check int) "two events: retry then give up" 2
    (List.length r.Guard.events);
  (match r.Guard.events with
  | [ first; second ] ->
    Alcotest.(check bool) "first retried" true
      (first.Guard.action <> Guard.Gave_up);
    Alcotest.(check bool) "second gave up" true
      (second.Guard.action = Guard.Gave_up)
  | _ -> assert false)

let test_stagnation_stops () =
  let problem = Problem.poisson ~dims:2 ~n:64 in
  let r = Guard.run ~primary:identity_stepper ~problem () in
  (match r.Guard.outcome with
  | Guard.Stagnated -> ()
  | o -> Alcotest.failf "outcome %s, expected stagnated" (Guard.outcome_name o));
  Alcotest.(check int) "stopped after the stagnation window"
    Guard.default_policy.Guard.stagnation_window
    (List.length r.Guard.stats)

(* The ISSUE regression: Poisson in 2D and 3D with a fault injected every
   k-th cycle must still reach tolerance on the fallback path. *)
let test_poisson_2d_faults_every_k () =
  let r = guarded_solve ~dims:2 ~wrap:(nan_every 4) () in
  check_converged "2d every-4th" r;
  Alcotest.(check bool) "faults seen" true (r.Guard.events <> [])

let test_poisson_3d_faults_every_k () =
  let r =
    guarded_solve ~dims:3 ~wrap:(nan_every 4)
      ~policy:{ Guard.default_policy with Guard.tol = Some 1e-6 } ()
  in
  (match r.Guard.outcome with
  | Guard.Converged -> ()
  | o -> Alcotest.failf "3d: outcome %s" (Guard.outcome_name o));
  Alcotest.(check bool) "3d residual at tol" true (r.Guard.residual <= 1e-6);
  Alcotest.(check bool) "3d faults seen" true (r.Guard.events <> [])

(* Stage-level injection through the Exec hook: corrupt an intermediate
   buffer *between* stages, inside the optimized plan's execution. *)
let test_stage_level_injection () =
  let problem = Problem.poisson ~dims:2 ~n:64 in
  Exec.with_runtime @@ fun rt ->
  let primary = Solver.polymg_stepper cfg2 ~n:64 ~opts:Options.opt_plus ~rt in
  let cycles = ref 0 in
  let wrapped ~v ~f ~out =
    incr cycles;
    if !cycles mod 3 = 0 then
      Exec.set_fault_injector
        (Some
           (fun ~gid ~stage:_ (dst : Compile.source) ->
             if gid = 1 then
               let d = dst.Compile.data in
               Bigarray.Array1.set d (Bigarray.Array1.dim d / 2) Float.nan))
    else Exec.set_fault_injector None;
    Fun.protect
      ~finally:(fun () -> Exec.set_fault_injector None)
      (fun () -> primary ~v ~f ~out)
  in
  let fb () = Solver.polymg_stepper cfg2 ~n:64 ~opts:Options.naive ~rt in
  let r =
    Guard.run
      ~policy:
        { Guard.default_policy with
          Guard.tol = Some 1e-8;
          Guard.max_cycles = 60 }
      ~primary:wrapped ~fallback:fb ~problem ()
  in
  (match r.Guard.outcome with
  | Guard.Converged -> ()
  | o -> Alcotest.failf "stage injection: outcome %s" (Guard.outcome_name o));
  Alcotest.(check bool) "stage-level faults detected" true
    (List.exists (fun e -> is_nan_fault e.Guard.fault) r.Guard.events)

(* -- primary-retry policy: bounded same-plan retries with backoff ------- *)

(* Transient faults (every other attempt) are absorbed by a single
   primary retry: the solve never touches the fallback, and the retry
   budget demonstrably resets across accepted cycles. *)
let test_primary_retry_recovers () =
  let r =
    guarded_solve ~wrap:(nan_every 2)
      ~policy:
        { Guard.default_policy with
          Guard.tol = Some 1e-8;
          Guard.max_cycles = 60;
          Guard.primary_retries = 1 }
      ()
  in
  check_converged "primary retry" r;
  Alcotest.(check bool) "several faults seen" true
    (List.length r.Guard.events >= 2);
  List.iter
    (fun e ->
      Alcotest.(check string) "every fault retried on primary"
        (Guard.action_name Guard.Primary_retry)
        (Guard.action_name e.Guard.action))
    r.Guard.events;
  Alcotest.(check int) "no fallback cycles" 0 r.Guard.fallback_cycles;
  Alcotest.(check int) "fallback never switched in" 0
    (counter "guard.fallback_switches");
  Alcotest.(check int) "retries counted"
    (List.length r.Guard.events)
    (counter "govern.primary_retries")

(* A persistently faulting primary exhausts its retry budget, falls back,
   and is quarantined once max_primary_faults is reached — in exactly
   that order. *)
let test_retry_exhaustion_then_quarantine () =
  let r =
    guarded_solve ~wrap:(nan_every 1)
      ~policy:
        { Guard.default_policy with
          Guard.tol = Some 1e-8;
          Guard.max_cycles = 60;
          Guard.primary_retries = 2 }
      ()
  in
  check_converged "retry exhaustion" r;
  (match r.Guard.events with
  | e1 :: e2 :: e3 :: _ ->
    Alcotest.(check bool) "two primary retries first" true
      (e1.Guard.action = Guard.Primary_retry
      && e2.Guard.action = Guard.Primary_retry);
    Alcotest.(check bool) "then a fallback retry" true
      (e3.Guard.action = Guard.Fallback_retry)
  | _ -> Alcotest.fail "expected at least three fault events");
  Alcotest.(check bool) "eventually quarantined" true
    (List.exists
       (fun e -> e.Guard.action = Guard.Quarantined_primary)
       r.Guard.events);
  Alcotest.(check bool) "retry counter moved" true
    (counter "govern.primary_retries" >= 4)

(* retry_backoff = 0.05 with two retries in one cycle must sleep at
   least 0.05 + 0.10 seconds before giving up. *)
let test_retry_backoff_waits () =
  let problem = Problem.poisson ~dims:2 ~n:16 in
  let primary = nan_every 1 identity_stepper in
  let t0 = Telemetry.now_ns () in
  let r =
    Guard.run
      ~policy:
        { Guard.default_policy with
          Guard.primary_retries = 2;
          Guard.retry_backoff = 0.05 }
      ~primary ~problem ()
  in
  let elapsed_s = float_of_int (Telemetry.now_ns () - t0) /. 1e9 in
  (match r.Guard.outcome with
  | Guard.Faulted f -> Alcotest.(check bool) "nan fault" true (is_nan_fault f)
  | o -> Alcotest.failf "outcome %s, expected faulted" (Guard.outcome_name o));
  Alcotest.(check (list string)) "retry, retry, give up"
    [ Guard.action_name Guard.Primary_retry;
      Guard.action_name Guard.Primary_retry;
      Guard.action_name Guard.Gave_up ]
    (List.map (fun e -> Guard.action_name e.Guard.action) r.Guard.events);
  Alcotest.(check bool)
    (Printf.sprintf "backoff slept (elapsed %.3fs >= 0.14s)" elapsed_s)
    true (elapsed_s >= 0.14)

(* Guard.solve convenience entry: poisoned pool + plan check + fallback. *)
let test_guard_solve_entry () =
  let r =
    Guard.solve cfg2 ~n:64
      ~opts:{ Options.opt_plus with Options.check_plan = true }
      ~poison:true
      ~policy:
        { Guard.default_policy with
          Guard.tol = Some 1e-8;
          Guard.max_cycles = 60 }
      ()
  in
  (match r.Guard.outcome with
  | Guard.Converged -> ()
  | o -> Alcotest.failf "solve: outcome %s" (Guard.outcome_name o));
  Alcotest.(check bool) "solve residual at tol" true (r.Guard.residual <= 1e-8)

let () =
  Alcotest.run "guard"
    [ ( "detection",
        [ Alcotest.test_case "nan detected, rolled back, recovered" `Quick
            test_nan_detected_and_recovered;
          Alcotest.test_case "divergence detected" `Quick
            test_divergence_detected;
          Alcotest.test_case "crash recovered" `Quick test_crash_recovered;
          Alcotest.test_case "stage-level injection" `Quick
            test_stage_level_injection ] );
      ( "policy",
        [ Alcotest.test_case "clean run stops early at tol" `Quick
            test_clean_early_stop;
          Alcotest.test_case "repeated faults quarantine primary" `Quick
            test_quarantine_after_repeated_faults;
          Alcotest.test_case "no fallback gives up cleanly" `Quick
            test_no_fallback_gives_up;
          Alcotest.test_case "fault on fallback gives up" `Quick
            test_fault_on_fallback_gives_up;
          Alcotest.test_case "stagnation stops the solve" `Quick
            test_stagnation_stops ] );
      ( "retry",
        [ Alcotest.test_case "transient faults absorbed by primary retry"
            `Quick test_primary_retry_recovers;
          Alcotest.test_case "retry exhaustion falls back, then quarantines"
            `Quick test_retry_exhaustion_then_quarantine;
          Alcotest.test_case "exponential backoff sleeps between retries"
            `Quick test_retry_backoff_waits ] );
      ( "regression",
        [ Alcotest.test_case "2D Poisson, fault every 4th cycle" `Quick
            test_poisson_2d_faults_every_k;
          Alcotest.test_case "3D Poisson, fault every 4th cycle" `Quick
            test_poisson_3d_faults_every_k;
          Alcotest.test_case "Guard.solve with poison + plan check" `Quick
            test_guard_solve_entry ] ) ]
