(* The strongest equivalence check in the suite: generate random valid
   pipelines (generators in Pipeline_gen, shared with test_plan_check)
   and check that every optimizer variant computes exactly what the
   naive plan computes. *)

open Repro_core
module Grid = Repro_grid.Grid

let run_pipeline = Pipeline_gen.run_pipeline

let prop_variants_agree =
  QCheck.Test.make ~name:"random pipelines: all variants match naive"
    ~count:60 Pipeline_gen.pipelines_arb
    (fun stages ->
      let built = Pipeline_gen.gen_pipeline_of stages in
      let n = 32 in
      let reference = run_pipeline built ~opts:Options.naive ~n in
      List.for_all
        (fun opts ->
          let v = run_pipeline built ~opts ~n in
          Grid.max_abs_diff reference v < 1e-11)
        [ Options.opt; Options.opt_plus; Options.dtile_opt_plus;
          { Options.opt_plus with Options.group_size_limit = 2 };
          Options.with_tiles Options.opt_plus ~t2:[| 5; 9 |]
            ~t3:[| 4; 4; 8 |] ])

(* Degradation ladder soundness: for any random pipeline and any budget
   between the ladder floor and the requested rung's footprint, the
   governed decision must pick a rung that fits, report exactly the
   demotions it took, keep every rung storage-safe, and — the part that
   matters — the chosen rung must still compute the naive answer. *)
let prop_ladder_sound =
  QCheck.Test.make ~name:"random pipelines: degradation ladder is sound"
    ~count:20
    QCheck.(pair Pipeline_gen.pipelines_arb (int_range 0 100))
    (fun (stages, pct) ->
      let ((pipe, _, _) as built) = Pipeline_gen.gen_pipeline_of stages in
      let n = 32 in
      let params s = invalid_arg s in
      let opts = { Options.opt_plus with Options.check_plan = true } in
      let unconstrained =
        match Govern.decide pipe ~opts ~n ~params with
        | Ok r -> r.Govern.ladder
        | Error _ -> assert false (* no budget: always feasible *)
      in
      let floor =
        Array.fold_left
          (fun m (r : Govern.rung) -> min m r.Govern.peak_bytes)
          max_int unconstrained
      in
      let top = unconstrained.(0).Govern.peak_bytes in
      let budget = floor + ((top - floor) * pct / 100) in
      match
        Govern.decide pipe
          ~opts:{ opts with Options.mem_budget = Some budget }
          ~n ~params
      with
      | Error _ -> false (* budget >= floor must be feasible *)
      | Ok r ->
        let chosen = Govern.chosen r in
        chosen.Govern.peak_bytes <= budget
        && List.length r.Govern.demotions = r.Govern.chosen
        && Array.for_all
             (fun (rg : Govern.rung) ->
               Plan_check.check rg.Govern.plan = Ok ())
             r.Govern.ladder
        && Grid.max_abs_diff
             (Pipeline_gen.run_pipeline built ~opts:Options.naive ~n)
             (Pipeline_gen.run_plan built chosen.Govern.plan ~n)
           < 1e-11)

let prop_deterministic =
  QCheck.Test.make ~name:"random pipelines: opt+ is deterministic" ~count:20
    Pipeline_gen.pipelines_arb
    (fun stages ->
      let built = Pipeline_gen.gen_pipeline_of stages in
      let a = run_pipeline built ~opts:Options.opt_plus ~n:32 in
      let b = run_pipeline built ~opts:Options.opt_plus ~n:32 in
      Grid.max_abs_diff a b = 0.0)

let () =
  Alcotest.run "random-pipelines"
    [ ( "properties",
        Qc_replay.to_alcotest_list
          [ prop_variants_agree; prop_ladder_sound; prop_deterministic ] ) ]
