(* The strongest equivalence check in the suite: generate random valid
   pipelines (generators in Pipeline_gen, shared with test_plan_check)
   and check that every optimizer variant computes exactly what the
   naive plan computes. *)

open Repro_core
module Grid = Repro_grid.Grid

let run_pipeline = Pipeline_gen.run_pipeline

let prop_variants_agree =
  QCheck.Test.make ~name:"random pipelines: all variants match naive"
    ~count:60 Pipeline_gen.pipelines_arb
    (fun stages ->
      let built = Pipeline_gen.gen_pipeline_of stages in
      let n = 32 in
      let reference = run_pipeline built ~opts:Options.naive ~n in
      List.for_all
        (fun opts ->
          let v = run_pipeline built ~opts ~n in
          Grid.max_abs_diff reference v < 1e-11)
        [ Options.opt; Options.opt_plus; Options.dtile_opt_plus;
          { Options.opt_plus with Options.group_size_limit = 2 };
          Options.with_tiles Options.opt_plus ~t2:[| 5; 9 |]
            ~t3:[| 4; 4; 8 |] ])

let prop_deterministic =
  QCheck.Test.make ~name:"random pipelines: opt+ is deterministic" ~count:20
    Pipeline_gen.pipelines_arb
    (fun stages ->
      let built = Pipeline_gen.gen_pipeline_of stages in
      let a = run_pipeline built ~opts:Options.opt_plus ~n:32 in
      let b = run_pipeline built ~opts:Options.opt_plus ~n:32 in
      Grid.max_abs_diff a b = 0.0)

let () =
  Alcotest.run "random-pipelines"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_variants_agree; prop_deterministic ] ) ]
