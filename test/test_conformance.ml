(* Conformance harness unit tests: the rectangular Verify regression, MMS
   order arithmetic, a quick differential-oracle case, and emitted-C
   run-equivalence on a real cycle plan (skipped visibly when no C
   compiler is installed). *)

open Repro_mg
open Repro_core
module Grid = Repro_grid.Grid

(* -- Verify on rectangular interiors (regression: it silently assumed
   square grids, looping interior_size in every dimension) -------------- *)

let test_verify_rectangular () =
  let n = 8 in
  (* 3 x 5 interior: v = x(1-x)y(1-y) scaled, f = A v computed by hand *)
  let g = Grid.create [| 5; 7 |] in
  Grid.fill_interior g ~f:(fun idx ->
      float_of_int ((idx.(0) * 10) + idx.(1)));
  let out = Grid.create [| 5; 7 |] in
  Verify.apply_poisson ~n ~v:g ~out;
  let invhsq = float_of_int (n * n) in
  (* check an interior point against the 5-point formula, including one
     adjacent to the long edge (j = 5) that the square assumption would
     have skipped or read out of range *)
  List.iter
    (fun (i, j) ->
      let c = Grid.get2 g i j in
      let expect =
        invhsq
        *. ((4.0 *. c) -. Grid.get2 g (i - 1) j -. Grid.get2 g (i + 1) j
           -. Grid.get2 g i (j - 1) -. Grid.get2 g i (j + 1))
      in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "A v at (%d,%d)" i j)
        expect (Grid.get2 out i j))
    [ (1, 1); (2, 3); (3, 5); (1, 5) ];
  (* error_l2 must cover all 15 interior points, not 9 *)
  let err = Verify.error_l2 ~v:g ~exact:(fun _ -> 0.0) in
  let sum = ref 0.0 in
  Grid.iter_interior g ~f:(fun _ x -> sum := !sum +. (x *. x));
  Alcotest.(check (float 1e-9))
    "error_l2 covers the rectangular interior"
    (sqrt (!sum /. 15.0))
    err

let test_verify_no_interior_rejected () =
  let g = Grid.create [| 2; 4 |] in
  let out = Grid.create [| 2; 4 |] in
  Alcotest.check_raises "no-interior grid rejected"
    (Invalid_argument "Verify: extent 2 leaves no interior") (fun () ->
      Verify.apply_poisson ~n:4 ~v:g ~out)

(* -- MMS order arithmetic --------------------------------------------- *)

let test_observed_order () =
  (* synthetic second-order decay: e = c / n^2 *)
  let samples = List.map (fun n -> (n, 3.0 /. float_of_int (n * n))) [ 8; 16; 32 ] in
  Alcotest.(check (float 1e-9)) "order of n^-2 data" 2.0
    (Verify.observed_order samples);
  let first_order = List.map (fun n -> (n, 1.0 /. float_of_int n)) [ 8; 16; 32 ] in
  Alcotest.(check (float 1e-9)) "order of n^-1 data" 1.0
    (Verify.observed_order first_order)

(* -- fill_val is stable (the C driver embeds the same constants) ------- *)

let test_fill_val () =
  (* spot values pinned so that an accidental change to either twin of
     the FNV fill breaks this test rather than silently breaking C
     equivalence *)
  let v = Conformance.fill_val ~input:0 [| 1; 1 |] in
  Alcotest.(check bool) "in range" true (v >= -0.5 && v < 0.5);
  Alcotest.(check (float 0.0))
    "deterministic" v
    (Conformance.fill_val ~input:0 [| 1; 1 |]);
  Alcotest.(check bool) "input index matters" true
    (Conformance.fill_val ~input:1 [| 1; 1 |] <> v);
  Alcotest.(check bool) "position matters" true
    (Conformance.fill_val ~input:0 [| 1; 2 |] <> v)

(* -- quick differential oracle case ------------------------------------ *)

let test_oracle_quick () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let case = Conformance.oracle_case ~quick:true cfg ~n:32 ~cycles:2 () in
  if not (Conformance.case_pass case) then
    Alcotest.failf "oracle case failed:@\n%a" Conformance.pp_case case

(* -- emitted-C run-equivalence ----------------------------------------- *)

let c_equiv_for opts name () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let plan = Solver.polymg_plan cfg ~n:32 ~opts in
  match Conformance.c_equivalence plan with
  | Conformance.C_ok _ -> ()
  | Conformance.C_skip reason ->
    Printf.printf "%s skipped: %s\n%!" name reason;
    Alcotest.skip ()
  | Conformance.C_fail { reason; max_abs; max_ulp } ->
    Alcotest.failf "%s: %s (max_abs=%.3e max_ulp=%.1e)" name reason max_abs
      max_ulp

let () =
  Alcotest.run "conformance"
    [ ( "verify",
        [ Alcotest.test_case "rectangular interiors" `Quick
            test_verify_rectangular;
          Alcotest.test_case "no-interior rejected" `Quick
            test_verify_no_interior_rejected;
          Alcotest.test_case "observed order" `Quick test_observed_order ] );
      ( "fill",
        [ Alcotest.test_case "deterministic fill" `Quick test_fill_val ] );
      ( "oracle",
        [ Alcotest.test_case "quick 2D V case" `Quick test_oracle_quick ] );
      ( "c-equivalence",
        [ Alcotest.test_case "naive plan" `Quick
            (c_equiv_for Options.naive "naive");
          Alcotest.test_case "opt+ plan" `Quick
            (c_equiv_for Options.opt_plus "opt+");
          Alcotest.test_case "dtile-opt+ plan" `Quick
            (c_equiv_for Options.dtile_opt_plus "dtile-opt+") ] ) ]
