(* Per-stage profiler tests.

   Property (Qc_replay, seed-replayable): samples recorded from real
   spawned domains — each with its own Domain.DLS accumulator table —
   merge via the parallel Welford combination into exactly the stats a
   single-pass reference computes over the concatenated samples
   (count/mean/variance/min/max/total).  Unit tests cover the site
   table edge cases: unrecorded sites report nothing, interning is
   idempotent, the disabled path records nothing and allocates nothing,
   late-interned high-id sites force accumulator-array growth without
   losing earlier sites, percentiles are nan on empty and clamped to
   the observed extremes, and reset drops samples but keeps interning. *)

module Profile = Repro_runtime.Profile
module Telemetry = Repro_runtime.Telemetry

let with_profile f =
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    f

(* Fresh site names per test run: interning is global and permanent, so
   reusing a name across tests would alias their samples. *)
let fresh =
  let k = ref 0 in
  fun name ->
    incr k;
    Printf.sprintf "test.%s.%d" name !k

(* -- property: cross-domain merge equals single-pass reference --------- *)

(* Two-pass reference: exact mean, then centered sum of squares — avoids
   the cancellation a naive sum-of-squares reference would add, so the
   comparison checks the profiler's merge, not the reference's error. *)
let reference samples =
  let n = List.length samples in
  let total = List.fold_left ( +. ) 0.0 samples in
  let mean = total /. float_of_int n in
  let m2 =
    List.fold_left (fun a v -> a +. ((v -. mean) *. (v -. mean))) 0.0 samples
  in
  let variance = if n < 2 then 0.0 else m2 /. float_of_int (n - 1) in
  ( n,
    mean,
    variance,
    List.fold_left Float.min infinity samples,
    List.fold_left Float.max neg_infinity samples,
    total )

let close ?(rel = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= rel *. scale

(* Per-domain sample batches: positive ns-like magnitudes spanning the
   histogram's bucket range, at least one non-empty batch overall. *)
let batches_arb =
  QCheck.(
    make
      ~print:Print.(list (list float))
      Gen.(
        list_size (int_range 1 4)
          (list_size (int_range 0 30)
             (map (fun x -> 0.5 +. (abs_float x *. 1e6)) float)))
    |> QCheck.add_shrink_invariant (fun bs ->
           List.exists (fun b -> b <> []) bs))

let prop_merged_welford =
  QCheck.Test.make ~count:60 ~name:"cross-domain merge = single-pass stats"
    batches_arb (fun batches ->
      QCheck.assume (List.exists (fun b -> b <> []) batches);
      with_profile @@ fun () ->
      let s = Profile.site (fresh "welford") in
      (* sequential spawn/join: each domain still gets its own DLS table,
         so the merge path is exercised without racing the recorder *)
      List.iteri
        (fun i batch ->
          if i = 0 then List.iter (Profile.record s) batch
          else
            Domain.join
              (Domain.spawn (fun () -> List.iter (Profile.record s) batch)))
        batches;
      let all = List.concat batches in
      let n, mean, variance, mn, mx, total = reference all in
      match Profile.stats s with
      | None -> QCheck.Test.fail_report "populated site reported None"
      | Some st ->
        if st.Profile.count <> n then
          QCheck.Test.fail_reportf "count %d, want %d" st.Profile.count n
        else if not (close st.Profile.mean mean) then
          QCheck.Test.fail_reportf "mean %.17g, want %.17g" st.Profile.mean
            mean
        else if not (close ~rel:1e-6 st.Profile.variance variance) then
          QCheck.Test.fail_reportf "variance %.17g, want %.17g"
            st.Profile.variance variance
        else if st.Profile.min <> mn || st.Profile.max <> mx then
          QCheck.Test.fail_reportf "min/max %.17g/%.17g, want %.17g/%.17g"
            st.Profile.min st.Profile.max mn mx
        else if not (close st.Profile.total total) then
          QCheck.Test.fail_reportf "total %.17g, want %.17g" st.Profile.total
            total
        else true)

(* -- unit: site table edge cases --------------------------------------- *)

let test_unrecorded_site () =
  with_profile @@ fun () ->
  let s = Profile.site (fresh "silent") in
  Alcotest.(check bool) "no stats" true (Profile.stats s = None);
  Alcotest.(check bool)
    "percentile is nan" true
    (Float.is_nan (Profile.percentile s 0.5));
  Alcotest.(check bool)
    "absent from sites ()" true
    (not (List.mem_assoc (Profile.site_name s) (Profile.sites ())))

let test_interning_idempotent () =
  with_profile @@ fun () ->
  let name = fresh "intern" in
  let a = Profile.site name and b = Profile.site name in
  Alcotest.(check string) "same name" (Profile.site_name a)
    (Profile.site_name b);
  Profile.record a 10.0;
  Profile.record b 20.0;
  (* both handles feed one accumulator *)
  match Profile.stats a with
  | None -> Alcotest.fail "no stats after recording"
  | Some st ->
    Alcotest.(check int) "one site, two samples" 2 st.Profile.count;
    Alcotest.(check (float 1e-9)) "total" 30.0 st.Profile.total

let test_disabled_records_nothing () =
  Profile.reset ();
  Profile.set_enabled false;
  let s = Profile.site (fresh "disabled") in
  let t0 = Profile.start () in
  Alcotest.(check int) "start returns 0 when disabled" 0 t0;
  let v = Sys.opaque_identity 17.0 in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Profile.stop (Profile.start ()) s;
    Profile.record s v
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f minor words" words)
    true (words < 256.0);
  Alcotest.(check bool) "nothing recorded" true (Profile.stats s = None)

let test_high_id_growth () =
  with_profile @@ fun () ->
  let early = Profile.site (fresh "early") in
  Profile.record early 5.0;
  (* force the per-domain accumulator array to grow well past its
     initial capacity, then record on the last (highest-id) site *)
  let late = ref early in
  for i = 1 to 200 do
    late := Profile.site (fresh (Printf.sprintf "grow%d" i))
  done;
  Profile.record !late 7.0;
  (match Profile.stats !late with
   | None -> Alcotest.fail "high-id site lost its sample"
   | Some st -> Alcotest.(check int) "high-id count" 1 st.Profile.count);
  match Profile.stats early with
  | None -> Alcotest.fail "growth dropped an earlier site's samples"
  | Some st -> Alcotest.(check (float 1e-9)) "early total" 5.0 st.Profile.total

let test_percentile_clamped () =
  with_profile @@ fun () ->
  let s = Profile.site (fresh "pct") in
  (* 9 fast samples and 1 slow one land in distant log2 buckets *)
  for _ = 1 to 9 do
    Profile.record s 100.0
  done;
  Profile.record s 10000.0;
  let p0 = Profile.percentile s 0.0
  and p50 = Profile.percentile s 0.5
  and p100 = Profile.percentile s 1.0 in
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 100.0 p0;
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 10000.0 p100;
  Alcotest.(check bool) "p50 within observed range" true
    (p50 >= 100.0 && p50 <= 10000.0)

let test_reset_keeps_interning () =
  with_profile @@ fun () ->
  let name = fresh "reset" in
  let s = Profile.site name in
  Profile.record s 42.0;
  Profile.reset ();
  Alcotest.(check bool) "samples dropped" true (Profile.stats s = None);
  (* the interned site survives and records again after reset *)
  let s' = Profile.site name in
  Profile.record s' 8.0;
  match Profile.stats s with
  | None -> Alcotest.fail "site unusable after reset"
  | Some st ->
    Alcotest.(check int) "fresh count" 1 st.Profile.count;
    Alcotest.(check (float 1e-9)) "fresh total" 8.0 st.Profile.total

let () =
  Alcotest.run "profile"
    [ ("properties", Qc_replay.to_alcotest_list [ prop_merged_welford ]);
      ( "sites",
        [ Alcotest.test_case "unrecorded site reports nothing" `Quick
            test_unrecorded_site;
          Alcotest.test_case "interning is idempotent" `Quick
            test_interning_idempotent;
          Alcotest.test_case "disabled path records and allocates nothing"
            `Quick test_disabled_records_nothing;
          Alcotest.test_case "late high-id site forces table growth" `Quick
            test_high_id_growth;
          Alcotest.test_case "percentiles clamp to observed extremes" `Quick
            test_percentile_clamped;
          Alcotest.test_case "reset drops samples, keeps interning" `Quick
            test_reset_keeps_interning ] ) ]
