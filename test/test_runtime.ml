open Repro_runtime
module Buf = Repro_grid.Buf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_parallel_sequential_sum () =
  let acc = Atomic.make 0 in
  Parallel.parallel_for Parallel.sequential ~lo:1 ~hi:100 (fun i ->
      ignore (Atomic.fetch_and_add acc i));
  check_int "sum" 5050 (Atomic.get acc)

let test_parallel_empty_range () =
  let hit = ref false in
  Parallel.parallel_for Parallel.sequential ~lo:5 ~hi:4 (fun _ -> hit := true);
  check_bool "no calls" false !hit

let test_parallel_pool_sum () =
  let pool = Parallel.create 3 in
  check_int "size" 3 (Parallel.size pool);
  let acc = Atomic.make 0 in
  Parallel.parallel_for pool ~lo:1 ~hi:1000 (fun i ->
      ignore (Atomic.fetch_and_add acc i));
  check_int "sum" 500500 (Atomic.get acc);
  (* pool is reusable *)
  let acc2 = Atomic.make 0 in
  Parallel.parallel_for pool ~lo:0 ~hi:9 (fun _ ->
      ignore (Atomic.fetch_and_add acc2 1));
  check_int "reuse" 10 (Atomic.get acc2);
  Parallel.teardown pool

let test_parallel_each_index_once () =
  let pool = Parallel.create 2 in
  let counts = Array.make 64 0 in
  let m = Mutex.create () in
  Parallel.parallel_for pool ~lo:0 ~hi:63 (fun i ->
      Mutex.lock m;
      counts.(i) <- counts.(i) + 1;
      Mutex.unlock m);
  Parallel.teardown pool;
  Array.iter (fun c -> check_int "once" 1 c) counts

let test_parallel_exception () =
  let pool = Parallel.create 2 in
  (try
     Parallel.parallel_for pool ~lo:0 ~hi:10 (fun i ->
         if i = 5 then failwith "boom");
     Alcotest.fail "expected exception"
   with Failure msg -> check_bool "msg" true (msg = "boom"));
  (* pool still usable after the failure *)
  let acc = Atomic.make 0 in
  Parallel.parallel_for pool ~lo:0 ~hi:3 (fun _ ->
      ignore (Atomic.fetch_and_add acc 1));
  check_int "after exception" 4 (Atomic.get acc);
  Parallel.teardown pool

let test_parallel_nested_inline () =
  let pool = Parallel.create 2 in
  let acc = Atomic.make 0 in
  Parallel.parallel_for pool ~lo:0 ~hi:3 (fun _ ->
      Parallel.parallel_for pool ~lo:0 ~hi:3 (fun _ ->
          ignore (Atomic.fetch_and_add acc 1)));
  check_int "nested" 16 (Atomic.get acc);
  Parallel.teardown pool

let test_parallel_create_invalid () =
  Alcotest.check_raises "zero" (Invalid_argument "Parallel.create: pool size must be >= 1")
    (fun () -> ignore (Parallel.create 0))

let test_mempool_basic () =
  let p = Mempool.create () in
  let b1 = Mempool.acquire p 100 in
  check_bool "len" true (Buf.len b1 >= 100);
  check_int "live" 1 (Mempool.live_count p);
  Mempool.release p b1;
  check_int "released" 0 (Mempool.live_count p);
  (* the freed buffer is reused *)
  let b2 = Mempool.acquire p 80 in
  check_bool "reused" true (b1 == b2);
  let s = Mempool.stats p in
  check_int "fresh" 1 s.Mempool.fresh_allocs;
  check_int "hits" 1 s.Mempool.reuse_hits

let test_mempool_best_fit () =
  let p = Mempool.create () in
  let small = Mempool.acquire p 10 in
  let big = Mempool.acquire p 1000 in
  Mempool.release p small;
  Mempool.release p big;
  (* a request for 10 must take the small buffer, not the big one *)
  let got = Mempool.acquire p 10 in
  check_bool "best fit" true (got == small)

let test_mempool_no_fit_allocates () =
  let p = Mempool.create () in
  let b1 = Mempool.acquire p 10 in
  Mempool.release p b1;
  let b2 = Mempool.acquire p 20 in
  check_bool "fresh" true (not (b1 == b2));
  check_int "fresh count" 2 (Mempool.stats p).Mempool.fresh_allocs

let test_mempool_double_release () =
  let p = Mempool.create () in
  let b = Mempool.acquire p 10 in
  Mempool.release p b;
  (* the diagnostic names the buffer size and how often it was handed out *)
  Alcotest.check_raises "double"
    (Invalid_argument
       "Mempool.release: double release of a 10-element buffer (acquired 1 \
        times from this pool)") (fun () -> Mempool.release p b)

let test_mempool_foreign_release () =
  let p = Mempool.create () in
  let b = Buf.create 10 in
  Alcotest.check_raises "foreign"
    (Invalid_argument "Mempool.release: buffer not from this pool (or stale view)")
    (fun () -> Mempool.release p b)

let test_mempool_stats_bytes () =
  let p = Mempool.create () in
  let b1 = Mempool.acquire p 100 in
  let _b2 = Mempool.acquire p 50 in
  let s = Mempool.stats p in
  check_int "live bytes" (8 * 150) s.Mempool.live_bytes;
  check_int "peak" (8 * 150) s.Mempool.peak_live_bytes;
  Mempool.release p b1;
  let s = Mempool.stats p in
  check_int "after release" (8 * 50) s.Mempool.live_bytes;
  check_int "peak sticky" (8 * 150) s.Mempool.peak_live_bytes;
  check_int "pool bytes" (8 * 150) s.Mempool.pool_bytes

let test_mempool_clear () =
  let p = Mempool.create () in
  ignore (Mempool.acquire p 10);
  Mempool.clear p;
  check_int "cleared" 0 (Mempool.stats p).Mempool.fresh_allocs

(* End-to-end pooling check (paper §3.2.3): every full-array request of
   the second cycle must be served from the pool.  Fresh allocations are
   exact-size and best-fit matching is deterministic, so the acquire
   sequence of cycle 2 replays cycle 1 with hits only. *)
let test_mempool_solver_two_cycles () =
  let module Cycle = Repro_mg.Cycle in
  let module Solver = Repro_mg.Solver in
  let module Problem = Repro_mg.Problem in
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let n = Cycle.min_n cfg * 8 in
  Repro_core.Exec.with_runtime @@ fun rt ->
  let stepper =
    Solver.polymg_stepper cfg ~n ~opts:Repro_core.Options.opt_plus ~rt
  in
  let problem = Problem.poisson ~dims:2 ~n in
  ignore (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
  let s1 = Mempool.stats rt.Repro_core.Exec.pool in
  check_bool "cycle 1 allocates" true (s1.Mempool.fresh_allocs > 0);
  ignore (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
  let s2 = Mempool.stats rt.Repro_core.Exec.pool in
  check_int "no fresh allocations in cycle 2" s1.Mempool.fresh_allocs
    s2.Mempool.fresh_allocs;
  check_int "cycle 2 is 100% pool hits"
    ((2 * s1.Mempool.reuse_hits) + s1.Mempool.fresh_allocs)
    s2.Mempool.reuse_hits

(* -- poison / canary mode ----------------------------------------------- *)

let test_poison_fresh_is_snan () =
  Mempool.with_pool ~poison:true @@ fun p ->
  check_bool "poisoned" true (Mempool.poisoned p);
  let b = Mempool.acquire p 16 in
  check_int "view is exactly the request" 16 (Buf.len b);
  for i = 0 to 15 do
    check_bool "snan" true (Float.is_nan (Buf.get b i))
  done;
  Mempool.release p b

let test_poison_stale_reuse_is_snan () =
  Mempool.with_pool ~poison:true @@ fun p ->
  let b = Mempool.acquire p 16 in
  Buf.fill b 1.0;
  Mempool.release p b;
  (* reuse hands the same storage back, but the old values must be gone *)
  let b2 = Mempool.acquire p 16 in
  for i = 0 to 15 do
    check_bool "stale data unreadable" true (Float.is_nan (Buf.get b2 i))
  done;
  Mempool.release p b2

let contains msg needle =
  let nl = String.length needle and ml = String.length msg in
  let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
  go 0

let test_poison_guard_clobber_detected () =
  Mempool.with_pool ~poison:true @@ fun p ->
  let b = Mempool.acquire p 16 in
  (* simulate an out-of-bounds tile write: the view is 16 elements, but
     unsafe writes past it land in the guard words of the raw buffer *)
  Buf.unsafe_set b 16 42.0;
  match Mempool.release p b with
  | () -> Alcotest.fail "clobbered guard word not detected"
  | exception Invalid_argument msg ->
    check_bool "names the guard word" true
      (contains msg "guard word 0 past a 16-element buffer")

let test_with_buf_releases_on_exception () =
  Mempool.with_pool ~poison:true @@ fun p ->
  (try
     Mempool.with_buf p 8 (fun _ -> failwith "boom")
   with Failure _ -> ());
  check_int "released on exception" 0 (Mempool.live_count p);
  (* and the buffer went back through the poisoning release path *)
  let b = Mempool.acquire p 8 in
  check_bool "repoisoned" true (Float.is_nan (Buf.get b 0))

let test_plain_pool_unpoisoned () =
  Mempool.with_pool @@ fun p ->
  check_bool "not poisoned" false (Mempool.poisoned p);
  let b = Mempool.acquire p 16 in
  check_int "no guard overhead in view" 16 (Buf.len b);
  Mempool.release p b

let prop_pool_serves_cycles =
  QCheck.Test.make
    ~name:"pooled acquire/release across cycles allocates once per slot"
    ~count:50
    QCheck.(pair (int_range 1 8) (int_range 2 6))
    (fun (buffers, cycles) ->
      let p = Mempool.create () in
      for _ = 1 to cycles do
        let bs = List.init buffers (fun i -> Mempool.acquire p ((i + 1) * 16)) in
        List.iter (Mempool.release p) bs
      done;
      (Mempool.stats p).Mempool.fresh_allocs = buffers)

let () =
  Alcotest.run "runtime"
    [ ( "parallel",
        [ Alcotest.test_case "sequential sum" `Quick test_parallel_sequential_sum;
          Alcotest.test_case "empty range" `Quick test_parallel_empty_range;
          Alcotest.test_case "pool sum" `Quick test_parallel_pool_sum;
          Alcotest.test_case "each index once" `Quick test_parallel_each_index_once;
          Alcotest.test_case "exception propagates" `Quick test_parallel_exception;
          Alcotest.test_case "nested inline" `Quick test_parallel_nested_inline;
          Alcotest.test_case "invalid size" `Quick test_parallel_create_invalid ] );
      ( "mempool",
        [ Alcotest.test_case "acquire/release" `Quick test_mempool_basic;
          Alcotest.test_case "best fit" `Quick test_mempool_best_fit;
          Alcotest.test_case "no fit" `Quick test_mempool_no_fit_allocates;
          Alcotest.test_case "double release" `Quick test_mempool_double_release;
          Alcotest.test_case "foreign release" `Quick test_mempool_foreign_release;
          Alcotest.test_case "stats" `Quick test_mempool_stats_bytes;
          Alcotest.test_case "clear" `Quick test_mempool_clear;
          Alcotest.test_case "solver two cycles" `Quick
            test_mempool_solver_two_cycles ] );
      ( "poison",
        [ Alcotest.test_case "fresh buffers are signaling NaN" `Quick
            test_poison_fresh_is_snan;
          Alcotest.test_case "stale data unreadable after reuse" `Quick
            test_poison_stale_reuse_is_snan;
          Alcotest.test_case "guard-word clobber detected" `Quick
            test_poison_guard_clobber_detected;
          Alcotest.test_case "with_buf releases on exception" `Quick
            test_with_buf_releases_on_exception;
          Alcotest.test_case "plain pool unpoisoned" `Quick
            test_plain_pool_unpoisoned ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pool_serves_cycles ] ) ]
