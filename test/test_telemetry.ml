open Repro_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser — validation only, enough to check that the
   Chrome trace output is well-formed and structurally correct. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char b c;
          advance ();
          go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> fail "bad \\u escape")
          done;
          Buffer.add_char b '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        if Char.code c < 0x20 then fail "raw control char in string";
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Telemetry.reset ())
    f

let spin () =
  (* a little real work so spans have nonzero width *)
  let acc = ref 0.0 in
  for i = 1 to 10_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

let find_span name =
  match List.find_opt (fun (s : Telemetry.span) -> s.name = name)
          (Telemetry.spans ())
  with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting () =
  with_telemetry (fun () ->
      Telemetry.with_span "outer" (fun () ->
          spin ();
          Telemetry.with_span "inner" (fun () -> spin ());
          spin ());
      let outer = find_span "outer" in
      let inner = find_span "inner" in
      check_bool "inner starts after outer" true
        (inner.Telemetry.start_ns >= outer.Telemetry.start_ns);
      check_bool "inner ends before outer" true
        (inner.Telemetry.start_ns + inner.Telemetry.dur_ns
         <= outer.Telemetry.start_ns + outer.Telemetry.dur_ns);
      check_bool "inner shorter" true
        (inner.Telemetry.dur_ns <= outer.Telemetry.dur_ns);
      check_int "same domain" outer.Telemetry.tid inner.Telemetry.tid)

let test_span_ordering () =
  with_telemetry (fun () ->
      Telemetry.with_span "first" spin;
      Telemetry.with_span "second" spin;
      match Telemetry.spans () with
      | [ a; b ] ->
        Alcotest.(check string) "order" "first" a.Telemetry.name;
        Alcotest.(check string) "order" "second" b.Telemetry.name;
        check_bool "sorted by start" true
          (a.Telemetry.start_ns <= b.Telemetry.start_ns)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

let test_span_exception () =
  with_telemetry (fun () ->
      (try Telemetry.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      ignore (find_span "boom"))

let test_counters_under_parallel () =
  let pool = Parallel.create 3 in
  with_telemetry (fun () ->
      let c = Telemetry.counter "test.par" in
      Parallel.parallel_for pool ~lo:1 ~hi:200 (fun _ -> Telemetry.add c 1);
      (* join the workers: their per-region chunk/busy updates land after
         the last loop index completes, so read counters only after *)
      Parallel.teardown pool;
      check_int "all increments" 200 (Telemetry.value c);
      let chunks =
        List.assoc "parallel.chunks" (Telemetry.counters ())
      in
      check_int "every index claimed once" 200 chunks;
      let busy =
        List.filter
          (fun (s : Telemetry.span) -> s.Telemetry.cat = "parallel")
          (Telemetry.spans ())
      in
      check_bool "busy spans recorded" true (List.length busy >= 1);
      let busy_ns = List.assoc "parallel.busy_ns" (Telemetry.counters ()) in
      check_bool "busy time accumulated" true (busy_ns > 0))

let test_counter_max_to () =
  with_telemetry (fun () ->
      let c = Telemetry.counter "test.max" in
      Telemetry.max_to c 10;
      Telemetry.max_to c 5;
      check_int "max semantics" 10 (Telemetry.value c))

let test_trace_json_roundtrip () =
  with_telemetry (fun () ->
      Telemetry.with_span ~cat:"test"
        ~args:
          [ ("quote", Telemetry.Str "a\"b\\c\nd");
            ("n", Telemetry.Int 42);
            ("x", Telemetry.Float 1.5) ]
        "span \"quoted\" name" spin;
      Telemetry.with_span "plain" spin;
      let trace = Telemetry.chrome_trace () in
      match parse_json trace with
      | Obj fields ->
        let events =
          match List.assoc_opt "traceEvents" fields with
          | Some (Arr evs) -> evs
          | _ -> Alcotest.fail "traceEvents missing or not an array"
        in
        check_int "one event per span" 2 (List.length events);
        List.iter
          (fun ev ->
            match ev with
            | Obj f ->
              let has k = List.mem_assoc k f in
              check_bool "name" true (has "name");
              check_bool "ts" true (has "ts");
              check_bool "dur" true (has "dur");
              check_bool "tid" true (has "tid");
              check_bool "pid" true (has "pid");
              (match List.assoc "ph" f with
               | Str "X" -> ()
               | _ -> Alcotest.fail "ph must be \"X\"")
            | _ -> Alcotest.fail "event not an object")
          events
      | _ -> Alcotest.fail "trace is not a JSON object")

let test_trace_file () =
  with_telemetry (fun () ->
      Telemetry.with_span "filed" spin;
      let path = Filename.temp_file "telemetry" ".json" in
      Telemetry.write_chrome_trace path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Sys.remove path;
      match parse_json contents with
      | Obj _ -> ()
      | _ -> Alcotest.fail "file trace is not a JSON object")

let test_disabled_noop () =
  Telemetry.set_enabled false;
  Telemetry.reset ();
  let c = Telemetry.counter "test.disabled" in
  check_int "begin_span token" 0 (Telemetry.begin_span ());
  Telemetry.end_span 0 "never";
  Telemetry.add c 5;
  Telemetry.max_to c 5;
  check_int "counter untouched" 0 (Telemetry.value c);
  check_int "no spans" 0 (List.length (Telemetry.spans ()));
  (* the disabled path must not allocate *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let t = Telemetry.begin_span () in
    Telemetry.end_span t "never";
    Telemetry.add c 1
  done;
  let w1 = Gc.minor_words () in
  check_bool "no allocation when disabled" true (w1 -. w0 < 256.0)

let test_disabled_cheap () =
  Telemetry.set_enabled false;
  let c = Telemetry.counter "test.cheap" in
  let iters = 100_000 in
  let t0 = Telemetry.now_ns () in
  for _ = 1 to iters do
    let t = Telemetry.begin_span () in
    Telemetry.end_span t "never";
    Telemetry.add c 1
  done;
  let per_call =
    float_of_int (Telemetry.now_ns () - t0) /. float_of_int iters
  in
  (* a handful of atomic loads; 1us is orders of magnitude of headroom,
     so this cannot flake while still catching a clock read sneaking in *)
  check_bool "disabled path under 1us per site" true (per_call < 1000.0)

let test_reset () =
  with_telemetry (fun () ->
      let c = Telemetry.counter "test.reset" in
      Telemetry.add c 3;
      Telemetry.with_span "gone" spin;
      Telemetry.reset ();
      check_int "spans cleared" 0 (List.length (Telemetry.spans ()));
      check_int "counters zeroed" 0 (Telemetry.value c))

let test_report_smoke () =
  with_telemetry (fun () ->
      let c = Telemetry.counter "test.report" in
      Telemetry.add c 7;
      Telemetry.with_span "reported" spin;
      let out = Format.asprintf "%t" Telemetry.report in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh
          && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      check_bool "span row" true (contains out "reported");
      check_bool "counter row" true (contains out "test.report");
      check_bool "counter sections" true (contains out "counters"))

let () =
  Alcotest.run "telemetry"
    [ ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "ordering" `Quick test_span_ordering;
          Alcotest.test_case "exception safety" `Quick test_span_exception ] );
      ( "counters",
        [ Alcotest.test_case "parallel totals" `Quick
            test_counters_under_parallel;
          Alcotest.test_case "max_to" `Quick test_counter_max_to ] );
      ( "trace",
        [ Alcotest.test_case "json roundtrip" `Quick test_trace_json_roundtrip;
          Alcotest.test_case "file output" `Quick test_trace_file ] );
      ( "disabled",
        [ Alcotest.test_case "no-op" `Quick test_disabled_noop;
          Alcotest.test_case "cheap" `Quick test_disabled_cheap ] );
      ( "lifecycle",
        [ Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "report smoke" `Quick test_report_smoke ] ) ]
