(* Snapshot container and checkpoint-store tests.

   Properties (Qc_replay, seed-replayable): the polymg.snapshot/1
   container round-trips metadata and payloads bit-identically, and any
   single-byte corruption, truncation, or trailing garbage makes [read]
   reject the file — the CRC framing never deserializes a torn write.
   Unit tests cover the CRC test vector, atomic replacement, generation
   rotation (the newest good generation is never deleted), corrupt-
   generation fallback, the deadline-aware cadence clamp, and the
   sink's deferred-flush copy semantics. *)

open Repro_mg
module Grid = Repro_grid.Grid
module Buf = Repro_grid.Buf
module Snapshot = Repro_runtime.Snapshot
module Json = Repro_runtime.Json

let tmpdir = "snapshot-test-tmp"

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let fresh =
  let k = ref 0 in
  fun name ->
    incr k;
    mkdir_p tmpdir;
    Filename.concat tmpdir (Printf.sprintf "%s-%d" name !k)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* -- arbitraries -------------------------------------------------------- *)

let meta_arb =
  (* metadata documents like Checkpoint's: string/int fields only (float
     round-tripping is covered by the grid codec property) *)
  QCheck.(
    make
      ~print:(fun kvs ->
        Json.to_string
          (Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) kvs)))
      Gen.(
        small_list
          (pair
             (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
             small_int)))

let payloads_arb =
  QCheck.(list_of_size Gen.(int_range 0 3) (string_gen Gen.char))

let snapshot_arb = QCheck.pair meta_arb payloads_arb

let meta_of kvs =
  (* duplicate keys would make printed-form comparison see the parser's
     duplicate policy, not the container; last-one-wins dedup instead *)
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) kvs;
  Json.Obj
    (Hashtbl.fold (fun k v acc -> (k, Json.num v) :: acc) tbl []
    |> List.sort compare)

let write_snapshot (kvs, payloads) =
  let path = fresh "prop" in
  Snapshot.write ~path ~meta:(meta_of kvs) ~payloads;
  path

(* -- properties --------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"snapshot: write/read round-trips bit-identically"
    ~count:100 snapshot_arb (fun ((kvs, payloads) as s) ->
      let path = write_snapshot s in
      match Snapshot.read ~path with
      | Error m -> QCheck.Test.fail_reportf "rejected own write: %s" m
      | Ok (meta, payloads') ->
        Json.to_string meta = Json.to_string (meta_of kvs)
        && payloads' = payloads)

let prop_corruption_rejected =
  QCheck.Test.make
    ~name:"snapshot: any single-byte corruption is rejected" ~count:200
    QCheck.(triple snapshot_arb (int_range 0 1_000_000) (int_range 1 255))
    (fun (s, off, mask) ->
      let path = write_snapshot s in
      let bytes = Bytes.of_string (read_file path) in
      let i = off mod Bytes.length bytes in
      Bytes.set bytes i
        (Char.chr (Char.code (Bytes.get bytes i) lxor mask));
      write_file path (Bytes.to_string bytes);
      match Snapshot.read ~path with
      | Error _ -> true
      | Ok _ ->
        QCheck.Test.fail_reportf
          "byte %d xor 0x%02x accepted (file %d bytes)" i mask
          (Bytes.length bytes))

let prop_truncation_rejected =
  QCheck.Test.make ~name:"snapshot: any truncation is rejected" ~count:200
    QCheck.(pair snapshot_arb (int_range 0 1_000_000))
    (fun (s, cut) ->
      let path = write_snapshot s in
      let whole = read_file path in
      let keep = cut mod String.length whole in
      write_file path (String.sub whole 0 keep);
      match Snapshot.read ~path with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_reportf "prefix of %d bytes accepted" keep)

let prop_trailing_rejected =
  QCheck.Test.make ~name:"snapshot: trailing bytes are rejected" ~count:50
    snapshot_arb (fun s ->
      let path = write_snapshot s in
      write_file path (read_file path ^ "x");
      match Snapshot.read ~path with Error _ -> true | Ok _ -> false)

let prop_grid_codec =
  QCheck.Test.make ~name:"snapshot: grid payload codec is bit-exact"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 64) float)
    (fun xs ->
      let buf = Buf.of_array (Array.of_list xs) in
      let out = Buf.create (Buf.len buf) in
      match Snapshot.payload_to_buf (Snapshot.payload_of_buf buf) out with
      | Error m -> QCheck.Test.fail_reportf "decode: %s" m
      | Ok () ->
        List.for_all
          (fun i ->
            Int64.bits_of_float (Buf.get buf i)
            = Int64.bits_of_float (Buf.get out i))
          (List.init (Buf.len buf) Fun.id))

(* -- unit tests --------------------------------------------------------- *)

let test_crc_vector () =
  (* the classic IEEE CRC-32 check value *)
  Alcotest.(check int)
    "crc32(123456789)" 0xCBF43926
    (Snapshot.crc32 "123456789")

let test_atomic_replace () =
  let path = fresh "atomic" in
  Snapshot.atomic_write_string ~path "first\n";
  Snapshot.atomic_write_string ~path "second\n";
  Alcotest.(check string) "replaced" "second\n" (read_file path);
  let base = Filename.basename path ^ ".tmp" in
  Alcotest.(check bool)
    "no temp droppings" false
    (Array.exists
       (fun f ->
         String.length f >= String.length base
         && String.sub f 0 (String.length base) = base)
       (Sys.readdir (Filename.dirname path)))

let mk_state ~cycle =
  let v = Grid.create [| 9; 9 |] in
  Grid.fill_interior v ~f:(fun idx ->
      float_of_int ((cycle * 100) + (idx.(0) * 10) + idx.(1)));
  { Checkpoint.cycle;
    residual = 1.0 /. float_of_int cycle;
    dims = 2;
    n = 8;
    variant = "opt+";
    plan_digest = "test-digest";
    seed = 0;
    history =
      [ { Solver.cycle; residual = 1.0; seconds = 0.0; status = Solver.Ok } ];
    v }

let config dir = { Checkpoint.dir; every = 1; keep = 3 }

let test_rotation () =
  let dir = fresh "rotate" in
  let cfg = config dir in
  List.iter (fun c -> ignore (Checkpoint.save cfg (mk_state ~cycle:c)))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int))
    "keeps the last 3 generations" [ 3; 4; 5 ]
    (Checkpoint.generations ~dir)

let test_corrupt_fallback () =
  let dir = fresh "fallback" in
  let cfg = config dir in
  List.iter (fun c -> ignore (Checkpoint.save cfg (mk_state ~cycle:c)))
    [ 1; 2; 3 ];
  (* flip a payload byte of the newest generation *)
  let path = Checkpoint.gen_path ~dir 3 in
  let b = Bytes.of_string (read_file path) in
  let i = Bytes.length b - 20 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  write_file path (Bytes.to_string b);
  match Checkpoint.load_latest ~dir with
  | Error m -> Alcotest.failf "no fallback: %s" m
  | Ok r ->
    Alcotest.(check int) "fell back to generation 2" 2 r.Checkpoint.gen;
    Alcotest.(check int)
      "rejected exactly the corrupt generation" 1
      (List.length r.Checkpoint.rejected);
    Alcotest.(check int)
      "restored state is generation 2's" 2
      r.Checkpoint.state.Checkpoint.cycle;
    let expect = mk_state ~cycle:2 in
    Alcotest.(check (float 0.0))
      "restored iterate bit-identical" 0.0
      (Buf.max_abs_diff r.Checkpoint.state.Checkpoint.v.Grid.buf
         expect.Checkpoint.v.Grid.buf)

let test_empty_dir () =
  let dir = fresh "empty" in
  mkdir_p dir;
  match Checkpoint.load_latest ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty dir produced a generation"

let test_effective_every () =
  Alcotest.(check int) "no deadline keeps the cadence" 5
    (Checkpoint.effective_every ~every:5 ~deadline:None);
  Alcotest.(check int) "a deadline clamps to every cycle" 1
    (Checkpoint.effective_every ~every:5 ~deadline:(Some 0.5))

let test_sink_flush_copies () =
  (* off-cadence accepted state must be snapshotted by value: the solve
     loop ping-pongs the iterate buffer after on_accept returns *)
  let dir = fresh "sink" in
  let sink =
    Checkpoint.sink
      { Checkpoint.dir; every = 1000; keep = 3 }
      ~dims:2 ~n:8 ~variant:"opt+" ~plan_digest:"test-digest" ()
  in
  let v = Grid.create [| 9; 9 |] in
  Grid.fill_interior v ~f:(fun _ -> 7.0);
  sink.Checkpoint.on_accept ~cycle:1 ~residual:0.5 ~v
    ~stats:[ { Solver.cycle = 1; residual = 0.5; seconds = 0.0;
               status = Solver.Ok } ];
  Grid.fill_interior v ~f:(fun _ -> -1.0) (* the loop reuses the buffer *);
  (match sink.Checkpoint.flush () with
   | None -> Alcotest.fail "flush had nothing to save"
   | Some _ -> ());
  match Checkpoint.load_latest ~dir with
  | Error m -> Alcotest.failf "load after flush: %s" m
  | Ok r ->
    Alcotest.(check (float 0.0))
      "flushed the accepted values, not the reused buffer" 7.0
      (Grid.get2 r.Checkpoint.state.Checkpoint.v 3 3)

let () =
  rm_rf tmpdir;
  let unit name f = Alcotest.test_case name `Quick f in
  Alcotest.run "snapshot"
    [ ( "properties",
        Qc_replay.to_alcotest_list
          [ prop_roundtrip;
            prop_corruption_rejected;
            prop_truncation_rejected;
            prop_trailing_rejected;
            prop_grid_codec ] );
      ( "unit",
        [ unit "crc32 test vector" test_crc_vector;
          unit "atomic replacement" test_atomic_replace;
          unit "generation rotation" test_rotation;
          unit "corrupt-generation fallback" test_corrupt_fallback;
          unit "empty directory" test_empty_dir;
          unit "deadline clamps cadence" test_effective_every;
          unit "sink deferred flush copies" test_sink_flush_copies ] ) ]
