(* Multigrid-as-a-service unit tests: the admission, fairness, and
   plan-cache machinery of Repro_mg.Serve, driven deterministically with
   a frozen injectable clock and caller-driven execution
   ([sv_workers = 0] + [step]).  The concurrent end-to-end behavior is
   exercised by bench/traffic.exe; here every queue bound, token-bucket
   decision, eviction choice, and status/exit-code mapping is pinned
   exactly. *)

open Repro_mg

(* -- harness ------------------------------------------------------------ *)

(* A frozen clock the test advances by hand: token refill, queue waits,
   and deadline checks all become exact arithmetic. *)
let clock_now = ref 0.0

let server ?(queue_cap = 64) ?(workers = 0) ?(tenants = []) ?(allow_faults = false)
    () =
  clock_now := 0.0;
  let config =
    { Serve.default_config with
      Serve.sv_workers = workers;
      sv_queue_cap = queue_cap;
      sv_tenants = tenants;
      sv_allow_faults = allow_faults;
      sv_clock = (fun () -> !clock_now) }
  in
  Serve.create ~config ()

(* The cheapest possible valid request: one naive V-cycle on the
   smallest grid the default 4-level cycle accepts. *)
let tiny tenant =
  { Serve.default_request with
    Serve.rq_tenant = tenant;
    rq_n = 32;
    rq_cycles = 1;
    rq_variant = "naive" }

(* Admission-only tests don't care about the solve: an unknown variant
   is admitted normally and answered instantly at execution. *)
let inert tenant = { (tiny tenant) with Serve.rq_variant = "bogus" }

let status_t : Serve.status Alcotest.testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Serve.status_name s))
    ( = )

let check_status = Alcotest.check status_t

(* -- status and code mapping -------------------------------------------- *)

let all_statuses =
  [ Serve.Ok; Serve.Invalid; Serve.Quarantined; Serve.Deadline; Serve.Faulted;
    Serve.Infeasible; Serve.Unresumable; Serve.Shed ]

let test_status_codes () =
  let expect =
    [ (Serve.Ok, 0); (Serve.Invalid, 2); (Serve.Quarantined, 3);
      (Serve.Deadline, 4); (Serve.Faulted, 4); (Serve.Infeasible, 5);
      (Serve.Unresumable, 6); (Serve.Shed, 7) ]
  in
  List.iter
    (fun (s, code) ->
      Alcotest.(check int) (Serve.status_name s) code (Serve.code_of_status s))
    expect

let test_status_names_roundtrip () =
  List.iter
    (fun s ->
      match Serve.status_of_name (Serve.status_name s) with
      | Some s' -> check_status (Serve.status_name s) s s'
      | None -> Alcotest.fail ("unnamed status " ^ Serve.status_name s))
    all_statuses;
  Alcotest.(check bool) "unknown name" true (Serve.status_of_name "nope" = None)

(* -- wire codec ---------------------------------------------------------- *)

let test_request_codec_roundtrip () =
  let rq =
    { Serve.rq_tenant = "alice";
      rq_dims = 3;
      rq_n = 128;
      rq_shape = Cycle.W;
      rq_smoothing = (2, 5, 3);
      rq_variant = "dtile-opt+";
      rq_cycles = 7;
      rq_tol = Some 1e-9;
      rq_deadline_s = Some 2.5;
      rq_mem_budget = Some 123456;
      rq_resume_dir = Some "ckpt";
      rq_fault = Some "nan" }
  in
  match Serve.request_of_json (Serve.request_to_json rq) with
  | Ok rq' -> Alcotest.(check bool) "request round-trips" true (rq = rq')
  | Error m -> Alcotest.fail m

let test_request_defaults () =
  (* an empty object parses to the defaults *)
  match Serve.request_of_json (Repro_runtime.Json.Obj []) with
  | Ok rq ->
    Alcotest.(check bool) "defaults" true (rq = Serve.default_request)
  | Error m -> Alcotest.fail m

let test_response_codec_roundtrip () =
  let rs =
    { Serve.rs_status = Serve.Quarantined;
      rs_code = 3;
      rs_tenant = "bob";
      rs_cycles = 4;
      rs_residual = 0.125;
      rs_queue_s = 0.5;
      rs_solve_s = 1.25;
      rs_retry_after_s = Some 0.75;
      rs_plan_digest = "abcd";
      rs_plan_cached = true;
      rs_incidents = 2;
      rs_detail = "quarantined after 2 faults" }
  in
  match Serve.response_of_json (Serve.response_to_json rs) with
  | Ok rs' -> Alcotest.(check bool) "response round-trips" true (rs = rs')
  | Error m -> Alcotest.fail m

let with_temp_file f =
  let path = Filename.temp_file "serve_frame" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ()) (fun () ->
      f path)

let test_frame_roundtrip () =
  with_temp_file (fun path ->
      let j = Serve.request_to_json (tiny "alice") in
      let oc = open_out_bin path in
      Serve.write_frame oc j;
      Serve.write_frame oc j;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          (match Serve.read_frame ic with
           | Some (Ok j') ->
             Alcotest.(check bool) "first frame" true (j = j')
           | Some (Error m) -> Alcotest.fail m
           | None -> Alcotest.fail "unexpected EOF");
          (match Serve.read_frame ic with
           | Some (Ok _) -> ()
           | _ -> Alcotest.fail "second frame lost");
          Alcotest.(check bool) "clean EOF" true (Serve.read_frame ic = None)))

let test_frame_oversized_refused () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      (* header claiming a payload one past the cap, no payload bytes *)
      let len = Serve.max_frame_bytes + 1 in
      output_byte oc ((len lsr 24) land 0xff);
      output_byte oc ((len lsr 16) land 0xff);
      output_byte oc ((len lsr 8) land 0xff);
      output_byte oc (len land 0xff);
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          match Serve.read_frame ic with
          | Some (Error _) -> ()
          | Some (Ok _) -> Alcotest.fail "oversized frame accepted"
          | None -> Alcotest.fail "oversized frame read as EOF"))

let test_frame_truncated () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_byte oc 0;
      output_byte oc 0;
      output_byte oc 0;
      output_byte oc 10;
      output_string oc "abc";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          match Serve.read_frame ic with
          | Some (Error _) -> ()
          | _ -> Alcotest.fail "truncated frame not reported"))

(* -- admission ------------------------------------------------------------ *)

let test_tenant_queue_cap () =
  let sv =
    server
      ~tenants:[ ("m", { Serve.default_tenant with Serve.tc_queue_cap = 3 }) ]
      ()
  in
  let tks = List.init 5 (fun _ -> Serve.submit sv (inert "m")) in
  let shed =
    List.filter_map Serve.peek tks
    |> List.filter (fun r -> r.Serve.rs_status = Serve.Shed)
  in
  Alcotest.(check int) "two shed at submit" 2 (List.length shed);
  Alcotest.(check int) "three queued" 3 (Serve.pending sv);
  List.iter
    (fun r ->
      Alcotest.(check int) "shed code" 7 r.Serve.rs_code;
      Alcotest.(check bool) "retry hint" true (r.Serve.rs_retry_after_s <> None))
    shed;
  let st = Serve.tenant_stats sv "m" in
  Alcotest.(check int) "accepted" 3 st.Serve.ts_accepted;
  Alcotest.(check int) "shed" 2 st.Serve.ts_shed;
  Serve.shutdown sv

let test_token_bucket_math () =
  let sv =
    server
      ~tenants:
        [ ( "m",
            { Serve.default_tenant with Serve.tc_rate = 2.0; tc_burst = 2.0 } )
        ]
      ()
  in
  let ok1 = Serve.submit sv (inert "m") in
  let ok2 = Serve.submit sv (inert "m") in
  Alcotest.(check bool) "burst admitted" true
    (Serve.peek ok1 = None && Serve.peek ok2 = None);
  (* bucket empty: the shed reply must say exactly when a token is back *)
  (match Serve.peek (Serve.submit sv (inert "m")) with
   | Some r ->
     check_status "rate shed" Serve.Shed r.Serve.rs_status;
     (match r.Serve.rs_retry_after_s with
      | Some ra ->
        Alcotest.(check (float 1e-9)) "retry_after = (1 - tokens)/rate" 0.5 ra
      | None -> Alcotest.fail "no retry_after on rate shed")
   | None -> Alcotest.fail "rate shed not answered at submit");
  (* half a second later one token has refilled *)
  clock_now := 0.5;
  Alcotest.(check bool) "refilled token admits" true
    (Serve.peek (Serve.submit sv (inert "m")) = None);
  (* and it was spent: the next submission sheds again *)
  (match Serve.peek (Serve.submit sv (inert "m")) with
   | Some r -> check_status "spent again" Serve.Shed r.Serve.rs_status
   | None -> Alcotest.fail "expected rate shed");
  Serve.shutdown sv

let test_eviction_heaviest_newest () =
  let sv = server ~queue_cap:2 () in
  let g1 = Serve.submit sv (inert "greedy") in
  let g2 = Serve.submit sv (inert "greedy") in
  Alcotest.(check int) "global queue full" 2 (Serve.pending sv);
  let m1 = Serve.submit sv (inert "meek") in
  (* the newest request of the heaviest tenant made room *)
  Alcotest.(check bool) "oldest greedy kept" true (Serve.peek g1 = None);
  (match Serve.peek g2 with
   | Some r ->
     check_status "newest greedy evicted" Serve.Shed r.Serve.rs_status;
     Alcotest.(check int) "eviction code" 7 r.Serve.rs_code
   | None -> Alcotest.fail "eviction not answered");
  Alcotest.(check bool) "meek admitted" true (Serve.peek m1 = None);
  Alcotest.(check int) "still at cap" 2 (Serve.pending sv);
  let g = Serve.tenant_stats sv "greedy" and m = Serve.tenant_stats sv "meek" in
  Alcotest.(check int) "greedy evicted" 1 g.Serve.ts_evicted;
  Alcotest.(check int) "meek untouched" 0 (m.Serve.ts_evicted + m.Serve.ts_shed);
  Serve.shutdown sv

(* -- fairness -------------------------------------------------------------- *)

let test_round_robin_order () =
  let sv = server () in
  (* alice floods three, bob and carol one each — service order must
     interleave: alice, bob, carol, alice, alice *)
  let tks =
    (* List.map so the submissions are sequenced left to right (a list
       literal would evaluate them right to left) *)
    List.map
      (fun name -> (name, Serve.submit sv (inert name)))
      [ "alice"; "alice"; "alice"; "bob"; "carol" ]
  in
  let served = ref [] in
  while Serve.step sv do
    let newly =
      List.find_opt
        (fun (name, tk) ->
          Serve.peek tk <> None
          && not (List.exists (fun (n, t) -> n == name && t == tk) !served))
        tks
    in
    match newly with
    | Some pair -> served := pair :: !served
    | None -> Alcotest.fail "step answered no ticket"
  done;
  Alcotest.(check (list string)) "round-robin order"
    [ "alice"; "bob"; "carol"; "alice"; "alice" ]
    (List.rev_map fst !served);
  Serve.shutdown sv

(* -- deadlines ------------------------------------------------------------ *)

let test_deadline_expired_in_queue () =
  let sv = server () in
  let tk =
    Serve.submit sv { (tiny "t") with Serve.rq_deadline_s = Some 1.0 }
  in
  clock_now := 2.0;
  Alcotest.(check bool) "one step" true (Serve.step sv);
  (match Serve.peek tk with
   | Some r ->
     check_status "queued past deadline" Serve.Deadline r.Serve.rs_status;
     Alcotest.(check int) "deadline code" 4 r.Serve.rs_code;
     Alcotest.(check int) "no cycle ran" 0 r.Serve.rs_cycles
   | None -> Alcotest.fail "not answered");
  Serve.shutdown sv

(* -- plan cache ----------------------------------------------------------- *)

let test_plan_cache_hits () =
  let sv = server () in
  let solve rq =
    let tk = Serve.submit sv rq in
    Serve.drain sv;
    Serve.await tk
  in
  let r1 = solve (tiny "t") in
  check_status "first ok" Serve.Ok r1.Serve.rs_status;
  Alcotest.(check bool) "first is a miss" false r1.Serve.rs_plan_cached;
  let r2 = solve (tiny "t") in
  check_status "second ok" Serve.Ok r2.Serve.rs_status;
  Alcotest.(check bool) "repeat shape hits" true r2.Serve.rs_plan_cached;
  Alcotest.(check bool) "same plan digest" true
    (r1.Serve.rs_plan_digest = r2.Serve.rs_plan_digest
    && r1.Serve.rs_plan_digest <> "");
  Alcotest.(check (pair int int)) "stats" (1, 1) (Serve.plan_cache_stats sv);
  (* a different budget is a different governance question: fresh entry *)
  let r3 =
    solve { (tiny "t") with Serve.rq_mem_budget = Some (64 * 1024 * 1024) }
  in
  Alcotest.(check bool) "budget splits the key" false r3.Serve.rs_plan_cached;
  Alcotest.(check (pair int int)) "stats after budget" (1, 2)
    (Serve.plan_cache_stats sv);
  Serve.shutdown sv

(* -- end-to-end statuses (caller-driven) ---------------------------------- *)

let test_solve_statuses () =
  let sv = server ~workers:1 ~allow_faults:true () in
  let r = Serve.solve sv (tiny "t") in
  check_status "ok" Serve.Ok r.Serve.rs_status;
  Alcotest.(check bool) "residual finite" true (Float.is_finite r.Serve.rs_residual);
  Alcotest.(check bool) "cycles ran" true (r.Serve.rs_cycles >= 1);
  let r = Serve.solve sv (inert "t") in
  check_status "invalid" Serve.Invalid r.Serve.rs_status;
  let r = Serve.solve sv { (tiny "t") with Serve.rq_mem_budget = Some 4096 } in
  check_status "infeasible" Serve.Infeasible r.Serve.rs_status;
  let r =
    Serve.solve sv
      { (tiny "t") with Serve.rq_resume_dir = Some "serve-no-such-ckpt" }
  in
  check_status "unresumable" Serve.Unresumable r.Serve.rs_status;
  let r =
    Serve.solve sv
      { (tiny "t") with Serve.rq_fault = Some "nan"; rq_cycles = 4 }
  in
  check_status "nan quarantined" Serve.Quarantined r.Serve.rs_status;
  (* isolation: the same server answers cleanly right after *)
  let r = Serve.solve sv (tiny "t") in
  check_status "isolated" Serve.Ok r.Serve.rs_status;
  Serve.shutdown sv

let test_faults_refused_by_default () =
  let sv = server ~workers:1 () in
  let r = Serve.solve sv { (tiny "t") with Serve.rq_fault = Some "nan" } in
  check_status "chaos gated" Serve.Invalid r.Serve.rs_status;
  Serve.shutdown sv

(* -- randomized admission invariants -------------------------------------- *)

(* Any interleaving of submissions across three tenants keeps the exact
   bookkeeping identities: accepted + shed = submitted per tenant,
   the global queue never exceeds its cap, and after a drain every
   ticket is answered with sheds carrying code 7. *)
let prop_admission_invariants =
  QCheck.Test.make ~count:100 ~name:"admission bookkeeping is exact"
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 2))
    (fun tenant_idxs ->
      let names = [| "a"; "b"; "c" |] in
      let sv =
        server ~queue_cap:5
          ~tenants:
            (Array.to_list names
            |> List.map (fun n ->
                   (n, { Serve.default_tenant with Serve.tc_queue_cap = 3 })))
          ()
      in
      let submitted = Array.make 3 0 in
      let ok = ref true in
      let tks =
        List.map
          (fun i ->
            submitted.(i) <- submitted.(i) + 1;
            let tk = Serve.submit sv (inert names.(i)) in
            if Serve.pending sv > 5 then ok := false;
            tk)
          tenant_idxs
      in
      Serve.drain sv;
      let responses = List.map Serve.await tks in
      let sheds =
        List.length
          (List.filter (fun r -> r.Serve.rs_status = Serve.Shed) responses)
      in
      let tot_shed = ref 0 in
      Array.iteri
        (fun i name ->
          let st = Serve.tenant_stats sv name in
          if st.Serve.ts_accepted + st.Serve.ts_shed <> submitted.(i) then
            ok := false;
          if st.Serve.ts_evicted > st.Serve.ts_accepted then ok := false;
          tot_shed := !tot_shed + st.Serve.ts_shed + st.Serve.ts_evicted)
        names;
      if sheds <> !tot_shed then ok := false;
      if Serve.pending sv <> 0 then ok := false;
      List.iter
        (fun r ->
          if r.Serve.rs_status = Serve.Shed && r.Serve.rs_code <> 7 then
            ok := false)
        responses;
      Serve.shutdown sv;
      !ok)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ( "mapping",
        [ Alcotest.test_case "status exit codes" `Quick test_status_codes;
          Alcotest.test_case "status names round-trip" `Quick
            test_status_names_roundtrip ] );
      ( "codec",
        [ Alcotest.test_case "request round-trip" `Quick
            test_request_codec_roundtrip;
          Alcotest.test_case "request defaults" `Quick test_request_defaults;
          Alcotest.test_case "response round-trip" `Quick
            test_response_codec_roundtrip;
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized frame refused" `Quick
            test_frame_oversized_refused;
          Alcotest.test_case "truncated frame reported" `Quick
            test_frame_truncated ] );
      ( "admission",
        [ Alcotest.test_case "tenant queue cap sheds" `Quick
            test_tenant_queue_cap;
          Alcotest.test_case "token bucket math" `Quick test_token_bucket_math;
          Alcotest.test_case "eviction picks heaviest tenant's newest" `Quick
            test_eviction_heaviest_newest ] );
      ( "fairness",
        [ Alcotest.test_case "round-robin across tenants" `Quick
            test_round_robin_order ] );
      ( "deadlines",
        [ Alcotest.test_case "expired while queued" `Quick
            test_deadline_expired_in_queue ] );
      ( "plan-cache",
        [ Alcotest.test_case "hit, miss, and budget split" `Quick
            test_plan_cache_hits ] );
      ( "solve",
        [ Alcotest.test_case "status per request class" `Quick
            test_solve_statuses;
          Alcotest.test_case "chaos hook gated by config" `Quick
            test_faults_refused_by_default ] );
      ( "properties",
        [ Qc_replay.to_alcotest prop_admission_invariants ] ) ]
