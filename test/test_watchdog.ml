(* Watchdog unit tests: deadline trips, once-per-arming trip counting,
   stays-armed semantics, argument validation, and with_deadline's
   disarm-on-raise — previously exercised only indirectly through the
   pressure campaign. *)

module Watchdog = Repro_runtime.Watchdog
module Telemetry = Repro_runtime.Telemetry

let counter name =
  let counters = Telemetry.counters () in
  match List.assoc_opt name counters with Some v -> v | None -> 0

let spin_past ns =
  let start = Telemetry.now_ns () in
  while Telemetry.now_ns () - start <= ns do
    ignore (Sys.opaque_identity (start + 1))
  done

let test_disarmed_noop () =
  Watchdog.disarm ();
  Alcotest.(check bool) "not armed" false (Watchdog.armed ());
  (* must be callable any number of times without effect *)
  for _ = 1 to 1000 do
    Watchdog.check ()
  done

let test_trip () =
  Watchdog.arm ~stage:"group0" ~budget_ns:1_000;
  Alcotest.(check bool) "armed" true (Watchdog.armed ());
  spin_past 1_000;
  (match Watchdog.check () with
  | () -> Alcotest.fail "check did not trip past the deadline"
  | exception Watchdog.Deadline_exceeded { stage; elapsed_ns; budget_ns } ->
    Alcotest.(check string) "stage label" "group0" stage;
    Alcotest.(check int) "budget recorded" 1_000 budget_ns;
    Alcotest.(check bool) "elapsed past budget" true (elapsed_ns > budget_ns));
  Watchdog.disarm ()

let test_trip_counted_once () =
  let before = counter "govern.deadline_trips" in
  Watchdog.arm ~stage:"group1" ~budget_ns:1_000;
  spin_past 1_000;
  (* every check past the deadline raises (the watchdog stays armed so
     all workers at the tile boundary see the fault)... *)
  for _ = 1 to 5 do
    match Watchdog.check () with
    | () -> Alcotest.fail "armed watchdog stopped tripping"
    | exception Watchdog.Deadline_exceeded _ -> ()
  done;
  Alcotest.(check bool) "still armed after trips" true (Watchdog.armed ());
  Watchdog.disarm ();
  (* ...but the telemetry counter moves once per arming, not per check *)
  Alcotest.(check int) "one trip counted" (before + 1)
    (counter "govern.deadline_trips")

let test_rearm_resets () =
  Watchdog.arm ~stage:"a" ~budget_ns:1_000;
  spin_past 1_000;
  (* re-arming replaces the expired deadline with a generous one *)
  Watchdog.arm ~stage:"b" ~budget_ns:10_000_000_000;
  Watchdog.check ();
  Watchdog.disarm ()

let test_bad_budget_rejected () =
  List.iter
    (fun budget_ns ->
      match Watchdog.arm ~stage:"x" ~budget_ns with
      | () -> Alcotest.failf "budget %d accepted" budget_ns
      | exception Invalid_argument _ -> ())
    [ 0; -1; -1_000_000 ]

let test_with_deadline () =
  let r = Watchdog.with_deadline ~stage:"ok" ~budget_ns:10_000_000_000 (fun () -> 42) in
  Alcotest.(check int) "value returned" 42 r;
  Alcotest.(check bool) "disarmed after return" false (Watchdog.armed ());
  (match
     Watchdog.with_deadline ~stage:"slow" ~budget_ns:1_000 (fun () ->
         spin_past 1_000;
         Watchdog.check ())
   with
  | () -> Alcotest.fail "deadline did not propagate"
  | exception Watchdog.Deadline_exceeded { stage; _ } ->
    Alcotest.(check string) "stage" "slow" stage);
  Alcotest.(check bool) "disarmed after raise" false (Watchdog.armed ())

let () =
  Telemetry.set_enabled true;
  Alcotest.run "watchdog"
    [ ( "deadlines",
        [ Alcotest.test_case "disarmed check is a no-op" `Quick
            test_disarmed_noop;
          Alcotest.test_case "trips past the deadline" `Quick test_trip;
          Alcotest.test_case "trip counted once per arming" `Quick
            test_trip_counted_once;
          Alcotest.test_case "re-arming resets the clock" `Quick
            test_rearm_resets;
          Alcotest.test_case "non-positive budgets rejected" `Quick
            test_bad_budget_rejected;
          Alcotest.test_case "with_deadline disarms on return and raise"
            `Quick test_with_deadline ] ) ]
