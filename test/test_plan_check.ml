(* Plan_check: the independent storage-safety pass must accept every
   plan the optimizer actually builds (presets × standard cycle configs,
   plus random pipelines) and reject deliberately corrupted storage
   mappings — aliased live-outs, dropped scratchpad slots, undersized
   arrays and scratch slots. *)

open Repro_mg
open Repro_core
module Grid = Repro_grid.Grid

let smoothing = (4, 4, 4)

let plan_of ~dims ~shape ~opts =
  let cfg = Cycle.default ~dims ~shape ~smoothing in
  let n = Cycle.min_n cfg * 4 in
  Plan.build (Cycle.build cfg) ~opts ~n ~params:(Cycle.params cfg ~n)

let presets =
  [ Options.naive; Options.opt; Options.opt_plus; Options.dtile_opt_plus ]

let test_presets_accepted () =
  List.iter
    (fun (dims, shape, sname) ->
      List.iter
        (fun opts ->
          match Plan_check.check (plan_of ~dims ~shape ~opts) with
          | Ok () -> ()
          | Error issues ->
            Alcotest.failf "%s-%dD %s rejected: %s" sname dims
              (Options.name opts)
              (String.concat "; " issues))
        presets)
    [ (2, Cycle.V, "V"); (2, Cycle.W, "W"); (2, Cycle.F, "F");
      (3, Cycle.V, "V"); (3, Cycle.W, "W") ]

(* -- corruption helpers ------------------------------------------------- *)

let map_groups plan ~f = { plan with Plan.groups = Array.map f plan.Plan.groups }

let map_members plan ~f =
  map_groups plan ~f:(function
    | Plan.G_tiled tg ->
      Plan.G_tiled { tg with Plan.members = Array.map f tg.Plan.members }
    | Plan.G_diamond dg ->
      Plan.G_diamond { dg with Plan.steps = Array.map f dg.Plan.steps })

let members plan =
  let acc = ref [] in
  ignore (map_members plan ~f:(fun m -> acc := m :: !acc; m));
  List.rev !acc

let expect_reject what plan =
  match Plan_check.check plan with
  | Ok () -> Alcotest.failf "corrupted plan (%s) accepted" what
  | Error issues ->
    Alcotest.(check bool) (what ^ ": issues reported") true (issues <> [])

let base_plan () = plan_of ~dims:2 ~shape:Cycle.V ~opts:Options.opt_plus

(* Redirect one live-out into another stage's array: readers of the old
   array now see a stale or foreign value (storage aliasing). *)
let test_reject_aliased_liveout () =
  let plan = base_plan () in
  let ids =
    List.filter_map (fun m -> m.Plan.array_id) (members plan)
    |> List.sort_uniq compare
  in
  match ids with
  | a :: b :: _ ->
    let first = ref true in
    let plan' =
      map_members plan ~f:(fun m ->
          if !first && m.Plan.array_id = Some a then begin
            first := false;
            { m with Plan.array_id = Some b }
          end
          else m)
    in
    expect_reject "live-out redirected into foreign array" plan'
  | _ -> Alcotest.fail "opt+ V-cycle plan has fewer than two arrays"

(* Drop the scratchpad slot of a member that has in-group readers. *)
let test_reject_dropped_scratch_slot () =
  let plan = base_plan () in
  let first = ref true in
  let dropped = ref false in
  let plan' =
    map_members plan ~f:(fun m ->
        if !first && m.Plan.scratch_slot <> None then begin
          first := false;
          dropped := true;
          { m with Plan.scratch_slot = None }
        end
        else m)
  in
  if not !dropped then Alcotest.fail "opt+ plan has no scratchpad members";
  expect_reject "scratch slot dropped from read member" plan'

(* Shrink every pooled array to one element. *)
let test_reject_undersized_arrays () =
  let plan = base_plan () in
  let plan' =
    { plan with
      Plan.arrays =
        Array.map (fun a -> { a with Plan.len = 1 }) plan.Plan.arrays }
  in
  expect_reject "arrays shrunk to 1 element" plan'

(* Shrink the scratchpad slots of the first group that has any. *)
let test_reject_undersized_scratch () =
  let plan = base_plan () in
  let shrunk = ref false in
  let plan' =
    map_groups plan ~f:(function
      | Plan.G_tiled tg
        when (not !shrunk) && Array.length tg.Plan.scratch_slot_len > 0 ->
        shrunk := true;
        Plan.G_tiled
          { tg with
            Plan.scratch_slot_len =
              Array.map (fun _ -> 1) tg.Plan.scratch_slot_len }
      | g -> g)
  in
  if not !shrunk then Alcotest.fail "opt+ plan has no scratch slots";
  expect_reject "scratch slots shrunk to 1 element" plan'

let test_check_exn_and_build () =
  (* check_exn is silent on a good plan, raises on a corrupted one; and
     Plan_check.build honours opts.check_plan *)
  let plan = base_plan () in
  Plan_check.check_exn plan;
  let bad =
    { plan with
      Plan.arrays =
        Array.map (fun a -> { a with Plan.len = 1 }) plan.Plan.arrays }
  in
  (match Plan_check.check_exn bad with
  | () -> Alcotest.fail "check_exn accepted a corrupted plan"
  | exception Invalid_argument _ -> ());
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing in
  let n = Cycle.min_n cfg * 4 in
  ignore
    (Plan_check.build (Cycle.build cfg)
       ~opts:{ Options.opt_plus with Options.check_plan = true }
       ~n ~params:(Cycle.params cfg ~n))

(* Property: every optimizer preset builds a storage-safe plan for random
   pipelines, and the optimized result still matches the naive one. *)
let prop_random_plans_safe =
  QCheck.Test.make
    ~name:"random pipelines: optimized plans pass Plan_check and match naive"
    ~count:40 Pipeline_gen.pipelines_arb
    (fun stages ->
      let built = Pipeline_gen.gen_pipeline_of stages in
      let n = 32 in
      let reference = Pipeline_gen.run_pipeline built ~opts:Options.naive ~n in
      List.for_all
        (fun opts ->
          match Plan_check.check (Pipeline_gen.build_plan built ~opts ~n) with
          | Error _ -> false
          | Ok () ->
            Grid.max_abs_diff reference
              (Pipeline_gen.run_pipeline built ~opts ~n)
            < 1e-11)
        [ Options.opt; Options.opt_plus; Options.dtile_opt_plus ])

let () =
  Alcotest.run "plan-check"
    [ ( "accept",
        [ Alcotest.test_case "presets on standard V/W/F configs" `Quick
            test_presets_accepted;
          Alcotest.test_case "check_exn and build entry" `Quick
            test_check_exn_and_build ] );
      ( "reject",
        [ Alcotest.test_case "aliased live-out" `Quick
            test_reject_aliased_liveout;
          Alcotest.test_case "dropped scratch slot" `Quick
            test_reject_dropped_scratch_slot;
          Alcotest.test_case "undersized arrays" `Quick
            test_reject_undersized_arrays;
          Alcotest.test_case "undersized scratch slots" `Quick
            test_reject_undersized_scratch ] );
      ( "properties", [ Qc_replay.to_alcotest prop_random_plans_safe ] ) ]
