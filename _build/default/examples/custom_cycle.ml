(* Building a custom pipeline directly with the DSL constructs.

   Run with:  dune exec examples/custom_cycle.exe

   This bypasses the Cycle convenience layer and writes a two-grid cycle
   by hand, exactly like the PolyMG specification of Fig. 3 — then uses
   the productivity of the DSL for what it is meant for: experimentation.
   The same pipeline is rebuilt with different coarse-solve depths (the
   TStencil step count is one argument) and the convergence rates
   compared; a custom restriction kernel is passed in as a plain weight
   tensor. *)

open Repro_ir
open Repro_core
module Grid = Repro_grid.Grid

let laplace =
  Weights.w2 [| [| 0.; -1.; 0. |]; [| -1.; 4.; -1. |]; [| 0.; -1.; 0. |] |]

(* an injection-heavy restriction: a plausible-looking but weaker kernel *)
let injection_heavy =
  Weights.w2
    [| [| 0.03125; 0.0625; 0.03125 |];
       [| 0.0625; 0.625; 0.0625 |];
       [| 0.03125; 0.0625; 0.03125 |] |]

let full_weighting =
  Weights.w2
    [| [| 0.0625; 0.125; 0.0625 |];
       [| 0.125; 0.25; 0.125 |];
       [| 0.0625; 0.125; 0.0625 |] |]

let build_two_grid ~restrict_weights ~coarse_steps =
  let fine = [| Sizeexpr.add_const Sizeexpr.n (-1);
                Sizeexpr.add_const Sizeexpr.n (-1) |] in
  let zero = [| 0; 0 |] in

  let ctx = Dsl.create "two-grid" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:fine in
  let f = Dsl.grid ctx "F" ~dims:2 ~sizes:fine in

  let jacobi ~v:iter =
    Expr.(
      load iter.Func.id zero
      - (param "w"
         * ((param "invhsq" * Dsl.stencil iter laplace ())
            - load f.Func.id zero)))
  in
  (* three pre-smoothing steps via the TStencil construct *)
  let s1 = Dsl.tstencil ctx ~name:"pre" ~steps:3 ~init:v jacobi in
  (* residual, custom restriction *)
  let r =
    Dsl.func ctx ~name:"resid" ~sizes:fine
      Expr.(
        load f.Func.id zero
        - (param "invhsq" * Dsl.stencil s1 laplace ()))
  in
  let r2 =
    Dsl.restrict_fn ctx ~name:"restrict" ~input:r ~weights:restrict_weights ()
  in
  (* coarse solve: many zero-initialized Jacobi sweeps — TStencil keeps
     this a one-liner even for 60 steps (60 DAG stages after unrolling) *)
  let e2 =
    Dsl.tstencil_from_zero ctx ~name:"coarse" ~steps:coarse_steps
      ~sizes:(Array.map Sizeexpr.coarsen fine)
      ~first:Expr.(param "wc" * load r2.Func.id zero)
      (fun ~v:iter ->
        Expr.(
          load iter.Func.id zero
          - (param "wc"
             * ((param "invhsq_c" * Dsl.stencil iter laplace ())
                - load r2.Func.id zero))))
  in
  (* interpolate, correct, one post-smoothing sweep *)
  let e = Dsl.interp_fn ctx ~name:"interp" ~input:e2 () in
  let vc =
    Dsl.func ctx ~name:"correct" ~sizes:fine
      Expr.(load s1.Func.id zero + load e.Func.id zero)
  in
  let out = Dsl.tstencil ctx ~name:"post" ~steps:1 ~init:vc jacobi in
  let pipeline = Dsl.finish ctx ~outputs:[ out ] in
  (pipeline, v.Func.id, f.Func.id, out.Func.id)

let () =
  let n = 64 in
  let invhsq = float_of_int (n * n) in
  let invhsq_c = invhsq /. 4.0 in
  let params = function
    | "invhsq" -> invhsq
    | "invhsq_c" -> invhsq_c
    | "w" -> 0.8 /. (4.0 *. invhsq)
    | "wc" -> 0.8 /. (4.0 *. invhsq_c)
    | s -> invalid_arg s
  in
  let rate name weights coarse_steps =
    let pipeline, vid, fid, oid =
      build_two_grid ~restrict_weights:weights ~coarse_steps
    in
    let plan = Plan.build pipeline ~opts:Options.opt_plus ~n ~params in
    let problem = Repro_mg.Problem.poisson ~dims:2 ~n in
    let rt = Exec.runtime () in
    let stepper ~v:vg ~f:fg ~out:og =
      Exec.run plan rt
        ~inputs:[ (vid, vg); (fid, fg) ]
        ~outputs:[ (oid, og) ]
    in
    let r = Repro_mg.Solver.iterate stepper ~problem ~cycles:8 () in
    Exec.free_runtime rt;
    let res =
      List.map (fun s -> s.Repro_mg.Solver.residual) r.Repro_mg.Solver.stats
    in
    let first = List.hd res and last = List.nth res 7 in
    let rho = (last /. first) ** (1.0 /. 7.0) in
    Printf.printf
      "  %-18s %d stages, %d groups: residual %.2e -> %.2e  (rate %.3f/cycle)\n"
      name
      (Pipeline.stage_count pipeline)
      (Plan.group_count plan) first last rho
  in
  Printf.printf "two-grid cycle at N=%d, varying the coarse-solve depth:\n" n;
  rate "10 coarse sweeps" full_weighting 10;
  rate "60 coarse sweeps" full_weighting 60;
  rate "60 + inject-heavy R" injection_heavy 60
