(* NAS MG benchmark: the DSL pipeline against the hand-written reference.

   Run with:  dune exec examples/nas_demo.exe *)

open Repro_nas
open Repro_mg
open Repro_core

let () =
  let cls = Nas_coeffs.A in
  let iters = Nas_coeffs.iterations cls in
  let prob = Nas_problem.setup ~cls in
  Printf.printf "NAS MG class %s: %d³ grid, %d iterations\n"
    (Nas_coeffs.cls_name cls)
    (Nas_coeffs.problem_n cls)
    iters;

  let problem =
    { Problem.dims = 3; n = prob.Nas_problem.n;
      v = prob.Nas_problem.u; f = prob.Nas_problem.v;
      exact = (fun _ -> 0.0) }
  in
  let run name mk =
    let rt = Exec.runtime () in
    let stepper = mk rt in
    let r = Solver.iterate stepper ~problem ~cycles:iters ~residuals:false () in
    Exec.free_runtime rt;
    let norm = Nas_ref.residual_l2 ~u:r.Solver.v ~v:prob.Nas_problem.v in
    Printf.printf "  %-12s %.3fs   final ‖r‖₂ = %.9e\n" name
      r.Solver.total_seconds norm;
    r.Solver.v
  in
  let u_ref =
    run "reference" (fun rt ->
        Nas_ref.stepper (Nas_ref.create ~cls ~par:rt.Exec.par))
  in
  let u_dsl =
    run "polymg-opt+" (fun rt ->
        Nas_pipeline.stepper ~cls ~opts:Options.opt_plus ~rt)
  in
  Printf.printf "max |reference − polymg|: %.3e\n"
    (Repro_grid.Grid.max_abs_diff u_ref u_dsl)
