(* 3-D Poisson with a W-cycle, comparing optimizer variants.

   Run with:  dune exec examples/poisson3d.exe

   Demonstrates: building the pipeline once, inspecting the optimized plan,
   and swapping optimizer presets over the same problem. *)

open Repro_mg
open Repro_core

let () =
  let cfg = Cycle.default ~dims:3 ~shape:Cycle.W ~smoothing:(2, 2, 2) in
  let n = 64 in
  let problem = Problem.poisson ~dims:3 ~n in

  (* what did the optimizer decide? *)
  let pipeline = Cycle.build cfg in
  let plan =
    Plan.build pipeline ~opts:Options.opt_plus ~n
      ~params:(Cycle.params cfg ~n)
  in
  Printf.printf
    "%s: %d stages fused into %d groups; %d full arrays (%.1f MB), \
     %.1f KB scratch per thread\n\n"
    (Cycle.bench_name cfg)
    (Repro_ir.Pipeline.stage_count pipeline)
    (Plan.group_count plan) (Plan.array_count plan)
    (float_of_int (Plan.total_array_bytes plan) /. 1e6)
    (float_of_int (Plan.scratch_bytes_per_thread plan) /. 1e3);

  List.iter
    (fun (name, opts) ->
      let rt = Exec.runtime () in
      let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
      let r = Solver.iterate stepper ~problem ~cycles:4 () in
      Exec.free_runtime rt;
      let final = List.nth r.Solver.stats 3 in
      Printf.printf "%-12s final residual %.3e, %.3fs total\n" name
        final.Solver.residual r.Solver.total_seconds)
    [ ("naive", Options.naive);
      ("opt", Options.opt);
      ("opt+", Options.opt_plus);
      ("dtile-opt+", Options.dtile_opt_plus) ]
