(* Quickstart: solve −∇²u = f on the unit square with a V-cycle.

   Run with:  dune exec examples/quickstart.exe

   This uses the highest-level API: a standard cycle configuration, the
   built-in Poisson problem, and the opt+ optimizer preset. *)

open Repro_mg
open Repro_core

let () =
  (* a 2-D V-cycle with 4 pre-, coarse- and post-smoothing steps *)
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  (* deepen the hierarchy until the coarsest grid is a single point, so
     the cycle acts as a true solver *)
  let cfg = { cfg with Cycle.levels = 8 } in
  let n = 256 in

  Printf.printf "Solving 2-D Poisson, N=%d (interior %dx%d), %s\n" n (n - 1)
    (n - 1) (Cycle.bench_name cfg);

  let result =
    Solver.solve cfg ~n ~opts:Options.opt_plus ~cycles:12 ()
  in
  List.iter
    (fun (s : Solver.cycle_stats) ->
      Printf.printf "  cycle %d: residual %.3e\n" s.Solver.cycle
        s.Solver.residual)
    result.Solver.stats;

  (* compare against the known continuous solution *)
  let problem = Problem.poisson ~dims:2 ~n in
  let err = Verify.error_l2 ~v:result.Solver.v ~exact:problem.Problem.exact in
  Printf.printf "L2 error vs u(x,y) = sin(πx)sin(πy): %.3e (O(h²) = %.3e)\n"
    err
    (1.0 /. float_of_int (n * n));
  Printf.printf "done in %.3fs\n" result.Solver.total_seconds
