examples/poisson3d.mli:
