examples/preconditioner.mli:
