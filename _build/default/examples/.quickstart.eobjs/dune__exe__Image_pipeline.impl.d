examples/image_pipeline.ml: Array Dsl Exec Expr Func Options Pipeline Plan Printf Repro_core Repro_grid Repro_ir Sizeexpr Weights
