examples/nas_demo.mli:
