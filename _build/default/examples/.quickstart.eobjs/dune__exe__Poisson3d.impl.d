examples/poisson3d.ml: Cycle Exec List Options Plan Printf Problem Repro_core Repro_ir Repro_mg Solver
