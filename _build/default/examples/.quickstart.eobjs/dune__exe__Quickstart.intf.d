examples/quickstart.mli:
