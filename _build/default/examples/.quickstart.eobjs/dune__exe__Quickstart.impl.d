examples/quickstart.ml: Cycle List Options Printf Problem Repro_core Repro_mg Solver Verify
