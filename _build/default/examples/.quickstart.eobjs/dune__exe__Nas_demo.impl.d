examples/nas_demo.ml: Exec Nas_coeffs Nas_pipeline Nas_problem Nas_ref Options Printf Problem Repro_core Repro_grid Repro_mg Repro_nas Solver
