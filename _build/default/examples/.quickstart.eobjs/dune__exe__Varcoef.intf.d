examples/varcoef.mli:
