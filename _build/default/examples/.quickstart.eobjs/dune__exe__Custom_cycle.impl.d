examples/custom_cycle.ml: Array Dsl Exec Expr Func List Options Pipeline Plan Printf Repro_core Repro_grid Repro_ir Repro_mg Sizeexpr Weights
