examples/preconditioner.ml: Cycle Exec Krylov List Options Printf Problem Repro_core Repro_mg Verify
