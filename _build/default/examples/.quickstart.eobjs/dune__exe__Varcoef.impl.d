examples/varcoef.ml: Array Dsl Exec Expr Float Func Options Plan Printf Random Repro_core Repro_grid Repro_ir Sizeexpr
