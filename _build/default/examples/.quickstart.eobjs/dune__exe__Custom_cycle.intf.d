examples/custom_cycle.mli:
