(* Beyond multigrid: an image-processing-style pipeline (the domain
   PolyMage originally targeted) built from the same constructs.

   Run with:  dune exec examples/image_pipeline.exe

   A two-scale unsharp mask: blur, downsample, upsample back, and sharpen
   against the coarse reconstruction.  The optimizer fuses and tiles it
   like any multigrid cycle. *)

open Repro_ir
open Repro_core
module Grid = Repro_grid.Grid

let blur3 =
  Weights.w2
    [| [| 0.0625; 0.125; 0.0625 |];
       [| 0.125; 0.25; 0.125 |];
       [| 0.0625; 0.125; 0.0625 |] |]

let () =
  let n = 512 in
  let sizes = [| Sizeexpr.add_const Sizeexpr.n (-1);
                 Sizeexpr.add_const Sizeexpr.n (-1) |] in
  let zero = [| 0; 0 |] in

  let ctx = Dsl.create "unsharp" in
  let img = Dsl.grid ctx "img" ~dims:2 ~sizes in
  let blur1 = Dsl.func ctx ~name:"blur1" ~sizes (Dsl.stencil img blur3 ()) in
  let blur2 = Dsl.func ctx ~name:"blur2" ~sizes (Dsl.stencil blur1 blur3 ()) in
  let down = Dsl.restrict_fn ctx ~name:"down" ~input:blur2 () in
  let up = Dsl.interp_fn ctx ~name:"up" ~input:down () in
  let sharp =
    Dsl.func ctx ~name:"sharp" ~sizes
      Expr.(
        load img.Func.id zero
        + (const 1.5 * (load img.Func.id zero - load up.Func.id zero)))
  in
  let pipeline = Dsl.finish ctx ~outputs:[ sharp ] in

  let plan =
    Plan.build pipeline ~opts:Options.opt_plus ~n ~params:(fun s ->
        invalid_arg s)
  in
  Printf.printf "unsharp-mask pipeline: %d stages in %d groups\n"
    (Pipeline.stage_count pipeline)
    (Plan.group_count plan);

  (* a synthetic "image": a bright disc on a dark background *)
  let input = Grid.interior ~dims:2 (n - 1) in
  Grid.fill_interior input ~f:(fun idx ->
      let x = float_of_int idx.(0) -. (float_of_int n /. 2.0) in
      let y = float_of_int idx.(1) -. (float_of_int n /. 2.0) in
      if (x *. x) +. (y *. y) < float_of_int (n * n / 16) then 1.0 else 0.1);
  let output = Grid.create (Grid.extents input) in
  let rt = Exec.runtime () in
  Exec.run plan rt
    ~inputs:[ (img.Func.id, input) ]
    ~outputs:[ (sharp.Func.id, output) ];
  Exec.free_runtime rt;

  (* sharpening overshoots at the disc edge: max exceeds the input max *)
  Printf.printf "input max %.2f -> sharpened max %.2f (edge overshoot)\n"
    (Repro_grid.Norms.linf input)
    (Repro_grid.Norms.linf output)
