(* Variable-coefficient diffusion: −∇·(k∇u) = f with a discontinuous
   coefficient field, expressed in the DSL with the coefficient as a
   second input grid.

   Run with:  dune exec examples/varcoef.exe

   Stages whose definitions multiply two loaded grids are not linear
   stencils, so the compiler's linear fast path does not apply — they run
   through the general expression interpreter instead (the same fallback
   that handles min/max/abs).  Grouping, tiling and storage reuse still
   apply unchanged; this example checks that the optimized plan matches
   the naive one bit-for-bit and that smoothing converges. *)

open Repro_ir
open Repro_core
module Grid = Repro_grid.Grid

let () =
  let n = 128 in
  let sizes = [| Sizeexpr.add_const Sizeexpr.n (-1);
                 Sizeexpr.add_const Sizeexpr.n (-1) |] in
  let zero = [| 0; 0 |] in

  let ctx = Dsl.create "varcoef" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes in
  let f = Dsl.grid ctx "F" ~dims:2 ~sizes in
  let k = Dsl.grid ctx "K" ~dims:2 ~sizes in

  (* A v at x: Σ_faces k_face · (v(x) − v(nbr)), with face coefficients
     averaged from the cell coefficient field *)
  let face_k o =
    Expr.(
      const 0.5 * (load k.Func.id zero + load k.Func.id o))
  in
  let a_v vf =
    let term o =
      Expr.(face_k o * (load vf.Func.id zero - load vf.Func.id o))
    in
    Expr.(
      term [| -1; 0 |] + term [| 1; 0 |] + term [| 0; -1 |] + term [| 0; 1 |])
  in
  let diag =
    Expr.(
      face_k [| -1; 0 |] + face_k [| 1; 0 |] + face_k [| 0; -1 |]
      + face_k [| 0; 1 |])
  in
  (* damped Jacobi: v' = v + ω (f/h⁻² − A v)/diag *)
  let body ~v:iter =
    Expr.(
      load iter.Func.id zero
      + (const 0.7
         * ((load f.Func.id zero / param "invhsq") - a_v iter)
         / diag))
  in
  let smoothed = Dsl.tstencil ctx ~name:"S" ~steps:40 ~init:v body in
  let pipeline = Dsl.finish ctx ~outputs:[ smoothed ] in

  let params = function
    | "invhsq" -> float_of_int (n * n)
    | s -> invalid_arg s
  in
  (* coefficient field: a stiff inclusion in the middle *)
  let kgrid = Grid.interior ~dims:2 (n - 1) in
  Grid.fill_all kgrid ~f:(fun idx ->
      let c = n / 2 in
      let dx = idx.(0) - c and dy = idx.(1) - c in
      if (dx * dx) + (dy * dy) < n * n / 32 then 100.0 else 1.0);
  let vg = Grid.interior ~dims:2 (n - 1) in
  let fg = Grid.interior ~dims:2 (n - 1) in
  (* a high-frequency right-hand side: smoothing is exactly the multigrid
     component that damps it (a smooth rhs would barely move in 40 sweeps —
     that is why coarse grids exist) *)
  let st = Random.State.make [| 7 |] in
  Grid.fill_interior fg ~f:(fun _ -> Random.State.float st 2.0 -. 1.0);

  let residual_linf (u : Grid.t) =
    (* diagonally scaled residual ‖D⁻¹(f − h⁻²·A u)‖∞ — the natural units
       for a problem with a 100:1 coefficient jump *)
    let m = ref 0.0 in
    let invhsq = float_of_int (n * n) in
    let kk i j = Grid.get2 kgrid i j in
    for i = 1 to n - 1 do
      for j = 1 to n - 1 do
        let fk di dj = 0.5 *. (kk i j +. kk (i + di) (j + dj)) in
        let term di dj =
          fk di dj *. (Grid.get2 u i j -. Grid.get2 u (i + di) (j + dj))
        in
        let av = term (-1) 0 +. term 1 0 +. term 0 (-1) +. term 0 1 in
        let d = fk (-1) 0 +. fk 1 0 +. fk 0 (-1) +. fk 0 1 in
        let r = (Grid.get2 fg i j -. (invhsq *. av)) /. (invhsq *. d) in
        if Float.abs r > !m then m := Float.abs r
      done
    done;
    !m
  in

  let run opts =
    let plan = Plan.build pipeline ~opts ~n ~params in
    let out = Grid.interior ~dims:2 (n - 1) in
    let rt = Exec.runtime () in
    Exec.run plan rt
      ~inputs:[ (v.Func.id, vg); (f.Func.id, fg); (k.Func.id, kgrid) ]
      ~outputs:[ (smoothed.Func.id, out) ];
    Exec.free_runtime rt;
    out
  in
  Printf.printf "variable-coefficient diffusion, N=%d, 40 damped-Jacobi sweeps\n" n;
  Printf.printf "  initial residual (zero guess): %.4e\n" (residual_linf vg);
  let o_naive = run Options.naive in
  Printf.printf "  after smoothing:               %.4e\n" (residual_linf o_naive);
  let o_opt = run Options.opt_plus in
  Printf.printf "  |naive − opt+| = %.3e (general-path stages fused and tiled)\n"
    (Grid.max_abs_diff o_naive o_opt)
