(* Multigrid as a preconditioner for conjugate gradients (paper §1).

   Run with:  dune exec examples/preconditioner.exe

   Compares plain CG against CG preconditioned with one V(2,2)-cycle:
   the Krylov method supplies robustness, the cycle supplies the
   mesh-independent convergence rate. *)

open Repro_mg
open Repro_core

let () =
  let n = 256 in
  (* a random right-hand side: the manufactured sin·sin forcing is an
     eigenvector of the discrete Laplacian and makes plain CG converge in
     one step, which would hide the comparison *)
  let problem = Problem.poisson_random ~dims:2 ~n ~seed:2017 in
  let tol = 1e-10 in

  let run name precond =
    let r = Krylov.pcg ~problem ~precond ~tol ~max_iter:400 in
    Printf.printf "  %-14s %4d iterations (converged: %b, final rel. residual %.2e)\n"
      name r.Krylov.iterations r.Krylov.converged
      (match List.rev r.Krylov.residuals with x :: _ -> x | [] -> nan);
    r
  in
  Printf.printf "CG for 2-D Poisson, N=%d, tol=%g:\n" n tol;
  let _ = run "plain CG" Krylov.identity_precond in
  let rt = Exec.runtime () in
  let cfg =
    { (Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(2, 0, 2)) with
      Cycle.levels = 7 }
  in
  let r =
    run "CG + V(2,2)" (Krylov.mg_precond cfg ~n ~opts:Options.opt_plus ~rt)
  in
  Exec.free_runtime rt;
  Printf.printf "final residual check: %.3e\n"
    (Verify.residual_l2 ~n ~v:r.Krylov.v ~f:problem.Problem.f)
