(* Compiler introspection: prints the pipeline DAG, the grouping and
   storage mapping (the Fig. 6 dump), or the generated C (Fig. 8).

   Examples:
     polymg_dump --what dag
     polymg_dump --what groups --variant opt+ --smoothing 4,4,4
     polymg_dump --what c --dims 2 --cycle V > vcycle.c *)

open Cmdliner
open Repro_mg
open Repro_core

let run dims cycle smoothing levels n variant what =
  let shape =
    match String.uppercase_ascii cycle with
    | "V" -> Cycle.V
    | "W" -> Cycle.W
    | "F" -> Cycle.F
    | _ -> prerr_endline "cycle must be V, W or F"; exit 2
  in
  let n1, n2, n3 =
    match String.split_on_char ',' smoothing with
    | [ a; b; c ] -> (int_of_string a, int_of_string b, int_of_string c)
    | _ -> prerr_endline "smoothing must be n1,n2,n3"; exit 2
  in
  let cfg =
    { (Cycle.default ~dims ~shape ~smoothing:(n1, n2, n3)) with
      Cycle.levels }
  in
  let pipeline = Cycle.build cfg in
  let opts =
    match Options.variant_of_string variant with
    | Some o -> o
    | None -> prerr_endline ("unknown variant " ^ variant); exit 2
  in
  match what with
  | "dag" -> Format.printf "%a@." Repro_ir.Pipeline.pp pipeline
  | "groups" ->
    let plan = Plan.build pipeline ~opts ~n ~params:(Cycle.params cfg ~n) in
    Format.printf "%a@." Plan.summary plan
  | "c" ->
    let plan = Plan.build pipeline ~opts ~n ~params:(Cycle.params cfg ~n) in
    print_string (C_emit.to_string plan)
  | _ -> prerr_endline "what must be dag, groups or c"; exit 2

let dims_t = Arg.(value & opt int 2 & info [ "dims" ] ~doc:"Grid rank.")
let cycle_t = Arg.(value & opt string "V" & info [ "cycle" ] ~doc:"V, W or F.")

let smoothing_t =
  Arg.(value & opt string "4,4,4" & info [ "smoothing" ] ~doc:"n1,n2,n3.")

let levels_t = Arg.(value & opt int 4 & info [ "levels" ] ~doc:"Levels.")
let n_t = Arg.(value & opt int 64 & info [ "n"; "size" ] ~doc:"Problem size N.")

let variant_t =
  Arg.(value & opt string "opt+" & info [ "variant" ] ~doc:"Optimizer preset.")

let what_t =
  Arg.(
    value & opt string "groups"
    & info [ "what" ] ~doc:"What to print: dag, groups, or c.")

let cmd =
  let doc = "inspect PolyMG pipelines, groupings and generated code" in
  Cmd.v
    (Cmd.info "polymg_dump" ~doc)
    Term.(
      const run $ dims_t $ cycle_t $ smoothing_t $ levels_t $ n_t $ variant_t
      $ what_t)

let () = exit (Cmd.eval cmd)
