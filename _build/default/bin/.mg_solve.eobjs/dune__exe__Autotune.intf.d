bin/autotune.mli:
