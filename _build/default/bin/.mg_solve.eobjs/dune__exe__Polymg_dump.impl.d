bin/polymg_dump.ml: Arg C_emit Cmd Cmdliner Cycle Format Options Plan Repro_core Repro_ir Repro_mg String Term
