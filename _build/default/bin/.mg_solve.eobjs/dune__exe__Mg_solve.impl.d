bin/mg_solve.ml: Arg Cmd Cmdliner Cycle Exec Format Gc Handopt List Options Plan Printf Problem Repro_core Repro_mg Solver String Term Verify
