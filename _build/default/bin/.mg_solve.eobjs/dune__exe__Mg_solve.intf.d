bin/mg_solve.mli:
