bin/polymg_dump.mli:
