bin/autotune.ml: Arg Array Cmd Cmdliner Cycle Exec Float Gc List Options Printf Problem Repro_core Repro_mg Solver String Term
