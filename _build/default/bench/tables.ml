(* Table 3, Figures 9/10 and the NAS comparison (Fig. 10e). *)

open Repro_mg
open Repro_core
open Repro_nas

let gen_loc cfg ~n ~opts =
  let p = Cycle.build cfg in
  C_emit.line_count (Plan.build p ~opts ~n ~params:(Cycle.params cfg ~n))

let table3 ~cycles ~reps () =
  Printf.printf "\n=== Table 3: benchmark characteristics ===\n";
  Printf.printf "%-14s %7s %10s %11s %14s %14s\n" "benchmark" "stages"
    "genLoC-opt" "genLoC-opt+" "naive B (s/cy)" "naive C (s/cy)";
  List.iter
    (fun dims ->
      List.iter
        (fun cfg ->
          let p = Cycle.build cfg in
          let stages = Repro_ir.Pipeline.stage_count p in
          let nb = Problem.class_n ~dims Problem.B in
          let nc = Problem.class_n ~dims Problem.C in
          let loc_opt = gen_loc cfg ~n:nb ~opts:Options.opt in
          let loc_optp = gen_loc cfg ~n:nb ~opts:Options.opt_plus in
          let time n =
            match
              Harness.run_benchmark ~cycles ~reps cfg ~n
                ~variants:[ Harness.polymg_variant "polymg-naive" Options.naive ]
            with
            | [ (_, t) ] -> t
            | _ -> assert false
          in
          Printf.printf "%-14s %7d %10d %11d %14.3f %14.3f\n"
            (Cycle.bench_name cfg) stages loc_opt loc_optp (time nb) (time nc))
        (Harness.benchmarks ~dims))
    [ 2; 3 ];
  (* NAS row *)
  let cls = Nas_coeffs.B in
  let p = Nas_pipeline.build ~cls in
  Printf.printf "%-14s %7d %10s %11d %14s %14s\n" "NAS-MG"
    (Repro_ir.Pipeline.stage_count p) "-"
    (C_emit.line_count
       (Plan.build p ~opts:Options.opt_plus ~n:(Nas_coeffs.problem_n cls)
          ~params:(Nas_pipeline.params ~cls)))
    "(see nas)" "(see nas)";
  Printf.printf
    "\nProblem sizes (Table 2, scaled — see DESIGN.md): 2D B=%d² C=%d², 3D B=%d³ C=%d³\n"
    (Problem.class_n ~dims:2 Problem.B)
    (Problem.class_n ~dims:2 Problem.C)
    (Problem.class_n ~dims:3 Problem.B)
    (Problem.class_n ~dims:3 Problem.C)

let fig ~dims ~cls ~cycles ~reps () =
  let fig_name = if dims = 2 then "Figure 9" else "Figure 10(a-d)" in
  Printf.printf "\n=== %s: %dD speedups over polymg-naive, class %s ===\n"
    fig_name dims (Problem.cls_name cls);
  let n = Problem.class_n ~dims cls in
  let all_opt = ref [] and all_optp = ref [] in
  List.iter
    (fun cfg ->
      let rows = Harness.run_benchmark ~cycles ~reps cfg ~n in
      Harness.print_speedups
        ~title:(Printf.sprintf "%s class %s (N=%d)" (Cycle.bench_name cfg)
                  (Problem.cls_name cls) n)
        ~base:"polymg-naive" rows;
      let speed name =
        let t = List.assoc name rows in
        List.assoc "polymg-naive" rows /. t
      in
      all_opt := speed "polymg-opt" :: !all_opt;
      all_optp := speed "polymg-opt+" :: !all_optp)
    (Harness.benchmarks ~dims);
  Printf.printf
    "\n  geometric means over the %dD class-%s suite: opt %.2fx, opt+ %.2fx over naive; opt+/opt %.2fx\n"
    dims (Problem.cls_name cls)
    (Harness.geomean !all_opt) (Harness.geomean !all_optp)
    (Harness.geomean
       (List.map2 (fun a b -> b /. a) !all_opt !all_optp))

let nas ~cls ~iters ~reps () =
  Printf.printf "\n=== Figure 10(e): NAS MG class %s (N=%d³, %d iterations) ===\n"
    (Nas_coeffs.cls_name cls)
    (Nas_coeffs.problem_n cls)
    iters;
  let prob = Nas_problem.setup ~cls in
  let problem =
    { Problem.dims = 3; n = prob.Nas_problem.n;
      v = prob.Nas_problem.u; f = prob.Nas_problem.v;
      exact = (fun _ -> 0.0) }
  in
  let time_and_norm name mk =
    let rt = Exec.runtime () in
    let stepper = mk rt in
    let t = Harness.time_stepper ~reps ~cycles:iters stepper problem in
    let r =
      Solver.iterate stepper ~problem ~cycles:iters ~residuals:false ()
    in
    let norm = Nas_ref.residual_l2 ~u:r.Solver.v ~v:prob.Nas_problem.v in
    Exec.free_runtime rt;
    Printf.printf "  %-16s %10.4f s/iter   final residual L2 = %.6e\n" name t
      norm;
    t
  in
  (* tune the grouping limit for the DSL variants (27-point stencils make
     overlapped fusion expensive; the paper tunes per benchmark) *)
  let tune base =
    let best = ref (infinity, base) in
    List.iter
      (fun limit ->
        let opts = { base with Options.group_size_limit = limit } in
        let rt = Exec.runtime () in
        let stepper = Nas_pipeline.stepper ~cls ~opts ~rt in
        let t = Harness.time_stepper ~reps:1 ~cycles:1 stepper problem in
        Exec.free_runtime rt;
        if t < fst !best then best := (t, opts))
      [ 1; 3; 6 ];
    snd !best
  in
  let t_ref =
    time_and_norm "reference" (fun rt ->
        Nas_ref.stepper (Nas_ref.create ~cls ~par:rt.Exec.par))
  in
  let _ =
    time_and_norm "polymg-naive" (fun rt ->
        Nas_pipeline.stepper ~cls ~opts:Options.naive ~rt)
  in
  let tuned = tune Options.opt_plus in
  let t_optp =
    time_and_norm "polymg-opt+" (fun rt ->
        Nas_pipeline.stepper ~cls ~opts:tuned ~rt)
  in
  Printf.printf "  polymg-opt+ vs reference: %.2fx\n" (t_ref /. t_optp)
