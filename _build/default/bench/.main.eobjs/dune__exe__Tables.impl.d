bench/tables.ml: C_emit Cycle Exec Harness List Nas_coeffs Nas_pipeline Nas_problem Nas_ref Options Plan Printf Problem Repro_core Repro_ir Repro_mg Repro_nas Solver
