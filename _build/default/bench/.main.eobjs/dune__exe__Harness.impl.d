bench/harness.ml: Cycle Exec Float Gc Handopt List Option Options Printf Problem Repro_core Repro_mg Solver
