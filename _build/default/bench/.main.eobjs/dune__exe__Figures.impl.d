bench/figures.ml: Array Cycle Dsl Exec Expr Func Harness List Options Pipeline Plan Printf Problem Repro_core Repro_ir Repro_mg Repro_poly Sizeexpr Solver Weights
