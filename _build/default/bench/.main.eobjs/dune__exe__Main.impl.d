bench/main.ml: Analyze Array Bechamel Benchmark Cycle Figures Harness Hashtbl List Measure Options Printf Problem Repro_core Repro_mg Repro_nas Solver Staged String Sys Tables Test Time Toolkit
