bench/main.mli:
