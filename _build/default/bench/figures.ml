(* Figures 11a, 11b, 12 and the scaling study of §4.2. *)

open Repro_ir
open Repro_mg
open Repro_core

(* ---- Fig. 11a: smoother-only, overlapped vs diamond tiling (3D) ---- *)

(* a pipeline that is nothing but a [steps]-deep Jacobi smoother *)
let smoother_pipeline ~dims ~steps =
  let sizes = Array.make dims (Sizeexpr.add_const Sizeexpr.n (-1)) in
  let ctx = Dsl.create (Printf.sprintf "smoother-%dD-%d" dims steps) in
  let v = Dsl.grid ctx "V" ~dims ~sizes in
  let f = Dsl.grid ctx "F" ~dims ~sizes in
  let aw =
    if dims = 2 then
      Weights.w2 [| [| 0.; -1.; 0. |]; [| -1.; 4.; -1. |]; [| 0.; -1.; 0. |] |]
    else
      let z = [| [| 0.; 0.; 0. |]; [| 0.; -1.; 0. |]; [| 0.; 0.; 0. |] |] in
      let m = [| [| 0.; -1.; 0. |]; [| -1.; 6.; -1. |]; [| 0.; -1.; 0. |] |] in
      Weights.w3 [| z; m; z |]
  in
  let zero = Array.make dims 0 in
  let last =
    Dsl.tstencil ctx ~name:"T" ~steps ~init:v (fun ~v ->
        Expr.(
          load v.Func.id zero
          - (param "w"
             * ((param "invhsq" * Dsl.stencil v aw ())
                - load f.Func.id zero))))
  in
  Dsl.finish ctx ~outputs:[ last ]

let smoother_params ~dims ~n name =
  let invhsq = float_of_int (n * n) in
  match name with
  | "invhsq" -> invhsq
  | "w" -> 0.8 /. (float_of_int (2 * dims) *. invhsq)
  | _ -> invalid_arg name

let time_smoother ~dims ~steps ~n ~opts ~reps =
  let p = smoother_pipeline ~dims ~steps in
  let plan = Plan.build p ~opts ~n ~params:(smoother_params ~dims ~n) in
  let vin =
    (List.find (fun (f : Func.t) -> f.Func.name = "V") (Pipeline.inputs p))
      .Func.id
  in
  let fin =
    (List.find (fun (f : Func.t) -> f.Func.name = "F") (Pipeline.inputs p))
      .Func.id
  in
  let out = List.hd (Pipeline.outputs p) in
  let rt = Exec.runtime () in
  let problem = Problem.poisson_random ~dims ~n ~seed:7 in
  let stepper ~v ~f ~out:og =
    Exec.run plan rt ~inputs:[ (vin, v); (fin, f) ] ~outputs:[ (out, og) ]
  in
  let t = Harness.time_stepper ~reps ~cycles:1 stepper problem in
  Exec.free_runtime rt;
  t

let fig11a ~cls ~reps () =
  let dims = 3 in
  let n = Problem.class_n ~dims cls in
  Printf.printf
    "\n=== Figure 11a: 3D smoother only (N=%d³): overlapped vs diamond vs \
     skewed ===\n"
    n;
  Printf.printf "  %-6s %14s %12s %12s %9s %9s\n" "steps" "overlapped (s)"
    "diamond (s)" "skewed (s)" "dia/ovl" "skw/dia";
  List.iter
    (fun steps ->
      let t_ovl = time_smoother ~dims ~steps ~n ~opts:Options.opt_plus ~reps in
      let t_dia =
        time_smoother ~dims ~steps ~n ~opts:Options.dtile_opt_plus ~reps
      in
      let t_skw =
        time_smoother ~dims ~steps ~n
          ~opts:
            { Options.opt_plus with
              Options.smoother =
                Options.Skewed_smoother { tau = 4; sigma = 16 } }
          ~reps
      in
      Printf.printf "  %-6d %14.4f %12.4f %12.4f %8.2fx %8.2fx\n" steps t_ovl
        t_dia t_skw (t_ovl /. t_dia) (t_skw /. t_dia))
    [ 4; 10 ];
  (* §5's structural claim: diamond has concurrent start, the wavefront
     method pays a pipelined startup — quantified as schedule concurrency *)
  let steps = 10 in
  let profile name fronts =
    let p = Repro_poly.Skewed.concurrency fronts in
    Printf.printf
      "  %-9s schedule: %4d wavefronts, max %4d tiles/front, avg %7.1f, \
       %d ramp-up/drain fronts\n"
      name p.Repro_poly.Skewed.fronts p.Repro_poly.Skewed.max_width
      p.Repro_poly.Skewed.avg_width p.Repro_poly.Skewed.startup_fronts
  in
  profile "diamond"
    (Repro_poly.Diamond.wavefronts ~steps ~size:n ~sigma:16);
  profile "skewed"
    (Repro_poly.Skewed.wavefronts ~steps ~size:n ~tau:4 ~sigma:16)

(* ---- Fig. 11b: storage-optimization breakdown ---- *)

let fig11b ~cls ~cycles ~reps () =
  Printf.printf
    "\n=== Figure 11b: storage optimizations for V-10-0-0 (speedup over naive) ===\n";
  List.iter
    (fun dims ->
      let n = Problem.class_n ~dims cls in
      let cfg = Cycle.default ~dims ~shape:Cycle.V ~smoothing:(10, 0, 0) in
      (* best-performing opt+ configuration (as the paper does), then
         disable storage features one at a time *)
      let tuned = Harness.tune_opts Options.opt_plus cfg ~n in
      let variants =
        [ ("naive", Options.naive);
          ("intra-group reuse",
           { tuned with Options.array_reuse = false; Options.pool = false });
          ("intra + pooled", { tuned with Options.array_reuse = false });
          ("intra + pooled + inter (opt+)", tuned) ]
      in
      let rows =
        Harness.run_benchmark ~cycles ~reps cfg ~n
          ~variants:
            (List.map (fun (name, o) -> Harness.polymg_variant name o) variants)
      in
      Harness.print_speedups
        ~title:(Printf.sprintf "V-%dD-10-0-0 class %s (N=%d)" dims
                  (Problem.cls_name cls) n)
        ~base:"naive" rows;
      (* memory footprints, the quantity §3.2.2 optimizes *)
      let p = Cycle.build cfg in
      List.iter
        (fun (name, o) ->
          let plan = Plan.build p ~opts:o ~n ~params:(Cycle.params cfg ~n) in
          Printf.printf "  %-30s arrays=%3d  bytes=%8.1f MB  scratch/thread=%6.2f MB\n"
            name (Plan.array_count plan)
            (float_of_int (Plan.total_array_bytes plan) /. 1e6)
            (float_of_int (Plan.scratch_bytes_per_thread plan) /. 1e6))
        variants)
    [ 2; 3 ]

(* ---- Fig. 12: autotuning configurations ---- *)

let fig12 ~cls ~cycles () =
  let dims = 2 in
  let n = Problem.class_n ~dims cls in
  let cfg = Cycle.default ~dims ~shape:Cycle.V ~smoothing:(10, 0, 0) in
  Printf.printf
    "\n=== Figure 12: autotuning V-2D-10-0-0 class %s (N=%d), opt vs opt+ ===\n"
    (Problem.cls_name cls) n;
  Printf.printf "  %-6s %-10s %12s %12s\n" "limit" "tile" "opt (s/cy)"
    "opt+ (s/cy)";
  let problem = Problem.poisson_random ~dims ~n ~seed:3 in
  let best = ref (infinity, "") in
  List.iter
    (fun limit ->
      List.iter
        (fun t0 ->
          List.iter
            (fun t1 ->
              let tile = [| t0; t1 |] in
              let time opts =
                let opts =
                  { (Options.with_tiles opts ~t2:tile ~t3:opts.Options.tile_3d)
                    with Options.group_size_limit = limit }
                in
                let rt = Exec.runtime () in
                let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
                let t = Harness.time_stepper ~reps:1 ~cycles stepper problem in
                Exec.free_runtime rt;
                t
              in
              let t_opt = time Options.opt in
              let t_optp = time Options.opt_plus in
              let tag = Printf.sprintf "limit=%d tile=%dx%d" limit t0 t1 in
              if t_optp < fst !best then best := (t_optp, tag);
              Printf.printf "  %-6d %-10s %12.4f %12.4f\n" limit
                (Printf.sprintf "%dx%d" t0 t1)
                t_opt t_optp)
            [ 64; 128; 256; 512 ])
        [ 8; 16; 32; 64 ])
    [ 2; 4; 6; 8; 12 ];
  let t, tag = !best in
  Printf.printf "  best opt+ configuration: %s (%.4f s/cycle)\n" tag t

(* ---- §4.2 scaling with domain count ---- *)

let scaling ~cls ~cycles ~reps () =
  Printf.printf "\n=== Scaling with domain count (§4.2) ===\n";
  List.iter
    (fun (dims, shape, sm) ->
      let cfg = Cycle.default ~dims ~shape ~smoothing:sm in
      let n = Problem.class_n ~dims cls in
      Printf.printf "\n%s class %s (N=%d)\n" (Cycle.bench_name cfg)
        (Problem.cls_name cls) n;
      Printf.printf "  %-8s %14s %14s\n" "domains" "naive (s/cy)" "opt+ (s/cy)";
      List.iter
        (fun domains ->
          let t name opts =
            match
              Harness.run_benchmark ~domains ~cycles ~reps cfg ~n
                ~variants:[ Harness.polymg_variant name opts ]
            with
            | [ (_, t) ] -> t
            | _ -> assert false
          in
          Printf.printf "  %-8d %14.4f %14.4f\n" domains
            (t "naive" Options.naive)
            (t "opt+" Options.opt_plus))
        [ 1; 2; 4 ])
    [ (2, Cycle.W, (10, 0, 0)); (3, Cycle.V, (4, 4, 4)) ]

(* ---- Ablations of this implementation's own design choices ---- *)

let ablation ~cls ~cycles ~reps () =
  Printf.printf "\n=== Ablations (implementation design choices) ===\n";
  let bench ~dims cfg variants =
    let n = Problem.class_n ~dims cls in
    let rows =
      Harness.run_benchmark ~cycles ~reps cfg ~n
        ~variants:
          (List.map (fun (name, o) -> Harness.polymg_variant name o) variants)
    in
    Harness.print_speedups
      ~title:(Printf.sprintf "%s class %s (N=%d)" (Cycle.bench_name cfg)
                (Problem.cls_name cls) n)
      ~base:(fst (List.hd variants))
      rows
  in
  (* (a) walk-form kernel specialization: the codegen-quality axis *)
  Printf.printf "\n-- (a) inner-loop code shape (walk kernels vs generic) --\n";
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(10, 0, 0) in
  bench ~dims:2 cfg
    [ ("opt+ generic kernels",
       { Options.opt_plus with Options.walk_kernels = false });
      ("opt+ walk kernels", Options.opt_plus) ];
  (* (b) scratchpad storage-class threshold: reuse breadth vs slack *)
  Printf.printf "\n-- (b) scratchpad class threshold (elements/dim) --\n";
  bench ~dims:2 cfg
    (List.map
       (fun th ->
         ( Printf.sprintf "threshold %d" th,
           { Options.opt_plus with Options.scratch_class_threshold = th } ))
       [ 1; 8; 32; 128 ]);
  (* (c) naive parallel chunking granularity *)
  Printf.printf "\n-- (c) naive outer-loop chunk rows --\n";
  bench ~dims:2 cfg
    (List.map
       (fun rows ->
         ( Printf.sprintf "naive rows=%d" rows,
           { Options.naive with Options.naive_rows = rows } ))
       [ 1; 4; 16; 64 ])
