(** Shared-memory parallelism over a reusable pool of domains.

    This is the OCaml-5 stand-in for the paper's OpenMP
    [parallel for collapse(d)] loops: a pool of [p] domains created once
    and reused for every parallel region (tile loops, wavefronts).  With
    [p = 1] everything runs inline in the caller with no synchronization,
    which is the honest sequential baseline. *)

type t

val create : int -> t
(** [create p] spins up [p - 1] worker domains ([p] ≥ 1). *)

val size : t -> int

val sequential : t
(** A shared single-domain pool (inline execution). *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** Runs [f i] for every [i] in [lo..hi] inclusive, distributing indices
    dynamically over the pool.  Blocks until all complete.  The first
    exception raised by any worker is re-raised in the caller (others are
    discarded).  Nested calls run the inner loop inline. *)

val teardown : t -> unit
(** Joins the workers.  The pool must not be used afterwards; calling
    teardown on {!sequential} is a no-op. *)
