lib/runtime/parallel.ml: Array Atomic Condition Domain Mutex
