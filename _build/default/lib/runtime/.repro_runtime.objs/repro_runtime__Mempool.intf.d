lib/runtime/mempool.mli: Repro_grid
