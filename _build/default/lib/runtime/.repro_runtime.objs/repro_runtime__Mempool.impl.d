lib/runtime/mempool.ml: Buf List Repro_grid
