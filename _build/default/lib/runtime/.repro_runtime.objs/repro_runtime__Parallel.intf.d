lib/runtime/parallel.mli:
