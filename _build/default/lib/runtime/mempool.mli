(** Pooled memory allocation (paper §3.2.3).

    Full-array allocation requests from the execution engine go through a
    pool that outlives individual multigrid cycles: [acquire] returns an
    existing free buffer when one is large enough (best fit), otherwise
    allocates a fresh one; [release] is a table update making the buffer
    available again.  Arrays are thus physically allocated on the first
    cycle and reused by all later cycles — and releasing as soon as the
    last consumer of an array finishes lets later stages of the {e same}
    cycle reuse it, catching inter-group reuse the static pass missed. *)

type t

type stats = {
  fresh_allocs : int;  (** requests served by a new allocation *)
  reuse_hits : int;  (** requests served from the free list *)
  live_bytes : int;  (** bytes currently acquired *)
  pool_bytes : int;  (** bytes owned by the pool (live + free) *)
  peak_live_bytes : int;
}

val create : unit -> t

val acquire : t -> int -> Repro_grid.Buf.t
(** [acquire t len] returns a buffer with at least [len] elements.
    Contents are unspecified (reused buffers are dirty). *)

val release : t -> Repro_grid.Buf.t -> unit
(** Returns a buffer to the pool.
    @raise Invalid_argument if the buffer is not currently acquired. *)

val stats : t -> stats

val live_count : t -> int

val clear : t -> unit
(** Drops every buffer (free and acquired) and resets statistics. *)
