lib/nas/nas_ref.ml: Array Bigarray Nas_coeffs Repro_grid Repro_mg Repro_runtime
