lib/nas/nas_coeffs.ml: Array Repro_ir
