lib/nas/nas_problem.ml: Float Hashtbl Int Nas_coeffs Repro_grid
