lib/nas/nas_coeffs.mli: Repro_ir
