lib/nas/nas_pipeline.ml: Array Dsl Expr Func List Nas_coeffs Pipeline Printf Repro_core Repro_ir Sizeexpr
