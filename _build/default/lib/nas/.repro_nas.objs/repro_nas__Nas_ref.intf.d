lib/nas/nas_ref.mli: Nas_coeffs Repro_grid Repro_mg Repro_runtime
