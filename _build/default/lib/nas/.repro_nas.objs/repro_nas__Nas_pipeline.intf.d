lib/nas/nas_pipeline.mli: Nas_coeffs Repro_core Repro_ir Repro_mg
