lib/nas/nas_problem.mli: Nas_coeffs Repro_grid
