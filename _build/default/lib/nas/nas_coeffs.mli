(** Stencil coefficients of the NAS MG benchmark (NPB 3.2, [mg.f]).

    All NAS MG kernels are 27-point stencils whose weight depends only on
    the taxicab distance class of the neighbour: 0 = centre, 1 = face,
    2 = edge, 3 = corner. *)

type cls = S | W | A | B | C | D

val cls_of_string : string -> cls option
val cls_name : cls -> string

val problem_n : cls -> int
(** The scaled grid parameter for this repo's substrate (power of two;
    interior is [n−1]); see DESIGN.md for the scaling rationale. *)

val iterations : cls -> int

val a : float array
(** The operator [A]: [-8/3, 0, 1/6, 1/12] by distance class. *)

val c : cls -> float array
(** The smoother [P ≈ A⁻¹]: class-dependent per the benchmark. *)

val r : float array
(** The restriction operator of [rprj3]: [1/2, 1/4, 1/8, 1/16]. *)

val weights27 : float array -> Repro_ir.Weights.t
(** Expands per-distance-class coefficients into the 3×3×3 tensor. *)

val levels_for : int -> int
(** Number of multigrid levels for grid parameter [n = 2^k] (down to a
    coarsest interior of 1 point): [log2 n]. *)
