type cls = S | W | A | B | C | D

let cls_of_string = function
  | "S" | "s" -> Some S
  | "W" | "w" -> Some W
  | "A" | "a" -> Some A
  | "B" | "b" -> Some B
  | "C" | "c" -> Some C
  | "D" | "d" -> Some D
  | _ -> None

let cls_name = function
  | S -> "S" | W -> "W" | A -> "A" | B -> "B" | C -> "C" | D -> "D"

(* NAS sizes are 32..1024; scaled for the simulated substrate. *)
let problem_n = function
  | S -> 16
  | W -> 32
  | A -> 64
  | B -> 128
  | C -> 256
  | D -> 512

let iterations = function
  | S -> 4
  | W -> 4
  | A -> 4
  | B -> 20
  | C -> 20
  | D -> 50

let a = [| -8.0 /. 3.0; 0.0; 1.0 /. 6.0; 1.0 /. 12.0 |]

let c = function
  | S | W | A ->
    [| -3.0 /. 8.0; 1.0 /. 32.0; -1.0 /. 64.0; 0.0 |]
  | B | C | D ->
    [| -3.0 /. 17.0; 1.0 /. 33.0; -1.0 /. 61.0; 0.0 |]

let r = [| 0.5; 0.25; 0.125; 0.0625 |]

let weights27 by_class =
  if Array.length by_class <> 4 then
    invalid_arg "Nas_coeffs.weights27: need 4 coefficients";
  let plane di =
    Array.init 3 (fun j ->
        Array.init 3 (fun k ->
            let d = abs di + abs (j - 1) + abs (k - 1) in
            by_class.(d)))
  in
  Repro_ir.Weights.w3 [| plane 1; plane 0; plane 1 |]

let levels_for n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Nas_coeffs.levels_for: n must be a power of two >= 2";
  let rec go acc m = if m = 1 then acc else go (acc + 1) (m / 2) in
  go 0 n
