(** Hand-written reference implementation of NAS MG (the benchmark's
    Fortran reference translated to OCaml loops, non-periodic boundary),
    used both as the baseline the paper compares against (Fig. 10e) and as
    an independent check of the DSL pipeline. *)

type t

val create :
  cls:Nas_coeffs.cls -> par:Repro_runtime.Parallel.t -> t
(** Allocates the [u]/[r] hierarchies once, like the reference code. *)

val stepper : t -> Repro_mg.Solver.stepper
(** One benchmark iteration ([resid] + [mg3P]); the [v] argument is the
    current iterate, [f] the right-hand side. *)

val residual_l2 :
  u:Repro_grid.Grid.t -> v:Repro_grid.Grid.t -> float
(** L2 norm of [v − A·u] with the NAS operator — the benchmark's
    verification norm. *)
