(** The NAS MG benchmark expressed in the PolyMG DSL.

    One pipeline executes one full benchmark iteration ([resid] at the
    finest level followed by the [mg3P] V-cycle, which has no
    pre-smoothing): inputs ["U"] (iterate) and ["V"] (rhs), output the new
    iterate.  All kernels are the benchmark's 27-point stencils
    ({!Nas_coeffs}); boundaries are non-periodic (zero), the paper's
    comparison setting. *)

val build : cls:Nas_coeffs.cls -> Repro_ir.Pipeline.t

val params : cls:Nas_coeffs.cls -> string -> float
(** NAS stencils carry no grid-spacing parameters; this rejects every
    name and exists for interface uniformity with {!Repro_core.Plan}. *)

val input_u : Repro_ir.Pipeline.t -> int
val input_v : Repro_ir.Pipeline.t -> int
val output : Repro_ir.Pipeline.t -> int

val stepper :
  cls:Nas_coeffs.cls -> opts:Repro_core.Options.t ->
  rt:Repro_core.Exec.runtime -> Repro_mg.Solver.stepper
(** Plan the pipeline and return the per-iteration stepper. *)
