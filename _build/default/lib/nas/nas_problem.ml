module Grid = Repro_grid.Grid

(* NAS randlc: x_{k+1} = a * x_k mod 2^46, using the benchmark's split
   arithmetic (exact in doubles). *)
let r23 = 0.5 ** 23.0
let r46 = r23 *. r23
let t23 = 2.0 ** 23.0
let t46 = t23 *. t23

let randlc ~seed ~a =
  let t1 = r23 *. a in
  let a1 = Float.of_int (int_of_float t1) in
  let a2 = a -. (t23 *. a1) in
  let x = !seed in
  let t1 = r23 *. x in
  let x1 = Float.of_int (int_of_float t1) in
  let x2 = x -. (t23 *. x1) in
  let t1 = (a1 *. x2) +. (a2 *. x1) in
  let t2 = Float.of_int (int_of_float (r23 *. t1)) in
  let z = t1 -. (t23 *. t2) in
  let t3 = (t23 *. z) +. (a2 *. x2) in
  let t4 = Float.of_int (int_of_float (r46 *. t3)) in
  let x' = t3 -. (t46 *. t4) in
  seed := x';
  r46 *. x'

type t = {
  n : int;
  u : Grid.t;
  v : Grid.t;
}

let setup ~cls =
  let n = Nas_coeffs.problem_n cls in
  let interior = n - 1 in
  let u = Grid.interior ~dims:3 interior in
  let v = Grid.interior ~dims:3 interior in
  (* Draw 20 distinct interior positions from the NAS stream; the first
     ten get -1, the last ten +1 (mirroring zran3's extrema placement). *)
  let seed = ref 314159265.0 in
  let a = 5.0 ** 13.0 in
  let taken = Hashtbl.create 32 in
  let draw () =
    let rec go () =
      let i = 1 + int_of_float (randlc ~seed ~a *. float_of_int interior) in
      let j = 1 + int_of_float (randlc ~seed ~a *. float_of_int interior) in
      let k = 1 + int_of_float (randlc ~seed ~a *. float_of_int interior) in
      let i = Int.min i interior and j = Int.min j interior
      and k = Int.min k interior in
      if Hashtbl.mem taken (i, j, k) then go ()
      else begin
        Hashtbl.replace taken (i, j, k) ();
        (i, j, k)
      end
    in
    go ()
  in
  for idx = 0 to 19 do
    let i, j, k = draw () in
    Grid.set3 v i j k (if idx < 10 then -1.0 else 1.0)
  done;
  { n; u; v }
