module Buf = Repro_grid.Buf
module Grid = Repro_grid.Grid
module Parallel = Repro_runtime.Parallel

type buf = Buf.data


(* 27-point gather by distance class around [idx]; [s] = row stride,
   [sp] = plane stride. *)
let gather27 (src : buf) ~idx ~s ~sp ~(co : float array) =
  let center = Bigarray.Array1.unsafe_get src idx in
  let face =
    Bigarray.Array1.unsafe_get src (idx - 1) +. Bigarray.Array1.unsafe_get src (idx + 1) +. Bigarray.Array1.unsafe_get src (idx - s)
    +. Bigarray.Array1.unsafe_get src (idx + s)
    +. Bigarray.Array1.unsafe_get src (idx - sp)
    +. Bigarray.Array1.unsafe_get src (idx + sp)
  in
  let edge =
    Bigarray.Array1.unsafe_get src (idx - s - 1) +. Bigarray.Array1.unsafe_get src (idx - s + 1)
    +. Bigarray.Array1.unsafe_get src (idx + s - 1)
    +. Bigarray.Array1.unsafe_get src (idx + s + 1)
    +. Bigarray.Array1.unsafe_get src (idx - sp - 1)
    +. Bigarray.Array1.unsafe_get src (idx - sp + 1)
    +. Bigarray.Array1.unsafe_get src (idx + sp - 1)
    +. Bigarray.Array1.unsafe_get src (idx + sp + 1)
    +. Bigarray.Array1.unsafe_get src (idx - sp - s)
    +. Bigarray.Array1.unsafe_get src (idx - sp + s)
    +. Bigarray.Array1.unsafe_get src (idx + sp - s)
    +. Bigarray.Array1.unsafe_get src (idx + sp + s)
  in
  let corner =
    Bigarray.Array1.unsafe_get src (idx - sp - s - 1)
    +. Bigarray.Array1.unsafe_get src (idx - sp - s + 1)
    +. Bigarray.Array1.unsafe_get src (idx - sp + s - 1)
    +. Bigarray.Array1.unsafe_get src (idx - sp + s + 1)
    +. Bigarray.Array1.unsafe_get src (idx + sp - s - 1)
    +. Bigarray.Array1.unsafe_get src (idx + sp - s + 1)
    +. Bigarray.Array1.unsafe_get src (idx + sp + s - 1)
    +. Bigarray.Array1.unsafe_get src (idx + sp + s + 1)
  in
  (co.(0) *. center) +. (co.(1) *. face) +. (co.(2) *. edge)
  +. (co.(3) *. corner)

(* dst ← rhs − A·u over planes [rlo..rhi] *)
let resid ~n ~(u : buf) ~(rhs : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  let sp = s * s in
  let a = Nas_coeffs.a in
  for i = rlo to rhi do
    for j = 1 to n do
      let r = (i * sp) + (j * s) in
      for k = 1 to n do
        Bigarray.Array1.unsafe_set dst (r + k) (Bigarray.Array1.unsafe_get rhs (r + k) -. gather27 u ~idx:(r + k) ~s ~sp ~co:a)
      done
    done
  done

(* dst ← base + C·r; [base] may be null-like (pure smoothing) *)
let psinv ~n ~co ~(base : buf option) ~(r : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  let sp = s * s in
  for i = rlo to rhi do
    for j = 1 to n do
      let row = (i * sp) + (j * s) in
      for k = 1 to n do
        let v = gather27 r ~idx:(row + k) ~s ~sp ~co in
        match base with
        | None -> Bigarray.Array1.unsafe_set dst (row + k) v
        | Some b -> Bigarray.Array1.unsafe_set dst (row + k) (Bigarray.Array1.unsafe_get b (row + k) +. v)
      done
    done
  done

(* coarse ← R·fine (27-point weighting at stride 2) *)
let rprj3 ~nc ~(fine : buf) ~(dst : buf) ~rlo ~rhi =
  let nf = (2 * nc) + 1 in
  let sf = nf + 2 and sc = nc + 2 in
  let spf = sf * sf and spc = sc * sc in
  let co = Nas_coeffs.r in
  for i = rlo to rhi do
    for j = 1 to nc do
      let rc = (i * spc) + (j * sc) in
      for k = 1 to nc do
        let idx = (2 * i * spf) + (2 * j * sf) + (2 * k) in
        Bigarray.Array1.unsafe_set dst (rc + k) (gather27 fine ~idx ~s:sf ~sp:spf ~co)
      done
    done
  done

type level = {
  ln : int;
  ubuf : buf;
  rbuf : buf;
  tmp : buf;
}

type t = {
  cls : Nas_coeffs.cls;
  n : int;
  lt : int;
  par : Parallel.t;
  levels : level array;  (* index j-1 for NAS level j *)
}

let create ~cls ~par =
  let n = Nas_coeffs.problem_n cls in
  let lt = Nas_coeffs.levels_for n in
  let levels =
    Array.init lt (fun i ->
        let j = i + 1 in
        let nl = (n / (1 lsl (lt - j))) - 1 in
        let len = (nl + 2) * (nl + 2) * (nl + 2) in
        { ln = nl;
          ubuf = (Buf.create len).Buf.data;
          rbuf = (Buf.create len).Buf.data;
          tmp = (Buf.create len).Buf.data })
  in
  { cls; n; lt; par; levels }

let zero_interior par ~n (b : buf) =
  let s = n + 2 in
  let sp = s * s in
  Parallel.parallel_for par ~lo:1 ~hi:n (fun i ->
      for j = 1 to n do
        let r = (i * sp) + (j * s) in
        for k = 1 to n do
          Bigarray.Array1.unsafe_set b (r + k) 0.0
        done
      done)

let stepper t ~v ~f ~out =
  let finest = t.levels.(t.lt - 1) in
  let expect = Array.make 3 (finest.ln + 2) in
  if Grid.extents v <> expect || Grid.extents f <> expect
     || Grid.extents out <> expect
  then invalid_arg "Nas_ref.stepper: grid extents mismatch";
  let co = Nas_coeffs.c t.cls in
  let par = t.par in
  (* finest residual into r_lt *)
  Parallel.parallel_for par ~lo:1 ~hi:finest.ln (fun i ->
      resid ~n:finest.ln ~u:v.Grid.buf.Buf.data ~rhs:f.Grid.buf.Buf.data
        ~dst:finest.rbuf ~rlo:i ~rhi:i);
  (* down *)
  for j = t.lt - 1 downto 1 do
    let c = t.levels.(j - 1) and fine = t.levels.(j) in
    Parallel.parallel_for par ~lo:1 ~hi:c.ln (fun i ->
        rprj3 ~nc:c.ln ~fine:fine.rbuf ~dst:c.rbuf ~rlo:i ~rhi:i)
  done;
  (* coarsest: u₁ = C·r₁ *)
  let c0 = t.levels.(0) in
  Parallel.parallel_for par ~lo:1 ~hi:c0.ln (fun i ->
      psinv ~n:c0.ln ~co ~base:None ~r:c0.rbuf ~dst:c0.ubuf ~rlo:i ~rhi:i);
  (* up *)
  for j = 2 to t.lt do
    let lev = t.levels.(j - 1) and coarse = t.levels.(j - 2) in
    let ubuf = if j = t.lt then out.Grid.buf.Buf.data else lev.ubuf in
    (* u_j = interp(u_{j-1}) (+ u at the finest) *)
    if j = t.lt then begin
      Parallel.parallel_for par ~lo:1 ~hi:lev.ln (fun i ->
          Repro_mg.Kernels.copy3d ~n:lev.ln ~src:v.Grid.buf.Buf.data ~dst:ubuf
            ~rlo:i ~rhi:i)
    end
    else zero_interior par ~n:lev.ln ubuf;
    Parallel.parallel_for par ~lo:0 ~hi:coarse.ln (fun i ->
        Repro_mg.Kernels.interp_correct3d ~nc:coarse.ln ~coarse:coarse.ubuf
          ~v:ubuf ~rlo:i ~rhi:i);
    (* r' = rhs − A·u_j; the finest level uses the true rhs *)
    let rhs = if j = t.lt then f.Grid.buf.Buf.data else lev.rbuf in
    Parallel.parallel_for par ~lo:1 ~hi:lev.ln (fun i ->
        resid ~n:lev.ln ~u:ubuf ~rhs ~dst:lev.tmp ~rlo:i ~rhi:i);
    (* u_j += C·r' *)
    Parallel.parallel_for par ~lo:1 ~hi:lev.ln (fun i ->
        psinv ~n:lev.ln ~co ~base:(Some ubuf) ~r:lev.tmp ~dst:ubuf ~rlo:i
          ~rhi:i)
  done

let residual_l2 ~u ~v =
  let n = Grid.interior_size u in
  let r = Grid.create (Grid.extents u) in
  resid ~n ~u:u.Grid.buf.Buf.data ~rhs:v.Grid.buf.Buf.data
    ~dst:r.Grid.buf.Buf.data ~rlo:1 ~rhi:n;
  Repro_grid.Norms.l2 r
