(** NAS MG problem setup: the ±1 point-charge right-hand side generated
    with the benchmark's own [randlc]/[vranlc] pseudo-random stream
    (multiplicative LCG, [x' = 5^13·x mod 2^46]), adapted to non-periodic
    boundaries (the paper's comparison setting). *)

val randlc : seed:float ref -> a:float -> float
(** One step of the NAS LCG; updates [seed] in place, returns a uniform
    deviate in (0, 1). *)

type t = {
  n : int;
  u : Repro_grid.Grid.t;  (** initial iterate (zero) *)
  v : Repro_grid.Grid.t;  (** right-hand side: +1 at 10 points, −1 at 10 *)
}

val setup : cls:Nas_coeffs.cls -> t
(** Grid of interior size [n−1] for the class's [n]; the charge positions
    come from the NAS random stream over the interior. *)
