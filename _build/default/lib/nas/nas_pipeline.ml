open Repro_ir

(* interior size at NAS level j (1 = coarsest, lt = finest): n/2^(lt-j) − 1 *)
let sizes_at ~lt j =
  Array.make 3
    (Sizeexpr.add_const (Sizeexpr.n_over (1 lsl (lt - j))) (-1))

let zero3 = [| 0; 0; 0 |]

let build ~cls =
  let n = Nas_coeffs.problem_n cls in
  let lt = Nas_coeffs.levels_for n in
  let aw = Nas_coeffs.weights27 Nas_coeffs.a in
  let cw = Nas_coeffs.weights27 (Nas_coeffs.c cls) in
  let rw = Nas_coeffs.weights27 Nas_coeffs.r in
  let ctx = Dsl.create (Printf.sprintf "NAS-MG-%s" (Nas_coeffs.cls_name cls)) in
  let u = Dsl.grid ctx "U" ~dims:3 ~sizes:(sizes_at ~lt lt) in
  let v = Dsl.grid ctx "V" ~dims:3 ~sizes:(sizes_at ~lt lt) in
  (* r = v − A·u at the finest level *)
  let resid ~name ~sizes ~rhs_load ~(iter : Func.t) =
    Dsl.func ctx ~name ~sizes
      Expr.(rhs_load - Dsl.stencil iter aw ())
  in
  let r_top =
    resid ~name:"resid_top" ~sizes:(sizes_at ~lt lt)
      ~rhs_load:(Expr.load v.Func.id zero3) ~iter:u
  in
  (* down: restrict the residual to every level *)
  let rs = Array.make (lt + 1) r_top in
  for j = lt - 1 downto 1 do
    rs.(j) <-
      Dsl.restrict_fn ctx
        ~name:(Printf.sprintf "rprj3_L%d" j)
        ~input:rs.(j + 1) ~weights:rw ()
  done;
  (* coarsest: u₁ = C·r₁ (psinv from a zero iterate) *)
  let u1 =
    Dsl.func ctx ~name:"psinv_L1" ~sizes:(sizes_at ~lt 1)
      (Dsl.stencil rs.(1) cw ())
  in
  let cur = ref u1 in
  for j = 2 to lt do
    let e =
      Dsl.interp_fn ctx ~name:(Printf.sprintf "interp_L%d" j) ~input:!cur ()
    in
    let base =
      if j = lt then
        Dsl.func ctx ~name:"correct_top" ~sizes:(sizes_at ~lt j)
          Expr.(load u.Func.id zero3 + load e.Func.id zero3)
      else e
    in
    let rhs_load =
      if j = lt then Expr.load v.Func.id zero3
      else Expr.load rs.(j).Func.id zero3
    in
    let r' =
      resid ~name:(Printf.sprintf "resid_L%d" j) ~sizes:(sizes_at ~lt j)
        ~rhs_load ~iter:base
    in
    let u' =
      Dsl.func ctx
        ~name:(Printf.sprintf "psinv_L%d" j)
        ~sizes:(sizes_at ~lt j)
        Expr.(load base.Func.id zero3 + Dsl.stencil r' cw ())
    in
    cur := u'
  done;
  Dsl.finish ctx ~outputs:[ !cur ]

let params ~cls name =
  ignore cls;
  invalid_arg ("Nas_pipeline.params: unknown parameter " ^ name)

let find_input pipeline name =
  match
    List.find_opt
      (fun (f : Func.t) -> f.Func.name = name)
      (Pipeline.inputs pipeline)
  with
  | Some f -> f.Func.id
  | None -> invalid_arg ("Nas_pipeline: no input " ^ name)

let input_u pipeline = find_input pipeline "U"
let input_v pipeline = find_input pipeline "V"

let output pipeline =
  match Pipeline.outputs pipeline with
  | [ o ] -> o
  | [] | _ :: _ -> invalid_arg "Nas_pipeline.output: expected one output"

let stepper ~cls ~opts ~rt =
  let pipeline = build ~cls in
  let n = Nas_coeffs.problem_n cls in
  let plan =
    Repro_core.Plan.build pipeline ~opts ~n ~params:(params ~cls)
  in
  let iu = input_u pipeline and iv = input_v pipeline in
  let out = output pipeline in
  fun ~v ~f ~out:out_grid ->
    (* Solver convention: [v] is the iterate, [f] the rhs *)
    Repro_core.Exec.run plan rt
      ~inputs:[ (iu, v); (iv, f) ]
      ~outputs:[ (out, out_grid) ]
