(** A complete pipeline: the DAG of stages for one multigrid cycle.

    Stages are stored in construction order, which is a valid topological
    order by construction (a stage can only load from already-created
    stages).  One cycle of a V-/W-/F-cycle is one pipeline; the outer loop
    over cycles lives outside the DSL, exactly as in the paper (§2). *)

type t

val name : t -> string

val funcs : t -> Func.t array
(** All stages including inputs, indexed by id, in topological order. *)

val func : t -> int -> Func.t

val inputs : t -> Func.t list

val outputs : t -> int list
(** Ids of live-out stages (pipeline results). *)

val stage_count : t -> int
(** Number of non-input DAG nodes — the "Stages" column of Table 3. *)

val consumers : t -> int -> int list
(** Ids of stages reading the given stage. *)

val is_liveout : t -> int -> bool

val validate : t -> unit
(** Validates every stage and checks: ids are dense and topologically
    ordered, outputs exist, no stage reads an undefined id.
    @raise Invalid_argument when malformed. *)

val pp : Format.formatter -> t -> unit

(** {2 Construction} *)

type builder

val builder : string -> builder

val add : builder -> (id:int -> Func.t) -> Func.t
(** Allocates the next id, builds the stage with it, registers it. *)

val finish : builder -> outputs:Func.t list -> t
