type t = {
  name : string;
  funcs : Func.t array;
  outputs : int list;
  consumers : int list array;  (* reverse edges, computed once *)
}

let name t = t.name
let funcs t = t.funcs

let func t id =
  if id < 0 || id >= Array.length t.funcs then
    invalid_arg "Pipeline.func: unknown id";
  t.funcs.(id)

let inputs t =
  Array.to_list t.funcs |> List.filter Func.is_input

let outputs t = t.outputs

let stage_count t =
  Array.fold_left
    (fun acc f -> if Func.is_input f then acc else acc + 1)
    0 t.funcs

let consumers t id =
  if id < 0 || id >= Array.length t.funcs then
    invalid_arg "Pipeline.consumers: unknown id";
  t.consumers.(id)

let is_liveout t id = List.mem id t.outputs

let compute_consumers funcs =
  let n = Array.length funcs in
  let rev = Array.make n [] in
  Array.iter
    (fun (f : Func.t) ->
      List.iter (fun p -> rev.(p) <- f.id :: rev.(p)) (Func.producers f))
    funcs;
  Array.map List.rev rev

let validate t =
  let n = Array.length t.funcs in
  Array.iteri
    (fun i (f : Func.t) ->
      if f.id <> i then invalid_arg "Pipeline.validate: non-dense ids";
      Func.validate f;
      List.iter
        (fun p ->
          if p < 0 || p >= n then
            invalid_arg (f.name ^ ": load from unknown stage");
          if p >= i then
            invalid_arg (f.name ^ ": load breaks topological order");
          if (t.funcs.(p)).dims <> f.dims then
            invalid_arg (f.name ^ ": rank mismatch with producer"))
        (Func.producers f))
    t.funcs;
  if t.outputs = [] then invalid_arg "Pipeline.validate: no outputs";
  List.iter
    (fun o ->
      if o < 0 || o >= n then invalid_arg "Pipeline.validate: bad output id";
      if Func.is_input t.funcs.(o) then
        invalid_arg "Pipeline.validate: output is an input")
    t.outputs

let pp fmt t =
  let names id = (t.funcs.(id)).name in
  Format.fprintf fmt "@[<v>pipeline %s (%d stages)@," t.name (stage_count t);
  Array.iter (fun f -> Format.fprintf fmt "%a@," (Func.pp ~names) f) t.funcs;
  Format.fprintf fmt "outputs: %s@]"
    (String.concat ", " (List.map names t.outputs))

type builder = {
  b_name : string;
  mutable rev_funcs : Func.t list;
  mutable next_id : int;
}

let builder b_name = { b_name; rev_funcs = []; next_id = 0 }

let add b mk =
  let f = mk ~id:b.next_id in
  if f.Func.id <> b.next_id then
    invalid_arg "Pipeline.add: stage did not use the given id";
  b.next_id <- b.next_id + 1;
  b.rev_funcs <- f :: b.rev_funcs;
  f

let finish b ~outputs =
  let funcs = Array.of_list (List.rev b.rev_funcs) in
  let t =
    { name = b.b_name;
      funcs;
      outputs = List.map (fun (f : Func.t) -> f.id) outputs;
      consumers = compute_consumers funcs }
  in
  validate t;
  t
