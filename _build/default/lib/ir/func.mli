(** Pipeline stages ("Functions" in PolyMage terminology).

    A stage defines a grid of values over an interior domain of symbolic
    size {!Sizeexpr.t} per dimension, with one ghost cell on each side.
    The value at a ghost cell is given by the stage's boundary condition.

    Interpolation stages use a parity-piecewise definition: one expression
    per combination of index parities (2^dims cases), exactly like the
    [Interp] construct of the paper (§2). *)

type kind =
  | Input  (** pipeline input grid; has no definition *)
  | Pointwise  (** generic [Function]: residual, correction, ... *)
  | Smooth of { step : int; total : int }
      (** one unrolled iteration of a [TStencil] smoother *)
  | Restriction
  | Interpolation

type defn =
  | Undefined  (** inputs only *)
  | Def of Expr.t
  | Parity of Expr.t array
      (** indexed by parity bits: bit [k] set iff coordinate [k] is odd;
          length must be [2^dims] *)

type boundary =
  | Dirichlet of float  (** ghost cells hold a fixed value *)
  | Ghost_input  (** inputs: ghost cells hold caller-supplied data *)

type t = {
  id : int;
  name : string;
  dims : int;
  sizes : Sizeexpr.t array;  (** interior size per dimension *)
  defn : defn;
  boundary : boundary;
  kind : kind;
}

val is_input : t -> bool

val producers : t -> int list
(** De-duplicated ids of stages this stage reads. *)

val defn_exprs : t -> Expr.t list

val accesses_to : t -> int -> Expr.access array list
(** All accesses this stage makes to producer [id], across all cases. *)

val validate : t -> unit
(** Checks rank consistency of all accesses and parity-case count.
    @raise Invalid_argument on malformed stages. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
