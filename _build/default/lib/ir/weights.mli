(** Stencil weight tensors — the literal-list argument of the paper's
    [Stencil] construct, for 1-D, 2-D and 3-D kernels.

    The stencil centre defaults to the element at index [m/2] in each
    dimension (paper §2); a custom centre can be supplied. *)

type t

val w1 : ?center:int array -> float array -> t
val w2 : ?center:int array -> float array array -> t
(** @raise Invalid_argument if rows are ragged. *)

val w3 : ?center:int array -> float array array array -> t

val dims : t -> int

val extent : t -> int array
(** Tensor shape per dimension. *)

val center : t -> int array

val terms : t -> (int array * float) list
(** Non-zero entries as (offset-from-centre, weight) pairs, in row-major
    order of the tensor. *)

val radius : t -> int
(** Largest absolute offset over all dimensions — the stencil halo width. *)
