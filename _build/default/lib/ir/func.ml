type kind =
  | Input
  | Pointwise
  | Smooth of { step : int; total : int }
  | Restriction
  | Interpolation

type defn =
  | Undefined
  | Def of Expr.t
  | Parity of Expr.t array

type boundary =
  | Dirichlet of float
  | Ghost_input

type t = {
  id : int;
  name : string;
  dims : int;
  sizes : Sizeexpr.t array;
  defn : defn;
  boundary : boundary;
  kind : kind;
}

let is_input t = t.kind = Input

let defn_exprs t =
  match t.defn with
  | Undefined -> []
  | Def e -> [ e ]
  | Parity es -> Array.to_list es

let producers t =
  defn_exprs t
  |> List.concat_map Expr.func_ids
  |> List.sort_uniq Int.compare

let accesses_to t id =
  defn_exprs t
  |> List.concat_map Expr.loads
  |> List.filter_map (fun (f, a) -> if f = id then Some a else None)

let validate t =
  if t.dims < 1 then invalid_arg (t.name ^ ": rank must be >= 1");
  if Array.length t.sizes <> t.dims then
    invalid_arg (t.name ^ ": size array rank mismatch");
  (match (t.kind, t.defn) with
   | Input, Undefined -> ()
   | Input, _ -> invalid_arg (t.name ^ ": inputs must have no definition")
   | _, Undefined -> invalid_arg (t.name ^ ": non-input without definition")
   | _, Def _ -> ()
   | _, Parity es ->
     if Array.length es <> 1 lsl t.dims then
       invalid_arg (t.name ^ ": parity case count must be 2^dims"));
  let check_expr e =
    List.iter
      (fun (_, accs) ->
        if Array.length accs <> t.dims then
          invalid_arg (t.name ^ ": access rank mismatch");
        Array.iter
          (fun (a : Expr.access) ->
            if a.den < 1 || a.mul < 1 then
              invalid_arg (t.name ^ ": access scale must be positive"))
          accs)
      (Expr.loads e)
  in
  List.iter check_expr (defn_exprs t)

let pp ~names fmt t =
  let kind_str =
    match t.kind with
    | Input -> "input"
    | Pointwise -> "pointwise"
    | Smooth { step; total } -> Printf.sprintf "smooth %d/%d" (step + 1) total
    | Restriction -> "restrict"
    | Interpolation -> "interp"
  in
  Format.fprintf fmt "@[<v 2>%s [%s] %dD size=(%s)" t.name kind_str t.dims
    (String.concat ", "
       (Array.to_list (Array.map Sizeexpr.to_string t.sizes)));
  (match t.defn with
   | Undefined -> ()
   | Def e -> Format.fprintf fmt "@,= %a" (Expr.pp ~names) e
   | Parity es ->
     Array.iteri
       (fun p e -> Format.fprintf fmt "@,case parity %d = %a" p (Expr.pp ~names) e)
       es);
  Format.fprintf fmt "@]"
