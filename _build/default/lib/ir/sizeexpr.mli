(** Symbolic grid sizes, affine in the problem-size parameter [N].

    Multigrid pipelines are parametric in the finest interior size [N]; a
    grid at coarsening level [k] has size [N/2^k].  A size expression
    denotes [num*N/den + off] with integer floor division, where [den] is a
    power of two.  This tiny symbolic form is all the "polyhedral"
    parametric machinery GMG needs: it classifies full arrays for
    inter-group storage reuse (same [num]/[den] ⇒ same storage class,
    differing only by a constant offset; paper §3.2.2). *)

type t = private { num : int; den : int; off : int }

val const : int -> t
(** A size not depending on [N]. *)

val n : t
(** The parameter [N] itself. *)

val n_over : int -> t
(** [n_over d] is [N/d]; [d] must be a positive power of two. *)

val make : num:int -> den:int -> off:int -> t

val add_const : t -> int -> t

val halve : t -> t
(** [halve s] is [num*N/(2*den) + off/2]. Only valid when [off] is even. *)

val double : t -> t
(** [double s] is [2*s]. *)

val coarsen : t -> t
(** [coarsen s] is [(s - 1)/2], the interior size one multigrid level down
    for vertex-centred grids (finest interior [N-1], coarser [N/2-1], ...).
    Requires [off] odd so the division is exact. *)

val refine : t -> t
(** [refine s] is [2*s + 1], inverse of {!coarsen}. *)

val eval : n:int -> t -> int
(** Concrete value for a given [N]. Requires [n] divisible by [den]. *)

val is_const : t -> bool

val same_class : t -> t -> bool
(** True when two sizes differ only in their constant offset (they depend on
    [N] through the same coefficient), i.e. they belong to the same storage
    class per §3.2.2; constants are only in class with constants. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
