type access = { mul : int; add : int; den : int; off : int }

type unop = Neg | Abs | Sqrt

type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Const of float
  | Param of string
  | Coord of int
  | Load of int * access array
  | Unop of unop * t
  | Binop of binop * t * t

let ident = { mul = 1; add = 0; den = 1; off = 0 }

let id_access rank = Array.make rank ident

let shifted_access offsets =
  Array.map (fun o -> { ident with off = o }) offsets

let load f offsets = Load (f, shifted_access offsets)
let load_at f accs = Load (f, accs)

(* Compose accesses: consumer coordinate x maps through [consumer] to the
   intermediate coordinate y = (cm·x + ca)/cd + co, which maps through
   [producer] to z = (pm·y + pa)/pd + po.  Floor divisions compose exactly
   only in the cases below; all GMG pipelines stay within them. *)
let map_access ~producer ~consumer =
  let c = consumer and p = producer in
  if c.den = 1 then
    (* y = cm·x + (ca + co) exactly, so substitute into the producer form. *)
    { mul = p.mul * c.mul;
      add = (p.mul * (c.add + c.off)) + p.add;
      den = p.den;
      off = p.off }
  else if p.den = 1 && p.mul = 1 then
    (* z = y + (pa + po): a pure shift after the floor division. *)
    { c with off = c.off + p.add + p.off }
  else invalid_arg "Expr.map_access: inexact composition"

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let neg a = Unop (Neg, a)
let const c = Const c
let param s = Param s

let rec loads = function
  | Const _ | Param _ | Coord _ -> []
  | Load (f, a) -> [ (f, a) ]
  | Unop (_, e) -> loads e
  | Binop (_, a, b) -> loads a @ loads b

let func_ids e =
  loads e |> List.map fst |> List.sort_uniq Int.compare

let rec subst_func e ~old_id ~new_id =
  match e with
  | Const _ | Param _ | Coord _ -> e
  | Load (f, a) -> if f = old_id then Load (new_id, a) else e
  | Unop (op, x) -> Unop (op, subst_func x ~old_id ~new_id)
  | Binop (op, a, b) ->
    Binop (op, subst_func a ~old_id ~new_id, subst_func b ~old_id ~new_id)

let rec params_acc acc = function
  | Const _ | Coord _ | Load _ -> acc
  | Param s -> s :: acc
  | Unop (_, e) -> params_acc acc e
  | Binop (_, a, b) -> params_acc (params_acc acc a) b

let params e = params_acc [] e |> List.sort_uniq String.compare

let rec op_count = function
  | Const _ | Param _ | Coord _ | Load _ -> 0
  | Unop (_, e) -> Stdlib.( + ) 1 (op_count e)
  | Binop (_, a, b) -> Stdlib.( + ) 1 (Stdlib.( + ) (op_count a) (op_count b))

let pp_access fmt (k, a) =
  let v = Printf.sprintf "x%d" k in
  let numer =
    if a.mul = 1 && a.add = 0 then v
    else if a.add = 0 then Printf.sprintf "%d*%s" a.mul v
    else if a.mul = 1 then Printf.sprintf "%s%+d" v a.add
    else Printf.sprintf "%d*%s%+d" a.mul v a.add
  in
  let scaled = if a.den = 1 then numer else Printf.sprintf "(%s)/%d" numer a.den in
  if a.off = 0 then Format.pp_print_string fmt scaled
  else Format.fprintf fmt "%s%+d" scaled a.off

let pp ~names fmt e =
  let rec go fmt = function
    | Const c -> Format.fprintf fmt "%g" c
    | Param s -> Format.pp_print_string fmt s
    | Coord k -> Format.fprintf fmt "x%d" k
    | Load (f, accs) ->
      Format.fprintf fmt "%s(" (names f);
      Array.iteri
        (fun k a ->
          if k > 0 then Format.pp_print_string fmt ", ";
          pp_access fmt (k, a))
        accs;
      Format.pp_print_string fmt ")"
    | Unop (Neg, e) -> Format.fprintf fmt "(-%a)" go e
    | Unop (Abs, e) -> Format.fprintf fmt "fabs(%a)" go e
    | Unop (Sqrt, e) -> Format.fprintf fmt "sqrt(%a)" go e
    | Binop (op, a, b) ->
      let s =
        match op with
        | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
        | Min -> "min" | Max -> "max"
      in
      (match op with
       | Min | Max -> Format.fprintf fmt "%s(%a, %a)" s go a go b
       | Add | Sub | Mul | Div -> Format.fprintf fmt "(%a %s %a)" go a s go b)
  in
  go fmt e

let equal = Stdlib.( = )
