type ctx = { builder : Pipeline.builder }

let create name = { builder = Pipeline.builder name }

let grid ctx name ~dims ~sizes =
  Pipeline.add ctx.builder (fun ~id ->
      { Func.id; name; dims; sizes = Array.copy sizes;
        defn = Func.Undefined; boundary = Func.Ghost_input;
        kind = Func.Input })

let sum_terms terms =
  match terms with
  | [] -> invalid_arg "Dsl.stencil: all weights are zero"
  | first :: rest -> List.fold_left (fun acc t -> Expr.(acc + t)) first rest

let weighted_load (f : Func.t) ~scale (off, w) =
  let accs =
    Array.map
      (fun o ->
        match scale with
        | `Unit -> { Expr.mul = 1; add = 0; den = 1; off = o }
        | `Coarse_reads_fine -> { Expr.mul = 2; add = 0; den = 1; off = o })
      off
  in
  let l = Expr.load_at f.Func.id accs in
  if w = 1.0 then l else Expr.(const w * l)

let stencil_with ~scale (f : Func.t) w ?factor () =
  if Weights.dims w <> f.Func.dims then
    invalid_arg "Dsl.stencil: weight tensor rank mismatch";
  let terms = List.map (weighted_load f ~scale) (Weights.terms w) in
  let s = sum_terms terms in
  match factor with None -> s | Some k -> Expr.(k * s)

let stencil f w ?factor () = stencil_with ~scale:`Unit f w ?factor ()

let stencil_coarse f w ?factor () =
  stencil_with ~scale:`Coarse_reads_fine f w ?factor ()

let func ctx ~name ~sizes ?(boundary = 0.0) expr =
  Pipeline.add ctx.builder (fun ~id ->
      let dims = Array.length sizes in
      { Func.id; name; dims; sizes = Array.copy sizes;
        defn = Func.Def expr; boundary = Func.Dirichlet boundary;
        kind = Func.Pointwise })

let smooth_chain ctx ~name ~steps ~boundary ~first_step ~init defn =
  let rec go prev step =
    if step = steps then prev
    else
      let stage =
        Pipeline.add ctx.builder (fun ~id ->
            { Func.id;
              name = Printf.sprintf "%s_t%d" name step;
              dims = prev.Func.dims;
              sizes = Array.copy prev.Func.sizes;
              defn = Func.Def (defn ~v:prev);
              boundary = Func.Dirichlet boundary;
              kind = Func.Smooth { step; total = steps } })
      in
      go stage (step + 1)
  in
  go init first_step

let parity_func ctx ~name ~sizes ?(boundary = 0.0) cases =
  Pipeline.add ctx.builder (fun ~id ->
      let dims = Array.length sizes in
      { Func.id; name; dims; sizes = Array.copy sizes;
        defn = Func.Parity (Array.copy cases);
        boundary = Func.Dirichlet boundary;
        kind = Func.Pointwise })

let tstencil ctx ~name ~steps ~init ?(boundary = 0.0) defn =
  if steps < 0 then invalid_arg "Dsl.tstencil: negative step count";
  smooth_chain ctx ~name ~steps ~boundary ~first_step:0 ~init defn

let tstencil_from_zero ctx ~name ~steps ~sizes ?(boundary = 0.0) ~first defn =
  if steps < 1 then invalid_arg "Dsl.tstencil_from_zero: steps must be >= 1";
  let step0 =
    Pipeline.add ctx.builder (fun ~id ->
        { Func.id;
          name = Printf.sprintf "%s_t0" name;
          dims = Array.length sizes;
          sizes = Array.copy sizes;
          defn = Func.Def first;
          boundary = Func.Dirichlet boundary;
          kind = Func.Smooth { step = 0; total = steps } })
  in
  smooth_chain ctx ~name ~steps ~boundary ~first_step:1 ~init:step0 defn

(* d-dimensional tensor product of the 1-D full-weighting kernel
   [1; 2; 1]/4, i.e. divided by 4^d overall. *)
let full_weighting dims =
  let base = [| 1.0; 2.0; 1.0 |] in
  match dims with
  | 1 -> Weights.w1 (Array.map (fun a -> a /. 4.0) base)
  | 2 ->
    Weights.w2
      (Array.map (fun a -> Array.map (fun b -> a *. b /. 16.0) base) base)
  | 3 ->
    Weights.w3
      (Array.map
         (fun a ->
           Array.map (fun b -> Array.map (fun c -> a *. b *. c /. 64.0) base)
             base)
         base)
  | _ -> invalid_arg "Dsl.restrict_fn: only ranks 1-3 supported"

let restrict_fn ctx ~name ~input ?weights ?(factor = 1.0) ?(boundary = 0.0) () =
  let dims = input.Func.dims in
  let w = match weights with Some w -> w | None -> full_weighting dims in
  let body =
    stencil_coarse input w
      ?factor:(if factor = 1.0 then None else Some (Expr.const factor))
      ()
  in
  Pipeline.add ctx.builder (fun ~id ->
      { Func.id; name; dims;
        sizes = Array.map Sizeexpr.coarsen input.Func.sizes;
        defn = Func.Def body; boundary = Func.Dirichlet boundary;
        kind = Func.Restriction })

(* Parity case [p] of d-linear interpolation: in each dimension, an even
   output coordinate injects the coarse point x/2; an odd one averages
   (x-1)/2 and (x+1)/2. *)
let interp_case (input : Func.t) ~dims p =
  let dim_choices k =
    if (p lsr k) land 1 = 0 then
      [ ({ Expr.mul = 1; add = 0; den = 2; off = 0 }, 1.0) ]
    else
      [ ({ Expr.mul = 1; add = -1; den = 2; off = 0 }, 0.5);
        ({ Expr.mul = 1; add = 1; den = 2; off = 0 }, 0.5) ]
  in
  let rec combos k =
    if k = dims then [ ([], 1.0) ]
    else
      List.concat_map
        (fun (accs, w) ->
          List.map (fun (a, wk) -> (a :: accs, w *. wk)) (dim_choices k))
        (combos (k + 1))
  in
  let terms =
    List.map
      (fun (accs, w) ->
        let l = Expr.load_at input.Func.id (Array.of_list accs) in
        if w = 1.0 then l else Expr.(const w * l))
      (combos 0)
  in
  sum_terms terms

let interp_fn ctx ~name ~input ?(boundary = 0.0) () =
  let dims = input.Func.dims in
  let cases = Array.init (1 lsl dims) (fun p -> interp_case input ~dims p) in
  Pipeline.add ctx.builder (fun ~id ->
      { Func.id; name; dims;
        sizes = Array.map Sizeexpr.refine input.Func.sizes;
        defn = Func.Parity cases; boundary = Func.Dirichlet boundary;
        kind = Func.Interpolation })

let finish ctx ~outputs = Pipeline.finish ctx.builder ~outputs
