(** Scalar expressions defining a pipeline stage at one grid point.

    A stage's definition is an expression over: constants, runtime scalar
    parameters (e.g. the [1/h²] weight of a level), loop coordinates, and
    loads from producer stages.  Loads use a per-dimension {e scaled affine
    access}: producer index [= (mul·x + add)/den + off] with floor division.
    This form covers every access GMG needs — unit-stride stencil
    neighbourhoods ([mul=den=1]), restriction ([mul=2]: consumer at half
    resolution reads [2x+o]), and interpolation ([den=2]: consumer at double
    resolution reads [(x±1)/2]). *)

type access = { mul : int; add : int; den : int; off : int }
(** Producer index for consumer coordinate [x] is [(mul*x + add)/den + off]
    (floor division; [den] ≥ 1, [mul] ≥ 1). *)

type unop = Neg | Abs | Sqrt

type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Const of float
  | Param of string  (** runtime scalar parameter, bound at plan time *)
  | Coord of int  (** value of loop coordinate in dimension [k], as float *)
  | Load of int * access array  (** [Load (func_id, accesses)], one per dim *)
  | Unop of unop * t
  | Binop of binop * t * t

val id_access : int -> access array
(** Identity access of the given rank: reads the producer at the same point. *)

val shifted_access : int array -> access array
(** Unit-scale access at a constant per-dimension offset. *)

val load : int -> int array -> t
(** [load f offsets] is a unit-scale load of stage [f] at [x + offsets]. *)

val load_at : int -> access array -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val neg : t -> t
val const : float -> t
val param : string -> t

val map_access : producer:access -> consumer:access -> access
(** Composition: if stage B reads stage A with [consumer] access, and A's
    point [y] was itself defined via [producer]-style coordinates, this is
    the access of the composite.  Requires the inner division to be exact
    ([den = 1] on one side), which holds for all GMG compositions used. *)

val loads : t -> (int * access array) list
(** All loads appearing in the expression, with duplicates, in syntactic
    order. *)

val func_ids : t -> int list
(** De-duplicated sorted producer ids referenced by the expression. *)

val subst_func : t -> old_id:int -> new_id:int -> t
(** Redirects every load of [old_id] to [new_id], keeping accesses. *)

val params : t -> string list
(** De-duplicated sorted runtime parameter names. *)

val op_count : t -> int
(** Number of arithmetic operations, a proxy for per-point work. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Pretty-prints with [names] resolving stage ids. *)

val equal : t -> t -> bool
