type t = { num : int; den : int; off : int }

let is_pow2 d = d > 0 && d land (d - 1) = 0

let make ~num ~den ~off =
  if not (is_pow2 den) then
    invalid_arg "Sizeexpr.make: denominator must be a positive power of two";
  if num < 0 then invalid_arg "Sizeexpr.make: negative numerator";
  if num = 0 then { num = 0; den = 1; off }
  else begin
    (* normalize common powers of two out of num/den *)
    let rec reduce num den =
      if num mod 2 = 0 && den mod 2 = 0 then reduce (num / 2) (den / 2)
      else (num, den)
    in
    let num, den = reduce num den in
    { num; den; off }
  end

let const off = { num = 0; den = 1; off }
let n = { num = 1; den = 1; off = 0 }
let n_over d = make ~num:1 ~den:d ~off:0
let add_const t c = { t with off = t.off + c }

let halve t =
  if t.num = 0 then begin
    if t.off mod 2 <> 0 then invalid_arg "Sizeexpr.halve: odd constant";
    const (t.off / 2)
  end
  else begin
    if t.off mod 2 <> 0 then invalid_arg "Sizeexpr.halve: odd offset";
    make ~num:t.num ~den:(t.den * 2) ~off:(t.off / 2)
  end

let double t =
  if t.num = 0 then const (t.off * 2)
  else if t.den > 1 then make ~num:t.num ~den:(t.den / 2) ~off:(t.off * 2)
  else make ~num:(t.num * 2) ~den:1 ~off:(t.off * 2)

let coarsen t =
  if (t.off - 1) mod 2 <> 0 then invalid_arg "Sizeexpr.coarsen: even offset";
  if t.num = 0 then const ((t.off - 1) / 2)
  else make ~num:t.num ~den:(t.den * 2) ~off:((t.off - 1) / 2)

let refine t = add_const (double t) 1

let eval ~n t =
  if t.num <> 0 && n mod t.den <> 0 then
    invalid_arg
      (Printf.sprintf "Sizeexpr.eval: N=%d not divisible by %d" n t.den);
  (t.num * n / t.den) + t.off

let is_const t = t.num = 0
let same_class a b = a.num = b.num && a.den = b.den
let equal a b = a.num = b.num && a.den = b.den && a.off = b.off

let compare a b =
  match Int.compare a.num b.num with
  | 0 -> ( match Int.compare a.den b.den with
           | 0 -> Int.compare a.off b.off
           | c -> c )
  | c -> c

let pp fmt t =
  if t.num = 0 then Format.fprintf fmt "%d" t.off
  else begin
    if t.num = 1 && t.den = 1 then Format.fprintf fmt "N"
    else if t.num = 1 then Format.fprintf fmt "N/%d" t.den
    else Format.fprintf fmt "%d*N/%d" t.num t.den;
    if t.off > 0 then Format.fprintf fmt "+%d" t.off
    else if t.off < 0 then Format.fprintf fmt "%d" t.off
  end

let to_string t = Format.asprintf "%a" pp t
