type t = {
  dims : int;
  extent : int array;
  center : int array;
  entries : (int array * float) list;  (* absolute tensor indices *)
}

let default_center extent = Array.map (fun m -> m / 2) extent

let check_center ~dims ~extent = function
  | None -> default_center extent
  | Some c ->
    if Array.length c <> dims then
      invalid_arg "Weights: centre rank mismatch";
    Array.iteri
      (fun k ck ->
        if ck < 0 || ck >= extent.(k) then
          invalid_arg "Weights: centre outside tensor")
      c;
    Array.copy c

let w1 ?center w =
  let extent = [| Array.length w |] in
  if extent.(0) = 0 then invalid_arg "Weights.w1: empty";
  let entries = ref [] in
  Array.iteri (fun i v -> entries := ([| i |], v) :: !entries) w;
  { dims = 1; extent; center = check_center ~dims:1 ~extent center;
    entries = List.rev !entries }

let w2 ?center w =
  let rows = Array.length w in
  if rows = 0 then invalid_arg "Weights.w2: empty";
  let cols = Array.length w.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Weights.w2: ragged")
    w;
  let extent = [| rows; cols |] in
  let entries = ref [] in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> entries := ([| i; j |], v) :: !entries) row)
    w;
  { dims = 2; extent; center = check_center ~dims:2 ~extent center;
    entries = List.rev !entries }

let w3 ?center w =
  let np = Array.length w in
  if np = 0 then invalid_arg "Weights.w3: empty";
  let nr = Array.length w.(0) in
  let nc = if nr = 0 then invalid_arg "Weights.w3: empty plane"
           else Array.length w.(0).(0) in
  Array.iter
    (fun plane ->
      if Array.length plane <> nr then invalid_arg "Weights.w3: ragged";
      Array.iter
        (fun row -> if Array.length row <> nc then invalid_arg "Weights.w3: ragged")
        plane)
    w;
  let extent = [| np; nr; nc |] in
  let entries = ref [] in
  Array.iteri
    (fun i plane ->
      Array.iteri
        (fun j row ->
          Array.iteri (fun k v -> entries := ([| i; j; k |], v) :: !entries) row)
        plane)
    w;
  { dims = 3; extent; center = check_center ~dims:3 ~extent center;
    entries = List.rev !entries }

let dims t = t.dims
let extent t = Array.copy t.extent
let center t = Array.copy t.center

let terms t =
  List.filter_map
    (fun (idx, v) ->
      if v = 0.0 then None
      else Some (Array.mapi (fun k i -> i - t.center.(k)) idx, v))
    t.entries

let radius t =
  List.fold_left
    (fun acc (off, _) ->
      Array.fold_left (fun a o -> Int.max a (Int.abs o)) acc off)
    0 (terms t)
