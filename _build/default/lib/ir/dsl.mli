(** The PolyMG language surface.

    OCaml-embedded equivalents of the paper's constructs (§2):
    [Grid] → {!grid}, [Function] → {!func}, [Stencil] → {!stencil},
    [TStencil] → {!tstencil}, [Restrict] → {!restrict_fn},
    [Interp] → {!interp_fn}.  A context accumulates stages; {!finish}
    produces the validated feed-forward {!Pipeline.t} for one cycle. *)

type ctx

val create : string -> ctx
(** [create name] starts building a pipeline. *)

val grid :
  ctx -> string -> dims:int -> sizes:Sizeexpr.t array -> Func.t
(** Declares an input grid (caller supplies interior and ghost data). *)

val stencil : Func.t -> Weights.t -> ?factor:Expr.t -> unit -> Expr.t
(** [stencil f w ()] is the weighted sum [Σ w(o)·f(x + o)]; with
    [?factor] the sum is multiplied by it — the paper's
    [Stencil(f, (x,y), [[...]], factor)]. *)

val stencil_coarse : Func.t -> Weights.t -> ?factor:Expr.t -> unit -> Expr.t
(** Like {!stencil} but accessing at [2x + o]: the body of a restriction
    stage reading a grid of double resolution. *)

val func :
  ctx -> name:string -> sizes:Sizeexpr.t array -> ?boundary:float ->
  Expr.t -> Func.t
(** A pointwise [Function] stage. Boundary defaults to Dirichlet 0. *)

val parity_func :
  ctx -> name:string -> sizes:Sizeexpr.t array -> ?boundary:float ->
  Expr.t array -> Func.t
(** A stage defined piecewise on index parity (the [Case]-on-parity idiom,
    used e.g. for red-black colourings): one expression per parity
    combination, [2^dims] cases with bit [k] set iff coordinate [k] is
    odd. *)

val tstencil :
  ctx -> name:string -> steps:int -> init:Func.t -> ?boundary:float ->
  (v:Func.t -> Expr.t) -> Func.t
(** The [TStencil] construct: applies [defn] — which reads the previous
    iterate [v] — for [steps] iterations.  The compiler unrolls it into
    [steps] chained [Smooth] stages (one DAG node each, as counted in
    Table 3); returns the last.  [steps = 0] returns [init] unchanged. *)

val tstencil_from_zero :
  ctx -> name:string -> steps:int -> sizes:Sizeexpr.t array ->
  ?boundary:float -> first:Expr.t -> (v:Func.t -> Expr.t) -> Func.t
(** A [TStencil] whose initial iterate is the implicit all-zero grid
    (Algorithm 1 line 6): the first step is materialized from [first]
    (the smoother body with [v = 0] folded in) and the remaining
    [steps − 1] applications of the body are chained after it.  All
    [steps] stages carry the [Smooth] kind. Requires [steps ≥ 1]. *)

val restrict_fn :
  ctx -> name:string -> input:Func.t -> ?weights:Weights.t ->
  ?factor:float -> ?boundary:float -> unit -> Func.t
(** The [Restrict] construct: a stage of half the resolution of [input]
    (sampling factor 1/2).  Default weights: full weighting, the
    d-dimensional tensor product of [[1;2;1]/4]. *)

val interp_fn :
  ctx -> name:string -> input:Func.t -> ?boundary:float -> unit -> Func.t
(** The [Interp] construct: a stage of double the resolution of [input]
    (sampling factor 2), defined piecewise on index parity as d-linear
    interpolation — even coordinates inject, odd coordinates average the
    two flanking coarse points. *)

val finish : ctx -> outputs:Func.t list -> Pipeline.t
(** Validates and returns the pipeline. *)
