lib/ir/dsl.ml: Array Expr Func List Pipeline Printf Sizeexpr Weights
