lib/ir/sizeexpr.mli: Format
