lib/ir/func.mli: Expr Format Sizeexpr
