lib/ir/dsl.mli: Expr Func Pipeline Sizeexpr Weights
