lib/ir/pipeline.mli: Format Func
