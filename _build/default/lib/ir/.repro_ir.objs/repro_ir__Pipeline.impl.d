lib/ir/pipeline.ml: Array Format Func List String
