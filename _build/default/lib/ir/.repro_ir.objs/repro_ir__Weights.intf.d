lib/ir/weights.mli:
