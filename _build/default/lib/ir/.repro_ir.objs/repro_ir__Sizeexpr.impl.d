lib/ir/sizeexpr.ml: Format Int Printf
