lib/ir/weights.ml: Array Int List
