lib/ir/func.ml: Array Expr Format Int List Printf Sizeexpr String
