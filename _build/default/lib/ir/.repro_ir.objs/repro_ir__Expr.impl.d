lib/ir/expr.ml: Array Format Int List Printf Stdlib String
