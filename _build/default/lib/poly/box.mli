(** Concrete integer boxes (products of inclusive intervals).

    Boxes are the iteration-domain currency of the execution engine: tile
    footprints, demand regions and scratchpad extents are all boxes.  An
    empty box is represented canonically by {!empty}. *)

type t = { lo : int array; hi : int array }

val v : lo:int array -> hi:int array -> t
(** Normalizes to {!empty} if any dimension is reversed. *)

val empty : int -> t
(** The canonical empty box of the given rank. *)

val is_empty : t -> bool

val rank : t -> int

val full : int array -> int array -> t
(** [full lo hi] without copying — caller must not mutate arguments. *)

val of_sizes : int array -> t
(** Interior box [1..n_k] of a grid with per-dim interior sizes. *)

val with_ghost : int array -> t
(** [0..n_k+1]: interior plus one ghost layer. *)

val inter : t -> t -> t

val hull : t -> t -> t
(** Smallest box containing both (the union's bounding box). *)

val contains : t -> t -> bool
(** [contains outer inner]: every point of [inner] is in [outer]. *)

val mem : t -> int array -> bool

val widths : t -> int array
(** Points per dimension ([hi - lo + 1]); all zeros when empty. *)

val points : t -> int

val translate : t -> int array -> t

val map_access : Repro_ir.Expr.access array -> t -> t
(** Image of a box under a scaled-affine access: per dimension [k], the
    producer interval is [[f(lo_k), f(hi_k)]] with
    [f(x) = (mul·x + add)/den + off] (floor), which is exact since [f] is
    monotone in [x]. *)

val map_accesses : Repro_ir.Expr.access array list -> t -> t
(** Hull of {!map_access} over several accesses; empty list gives empty. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
