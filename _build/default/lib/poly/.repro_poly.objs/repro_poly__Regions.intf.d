lib/poly/regions.mli: Box Repro_ir
