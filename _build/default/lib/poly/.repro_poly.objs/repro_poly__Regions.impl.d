lib/poly/regions.ml: Array Box Expr Func Hashtbl Int List Pipeline Repro_ir Result Sizeexpr
