lib/poly/box.ml: Array Format Int List Repro_ir
