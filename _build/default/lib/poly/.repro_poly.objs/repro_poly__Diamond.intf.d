lib/poly/diamond.mli:
