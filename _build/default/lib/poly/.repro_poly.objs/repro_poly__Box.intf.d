lib/poly/box.mli: Format Repro_ir
