lib/poly/diamond.ml: Array Int List
