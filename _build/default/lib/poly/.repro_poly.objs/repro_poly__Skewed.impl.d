lib/poly/skewed.ml: Array Int List
