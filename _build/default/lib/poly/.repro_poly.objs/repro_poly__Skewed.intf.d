lib/poly/skewed.mli:
