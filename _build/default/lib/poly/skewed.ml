type tile = { i : int; j : int }

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let check ~steps ~size ~tau ~sigma =
  if steps < 1 then invalid_arg "Skewed: steps must be >= 1";
  if size < 1 then invalid_arg "Skewed: size must be >= 1";
  if tau < 1 || sigma < 1 then invalid_arg "Skewed: tile sizes must be >= 1"

(* Tile (i,j): iτ <= t < (i+1)τ and jσ <= x+t < (j+1)σ. *)
let iter_tile ~steps ~size ~tau ~sigma { i; j } ~f =
  check ~steps ~size ~tau ~sigma;
  let tlo = Int.max 1 (i * tau) and thi = Int.min steps (((i + 1) * tau) - 1) in
  for t = tlo to thi do
    let xlo = Int.max 1 ((j * sigma) - t) in
    let xhi = Int.min size ((((j + 1) * sigma) - 1) - t) in
    if xlo <= xhi then f ~t ~xlo ~xhi
  done

let tile_points ~steps ~size ~tau ~sigma tile =
  let n = ref 0 in
  iter_tile ~steps ~size ~tau ~sigma tile ~f:(fun ~t:_ ~xlo ~xhi ->
      n := !n + (xhi - xlo + 1));
  !n

let wavefronts ~steps ~size ~tau ~sigma =
  check ~steps ~size ~tau ~sigma;
  let imin = fdiv 1 tau and imax = fdiv steps tau in
  let jmin = fdiv 2 sigma and jmax = fdiv (steps + size) sigma in
  let fronts = ref [] in
  for w = imin + jmin to imax + jmax do
    let tiles = ref [] in
    for i = Int.max imin (w - jmax) to Int.min imax (w - jmin) do
      let tile = { i; j = w - i } in
      if tile_points ~steps ~size ~tau ~sigma tile > 0 then
        tiles := tile :: !tiles
    done;
    if !tiles <> [] then fronts := Array.of_list (List.rev !tiles) :: !fronts
  done;
  Array.of_list (List.rev !fronts)

type profile = {
  fronts : int;
  max_width : int;
  avg_width : float;
  startup_fronts : int;
}

let concurrency schedule =
  let fronts = Array.length schedule in
  if fronts = 0 then
    { fronts = 0; max_width = 0; avg_width = 0.0; startup_fronts = 0 }
  else begin
    let widths = Array.map Array.length schedule in
    let max_width = Array.fold_left Int.max 0 widths in
    let total = Array.fold_left ( + ) 0 widths in
    let startup_fronts =
      Array.fold_left (fun acc w -> if w < max_width then acc + 1 else acc) 0
        widths
    in
    { fronts;
      max_width;
      avg_width = float_of_int total /. float_of_int fronts;
      startup_fronts }
  end
