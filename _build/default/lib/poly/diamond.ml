type tile = { i : int; j : int }

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let check ~steps ~size ~sigma =
  if steps < 1 then invalid_arg "Diamond: steps must be >= 1";
  if size < 1 then invalid_arg "Diamond: size must be >= 1";
  if sigma < 1 then invalid_arg "Diamond: sigma must be >= 1"

(* Rows of tile (i,j): t such that some x in [1..size] satisfies
   iσ <= t+x < (i+1)σ and jσ <= t-x < (j+1)σ. *)
let row_range ~size ~sigma { i; j } t =
  let xlo =
    Int.max 1 (Int.max ((i * sigma) - t) (t - (((j + 1) * sigma) - 1)))
  in
  let xhi =
    Int.min size (Int.min ((((i + 1) * sigma) - 1) - t) (t - (j * sigma)))
  in
  (xlo, xhi)

let cdiv a b = -fdiv (-a) b

let t_range ~steps ~sigma { i; j } =
  (* 2t = u + v with u in [iσ, (i+1)σ-1], v in [jσ, (j+1)σ-1] *)
  let tlo = Int.max 1 (cdiv ((i + j) * sigma) 2) in
  let thi = Int.min steps (fdiv (((i + j + 2) * sigma) - 2) 2) in
  (tlo, thi)

let iter_tile ~steps ~size ~sigma tile ~f =
  check ~steps ~size ~sigma;
  let tlo, thi = t_range ~steps ~sigma tile in
  for t = tlo to thi do
    let xlo, xhi = row_range ~size ~sigma tile t in
    if xlo <= xhi then f ~t ~xlo ~xhi
  done

let tile_points ~steps ~size ~sigma tile =
  let n = ref 0 in
  iter_tile ~steps ~size ~sigma tile ~f:(fun ~t:_ ~xlo ~xhi ->
      n := !n + (xhi - xlo + 1));
  !n

let wavefronts ~steps ~size ~sigma =
  check ~steps ~size ~sigma;
  let imin = fdiv 2 sigma and imax = fdiv (steps + size) sigma in
  let jmin = fdiv (1 - size) sigma and jmax = fdiv (steps - 1) sigma in
  let fronts = ref [] in
  for w = imin + jmin to imax + jmax do
    let tiles = ref [] in
    for i = Int.max imin (w - jmax) to Int.min imax (w - jmin) do
      let tile = { i; j = w - i } in
      if tile_points ~steps ~size ~sigma tile > 0 then tiles := tile :: !tiles
    done;
    if !tiles <> [] then fronts := Array.of_list (List.rev !tiles) :: !fronts
  done;
  Array.of_list (List.rev !fronts)
