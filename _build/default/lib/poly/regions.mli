(** Overlapped-tile geometry for a fused group of stages.

    A group is tiled over the interior domain of its {e reference} stage
    (the last member in topological order).  Every member has a per-dim
    scale level relative to the reference ([rel > 0] ⇒ finer, each unit is
    one multigrid level).  For a given output tile this module computes:

    - the member's {e own slice}: the part of its domain this tile is
      responsible for writing (slices of all tiles partition the domain
      exactly, via boundary maps that respect vertex-centred coarsening);
    - the member's {e demand region}: own slice (live-outs only) hulled
      with everything in-group consumers need, clamped to the member's
      domain-plus-ghost box.  This is precisely the hyper-trapezoidal
      overlapped tile of the paper (§3.1): demand grows symmetrically by
      the stencil radius per producer step. *)

type member = {
  func : Repro_ir.Func.t;
  sizes : int array;  (** concrete interior sizes at problem size [n] *)
  rel : int array;  (** per-dim scale level relative to the reference *)
  liveout : bool;
}

type t

val build :
  Repro_ir.Pipeline.t -> n:int -> members:int list -> liveouts:int list ->
  (t, string) result
(** Validates that the member set is closed enough to tile: every member's
    size chain matches the reference through [coarsen]/[refine], and all
    non-reference consumers of a member inside the group are members. *)

val members : t -> member array
(** In topological (= execution) order. *)

val reference : t -> member

val rel_of : t -> int -> int array
(** Scale level of a member by func id. *)

val own_slice : t -> int -> tile:Box.t -> Box.t
(** [own_slice t id ~tile] is the slice of member [id]'s interior that
    [tile] (a box over the reference interior) is responsible for. *)

val demand : t -> tile:Box.t -> (int * Box.t) array
(** Demand region per member id, in execution order.  Members whose region
    is empty for this tile are included with an empty box. *)

val tiles : t -> tile_sizes:int array -> Box.t array
(** Partition of the reference interior into tiles of the given sizes
    (border tiles truncated), in row-major order. *)

val scratch_extents : t -> tile_sizes:int array -> (int * int array) list
(** Per member id: the maximum demand-region widths over all tiles — the
    compile-time-constant scratchpad sizes of §3.2. *)

val redundancy : t -> tile_sizes:int array -> float
(** (points computed across all tiles and members) / (points of all member
    domains) − 1: the fraction of redundant recomputation that overlapped
    tiling pays for this group at these tile sizes. *)
