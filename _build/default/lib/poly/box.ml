type t = { lo : int array; hi : int array }

let rank t = Array.length t.lo

let is_empty t =
  let e = ref false in
  for k = 0 to rank t - 1 do
    if t.hi.(k) < t.lo.(k) then e := true
  done;
  !e

let empty rank = { lo = Array.make rank 0; hi = Array.make rank (-1) }

let v ~lo ~hi =
  if Array.length lo <> Array.length hi then invalid_arg "Box.v: rank mismatch";
  let b = { lo = Array.copy lo; hi = Array.copy hi } in
  if is_empty b then empty (Array.length lo) else b

let full lo hi = { lo; hi }

let of_sizes sizes =
  { lo = Array.map (fun _ -> 1) sizes; hi = Array.copy sizes }

let with_ghost sizes =
  { lo = Array.map (fun _ -> 0) sizes; hi = Array.map (fun n -> n + 1) sizes }

let inter a b =
  if rank a <> rank b then invalid_arg "Box.inter: rank mismatch";
  let d = rank a in
  let b' =
    { lo = Array.init d (fun k -> Int.max a.lo.(k) b.lo.(k));
      hi = Array.init d (fun k -> Int.min a.hi.(k) b.hi.(k)) }
  in
  if is_empty b' then empty d else b'

let hull a b =
  if rank a <> rank b then invalid_arg "Box.hull: rank mismatch";
  if is_empty a then b
  else if is_empty b then a
  else
    { lo = Array.init (rank a) (fun k -> Int.min a.lo.(k) b.lo.(k));
      hi = Array.init (rank a) (fun k -> Int.max a.hi.(k) b.hi.(k)) }

let contains outer inner =
  is_empty inner
  || (let ok = ref true in
      for k = 0 to rank outer - 1 do
        if inner.lo.(k) < outer.lo.(k) || inner.hi.(k) > outer.hi.(k) then
          ok := false
      done;
      !ok)

let mem t idx =
  let ok = ref (not (is_empty t)) in
  for k = 0 to rank t - 1 do
    if idx.(k) < t.lo.(k) || idx.(k) > t.hi.(k) then ok := false
  done;
  !ok

let widths t =
  if is_empty t then Array.make (rank t) 0
  else Array.init (rank t) (fun k -> t.hi.(k) - t.lo.(k) + 1)

let points t = Array.fold_left ( * ) 1 (widths t)

let translate t d =
  if is_empty t then t
  else
    { lo = Array.mapi (fun k x -> x + d.(k)) t.lo;
      hi = Array.mapi (fun k x -> x + d.(k)) t.hi }

(* Floor division toward negative infinity: accesses can produce negative
   coordinates at domain edges before clamping. *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let apply (a : Repro_ir.Expr.access) x =
  fdiv ((a.mul * x) + a.add) a.den + a.off

let map_access accs t =
  if is_empty t then empty (rank t)
  else begin
    if Array.length accs <> rank t then
      invalid_arg "Box.map_access: rank mismatch";
    { lo = Array.mapi (fun k x -> apply accs.(k) x) t.lo;
      hi = Array.mapi (fun k x -> apply accs.(k) x) t.hi }
  end

let map_accesses accs_list t =
  List.fold_left
    (fun acc accs -> hull acc (map_access accs t))
    (empty (rank t)) accs_list

let equal a b =
  (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let pp fmt t =
  if is_empty t then Format.pp_print_string fmt "[empty]"
  else begin
    Format.pp_print_string fmt "[";
    for k = 0 to rank t - 1 do
      if k > 0 then Format.pp_print_string fmt ", ";
      Format.fprintf fmt "%d..%d" t.lo.(k) t.hi.(k)
    done;
    Format.pp_print_string fmt "]"
  end

let to_string t = Format.asprintf "%a" pp t
