open Repro_ir

type member = {
  func : Func.t;
  sizes : int array;
  rel : int array;
  liveout : bool;
}

type t = {
  pipeline : Pipeline.t;
  members : member array;  (* ascending id = topological order *)
  pos : (int, int) Hashtbl.t;  (* func id -> index in members *)
  (* in-group consumer edges: for each member position, the list of
     (consumer position, accesses) pairs *)
  in_edges : (int * Expr.access array list) list array;
}

let members t = t.members
let reference t = t.members.(Array.length t.members - 1)

let rel_of t id =
  match Hashtbl.find_opt t.pos id with
  | Some p -> t.members.(p).rel
  | None -> invalid_arg "Regions.rel_of: not a member"

(* log2 of a positive power of two *)
let log2 d =
  let rec go acc d = if d = 1 then acc else go (acc + 1) (d / 2) in
  go 0 d

let ( let* ) r f = Result.bind r f

let rel_levels ~(reference : Func.t) (f : Func.t) =
  let d = f.Func.dims in
  let rel = Array.make d 0 in
  let rec check k =
    if k = d then Ok rel
    else
      let sr = reference.Func.sizes.(k) and sf = f.Func.sizes.(k) in
      let open Sizeexpr in
      if is_const sr <> is_const sf then
        Error (f.Func.name ^ ": size not scalable against group reference")
      else if is_const sr then
        if equal sr sf then check (k + 1)
        else Error (f.Func.name ^ ": constant size differs from reference")
      else begin
        rel.(k) <- log2 sr.den - log2 sf.den;
        (* validate the whole coarsen/refine chain matches *)
        let rec chain s steps =
          if steps = 0 then s
          else if steps > 0 then chain (refine s) (steps - 1)
          else chain (coarsen s) (steps + 1)
        in
        match chain sr rel.(k) with
        | s when equal s sf -> check (k + 1)
        | _ -> Error (f.Func.name ^ ": size chain does not match reference")
        | exception Invalid_argument _ ->
          Error (f.Func.name ^ ": size chain does not match reference")
      end
  in
  check 0

let build pipeline ~n ~members:ids ~liveouts =
  match List.sort_uniq Int.compare ids with
  | [] -> Error "Regions.build: empty group"
  | sorted ->
    let fs = List.map (Pipeline.func pipeline) sorted in
    let refr = List.nth fs (List.length fs - 1) in
    if Func.is_input refr then Error "Regions.build: reference is an input"
    else begin
      let* ms =
        List.fold_left
          (fun acc f ->
            let* acc = acc in
            if Func.is_input f then
              Error (f.Func.name ^ ": inputs cannot be group members")
            else if f.Func.dims <> refr.Func.dims then
              Error (f.Func.name ^ ": rank differs from reference")
            else
              let* rel = rel_levels ~reference:refr f in
              let sizes =
                Array.map (fun s -> Sizeexpr.eval ~n s) f.Func.sizes
              in
              Array.iter
                (fun s ->
                  if s < 1 then invalid_arg "Regions.build: empty domain")
                sizes;
              Ok
                ({ func = f; sizes; rel;
                   liveout = List.mem f.Func.id liveouts }
                 :: acc))
          (Ok []) fs
      in
      let members = Array.of_list (List.rev ms) in
      let pos = Hashtbl.create 16 in
      Array.iteri (fun i m -> Hashtbl.replace pos m.func.Func.id i) members;
      let in_edges = Array.make (Array.length members) [] in
      Array.iteri
        (fun ci cm ->
          List.iter
            (fun pid ->
              match Hashtbl.find_opt pos pid with
              | None -> ()  (* producer outside the group: a live-in *)
              | Some pi ->
                let accs = Func.accesses_to cm.func pid in
                in_edges.(pi) <- (ci, accs) :: in_edges.(pi))
            (Func.producers cm.func))
        members;
      let t = { pipeline; members; pos; in_edges } in
      (* the last member must be the reference used for rel levels *)
      ignore (reference t);
      Ok t
    end

(* Boundary maps between resolution levels, acting on boundary coordinates
   x in [0 .. size]: refining maps x to 2x except the top boundary which
   maps to the refined size; coarsening is floor halving. *)
let map_boundary ~ref_size ~rel x =
  if rel = 0 then x
  else if rel > 0 then begin
    let x = ref x and sz = ref ref_size in
    for _ = 1 to rel do
      x := (if !x = !sz then (2 * !sz) + 1 else 2 * !x);
      sz := (2 * !sz) + 1
    done;
    !x
  end
  else begin
    let x = ref x in
    for _ = 1 to -rel do
      x := !x / 2
    done;
    !x
  end

let own_slice t id ~tile =
  match Hashtbl.find_opt t.pos id with
  | None -> invalid_arg "Regions.own_slice: not a member"
  | Some p ->
    let m = t.members.(p) in
    let r = reference t in
    if Box.is_empty tile then Box.empty (Array.length m.sizes)
    else
      let d = Array.length m.sizes in
      let lo = Array.make d 0 and hi = Array.make d 0 in
      for k = 0 to d - 1 do
        let g x = map_boundary ~ref_size:r.sizes.(k) ~rel:m.rel.(k) x in
        lo.(k) <- g (tile.Box.lo.(k) - 1) + 1;
        hi.(k) <- g tile.Box.hi.(k)
      done;
      Box.v ~lo ~hi

let demand t ~tile =
  let nm = Array.length t.members in
  let req = Array.make nm (Box.empty 0) in
  (* reverse execution order: consumers before producers *)
  for p = nm - 1 downto 0 do
    let m = t.members.(p) in
    let base =
      if m.liveout || p = nm - 1 then own_slice t m.func.Func.id ~tile
      else Box.empty (Array.length m.sizes)
    in
    let with_consumers =
      List.fold_left
        (fun acc (ci, accs) -> Box.hull acc (Box.map_accesses accs req.(ci)))
        base t.in_edges.(p)
    in
    req.(p) <- Box.inter with_consumers (Box.with_ghost m.sizes)
  done;
  Array.mapi (fun p b -> (t.members.(p).func.Func.id, b)) req

let tiles t ~tile_sizes =
  let r = reference t in
  let d = Array.length r.sizes in
  if Array.length tile_sizes <> d then
    invalid_arg "Regions.tiles: rank mismatch";
  Array.iter
    (fun ts -> if ts < 1 then invalid_arg "Regions.tiles: tile size < 1")
    tile_sizes;
  let counts =
    Array.init d (fun k -> (r.sizes.(k) + tile_sizes.(k) - 1) / tile_sizes.(k))
  in
  let total = Array.fold_left ( * ) 1 counts in
  Array.init total (fun flat ->
      let idx = Array.make d 0 in
      let rem = ref flat in
      for k = d - 1 downto 0 do
        idx.(k) <- !rem mod counts.(k);
        rem := !rem / counts.(k)
      done;
      let lo = Array.init d (fun k -> 1 + (idx.(k) * tile_sizes.(k))) in
      let hi =
        Array.init d (fun k ->
            Int.min r.sizes.(k) ((idx.(k) + 1) * tile_sizes.(k)))
      in
      Box.full lo hi)

let scratch_extents t ~tile_sizes =
  let all = tiles t ~tile_sizes in
  let nm = Array.length t.members in
  let ext = Array.make nm [||] in
  Array.iter
    (fun tile ->
      let req = demand t ~tile in
      Array.iteri
        (fun p (_, b) ->
          let w = Box.widths b in
          if ext.(p) = [||] then ext.(p) <- w
          else ext.(p) <- Array.mapi (fun k e -> Int.max e w.(k)) ext.(p))
        req)
    all;
  Array.to_list
    (Array.mapi (fun p e -> (t.members.(p).func.Func.id, e)) ext)

let redundancy t ~tile_sizes =
  let all = tiles t ~tile_sizes in
  let computed = ref 0 in
  Array.iter
    (fun tile ->
      Array.iter (fun (_, b) -> computed := !computed + Box.points b)
        (demand t ~tile))
    all;
  let domain =
    Array.fold_left
      (fun acc m -> acc + Box.points (Box.of_sizes m.sizes))
      0 t.members
  in
  (float_of_int !computed /. float_of_int domain) -. 1.0
