(** Diamond tiling of time-iterated stencils (Pluto-style, §3.1 / Fig. 5).

    For a smoother applying [steps] Jacobi iterations over a spatial domain,
    the (time × outermost-space) plane is tiled with σ×σ squares in the
    rotated coordinates [u = t + x], [v = t − x] — diamonds in (t, x).
    Dependences of radius-1, step-1 stencils never increase either tile
    coordinate, so tiles on a wavefront of constant [i + j] are mutually
    independent: the schedule has concurrent start and no redundant
    computation, at the cost of one synchronization per wavefront.  Inner
    spatial dimensions are iterated in full (rectangularly) per point row.

    Execution uses two modulo buffers (time [t] writes buffer [t mod 2]),
    which is race-free under this schedule. *)

type tile = { i : int; j : int }

val wavefronts : steps:int -> size:int -> sigma:int -> tile array array
(** All non-empty tiles for [t ∈ 1..steps], [x ∈ 1..size], grouped by
    wavefront in execution order.  Tiles within one inner array may run
    concurrently.  [sigma] ≥ 1 is the tile edge in rotated coordinates. *)

val iter_tile :
  steps:int -> size:int -> sigma:int -> tile ->
  f:(t:int -> xlo:int -> xhi:int -> unit) -> unit
(** Enumerates the rows of a tile in increasing [t]; [f] receives the
    inclusive [x] range to sweep at that time step (empty rows skipped). *)

val tile_points : steps:int -> size:int -> sigma:int -> tile -> int
(** Number of (t, x) points in the tile. *)
