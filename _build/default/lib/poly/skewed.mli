(** Time-skewed (parallelogram) tiling of time-iterated stencils — the
    wavefront method of Williams et al. / Basu et al. that §5 of the paper
    contrasts with overlapped and diamond tiling.

    The (time × outermost-space) plane is tiled with τ×σ rectangles in the
    skewed coordinates [u = t], [v = x + t]; dependences of radius-1,
    step-1 stencils never increase either tile coordinate, so wavefronts
    of constant [i + j] are valid — but unlike diamond tiling the first
    wavefronts contain only a few tiles: the schedule pays a {e pipelined
    startup and drain}, which {!concurrency} quantifies. *)

type tile = { i : int; j : int }

val wavefronts : steps:int -> size:int -> tau:int -> sigma:int -> tile array array
(** All non-empty tiles for [t ∈ 1..steps], [x ∈ 1..size], grouped by
    wavefront in execution order; tiles within one wavefront are mutually
    independent. *)

val iter_tile :
  steps:int -> size:int -> tau:int -> sigma:int -> tile ->
  f:(t:int -> xlo:int -> xhi:int -> unit) -> unit
(** Enumerates tile rows in increasing [t] (empty rows skipped). *)

val tile_points : steps:int -> size:int -> tau:int -> sigma:int -> tile -> int

type profile = {
  fronts : int;  (** number of wavefronts (synchronization points) *)
  max_width : int;  (** maximum tiles in any wavefront *)
  avg_width : float;  (** mean tiles per wavefront *)
  startup_fronts : int;  (** wavefronts narrower than [max_width] *)
}

val concurrency : 'a array array -> profile
(** Schedule concurrency statistics — the quantity behind "wavefronting
    suffers from pipelined startup and drain phases" (§5).  Applies to
    any wavefront schedule (this module's or {!Diamond}'s). *)
