lib/grid/norms.mli: Grid
