lib/grid/grid.ml: Array Buf
