lib/grid/buf.mli: Bigarray
