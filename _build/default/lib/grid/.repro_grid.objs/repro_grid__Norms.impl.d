lib/grid/norms.ml: Float Grid
