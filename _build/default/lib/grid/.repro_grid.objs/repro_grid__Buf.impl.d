lib/grid/buf.ml: Array Bigarray Float
