lib/grid/grid.mli: Buf
