type t = {
  extents : int array;
  strides : int array;
  buf : Buf.t;
}

let strides_of extents =
  let d = Array.length extents in
  let strides = Array.make d 1 in
  for k = d - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * extents.(k + 1)
  done;
  strides

let create extents =
  if Array.length extents = 0 then invalid_arg "Grid.create: no dimensions";
  Array.iter
    (fun e -> if e <= 0 then invalid_arg "Grid.create: non-positive extent")
    extents;
  let extents = Array.copy extents in
  let strides = strides_of extents in
  let len = Array.fold_left ( * ) 1 extents in
  { extents; strides; buf = Buf.create len }

let interior ~dims n =
  if n <= 0 then invalid_arg "Grid.interior: non-positive size";
  create (Array.make dims (n + 2))

let dims t = Array.length t.extents
let extents t = Array.copy t.extents
let interior_size t = t.extents.(0) - 2

let offset t idx =
  let d = Array.length t.extents in
  if Array.length idx <> d then invalid_arg "Grid.offset: rank mismatch";
  let off = ref 0 in
  for k = 0 to d - 1 do
    if idx.(k) < 0 || idx.(k) >= t.extents.(k) then
      invalid_arg "Grid.offset: index out of bounds";
    off := !off + (idx.(k) * t.strides.(k))
  done;
  !off

let get t idx = Buf.unsafe_get t.buf (offset t idx)
let set t idx v = Buf.unsafe_set t.buf (offset t idx) v

let get2 t i j = Buf.get t.buf ((i * t.strides.(0)) + j)
let set2 t i j v = Buf.set t.buf ((i * t.strides.(0)) + j) v

let get3 t i j k =
  Buf.get t.buf ((i * t.strides.(0)) + (j * t.strides.(1)) + k)

let set3 t i j k v =
  Buf.set t.buf ((i * t.strides.(0)) + (j * t.strides.(1)) + k) v

let fill t v = Buf.fill t.buf v

let copy t =
  { extents = Array.copy t.extents;
    strides = Array.copy t.strides;
    buf = Buf.copy t.buf }

let blit ~src ~dst =
  if src.extents <> dst.extents then invalid_arg "Grid.blit: extent mismatch";
  Buf.blit ~src:src.buf ~dst:dst.buf

(* Iterate a rectangular index box [lo.(k) .. hi.(k)] inclusive, calling [f]
   with a reused index array. *)
let iter_box ~lo ~hi f =
  let d = Array.length lo in
  let idx = Array.copy lo in
  let rec go k =
    if k = d then f idx
    else
      for v = lo.(k) to hi.(k) do
        idx.(k) <- v;
        go (k + 1)
      done
  in
  let nonempty = ref true in
  for k = 0 to d - 1 do
    if hi.(k) < lo.(k) then nonempty := false
  done;
  if !nonempty then go 0

let fill_interior t ~f =
  let d = dims t in
  let lo = Array.make d 1 in
  let hi = Array.init d (fun k -> t.extents.(k) - 2) in
  iter_box ~lo ~hi (fun idx -> set t idx (f idx))

let fill_all t ~f =
  let d = dims t in
  let lo = Array.make d 0 in
  let hi = Array.init d (fun k -> t.extents.(k) - 1) in
  iter_box ~lo ~hi (fun idx -> set t idx (f idx))

let iter_interior t ~f =
  let d = dims t in
  let lo = Array.make d 1 in
  let hi = Array.init d (fun k -> t.extents.(k) - 2) in
  iter_box ~lo ~hi (fun idx -> f idx (get t idx))

let max_abs_diff a b =
  if a.extents <> b.extents then
    invalid_arg "Grid.max_abs_diff: extent mismatch";
  Buf.max_abs_diff a.buf b.buf

let points t = Array.fold_left ( * ) 1 t.extents
