(** Multi-dimensional grids over {!Buf} storage.

    A grid is a dense row-major n-dimensional array of doubles.  Multigrid
    grids carry one ghost/boundary cell on each side of every dimension:
    a grid created with [interior n] for a 2-D problem of interior size
    [n × n] has extents [(n+2) × (n+2)], with the interior occupying index
    range [1..n] in each dimension. *)

type t = {
  extents : int array;  (** total points per dimension, ghosts included *)
  strides : int array;  (** row-major strides; last dimension has stride 1 *)
  buf : Buf.t;
}

val create : int array -> t
(** [create extents] makes a zero-filled grid with the given total extents. *)

val interior : dims:int -> int -> t
(** [interior ~dims n] creates a grid of [dims] dimensions with interior
    size [n] per dimension plus one ghost layer on each side. *)

val dims : t -> int

val extents : t -> int array

val interior_size : t -> int
(** Interior points per dimension assuming one ghost layer each side. *)

val offset : t -> int array -> int
(** Row-major linear offset of a multi-index. *)

val get : t -> int array -> float

val set : t -> int array -> float -> unit

val get2 : t -> int -> int -> float
(** 2-D fast path; grid must be 2-D. Unchecked beyond buffer bounds. *)

val set2 : t -> int -> int -> float -> unit

val get3 : t -> int -> int -> int -> float

val set3 : t -> int -> int -> int -> float -> unit

val fill : t -> float -> unit

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Copies the whole grid; extents must match. *)

val fill_interior : t -> f:(int array -> float) -> unit
(** Evaluates [f] at every interior multi-index (1-based, ghosts excluded)
    and stores the result there.  Ghost cells are left untouched. *)

val fill_all : t -> f:(int array -> float) -> unit
(** Like {!fill_interior} but covers ghost cells too (0-based indices). *)

val iter_interior : t -> f:(int array -> float -> unit) -> unit

val max_abs_diff : t -> t -> float
(** Largest absolute pointwise difference over the whole grid. *)

val points : t -> int
(** Total number of points, ghosts included. *)
