(** Norms and error measures over grid interiors.

    All norms range over interior points only (ghost layers excluded), which
    is the convention used for multigrid residual reporting. *)

val l2 : Grid.t -> float
(** Discrete L2 norm: sqrt of the mean of squares over interior points
    (the NAS MG convention, [sqrt (sum x² / npoints)]). *)

val linf : Grid.t -> float
(** Max absolute value over interior points. *)

val l2_diff : Grid.t -> Grid.t -> float
(** L2 norm of the pointwise difference of two same-shaped grids. *)

val linf_diff : Grid.t -> Grid.t -> float
