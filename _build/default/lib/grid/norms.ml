let interior_fold g ~init ~f =
  let acc = ref init in
  let n = ref 0 in
  Grid.iter_interior g ~f:(fun _ v ->
      acc := f !acc v;
      incr n);
  (!acc, !n)

let l2 g =
  let sum, n = interior_fold g ~init:0.0 ~f:(fun a v -> a +. (v *. v)) in
  if n = 0 then 0.0 else sqrt (sum /. float_of_int n)

let linf g =
  let m, _ = interior_fold g ~init:0.0 ~f:(fun a v -> Float.max a (Float.abs v)) in
  m

let check_same a b =
  if Grid.extents a <> Grid.extents b then
    invalid_arg "Norms: grid extent mismatch"

let l2_diff a b =
  check_same a b;
  let sum = ref 0.0 and n = ref 0 in
  Grid.iter_interior a ~f:(fun idx va ->
      let d = va -. Grid.get b idx in
      sum := !sum +. (d *. d);
      incr n);
  if !n = 0 then 0.0 else sqrt (!sum /. float_of_int !n)

let linf_diff a b =
  check_same a b;
  let m = ref 0.0 in
  Grid.iter_interior a ~f:(fun idx va ->
      let d = Float.abs (va -. Grid.get b idx) in
      if d > !m then m := d);
  !m
