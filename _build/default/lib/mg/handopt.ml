module Buf = Repro_grid.Buf
module Grid = Repro_grid.Grid
module Parallel = Repro_runtime.Parallel
module Diamond = Repro_poly.Diamond
module K = Kernels

type smoothing = Plain | Pluto of { sigma : int }

(* dimension-dispatched kernel table *)
type ops = {
  jacobi :
    n:int -> w:float -> invhsq:float -> src:K.buf -> frhs:K.buf ->
    dst:K.buf -> rlo:int -> rhi:int -> unit;
  scalef : n:int -> w:float -> frhs:K.buf -> dst:K.buf -> rlo:int -> rhi:int -> unit;
  resid :
    n:int -> invhsq:float -> v:K.buf -> frhs:K.buf -> dst:K.buf ->
    rlo:int -> rhi:int -> unit;
  restr : nc:int -> fine:K.buf -> dst:K.buf -> rlo:int -> rhi:int -> unit;
  interp_correct : nc:int -> coarse:K.buf -> v:K.buf -> rlo:int -> rhi:int -> unit;
  copy : n:int -> src:K.buf -> dst:K.buf -> rlo:int -> rhi:int -> unit;
}

let ops2 =
  { jacobi = K.jacobi2d;
    scalef = K.scalef2d;
    resid = K.resid2d;
    restr = K.restrict2d;
    interp_correct = K.interp_correct2d;
    copy = K.copy2d }

let ops3 =
  { jacobi = K.jacobi3d;
    scalef = K.scalef3d;
    resid = K.resid3d;
    restr = K.restrict3d;
    interp_correct = K.interp_correct3d;
    copy = K.copy3d }

type level = {
  ln : int;  (* interior size *)
  invhsq : float;
  w : float;
  ebuf : K.buf;  (* iterate buffer (unused at the finest level) *)
  tmp : K.buf;  (* the second modulo buffer *)
  frhs : K.buf;  (* level rhs (unused at the finest level) *)
}

type t = {
  cfg : Cycle.config;
  n : int;
  par : Parallel.t;
  smoothing : smoothing;
  ops : ops;
  levels : level array;  (* index 0 = coarsest *)
}

let create cfg ~n ~par ?(smoothing = Plain) () =
  (match cfg.Cycle.shape with
   | Cycle.V | Cycle.W -> ()
   | Cycle.F -> invalid_arg "Handopt.create: F-cycles not supported");
  let nlev = cfg.Cycle.levels in
  if n mod (1 lsl (nlev - 1)) <> 0 then
    invalid_arg "Handopt.create: N must be divisible by 2^(levels-1)";
  let dims = cfg.Cycle.dims in
  let levels =
    Array.init nlev (fun l ->
        let nl = (n / (1 lsl (nlev - 1 - l))) - 1 in
        let len = int_of_float (float_of_int (nl + 2) ** float_of_int dims) in
        let invhsq = float_of_int ((nl + 1) * (nl + 1)) in
        { ln = nl;
          invhsq;
          w = cfg.Cycle.omega /. (float_of_int (2 * dims) *. invhsq);
          ebuf = (Buf.create len).Buf.data;
          tmp = (Buf.create len).Buf.data;
          frhs = (Buf.create len).Buf.data })
  in
  { cfg; n; par;
    smoothing;
    ops = (if dims = 2 then ops2 else ops3);
    levels }

(* initial iterate for a smoothing phase *)
type init = Zero | From of K.buf

(* Modulo-buffer mapping: pick which of [a]/[b] holds iterate [t] such
   that (i) iterate 1 is not written into the buffer being read as the
   initial iterate, and (ii) when the initial iterate is external or
   zero, the final iterate lands in [a]. *)
let buffer_map ~steps ~init ~(a : K.buf) ~(b : K.buf) =
  match init with
  | From src when src == a -> fun t -> if t land 1 = 1 then b else a
  | From src when src == b -> fun t -> if t land 1 = 1 then a else b
  | From _ | Zero -> fun t -> if (steps - t) land 1 = 0 then a else b

let smooth t ~(lev : level) ~steps ~init ~(a : K.buf) ~(b : K.buf) : K.buf =
  let o = t.ops in
  let n = lev.ln in
  if steps = 0 then begin
    match init with
    | From src when src == a || src == b -> src
    | From src ->
      Parallel.parallel_for t.par ~lo:1 ~hi:n (fun i ->
          o.copy ~n ~src ~dst:a ~rlo:i ~rhi:i);
      a
    | Zero ->
      Parallel.parallel_for t.par ~lo:1 ~hi:n (fun i ->
          o.scalef ~n ~w:0.0 ~frhs:lev.frhs ~dst:a ~rlo:i ~rhi:i);
      a
  end
  else begin
    let buf_of = buffer_map ~steps ~init ~a ~b in
    let apply ~tstep ~rlo ~rhi =
      let dst = buf_of tstep in
      if tstep = 1 then
        match init with
        | Zero -> o.scalef ~n ~w:lev.w ~frhs:lev.frhs ~dst ~rlo ~rhi
        | From src ->
          o.jacobi ~n ~w:lev.w ~invhsq:lev.invhsq ~src ~frhs:lev.frhs ~dst
            ~rlo ~rhi
      else
        o.jacobi ~n ~w:lev.w ~invhsq:lev.invhsq ~src:(buf_of (tstep - 1))
          ~frhs:lev.frhs ~dst ~rlo ~rhi
    in
    (match t.smoothing with
     | Plain ->
       for tstep = 1 to steps do
         Parallel.parallel_for t.par ~lo:1 ~hi:n (fun i ->
             apply ~tstep ~rlo:i ~rhi:i)
       done
     | Pluto { sigma } ->
       let fronts = Diamond.wavefronts ~steps ~size:n ~sigma in
       Array.iter
         (fun front ->
           Parallel.parallel_for t.par ~lo:0 ~hi:(Array.length front - 1)
             (fun fi ->
               Diamond.iter_tile ~steps ~size:n ~sigma front.(fi)
                 ~f:(fun ~t:tstep ~xlo ~xhi ->
                   apply ~tstep ~rlo:xlo ~rhi:xhi)))
         fronts);
    buf_of steps
  end

(* [smooth] at the finest level reads the rhs from [lev.frhs]; the finest
   level instead uses the caller's grid, so levels carry a mutable
   override via this record-free trick: we temporarily substitute frhs. *)

let rec go t ~level ~init ~(a : K.buf) ~(b : K.buf) : K.buf =
  let lev = t.levels.(level) in
  let o = t.ops in
  if level = 0 then smooth t ~lev ~steps:t.cfg.Cycle.n2 ~init ~a ~b
  else begin
    let s1 = smooth t ~lev ~steps:t.cfg.Cycle.n1 ~init ~a ~b in
    let other = if s1 == a then b else a in
    (* residual into the free modulo buffer, restrict into the coarse rhs *)
    Parallel.parallel_for t.par ~lo:1 ~hi:lev.ln (fun i ->
        o.resid ~n:lev.ln ~invhsq:lev.invhsq ~v:s1 ~frhs:lev.frhs ~dst:other
          ~rlo:i ~rhi:i);
    let coarse = t.levels.(level - 1) in
    Parallel.parallel_for t.par ~lo:1 ~hi:coarse.ln (fun i ->
        o.restr ~nc:coarse.ln ~fine:other ~dst:coarse.frhs ~rlo:i ~rhi:i);
    let recursions =
      match t.cfg.Cycle.shape with
      | Cycle.W when level >= 2 -> 2
      | Cycle.V | Cycle.W | Cycle.F -> 1
    in
    let e = ref Zero in
    for _ = 1 to recursions do
      let r = go t ~level:(level - 1) ~init:!e ~a:coarse.ebuf ~b:coarse.tmp in
      e := From r
    done;
    (match !e with
     | Zero -> ()
     | From ebuf ->
       Parallel.parallel_for t.par ~lo:0 ~hi:coarse.ln (fun i ->
           o.interp_correct ~nc:coarse.ln ~coarse:ebuf ~v:s1 ~rlo:i ~rhi:i));
    smooth t ~lev ~steps:t.cfg.Cycle.n3 ~init:(From s1) ~a ~b
  end

let stepper t ~v ~f ~out =
  let dims = t.cfg.Cycle.dims in
  let finest = t.levels.(Array.length t.levels - 1) in
  let expect = Array.make dims (finest.ln + 2) in
  if Grid.extents v <> expect || Grid.extents f <> expect
     || Grid.extents out <> expect
  then invalid_arg "Handopt.stepper: grid extents mismatch";
  (* the finest level uses the caller's rhs and the [out] grid plus the
     finest tmp as modulo buffers *)
  let lev = { finest with frhs = f.Grid.buf.Buf.data } in
  let finest_level = Array.length t.levels - 1 in
  let t' =
    { t with
      levels =
        Array.mapi (fun i l -> if i = finest_level then lev else l) t.levels }
  in
  let a = out.Grid.buf.Buf.data and b = finest.tmp in
  let s1 = go t' ~level:finest_level ~init:(From v.Grid.buf.Buf.data) ~a ~b in
  if not (s1 == a) then
    Parallel.parallel_for t'.par ~lo:1 ~hi:lev.ln (fun i ->
        t'.ops.copy ~n:lev.ln ~src:s1 ~dst:a ~rlo:i ~rhi:i)
