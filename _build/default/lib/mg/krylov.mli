(** Preconditioned conjugate gradients for the Poisson operator, with
    multigrid cycles as preconditioners — the second standard way
    multigrid is deployed (paper §1: "multigrid algorithms can be used
    either as direct solvers or as pre-conditioners for Krylov
    solvers"). *)

type result = {
  iterations : int;  (** iterations actually performed *)
  converged : bool;
  residuals : float list;  (** relative residual after each iteration *)
  v : Repro_grid.Grid.t;  (** final iterate *)
}

type preconditioner = r:Repro_grid.Grid.t -> z:Repro_grid.Grid.t -> unit
(** Applies [z ← M⁻¹ r]; must be (close to) symmetric positive definite. *)

val identity_precond : preconditioner
(** [z ← r]: plain CG. *)

val mg_precond :
  Cycle.config -> n:int -> opts:Repro_core.Options.t ->
  rt:Repro_core.Exec.runtime -> preconditioner
(** One multigrid cycle from a zero initial iterate.  Use a symmetric
    configuration ([n1 = n3]) so the preconditioner is SPD. *)

val pcg :
  problem:Problem.t -> precond:preconditioner -> tol:float ->
  max_iter:int -> result
(** Solves [A v = f] to a relative residual of [tol]. *)
