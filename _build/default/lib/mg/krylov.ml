module Buf = Repro_grid.Buf
module Grid = Repro_grid.Grid

type result = {
  iterations : int;
  converged : bool;
  residuals : float list;
  v : Grid.t;
}

type preconditioner = r:Grid.t -> z:Grid.t -> unit

(* Whole-buffer vector operations.  All PCG vectors keep zero ghost
   layers, so folding over the entire buffer (ghosts included) is exact
   and contiguous. *)

let dot (a : Grid.t) (b : Grid.t) =
  let x = a.Grid.buf.Buf.data and y = b.Grid.buf.Buf.data in
  let n = Buf.len a.Grid.buf in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc :=
      !acc
      +. (Bigarray.Array1.unsafe_get x i *. Bigarray.Array1.unsafe_get y i)
  done;
  !acc

(* y <- y + alpha * x *)
let axpy alpha (x : Grid.t) (y : Grid.t) =
  let xv = x.Grid.buf.Buf.data and yv = y.Grid.buf.Buf.data in
  for i = 0 to Buf.len x.Grid.buf - 1 do
    Bigarray.Array1.unsafe_set yv i
      (Bigarray.Array1.unsafe_get yv i
       +. (alpha *. Bigarray.Array1.unsafe_get xv i))
  done

(* p <- z + beta * p *)
let xpby (z : Grid.t) beta (p : Grid.t) =
  let zv = z.Grid.buf.Buf.data and pv = p.Grid.buf.Buf.data in
  for i = 0 to Buf.len p.Grid.buf - 1 do
    Bigarray.Array1.unsafe_set pv i
      (Bigarray.Array1.unsafe_get zv i
       +. (beta *. Bigarray.Array1.unsafe_get pv i))
  done

let identity_precond ~r ~z = Grid.blit ~src:r ~dst:z

let mg_precond cfg ~n ~opts ~rt =
  let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
  let dims = cfg.Cycle.dims in
  let zero = Grid.interior ~dims (n - 1) in
  fun ~r ~z ->
    Grid.fill zero 0.0;
    stepper ~v:zero ~f:r ~out:z

let pcg ~(problem : Problem.t) ~precond ~tol ~max_iter =
  if max_iter < 1 then invalid_arg "Krylov.pcg: max_iter must be >= 1";
  let n = problem.Problem.n in
  let shape = Grid.extents problem.Problem.v in
  let v = Grid.copy problem.Problem.v in
  let r = Grid.copy problem.Problem.f in
  (* r <- f - A v (v is typically zero) *)
  let av = Grid.create shape in
  Verify.apply_poisson ~n ~v ~out:av;
  axpy (-1.0) av r;
  let z = Grid.create shape in
  precond ~r ~z;
  let p = Grid.copy z in
  let ap = Grid.create shape in
  let rz = ref (dot r z) in
  let norm_f = sqrt (dot problem.Problem.f problem.Problem.f) in
  let norm_f = if norm_f = 0.0 then 1.0 else norm_f in
  let residuals = ref [] in
  let converged = ref false in
  let iters = ref 0 in
  (try
     for it = 1 to max_iter do
       iters := it;
       Verify.apply_poisson ~n ~v:p ~out:ap;
       let pap = dot p ap in
       if pap <= 0.0 then raise Exit;  (* breakdown / non-SPD precond *)
       let alpha = !rz /. pap in
       axpy alpha p v;
       axpy (-.alpha) ap r;
       let rel = sqrt (dot r r) /. norm_f in
       residuals := rel :: !residuals;
       if rel < tol then begin
         converged := true;
         raise Exit
       end;
       precond ~r ~z;
       let rz' = dot r z in
       let beta = rz' /. !rz in
       rz := rz';
       xpby z beta p
     done
   with Exit -> ());
  { iterations = !iters;
    converged = !converged;
    residuals = List.rev !residuals;
    v }
