(** Hand-optimized multigrid baselines (§4.1).

    [`Plain`] is the paper's {e handopt}: explicit loop parallelization
    over the outer dimension, storage reuse via two modulo buffers per
    level, and persistent (pooled) allocation of all level arrays across
    cycles.  [`Pluto`] is {e handopt+pluto}: the same code with the
    pre/post/coarse smoothing sequences executed under the diamond
    time-tiling schedule of {!Repro_poly.Diamond}. *)

type smoothing = Plain | Pluto of { sigma : int }

type t

val create :
  Cycle.config -> n:int -> par:Repro_runtime.Parallel.t ->
  ?smoothing:smoothing -> unit -> t
(** Allocates all level arrays once (the baseline's pooled allocation).
    F-cycles are not supported by the hand implementations. *)

val stepper : t -> Solver.stepper
(** One multigrid cycle.  The input iterate grid is read-only; the new
    iterate is written to [out]. *)
