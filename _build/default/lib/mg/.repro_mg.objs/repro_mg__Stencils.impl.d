lib/mg/stencils.ml: Array Dsl Expr Func Repro_ir Weights
