lib/mg/solver.ml: Cycle Exec Float List Plan Problem Repro_core Repro_grid Unix Verify
