lib/mg/krylov.ml: Bigarray Cycle List Problem Repro_grid Solver Verify
