lib/mg/kernels.ml: Bigarray List Repro_grid
