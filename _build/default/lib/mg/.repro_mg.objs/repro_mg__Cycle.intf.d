lib/mg/cycle.mli: Repro_ir
