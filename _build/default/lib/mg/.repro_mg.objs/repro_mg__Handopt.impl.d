lib/mg/handopt.ml: Array Cycle Kernels Repro_grid Repro_poly Repro_runtime
