lib/mg/problem.ml: Array Random Repro_grid
