lib/mg/handopt.mli: Cycle Repro_runtime Solver
