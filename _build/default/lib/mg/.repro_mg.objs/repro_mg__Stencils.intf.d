lib/mg/stencils.mli: Repro_ir
