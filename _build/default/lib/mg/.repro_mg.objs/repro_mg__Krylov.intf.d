lib/mg/krylov.mli: Cycle Problem Repro_core Repro_grid
