lib/mg/verify.mli: Repro_grid
