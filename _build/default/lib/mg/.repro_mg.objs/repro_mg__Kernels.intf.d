lib/mg/kernels.mli: Repro_grid
