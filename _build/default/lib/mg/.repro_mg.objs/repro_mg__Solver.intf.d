lib/mg/solver.mli: Cycle Problem Repro_core Repro_grid
