lib/mg/problem.mli: Repro_grid
