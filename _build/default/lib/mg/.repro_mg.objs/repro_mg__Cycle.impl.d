lib/mg/cycle.ml: Array Dsl Expr Func List Pipeline Printf Repro_ir Sizeexpr Stencils String
