lib/mg/verify.ml: Repro_grid
