(** Hand-written grid kernels used by the hand-optimized baselines.

    These deliberately bypass the DSL/compiler machinery: they are the
    OCaml equivalent of the reference C code of Ghysels & Vanroose that
    the paper compares against (explicit loops over raw buffers, row-range
    parametrized so callers can parallelize over the outer dimension).

    All buffers are dense row-major with one ghost layer: a grid of
    interior size [n] has extent [n+2] per dimension.  Kernels write
    interior points only; ghost cells are expected to stay at the
    boundary value. *)

type buf = Repro_grid.Buf.data

(** {2 2-D kernels} (row range [rlo..rhi] over the first dimension) *)

val jacobi2d :
  n:int -> w:float -> invhsq:float -> src:buf -> frhs:buf -> dst:buf ->
  rlo:int -> rhi:int -> unit
(** [dst ← src − w·(invhsq·(4·src − neighbours) − f)]. *)

val scalef2d : n:int -> w:float -> frhs:buf -> dst:buf -> rlo:int -> rhi:int -> unit
(** [dst ← w·f] — the first Jacobi step from a zero iterate. *)

val resid2d :
  n:int -> invhsq:float -> v:buf -> frhs:buf -> dst:buf -> rlo:int ->
  rhi:int -> unit
(** [dst ← f − A·v]. *)

val restrict2d : nc:int -> fine:buf -> dst:buf -> rlo:int -> rhi:int -> unit
(** Full weighting; [nc] is the coarse interior size; fine has interior
    [2·nc+1]; rows are coarse rows. *)

val interp_correct2d : nc:int -> coarse:buf -> v:buf -> rlo:int -> rhi:int -> unit
(** [v += P·coarse] (bilinear), fused interpolation + correction.  Rows are
    coarse row indices in [0..nc]: row [r] exclusively updates fine rows
    [2r] (skipped for [r = 0], a ghost) and [2r+1], so disjoint row ranges
    may run in parallel. *)

val copy2d : n:int -> src:buf -> dst:buf -> rlo:int -> rhi:int -> unit

(** {2 3-D kernels} (plane range [rlo..rhi] over the first dimension) *)

val jacobi3d :
  n:int -> w:float -> invhsq:float -> src:buf -> frhs:buf -> dst:buf ->
  rlo:int -> rhi:int -> unit

val scalef3d : n:int -> w:float -> frhs:buf -> dst:buf -> rlo:int -> rhi:int -> unit

val resid3d :
  n:int -> invhsq:float -> v:buf -> frhs:buf -> dst:buf -> rlo:int ->
  rhi:int -> unit

val restrict3d : nc:int -> fine:buf -> dst:buf -> rlo:int -> rhi:int -> unit

val interp_correct3d : nc:int -> coarse:buf -> v:buf -> rlo:int -> rhi:int -> unit

val copy3d : n:int -> src:buf -> dst:buf -> rlo:int -> rhi:int -> unit
