module Grid = Repro_grid.Grid

let apply_poisson ~n ~v ~out =
  let invhsq = float_of_int (n * n) in
  match Grid.dims v with
  | 2 ->
    let sz = Grid.interior_size v in
    for i = 1 to sz do
      for j = 1 to sz do
        let c = Grid.get2 v i j in
        let s =
          (4.0 *. c) -. Grid.get2 v (i - 1) j -. Grid.get2 v (i + 1) j
          -. Grid.get2 v i (j - 1) -. Grid.get2 v i (j + 1)
        in
        Grid.set2 out i j (invhsq *. s)
      done
    done
  | 3 ->
    let sz = Grid.interior_size v in
    for i = 1 to sz do
      for j = 1 to sz do
        for k = 1 to sz do
          let c = Grid.get3 v i j k in
          let s =
            (6.0 *. c) -. Grid.get3 v (i - 1) j k -. Grid.get3 v (i + 1) j k
            -. Grid.get3 v i (j - 1) k -. Grid.get3 v i (j + 1) k
            -. Grid.get3 v i j (k - 1) -. Grid.get3 v i j (k + 1)
          in
          Grid.set3 out i j k (invhsq *. s)
        done
      done
    done
  | _ -> invalid_arg "Verify.apply_poisson: rank must be 2 or 3"

let residual_l2 ~n ~v ~f =
  let av = Grid.create (Grid.extents v) in
  apply_poisson ~n ~v ~out:av;
  let sum = ref 0.0 and count = ref 0 in
  Grid.iter_interior f ~f:(fun idx fv ->
      let r = fv -. Grid.get av idx in
      sum := !sum +. (r *. r);
      incr count);
  if !count = 0 then 0.0 else sqrt (!sum /. float_of_int !count)

let error_l2 ~v ~exact =
  let sum = ref 0.0 and count = ref 0 in
  Grid.iter_interior v ~f:(fun idx value ->
      let e = value -. exact idx in
      sum := !sum +. (e *. e);
      incr count);
  if !count = 0 then 0.0 else sqrt (!sum /. float_of_int !count)
