open Repro_ir

let laplacian ~dims =
  match dims with
  | 2 ->
    Weights.w2 [| [| 0.; -1.; 0. |]; [| -1.; 4.; -1. |]; [| 0.; -1.; 0. |] |]
  | 3 ->
    let z = [| [| 0.; 0.; 0. |]; [| 0.; -1.; 0. |]; [| 0.; 0.; 0. |] |] in
    let m = [| [| 0.; -1.; 0. |]; [| -1.; 6.; -1. |]; [| 0.; -1.; 0. |] |] in
    Weights.w3 [| z; m; z |]
  | _ -> invalid_arg "Stencils.laplacian: dims must be 2 or 3"

let full_weighting ~dims =
  let base = [| 1.0; 2.0; 1.0 |] in
  match dims with
  | 1 -> Weights.w1 (Array.map (fun a -> a /. 4.0) base)
  | 2 ->
    Weights.w2
      (Array.map (fun a -> Array.map (fun b -> a *. b /. 16.0) base) base)
  | 3 ->
    Weights.w3
      (Array.map
         (fun a ->
           Array.map (fun b -> Array.map (fun c -> a *. b *. c /. 64.0) base)
             base)
         base)
  | _ -> invalid_arg "Stencils.full_weighting: dims must be 1, 2 or 3"

let injection ~dims =
  match dims with
  | 1 -> Weights.w1 [| 1.0 |]
  | 2 -> Weights.w2 [| [| 1.0 |] |]
  | 3 -> Weights.w3 [| [| [| 1.0 |] |] |]
  | _ -> invalid_arg "Stencils.injection: dims must be 1, 2 or 3"

let jacobi ~dims ~(v : Func.t) ~(f : Func.t) ~invhsq ~weight =
  let zero = Array.make dims 0 in
  let av = Dsl.stencil v (laplacian ~dims) ~factor:invhsq () in
  Expr.(load v.Func.id zero - (weight * (av - load f.Func.id zero)))
