(** Independent numerical checks, written directly against grids (no DSL
    machinery) so they validate the execution engine rather than share
    code with it. *)

val residual_l2 : n:int -> v:Repro_grid.Grid.t -> f:Repro_grid.Grid.t -> float
(** L2 norm of [f − A_h v] for the Poisson operator [A = −∇²_h] at grid
    spacing [h = 1/n]; rank taken from the grids (2 or 3). *)

val error_l2 : v:Repro_grid.Grid.t -> exact:(int array -> float) -> float
(** L2 norm of [v − exact] over interior points. *)

val apply_poisson :
  n:int -> v:Repro_grid.Grid.t -> out:Repro_grid.Grid.t -> unit
(** [out ← A_h v] on the interior. *)
