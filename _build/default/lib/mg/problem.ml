module Grid = Repro_grid.Grid

type t = {
  dims : int;
  n : int;
  v : Grid.t;
  f : Grid.t;
  exact : int array -> float;
}

let pi = 4.0 *. atan 1.0

let check_n ~dims ~n =
  if dims <> 2 && dims <> 3 then invalid_arg "Problem: dims must be 2 or 3";
  if n < 4 then invalid_arg "Problem: N must be >= 4"

let poisson ~dims ~n =
  check_n ~dims ~n;
  let h = 1.0 /. float_of_int n in
  let u idx =
    let acc = ref 1.0 in
    Array.iter (fun i -> acc := !acc *. sin (pi *. float_of_int i *. h)) idx;
    !acc
  in
  let v = Grid.interior ~dims (n - 1) in
  let f = Grid.interior ~dims (n - 1) in
  Grid.fill_interior f ~f:(fun idx ->
      float_of_int dims *. pi *. pi *. u idx);
  { dims; n; v; f; exact = u }

let poisson_random ~dims ~n ~seed =
  check_n ~dims ~n;
  let st = Random.State.make [| seed |] in
  let v = Grid.interior ~dims (n - 1) in
  let f = Grid.interior ~dims (n - 1) in
  Grid.fill_interior f ~f:(fun _ -> Random.State.float st 2.0 -. 1.0);
  { dims; n; v; f; exact = (fun _ -> 0.0) }

type cls = B | C

let class_n ~dims = function
  | B -> if dims = 2 then 1024 else 128
  | C -> if dims = 2 then 2048 else 256

let class_cycles ~dims = function
  | B -> if dims = 2 then 10 else 25
  | C -> 10

let cls_of_string = function
  | "B" | "b" -> Some B
  | "C" | "c" -> Some C
  | _ -> None

let cls_name = function B -> "B" | C -> "C"
