(** Poisson model problems (§4.1): [−∇²u = f] on the unit square/cube with
    homogeneous Dirichlet boundary, discretized with finite differences on
    a vertex-centred grid of interior size [N−1] per dimension
    (grid spacing [h = 1/N]). *)

type t = {
  dims : int;
  n : int;  (** the problem-size parameter [N] *)
  v : Repro_grid.Grid.t;  (** initial guess (zero) *)
  f : Repro_grid.Grid.t;  (** right-hand side *)
  exact : int array -> float;  (** continuous solution at an interior index *)
}

val poisson : dims:int -> n:int -> t
(** Manufactured solution [u = Π_k sin(π x_k)], so
    [f = dims·π²·Π_k sin(π x_k)]. *)

val poisson_random : dims:int -> n:int -> seed:int -> t
(** Random right-hand side (reproducible); [exact] is not meaningful and
    returns 0 — use residual norms only. *)

(** Problem size classes, scaled from Table 2 for the simulated substrate
    (see DESIGN.md): class B = 2D 1024², 3D 128³; class C = 2D 2048²,
    3D 256³ in terms of [N]. *)
type cls = B | C

val class_n : dims:int -> cls -> int
val class_cycles : dims:int -> cls -> int
val cls_of_string : string -> cls option
val cls_name : cls -> string
