open Repro_ir

type cycle_shape = V | W | F

type smoother_kind = Jacobi | Gsrb

type config = {
  dims : int;
  levels : int;
  n1 : int;
  n2 : int;
  n3 : int;
  shape : cycle_shape;
  omega : float;
  smoother : smoother_kind;
}

let default ~dims ~shape ~smoothing:(n1, n2, n3) =
  if dims <> 2 && dims <> 3 then
    invalid_arg "Cycle.default: dims must be 2 or 3";
  { dims; levels = 4; n1; n2; n3; shape; omega = 0.8; smoother = Jacobi }

let min_n cfg = 4 * (1 lsl (cfg.levels - 1))

(* interior size at level l: N / 2^(levels-1-l) − 1 *)
let size_at cfg l =
  Sizeexpr.add_const (Sizeexpr.n_over (1 lsl (cfg.levels - 1 - l))) (-1)

let sizes_at cfg l = Array.make cfg.dims (size_at cfg l)

let invhsq_name l = Printf.sprintf "invhsq_L%d" l
let weight_name l = Printf.sprintf "w_L%d" l

let params cfg ~n name =
  if n mod (1 lsl (cfg.levels - 1)) <> 0 then
    invalid_arg "Cycle.params: N must be divisible by 2^(levels-1)";
  let invhsq_of l =
    let nl = n / (1 lsl (cfg.levels - 1 - l)) in
    let h = 1.0 /. float_of_int nl in
    1.0 /. (h *. h)
  in
  let prefixed p =
    String.length name > String.length p
    && String.sub name 0 (String.length p) = p
  in
  let level_of p =
    int_of_string
      (String.sub name (String.length p) (String.length name - String.length p))
  in
  if prefixed "invhsq_L" then invhsq_of (level_of "invhsq_L")
  else if prefixed "w_L" then
    cfg.omega /. (float_of_int (2 * cfg.dims) *. invhsq_of (level_of "w_L"))
  else invalid_arg ("Cycle.params: unknown parameter " ^ name)

let a_weights dims = Stencils.laplacian ~dims

(* A stage value, or the implicit all-zero grid (Algorithm 1, e ← 0). *)
type value = Zero | Stage of Func.t

let jacobi_defn cfg ~level ~f ~v =
  let av =
    Dsl.stencil v (a_weights cfg.dims)
      ~factor:(Expr.param (invhsq_name level))
      ()
  in
  let zero = Array.make cfg.dims 0 in
  Expr.(
    load v.Func.id zero
    - (param (weight_name level) * (av - load f.Func.id zero)))

(* the smoother body with v = 0 folded in: v' = w·f *)
let jacobi_zero_defn cfg ~level ~f =
  let zero = Array.make cfg.dims 0 in
  Expr.(param (weight_name level) * load f.Func.id zero)

(* unique stage names: the same level is visited repeatedly by W/F cycles *)
let fresh =
  let counter = ref 0 in
  fun tag level ->
    incr counter;
    Printf.sprintf "%s_L%d_i%d" tag level !counter

(* GSRB: red points have even coordinate sum.  Each half-step is a
   parity-piecewise stage: updated colour gets the Gauss-Seidel formula,
   the other colour a pointwise copy of the previous iterate.  For a zero
   initial iterate the red half simplifies to ω·f/(2d·invhsq) at red
   points and 0 elsewhere. *)
let gsrb_update cfg ~level ~f ~v =
  let zero = Array.make cfg.dims 0 in
  let neighbours =
    (* the off-centre entries of A carry weight −1 *)
    List.init (2 * cfg.dims) (fun i ->
        let k = i / 2 and s = if i mod 2 = 0 then -1 else 1 in
        let off = Array.make cfg.dims 0 in
        off.(k) <- s;
        Expr.load v.Func.id (Array.copy off))
  in
  let sum = List.fold_left (fun a t -> Expr.(a + t)) (List.hd neighbours)
      (List.tl neighbours) in
  let diag = float_of_int (2 * cfg.dims) in
  (* c* = (f/invhsq + Σ neighbours)/2d; relaxed by ω *)
  let gs =
    Expr.(
      (load f.Func.id zero / (const diag * param (invhsq_name level)))
      + (sum / const diag))
  in
  Expr.(
    ((const 1.0 - const cfg.omega) * load v.Func.id zero)
    + (const cfg.omega * gs))

let gsrb_zero_update cfg ~level ~f =
  let zero = Array.make cfg.dims 0 in
  let diag = float_of_int (2 * cfg.dims) in
  Expr.(
    const cfg.omega
    * (load f.Func.id zero / (const diag * param (invhsq_name level))))

(* parity case p updates "red" iff the coordinate-parity sum is even *)
let parity_is_red cfg p =
  let bits = ref 0 in
  for k = 0 to cfg.dims - 1 do
    bits := !bits + ((p lsr k) land 1)
  done;
  !bits mod 2 = 0

let smoother ctx cfg ~level ~tag ~steps ~init ~f =
  if steps = 0 then init
  else
    match cfg.smoother with
    | Jacobi -> (
      let body ~v = jacobi_defn cfg ~level ~f ~v in
      match init with
      | Stage v ->
        Stage (Dsl.tstencil ctx ~name:(fresh tag level) ~steps ~init:v body)
      | Zero ->
        Stage
          (Dsl.tstencil_from_zero ctx ~name:(fresh tag level) ~steps
             ~sizes:(sizes_at cfg level)
             ~first:(jacobi_zero_defn cfg ~level ~f)
             body))
    | Gsrb ->
      let zero = Array.make cfg.dims 0 in
      let half ~red ~prev ~name_suffix =
        let update, keep =
          match prev with
          | Stage v ->
            (gsrb_update cfg ~level ~f ~v, Expr.load v.Func.id zero)
          | Zero -> (gsrb_zero_update cfg ~level ~f, Expr.const 0.0)
        in
        let cases =
          Array.init (1 lsl cfg.dims) (fun p ->
              if parity_is_red cfg p = red then update else keep)
        in
        Stage
          (Dsl.parity_func ctx
             ~name:(fresh (tag ^ name_suffix) level)
             ~sizes:(sizes_at cfg level) cases)
      in
      let rec go prev step =
        if step = steps then prev
        else
          let r = half ~red:true ~prev ~name_suffix:"_red" in
          let b = half ~red:false ~prev:r ~name_suffix:"_blk" in
          go b (step + 1)
      in
      go init 0

let defect ctx cfg ~level ~v ~f =
  match v with
  | Zero -> f  (* r = f − A·0 = f *)
  | Stage v ->
    let av =
      Dsl.stencil v (a_weights cfg.dims)
        ~factor:(Expr.param (invhsq_name level))
        ()
    in
    let zero = Array.make cfg.dims 0 in
    Dsl.func ctx ~name:(fresh "defect" level)
      ~sizes:(sizes_at cfg level)
      Expr.(load f.Func.id zero - av)

(* Interpolation of the implicit zero grid is materialized as a constant
   stage so that the DAG shape (and Table 3 stage counts) match the paper
   even for the 10-0-0 configuration where the coarsest level contributes
   no smoothing. *)
let interpolate ctx cfg ~level ~e =
  match e with
  | Zero ->
    Stage
      (Dsl.func ctx ~name:(fresh "interp" level)
         ~sizes:(sizes_at cfg level) (Expr.const 0.0))
  | Stage e -> Stage (Dsl.interp_fn ctx ~name:(fresh "interp" level) ~input:e ())

let correct ctx cfg ~level ~v ~e =
  match (v, e) with
  | Zero, e -> e
  | v, Zero -> v
  | Stage v, Stage e ->
    let zero = Array.make cfg.dims 0 in
    Stage
      (Dsl.func ctx ~name:(fresh "correct" level)
         ~sizes:(sizes_at cfg level)
         Expr.(load v.Func.id zero + load e.Func.id zero))

let rec run_cycle ctx cfg ~shape ~level ~v ~f =
  if level = 0 then smoother ctx cfg ~level ~tag:"Tc" ~steps:cfg.n2 ~init:v ~f
  else begin
    let s1 = smoother ctx cfg ~level ~tag:"Tpre" ~steps:cfg.n1 ~init:v ~f in
    let r = defect ctx cfg ~level ~v:s1 ~f in
    let r2 =
      Dsl.restrict_fn ctx ~name:(fresh "restrict" level) ~input:r ()
    in
    let recursions =
      match shape with
      | V | F -> 1
      | W -> if level >= 2 then 2 else 1
    in
    let rec descend k e =
      if k = 0 then e
      else
        descend (k - 1)
          (run_cycle ctx cfg ~shape ~level:(level - 1) ~v:e ~f:r2)
    in
    let e2 = descend recursions Zero in
    let e1 = interpolate ctx cfg ~level ~e:e2 in
    let vc = correct ctx cfg ~level ~v:s1 ~e:e1 in
    smoother ctx cfg ~level ~tag:"Tpost" ~steps:cfg.n3 ~init:vc ~f
  end

(* F-cycle: descend once to the coarsest, and on the way back up finish
   each level with a V-cycle from the corrected iterate. *)
let rec run_fcycle ctx cfg ~level ~v ~f =
  if level = 0 then smoother ctx cfg ~level ~tag:"Tc" ~steps:cfg.n2 ~init:v ~f
  else begin
    let s1 = smoother ctx cfg ~level ~tag:"Tpre" ~steps:cfg.n1 ~init:v ~f in
    let r = defect ctx cfg ~level ~v:s1 ~f in
    let r2 = Dsl.restrict_fn ctx ~name:(fresh "restrict" level) ~input:r () in
    let e2 = run_fcycle ctx cfg ~level:(level - 1) ~v:Zero ~f:r2 in
    let e1 = interpolate ctx cfg ~level ~e:e2 in
    let vc = correct ctx cfg ~level ~v:s1 ~e:e1 in
    run_cycle ctx cfg ~shape:V ~level ~v:vc ~f
  end

let build cfg =
  if cfg.levels < 2 then invalid_arg "Cycle.build: need at least 2 levels";
  if cfg.n1 < 0 || cfg.n2 < 0 || cfg.n3 < 0 then
    invalid_arg "Cycle.build: negative smoothing steps";
  let shape_name = match cfg.shape with V -> "V" | W -> "W" | F -> "F" in
  let ctx =
    Dsl.create
      (Printf.sprintf "%s-%dD-%d-%d-%d" shape_name cfg.dims cfg.n1 cfg.n2
         cfg.n3)
  in
  let finest = cfg.levels - 1 in
  let v = Dsl.grid ctx "V" ~dims:cfg.dims ~sizes:(sizes_at cfg finest) in
  let f = Dsl.grid ctx "F" ~dims:cfg.dims ~sizes:(sizes_at cfg finest) in
  let result =
    match cfg.shape with
    | V | W ->
      run_cycle ctx cfg ~shape:cfg.shape ~level:finest ~v:(Stage v) ~f
    | F -> run_fcycle ctx cfg ~level:finest ~v:(Stage v) ~f
  in
  match result with
  | Zero -> invalid_arg "Cycle.build: cycle computes nothing (all steps 0)"
  | Stage out -> Dsl.finish ctx ~outputs:[ out ]

let find_input pipeline name =
  match
    List.find_opt
      (fun (f : Func.t) -> f.Func.name = name)
      (Pipeline.inputs pipeline)
  with
  | Some f -> f.Func.id
  | None -> invalid_arg ("Cycle: pipeline has no input " ^ name)

let input_v pipeline = find_input pipeline "V"
let input_f pipeline = find_input pipeline "F"

let output pipeline =
  match Pipeline.outputs pipeline with
  | [ o ] -> o
  | [] | _ :: _ -> invalid_arg "Cycle.output: expected exactly one output"

let bench_name cfg =
  let shape_name = match cfg.shape with V -> "V" | W -> "W" | F -> "F" in
  Printf.sprintf "%s-%dD-%d-%d-%d" shape_name cfg.dims cfg.n1 cfg.n2 cfg.n3
