(** The outer multigrid driver: iterates cycles (the loop that is external
    to the DSL, §2) over any cycle implementation — PolyMG plans or the
    hand-optimized baselines — and records convergence and timing. *)

type cycle_stats = {
  cycle : int;  (** 1-based *)
  residual : float;  (** L2 residual after the cycle; NaN if not computed *)
  seconds : float;  (** wall time of the cycle execution alone *)
}

type result = {
  stats : cycle_stats list;
  v : Repro_grid.Grid.t;  (** final iterate *)
  total_seconds : float;  (** time in cycle executions, excluding checks *)
}

type stepper = v:Repro_grid.Grid.t -> f:Repro_grid.Grid.t ->
  out:Repro_grid.Grid.t -> unit
(** One cycle: reads the iterate [v] and rhs [f], writes the new iterate. *)

val iterate :
  stepper -> problem:Problem.t -> cycles:int -> ?residuals:bool -> unit ->
  result
(** Runs [cycles] iterations, ping-ponging two iterate grids.
    [residuals] (default true) computes the residual after each cycle with
    {!Verify.residual_l2} (excluded from timings). *)

val polymg_stepper :
  Cycle.config -> n:int -> opts:Repro_core.Options.t -> rt:Repro_core.Exec.runtime ->
  stepper
(** Builds the pipeline, optimizes it into a plan once, and returns the
    stepper that executes it. *)

val solve :
  Cycle.config -> n:int -> opts:Repro_core.Options.t ->
  ?domains:int -> cycles:int -> ?residuals:bool -> unit -> result
(** Convenience: fresh runtime + {!polymg_stepper} + {!iterate} on the
    standard Poisson problem; tears the runtime down afterwards. *)
