(** The standard stencil kernels of geometric multigrid, as weight
    tensors for the DSL's [Stencil]/[Restrict] constructs. *)

val laplacian : dims:int -> Repro_ir.Weights.t
(** The operator [A = −∇²_h] without the [1/h²] factor: 5-point in 2D
    ([[0,-1,0],[-1,4,-1],[0,-1,0]]), 7-point in 3D. *)

val full_weighting : dims:int -> Repro_ir.Weights.t
(** The d-dimensional tensor product of [[1;2;1]/4] — the default
    restriction kernel (weights sum to 1). *)

val injection : dims:int -> Repro_ir.Weights.t
(** Pure injection: the centre point only. *)

val jacobi :
  dims:int -> v:Repro_ir.Func.t -> f:Repro_ir.Func.t ->
  invhsq:Repro_ir.Expr.t -> weight:Repro_ir.Expr.t -> Repro_ir.Expr.t
(** The weighted-Jacobi smoother body
    [v − weight·(invhsq·A·v − f)] (Fig. 3's smoother definition). *)
