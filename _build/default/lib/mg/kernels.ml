type buf = Repro_grid.Buf.data


(* ------------------------------------------------------------------ *)
(* 2-D: extent n+2, row stride n+2                                      *)

let jacobi2d ~n ~w ~invhsq ~(src : buf) ~(frhs : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  for i = rlo to rhi do
    let r = i * s in
    for j = 1 to n do
      let c = Bigarray.Array1.unsafe_get src (r + j) in
      let a =
        invhsq
        *. ((4.0 *. c) -. Bigarray.Array1.unsafe_get src (r + j - s) -. Bigarray.Array1.unsafe_get src (r + j + s)
            -. Bigarray.Array1.unsafe_get src (r + j - 1)
            -. Bigarray.Array1.unsafe_get src (r + j + 1))
      in
      Bigarray.Array1.unsafe_set dst (r + j) (c -. (w *. (a -. Bigarray.Array1.unsafe_get frhs (r + j))))
    done
  done

let scalef2d ~n ~w ~(frhs : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  for i = rlo to rhi do
    let r = i * s in
    for j = 1 to n do
      Bigarray.Array1.unsafe_set dst (r + j) (w *. Bigarray.Array1.unsafe_get frhs (r + j))
    done
  done

let resid2d ~n ~invhsq ~(v : buf) ~(frhs : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  for i = rlo to rhi do
    let r = i * s in
    for j = 1 to n do
      let a =
        invhsq
        *. ((4.0 *. Bigarray.Array1.unsafe_get v (r + j)) -. Bigarray.Array1.unsafe_get v (r + j - s) -. Bigarray.Array1.unsafe_get v (r + j + s)
            -. Bigarray.Array1.unsafe_get v (r + j - 1)
            -. Bigarray.Array1.unsafe_get v (r + j + 1))
      in
      Bigarray.Array1.unsafe_set dst (r + j) (Bigarray.Array1.unsafe_get frhs (r + j) -. a)
    done
  done

let restrict2d ~nc ~(fine : buf) ~(dst : buf) ~rlo ~rhi =
  let nf = (2 * nc) + 1 in
  let sf = nf + 2 and sc = nc + 2 in
  for i = rlo to rhi do
    let fi = 2 * i in
    let rc = i * sc in
    for j = 1 to nc do
      let fj = 2 * j in
      let c = (fi * sf) + fj in
      let v =
        (4.0 *. Bigarray.Array1.unsafe_get fine c)
        +. (2.0
            *. (Bigarray.Array1.unsafe_get fine (c - 1) +. Bigarray.Array1.unsafe_get fine (c + 1) +. Bigarray.Array1.unsafe_get fine (c - sf)
                +. Bigarray.Array1.unsafe_get fine (c + sf)))
        +. Bigarray.Array1.unsafe_get fine (c - sf - 1)
        +. Bigarray.Array1.unsafe_get fine (c - sf + 1)
        +. Bigarray.Array1.unsafe_get fine (c + sf - 1)
        +. Bigarray.Array1.unsafe_get fine (c + sf + 1)
      in
      Bigarray.Array1.unsafe_set dst (rc + j) (v /. 16.0)
    done
  done

(* Bilinear interpolation + correction: coarse point (i,j) contributes to
   fine points (2i,2j), (2i±1, 2j), (2i, 2j±1), ...  Implemented per
   coarse row r updating fine rows 2r and 2r+1, which keeps ownership of
   fine rows disjoint across coarse rows: fine row 2r gets contributions
   from coarse rows r only (even row), fine row 2r+1 from rows r and r+1 —
   so we update fine row 2r (injection along i) and fine row 2r+1
   (averaged between coarse rows r and r+1, where row nc+1 is ghost 0). *)
let interp_correct2d ~nc ~(coarse : buf) ~(v : buf) ~rlo ~rhi =
  let nf = (2 * nc) + 1 in
  let sf = nf + 2 and sc = nc + 2 in
  for i = rlo to rhi do
    let rc = i * sc in
    (* fine row 2i (skip i = 0: fine row 0 is a ghost row):
       e(2i, 2j) = E(i,j); e(2i, 2j±1) averages in j *)
    if i >= 1 then begin
      let rf = 2 * i * sf in
      for j = 1 to nc do
        let e = Bigarray.Array1.unsafe_get coarse (rc + j) in
        let fj = 2 * j in
        Bigarray.Array1.unsafe_set v (rf + fj) (Bigarray.Array1.unsafe_get v (rf + fj) +. e);
        let l = rf + fj - 1 in
        Bigarray.Array1.unsafe_set v l (Bigarray.Array1.unsafe_get v l +. (0.5 *. e));
        let r = rf + fj + 1 in
        Bigarray.Array1.unsafe_set v r (Bigarray.Array1.unsafe_get v r +. (0.5 *. e))
      done
    end;
    (* fine row 2i+1: averages between coarse rows i and i+1 *)
    let rf = ((2 * i) + 1) * sf in
    for j = 1 to nc do
      let e = 0.5 *. (Bigarray.Array1.unsafe_get coarse (rc + j) +. Bigarray.Array1.unsafe_get coarse (rc + sc + j)) in
      let fj = 2 * j in
      Bigarray.Array1.unsafe_set v (rf + fj) (Bigarray.Array1.unsafe_get v (rf + fj) +. e);
      let l = rf + fj - 1 in
      Bigarray.Array1.unsafe_set v l (Bigarray.Array1.unsafe_get v l +. (0.5 *. e));
      let r = rf + fj + 1 in
      Bigarray.Array1.unsafe_set v r (Bigarray.Array1.unsafe_get v r +. (0.5 *. e))
    done
  done

let copy2d ~n ~(src : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  for i = rlo to rhi do
    let r = i * s in
    for j = 1 to n do
      Bigarray.Array1.unsafe_set dst (r + j) (Bigarray.Array1.unsafe_get src (r + j))
    done
  done

(* ------------------------------------------------------------------ *)
(* 3-D: extent n+2 per dim                                              *)

let jacobi3d ~n ~w ~invhsq ~(src : buf) ~(frhs : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  let sp = s * s in
  for i = rlo to rhi do
    for j = 1 to n do
      let r = (i * sp) + (j * s) in
      for k = 1 to n do
        let c = Bigarray.Array1.unsafe_get src (r + k) in
        let a =
          invhsq
          *. ((6.0 *. c) -. Bigarray.Array1.unsafe_get src (r + k - sp) -. Bigarray.Array1.unsafe_get src (r + k + sp)
              -. Bigarray.Array1.unsafe_get src (r + k - s)
              -. Bigarray.Array1.unsafe_get src (r + k + s)
              -. Bigarray.Array1.unsafe_get src (r + k - 1)
              -. Bigarray.Array1.unsafe_get src (r + k + 1))
        in
        Bigarray.Array1.unsafe_set dst (r + k) (c -. (w *. (a -. Bigarray.Array1.unsafe_get frhs (r + k))))
      done
    done
  done

let scalef3d ~n ~w ~(frhs : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  let sp = s * s in
  for i = rlo to rhi do
    for j = 1 to n do
      let r = (i * sp) + (j * s) in
      for k = 1 to n do
        Bigarray.Array1.unsafe_set dst (r + k) (w *. Bigarray.Array1.unsafe_get frhs (r + k))
      done
    done
  done

let resid3d ~n ~invhsq ~(v : buf) ~(frhs : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  let sp = s * s in
  for i = rlo to rhi do
    for j = 1 to n do
      let r = (i * sp) + (j * s) in
      for k = 1 to n do
        let a =
          invhsq
          *. ((6.0 *. Bigarray.Array1.unsafe_get v (r + k)) -. Bigarray.Array1.unsafe_get v (r + k - sp)
              -. Bigarray.Array1.unsafe_get v (r + k + sp)
              -. Bigarray.Array1.unsafe_get v (r + k - s)
              -. Bigarray.Array1.unsafe_get v (r + k + s)
              -. Bigarray.Array1.unsafe_get v (r + k - 1)
              -. Bigarray.Array1.unsafe_get v (r + k + 1))
        in
        Bigarray.Array1.unsafe_set dst (r + k) (Bigarray.Array1.unsafe_get frhs (r + k) -. a)
      done
    done
  done

let restrict3d ~nc ~(fine : buf) ~(dst : buf) ~rlo ~rhi =
  let nf = (2 * nc) + 1 in
  let sf = nf + 2 and sc = nc + 2 in
  let spf = sf * sf and spc = sc * sc in
  (* tensor-product [1;2;1]/4 weights, overall /64 *)
  for i = rlo to rhi do
    for j = 1 to nc do
      let rc = (i * spc) + (j * sc) in
      for k = 1 to nc do
        let c = (2 * i * spf) + (2 * j * sf) + (2 * k) in
        let acc = ref 0.0 in
        for di = -1 to 1 do
          let wi = if di = 0 then 2.0 else 1.0 in
          for dj = -1 to 1 do
            let wj = if dj = 0 then 2.0 else 1.0 in
            let base = c + (di * spf) + (dj * sf) in
            acc :=
              !acc
              +. (wi *. wj
                  *. ((Bigarray.Array1.unsafe_get fine (base - 1) +. (2.0 *. Bigarray.Array1.unsafe_get fine base)
                       +. Bigarray.Array1.unsafe_get fine (base + 1))))
          done
        done;
        Bigarray.Array1.unsafe_set dst (rc + k) (!acc /. 64.0)
      done
    done
  done

let interp_correct3d ~nc ~(coarse : buf) ~(v : buf) ~rlo ~rhi =
  let nf = (2 * nc) + 1 in
  let sf = nf + 2 and sc = nc + 2 in
  let spf = sf * sf and spc = sc * sc in
  (* For each fine point, gather from the (up to 8) surrounding coarse
     points with trilinear weights; iterate over coarse i-slabs so plane
     ownership is disjoint (fine planes 2i and 2i+1 per coarse i). *)
  let cval ci cj ck =
    if ci < 0 || ci > nc + 1 || cj < 0 || cj > nc + 1 || ck < 0 || ck > nc + 1
    then 0.0
    else Bigarray.Array1.unsafe_get coarse ((ci * spc) + (cj * sc) + ck)
  in
  for i = rlo to rhi do
    (* fine planes 2i and 2i+1 *)
    List.iter
      (fun fi ->
        if fi >= 1 && fi <= nf then
          for fj = 1 to nf do
            for fk = 1 to nf do
              let e = ref 0.0 in
              let half_i = fi land 1 = 1
              and half_j = fj land 1 = 1
              and half_k = fk land 1 = 1 in
              let i0 = fi / 2 and j0 = fj / 2 and k0 = fk / 2 in
              let add w ci cj ck = e := !e +. (w *. cval ci cj ck) in
              let wi = if half_i then [ (0.5, i0); (0.5, i0 + 1) ] else [ (1.0, i0) ] in
              let wj = if half_j then [ (0.5, j0); (0.5, j0 + 1) ] else [ (1.0, j0) ] in
              let wk = if half_k then [ (0.5, k0); (0.5, k0 + 1) ] else [ (1.0, k0) ] in
              List.iter
                (fun (wa, ci) ->
                  List.iter
                    (fun (wb, cj) ->
                      List.iter (fun (wc, ck) -> add (wa *. wb *. wc) ci cj ck) wk)
                    wj)
                wi;
              let idx = (fi * spf) + (fj * sf) + fk in
              Bigarray.Array1.unsafe_set v idx (Bigarray.Array1.unsafe_get v idx +. !e)
            done
          done)
      [ 2 * i; (2 * i) + 1 ]
  done

let copy3d ~n ~(src : buf) ~(dst : buf) ~rlo ~rhi =
  let s = n + 2 in
  let sp = s * s in
  for i = rlo to rhi do
    for j = 1 to n do
      let r = (i * sp) + (j * s) in
      for k = 1 to n do
        Bigarray.Array1.unsafe_set dst (r + k) (Bigarray.Array1.unsafe_get src (r + k))
      done
    done
  done
