(** Multigrid cycle construction in the PolyMG DSL.

    Builds the feed-forward pipeline of one cycle iteration for the
    Poisson problem [A u = f] with [A = −∇²_h] (the 2-D five-point /
    3-D seven-point operator of Fig. 3), weighted-Jacobi smoothing,
    full-weighting restriction and d-linear interpolation.

    The structure mirrors the recursive specification of Fig. 3; stage
    counts reproduce Table 3 exactly (e.g. 40 stages for V-4-4-4, 98 for
    W-10-0-0 at 4 levels): a W-cycle performs two recursive calls at
    levels ≥ 2 and a single call from level 1 to the coarsest. *)

type cycle_shape = V | W | F

type smoother_kind =
  | Jacobi
  | Gsrb
      (** Gauss-Seidel red-black, expressed as the paper suggests (§4.1)
          by abstracting the red and black points as two (parity-defined)
          grids: each smoothing step unrolls into a red half-stage and a
          black half-stage, so every optimization — fusion, overlapped
          tiling, scratch reuse, diamond tiling — applies unchanged. *)

type config = {
  dims : int;  (** 2 or 3 *)
  levels : int;  (** total levels; level 0 is the coarsest *)
  n1 : int;  (** pre-smoothing steps *)
  n2 : int;  (** coarsest-level smoothing steps *)
  n3 : int;  (** post-smoothing steps *)
  shape : cycle_shape;
  omega : float;  (** Jacobi damping (2/3 in 2D and 6/7 in 3D classic) *)
  smoother : smoother_kind;
}

val default : dims:int -> shape:cycle_shape -> smoothing:int * int * int ->
  config
(** 4 levels, ω = 0.8, Jacobi smoothing. *)

val build : config -> Repro_ir.Pipeline.t
(** Inputs: grids ["V"] (initial guess) and ["F"] (right-hand side) of
    finest interior size [N−1]; output: the corrected, post-smoothed
    finest iterate. *)

val params : config -> n:int -> string -> float
(** Resolves the per-level parameters the pipeline uses: ["invhsq_L<l>"]
    ([1/h²] at level [l]) and ["w_L<l>"] (Jacobi weight [ω·h²/(2·dims)]).
    [n] must be divisible by [2^(levels-1)].
    @raise Invalid_argument for unknown names. *)

val input_v : Repro_ir.Pipeline.t -> int
(** Func id of the ["V"] input. *)

val input_f : Repro_ir.Pipeline.t -> int

val output : Repro_ir.Pipeline.t -> int

val min_n : config -> int
(** Smallest valid finest-grid parameter [N] (coarsest interior ≥ 1). *)

val bench_name : config -> string
(** e.g. ["V-2D-4-4-4"] — the benchmark naming of Table 3. *)
