(** C code emission from plans.

    PolyMG generates C+OpenMP; this engine executes plans directly
    instead, but the correspondence is kept inspectable: [emit] prints,
    for any plan, the C the paper's backend would produce — pooled
    full-array allocations, [#pragma omp parallel for collapse(d)] tile
    loops, per-thread scratchpad declarations with their user lists, and
    the per-stage loop nests with min/max-clamped overlapped-tile bounds
    (the shape of Fig. 8).  Used for the generated-lines-of-code column of
    Table 3 and by [polymg_dump]. *)

val emit : Format.formatter -> Plan.t -> unit

val to_string : Plan.t -> string

val line_count : Plan.t -> int
(** Lines of the emitted C — Table 3's "Lines of gen. code". *)
