(** Storage reuse by greedy remapping — Algorithms 2 and 3 of the paper.

    Used at two levels (§3.2): within a group, to colour scratchpads so
    that e.g. a chain of smoothing steps runs in two buffers (Fig. 7); and
    across groups, to let full arrays serve several live-out functions.
    Reuse is only allowed within a {e storage class}; the class key is
    polymorphic here — callers use quantized extents for scratchpads and
    per-dimension parametric size coefficients for full arrays. *)

val last_use_map :
  ids:int list -> time:(int -> int) -> uses:(int -> int list) ->
  (int, int list) Hashtbl.t
(** Algorithm 2, [getLastUseMap]: maps a timestamp to the ids whose last
    use happens at that time.  The last use of an id is the maximum
    timestamp over [uses id] (its consumers), or its own timestamp when it
    has no consumer. *)

val remap :
  ids:int list -> time:(int -> int) -> last_use:(int -> int) ->
  cls:(int -> 'c) -> (int, int) Hashtbl.t * int
(** Algorithm 3, [remapStorage]: processes ids in ascending timestamp;
    each either pops a free slot from its class pool or allocates a fresh
    slot.  A dead id's slot returns to the pool only for ids of strictly
    later timestamps (ids sharing a timestamp — multiple live-outs of one
    group — never exchange storage, per §3.2.2).  Returns the id → slot
    map and the number of slots allocated. *)

val no_reuse : ids:int list -> (int, int) Hashtbl.t * int
(** The identity mapping used when the optimization is disabled: one slot
    per id. *)
