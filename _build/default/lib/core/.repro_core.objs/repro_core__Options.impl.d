lib/core/options.ml: Array Format Printf String
