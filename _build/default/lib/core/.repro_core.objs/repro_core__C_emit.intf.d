lib/core/c_emit.mli: Format Plan
