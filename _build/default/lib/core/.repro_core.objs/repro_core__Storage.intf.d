lib/core/storage.mli: Hashtbl
