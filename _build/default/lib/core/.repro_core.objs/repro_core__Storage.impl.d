lib/core/storage.ml: Hashtbl Int List Option
