lib/core/grouping.mli: Options Repro_ir
