lib/core/exec.ml: Array Bigarray Box Compile Diamond Domain Func Hashtbl List Option Options Pipeline Plan Printf Regions Repro_grid Repro_ir Repro_poly Repro_runtime Sizeexpr Skewed
