lib/core/c_emit.ml: Array Box Compile Expr Format Func Int List Options Pipeline Plan Printf Regions Repro_ir Repro_poly Sizeexpr String
