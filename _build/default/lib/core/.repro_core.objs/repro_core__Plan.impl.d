lib/core/plan.ml: Array Atomic Box Compile Format Func Grouping Hashtbl Int List Option Options Pipeline Printf Regions Repro_ir Repro_poly Sizeexpr Storage String
