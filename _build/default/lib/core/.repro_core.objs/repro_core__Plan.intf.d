lib/core/plan.mli: Compile Format Options Repro_ir Repro_poly
