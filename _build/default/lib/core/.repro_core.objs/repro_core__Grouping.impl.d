lib/core/grouping.ml: Array Fun Func Hashtbl Int List Options Pipeline Queue Regions Repro_ir Repro_poly
