lib/core/walks.ml: Array Bigarray Repro_grid
