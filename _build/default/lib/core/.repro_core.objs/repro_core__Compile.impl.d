lib/core/compile.ml: Array Bigarray Box Expr Float Fun Func Hashtbl Int List Option Repro_grid Repro_ir Repro_poly Walks
