lib/core/exec.mli: Plan Repro_grid Repro_runtime
