lib/core/compile.mli: Repro_grid Repro_ir Repro_poly
