(* Innermost-loop kernels in "walk" form: one cursor advancing through a
   shared producer buffer with constant per-term deltas, plus at most one
   auxiliary stream on a second buffer.  This is the register-level shape
   of the C loops the paper's backend generates (Fig. 8): a k-point
   stencil on one array plus the rhs array.  Callers pass a zero-weighted
   self-referential aux stream when there is none.

   All kernels compute, for n1 points:
     dst[di] = base + Σ_t c_t · main[b + d_t] + ac · aux[a]
     di += dstep; b += step; a += astep                                  *)

module Buf = Repro_grid.Buf

let k1 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main !b)
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := !b + step;
    a := !a + astep;
    di := !di + dstep
  done

let k2 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let k3 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~c2 ~d2 ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (c2 *. Bigarray.Array1.unsafe_get main (p + d2))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let k4 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~c2 ~d2 ~c3 ~d3 ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (c2 *. Bigarray.Array1.unsafe_get main (p + d2))
       +. (c3 *. Bigarray.Array1.unsafe_get main (p + d3))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let k5 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~c2 ~d2 ~c3 ~d3 ~c4 ~d4 ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (c2 *. Bigarray.Array1.unsafe_get main (p + d2))
       +. (c3 *. Bigarray.Array1.unsafe_get main (p + d3))
       +. (c4 *. Bigarray.Array1.unsafe_get main (p + d4))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let k6 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~c2 ~d2 ~c3 ~d3 ~c4 ~d4 ~c5 ~d5 ~(aux : Buf.data) ~ac ~a0
    ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (c2 *. Bigarray.Array1.unsafe_get main (p + d2))
       +. (c3 *. Bigarray.Array1.unsafe_get main (p + d3))
       +. (c4 *. Bigarray.Array1.unsafe_get main (p + d4))
       +. (c5 *. Bigarray.Array1.unsafe_get main (p + d5))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let k7 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~c2 ~d2 ~c3 ~d3 ~c4 ~d4 ~c5 ~d5 ~c6 ~d6 ~(aux : Buf.data) ~ac
    ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (c2 *. Bigarray.Array1.unsafe_get main (p + d2))
       +. (c3 *. Bigarray.Array1.unsafe_get main (p + d3))
       +. (c4 *. Bigarray.Array1.unsafe_get main (p + d4))
       +. (c5 *. Bigarray.Array1.unsafe_get main (p + d5))
       +. (c6 *. Bigarray.Array1.unsafe_get main (p + d6))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let k8 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~c2 ~d2 ~c3 ~d3 ~c4 ~d4 ~c5 ~d5 ~c6 ~d6 ~c7 ~d7
    ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (c2 *. Bigarray.Array1.unsafe_get main (p + d2))
       +. (c3 *. Bigarray.Array1.unsafe_get main (p + d3))
       +. (c4 *. Bigarray.Array1.unsafe_get main (p + d4))
       +. (c5 *. Bigarray.Array1.unsafe_get main (p + d5))
       +. (c6 *. Bigarray.Array1.unsafe_get main (p + d6))
       +. (c7 *. Bigarray.Array1.unsafe_get main (p + d7))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let k9 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~c0 ~c1 ~d1 ~c2 ~d2 ~c3 ~d3 ~c4 ~d4 ~c5 ~d5 ~c6 ~d6 ~c7 ~d7 ~c8 ~d8
    ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (c1 *. Bigarray.Array1.unsafe_get main (p + d1))
       +. (c2 *. Bigarray.Array1.unsafe_get main (p + d2))
       +. (c3 *. Bigarray.Array1.unsafe_get main (p + d3))
       +. (c4 *. Bigarray.Array1.unsafe_get main (p + d4))
       +. (c5 *. Bigarray.Array1.unsafe_get main (p + d5))
       +. (c6 *. Bigarray.Array1.unsafe_get main (p + d6))
       +. (c7 *. Bigarray.Array1.unsafe_get main (p + d7))
       +. (c8 *. Bigarray.Array1.unsafe_get main (p + d8))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

(* generic walk: delta/coefficient arrays, for wide stencils (27-point) *)
let kn ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0 ~step
    ~(coef : float array) ~(delta : int array) ~(aux : Buf.data) ~ac ~a0
    ~astep =
  let k = Array.length coef in
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    let acc = ref (base +. (ac *. Bigarray.Array1.unsafe_get aux !a)) in
    for t = 0 to k - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get coef t
            *. Bigarray.Array1.unsafe_get main (p + Array.unsafe_get delta t))
    done;
    Bigarray.Array1.unsafe_set dst !di !acc;
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

(* Symmetric-stencil kernels: one centre coefficient plus [k] neighbours
   sharing a single coefficient — the shape of Jacobi smoothing and
   residual stages, where summing the neighbours before the one multiply
   matches the flop count of hand-written code. *)

let sym4 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0
    ~step ~c0 ~cn ~d1 ~d2 ~d3 ~d4 ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (cn
           *. (Bigarray.Array1.unsafe_get main (p + d1)
               +. Bigarray.Array1.unsafe_get main (p + d2)
               +. Bigarray.Array1.unsafe_get main (p + d3)
               +. Bigarray.Array1.unsafe_get main (p + d4)))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done

let sym6 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~(main : Buf.data) ~b0
    ~step ~c0 ~cn ~d1 ~d2 ~d3 ~d4 ~d5 ~d6 ~(aux : Buf.data) ~ac ~a0 ~astep =
  let b = ref b0 and a = ref a0 and di = ref didx0 in
  for _ = 1 to n1 do
    let p = !b in
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get main p)
       +. (cn
           *. (Bigarray.Array1.unsafe_get main (p + d1)
               +. Bigarray.Array1.unsafe_get main (p + d2)
               +. Bigarray.Array1.unsafe_get main (p + d3)
               +. Bigarray.Array1.unsafe_get main (p + d4)
               +. Bigarray.Array1.unsafe_get main (p + d5)
               +. Bigarray.Array1.unsafe_get main (p + d6)))
       +. (ac *. Bigarray.Array1.unsafe_get aux !a));
    b := p + step;
    a := !a + astep;
    di := !di + dstep
  done
