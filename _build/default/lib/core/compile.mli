(** Stage compilation: from IR definitions to executable kernels.

    This plays the role of the paper's ISL-based code generation: each
    stage is turned once (at plan time) into a kernel that can be run over
    any rectangular region of any tile, reading producers through
    {!source} bindings supplied per tile.

    Stage definitions in GMG are linear combinations of loads with
    constant coefficients, so the compiler normalizes them into a
    {e linear-stencil} form executed by tight affine loops — per point the
    work is exactly one multiply-add per stencil term, mirroring the inner
    loops of the generated C in Fig. 8.  Anything non-linear falls back to
    a general expression interpreter. *)

type source = {
  data : Repro_grid.Buf.data;
  strides : int array;
  org : int array;  (** grid coordinate stored at [data.{0}] *)
}
(** A binding of a stage's storage (full array or scratchpad) for reads or
    writes: the value at grid coordinate [x] lives at
    [Σ (x_k − org_k)·strides_k]. *)

val source_index : source -> int array -> int

type term = { coef : float; pos : int; accs : Repro_ir.Expr.access array }
(** One linear-stencil term: [coef · producers.(pos)(access(x))]. *)

type case_kernel =
  | Lin of { base : float; terms : term array }
  | Gen of (source array -> int array -> float)
      (** general fallback: evaluate at a point given producer bindings *)

type case_t = {
  parity : int array option;  (** [Some p]: restrict to [x_k ≡ p_k (mod 2)] *)
  kernel : case_kernel;
}

type t = {
  func : Repro_ir.Func.t;
  producers : int array;  (** producer func ids, binding order for [srcs] *)
  boundary : float;
  cases : case_t list;
  run :
    srcs:source array -> dst:source -> interior:Repro_poly.Box.t ->
    region:Repro_poly.Box.t -> unit;
      (** Fills [dst] over [region]: points inside [interior] by the
          definition, the rest with the boundary value.  Re-entrant. *)
}

val compile :
  ?specialize:bool -> Repro_ir.Func.t -> params:(string -> float) -> t
(** [specialize] (default true) enables the walk-form inner loops;
    disabling it forces the generic per-term-cursor kernels (used by the
    codegen ablation).
    @raise Invalid_argument for input stages or unbound parameters. *)

val fill_rim :
  source -> region:Repro_poly.Box.t -> interior:Repro_poly.Box.t -> float ->
  unit
(** Writes the value to every point of [region] outside [interior] (used to
    prefill ghost layers of full arrays and modulo buffers). *)

val fill_box : source -> Repro_poly.Box.t -> float -> unit

val linearize :
  Repro_ir.Expr.t -> params:(string -> float) ->
  (float * (float * int * Repro_ir.Expr.access array) list) option
(** Normalization to [base + Σ coef·load]: returns terms keyed by
    (producer id, access); merges duplicate loads. Exposed for tests. *)

val eval_expr :
  Repro_ir.Expr.t -> params:(string -> float) ->
  lookup:(int -> int array -> float) -> int array -> float
(** Reference interpreter used by the fallback path and by tests:
    evaluates the expression at a point, resolving loads via [lookup]. *)
