open Repro_ir
open Repro_poly

type group = {
  members : int list;
  liveouts : int list;
  diamond : bool;
}

let liveouts_of pipeline ~members =
  List.filter
    (fun id ->
      match Pipeline.consumers pipeline id with
      | [] -> true  (* consumer-less stages are still materialized *)
      | consumers ->
        Pipeline.is_liveout pipeline id
        || List.exists (fun c -> not (List.mem c members)) consumers)
    members

let tile_sizes_for (opts : Options.t) ~dims =
  match dims with
  | 2 -> opts.Options.tile_2d
  | 3 -> opts.Options.tile_3d
  | 1 -> [| opts.Options.tile_2d.(1) |]
  | _ -> invalid_arg "Grouping.tile_sizes_for: unsupported rank"

(* Maximal chains of Smooth stages linked v_{t} -> v_{t+1}, of length >= 2:
   the candidates for diamond time tiling. *)
let smoother_chains pipeline =
  let funcs = Pipeline.funcs pipeline in
  let chains = ref [] in
  let in_chain = Hashtbl.create 16 in
  Array.iter
    (fun (f : Func.t) ->
      match f.Func.kind with
      | Func.Smooth { step = 0; total } when total >= 2 ->
        (* Follow the chain forward; it extends only while the current
           step's sole consumer is the next smoothing step (an extra
           consumer would need the intermediate value stored, which the
           diamond modulo buffers cannot provide). *)
        let rec follow (cur : Func.t) acc =
          match Pipeline.consumers pipeline cur.Func.id with
          | [ cid ] when not (Pipeline.is_liveout pipeline cur.Func.id) -> (
            let c = Pipeline.func pipeline cid in
            match c.Func.kind with
            | Func.Smooth { step = s; _ } when s > 0 ->
              follow c (c.Func.id :: acc)
            | Func.Smooth _ | Func.Input | Func.Pointwise
            | Func.Restriction | Func.Interpolation ->
              List.rev acc)
          | [] | _ :: _ -> List.rev acc
        in
        let chain = follow f [ f.Func.id ] in
        if List.length chain >= 2 then begin
          List.iter (fun id -> Hashtbl.replace in_chain id ()) chain;
          chains := chain :: !chains
        end
      | Func.Smooth _ | Func.Input | Func.Pointwise | Func.Restriction
      | Func.Interpolation ->
        ())
    funcs;
  (List.rev !chains, in_chain)

(* Union-find over group indices. *)
module Uf = struct
  let create n = Array.init n Fun.id

  let rec find t i = if t.(i) = i then i else (t.(i) <- find t t.(i); t.(i))

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.(ra) <- rb
end

let can_tile pipeline ~opts ~n ~members =
  let liveouts = liveouts_of pipeline ~members in
  match Regions.build pipeline ~n ~members ~liveouts with
  | Error _ -> false
  | Ok geom ->
    let dims = (Regions.reference geom).Regions.func.Func.dims in
    let tile_sizes = tile_sizes_for opts ~dims in
    (try Regions.redundancy geom ~tile_sizes <= opts.Options.overlap_threshold
     with Invalid_argument _ -> false)

let run pipeline ~(opts : Options.t) ~n =
  let funcs = Pipeline.funcs pipeline in
  let nfuncs = Array.length funcs in
  let diamond_chains, in_chain =
    match opts.Options.smoother with
    | Options.Diamond_smoother _ | Options.Skewed_smoother _ ->
      smoother_chains pipeline
    | Options.Overlapped_smoother -> ([], Hashtbl.create 1)
  in
  let uf = Uf.create nfuncs in
  (* fix diamond chains as their own groups *)
  List.iter
    (fun chain ->
      match chain with
      | [] -> ()
      | first :: rest -> List.iter (fun id -> Uf.union uf id first) rest)
    diamond_chains;
  let stage_ids =
    Array.to_list funcs
    |> List.filter_map (fun (f : Func.t) ->
           if Func.is_input f then None else Some f.Func.id)
  in
  let members_of root =
    List.filter (fun id -> Uf.find uf id = root) stage_ids
  in
  let mergeable id = not (Hashtbl.mem in_chain id) in
  if opts.Options.fuse then begin
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun id ->
          let root = Uf.find uf id in
          if root = id && mergeable id then begin
            let members = members_of root in
            if List.length members > 0 && List.for_all mergeable members
            then begin
              (* distinct consumer groups of this group *)
              let consumer_roots =
                List.concat_map
                  (fun m ->
                    List.filter_map
                      (fun c ->
                        let r = Uf.find uf c in
                        if r = root then None else Some r)
                      (Pipeline.consumers pipeline m))
                  members
                |> List.sort_uniq Int.compare
              in
              match consumer_roots with
              | [ c ] when List.for_all mergeable (members_of c) ->
                let merged =
                  List.sort_uniq Int.compare (members @ members_of c)
                in
                if
                  List.length merged <= opts.Options.group_size_limit
                  && can_tile pipeline ~opts ~n ~members:merged
                then begin
                  Uf.union uf root c;
                  changed := true
                end
              | [] | _ :: _ -> ()
            end
          end)
        stage_ids
    done
  end;
  (* collect groups *)
  let roots =
    List.sort_uniq Int.compare (List.map (Uf.find uf) stage_ids)
  in
  let raw_groups =
    List.map
      (fun root ->
        let members = members_of root in
        { members;
          liveouts = liveouts_of pipeline ~members;
          diamond =
            (match members with
             | m :: _ -> Hashtbl.mem in_chain m
             | [] -> false) })
      roots
  in
  (* topological order of the group DAG (Kahn) *)
  let idx_of = Hashtbl.create 16 in
  List.iteri
    (fun i g -> List.iter (fun m -> Hashtbl.replace idx_of m i) g.members)
    raw_groups;
  let garr = Array.of_list raw_groups in
  let ng = Array.length garr in
  let succs = Array.make ng [] and indeg = Array.make ng 0 in
  Array.iteri
    (fun gi g ->
      let outs =
        List.concat_map
          (fun m ->
            List.filter_map
              (fun c ->
                match Hashtbl.find_opt idx_of c with
                | Some ci when ci <> gi -> Some ci
                | Some _ | None -> None)
              (Pipeline.consumers pipeline m))
          g.members
        |> List.sort_uniq Int.compare
      in
      succs.(gi) <- outs;
      List.iter (fun ci -> indeg.(ci) <- indeg.(ci) + 1) outs)
    garr;
  let order = ref [] in
  let queue = Queue.create () in
  Array.iteri (fun gi d -> if d = 0 then Queue.add gi queue) indeg;
  while not (Queue.is_empty queue) do
    let gi = Queue.pop queue in
    order := gi :: !order;
    List.iter
      (fun ci ->
        indeg.(ci) <- indeg.(ci) - 1;
        if indeg.(ci) = 0 then Queue.add ci queue)
      succs.(gi)
  done;
  let order = List.rev !order in
  if List.length order <> ng then
    invalid_arg "Grouping.run: cyclic group graph";
  List.map (fun gi -> garr.(gi)) order
