(** Automatic grouping of stages for fusion + overlapped tiling (§3.1).

    The greedy heuristic of PolyMage, applied to multigrid DAGs: starting
    from singleton groups, a group is repeatedly merged into its unique
    consumer group when (a) the merged size stays within the grouping
    limit, (b) the members' resolutions are power-of-two scalable against
    the merged reference (so one tile space covers all of them), and
    (c) the redundant computation that overlapped tiling would pay for the
    merged group stays below the overlap threshold.  Stages with several
    consumer groups stay live-out (e.g. the last pre-smoothing step feeds
    both the residual and the later correction — exactly the group
    boundaries of Fig. 6).

    For the diamond-smoother variant, maximal chains of [Smooth] stages
    are carved out first as dedicated diamond groups and never merged. *)

type group = {
  members : int list;  (** ascending func ids = execution order *)
  liveouts : int list;  (** members read outside the group, and outputs *)
  diamond : bool;  (** executed by diamond time tiling, not overlapping *)
}

val run :
  Repro_ir.Pipeline.t -> opts:Options.t -> n:int -> group list
(** Groups in a valid execution (topological) order. *)

val liveouts_of :
  Repro_ir.Pipeline.t -> members:int list -> int list
(** Members whose value is read by a stage outside [members] or that are
    pipeline outputs. *)

val tile_sizes_for : Options.t -> dims:int -> int array
(** The configured overlapped-tile sizes for a given rank. *)
