let last_use_map ~ids ~time ~uses =
  let map = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let t =
        List.fold_left
          (fun acc u -> Int.max acc (time u))
          (time id) (uses id)
      in
      let cur = Option.value ~default:[] (Hashtbl.find_opt map t) in
      Hashtbl.replace map t (id :: cur))
    ids;
  map

let remap ~ids ~time ~last_use ~cls =
  let sorted =
    List.stable_sort (fun a b -> Int.compare (time a) (time b)) ids
  in
  let pools : ('c, int list) Hashtbl.t = Hashtbl.create 16 in
  let storage = Hashtbl.create 16 in
  let slot_count = ref 0 in
  (* (last_use, id) min-heap substitute: sorted association list *)
  let dying = ref [] in
  let free_dead ~before =
    let dead, alive = List.partition (fun (lu, _) -> lu < before) !dying in
    dying := alive;
    List.iter
      (fun (_, id) ->
        let c = cls id in
        let pool = Option.value ~default:[] (Hashtbl.find_opt pools c) in
        Hashtbl.replace pools c (Hashtbl.find storage id :: pool))
      dead
  in
  List.iter
    (fun id ->
      let t = time id in
      free_dead ~before:t;
      let c = cls id in
      (match Hashtbl.find_opt pools c with
       | Some (slot :: rest) ->
         Hashtbl.replace pools c rest;
         Hashtbl.replace storage id slot
       | Some [] | None ->
         Hashtbl.replace storage id !slot_count;
         incr slot_count);
      dying := (last_use id, id) :: !dying)
    sorted;
  (storage, !slot_count)

let no_reuse ~ids =
  let storage = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace storage id i) ids;
  (storage, List.length ids)
