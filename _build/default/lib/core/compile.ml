open Repro_ir
open Repro_poly
module Buf = Repro_grid.Buf

type source = { data : Buf.data; strides : int array; org : int array }

let source_index src coords =
  let acc = ref 0 in
  Array.iteri
    (fun k s -> acc := !acc + ((coords.(k) - src.org.(k)) * s))
    src.strides;
  !acc

type term = { coef : float; pos : int; accs : Expr.access array }

type case_kernel =
  | Lin of { base : float; terms : term array }
  | Gen of (source array -> int array -> float)

type case_t = {
  parity : int array option;
  kernel : case_kernel;
}

type t = {
  func : Func.t;
  producers : int array;
  boundary : float;
  cases : case_t list;
  run :
    srcs:source array -> dst:source -> interior:Box.t -> region:Box.t -> unit;
}

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let apply_access (a : Expr.access) x = fdiv ((a.mul * x) + a.add) a.den + a.off

(* ------------------------------------------------------------------ *)
(* Linearization                                                       *)

let linearize e ~params =
  (* terms as (func id, accesses) -> coef, plus a constant *)
  let exception Nonlinear in
  let rec go e =
    (* returns (constant, term list) *)
    match e with
    | Expr.Const c -> (c, [])
    | Expr.Param s -> (params s, [])
    | Expr.Coord _ -> raise Nonlinear
    | Expr.Load (f, a) -> (0.0, [ (1.0, f, a) ])
    | Expr.Unop (Neg, x) ->
      let c, ts = go x in
      (-.c, List.map (fun (w, f, a) -> (-.w, f, a)) ts)
    | Expr.Unop ((Abs | Sqrt), _) -> raise Nonlinear
    | Expr.Binop (Add, x, y) ->
      let cx, tx = go x and cy, ty = go y in
      (cx +. cy, tx @ ty)
    | Expr.Binop (Sub, x, y) ->
      let cx, tx = go x and cy, ty = go y in
      (cx -. cy, tx @ List.map (fun (w, f, a) -> (-.w, f, a)) ty)
    | Expr.Binop (Mul, x, y) -> (
      let cx, tx = go x and cy, ty = go y in
      match (tx, ty) with
      | [], _ -> (cx *. cy, List.map (fun (w, f, a) -> (cx *. w, f, a)) ty)
      | _, [] -> (cx *. cy, List.map (fun (w, f, a) -> (cy *. w, f, a)) tx)
      | _ -> raise Nonlinear)
    | Expr.Binop (Div, x, y) -> (
      let cx, tx = go x and cy, ty = go y in
      match ty with
      | [] ->
        if cy = 0.0 then raise Nonlinear
        else (cx /. cy, List.map (fun (w, f, a) -> (w /. cy, f, a)) tx)
      | _ -> raise Nonlinear)
    | Expr.Binop ((Min | Max), _, _) -> raise Nonlinear
  in
  match go e with
  | c, terms ->
    (* merge duplicate (func, access) terms *)
    let merged = ref [] in
    List.iter
      (fun (w, f, a) ->
        match
          List.find_opt (fun (_, f', a') -> f = f' && a = a') !merged
        with
        | Some (w', _, _) ->
          merged :=
            List.map
              (fun (w0, f0, a0) ->
                if f0 = f && a0 = a then (w0 +. w, f0, a0) else (w0, f0, a0))
              !merged;
          ignore w'
        | None -> merged := !merged @ [ (w, f, a) ])
      terms;
    Some (c, !merged)
  | exception Nonlinear -> None

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                               *)

let rec eval_expr e ~params ~lookup coords =
  match e with
  | Expr.Const c -> c
  | Expr.Param s -> params s
  | Expr.Coord k -> float_of_int coords.(k)
  | Expr.Load (f, accs) ->
    let d = Array.length accs in
    let pc = Array.make d 0 in
    for k = 0 to d - 1 do
      pc.(k) <- apply_access accs.(k) coords.(k)
    done;
    lookup f pc
  | Expr.Unop (Neg, x) -> -.eval_expr x ~params ~lookup coords
  | Expr.Unop (Abs, x) -> Float.abs (eval_expr x ~params ~lookup coords)
  | Expr.Unop (Sqrt, x) -> sqrt (eval_expr x ~params ~lookup coords)
  | Expr.Binop (op, x, y) ->
    let a = eval_expr x ~params ~lookup coords
    and b = eval_expr y ~params ~lookup coords in
    (match op with
     | Add -> a +. b
     | Sub -> a -. b
     | Mul -> a *. b
     | Div -> a /. b
     | Min -> Float.min a b
     | Max -> Float.max a b)

(* ------------------------------------------------------------------ *)
(* Region iteration helpers                                            *)

(* First x >= lo with x ≡ p (mod m). *)
let align_lo lo p m = lo + (((p - lo) mod m) + m) mod m

let fill_box (dst : source) (b : Box.t) v =
  if not (Box.is_empty b) then begin
    let d = Box.rank b in
    match d with
    | 2 ->
      for i = b.Box.lo.(0) to b.Box.hi.(0) do
        let base =
          ((i - dst.org.(0)) * dst.strides.(0))
          + ((b.Box.lo.(1) - dst.org.(1)) * dst.strides.(1))
        in
        let s = dst.strides.(1) in
        for c = 0 to b.Box.hi.(1) - b.Box.lo.(1) do
          Bigarray.Array1.unsafe_set dst.data (base + (c * s)) v
        done
      done
    | 3 ->
      for i = b.Box.lo.(0) to b.Box.hi.(0) do
        for j = b.Box.lo.(1) to b.Box.hi.(1) do
          let base =
            ((i - dst.org.(0)) * dst.strides.(0))
            + ((j - dst.org.(1)) * dst.strides.(1))
            + ((b.Box.lo.(2) - dst.org.(2)) * dst.strides.(2))
          in
          let s = dst.strides.(2) in
          for c = 0 to b.Box.hi.(2) - b.Box.lo.(2) do
            Bigarray.Array1.unsafe_set dst.data (base + (c * s)) v
          done
        done
      done
    | _ ->
      let idx = Array.copy b.Box.lo in
      let rec go k =
        if k = d then
          Bigarray.Array1.unsafe_set dst.data (source_index dst idx) v
        else
          for x = b.Box.lo.(k) to b.Box.hi.(k) do
            idx.(k) <- x;
            go (k + 1)
          done
      in
      go 0
  end

(* Fill region \ interior with the boundary value: peel one slab per face. *)
let fill_rim dst ~region ~interior v =
  let d = Box.rank region in
  let cur = ref region in
  for k = 0 to d - 1 do
    let c = !cur in
    if not (Box.is_empty c) then begin
      let ilo = interior.Box.lo.(k) and ihi = interior.Box.hi.(k) in
      if c.Box.lo.(k) < ilo then begin
        let hi = Array.copy c.Box.hi in
        hi.(k) <- Int.min c.Box.hi.(k) (ilo - 1);
        fill_box dst (Box.v ~lo:c.Box.lo ~hi) v
      end;
      if c.Box.hi.(k) > ihi then begin
        let lo = Array.copy c.Box.lo in
        lo.(k) <- Int.max c.Box.lo.(k) (ihi + 1);
        fill_box dst (Box.v ~lo ~hi:c.Box.hi) v
      end;
      let lo = Array.copy c.Box.lo and hi = Array.copy c.Box.hi in
      lo.(k) <- Int.max lo.(k) ilo;
      hi.(k) <- Int.min hi.(k) ihi;
      cur := Box.v ~lo ~hi
    end
  done

(* ------------------------------------------------------------------ *)
(* Linear-stencil execution                                            *)

(* A linear case is executable by affine index walks iff every access
   division is exact on the case's parity lattice. *)
let case_is_affine ~parity terms =
  Array.for_all
    (fun t ->
      Array.for_all
        (fun k ->
          let a = t.accs.(k) in
          match a.Expr.den with
          | 1 -> true
          | 2 -> (
            match parity with
            | None -> false
            | Some p -> ((a.Expr.mul * p.(k)) + a.Expr.add) mod 2 = 0)
          | _ -> false)
        (Array.init (Array.length t.accs) Fun.id))
    terms

(* Innermost-dimension walks, specialized on the term count so that
   coefficients, buffers and cursors live in registers.  [start.(t)] is
   term [t]'s buffer index at the first point; [step.(t)] its per-point
   increment.  The destination walks from [didx0] by [dstep]. *)

let inner_generic ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~coef ~data
    ~start ~step =
  let nt = Array.length coef in
  let cur = Array.copy start in
  let di = ref didx0 in
  for _ = 1 to n1 do
    let acc = ref base in
    for t = 0 to nt - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get coef t
            *. Bigarray.Array1.unsafe_get (Array.unsafe_get data t)
                 (Array.unsafe_get cur t));
      Array.unsafe_set cur t (Array.unsafe_get cur t + Array.unsafe_get step t)
    done;
    Bigarray.Array1.unsafe_set dst !di !acc;
    di := !di + dstep
  done

let inner1 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~coef ~data ~start ~step =
  let c0 = Array.unsafe_get coef 0 in
  let d0 : Buf.data = Array.unsafe_get data 0 in
  let s0 = Array.unsafe_get step 0 in
  let i0 = ref (Array.unsafe_get start 0) in
  let di = ref didx0 in
  for _ = 1 to n1 do
    Bigarray.Array1.unsafe_set dst !di
      (base +. (c0 *. Bigarray.Array1.unsafe_get d0 !i0));
    i0 := !i0 + s0;
    di := !di + dstep
  done

let inner2 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~coef ~data ~start ~step =
  let c0 = Array.unsafe_get coef 0 and c1 = Array.unsafe_get coef 1 in
  let d0 : Buf.data = Array.unsafe_get data 0 in
  let d1 : Buf.data = Array.unsafe_get data 1 in
  let s0 = Array.unsafe_get step 0 and s1 = Array.unsafe_get step 1 in
  let i0 = ref (Array.unsafe_get start 0) in
  let i1 = ref (Array.unsafe_get start 1) in
  let di = ref didx0 in
  for _ = 1 to n1 do
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get d0 !i0)
       +. (c1 *. Bigarray.Array1.unsafe_get d1 !i1));
    i0 := !i0 + s0;
    i1 := !i1 + s1;
    di := !di + dstep
  done

let inner3 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~coef ~data ~start ~step =
  let c0 = Array.unsafe_get coef 0
  and c1 = Array.unsafe_get coef 1
  and c2 = Array.unsafe_get coef 2 in
  let d0 : Buf.data = Array.unsafe_get data 0 in
  let d1 : Buf.data = Array.unsafe_get data 1 in
  let d2 : Buf.data = Array.unsafe_get data 2 in
  let s0 = Array.unsafe_get step 0
  and s1 = Array.unsafe_get step 1
  and s2 = Array.unsafe_get step 2 in
  let i0 = ref (Array.unsafe_get start 0) in
  let i1 = ref (Array.unsafe_get start 1) in
  let i2 = ref (Array.unsafe_get start 2) in
  let di = ref didx0 in
  for _ = 1 to n1 do
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get d0 !i0)
       +. (c1 *. Bigarray.Array1.unsafe_get d1 !i1)
       +. (c2 *. Bigarray.Array1.unsafe_get d2 !i2));
    i0 := !i0 + s0;
    i1 := !i1 + s1;
    i2 := !i2 + s2;
    di := !di + dstep
  done

let inner4 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~coef ~data ~start ~step =
  let c0 = Array.unsafe_get coef 0
  and c1 = Array.unsafe_get coef 1
  and c2 = Array.unsafe_get coef 2
  and c3 = Array.unsafe_get coef 3 in
  let d0 : Buf.data = Array.unsafe_get data 0 in
  let d1 : Buf.data = Array.unsafe_get data 1 in
  let d2 : Buf.data = Array.unsafe_get data 2 in
  let d3 : Buf.data = Array.unsafe_get data 3 in
  let s0 = Array.unsafe_get step 0
  and s1 = Array.unsafe_get step 1
  and s2 = Array.unsafe_get step 2
  and s3 = Array.unsafe_get step 3 in
  let i0 = ref (Array.unsafe_get start 0) in
  let i1 = ref (Array.unsafe_get start 1) in
  let i2 = ref (Array.unsafe_get start 2) in
  let i3 = ref (Array.unsafe_get start 3) in
  let di = ref didx0 in
  for _ = 1 to n1 do
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get d0 !i0)
       +. (c1 *. Bigarray.Array1.unsafe_get d1 !i1)
       +. (c2 *. Bigarray.Array1.unsafe_get d2 !i2)
       +. (c3 *. Bigarray.Array1.unsafe_get d3 !i3));
    i0 := !i0 + s0;
    i1 := !i1 + s1;
    i2 := !i2 + s2;
    i3 := !i3 + s3;
    di := !di + dstep
  done

let inner6 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~coef ~data ~start ~step =
  let c0 = Array.unsafe_get coef 0
  and c1 = Array.unsafe_get coef 1
  and c2 = Array.unsafe_get coef 2
  and c3 = Array.unsafe_get coef 3
  and c4 = Array.unsafe_get coef 4
  and c5 = Array.unsafe_get coef 5 in
  let d0 : Buf.data = Array.unsafe_get data 0 in
  let d1 : Buf.data = Array.unsafe_get data 1 in
  let d2 : Buf.data = Array.unsafe_get data 2 in
  let d3 : Buf.data = Array.unsafe_get data 3 in
  let d4 : Buf.data = Array.unsafe_get data 4 in
  let d5 : Buf.data = Array.unsafe_get data 5 in
  let s0 = Array.unsafe_get step 0
  and s1 = Array.unsafe_get step 1
  and s2 = Array.unsafe_get step 2
  and s3 = Array.unsafe_get step 3
  and s4 = Array.unsafe_get step 4
  and s5 = Array.unsafe_get step 5 in
  let i0 = ref (Array.unsafe_get start 0) in
  let i1 = ref (Array.unsafe_get start 1) in
  let i2 = ref (Array.unsafe_get start 2) in
  let i3 = ref (Array.unsafe_get start 3) in
  let i4 = ref (Array.unsafe_get start 4) in
  let i5 = ref (Array.unsafe_get start 5) in
  let di = ref didx0 in
  for _ = 1 to n1 do
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get d0 !i0)
       +. (c1 *. Bigarray.Array1.unsafe_get d1 !i1)
       +. (c2 *. Bigarray.Array1.unsafe_get d2 !i2)
       +. (c3 *. Bigarray.Array1.unsafe_get d3 !i3)
       +. (c4 *. Bigarray.Array1.unsafe_get d4 !i4)
       +. (c5 *. Bigarray.Array1.unsafe_get d5 !i5));
    i0 := !i0 + s0;
    i1 := !i1 + s1;
    i2 := !i2 + s2;
    i3 := !i3 + s3;
    i4 := !i4 + s4;
    i5 := !i5 + s5;
    di := !di + dstep
  done

let inner8 ~n1 ~base ~(dst : Buf.data) ~didx0 ~dstep ~coef ~data ~start ~step =
  let c0 = Array.unsafe_get coef 0
  and c1 = Array.unsafe_get coef 1
  and c2 = Array.unsafe_get coef 2
  and c3 = Array.unsafe_get coef 3
  and c4 = Array.unsafe_get coef 4
  and c5 = Array.unsafe_get coef 5
  and c6 = Array.unsafe_get coef 6
  and c7 = Array.unsafe_get coef 7 in
  let d0 : Buf.data = Array.unsafe_get data 0 in
  let d1 : Buf.data = Array.unsafe_get data 1 in
  let d2 : Buf.data = Array.unsafe_get data 2 in
  let d3 : Buf.data = Array.unsafe_get data 3 in
  let d4 : Buf.data = Array.unsafe_get data 4 in
  let d5 : Buf.data = Array.unsafe_get data 5 in
  let d6 : Buf.data = Array.unsafe_get data 6 in
  let d7 : Buf.data = Array.unsafe_get data 7 in
  let s0 = Array.unsafe_get step 0
  and s1 = Array.unsafe_get step 1
  and s2 = Array.unsafe_get step 2
  and s3 = Array.unsafe_get step 3
  and s4 = Array.unsafe_get step 4
  and s5 = Array.unsafe_get step 5
  and s6 = Array.unsafe_get step 6
  and s7 = Array.unsafe_get step 7 in
  let i0 = ref (Array.unsafe_get start 0) in
  let i1 = ref (Array.unsafe_get start 1) in
  let i2 = ref (Array.unsafe_get start 2) in
  let i3 = ref (Array.unsafe_get start 3) in
  let i4 = ref (Array.unsafe_get start 4) in
  let i5 = ref (Array.unsafe_get start 5) in
  let i6 = ref (Array.unsafe_get start 6) in
  let i7 = ref (Array.unsafe_get start 7) in
  let di = ref didx0 in
  for _ = 1 to n1 do
    Bigarray.Array1.unsafe_set dst !di
      (base
       +. (c0 *. Bigarray.Array1.unsafe_get d0 !i0)
       +. (c1 *. Bigarray.Array1.unsafe_get d1 !i1)
       +. (c2 *. Bigarray.Array1.unsafe_get d2 !i2)
       +. (c3 *. Bigarray.Array1.unsafe_get d3 !i3)
       +. (c4 *. Bigarray.Array1.unsafe_get d4 !i4)
       +. (c5 *. Bigarray.Array1.unsafe_get d5 !i5)
       +. (c6 *. Bigarray.Array1.unsafe_get d6 !i6)
       +. (c7 *. Bigarray.Array1.unsafe_get d7 !i7));
    i0 := !i0 + s0;
    i1 := !i1 + s1;
    i2 := !i2 + s2;
    i3 := !i3 + s3;
    i4 := !i4 + s4;
    i5 := !i5 + s5;
    i6 := !i6 + s6;
    i7 := !i7 + s7;
    di := !di + dstep
  done

let inner_for nt =
  match nt with
  | 1 -> inner1
  | 2 -> inner2
  | 3 -> inner3
  | 4 -> inner4
  | 5 | 6 -> inner6  (* padded to 6 by the caller *)
  | 7 | 8 -> inner8  (* padded to 8 by the caller *)
  | _ -> inner_generic

(* Pad term metadata so a padded specialization reads harmless data:
   coefficient 0 on the first buffer at index 0 with step 0. *)
let padded_size nt =
  match nt with 5 -> 6 | 7 -> 8 | _ -> nt

(* Iterate the outer dimensions; fill [cur] with each term's buffer index
   at the row start and hand the destination row index to [run_row]. *)
let iterate_rows ~d ~counts ~np ~(tbase : int array) ~tstep ~dbase ~dstep
    ~(cur : int array) ~run_row =
  match d with
  | 1 ->
    Array.blit tbase 0 cur 0 np;
    run_row dbase
  | 2 ->
    for r = 0 to counts.(0) - 1 do
      for t = 0 to np - 1 do
        cur.(t) <- tbase.(t) + (r * tstep.(t).(0))
      done;
      run_row (dbase + (r * dstep.(0)))
    done
  | 3 ->
    for q = 0 to counts.(0) - 1 do
      for r = 0 to counts.(1) - 1 do
        for t = 0 to np - 1 do
          cur.(t) <- tbase.(t) + (q * tstep.(t).(0)) + (r * tstep.(t).(1))
        done;
        run_row (dbase + (q * dstep.(0)) + (r * dstep.(1)))
      done
    done
  | _ ->
    let total_outer = ref 1 in
    for k = 0 to d - 2 do
      total_outer := !total_outer * counts.(k)
    done;
    for flat = 0 to !total_outer - 1 do
      let rem = ref flat in
      let didx = ref dbase in
      for t = 0 to np - 1 do
        cur.(t) <- tbase.(t)
      done;
      for k = d - 2 downto 0 do
        let r = !rem mod counts.(k) in
        rem := !rem / counts.(k);
        didx := !didx + (r * dstep.(k));
        for t = 0 to np - 1 do
          cur.(t) <- cur.(t) + (r * tstep.(t).(k))
        done
      done;
      run_row !didx
    done

let run_lin_terms ~specialize ~(srcs : source array) ~(dst : source) ~box ~d
    ~m ~start ~counts ~base ~(terms : term array) =
  ignore box;
  let nt = Array.length terms in
  let np = padded_size nt in
  (* index of term t at the lattice origin, and per-dim lattice steps *)
  let tstep = Array.make_matrix np d 0 in
  let tbase = Array.make np 0 in
  let coef = Array.make np 0.0 in
  let data = Array.make np srcs.(terms.(0).pos).data in
  for t = 0 to nt - 1 do
    let src = srcs.(terms.(t).pos) in
    let b = ref 0 in
    for k = 0 to d - 1 do
      let a = terms.(t).accs.(k) in
      b := !b + ((apply_access a start.(k) - src.org.(k)) * src.strides.(k));
      tstep.(t).(k) <- a.Expr.mul * m / a.Expr.den * src.strides.(k)
    done;
    tbase.(t) <- !b;
    coef.(t) <- terms.(t).coef;
    data.(t) <- src.data
  done;
  let dstep = Array.init d (fun k -> m * dst.strides.(k)) in
  let dbase = ref 0 in
  for k = 0 to d - 1 do
    dbase := !dbase + ((start.(k) - dst.org.(k)) * dst.strides.(k))
  done;
  let n1 = counts.(d - 1) in
  let inner_dstep = dstep.(d - 1) in
  let step = Array.init np (fun t -> tstep.(t).(d - 1)) in
  let cur = Array.make np 0 in
  (* Walk detection: the largest set of terms sharing one buffer and one
     inner-dimension step becomes the main walk (one cursor, constant
     deltas — the register shape of the generated C); at most one further
     term rides along as an auxiliary stream.  Anything else falls back to
     the per-term-cursor kernels. *)
  let main_idx =
    if nt = 0 || not specialize then [||]
    else begin
      let best = ref [||] in
      for t = 0 to nt - 1 do
        let group = ref [] in
        for u = nt - 1 downto 0 do
          if data.(u) == data.(t) && step.(u) = step.(t) then
            group := u :: !group
        done;
        let g = Array.of_list !group in
        if Array.length g > Array.length !best then best := g
      done;
      !best
    end
  in
  let k_main = Array.length main_idx in
  let use_walk = k_main >= 1 && nt - k_main <= 1 in
  if use_walk then begin
    let aux_idx =
      let in_main u = Array.exists (fun x -> x = u) main_idx in
      let r = ref (-1) in
      for u = 0 to nt - 1 do
        if not (in_main u) then r := u
      done;
      !r
    in
    let m0 = main_idx.(0) in
    let main = data.(m0) in
    let mstep = step.(m0) in
    let wcoef = Array.map (fun t -> coef.(t)) main_idx in
    let wdelta = Array.make k_main 0 in
    (* symmetric shapes: one centre + (k-1) equal-coefficient neighbours
       (Jacobi / residual stages); computed once per region *)
    let sym_split =
      if k_main < 3 then None
      else begin
        let counts = Hashtbl.create 4 in
        Array.iter
          (fun w ->
            Hashtbl.replace counts w
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts w)))
          wcoef;
        if Hashtbl.length counts <> 2 then None
        else begin
          let singleton = ref None and bulk = ref None in
          Hashtbl.iter
            (fun w n ->
              if n = 1 then singleton := Some w
              else if n = k_main - 1 then bulk := Some w)
            counts;
          match (!singleton, !bulk) with
          | Some c0, Some cn ->
            (* index of the centre term *)
            let ci = ref 0 in
            Array.iteri (fun i w -> if w = c0 then ci := i) wcoef;
            Some (c0, cn, !ci)
          | _ -> None
        end
      end
    in
    let neighbours_of ci k =
      Array.to_list (Array.init k Fun.id)
      |> List.filter (fun i -> i <> ci)
      |> Array.of_list
    in
    let run_row didx0 =
      let b0 = cur.(m0) in
      for t = 1 to k_main - 1 do
        wdelta.(t) <- cur.(main_idx.(t)) - b0
      done;
      let aux, ac, a0, astep =
        if aux_idx >= 0 then
          (data.(aux_idx), coef.(aux_idx), cur.(aux_idx), step.(aux_idx))
        else (main, 0.0, 0, 0)
      in
      let c t = wcoef.(t) and dl t = wdelta.(t) in
      match (k_main, sym_split) with
      | 5, Some (c0, cn, ci) ->
        let nb = neighbours_of ci 5 in
        let bc = cur.(main_idx.(ci)) in
        Walks.sym4 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main
          ~b0:bc ~step:mstep ~c0 ~cn
          ~d1:(cur.(main_idx.(nb.(0))) - bc)
          ~d2:(cur.(main_idx.(nb.(1))) - bc)
          ~d3:(cur.(main_idx.(nb.(2))) - bc)
          ~d4:(cur.(main_idx.(nb.(3))) - bc)
          ~aux ~ac ~a0 ~astep
      | 7, Some (c0, cn, ci) ->
        let nb = neighbours_of ci 7 in
        let bc = cur.(main_idx.(ci)) in
        Walks.sym6 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main
          ~b0:bc ~step:mstep ~c0 ~cn
          ~d1:(cur.(main_idx.(nb.(0))) - bc)
          ~d2:(cur.(main_idx.(nb.(1))) - bc)
          ~d3:(cur.(main_idx.(nb.(2))) - bc)
          ~d4:(cur.(main_idx.(nb.(3))) - bc)
          ~d5:(cur.(main_idx.(nb.(4))) - bc)
          ~d6:(cur.(main_idx.(nb.(5))) - bc)
          ~aux ~ac ~a0 ~astep
      | 1, _ ->
        Walks.k1 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~aux ~ac ~a0 ~astep
      | 2, _ ->
        Walks.k2 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~aux ~ac ~a0 ~astep
      | 3, _ ->
        Walks.k3 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~c2:(c 2) ~d2:(dl 2)
          ~aux ~ac ~a0 ~astep
      | 4, _ ->
        Walks.k4 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~c2:(c 2) ~d2:(dl 2)
          ~c3:(c 3) ~d3:(dl 3) ~aux ~ac ~a0 ~astep
      | 5, _ ->
        Walks.k5 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~c2:(c 2) ~d2:(dl 2)
          ~c3:(c 3) ~d3:(dl 3) ~c4:(c 4) ~d4:(dl 4) ~aux ~ac ~a0 ~astep
      | 6, _ ->
        Walks.k6 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~c2:(c 2) ~d2:(dl 2)
          ~c3:(c 3) ~d3:(dl 3) ~c4:(c 4) ~d4:(dl 4) ~c5:(c 5) ~d5:(dl 5)
          ~aux ~ac ~a0 ~astep
      | 7, _ ->
        Walks.k7 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~c2:(c 2) ~d2:(dl 2)
          ~c3:(c 3) ~d3:(dl 3) ~c4:(c 4) ~d4:(dl 4) ~c5:(c 5) ~d5:(dl 5)
          ~c6:(c 6) ~d6:(dl 6) ~aux ~ac ~a0 ~astep
      | 8, _ ->
        Walks.k8 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~c2:(c 2) ~d2:(dl 2)
          ~c3:(c 3) ~d3:(dl 3) ~c4:(c 4) ~d4:(dl 4) ~c5:(c 5) ~d5:(dl 5)
          ~c6:(c 6) ~d6:(dl 6) ~c7:(c 7) ~d7:(dl 7) ~aux ~ac ~a0 ~astep
      | 9, _ ->
        Walks.k9 ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~c0:(c 0) ~c1:(c 1) ~d1:(dl 1) ~c2:(c 2) ~d2:(dl 2)
          ~c3:(c 3) ~d3:(dl 3) ~c4:(c 4) ~d4:(dl 4) ~c5:(c 5) ~d5:(dl 5)
          ~c6:(c 6) ~d6:(dl 6) ~c7:(c 7) ~d7:(dl 7) ~c8:(c 8) ~d8:(dl 8)
          ~aux ~ac ~a0 ~astep
      | _, _ ->
        Walks.kn ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~main ~b0
          ~step:mstep ~coef:wcoef ~delta:wdelta ~aux ~ac ~a0 ~astep
    in
    iterate_rows ~d ~counts ~np ~tbase ~tstep ~dbase:!dbase ~dstep ~cur
      ~run_row
  end
  else begin
    let inner = inner_for np in
    let run_row didx0 =
      inner ~n1 ~base ~dst:dst.data ~didx0 ~dstep:inner_dstep ~coef ~data
        ~start:cur ~step
    in
    iterate_rows ~d ~counts ~np ~tbase ~tstep ~dbase:!dbase ~dstep ~cur
      ~run_row
  end

(* Iterate the parity sub-lattice of [box]; for each point run the terms.
   [m] = 1 (no parity) or 2. *)
let run_lin ~specialize ~(srcs : source array) ~(dst : source) ~box ~parity
    ~base ~(terms : term array) =
  if not (Box.is_empty box) then begin
    let d = Box.rank box in
    let m = match parity with None -> 1 | Some _ -> 2 in
    let start = Array.copy box.Box.lo in
    (match parity with
     | None -> ()
     | Some p ->
       for k = 0 to d - 1 do
         start.(k) <- align_lo box.Box.lo.(k) p.(k) m
       done);
    let counts =
      Array.init d (fun k ->
          if start.(k) > box.Box.hi.(k) then 0
          else ((box.Box.hi.(k) - start.(k)) / m) + 1)
    in
    if Array.for_all (fun c -> c > 0) counts then begin
      let nt = Array.length terms in
      if nt = 0 then begin
        (* constant definition: applies to the whole (sub-)lattice *)
        if m = 1 then fill_box dst (Box.v ~lo:start ~hi:box.Box.hi) base
        else begin
          let idx = Array.copy start in
          let rec go k =
            if k = d then
              Bigarray.Array1.unsafe_set dst.data (source_index dst idx) base
            else begin
              let x = ref start.(k) in
              while !x <= box.Box.hi.(k) do
                idx.(k) <- !x;
                go (k + 1);
                x := !x + m
              done
            end
          in
          go 0
        end
      end
      else
        run_lin_terms ~specialize ~srcs ~dst ~box ~d ~m ~start ~counts ~base
          ~terms
    end
  end

(* General fallback: per-point interpretation. *)
let run_gen ~(srcs : source array) ~(dst : source) ~box ~parity ~eval
    ~producers =
  if not (Box.is_empty box) then begin
    let d = Box.rank box in
    let m = match parity with None -> 1 | Some _ -> 2 in
    let start = Array.copy box.Box.lo in
    (match parity with
     | None -> ()
     | Some p ->
       for k = 0 to d - 1 do
         start.(k) <- align_lo box.Box.lo.(k) p.(k) m
       done);
    ignore producers;
    let idx = Array.copy start in
    let rec go k =
      if k = d then
        Bigarray.Array1.unsafe_set dst.data (source_index dst idx)
          (eval srcs idx)
      else begin
        let x = ref start.(k) in
        while !x <= box.Box.hi.(k) do
          idx.(k) <- !x;
          go (k + 1);
          x := !x + m
        done
      end
    in
    if Array.for_all2 (fun s h -> s <= h) start box.Box.hi then go 0
  end

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

let compile ?(specialize = true) (f : Func.t) ~params =
  (match f.Func.kind with
   | Func.Input -> invalid_arg "Compile.compile: cannot compile an input"
   | Func.Pointwise | Func.Smooth _ | Func.Restriction | Func.Interpolation ->
     ());
  let boundary =
    match f.Func.boundary with
    | Func.Dirichlet v -> v
    | Func.Ghost_input -> invalid_arg "Compile.compile: ghost-input stage"
  in
  (* producer binding order: sorted ids *)
  let producers = Array.of_list (Func.producers f) in
  let pos_of id =
    let rec find i =
      if i >= Array.length producers then
        invalid_arg "Compile.compile: unknown producer"
      else if producers.(i) = id then i
      else find (i + 1)
    in
    find 0
  in
  let exprs_with_parity =
    match f.Func.defn with
    | Func.Undefined -> []
    | Func.Def e -> [ (None, e) ]
    | Func.Parity es ->
      List.init (Array.length es) (fun p ->
          let bits = Array.init f.Func.dims (fun k -> (p lsr k) land 1) in
          (Some bits, es.(p)))
  in
  let mk_case (parity, e) =
    let kernel =
      match linearize e ~params with
      | Some (base, raw_terms) ->
        let terms =
          Array.of_list
            (List.map (fun (w, fid, a) -> { coef = w; pos = pos_of fid; accs = a })
               raw_terms)
        in
        if case_is_affine ~parity terms then Lin { base; terms }
        else
          Gen
            (fun srcs coords ->
              eval_expr e ~params
                ~lookup:(fun fid pc ->
                  let src = srcs.(pos_of fid) in
                  Bigarray.Array1.unsafe_get src.data (source_index src pc))
                coords)
      | None ->
        Gen
          (fun srcs coords ->
            eval_expr e ~params
              ~lookup:(fun fid pc ->
                let src = srcs.(pos_of fid) in
                Bigarray.Array1.unsafe_get src.data (source_index src pc))
              coords)
    in
    { parity; kernel }
  in
  let cases = List.map mk_case exprs_with_parity in
  let run ~srcs ~dst ~interior ~region =
    if not (Box.is_empty region) then begin
      if Array.length srcs <> Array.length producers then
        invalid_arg "Compile.run: binding count mismatch";
      fill_rim dst ~region ~interior boundary;
      let inner = Box.inter region interior in
      List.iter
        (fun c ->
          match c.kernel with
          | Lin { base; terms } ->
            run_lin ~specialize ~srcs ~dst ~box:inner ~parity:c.parity ~base
              ~terms
          | Gen eval ->
            run_gen ~srcs ~dst ~box:inner ~parity:c.parity ~eval ~producers)
        cases
    end
  in
  { func = f; producers; boundary; cases; run }
