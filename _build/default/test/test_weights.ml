open Repro_ir

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-12))

let test_w1 () =
  let w = Weights.w1 [| 1.; 2.; 1. |] in
  check_int "dims" 1 (Weights.dims w);
  Alcotest.(check (array int)) "extent" [| 3 |] (Weights.extent w);
  Alcotest.(check (array int)) "default centre" [| 1 |] (Weights.center w);
  check_int "terms" 3 (List.length (Weights.terms w));
  check_int "radius" 1 (Weights.radius w)

let test_w1_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Weights.w1: empty")
    (fun () -> ignore (Weights.w1 [||]))

let test_w2_offsets () =
  let w =
    Weights.w2 [| [| 0.; -1.; 0. |]; [| -1.; 4.; -1. |]; [| 0.; -1.; 0. |] |]
  in
  let terms = Weights.terms w in
  check_int "zero weights dropped" 5 (List.length terms);
  let centre = List.assoc [| 0; 0 |] (List.map (fun (o, v) -> (o, v)) terms) in
  check_float "centre weight" 4.0 centre;
  check_float "north" (-1.0)
    (List.assoc [| -1; 0 |] (List.map (fun (o, v) -> (o, v)) terms))

let test_w2_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Weights.w2: ragged")
    (fun () -> ignore (Weights.w2 [| [| 1.; 2. |]; [| 1. |] |]))

let test_custom_center () =
  (* the paper's example: Stencil(f, (x,y), [[0,1],[-1,2]], centre default
     (m/2, m/2) = (1,1)) *)
  let w = Weights.w2 [| [| 0.; 1. |]; [| -1.; 2. |] |] in
  Alcotest.(check (array int)) "default centre" [| 1; 1 |] (Weights.center w);
  let terms = List.map (fun (o, v) -> (o, v)) (Weights.terms w) in
  check_float "f(x-1,y)" 1.0 (List.assoc [| -1; 0 |] terms);
  check_float "f(x,y-1)" (-1.0) (List.assoc [| 0; -1 |] terms);
  check_float "f(x,y)" 2.0 (List.assoc [| 0; 0 |] terms);
  (* custom centre (0,0) shifts all offsets positive *)
  let w0 = Weights.w2 ~center:[| 0; 0 |] [| [| 0.; 1. |]; [| -1.; 2. |] |] in
  let terms0 = List.map (fun (o, v) -> (o, v)) (Weights.terms w0) in
  check_float "f(x,y+1)" 1.0 (List.assoc [| 0; 1 |] terms0);
  check_float "f(x+1,y+1)" 2.0 (List.assoc [| 1; 1 |] terms0)

let test_center_oob () =
  Alcotest.check_raises "outside" (Invalid_argument "Weights: centre outside tensor")
    (fun () -> ignore (Weights.w1 ~center:[| 5 |] [| 1.; 1. |]))

let test_center_rank () =
  Alcotest.check_raises "rank" (Invalid_argument "Weights: centre rank mismatch")
    (fun () -> ignore (Weights.w1 ~center:[| 0; 0 |] [| 1. |]))

let test_w3 () =
  let z = Array.make_matrix 3 3 0.0 in
  let m = Array.make_matrix 3 3 0.0 in
  m.(1).(1) <- 6.0;
  m.(0).(1) <- -1.0;
  let w = Weights.w3 [| z; m; z |] in
  check_int "dims" 3 (Weights.dims w);
  check_int "terms" 2 (List.length (Weights.terms w));
  check_int "radius" 1 (Weights.radius w)

let test_w3_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Weights.w3: ragged")
    (fun () ->
      ignore (Weights.w3 [| [| [| 1. |] |]; [| [| 1.; 2. |] |] |]))

let test_radius_large () =
  let w = Weights.w1 [| 1.; 0.; 0.; 0.; 1. |] in
  check_int "radius 2" 2 (Weights.radius w)

let prop_terms_sum =
  QCheck.Test.make ~name:"terms preserve the weight sum" ~count:100
    QCheck.(array_of_size (Gen.int_range 1 9) (float_range (-5.) 5.))
    (fun row ->
      let w = Weights.w1 row in
      let sum_terms =
        List.fold_left (fun a (_, v) -> a +. v) 0.0 (Weights.terms w)
      in
      let sum_row = Array.fold_left ( +. ) 0.0 row in
      Float.abs (sum_terms -. sum_row) < 1e-9)

let () =
  Alcotest.run "weights"
    [ ( "unit",
        [ Alcotest.test_case "w1" `Quick test_w1;
          Alcotest.test_case "w1 empty" `Quick test_w1_empty;
          Alcotest.test_case "w2 offsets" `Quick test_w2_offsets;
          Alcotest.test_case "w2 ragged" `Quick test_w2_ragged;
          Alcotest.test_case "paper example centres" `Quick test_custom_center;
          Alcotest.test_case "centre out of bounds" `Quick test_center_oob;
          Alcotest.test_case "centre rank" `Quick test_center_rank;
          Alcotest.test_case "w3" `Quick test_w3;
          Alcotest.test_case "w3 ragged" `Quick test_w3_ragged;
          Alcotest.test_case "radius" `Quick test_radius_large ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_terms_sum ] ) ]
