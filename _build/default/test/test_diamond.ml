open Repro_poly

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_points ~steps ~size ~sigma =
  let fronts = Diamond.wavefronts ~steps ~size ~sigma in
  let seen = Hashtbl.create 256 in
  Array.iteri
    (fun w front ->
      Array.iter
        (fun tile ->
          Diamond.iter_tile ~steps ~size ~sigma tile ~f:(fun ~t ~xlo ~xhi ->
              for x = xlo to xhi do
                if Hashtbl.mem seen (t, x) then
                  Alcotest.failf "point (%d,%d) in two tiles" t x;
                Hashtbl.replace seen (t, x) w
              done))
        front)
    fronts;
  seen

let test_exact_cover () =
  List.iter
    (fun (steps, size, sigma) ->
      let seen = all_points ~steps ~size ~sigma in
      check_int
        (Printf.sprintf "cover %dx%d sigma %d" steps size sigma)
        (steps * size) (Hashtbl.length seen))
    [ (1, 10, 4); (4, 17, 4); (10, 64, 8); (7, 33, 16); (3, 5, 1) ]

let test_dependences_respect_wavefronts () =
  (* every read of (t-1, x±1) must come from an earlier wavefront or the
     same tile *)
  let steps = 8 and size = 40 and sigma = 4 in
  let seen = all_points ~steps ~size ~sigma in
  Hashtbl.iter
    (fun (t, x) w ->
      if t > 1 then
        List.iter
          (fun dx ->
            let x' = x + dx in
            if x' >= 1 && x' <= size then begin
              let w' = Hashtbl.find seen (t - 1, x') in
              check_bool "dependence satisfied" true (w' <= w)
            end)
          [ -1; 0; 1 ])
    seen

let test_tile_points_consistent () =
  let steps = 6 and size = 20 and sigma = 4 in
  let fronts = Diamond.wavefronts ~steps ~size ~sigma in
  let total =
    Array.fold_left
      (fun acc front ->
        Array.fold_left
          (fun acc tile ->
            acc + Diamond.tile_points ~steps ~size ~sigma tile)
          acc front)
      0 fronts
  in
  check_int "total points" (steps * size) total

let test_rows_increasing_t () =
  let steps = 5 and size = 12 and sigma = 3 in
  let fronts = Diamond.wavefronts ~steps ~size ~sigma in
  Array.iter
    (fun front ->
      Array.iter
        (fun tile ->
          let last_t = ref 0 in
          Diamond.iter_tile ~steps ~size ~sigma tile ~f:(fun ~t ~xlo ~xhi ->
              check_bool "t increasing" true (t > !last_t);
              check_bool "row nonempty" true (xlo <= xhi);
              last_t := t))
        front)
    fronts

let test_invalid_args () =
  Alcotest.check_raises "steps" (Invalid_argument "Diamond: steps must be >= 1")
    (fun () -> ignore (Diamond.wavefronts ~steps:0 ~size:4 ~sigma:2));
  Alcotest.check_raises "sigma" (Invalid_argument "Diamond: sigma must be >= 1")
    (fun () -> ignore (Diamond.wavefronts ~steps:2 ~size:4 ~sigma:0))

let prop_cover_random =
  QCheck.Test.make ~name:"wavefronts cover exactly steps*size points" ~count:60
    QCheck.(triple (int_range 1 12) (int_range 1 50) (int_range 1 12))
    (fun (steps, size, sigma) ->
      let seen = all_points ~steps ~size ~sigma in
      Hashtbl.length seen = steps * size)

let prop_deps_random =
  QCheck.Test.make ~name:"dependences never cross wavefronts backwards"
    ~count:25
    QCheck.(triple (int_range 2 8) (int_range 4 30) (int_range 1 8))
    (fun (steps, size, sigma) ->
      let seen = all_points ~steps ~size ~sigma in
      let ok = ref true in
      Hashtbl.iter
        (fun (t, x) w ->
          if t > 1 then
            List.iter
              (fun dx ->
                let x' = x + dx in
                if x' >= 1 && x' <= size then
                  if Hashtbl.find seen (t - 1, x') > w then ok := false)
              [ -1; 0; 1 ])
        seen;
      !ok)

let () =
  Alcotest.run "diamond"
    [ ( "unit",
        [ Alcotest.test_case "exact cover" `Quick test_exact_cover;
          Alcotest.test_case "dependences" `Quick test_dependences_respect_wavefronts;
          Alcotest.test_case "tile_points" `Quick test_tile_points_consistent;
          Alcotest.test_case "rows increasing" `Quick test_rows_increasing_t;
          Alcotest.test_case "invalid args" `Quick test_invalid_args ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_cover_random; prop_deps_random ] ) ]
