open Repro_nas
open Repro_core
open Repro_mg
module Grid = Repro_grid.Grid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))

let test_randlc_range_deterministic () =
  let a = 5.0 ** 13.0 in
  let s1 = ref 314159265.0 and s2 = ref 314159265.0 in
  for _ = 1 to 100 do
    let x = Nas_problem.randlc ~seed:s1 ~a in
    check_bool "in (0,1)" true (x > 0.0 && x < 1.0)
  done;
  for _ = 1 to 100 do
    ignore (Nas_problem.randlc ~seed:s2 ~a)
  done;
  check_float "deterministic" !s1 !s2

let test_randlc_known_first_value () =
  (* x1 = 5^13 * 314159265 mod 2^46, checked against exact integer math *)
  let seed = ref 314159265.0 in
  let x = Nas_problem.randlc ~seed ~a:(5.0 ** 13.0) in
  let expect =
    Int64.to_float
      (Int64.rem
         (Int64.mul 1220703125L 314159265L)
         (Int64.shift_left 1L 46))
    /. (2.0 ** 46.0)
  in
  check_float "first deviate" expect x

let test_setup_charges () =
  let p = Nas_problem.setup ~cls:Nas_coeffs.S in
  let pos = ref 0 and neg = ref 0 and sum = ref 0.0 in
  Grid.iter_interior p.Nas_problem.v ~f:(fun _ v ->
      sum := !sum +. v;
      if v = 1.0 then incr pos else if v = -1.0 then incr neg
      else if v <> 0.0 then Alcotest.fail "unexpected value");
  check_int "ten positive" 10 !pos;
  check_int "ten negative" 10 !neg;
  check_float "balanced" 0.0 !sum;
  check_float "zero guess" 0.0 (Repro_grid.Norms.linf p.Nas_problem.u)

let test_coeffs () =
  check_float "a0" (-8.0 /. 3.0) Nas_coeffs.a.(0);
  check_float "smoother class S" (-3.0 /. 8.0) (Nas_coeffs.c Nas_coeffs.S).(0);
  check_float "smoother class C" (-3.0 /. 17.0) (Nas_coeffs.c Nas_coeffs.C).(0);
  check_int "levels 256" 8 (Nas_coeffs.levels_for 256);
  check_bool "levels rejects non-pow2" true
    (try ignore (Nas_coeffs.levels_for 48); false
     with Invalid_argument _ -> true)

let test_weights27_structure () =
  let w = Nas_coeffs.weights27 [| 1.0; 0.5; 0.25; 0.125 |] in
  let terms = Repro_ir.Weights.terms w in
  check_int "27 terms" 27 (List.length terms);
  List.iter
    (fun (off, v) ->
      let d = Array.fold_left (fun a o -> a + abs o) 0 off in
      check_float "weight by distance" (1.0 /. (2.0 ** float_of_int d)) v)
    terms

let test_weights27_zero_corner_dropped () =
  let w = Nas_coeffs.weights27 (Nas_coeffs.c Nas_coeffs.S) in
  check_int "19 nonzero" 19 (List.length (Repro_ir.Weights.terms w))

let test_pipeline_stage_count () =
  (* 4·lt − 1 stages: resid + (lt−1) rprj3 + coarse psinv +
     (lt−1)·(interp, resid, psinv) + finest correct *)
  let p = Nas_pipeline.build ~cls:Nas_coeffs.S in
  let lt = Nas_coeffs.levels_for (Nas_coeffs.problem_n Nas_coeffs.S) in
  check_int "stages" ((4 * lt) - 1) (Repro_ir.Pipeline.stage_count p)

let nas_solver ~cls stepper ~iters =
  let prob = Nas_problem.setup ~cls in
  let problem =
    { Problem.dims = 3; n = prob.Nas_problem.n;
      v = prob.Nas_problem.u; f = prob.Nas_problem.v;
      exact = (fun _ -> 0.0) }
  in
  let r = Solver.iterate stepper ~problem ~cycles:iters ~residuals:false () in
  (r.Solver.v, prob)

let test_dsl_matches_reference () =
  let cls = Nas_coeffs.S in
  let rt = Exec.runtime () in
  let u_ref, _ =
    nas_solver ~cls (Nas_ref.stepper (Nas_ref.create ~cls ~par:rt.Exec.par))
      ~iters:3
  in
  List.iter
    (fun (name, opts) ->
      let u, _ = nas_solver ~cls (Nas_pipeline.stepper ~cls ~opts ~rt) ~iters:3 in
      let d = Grid.max_abs_diff u u_ref in
      check_bool (Printf.sprintf "%s diff %g" name d) true (d < 1e-13))
    [ ("naive", Options.naive); ("opt", Options.opt);
      ("opt+", Options.opt_plus) ];
  Exec.free_runtime rt

let test_residual_decreases () =
  let cls = Nas_coeffs.S in
  let rt = Exec.runtime () in
  let u, prob =
    nas_solver ~cls (Nas_pipeline.stepper ~cls ~opts:Options.opt_plus ~rt)
      ~iters:4
  in
  Exec.free_runtime rt;
  let r0 = Repro_grid.Norms.l2 prob.Nas_problem.v in
  let r4 = Nas_ref.residual_l2 ~u ~v:prob.Nas_problem.v in
  check_bool
    (Printf.sprintf "r0=%.3e r4=%.3e" r0 r4)
    true
    (r4 < 0.01 *. r0)

let test_params_rejects () =
  check_bool "raises" true
    (try ignore (Nas_pipeline.params ~cls:Nas_coeffs.S "x"); false
     with Invalid_argument _ -> true)

let test_cls_parsing () =
  check_bool "parse C" true (Nas_coeffs.cls_of_string "C" = Some Nas_coeffs.C);
  check_bool "bad" true (Nas_coeffs.cls_of_string "Z" = None);
  check_int "iterations B" 20 (Nas_coeffs.iterations Nas_coeffs.B)

let () =
  Alcotest.run "nas"
    [ ( "randlc",
        [ Alcotest.test_case "range/deterministic" `Quick
            test_randlc_range_deterministic;
          Alcotest.test_case "first value exact" `Quick
            test_randlc_known_first_value ] );
      ( "setup",
        [ Alcotest.test_case "charges" `Quick test_setup_charges;
          Alcotest.test_case "coefficients" `Quick test_coeffs;
          Alcotest.test_case "weights27" `Quick test_weights27_structure;
          Alcotest.test_case "zero corners dropped" `Quick
            test_weights27_zero_corner_dropped;
          Alcotest.test_case "class parsing" `Quick test_cls_parsing ] );
      ( "pipeline",
        [ Alcotest.test_case "stage count" `Quick test_pipeline_stage_count;
          Alcotest.test_case "dsl == reference" `Quick test_dsl_matches_reference;
          Alcotest.test_case "residual decreases" `Quick test_residual_decreases;
          Alcotest.test_case "params rejects" `Quick test_params_rejects ] ) ]
