open Repro_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let slot tbl id = Hashtbl.find tbl id

let test_last_use_map_basic () =
  (* 0 -> 1 -> 2; time = id *)
  let m =
    Storage.last_use_map ~ids:[ 0; 1; 2 ] ~time:Fun.id
      ~uses:(function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [])
  in
  Alcotest.(check (list int)) "dies at 1" [ 0 ] (Hashtbl.find m 1);
  check_bool "2 dies at own time" true (List.mem 2 (Hashtbl.find m 2));
  check_bool "1 dies at 2" true (List.mem 1 (Hashtbl.find m 2))

let test_last_use_no_consumer () =
  let m = Storage.last_use_map ~ids:[ 5 ] ~time:(fun _ -> 3) ~uses:(fun _ -> []) in
  Alcotest.(check (list int)) "own time" [ 5 ] (Hashtbl.find m 3)

let test_remap_chain_two_slots () =
  (* a chain 0 -> 1 -> 2 -> 3 -> 4 where each value dies one step after
     creation: greedy colouring needs exactly 2 slots (Fig. 7) *)
  let ids = [ 0; 1; 2; 3; 4 ] in
  let tbl, count =
    Storage.remap ~ids ~time:Fun.id
      ~last_use:(fun i -> Int.min (i + 1) 4)
      ~cls:(fun _ -> 0)
  in
  check_int "two slots" 2 count;
  (* consecutive stages never share *)
  List.iter
    (fun i -> check_bool "neighbours differ" true (slot tbl i <> slot tbl (i + 1)))
    [ 0; 1; 2; 3 ]

let test_remap_no_reuse_same_time () =
  (* two live-outs of the same group (equal timestamps) must not exchange
     storage even when one is dead at that time (§3.2.2) *)
  let ids = [ 0; 1; 2 ] in
  (* 0 produced at t0 and dies at t1; 1 and 2 both produced at t1 *)
  let time = function 0 -> 0 | _ -> 1 in
  let last_use = function 0 -> 1 | _ -> 5 in
  let tbl, count = Storage.remap ~ids ~time ~last_use ~cls:(fun _ -> 0) in
  check_int "three slots" 3 count;
  check_bool "0 vs 1" true (slot tbl 0 <> slot tbl 1);
  check_bool "0 vs 2" true (slot tbl 0 <> slot tbl 2)

let test_remap_reuse_after_death () =
  let ids = [ 0; 1 ] in
  let time = function 0 -> 0 | _ -> 2 in
  let last_use = function 0 -> 1 | _ -> 3 in
  let tbl, count = Storage.remap ~ids ~time ~last_use ~cls:(fun _ -> 0) in
  check_int "one slot" 1 count;
  check_int "shared" (slot tbl 0) (slot tbl 1)

let test_remap_class_separation () =
  (* same lifetimes but different classes never share *)
  let ids = [ 0; 1 ] in
  let time = function 0 -> 0 | _ -> 2 in
  let last_use = function 0 -> 1 | _ -> 3 in
  let tbl, count =
    Storage.remap ~ids ~time ~last_use ~cls:(fun i -> i mod 2)
  in
  check_int "two slots" 2 count;
  check_bool "not shared" true (slot tbl 0 <> slot tbl 1)

let test_no_reuse () =
  let tbl, count = Storage.no_reuse ~ids:[ 10; 20; 30 ] in
  check_int "three" 3 count;
  check_bool "distinct" true
    (slot tbl 10 <> slot tbl 20 && slot tbl 20 <> slot tbl 30)

(* Soundness property: after remapping a random schedule, no two ids whose
   lifetimes overlap (and that could corrupt each other) share a slot.  An
   id lives over [time id, last_use id]; sharing is corrupting iff one is
   created strictly inside the other's live range, or both are created at
   the same time. *)
let prop_remap_sound =
  QCheck.Test.make ~name:"remap never aliases overlapping lifetimes" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (pair (int_range 0 10) (pair (int_range 0 10) (int_range 0 2))))
    (fun specs ->
      let ids = List.mapi (fun i _ -> i) specs in
      let arr = Array.of_list specs in
      let time i = fst arr.(i) in
      let last_use i =
        let t, (extra, _) = arr.(i) in
        t + extra
      in
      let cls i = snd (snd arr.(i)) in
      let tbl, _ = Storage.remap ~ids ~time ~last_use ~cls in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              i >= j
              || slot tbl i <> slot tbl j
              || (* sharing is allowed only when the later one is created
                    strictly after the earlier one's last use *)
              (let first, second =
                 if time i <= time j then (i, j) else (j, i)
               in
               time second > last_use first))
            ids)
        ids)

let prop_remap_count_bounded =
  QCheck.Test.make ~name:"remap never uses more slots than ids" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 15) (int_range 0 8))
    (fun times ->
      let ids = List.mapi (fun i _ -> i) times in
      let arr = Array.of_list times in
      let tbl, count =
        Storage.remap ~ids ~time:(fun i -> arr.(i))
          ~last_use:(fun i -> arr.(i) + 1)
          ~cls:(fun _ -> ())
      in
      count <= List.length ids
      && List.for_all (fun i -> slot tbl i < count) ids)

let () =
  Alcotest.run "storage"
    [ ( "algorithm 2",
        [ Alcotest.test_case "last use map" `Quick test_last_use_map_basic;
          Alcotest.test_case "no consumer" `Quick test_last_use_no_consumer ] );
      ( "algorithm 3",
        [ Alcotest.test_case "chain needs 2 slots" `Quick test_remap_chain_two_slots;
          Alcotest.test_case "same timestamp isolation" `Quick
            test_remap_no_reuse_same_time;
          Alcotest.test_case "reuse after death" `Quick test_remap_reuse_after_death;
          Alcotest.test_case "class separation" `Quick test_remap_class_separation;
          Alcotest.test_case "no_reuse" `Quick test_no_reuse ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_remap_sound; prop_remap_count_bounded ] ) ]
