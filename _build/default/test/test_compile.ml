open Repro_ir
open Repro_poly
open Repro_core
module Buf = Repro_grid.Buf

let check_float = Alcotest.(check (float 1e-10))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params_empty name = invalid_arg ("no param " ^ name)
let params name = if name = "w" then 0.25 else invalid_arg name

(* -------------------- linearize -------------------- *)

let test_linearize_const () =
  match Compile.linearize (Expr.const 3.0) ~params:params_empty with
  | Some (c, []) -> check_float "const" 3.0 c
  | _ -> Alcotest.fail "expected constant"

let test_linearize_param () =
  match Compile.linearize Expr.(param "w" * const 2.0) ~params with
  | Some (c, []) -> check_float "resolved" 0.5 c
  | _ -> Alcotest.fail "expected constant"

let test_linearize_jacobi_merges_duplicates () =
  (* v - w*(4v - n - s - e - w') : the two v(0,0) terms merge *)
  let v = 3 in
  let st =
    Expr.(
      (const 4.0 * load v [| 0; 0 |])
      - load v [| -1; 0 |] - load v [| 1; 0 |] - load v [| 0; -1 |]
      - load v [| 0; 1 |])
  in
  let e = Expr.(load v [| 0; 0 |] - (param "w" * st)) in
  match Compile.linearize e ~params with
  | Some (c, terms) ->
    check_float "no constant" 0.0 c;
    check_int "5 merged terms" 5 (List.length terms);
    let centre =
      List.find (fun (_, _, a) -> a = Expr.shifted_access [| 0; 0 |]) terms
    in
    let w, _, _ = centre in
    check_float "centre coef 1-4w" 0.0 (w -. 0.0);
    check_bool "value" true (Float.abs (w -. (1.0 -. (0.25 *. 4.0))) < 1e-12)
  | None -> Alcotest.fail "linear"

let test_linearize_div () =
  match Compile.linearize Expr.(load 0 [| 0 |] / const 4.0) ~params with
  | Some (_, [ (w, _, _) ]) -> check_float "quarter" 0.25 w
  | _ -> Alcotest.fail "div by const is linear"

let test_linearize_nonlinear () =
  check_bool "v*v" true
    (Compile.linearize Expr.(load 0 [| 0 |] * load 0 [| 0 |]) ~params = None);
  check_bool "min" true
    (Compile.linearize
       (Expr.Binop (Expr.Min, Expr.const 0.0, Expr.load 0 [| 0 |]))
       ~params
     = None);
  check_bool "coord" true
    (Compile.linearize (Expr.Coord 0) ~params = None);
  check_bool "div by load" true
    (Compile.linearize Expr.(const 1.0 / load 0 [| 0 |]) ~params = None)

(* -------------------- eval_expr -------------------- *)

let test_eval_expr () =
  let lookup f pc =
    check_int "func" 7 f;
    float_of_int (pc.(0) + (10 * pc.(1)))
  in
  let e = Expr.(load 7 [| 1; -1 |] + const 0.5) in
  check_float "eval" (3. +. 10. +. 0.5)
    (Compile.eval_expr e ~params ~lookup [| 2; 2 |])

let test_eval_ops () =
  let lookup _ _ = 4.0 in
  let f e = Compile.eval_expr e ~params ~lookup [| 0 |] in
  check_float "sqrt" 2.0 (f (Expr.Unop (Expr.Sqrt, Expr.load 0 [| 0 |])));
  check_float "abs" 3.0 (f (Expr.Unop (Expr.Abs, Expr.const (-3.0))));
  check_float "min" 2.0 (f (Expr.Binop (Expr.Min, Expr.const 2.0, Expr.const 5.0)));
  check_float "max" 5.0 (f (Expr.Binop (Expr.Max, Expr.const 2.0, Expr.const 5.0)))

(* -------------------- compiled stages -------------------- *)

let mk_func ?(dims = 2) ?(kind = Func.Pointwise) ?(boundary = 0.0) ~id ~name
    ~size defn =
  { Func.id; name; dims; sizes = Array.make dims (Sizeexpr.const size);
    defn; boundary = Func.Dirichlet boundary; kind }

let grid_source size =
  let buf = Buf.create ((size + 2) * (size + 2)) in
  ({ Compile.data = buf.Buf.data; strides = [| size + 2; 1 |]; org = [| 0; 0 |] },
   buf)

let fill_source (src : Compile.source) size f =
  for i = 0 to size + 1 do
    for j = 0 to size + 1 do
      Bigarray.Array1.set src.Compile.data
        (Compile.source_index src [| i; j |])
        (f i j)
    done
  done

let test_run_stencil_matches_reference () =
  let size = 8 in
  let v_src, _ = grid_source size in
  fill_source v_src size (fun i j -> float_of_int ((i * 17) + j));
  let defn =
    Expr.(
      (const 0.25
       * (load 0 [| -1; 0 |] + load 0 [| 1; 0 |] + load 0 [| 0; -1 |]
          + load 0 [| 0; 1 |]))
      - load 0 [| 0; 0 |])
  in
  let f = mk_func ~id:1 ~name:"s" ~size (Func.Def defn) ~boundary:(-7.0) in
  let compiled = Compile.compile f ~params in
  let dst, _ = grid_source size in
  let interior = Box.of_sizes [| size; size |] in
  let region = Box.with_ghost [| size; size |] in
  compiled.Compile.run ~srcs:[| v_src |] ~dst ~interior ~region;
  (* interior matches the interpreter *)
  let lookup _ pc =
    Bigarray.Array1.get v_src.Compile.data (Compile.source_index v_src pc)
  in
  for i = 1 to size do
    for j = 1 to size do
      check_float "point"
        (Compile.eval_expr defn ~params ~lookup [| i; j |])
        (Bigarray.Array1.get dst.Compile.data
           (Compile.source_index dst [| i; j |]))
    done
  done;
  (* ghost rim got the boundary value *)
  check_float "ghost corner" (-7.0)
    (Bigarray.Array1.get dst.Compile.data (Compile.source_index dst [| 0; 0 |]));
  check_float "ghost edge" (-7.0)
    (Bigarray.Array1.get dst.Compile.data
       (Compile.source_index dst [| 0; 5 |]))

let test_run_subregion_only () =
  let size = 8 in
  let v_src, _ = grid_source size in
  fill_source v_src size (fun _ _ -> 1.0);
  let f =
    mk_func ~id:1 ~name:"c" ~size (Func.Def (Expr.load 0 [| 0; 0 |]))
  in
  let compiled = Compile.compile f ~params in
  let dst, dbuf = grid_source size in
  Buf.fill dbuf Float.nan;
  let interior = Box.of_sizes [| size; size |] in
  let region = Box.v ~lo:[| 3; 2 |] ~hi:[| 5; 6 |] in
  compiled.Compile.run ~srcs:[| v_src |] ~dst ~interior ~region;
  check_float "inside" 1.0
    (Bigarray.Array1.get dst.Compile.data (Compile.source_index dst [| 4; 4 |]));
  check_bool "outside untouched" true
    (Float.is_nan
       (Bigarray.Array1.get dst.Compile.data
          (Compile.source_index dst [| 1; 1 |])))

let test_parity_cases () =
  (* interp-like stage: even -> 1.0, odd -> 2.0 per dimension product *)
  let size = 9 in
  let cases =
    Array.init 4 (fun p ->
        Expr.const (float_of_int (1 + (p land 1) + ((p lsr 1) land 1))))
  in
  let f =
    mk_func ~id:0 ~name:"i" ~size (Func.Parity cases) ~kind:Func.Interpolation
  in
  let compiled = Compile.compile f ~params in
  let dst, _ = grid_source size in
  let interior = Box.of_sizes [| size; size |] in
  compiled.Compile.run ~srcs:[||] ~dst ~interior ~region:interior;
  let get i j =
    Bigarray.Array1.get dst.Compile.data (Compile.source_index dst [| i; j |])
  in
  (* parity bit k set iff coordinate k odd: (2,2)->1, (2,3)->2, (3,2)->2, (3,3)->3 *)
  check_float "even-even" 1.0 (get 2 2);
  check_float "even-odd" 2.0 (get 2 3);
  check_float "odd-even" 2.0 (get 3 2);
  check_float "odd-odd" 3.0 (get 3 3)

let test_gen_fallback_minmax () =
  let size = 6 in
  let v_src, _ = grid_source size in
  fill_source v_src size (fun i j -> float_of_int (i - j));
  let defn =
    Expr.Binop (Expr.Max, Expr.load 0 [| 0; 0 |], Expr.const 0.0)
  in
  let f = mk_func ~id:3 ~name:"relu" ~size (Func.Def defn) in
  let compiled = Compile.compile f ~params in
  (match compiled.Compile.cases with
   | [ { Compile.kernel = Compile.Gen _; _ } ] -> ()
   | _ -> Alcotest.fail "expected Gen fallback");
  let dst, _ = grid_source size in
  let interior = Box.of_sizes [| size; size |] in
  compiled.Compile.run ~srcs:[| v_src |] ~dst ~interior ~region:interior;
  check_float "max applied" 0.0
    (Bigarray.Array1.get dst.Compile.data (Compile.source_index dst [| 1; 4 |]));
  check_float "positive kept" 3.0
    (Bigarray.Array1.get dst.Compile.data (Compile.source_index dst [| 4; 1 |]))

let test_compile_input_rejected () =
  let f =
    { Func.id = 0; name = "V"; dims = 2;
      sizes = Array.make 2 (Sizeexpr.const 4);
      defn = Func.Undefined; boundary = Func.Ghost_input; kind = Func.Input }
  in
  Alcotest.check_raises "input"
    (Invalid_argument "Compile.compile: cannot compile an input") (fun () ->
      ignore (Compile.compile f ~params))

(* random linear stencils: compiled fast path vs interpreter, exercising the
   specialized inner loops for every term count 1..10 *)
let prop_lin_matches_interpreter =
  QCheck.Test.make ~name:"linear kernels match the interpreter (nt 1..10)"
    ~count:80
    QCheck.(
      pair (int_range 1 10)
        (list_of_size (Gen.return 10)
           (triple (int_range (-1) 1) (int_range (-1) 1)
              (float_range (-2.0) 2.0))))
    (fun (nt, offsets) ->
      let size = 7 in
      let v_src, _ = grid_source size in
      fill_source v_src size (fun i j ->
          float_of_int (((i * 31) + (j * 7)) mod 23) /. 3.0);
      let terms = List.filteri (fun i _ -> i < nt) offsets in
      let defn =
        List.fold_left
          (fun acc (oi, oj, w) ->
            Expr.(acc + (const w * load 0 [| oi; oj |])))
          (Expr.const 0.125) terms
      in
      let f = mk_func ~id:9 ~name:"r" ~size (Func.Def defn) in
      let compiled = Compile.compile f ~params in
      let dst, _ = grid_source size in
      let interior = Box.of_sizes [| size; size |] in
      let srcs = if terms = [] then [||] else [| v_src |] in
      compiled.Compile.run ~srcs ~dst ~interior ~region:interior;
      let lookup _ pc =
        Bigarray.Array1.get v_src.Compile.data (Compile.source_index v_src pc)
      in
      let ok = ref true in
      for i = 1 to size do
        for j = 1 to size do
          let expect = Compile.eval_expr defn ~params ~lookup [| i; j |] in
          let got =
            Bigarray.Array1.get dst.Compile.data
              (Compile.source_index dst [| i; j |])
          in
          if Float.abs (expect -. got) > 1e-9 then ok := false
        done
      done;
      !ok)

let test_fill_rim_3d () =
  let size = 4 in
  let buf = Buf.create ((size + 2) * (size + 2) * (size + 2)) in
  let src =
    { Compile.data = buf.Buf.data;
      strides = [| (size + 2) * (size + 2); size + 2; 1 |];
      org = [| 0; 0; 0 |] }
  in
  Buf.fill buf Float.nan;
  Compile.fill_rim src
    ~region:(Box.with_ghost [| size; size; size |])
    ~interior:(Box.of_sizes [| size; size; size |])
    5.0;
  check_float "face" 5.0
    (Bigarray.Array1.get src.Compile.data
       (Compile.source_index src [| 0; 2; 2 |]));
  check_bool "interior untouched" true
    (Float.is_nan
       (Bigarray.Array1.get src.Compile.data
          (Compile.source_index src [| 2; 2; 2 |])))

let () =
  Alcotest.run "compile"
    [ ( "linearize",
        [ Alcotest.test_case "const" `Quick test_linearize_const;
          Alcotest.test_case "param" `Quick test_linearize_param;
          Alcotest.test_case "jacobi merge" `Quick
            test_linearize_jacobi_merges_duplicates;
          Alcotest.test_case "div" `Quick test_linearize_div;
          Alcotest.test_case "nonlinear" `Quick test_linearize_nonlinear ] );
      ( "eval",
        [ Alcotest.test_case "loads" `Quick test_eval_expr;
          Alcotest.test_case "ops" `Quick test_eval_ops ] );
      ( "run",
        [ Alcotest.test_case "stencil vs reference" `Quick
            test_run_stencil_matches_reference;
          Alcotest.test_case "subregion" `Quick test_run_subregion_only;
          Alcotest.test_case "parity cases" `Quick test_parity_cases;
          Alcotest.test_case "gen fallback" `Quick test_gen_fallback_minmax;
          Alcotest.test_case "input rejected" `Quick test_compile_input_rejected;
          Alcotest.test_case "fill_rim 3d" `Quick test_fill_rim_3d ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_lin_matches_interpreter ] ) ]
