test/test_pipeline.ml: Alcotest Array Dsl Expr Format Func List Pipeline Repro_ir Sizeexpr String Weights
