test/test_box.ml: Alcotest Array Box Expr List QCheck QCheck_alcotest Repro_ir Repro_poly
