test/test_extensions.ml: Alcotest Array Cycle Exec Func Krylov List Options Pipeline Printf Problem Repro_core Repro_grid Repro_ir Repro_mg Solver String Verify
