test/test_grid.ml: Alcotest Array Buf Float Gen Grid Hashtbl List Norms QCheck QCheck_alcotest Repro_grid
