test/test_regions.ml: Alcotest Array Box Dsl Expr Func Hashtbl List Pipeline QCheck QCheck_alcotest Regions Repro_ir Repro_poly Sizeexpr Weights
