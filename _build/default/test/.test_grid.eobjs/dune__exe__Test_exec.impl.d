test/test_exec.ml: Alcotest Cycle Exec List Options Plan Printf Problem Repro_core Repro_grid Repro_mg Repro_runtime Solver
