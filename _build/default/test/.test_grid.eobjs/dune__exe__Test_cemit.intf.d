test/test_cemit.mli:
