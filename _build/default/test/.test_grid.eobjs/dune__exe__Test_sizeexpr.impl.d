test/test_sizeexpr.ml: Alcotest List QCheck QCheck_alcotest Repro_ir Sizeexpr
