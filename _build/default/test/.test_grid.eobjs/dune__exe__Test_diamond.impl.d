test/test_diamond.ml: Alcotest Array Diamond Hashtbl List Printf QCheck QCheck_alcotest Repro_poly
