test/test_compile.ml: Alcotest Array Bigarray Box Compile Expr Float Func Gen List QCheck QCheck_alcotest Repro_core Repro_grid Repro_ir Repro_poly Sizeexpr
