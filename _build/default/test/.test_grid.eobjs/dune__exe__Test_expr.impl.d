test/test_expr.ml: Alcotest Array Expr Format List QCheck QCheck_alcotest Repro_ir String
