test/test_cemit.ml: Alcotest C_emit Cycle Filename Lazy List Options Plan Printf Repro_core Repro_mg String Sys
