test/test_skewed.ml: Alcotest Array Cycle Diamond Exec Hashtbl List Options Printf Problem Repro_core Repro_grid Repro_mg Repro_poly Skewed Solver
