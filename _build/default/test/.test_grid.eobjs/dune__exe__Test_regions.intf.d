test/test_regions.mli:
