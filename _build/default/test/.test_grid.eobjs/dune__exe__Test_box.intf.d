test/test_box.mli:
