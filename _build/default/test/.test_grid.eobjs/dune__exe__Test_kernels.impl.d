test/test_kernels.ml: Alcotest Array Dsl Exec Expr Func Kernels List Nas_coeffs Nas_ref Options Plan Printf Repro_core Repro_grid Repro_ir Repro_mg Repro_nas Sizeexpr Stencils Verify Weights
