test/test_random_pipelines.ml: Alcotest Array Dsl Exec Expr Func List Options Pipeline Plan Printf QCheck QCheck_alcotest Repro_core Repro_grid Repro_ir Sizeexpr Weights
