test/test_diamond.mli:
