test/test_skewed.mli:
