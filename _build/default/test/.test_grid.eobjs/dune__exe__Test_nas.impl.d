test/test_nas.ml: Alcotest Array Exec Int64 List Nas_coeffs Nas_pipeline Nas_problem Nas_ref Options Printf Problem Repro_core Repro_grid Repro_ir Repro_mg Repro_nas Solver
