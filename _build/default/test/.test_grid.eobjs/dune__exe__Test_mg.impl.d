test/test_mg.ml: Alcotest Array Cycle Exec Func Handopt List Options Pipeline Printf Problem Repro_core Repro_grid Repro_ir Repro_mg Repro_runtime Solver Verify
