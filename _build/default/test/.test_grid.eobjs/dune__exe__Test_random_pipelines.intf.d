test/test_random_pipelines.mli:
