test/test_weights.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Repro_ir Weights
