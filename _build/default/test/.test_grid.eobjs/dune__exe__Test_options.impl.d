test/test_options.ml: Alcotest Format List Options Repro_core String
