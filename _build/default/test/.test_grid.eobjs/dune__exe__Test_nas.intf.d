test/test_nas.mli:
