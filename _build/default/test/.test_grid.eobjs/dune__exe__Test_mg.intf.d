test/test_mg.mli:
