test/test_grouping.ml: Alcotest Array Cycle Format Func Grouping Hashtbl Int List Options Pipeline Plan Repro_core Repro_ir Repro_mg Repro_poly String
