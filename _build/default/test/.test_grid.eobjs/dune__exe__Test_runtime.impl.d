test/test_runtime.ml: Alcotest Array Atomic List Mempool Mutex Parallel QCheck QCheck_alcotest Repro_grid Repro_runtime
