test/test_options.mli:
