test/test_sizeexpr.mli:
