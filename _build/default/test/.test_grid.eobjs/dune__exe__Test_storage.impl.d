test/test_storage.ml: Alcotest Array Fun Gen Hashtbl Int List QCheck QCheck_alcotest Repro_core Storage
