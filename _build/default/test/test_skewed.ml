open Repro_poly
open Repro_core
open Repro_mg
module Grid = Repro_grid.Grid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_points ~steps ~size ~tau ~sigma =
  let fronts = Skewed.wavefronts ~steps ~size ~tau ~sigma in
  let seen = Hashtbl.create 256 in
  Array.iteri
    (fun w front ->
      Array.iter
        (fun tile ->
          Skewed.iter_tile ~steps ~size ~tau ~sigma tile
            ~f:(fun ~t ~xlo ~xhi ->
              for x = xlo to xhi do
                if Hashtbl.mem seen (t, x) then
                  Alcotest.failf "point (%d,%d) in two tiles" t x;
                Hashtbl.replace seen (t, x) w
              done))
        front)
    fronts;
  seen

let test_exact_cover () =
  List.iter
    (fun (steps, size, tau, sigma) ->
      let seen = all_points ~steps ~size ~tau ~sigma in
      check_int
        (Printf.sprintf "cover %dx%d tau %d sigma %d" steps size tau sigma)
        (steps * size) (Hashtbl.length seen))
    [ (1, 10, 2, 4); (4, 17, 2, 8); (10, 64, 4, 16); (7, 33, 7, 5) ]

let test_dependences () =
  let steps = 8 and size = 40 and tau = 3 and sigma = 8 in
  let seen = all_points ~steps ~size ~tau ~sigma in
  Hashtbl.iter
    (fun (t, x) w ->
      if t > 1 then
        List.iter
          (fun dx ->
            let x' = x + dx in
            if x' >= 1 && x' <= size then
              check_bool "dep satisfied" true (Hashtbl.find seen (t - 1, x') <= w))
          [ -1; 0; 1 ])
    seen

let test_pipelined_startup_vs_diamond () =
  (* the quantitative §5 claim: skewed schedules ramp up (narrow early
     wavefronts) while diamond starts at full width *)
  let steps = 16 and size = 256 in
  let dia = Skewed.concurrency (Diamond.wavefronts ~steps ~size ~sigma:8) in
  let skw =
    Skewed.concurrency (Skewed.wavefronts ~steps ~size ~tau:8 ~sigma:8)
  in
  check_bool
    (Printf.sprintf "diamond first front full (%d tiles)"
       (Array.length (Diamond.wavefronts ~steps ~size ~sigma:8).(0)))
    true
    (Array.length (Diamond.wavefronts ~steps ~size ~sigma:8).(0)
     >= size / (2 * 8));
  check_int "skewed first front has one tile" 1
    (Array.length (Skewed.wavefronts ~steps ~size ~tau:8 ~sigma:8).(0));
  check_bool
    (Printf.sprintf "skewed startup fronts %d > 0" skw.Skewed.startup_fronts)
    true (skw.Skewed.startup_fronts > 0);
  ignore dia

let test_concurrency_profile () =
  let p =
    Skewed.concurrency (Skewed.wavefronts ~steps:6 ~size:30 ~tau:3 ~sigma:6)
  in
  check_bool "fronts > 0" true (p.Skewed.fronts > 0);
  check_bool "avg <= max" true
    (p.Skewed.avg_width <= float_of_int p.Skewed.max_width);
  check_bool "startup < fronts" true (p.Skewed.startup_fronts < p.Skewed.fronts)

let test_exec_skewed_agrees () =
  List.iter
    (fun (dims, n) ->
      let cfg = Cycle.default ~dims ~shape:Cycle.V ~smoothing:(10, 0, 0) in
      let problem = Problem.poisson ~dims ~n in
      let run opts =
        let rt = Exec.runtime () in
        let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
        let r = Solver.iterate stepper ~problem ~cycles:2 ~residuals:false () in
        Exec.free_runtime rt;
        r.Solver.v
      in
      let reference = run Options.naive in
      List.iter
        (fun (tau, sigma) ->
          let v =
            run
              { Options.opt_plus with
                Options.smoother = Options.Skewed_smoother { tau; sigma } }
          in
          let d = Grid.max_abs_diff reference v in
          check_bool
            (Printf.sprintf "%dD tau=%d sigma=%d diff %g" dims tau sigma d)
            true (d < 1e-13))
        [ (2, 8); (4, 4); (10, 30) ])
    [ (2, 32); (3, 16) ]

let test_exec_skewed_parallel_agrees () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(10, 0, 0) in
  let n = 32 in
  let problem = Problem.poisson ~dims:2 ~n in
  let opts =
    { Options.opt_plus with
      Options.smoother = Options.Skewed_smoother { tau = 3; sigma = 8 } }
  in
  let run domains =
    let rt = Exec.runtime ~domains () in
    let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
    let r = Solver.iterate stepper ~problem ~cycles:2 ~residuals:false () in
    Exec.free_runtime rt;
    r.Solver.v
  in
  check_bool "3 domains agree" true
    (Grid.max_abs_diff (run 1) (run 3) = 0.0)

let () =
  Alcotest.run "skewed"
    [ ( "schedule",
        [ Alcotest.test_case "exact cover" `Quick test_exact_cover;
          Alcotest.test_case "dependences" `Quick test_dependences;
          Alcotest.test_case "pipelined startup" `Quick
            test_pipelined_startup_vs_diamond;
          Alcotest.test_case "concurrency profile" `Quick
            test_concurrency_profile ] );
      ( "execution",
        [ Alcotest.test_case "agrees with naive" `Quick test_exec_skewed_agrees;
          Alcotest.test_case "parallel agrees" `Quick
            test_exec_skewed_parallel_agrees ] ) ]
