(* Tests for the extension features: GSRB smoothing (paper §4.1's
   two-colour abstraction) and multigrid-preconditioned CG (§1). *)

open Repro_ir
open Repro_core
open Repro_mg
module Grid = Repro_grid.Grid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let gsrb_cfg dims =
  { (Cycle.default ~dims ~shape:Cycle.V ~smoothing:(2, 2, 2)) with
    Cycle.smoother = Cycle.Gsrb;
    Cycle.omega = 1.0 }

let test_gsrb_stage_count () =
  (* every smoothing step becomes a red and a black half-stage: the
     V-2-2-2 DAG has 6 smooth stages per fine level + coarse, each doubled *)
  let jac = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(2, 2, 2) in
  let nj = Pipeline.stage_count (Cycle.build jac) in
  let ng = Pipeline.stage_count (Cycle.build (gsrb_cfg 2)) in
  (* smooth stages: 3 levels × 4 + coarse 2 = 14; they double *)
  check_int "doubled smooth stages" (nj + 14) ng

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_gsrb_half_stages_parity () =
  let p = Cycle.build (gsrb_cfg 2) in
  let halves =
    Array.to_list (Pipeline.funcs p)
    |> List.filter (fun (f : Func.t) ->
           contains f.Func.name "_red" || contains f.Func.name "_blk")
  in
  check_bool "has half stages" true (List.length halves > 0);
  List.iter
    (fun (f : Func.t) ->
      match f.Func.defn with
      | Func.Parity cases -> check_int "4 parity cases" 4 (Array.length cases)
      | Func.Def _ | Func.Undefined -> Alcotest.fail "expected parity defn")
    halves

let run_cycles cfg ~n ~opts ~cycles =
  let problem = Problem.poisson ~dims:cfg.Cycle.dims ~n in
  let rt = Exec.runtime () in
  let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
  let r = Solver.iterate stepper ~problem ~cycles () in
  Exec.free_runtime rt;
  r

let test_gsrb_variants_agree () =
  List.iter
    (fun dims ->
      let cfg = gsrb_cfg dims in
      let n = if dims = 2 then 32 else 16 in
      let a = run_cycles cfg ~n ~opts:Options.naive ~cycles:2 in
      List.iter
        (fun (name, opts) ->
          let b = run_cycles cfg ~n ~opts ~cycles:2 in
          let d = Grid.max_abs_diff a.Solver.v b.Solver.v in
          check_bool (Printf.sprintf "%dD %s diff %g" dims name d) true
            (d < 1e-13))
        [ ("opt", Options.opt); ("opt+", Options.opt_plus);
          ("dtile-opt+", Options.dtile_opt_plus) ])
    [ 2; 3 ]

let test_gsrb_beats_jacobi () =
  let jac =
    { (Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(2, 2, 2)) with
      Cycle.levels = 5 }
  in
  let gs = { (gsrb_cfg 2) with Cycle.levels = 5 } in
  let rate cfg =
    let r = run_cycles cfg ~n:32 ~opts:Options.opt_plus ~cycles:4 in
    let res = List.map (fun s -> s.Solver.residual) r.Solver.stats in
    List.nth res 3 /. List.hd res
  in
  let rj = rate jac and rg = rate gs in
  check_bool (Printf.sprintf "gsrb (%.2e) beats jacobi (%.2e)" rg rj) true
    (rg < rj)

let test_gsrb_converges_3d () =
  let cfg = { (gsrb_cfg 3) with Cycle.levels = 4 } in
  let r = run_cycles cfg ~n:32 ~opts:Options.opt_plus ~cycles:4 in
  let res = List.map (fun s -> s.Solver.residual) r.Solver.stats in
  check_bool "monotone decreasing" true
    (List.for_all2 (fun a b -> b < a) (List.filteri (fun i _ -> i < 3) res)
       (List.tl res))

(* ---- Krylov ---- *)

let test_cg_plain_converges_small () =
  let problem = Problem.poisson_random ~dims:2 ~n:16 ~seed:5 in
  let r =
    Krylov.pcg ~problem ~precond:Krylov.identity_precond ~tol:1e-10
      ~max_iter:200
  in
  check_bool "converged" true r.Krylov.converged;
  check_bool "residual small" true
    (Verify.residual_l2 ~n:16 ~v:r.Krylov.v ~f:problem.Problem.f < 1e-8)

let test_pcg_mg_faster () =
  let n = 64 in
  let problem = Problem.poisson_random ~dims:2 ~n ~seed:6 in
  let plain =
    Krylov.pcg ~problem ~precond:Krylov.identity_precond ~tol:1e-9
      ~max_iter:500
  in
  let rt = Exec.runtime () in
  let cfg =
    { (Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(2, 0, 2)) with
      Cycle.levels = 5 }
  in
  let pre =
    Krylov.pcg ~problem
      ~precond:(Krylov.mg_precond cfg ~n ~opts:Options.opt_plus ~rt)
      ~tol:1e-9 ~max_iter:500
  in
  Exec.free_runtime rt;
  check_bool "preconditioned converged" true pre.Krylov.converged;
  check_bool
    (Printf.sprintf "fewer iterations (%d < %d)" pre.Krylov.iterations
       plain.Krylov.iterations)
    true
    (pre.Krylov.iterations * 3 < plain.Krylov.iterations)

let test_pcg_residual_list_monotonic_tail () =
  let problem = Problem.poisson_random ~dims:2 ~n:32 ~seed:8 in
  let rt = Exec.runtime () in
  let cfg =
    { (Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(2, 0, 2)) with
      Cycle.levels = 4 }
  in
  let r =
    Krylov.pcg ~problem
      ~precond:(Krylov.mg_precond cfg ~n:32 ~opts:Options.naive ~rt)
      ~tol:1e-11 ~max_iter:100
  in
  Exec.free_runtime rt;
  check_bool "converged" true r.Krylov.converged;
  check_int "residual list length" r.Krylov.iterations
    (List.length r.Krylov.residuals)

let test_pcg_bad_args () =
  let problem = Problem.poisson ~dims:2 ~n:16 in
  check_bool "max_iter" true
    (try
       ignore
         (Krylov.pcg ~problem ~precond:Krylov.identity_precond ~tol:1e-6
            ~max_iter:0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "extensions"
    [ ( "gsrb",
        [ Alcotest.test_case "stage count" `Quick test_gsrb_stage_count;
          Alcotest.test_case "parity half stages" `Quick
            test_gsrb_half_stages_parity;
          Alcotest.test_case "variants agree" `Quick test_gsrb_variants_agree;
          Alcotest.test_case "beats jacobi" `Quick test_gsrb_beats_jacobi;
          Alcotest.test_case "3d converges" `Quick test_gsrb_converges_3d ] );
      ( "krylov",
        [ Alcotest.test_case "plain cg" `Quick test_cg_plain_converges_small;
          Alcotest.test_case "mg preconditioner" `Quick test_pcg_mg_faster;
          Alcotest.test_case "residual bookkeeping" `Quick
            test_pcg_residual_list_monotonic_tail;
          Alcotest.test_case "bad args" `Quick test_pcg_bad_args ] ) ]
