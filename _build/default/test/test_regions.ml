open Repro_ir
open Repro_poly

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let psize = Sizeexpr.add_const Sizeexpr.n (-1)
let psizes = [| psize; psize |]

let laplace =
  Weights.w2 [| [| 0.; -1.; 0. |]; [| -1.; 4.; -1. |]; [| 0.; -1.; 0. |] |]

(* V -> s1 -> s2 (radius-1 chain) -> restrict -> coarse stage *)
let chain_pipeline () =
  let ctx = Dsl.create "chain" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:psizes in
  let s1 = Dsl.func ctx ~name:"s1" ~sizes:psizes (Dsl.stencil v laplace ()) in
  let s2 =
    Dsl.func ctx ~name:"s2" ~sizes:psizes (Dsl.stencil s1 laplace ())
  in
  let r = Dsl.restrict_fn ctx ~name:"r" ~input:s2 () in
  let c =
    Dsl.func ctx ~name:"c" ~sizes:(Array.map Sizeexpr.coarsen psizes)
      (Dsl.stencil r laplace ())
  in
  (Dsl.finish ctx ~outputs:[ c ], v, s1, s2, r, c)

let build_exn p ~n ~members ~liveouts =
  match Regions.build p ~n ~members ~liveouts with
  | Ok g -> g
  | Error e -> Alcotest.fail e

let test_build_rejects_inputs () =
  let p, v, s1, _, _, _ = chain_pipeline () in
  match
    Regions.build p ~n:16 ~members:[ v.Func.id; s1.Func.id ] ~liveouts:[]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inputs must be rejected"

let test_rel_levels () =
  let p, _, s1, s2, r, _ = chain_pipeline () in
  let g =
    build_exn p ~n:16 ~members:[ s1.Func.id; s2.Func.id; r.Func.id ]
      ~liveouts:[ r.Func.id ]
  in
  (* reference is r (coarse); the fine stages are one level finer *)
  Alcotest.(check (array int)) "s1 rel" [| 1; 1 |] (Regions.rel_of g s1.Func.id);
  Alcotest.(check (array int)) "r rel" [| 0; 0 |] (Regions.rel_of g r.Func.id)

let test_tiles_partition_reference () =
  let p, _, s1, s2, _, _ = chain_pipeline () in
  let g =
    build_exn p ~n:16 ~members:[ s1.Func.id; s2.Func.id ]
      ~liveouts:[ s2.Func.id ]
  in
  let tiles = Regions.tiles g ~tile_sizes:[| 4; 7 |] in
  (* tiles must partition the 15x15 interior *)
  let covered = Hashtbl.create 64 in
  Array.iter
    (fun t ->
      for i = t.Box.lo.(0) to t.Box.hi.(0) do
        for j = t.Box.lo.(1) to t.Box.hi.(1) do
          check_bool "no overlap" false (Hashtbl.mem covered (i, j));
          Hashtbl.replace covered (i, j) ()
        done
      done)
    tiles;
  check_int "full cover" (15 * 15) (Hashtbl.length covered)

let test_own_slices_partition_members () =
  let p, _, s1, s2, r, _ = chain_pipeline () in
  let g =
    build_exn p ~n:16
      ~members:[ s1.Func.id; s2.Func.id; r.Func.id ]
      ~liveouts:[ s1.Func.id; r.Func.id ]
  in
  let tiles = Regions.tiles g ~tile_sizes:[| 3; 3 |] in
  (* own slices of the fine live-out s1 must partition its 15x15 domain *)
  let covered = Hashtbl.create 64 in
  Array.iter
    (fun t ->
      let s = Regions.own_slice g s1.Func.id ~tile:t in
      if not (Box.is_empty s) then
        for i = s.Box.lo.(0) to s.Box.hi.(0) do
          for j = s.Box.lo.(1) to s.Box.hi.(1) do
            check_bool "no overlap" false (Hashtbl.mem covered (i, j));
            Hashtbl.replace covered (i, j) ()
          done
        done)
    tiles;
  check_int "fine cover" (15 * 15) (Hashtbl.length covered)

let pfunc p id = Pipeline.func p id

let test_demand_covers_consumers () =
  let p, _, s1, s2, _, _ = chain_pipeline () in
  let g =
    build_exn p ~n:16 ~members:[ s1.Func.id; s2.Func.id ]
      ~liveouts:[ s2.Func.id ]
  in
  Array.iter
    (fun tile ->
      let req = Regions.demand g ~tile in
      let find id = snd (Array.to_list req |> List.find (fun (i, _) -> i = id)) in
      let r1 = find s1.Func.id and r2 = find s2.Func.id in
      (* s1 must cover the radius-1 footprint of s2's region, clamped *)
      let need =
        Box.inter
          (Box.map_accesses (Func.accesses_to (pfunc p s2.Func.id) s1.Func.id) r2)
          (Box.with_ghost [| 15; 15 |])
      in
      check_bool "covered" true (Box.contains r1 need))
    (Regions.tiles g ~tile_sizes:[| 4; 4 |])

let test_demand_no_consumer_is_slice () =
  let p, _, s1, _, _, _ = chain_pipeline () in
  let g = build_exn p ~n:16 ~members:[ s1.Func.id ] ~liveouts:[ s1.Func.id ] in
  Array.iter
    (fun tile ->
      let req = Regions.demand g ~tile in
      let _, r = req.(0) in
      check_bool "slice only" true
        (Box.equal r (Regions.own_slice g s1.Func.id ~tile)))
    (Regions.tiles g ~tile_sizes:[| 8; 8 |])

let test_redundancy_zero_single () =
  let p, _, s1, _, _, _ = chain_pipeline () in
  let g = build_exn p ~n:16 ~members:[ s1.Func.id ] ~liveouts:[ s1.Func.id ] in
  Alcotest.(check (float 1e-9)) "no redundancy" 0.0
    (Regions.redundancy g ~tile_sizes:[| 4; 4 |])

let test_redundancy_positive_chain () =
  let p, _, s1, s2, _, _ = chain_pipeline () in
  let g =
    build_exn p ~n:16 ~members:[ s1.Func.id; s2.Func.id ]
      ~liveouts:[ s2.Func.id ]
  in
  check_bool "positive" true (Regions.redundancy g ~tile_sizes:[| 4; 4 |] > 0.0)

let test_scratch_extents_bound_demand () =
  let p, _, s1, s2, r, _ = chain_pipeline () in
  let g =
    build_exn p ~n:16
      ~members:[ s1.Func.id; s2.Func.id; r.Func.id ]
      ~liveouts:[ r.Func.id ]
  in
  let tile_sizes = [| 4; 4 |] in
  let ext = Regions.scratch_extents g ~tile_sizes in
  Array.iter
    (fun tile ->
      Array.iter
        (fun (id, box) ->
          let e = List.assoc id ext in
          Array.iteri
            (fun k w -> check_bool "bounded" true (w <= e.(k)))
            (Box.widths box))
        (Regions.demand g ~tile))
    (Regions.tiles g ~tile_sizes)

let test_cross_rank_rejected () =
  let ctx = Dsl.create "mixed" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:psizes in
  let a = Dsl.func ctx ~name:"a" ~sizes:psizes (Dsl.stencil v laplace ()) in
  let b =
    Dsl.func ctx ~name:"b" ~sizes:[| Sizeexpr.const 7; Sizeexpr.const 9 |]
      (Expr.const 1.0)
  in
  let p = Dsl.finish ctx ~outputs:[ a; b ] in
  match
    Regions.build p ~n:16 ~members:[ a.Func.id; b.Func.id ]
      ~liveouts:[ a.Func.id; b.Func.id ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incompatible sizes must be rejected"

let prop_own_slice_partition =
  QCheck.Test.make ~name:"own slices partition every member domain" ~count:30
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (t0, t1) ->
      let p, _, s1, s2, r, c = chain_pipeline () in
      ignore s2;
      let g =
        build_exn p ~n:16
          ~members:[ s1.Func.id; s2.Func.id; r.Func.id; c.Func.id ]
          ~liveouts:[ s1.Func.id; c.Func.id ]
      in
      let tiles = Regions.tiles g ~tile_sizes:[| t0; t1 |] in
      List.for_all
        (fun (id, dom) ->
          let count = ref 0 in
          Array.iter
            (fun t -> count := !count + Box.points (Regions.own_slice g id ~tile:t))
            tiles;
          !count = dom)
        [ (s1.Func.id, 15 * 15); (c.Func.id, 7 * 7) ])

let () =
  Alcotest.run "regions"
    [ ( "unit",
        [ Alcotest.test_case "inputs rejected" `Quick test_build_rejects_inputs;
          Alcotest.test_case "rel levels" `Quick test_rel_levels;
          Alcotest.test_case "tiles partition" `Quick test_tiles_partition_reference;
          Alcotest.test_case "own slices partition" `Quick
            test_own_slices_partition_members;
          Alcotest.test_case "demand covers consumers" `Quick
            test_demand_covers_consumers;
          Alcotest.test_case "demand of isolated liveout" `Quick
            test_demand_no_consumer_is_slice;
          Alcotest.test_case "redundancy single" `Quick test_redundancy_zero_single;
          Alcotest.test_case "redundancy chain" `Quick test_redundancy_positive_chain;
          Alcotest.test_case "scratch extents bound" `Quick
            test_scratch_extents_bound_demand;
          Alcotest.test_case "incompatible sizes" `Quick test_cross_rank_rejected ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_own_slice_partition ] ) ]
