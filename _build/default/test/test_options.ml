open Repro_core

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_presets_features () =
  check_bool "naive no fuse" false Options.naive.Options.fuse;
  check_bool "naive no pool" false Options.naive.Options.pool;
  check_bool "opt fuses" true Options.opt.Options.fuse;
  check_bool "opt no scratch reuse" false Options.opt.Options.scratch_reuse;
  check_bool "opt+ scratch reuse" true Options.opt_plus.Options.scratch_reuse;
  check_bool "opt+ array reuse" true Options.opt_plus.Options.array_reuse;
  check_bool "opt+ pool" true Options.opt_plus.Options.pool;
  (match Options.dtile_opt_plus.Options.smoother with
   | Options.Diamond_smoother { sigma } -> check_bool "sigma" true (sigma > 0)
   | Options.Overlapped_smoother | Options.Skewed_smoother _ ->
     Alcotest.fail "dtile must use diamond");
  check_bool "walk kernels default on" true
    Options.opt_plus.Options.walk_kernels

let test_variant_of_string () =
  List.iter
    (fun (s, expect_name) ->
      match Options.variant_of_string s with
      | Some o -> check_str s expect_name (Options.name o)
      | None -> Alcotest.failf "unparsed %s" s)
    [ ("naive", "naive"); ("opt", "opt"); ("opt+", "opt+");
      ("dtile-opt+", "dtile-opt+") ];
  check_bool "unknown" true (Options.variant_of_string "turbo" = None)

let test_name_custom () =
  let o = { Options.opt_plus with Options.pool = false } in
  check_str "custom" "custom" (Options.name o)

let test_with_tiles () =
  let o = Options.with_tiles Options.opt ~t2:[| 7; 7 |] ~t3:[| 3; 3; 3 |] in
  Alcotest.(check (array int)) "t2" [| 7; 7 |] o.Options.tile_2d;
  Alcotest.(check (array int)) "t3" [| 3; 3; 3 |] o.Options.tile_3d;
  check_bool "other fields kept" true (o.Options.fuse = Options.opt.Options.fuse)

let test_pp_smoke () =
  let s = Format.asprintf "%a" Options.pp Options.dtile_opt_plus in
  check_bool "mentions diamond" true
    (String.length s > 0
     && (let rec go i =
           i + 7 <= String.length s && (String.sub s i 7 = "diamond" || go (i + 1))
         in
         go 0))

let () =
  Alcotest.run "options"
    [ ( "unit",
        [ Alcotest.test_case "preset features" `Quick test_presets_features;
          Alcotest.test_case "variant_of_string" `Quick test_variant_of_string;
          Alcotest.test_case "custom name" `Quick test_name_custom;
          Alcotest.test_case "with_tiles" `Quick test_with_tiles;
          Alcotest.test_case "pp" `Quick test_pp_smoke ] ) ]
