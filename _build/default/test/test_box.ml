open Repro_poly
open Repro_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let b lo hi = Box.v ~lo ~hi

let test_empty () =
  let e = Box.empty 2 in
  check_bool "empty" true (Box.is_empty e);
  check_int "points" 0 (Box.points e);
  check_bool "normalized" true (Box.is_empty (b [| 3; 1 |] [| 2; 5 |]))

let test_widths_points () =
  let x = b [| 1; 2 |] [| 3; 5 |] in
  Alcotest.(check (array int)) "widths" [| 3; 4 |] (Box.widths x);
  check_int "points" 12 (Box.points x)

let test_inter () =
  let x = b [| 0; 0 |] [| 5; 5 |] and y = b [| 3; -2 |] [| 8; 2 |] in
  let i = Box.inter x y in
  check_bool "equal" true (Box.equal i (b [| 3; 0 |] [| 5; 2 |]));
  check_bool "disjoint empty" true
    (Box.is_empty (Box.inter x (b [| 7; 7 |] [| 9; 9 |])))

let test_hull () =
  let x = b [| 0; 0 |] [| 1; 1 |] and y = b [| 3; -1 |] [| 4; 0 |] in
  check_bool "hull" true (Box.equal (Box.hull x y) (b [| 0; -1 |] [| 4; 1 |]));
  check_bool "hull with empty" true
    (Box.equal (Box.hull x (Box.empty 2)) x)

let test_contains_mem () =
  let x = b [| 0; 0 |] [| 4; 4 |] in
  check_bool "contains" true (Box.contains x (b [| 1; 1 |] [| 3; 3 |]));
  check_bool "not contains" false (Box.contains x (b [| 1; 1 |] [| 5; 3 |]));
  check_bool "contains empty" true (Box.contains x (Box.empty 2));
  check_bool "mem" true (Box.mem x [| 4; 0 |]);
  check_bool "not mem" false (Box.mem x [| 5; 0 |])

let test_of_sizes_ghost () =
  check_bool "interior" true
    (Box.equal (Box.of_sizes [| 4; 6 |]) (b [| 1; 1 |] [| 4; 6 |]));
  check_bool "ghost" true
    (Box.equal (Box.with_ghost [| 4; 6 |]) (b [| 0; 0 |] [| 5; 7 |]))

let test_translate () =
  let x = b [| 1; 1 |] [| 2; 2 |] in
  check_bool "translate" true
    (Box.equal (Box.translate x [| 3; -1 |]) (b [| 4; 0 |] [| 5; 1 |]))

let acc ?(mul = 1) ?(add = 0) ?(den = 1) off = { Expr.mul; add; den; off }

let test_map_access_stencil () =
  (* radius-1 stencil footprint grows the box by 1 on each side *)
  let x = b [| 2; 2 |] [| 5; 5 |] in
  let img =
    Box.map_accesses
      [ [| acc (-1); acc 0 |]; [| acc 1; acc 0 |];
        [| acc 0; acc (-1) |]; [| acc 0; acc 1 |]; [| acc 0; acc 0 |] ]
      x
  in
  check_bool "grown" true (Box.equal img (b [| 1; 1 |] [| 6; 6 |]))

let test_map_access_restrict () =
  (* coarse box [1..4] reading fine at 2x±1 covers [1..9] *)
  let x = b [| 1 |] [| 4 |] in
  let img =
    Box.map_accesses [ [| acc ~mul:2 (-1) |]; [| acc ~mul:2 1 |] ] x
  in
  check_bool "fine box" true (Box.equal img (b [| 1 |] [| 9 |]))

let test_map_access_interp () =
  (* fine box [1..9] reading coarse at (x±1)/2 covers [0..5] *)
  let x = b [| 1 |] [| 9 |] in
  let img =
    Box.map_accesses [ [| acc ~den:2 ~add:(-1) 0 |]; [| acc ~den:2 ~add:1 0 |] ] x
  in
  check_bool "coarse box" true (Box.equal img (b [| 0 |] [| 5 |]))

let test_map_empty () =
  check_bool "empty map" true
    (Box.is_empty (Box.map_accesses [] (b [| 1 |] [| 2 |])));
  check_bool "empty box" true
    (Box.is_empty (Box.map_access [| acc 0 |] (Box.empty 1)))

(* properties *)

let box_gen =
  QCheck.Gen.(
    let* l0 = int_range (-10) 10 in
    let* l1 = int_range (-10) 10 in
    let* w0 = int_range 0 10 in
    let* w1 = int_range 0 10 in
    return (b [| l0; l1 |] [| l0 + w0; l1 + w1 |]))

let box_arb = QCheck.make ~print:Box.to_string box_gen

let prop_inter_commutative =
  QCheck.Test.make ~name:"inter commutative" ~count:200
    (QCheck.pair box_arb box_arb)
    (fun (x, y) -> Box.equal (Box.inter x y) (Box.inter y x))

let prop_hull_contains =
  QCheck.Test.make ~name:"hull contains both" ~count:200
    (QCheck.pair box_arb box_arb)
    (fun (x, y) ->
      let h = Box.hull x y in
      Box.contains h x && Box.contains h y)

let prop_inter_contained =
  QCheck.Test.make ~name:"inter contained in both" ~count:200
    (QCheck.pair box_arb box_arb)
    (fun (x, y) ->
      let i = Box.inter x y in
      Box.contains x i && Box.contains y i)

let prop_map_access_pointwise =
  QCheck.Test.make ~name:"map_access image contains all pointwise images"
    ~count:200
    QCheck.(
      pair box_arb
        (pair
           (pair (int_range 1 3) (int_range (-3) 3))
           (pair (int_range 1 2) (int_range (-3) 3))))
    (fun (x, ((mul, add), (den, off))) ->
      let a = [| acc ~mul ~add ~den off; acc 0 |] in
      let img = Box.map_access a x in
      Box.is_empty x
      || begin
        let fdiv p q = if p >= 0 then p / q else -(((-p) + q - 1) / q) in
        let ok = ref true in
        for i = x.Box.lo.(0) to x.Box.hi.(0) do
          let y = fdiv ((mul * i) + add) den + off in
          if y < img.Box.lo.(0) || y > img.Box.hi.(0) then ok := false
        done;
        !ok
      end)

let () =
  Alcotest.run "box"
    [ ( "unit",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "widths/points" `Quick test_widths_points;
          Alcotest.test_case "inter" `Quick test_inter;
          Alcotest.test_case "hull" `Quick test_hull;
          Alcotest.test_case "contains/mem" `Quick test_contains_mem;
          Alcotest.test_case "of_sizes/ghost" `Quick test_of_sizes_ghost;
          Alcotest.test_case "translate" `Quick test_translate;
          Alcotest.test_case "stencil footprint" `Quick test_map_access_stencil;
          Alcotest.test_case "restrict footprint" `Quick test_map_access_restrict;
          Alcotest.test_case "interp footprint" `Quick test_map_access_interp;
          Alcotest.test_case "empty maps" `Quick test_map_empty ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_inter_commutative; prop_hull_contains; prop_inter_contained;
            prop_map_access_pointwise ] ) ]
