open Repro_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_const () =
  let s = Sizeexpr.const 7 in
  check_bool "is_const" true (Sizeexpr.is_const s);
  check_int "eval" 7 (Sizeexpr.eval ~n:100 s)

let test_n () =
  check_int "N" 64 (Sizeexpr.eval ~n:64 Sizeexpr.n);
  check_bool "not const" false (Sizeexpr.is_const Sizeexpr.n)

let test_n_over () =
  check_int "N/4" 16 (Sizeexpr.eval ~n:64 (Sizeexpr.n_over 4))

let test_n_over_bad_den () =
  Alcotest.check_raises "den 3"
    (Invalid_argument "Sizeexpr.make: denominator must be a positive power of two")
    (fun () -> ignore (Sizeexpr.n_over 3))

let test_eval_divisibility () =
  Alcotest.check_raises "63 not divisible by 4"
    (Invalid_argument "Sizeexpr.eval: N=63 not divisible by 4") (fun () ->
      ignore (Sizeexpr.eval ~n:63 (Sizeexpr.n_over 4)))

let test_add_const () =
  let s = Sizeexpr.add_const (Sizeexpr.n_over 2) (-1) in
  check_int "N/2 - 1" 31 (Sizeexpr.eval ~n:64 s)

let test_halve_double () =
  let s = Sizeexpr.n_over 2 in
  check_int "halve" 16 (Sizeexpr.eval ~n:64 (Sizeexpr.halve s));
  check_int "double" 64 (Sizeexpr.eval ~n:64 (Sizeexpr.double s));
  check_int "double const" 14 (Sizeexpr.eval ~n:64 (Sizeexpr.double (Sizeexpr.const 7)))

let test_halve_odd_offset () =
  Alcotest.check_raises "odd offset"
    (Invalid_argument "Sizeexpr.halve: odd offset") (fun () ->
      ignore (Sizeexpr.halve (Sizeexpr.add_const Sizeexpr.n 1)))

let test_coarsen_refine () =
  let fine = Sizeexpr.add_const Sizeexpr.n (-1) in
  let coarse = Sizeexpr.coarsen fine in
  check_int "coarsen N-1" 31 (Sizeexpr.eval ~n:64 coarse);
  check_bool "refine inverse" true (Sizeexpr.equal (Sizeexpr.refine coarse) fine)

let test_coarsen_const () =
  check_int "coarsen 7" 3 (Sizeexpr.eval ~n:8 (Sizeexpr.coarsen (Sizeexpr.const 7)))

let test_coarsen_even_offset () =
  Alcotest.check_raises "even offset"
    (Invalid_argument "Sizeexpr.coarsen: even offset") (fun () ->
      ignore (Sizeexpr.coarsen Sizeexpr.n))

let test_same_class () =
  let a = Sizeexpr.add_const (Sizeexpr.n_over 2) (-1) in
  let b = Sizeexpr.add_const (Sizeexpr.n_over 2) 3 in
  let c = Sizeexpr.add_const (Sizeexpr.n_over 4) (-1) in
  check_bool "same" true (Sizeexpr.same_class a b);
  check_bool "different den" false (Sizeexpr.same_class a c);
  check_bool "const vs parametric" false
    (Sizeexpr.same_class a (Sizeexpr.const 31))

let test_normalization () =
  (* 2N/2 normalizes to N *)
  let s = Sizeexpr.make ~num:2 ~den:2 ~off:0 in
  check_bool "normalized" true (Sizeexpr.equal s Sizeexpr.n)

let test_pp () =
  check_str "N" "N" (Sizeexpr.to_string Sizeexpr.n);
  check_str "N/2-1" "N/2-1"
    (Sizeexpr.to_string (Sizeexpr.add_const (Sizeexpr.n_over 2) (-1)));
  check_str "const" "5" (Sizeexpr.to_string (Sizeexpr.const 5))

let test_compare_total () =
  let a = Sizeexpr.n and b = Sizeexpr.n_over 2 in
  check_bool "antisymmetric" true
    (Sizeexpr.compare a b = -Sizeexpr.compare b a);
  check_int "reflexive" 0 (Sizeexpr.compare a a)

let prop_coarsen_refine_roundtrip =
  QCheck.Test.make ~name:"refine (coarsen s) = s for odd offsets" ~count:100
    QCheck.(pair (int_range 0 4) (int_range (-8) 8))
    (fun (dlog, halfoff) ->
      let off = (2 * halfoff) - 1 in
      let s = Sizeexpr.add_const (Sizeexpr.n_over (1 lsl dlog)) off in
      Sizeexpr.equal (Sizeexpr.refine (Sizeexpr.coarsen s)) s)

let prop_eval_linear =
  QCheck.Test.make ~name:"eval is affine in N" ~count:100
    QCheck.(pair (int_range 0 3) (int_range (-4) 4))
    (fun (dlog, off) ->
      let d = 1 lsl dlog in
      let s = Sizeexpr.add_const (Sizeexpr.n_over d) off in
      let n1 = 8 * d and n2 = 16 * d in
      Sizeexpr.eval ~n:n2 s - Sizeexpr.eval ~n:n1 s = (n2 - n1) / d)

let () =
  Alcotest.run "sizeexpr"
    [ ( "unit",
        [ Alcotest.test_case "const" `Quick test_const;
          Alcotest.test_case "n" `Quick test_n;
          Alcotest.test_case "n_over" `Quick test_n_over;
          Alcotest.test_case "bad denominator" `Quick test_n_over_bad_den;
          Alcotest.test_case "divisibility" `Quick test_eval_divisibility;
          Alcotest.test_case "add_const" `Quick test_add_const;
          Alcotest.test_case "halve/double" `Quick test_halve_double;
          Alcotest.test_case "halve odd offset" `Quick test_halve_odd_offset;
          Alcotest.test_case "coarsen/refine" `Quick test_coarsen_refine;
          Alcotest.test_case "coarsen const" `Quick test_coarsen_const;
          Alcotest.test_case "coarsen even offset" `Quick test_coarsen_even_offset;
          Alcotest.test_case "same_class" `Quick test_same_class;
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "pretty printing" `Quick test_pp;
          Alcotest.test_case "compare" `Quick test_compare_total ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_coarsen_refine_roundtrip; prop_eval_linear ] ) ]
