open Repro_core
open Repro_mg
module Grid = Repro_grid.Grid
module Mempool = Repro_runtime.Mempool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_variant ?(domains = 1) ?(cycles = 2) ?(n = 32) cfg opts =
  let rt = Exec.runtime ~domains () in
  let problem = Problem.poisson ~dims:cfg.Cycle.dims ~n in
  let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
  let r = Solver.iterate stepper ~problem ~cycles ~residuals:false () in
  let stats = Mempool.stats rt.Exec.pool in
  Exec.free_runtime rt;
  (r.Solver.v, stats)

let assert_equal_grids msg a b =
  let d = Grid.max_abs_diff a b in
  if d > 1e-12 then Alcotest.failf "%s: max diff %g" msg d

let all_variants =
  [ ("naive", Options.naive); ("opt", Options.opt);
    ("opt+", Options.opt_plus); ("dtile-opt+", Options.dtile_opt_plus) ]

let configs =
  [ Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4);
    Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(10, 0, 0);
    Cycle.default ~dims:2 ~shape:Cycle.W ~smoothing:(4, 4, 4);
    Cycle.default ~dims:2 ~shape:Cycle.W ~smoothing:(10, 0, 0);
    Cycle.default ~dims:3 ~shape:Cycle.V ~smoothing:(4, 4, 4);
    Cycle.default ~dims:3 ~shape:Cycle.W ~smoothing:(2, 1, 3);
    Cycle.default ~dims:2 ~shape:Cycle.F ~smoothing:(2, 2, 2) ]

let test_variants_agree cfg () =
  let n = if cfg.Cycle.dims = 2 then 32 else 16 in
  let reference, _ = run_variant ~n cfg Options.naive in
  List.iter
    (fun (name, opts) ->
      let v, _ = run_variant ~n cfg opts in
      assert_equal_grids name reference v)
    (List.tl all_variants)

let test_domains_agree () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let reference, _ = run_variant ~domains:1 cfg Options.opt_plus in
  List.iter
    (fun domains ->
      let v, _ = run_variant ~domains cfg Options.opt_plus in
      assert_equal_grids (Printf.sprintf "%d domains" domains) reference v)
    [ 2; 3; 4 ]

let test_domains_agree_diamond () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(10, 0, 0) in
  let reference, _ = run_variant ~domains:1 cfg Options.dtile_opt_plus in
  let v, _ = run_variant ~domains:3 cfg Options.dtile_opt_plus in
  assert_equal_grids "diamond parallel" reference v

let test_tile_sizes_dont_change_results () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let reference, _ = run_variant cfg Options.naive in
  List.iter
    (fun (t0, t1) ->
      let opts =
        Options.with_tiles Options.opt_plus ~t2:[| t0; t1 |] ~t3:[| 4; 4; 16 |]
      in
      let v, _ = run_variant cfg opts in
      assert_equal_grids (Printf.sprintf "tiles %dx%d" t0 t1) reference v)
    [ (4, 4); (8, 64); (16, 7); (64, 512); (3, 5) ]

let test_sigma_doesnt_change_results () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(10, 0, 0) in
  let reference, _ = run_variant cfg Options.naive in
  List.iter
    (fun sigma ->
      let opts =
        { Options.opt_plus with
          Options.smoother = Options.Diamond_smoother { sigma } }
      in
      let v, _ = run_variant cfg opts in
      assert_equal_grids (Printf.sprintf "sigma %d" sigma) reference v)
    [ 2; 4; 7; 16; 64 ]

let test_scratch_threshold_doesnt_change_results () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let reference, _ = run_variant cfg Options.naive in
  List.iter
    (fun threshold ->
      let opts =
        { Options.opt_plus with Options.scratch_class_threshold = threshold }
      in
      let v, _ = run_variant cfg opts in
      assert_equal_grids (Printf.sprintf "threshold %d" threshold) reference v)
    [ 1; 8; 128 ]

let test_generic_kernels_agree () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let reference, _ = run_variant cfg Options.opt_plus in
  let v, _ =
    run_variant cfg { Options.opt_plus with Options.walk_kernels = false }
  in
  assert_equal_grids "generic kernels" reference v;
  let cfg3 = Cycle.default ~dims:3 ~shape:Cycle.W ~smoothing:(2, 1, 2) in
  let r3, _ = run_variant ~n:16 cfg3 Options.naive in
  let v3, _ =
    run_variant ~n:16 cfg3
      { Options.naive with Options.walk_kernels = false }
  in
  assert_equal_grids "generic kernels 3D" r3 v3

let test_group_limit_doesnt_change_results () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.W ~smoothing:(4, 4, 4) in
  let reference, _ = run_variant cfg Options.naive in
  List.iter
    (fun limit ->
      let opts = { Options.opt_plus with Options.group_size_limit = limit } in
      let v, _ = run_variant cfg opts in
      assert_equal_grids (Printf.sprintf "limit %d" limit) reference v)
    [ 1; 2; 4; 10 ]

let test_pool_reused_across_cycles () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let _, stats = run_variant ~cycles:5 cfg Options.opt_plus in
  check_bool "pool hits" true (stats.Mempool.reuse_hits > 0);
  (* fresh allocations happen only in the first cycle: five cycles must
     not allocate five times the arrays *)
  check_bool "fresh bounded" true
    (stats.Mempool.fresh_allocs * 4 <= stats.Mempool.reuse_hits)

let test_input_not_modified () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let n = 32 in
  let problem = Problem.poisson ~dims:2 ~n in
  let v0 = Grid.copy problem.Problem.v in
  let f0 = Grid.copy problem.Problem.f in
  let rt = Exec.runtime () in
  let stepper = Solver.polymg_stepper cfg ~n ~opts:Options.opt_plus ~rt in
  let out = Grid.create (Grid.extents problem.Problem.v) in
  stepper ~v:problem.Problem.v ~f:problem.Problem.f ~out;
  Exec.free_runtime rt;
  assert_equal_grids "v untouched" v0 problem.Problem.v;
  assert_equal_grids "f untouched" f0 problem.Problem.f

let test_wrong_extents_rejected () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let n = 32 in
  let rt = Exec.runtime () in
  let stepper = Solver.polymg_stepper cfg ~n ~opts:Options.naive ~rt in
  let good = Grid.interior ~dims:2 (n - 1) in
  let bad = Grid.interior ~dims:2 n in
  check_bool "raises" true
    (try
       stepper ~v:bad ~f:good ~out:(Grid.copy good);
       false
     with Invalid_argument _ -> true);
  Exec.free_runtime rt

let test_points_computed_redundancy () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let n = 32 in
  let params = Cycle.params cfg ~n in
  let p = Cycle.build cfg in
  let naive = Plan.build p ~opts:Options.naive ~n ~params in
  let fused = Plan.build p ~opts:Options.opt_plus ~n ~params in
  (* overlapped tiling recomputes: fused plans evaluate at least as many
     points as the naive plan *)
  check_bool "redundancy >= 0" true
    (Exec.points_computed fused >= Exec.points_computed naive);
  check_bool "positive" true (Exec.points_computed naive > 0)

let test_repeated_execution_deterministic () =
  let cfg = Cycle.default ~dims:3 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let a, _ = run_variant ~n:16 cfg Options.opt_plus in
  let b, _ = run_variant ~n:16 cfg Options.opt_plus in
  assert_equal_grids "deterministic" a b

let test_missing_input_rejected () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(2, 2, 2) in
  let n = 32 in
  let p = Cycle.build cfg in
  let plan = Plan.build p ~opts:Options.naive ~n ~params:(Cycle.params cfg ~n) in
  let rt = Exec.runtime () in
  let g = Grid.interior ~dims:2 (n - 1) in
  check_bool "raises" true
    (try
       Exec.run plan rt ~inputs:[] ~outputs:[ (Cycle.output p, g) ];
       false
     with Invalid_argument _ -> true);
  Exec.free_runtime rt;
  check_int "sanity" 2 (Grid.dims g)

let () =
  let agree_cases =
    List.map
      (fun cfg ->
        Alcotest.test_case (Cycle.bench_name cfg) `Quick
          (test_variants_agree cfg))
      configs
  in
  Alcotest.run "exec"
    [ ("variants agree with naive", agree_cases);
      ( "parallel",
        [ Alcotest.test_case "domains agree" `Quick test_domains_agree;
          Alcotest.test_case "diamond domains agree" `Quick
            test_domains_agree_diamond ] );
      ( "configuration invariance",
        [ Alcotest.test_case "tile sizes" `Quick test_tile_sizes_dont_change_results;
          Alcotest.test_case "sigma" `Quick test_sigma_doesnt_change_results;
          Alcotest.test_case "scratch threshold" `Quick
            test_scratch_threshold_doesnt_change_results;
          Alcotest.test_case "group limit" `Quick
            test_group_limit_doesnt_change_results;
          Alcotest.test_case "generic kernels" `Quick
            test_generic_kernels_agree ] );
      ( "runtime behaviour",
        [ Alcotest.test_case "pool reuse across cycles" `Quick
            test_pool_reused_across_cycles;
          Alcotest.test_case "inputs not modified" `Quick test_input_not_modified;
          Alcotest.test_case "wrong extents" `Quick test_wrong_extents_rejected;
          Alcotest.test_case "points computed" `Quick test_points_computed_redundancy;
          Alcotest.test_case "deterministic" `Quick
            test_repeated_execution_deterministic;
          Alcotest.test_case "missing input" `Quick test_missing_input_rejected ] ) ]
