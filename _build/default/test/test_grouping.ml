open Repro_ir
open Repro_core
open Repro_mg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vcfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4)

let test_naive_singleton_groups () =
  let p = Cycle.build vcfg in
  let groups = Grouping.run p ~opts:Options.naive ~n:32 in
  check_int "one group per stage" (Pipeline.stage_count p)
    (List.length groups);
  List.iter
    (fun (g : Grouping.group) ->
      check_int "singleton" 1 (List.length g.Grouping.members);
      check_bool "liveout" true (g.Grouping.liveouts = g.Grouping.members))
    groups

let test_fused_groups_cover_all_stages () =
  let p = Cycle.build vcfg in
  let groups = Grouping.run p ~opts:Options.opt_plus ~n:32 in
  let members =
    List.concat_map (fun (g : Grouping.group) -> g.Grouping.members) groups
  in
  check_int "all stages exactly once" (Pipeline.stage_count p)
    (List.length (List.sort_uniq Int.compare members));
  check_int "no duplicates" (List.length members)
    (List.length (List.sort_uniq Int.compare members));
  check_bool "fewer groups than stages" true
    (List.length groups < Pipeline.stage_count p)

let test_group_size_limit_respected () =
  let p = Cycle.build vcfg in
  let opts = { Options.opt_plus with Options.group_size_limit = 3 } in
  let groups = Grouping.run p ~opts ~n:32 in
  List.iter
    (fun (g : Grouping.group) ->
      check_bool "limit" true (List.length g.Grouping.members <= 3))
    groups

let test_groups_topologically_ordered () =
  let p = Cycle.build vcfg in
  let groups = Grouping.run p ~opts:Options.opt_plus ~n:32 in
  let position = Hashtbl.create 64 in
  List.iteri
    (fun gi (g : Grouping.group) ->
      List.iter (fun m -> Hashtbl.replace position m gi) g.Grouping.members)
    groups;
  Array.iter
    (fun (f : Func.t) ->
      if not (Func.is_input f) then
        List.iter
          (fun prod ->
            match Hashtbl.find_opt position prod with
            | None -> ()  (* input *)
            | Some gp ->
              check_bool "producer group not later" true
                (gp <= Hashtbl.find position f.Func.id))
          (Func.producers f))
    (Pipeline.funcs p)

let test_liveouts_match_dag () =
  let p = Cycle.build vcfg in
  let groups = Grouping.run p ~opts:Options.opt_plus ~n:32 in
  List.iter
    (fun (g : Grouping.group) ->
      List.iter
        (fun m ->
          let is_liveout = List.mem m g.Grouping.liveouts in
          let expected =
            Pipeline.is_liveout p m
            || Pipeline.consumers p m = []
            || List.exists
                 (fun c -> not (List.mem c g.Grouping.members))
                 (Pipeline.consumers p m)
          in
          check_bool "liveout iff external use" expected is_liveout)
        g.Grouping.members)
    groups

let test_overlap_threshold_blocks_fusion () =
  let p = Cycle.build vcfg in
  let n = 32 in
  let opts = { Options.opt_plus with Options.overlap_threshold = 0.0 } in
  let groups = Grouping.run p ~opts ~n in
  (* zero tolerance: any fused group must have zero measured redundancy
     (pointwise chains), and the smoother chains must stay unfused *)
  check_bool "some groups are singletons" true
    (List.exists
       (fun (g : Grouping.group) -> List.length g.Grouping.members = 1)
       groups);
  List.iter
    (fun (g : Grouping.group) ->
      if List.length g.Grouping.members > 1 then begin
        match
          Repro_poly.Regions.build p ~n ~members:g.Grouping.members
            ~liveouts:g.Grouping.liveouts
        with
        | Ok geom ->
          let dims =
            (Repro_poly.Regions.reference geom).Repro_poly.Regions.func.Func.dims
          in
          Alcotest.(check (float 1e-9)) "zero redundancy" 0.0
            (Repro_poly.Regions.redundancy geom
               ~tile_sizes:(Grouping.tile_sizes_for opts ~dims))
        | Error e -> Alcotest.fail e
      end)
    groups

let test_diamond_chains_detected () =
  let p = Cycle.build vcfg in
  let groups = Grouping.run p ~opts:Options.dtile_opt_plus ~n:32 in
  let diamonds = List.filter (fun g -> g.Grouping.diamond) groups in
  check_bool "has diamond groups" true (List.length diamonds > 0);
  List.iter
    (fun (g : Grouping.group) ->
      check_int "chain of 4 smoothing steps" 4 (List.length g.Grouping.members);
      List.iter
        (fun m ->
          match (Pipeline.func p m).Func.kind with
          | Func.Smooth _ -> ()
          | _ -> Alcotest.fail "diamond member must be a smoothing step")
        g.Grouping.members)
    diamonds

let test_no_diamond_for_overlapped () =
  let p = Cycle.build vcfg in
  let groups = Grouping.run p ~opts:Options.opt_plus ~n:32 in
  check_bool "none" true
    (List.for_all (fun g -> not g.Grouping.diamond) groups)

let test_tile_sizes_for () =
  Alcotest.(check (array int)) "2d" [| 32; 256 |]
    (Grouping.tile_sizes_for Options.opt_plus ~dims:2);
  Alcotest.(check (array int)) "3d" [| 8; 8; 64 |]
    (Grouping.tile_sizes_for Options.opt_plus ~dims:3)

(* plan-level checks *)

let test_plan_naive_arrays_one_per_stage () =
  let p = Cycle.build vcfg in
  let plan =
    Plan.build p ~opts:Options.naive ~n:32 ~params:(Cycle.params vcfg ~n:32)
  in
  check_int "arrays = stages" (Pipeline.stage_count p) (Plan.array_count plan)

let test_plan_reuse_shrinks_arrays () =
  let p = Cycle.build vcfg in
  let n = 32 in
  let params = Cycle.params vcfg ~n in
  let no_reuse = Plan.build p ~opts:Options.opt ~n ~params in
  let reuse = Plan.build p ~opts:Options.opt_plus ~n ~params in
  check_bool "fewer arrays" true
    (Plan.array_count reuse < Plan.array_count no_reuse);
  check_bool "fewer bytes" true
    (Plan.total_array_bytes reuse < Plan.total_array_bytes no_reuse)

let test_plan_scratch_reuse_shrinks_scratch () =
  let p = Cycle.build vcfg in
  let n = 32 in
  let params = Cycle.params vcfg ~n in
  let no_reuse = Plan.build p ~opts:Options.opt ~n ~params in
  let reuse = Plan.build p ~opts:Options.opt_plus ~n ~params in
  check_bool "smaller scratch" true
    (Plan.scratch_bytes_per_thread reuse
     <= Plan.scratch_bytes_per_thread no_reuse);
  check_bool "nonzero" true (Plan.scratch_bytes_per_thread reuse > 0)

let test_plan_array_lifetimes_consistent () =
  let p = Cycle.build vcfg in
  let n = 32 in
  let plan =
    Plan.build p ~opts:Options.opt_plus ~n ~params:(Cycle.params vcfg ~n)
  in
  Array.iter
    (fun (a : Plan.array_info) ->
      check_bool "first <= last" true (a.Plan.first_group <= a.Plan.last_group);
      check_bool "len positive" true (a.Plan.len > 0))
    plan.Plan.arrays

let test_plan_members_have_storage () =
  let p = Cycle.build vcfg in
  let n = 32 in
  List.iter
    (fun opts ->
      let plan = Plan.build p ~opts ~n ~params:(Cycle.params vcfg ~n) in
      Array.iter
        (fun g ->
          match g with
          | Plan.G_tiled tg ->
            Array.iter
              (fun (m : Plan.member) ->
                check_bool "storage" true
                  (m.Plan.scratch_slot <> None || m.Plan.array_id <> None))
              tg.Plan.members
          | Plan.G_diamond _ -> ())
        plan.Plan.groups)
    [ Options.naive; Options.opt; Options.opt_plus; Options.dtile_opt_plus ]

let test_plan_summary_smoke () =
  let p = Cycle.build vcfg in
  let n = 32 in
  let plan =
    Plan.build p ~opts:Options.opt_plus ~n ~params:(Cycle.params vcfg ~n)
  in
  let s = Format.asprintf "%a" Plan.summary plan in
  check_bool "mentions groups" true (String.length s > 200)

let test_plan_rejects_wide_stencils () =
  let ctx = Repro_ir.Dsl.create "wide" in
  let sizes = [| Repro_ir.Sizeexpr.add_const Repro_ir.Sizeexpr.n (-1);
                 Repro_ir.Sizeexpr.add_const Repro_ir.Sizeexpr.n (-1) |] in
  let v = Repro_ir.Dsl.grid ctx "V" ~dims:2 ~sizes in
  let a =
    Repro_ir.Dsl.func ctx ~name:"wide" ~sizes
      (Repro_ir.Expr.load v.Func.id [| -2; 0 |])
  in
  let p = Repro_ir.Dsl.finish ctx ~outputs:[ a ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Plan.build p ~opts:Options.naive ~n:16
                 ~params:(fun _ -> 0.0));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "grouping"
    [ ( "grouping",
        [ Alcotest.test_case "naive singletons" `Quick test_naive_singleton_groups;
          Alcotest.test_case "fusion covers all" `Quick
            test_fused_groups_cover_all_stages;
          Alcotest.test_case "size limit" `Quick test_group_size_limit_respected;
          Alcotest.test_case "topological order" `Quick
            test_groups_topologically_ordered;
          Alcotest.test_case "liveouts" `Quick test_liveouts_match_dag;
          Alcotest.test_case "overlap threshold" `Quick
            test_overlap_threshold_blocks_fusion;
          Alcotest.test_case "diamond chains" `Quick test_diamond_chains_detected;
          Alcotest.test_case "no diamond in opt+" `Quick test_no_diamond_for_overlapped;
          Alcotest.test_case "tile sizes" `Quick test_tile_sizes_for ] );
      ( "plan",
        [ Alcotest.test_case "naive one array per stage" `Quick
            test_plan_naive_arrays_one_per_stage;
          Alcotest.test_case "array reuse shrinks" `Quick test_plan_reuse_shrinks_arrays;
          Alcotest.test_case "scratch reuse shrinks" `Quick
            test_plan_scratch_reuse_shrinks_scratch;
          Alcotest.test_case "lifetimes" `Quick test_plan_array_lifetimes_consistent;
          Alcotest.test_case "members have storage" `Quick
            test_plan_members_have_storage;
          Alcotest.test_case "summary" `Quick test_plan_summary_smoke;
          Alcotest.test_case "wide stencil rejected" `Quick
            test_plan_rejects_wide_stencils ] ) ]

