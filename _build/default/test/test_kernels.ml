(* Unit tests for the hand-written kernels behind the handopt baselines
   and the NAS reference — validated against straightforward per-point
   reference computations. *)

open Repro_mg
module Buf = Repro_grid.Buf
module Grid = Repro_grid.Grid

let check_float = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)

let mk2 n f =
  let g = Grid.interior ~dims:2 n in
  Grid.fill_all g ~f:(fun idx -> f idx.(0) idx.(1));
  g

let mk3 n f =
  let g = Grid.interior ~dims:3 n in
  Grid.fill_all g ~f:(fun idx -> f idx.(0) idx.(1) idx.(2));
  g

let test_jacobi2d_pointwise () =
  let n = 6 in
  let v = mk2 n (fun i j -> float_of_int ((i * 3) + j)) in
  let f = mk2 n (fun i j -> float_of_int (i - j)) in
  let dst = Grid.interior ~dims:2 n in
  let w = 0.05 and invhsq = 2.0 in
  Kernels.jacobi2d ~n ~w ~invhsq ~src:v.Grid.buf.Buf.data
    ~frhs:f.Grid.buf.Buf.data ~dst:dst.Grid.buf.Buf.data ~rlo:1 ~rhi:n;
  for i = 1 to n do
    for j = 1 to n do
      let c = Grid.get2 v i j in
      let a =
        invhsq
        *. ((4.0 *. c) -. Grid.get2 v (i - 1) j -. Grid.get2 v (i + 1) j
            -. Grid.get2 v i (j - 1) -. Grid.get2 v i (j + 1))
      in
      check_float
        (Printf.sprintf "(%d,%d)" i j)
        (c -. (w *. (a -. Grid.get2 f i j)))
        (Grid.get2 dst i j)
    done
  done

let test_scalef2d () =
  let n = 4 in
  let f = mk2 n (fun i j -> float_of_int (i * j)) in
  let dst = Grid.interior ~dims:2 n in
  Kernels.scalef2d ~n ~w:0.5 ~frhs:f.Grid.buf.Buf.data
    ~dst:dst.Grid.buf.Buf.data ~rlo:1 ~rhi:n;
  check_float "scaled" (0.5 *. 6.0) (Grid.get2 dst 2 3)

let test_resid2d_of_solution_is_zero () =
  (* if f = A v exactly, the residual vanishes *)
  let n = 8 in
  let v = mk2 n (fun i j -> sin (float_of_int (i + (2 * j)))) in
  let f = Grid.interior ~dims:2 n in
  Verify.apply_poisson ~n:(n + 1) ~v ~out:f;
  let r = Grid.interior ~dims:2 n in
  let invhsq = float_of_int ((n + 1) * (n + 1)) in
  Kernels.resid2d ~n ~invhsq ~v:v.Grid.buf.Buf.data ~frhs:f.Grid.buf.Buf.data
    ~dst:r.Grid.buf.Buf.data ~rlo:1 ~rhi:n;
  check_bool "zero residual" true (Repro_grid.Norms.linf r < 1e-10)

let test_restrict2d_constant () =
  (* full weighting of a constant interior away from the boundary is the
     constant (weights sum to 1) *)
  let nc = 7 in
  let nf = (2 * nc) + 1 in
  let fine = mk2 nf (fun _ _ -> 3.0) in
  let dst = Grid.interior ~dims:2 nc in
  Kernels.restrict2d ~nc ~fine:fine.Grid.buf.Buf.data
    ~dst:dst.Grid.buf.Buf.data ~rlo:1 ~rhi:nc;
  check_float "interior" 3.0 (Grid.get2 dst 3 3);
  check_float "corner (partial stencil ok)" 3.0 (Grid.get2 dst 1 1)

let test_interp_correct2d_constant () =
  (* interpolating a constant coarse field adds that constant at interior
     fine points away from the boundary *)
  let nc = 7 in
  let nf = (2 * nc) + 1 in
  let coarse = mk2 nc (fun _ _ -> 2.0) in
  (* make ghosts zero like real error grids *)
  let coarse2 = Grid.interior ~dims:2 nc in
  Grid.fill_interior coarse2 ~f:(fun _ -> 2.0);
  ignore coarse;
  let v = Grid.interior ~dims:2 nf in
  for i = 0 to nc do
    Kernels.interp_correct2d ~nc ~coarse:coarse2.Grid.buf.Buf.data
      ~v:v.Grid.buf.Buf.data ~rlo:i ~rhi:i
  done;
  (* away from boundary, bilinear interpolation of a constant = constant *)
  check_float "even-even" 2.0 (Grid.get2 v 6 6);
  check_float "odd-odd" 2.0 (Grid.get2 v 7 7);
  check_float "odd-even" 2.0 (Grid.get2 v 7 6);
  (* boundary-adjacent points see the zero ghost *)
  check_float "fine (1,1)" (2.0 *. 0.25) (Grid.get2 v 1 1)

let test_interp_matches_dsl () =
  (* the hand interpolation agrees with the DSL Interp construct *)
  let nc = 7 in
  let nf = (2 * nc) + 1 in
  let coarse = Grid.interior ~dims:2 nc in
  Grid.fill_interior coarse ~f:(fun idx ->
      float_of_int ((idx.(0) * 5) + idx.(1)));
  (* hand *)
  let vh = Grid.interior ~dims:2 nf in
  for i = 0 to nc do
    Kernels.interp_correct2d ~nc ~coarse:coarse.Grid.buf.Buf.data
      ~v:vh.Grid.buf.Buf.data ~rlo:i ~rhi:i
  done;
  (* DSL *)
  let open Repro_ir in
  let open Repro_core in
  let ctx = Dsl.create "i" in
  let sizes = [| Sizeexpr.add_const (Sizeexpr.n_over 2) (-1);
                 Sizeexpr.add_const (Sizeexpr.n_over 2) (-1) |] in
  let e = Dsl.grid ctx "E" ~dims:2 ~sizes in
  let up = Dsl.interp_fn ctx ~name:"up" ~input:e () in
  let p = Dsl.finish ctx ~outputs:[ up ] in
  let plan = Plan.build p ~opts:Options.naive ~n:(nf + 1)
      ~params:(fun s -> invalid_arg s) in
  let out = Grid.interior ~dims:2 nf in
  let rt = Exec.runtime () in
  Exec.run plan rt ~inputs:[ (e.Func.id, coarse) ]
    ~outputs:[ (up.Func.id, out) ];
  Exec.free_runtime rt;
  check_bool "hand == dsl" true (Grid.max_abs_diff vh out < 1e-13)

let test_jacobi3d_pointwise () =
  let n = 4 in
  let v = mk3 n (fun i j k -> float_of_int ((i * 9) + (j * 3) + k)) in
  let f = mk3 n (fun i j k -> float_of_int (i + j - k)) in
  let dst = Grid.interior ~dims:3 n in
  let w = 0.1 and invhsq = 1.5 in
  Kernels.jacobi3d ~n ~w ~invhsq ~src:v.Grid.buf.Buf.data
    ~frhs:f.Grid.buf.Buf.data ~dst:dst.Grid.buf.Buf.data ~rlo:1 ~rhi:n;
  let i, j, k = (2, 3, 1) in
  let c = Grid.get3 v i j k in
  let a =
    invhsq
    *. ((6.0 *. c) -. Grid.get3 v (i - 1) j k -. Grid.get3 v (i + 1) j k
        -. Grid.get3 v i (j - 1) k -. Grid.get3 v i (j + 1) k
        -. Grid.get3 v i j (k - 1) -. Grid.get3 v i j (k + 1))
  in
  check_float "3d point" (c -. (w *. (a -. Grid.get3 f i j k)))
    (Grid.get3 dst i j k)

let test_restrict3d_constant () =
  let nc = 3 in
  let nf = (2 * nc) + 1 in
  let fine = mk3 nf (fun _ _ _ -> 5.0) in
  let dst = Grid.interior ~dims:3 nc in
  Kernels.restrict3d ~nc ~fine:fine.Grid.buf.Buf.data
    ~dst:dst.Grid.buf.Buf.data ~rlo:1 ~rhi:nc;
  check_float "interior" 5.0 (Grid.get3 dst 2 2 2)

let test_copy_kernels () =
  let n = 5 in
  let src = mk2 n (fun i j -> float_of_int (i * j)) in
  let dst = Grid.interior ~dims:2 n in
  Kernels.copy2d ~n ~src:src.Grid.buf.Buf.data ~dst:dst.Grid.buf.Buf.data
    ~rlo:1 ~rhi:n;
  check_float "copied" 12.0 (Grid.get2 dst 3 4);
  check_float "ghost untouched" 0.0 (Grid.get2 dst 0 0)

(* NAS gather: restricting a constant with NAS weights gives 4x (weights
   sum to 1/2 + 6/4 + 12/8 + 8/16 = 4), matching the benchmark's scaling *)
let test_nas_rprj3_weight_sum () =
  let nc = 3 in
  let nf = (2 * nc) + 1 in
  let fine = mk3 nf (fun _ _ _ -> 1.0) in
  let dst = Grid.interior ~dims:3 nc in
  let r = Grid.interior ~dims:3 nc in
  ignore r;
  let open Repro_nas in
  ignore (Nas_coeffs.r);
  (* exercise via the reference module's public surface: residual of a
     zero iterate equals the rhs *)
  let u = Grid.interior ~dims:3 nf in
  check_float "resid of zero iterate = ||rhs||"
    (Repro_grid.Norms.l2 fine)
    (Nas_ref.residual_l2 ~u ~v:fine);
  ignore dst

let test_stencils_module () =
  let open Repro_ir in
  (* weights sum: laplacian sums to 0 in any rank, full weighting to 1 *)
  List.iter
    (fun dims ->
      let sum w =
        List.fold_left (fun a (_, v) -> a +. v) 0.0 (Weights.terms w)
      in
      check_float "laplacian sums to 0" 0.0 (sum (Stencils.laplacian ~dims));
      check_float "full weighting sums to 1" 1.0
        (sum (Stencils.full_weighting ~dims));
      check_float "injection sums to 1" 1.0 (sum (Stencils.injection ~dims)))
    [ 2; 3 ];
  (* the jacobi body linearizes and matches Cycle's smoother shape *)
  let sizes = [| Sizeexpr.add_const Sizeexpr.n (-1);
                 Sizeexpr.add_const Sizeexpr.n (-1) |] in
  let ctx = Dsl.create "s" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes in
  let f = Dsl.grid ctx "F" ~dims:2 ~sizes in
  let body =
    Stencils.jacobi ~dims:2 ~v ~f ~invhsq:(Expr.const 16.0)
      ~weight:(Expr.const 0.0125)
  in
  match Repro_core.Compile.linearize body ~params:(fun s -> invalid_arg s) with
  | Some (c, terms) ->
    check_float "no constant" 0.0 c;
    Alcotest.(check int) "6 terms" 6 (List.length terms)
  | None -> Alcotest.fail "jacobi body must be linear"

let () =
  Alcotest.run "kernels"
    [ ( "2d",
        [ Alcotest.test_case "jacobi pointwise" `Quick test_jacobi2d_pointwise;
          Alcotest.test_case "scalef" `Quick test_scalef2d;
          Alcotest.test_case "resid of solution" `Quick
            test_resid2d_of_solution_is_zero;
          Alcotest.test_case "restrict constant" `Quick test_restrict2d_constant;
          Alcotest.test_case "interp constant" `Quick
            test_interp_correct2d_constant;
          Alcotest.test_case "interp matches DSL" `Quick test_interp_matches_dsl;
          Alcotest.test_case "copy" `Quick test_copy_kernels ] );
      ( "3d",
        [ Alcotest.test_case "jacobi pointwise" `Quick test_jacobi3d_pointwise;
          Alcotest.test_case "restrict constant" `Quick test_restrict3d_constant ] );
      ( "nas",
        [ Alcotest.test_case "residual of zero" `Quick
            test_nas_rprj3_weight_sum ] );
      ( "stencils",
        [ Alcotest.test_case "module" `Quick test_stencils_module ] ) ]
