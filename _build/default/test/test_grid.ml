open Repro_grid

let check_float = Alcotest.(check (float 1e-12))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_buf_create () =
  let b = Buf.create 10 in
  check_int "len" 10 (Buf.len b);
  for i = 0 to 9 do
    check_float "zeroed" 0.0 (Buf.get b i)
  done

let test_buf_create_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Buf.create: negative length")
    (fun () -> ignore (Buf.create (-1)))

let test_buf_get_set () =
  let b = Buf.create 4 in
  Buf.set b 2 3.5;
  check_float "set/get" 3.5 (Buf.get b 2);
  check_float "unsafe" 3.5 (Buf.unsafe_get b 2)

let test_buf_bounds () =
  let b = Buf.create 4 in
  Alcotest.check_raises "get oob" (Invalid_argument "Buf.get: index out of bounds")
    (fun () -> ignore (Buf.get b 4));
  Alcotest.check_raises "set oob" (Invalid_argument "Buf.set: index out of bounds")
    (fun () -> Buf.set b (-1) 0.0)

let test_buf_fill_blit () =
  let a = Buf.create 5 and b = Buf.create 5 in
  Buf.fill a 2.0;
  Buf.blit ~src:a ~dst:b;
  check_float "blit" 2.0 (Buf.get b 4);
  check_bool "equal" true (Buf.equal a b)

let test_buf_blit_mismatch () =
  let a = Buf.create 5 and b = Buf.create 6 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Buf.blit: length mismatch")
    (fun () -> Buf.blit ~src:a ~dst:b)

let test_buf_sub_blit () =
  let a = Buf.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  let b = Buf.create 5 in
  Buf.sub_blit ~src:a ~src_pos:1 ~dst:b ~dst_pos:2 ~len:3;
  check_float "b2" 2.0 (Buf.get b 2);
  check_float "b4" 4.0 (Buf.get b 4);
  check_float "b0 untouched" 0.0 (Buf.get b 0)

let test_buf_sub_blit_oob () =
  let a = Buf.create 3 and b = Buf.create 3 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Buf.sub_blit: range out of bounds") (fun () ->
      Buf.sub_blit ~src:a ~src_pos:2 ~dst:b ~dst_pos:0 ~len:2)

let test_buf_of_to_array () =
  let xs = [| 0.5; -1.5; 3.25 |] in
  Alcotest.(check (array (float 0.0))) "roundtrip" xs (Buf.to_array (Buf.of_array xs))

let test_buf_copy_independent () =
  let a = Buf.of_array [| 1.; 2. |] in
  let b = Buf.copy a in
  Buf.set b 0 9.0;
  check_float "original untouched" 1.0 (Buf.get a 0)

let test_buf_max_abs_diff () =
  let a = Buf.of_array [| 1.; 2.; 3. |] in
  let b = Buf.of_array [| 1.; 2.5; 2. |] in
  check_float "maxdiff" 1.0 (Buf.max_abs_diff a b);
  check_bool "equal eps" true (Buf.equal ~eps:1.0 a b);
  check_bool "not equal" false (Buf.equal ~eps:0.5 a b)

let test_buf_map_iteri () =
  let a = Buf.of_array [| 1.; 2.; 3. |] in
  Buf.map_inplace (fun x -> x *. 2.0) a;
  check_float "map" 6.0 (Buf.get a 2);
  let sum = ref 0.0 in
  Buf.iteri (fun _ v -> sum := !sum +. v) a;
  check_float "iteri sum" 12.0 !sum

let test_buf_bytes () =
  check_int "bytes" 80 (Buf.bytes (Buf.create 10))

let test_grid_create () =
  let g = Grid.create [| 3; 4 |] in
  check_int "dims" 2 (Grid.dims g);
  Alcotest.(check (array int)) "extents" [| 3; 4 |] (Grid.extents g);
  check_int "points" 12 (Grid.points g)

let test_grid_bad_extents () =
  Alcotest.check_raises "zero extent"
    (Invalid_argument "Grid.create: non-positive extent") (fun () ->
      ignore (Grid.create [| 3; 0 |]))

let test_grid_interior () =
  let g = Grid.interior ~dims:3 4 in
  Alcotest.(check (array int)) "extents" [| 6; 6; 6 |] (Grid.extents g);
  check_int "interior" 4 (Grid.interior_size g)

let test_grid_offset_rowmajor () =
  let g = Grid.create [| 3; 4 |] in
  check_int "offset" ((2 * 4) + 3) (Grid.offset g [| 2; 3 |]);
  Alcotest.check_raises "oob" (Invalid_argument "Grid.offset: index out of bounds")
    (fun () -> ignore (Grid.offset g [| 3; 0 |]))

let test_grid_get_set () =
  let g = Grid.create [| 3; 4 |] in
  Grid.set g [| 1; 2 |] 5.0;
  check_float "get" 5.0 (Grid.get g [| 1; 2 |]);
  check_float "get2" 5.0 (Grid.get2 g 1 2);
  Grid.set2 g 2 3 7.0;
  check_float "set2" 7.0 (Grid.get g [| 2; 3 |])

let test_grid_get3 () =
  let g = Grid.create [| 3; 3; 3 |] in
  Grid.set3 g 1 2 0 4.0;
  check_float "get3" 4.0 (Grid.get g [| 1; 2; 0 |])

let test_grid_fill_interior () =
  let g = Grid.interior ~dims:2 3 in
  Grid.fill g 9.0;
  Grid.fill_interior g ~f:(fun idx -> float_of_int (idx.(0) + idx.(1)));
  check_float "interior" 4.0 (Grid.get g [| 2; 2 |]);
  check_float "ghost untouched" 9.0 (Grid.get g [| 0; 0 |])

let test_grid_fill_all () =
  let g = Grid.interior ~dims:2 2 in
  Grid.fill_all g ~f:(fun _ -> 1.0);
  check_float "ghost covered" 1.0 (Grid.get g [| 0; 3 |])

let test_grid_iter_interior_count () =
  let g = Grid.interior ~dims:3 3 in
  let count = ref 0 in
  Grid.iter_interior g ~f:(fun _ _ -> incr count);
  check_int "27 interior points" 27 !count

let test_grid_copy_blit () =
  let g = Grid.interior ~dims:2 2 in
  Grid.fill_interior g ~f:(fun _ -> 3.0);
  let c = Grid.copy g in
  Grid.fill c 0.0;
  check_float "copy indep" 3.0 (Grid.get g [| 1; 1 |]);
  Grid.blit ~src:g ~dst:c;
  check_float "blit" 3.0 (Grid.get c [| 1; 1 |])

let test_grid_max_abs_diff () =
  let a = Grid.interior ~dims:2 2 in
  let b = Grid.interior ~dims:2 2 in
  Grid.set2 a 1 1 2.0;
  check_float "diff" 2.0 (Grid.max_abs_diff a b)

let test_norms_l2 () =
  let g = Grid.interior ~dims:2 2 in
  Grid.fill_interior g ~f:(fun _ -> 2.0);
  check_float "l2 of constant" 2.0 (Norms.l2 g);
  check_float "linf" 2.0 (Norms.linf g)

let test_norms_ghost_excluded () =
  let g = Grid.interior ~dims:2 2 in
  Grid.fill g 100.0;
  Grid.fill_interior g ~f:(fun _ -> 1.0);
  check_float "ghost excluded" 1.0 (Norms.linf g)

let test_norms_diff () =
  let a = Grid.interior ~dims:2 3 in
  let b = Grid.interior ~dims:2 3 in
  Grid.fill_interior a ~f:(fun _ -> 1.0);
  Grid.fill_interior b ~f:(fun _ -> 4.0);
  check_float "l2 diff" 3.0 (Norms.l2_diff a b);
  check_float "linf diff" 3.0 (Norms.linf_diff a b)

(* property tests *)

let prop_offset_bijective =
  QCheck.Test.make ~name:"grid offsets are distinct (row-major bijection)"
    ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (a, b) ->
      let g = Grid.create [| a; b; 2 |] in
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      for i = 0 to a - 1 do
        for j = 0 to b - 1 do
          for k = 0 to 1 do
            let o = Grid.offset g [| i; j; k |] in
            if Hashtbl.mem seen o then ok := false;
            Hashtbl.replace seen o ()
          done
        done
      done;
      !ok && Hashtbl.length seen = Grid.points g)

let prop_buf_blit_roundtrip =
  QCheck.Test.make ~name:"buf of_array/to_array/copy roundtrip" ~count:100
    QCheck.(array_of_size (Gen.int_range 0 64) (float_range (-1e6) 1e6))
    (fun xs ->
      let b = Buf.of_array xs in
      Buf.to_array (Buf.copy b) = xs)

let prop_l2_scale =
  QCheck.Test.make ~name:"l2 norm scales linearly" ~count:50
    QCheck.(float_range 0.1 10.0)
    (fun s ->
      let g = Grid.interior ~dims:2 5 in
      Grid.fill_interior g ~f:(fun idx -> float_of_int idx.(0));
      let n1 = Norms.l2 g in
      Grid.fill_interior g ~f:(fun idx -> s *. float_of_int idx.(0));
      let n2 = Norms.l2 g in
      Float.abs (n2 -. (s *. n1)) < 1e-9 *. n2)

let () =
  Alcotest.run "grid"
    [ ( "buf",
        [ Alcotest.test_case "create zeroed" `Quick test_buf_create;
          Alcotest.test_case "create negative" `Quick test_buf_create_negative;
          Alcotest.test_case "get/set" `Quick test_buf_get_set;
          Alcotest.test_case "bounds" `Quick test_buf_bounds;
          Alcotest.test_case "fill/blit" `Quick test_buf_fill_blit;
          Alcotest.test_case "blit mismatch" `Quick test_buf_blit_mismatch;
          Alcotest.test_case "sub_blit" `Quick test_buf_sub_blit;
          Alcotest.test_case "sub_blit oob" `Quick test_buf_sub_blit_oob;
          Alcotest.test_case "of/to array" `Quick test_buf_of_to_array;
          Alcotest.test_case "copy independent" `Quick test_buf_copy_independent;
          Alcotest.test_case "max_abs_diff" `Quick test_buf_max_abs_diff;
          Alcotest.test_case "map/iteri" `Quick test_buf_map_iteri;
          Alcotest.test_case "bytes" `Quick test_buf_bytes ] );
      ( "grid",
        [ Alcotest.test_case "create" `Quick test_grid_create;
          Alcotest.test_case "bad extents" `Quick test_grid_bad_extents;
          Alcotest.test_case "interior" `Quick test_grid_interior;
          Alcotest.test_case "row-major offset" `Quick test_grid_offset_rowmajor;
          Alcotest.test_case "get/set" `Quick test_grid_get_set;
          Alcotest.test_case "get3/set3" `Quick test_grid_get3;
          Alcotest.test_case "fill_interior" `Quick test_grid_fill_interior;
          Alcotest.test_case "fill_all" `Quick test_grid_fill_all;
          Alcotest.test_case "iter_interior" `Quick test_grid_iter_interior_count;
          Alcotest.test_case "copy/blit" `Quick test_grid_copy_blit;
          Alcotest.test_case "max_abs_diff" `Quick test_grid_max_abs_diff ] );
      ( "norms",
        [ Alcotest.test_case "l2/linf" `Quick test_norms_l2;
          Alcotest.test_case "ghost excluded" `Quick test_norms_ghost_excluded;
          Alcotest.test_case "diff norms" `Quick test_norms_diff ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_offset_bijective; prop_buf_blit_roundtrip; prop_l2_scale ] ) ]
