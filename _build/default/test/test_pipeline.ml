open Repro_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sizes n = [| Sizeexpr.const n; Sizeexpr.const n |]
let psizes = [| Sizeexpr.add_const Sizeexpr.n (-1);
                Sizeexpr.add_const Sizeexpr.n (-1) |]

let laplace =
  Weights.w2 [| [| 0.; -1.; 0. |]; [| -1.; 4.; -1. |]; [| 0.; -1.; 0. |] |]

let simple_pipeline () =
  let ctx = Dsl.create "p" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:psizes in
  let a =
    Dsl.func ctx ~name:"a" ~sizes:psizes (Dsl.stencil v laplace ())
  in
  let b =
    Dsl.func ctx ~name:"b" ~sizes:psizes
      Expr.(load a.Func.id [| 0; 0 |] * const 2.0)
  in
  (Dsl.finish ctx ~outputs:[ b ], v, a, b)

let test_stage_count_excludes_inputs () =
  let p, _, _, _ = simple_pipeline () in
  check_int "stages" 2 (Pipeline.stage_count p);
  check_int "funcs incl inputs" 3 (Array.length (Pipeline.funcs p))

let test_consumers () =
  let p, v, a, b = simple_pipeline () in
  Alcotest.(check (list int)) "v consumed by a" [ a.Func.id ]
    (Pipeline.consumers p v.Func.id);
  Alcotest.(check (list int)) "a consumed by b" [ b.Func.id ]
    (Pipeline.consumers p a.Func.id);
  Alcotest.(check (list int)) "b unconsumed" [] (Pipeline.consumers p b.Func.id)

let test_liveout () =
  let p, _, a, b = simple_pipeline () in
  check_bool "b is output" true (Pipeline.is_liveout p b.Func.id);
  check_bool "a is not" false (Pipeline.is_liveout p a.Func.id)

let test_inputs () =
  let p, v, _, _ = simple_pipeline () in
  match Pipeline.inputs p with
  | [ f ] -> check_int "input id" v.Func.id f.Func.id
  | _ -> Alcotest.fail "one input expected"

let test_no_outputs_rejected () =
  let ctx = Dsl.create "bad" in
  let _ = Dsl.grid ctx "V" ~dims:2 ~sizes:(sizes 8) in
  Alcotest.check_raises "no outputs"
    (Invalid_argument "Pipeline.validate: no outputs") (fun () ->
      ignore (Dsl.finish ctx ~outputs:[]))

let test_output_must_not_be_input () =
  let ctx = Dsl.create "bad" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:(sizes 8) in
  let _ = Dsl.func ctx ~name:"a" ~sizes:(sizes 8) (Dsl.stencil v laplace ()) in
  Alcotest.check_raises "input output"
    (Invalid_argument "Pipeline.validate: output is an input") (fun () ->
      ignore (Dsl.finish ctx ~outputs:[ v ]))

let test_func_validate_rank () =
  let f =
    { Func.id = 0; name = "x"; dims = 2;
      sizes = [| Sizeexpr.const 4 |];
      defn = Func.Def (Expr.const 1.0);
      boundary = Func.Dirichlet 0.0;
      kind = Func.Pointwise }
  in
  Alcotest.check_raises "rank" (Invalid_argument "x: size array rank mismatch")
    (fun () -> Func.validate f)

let test_func_parity_count () =
  let f =
    { Func.id = 0; name = "x"; dims = 2; sizes = sizes 4;
      defn = Func.Parity [| Expr.const 0.0 |];
      boundary = Func.Dirichlet 0.0;
      kind = Func.Interpolation }
  in
  Alcotest.check_raises "parity count"
    (Invalid_argument "x: parity case count must be 2^dims") (fun () ->
      Func.validate f)

let test_producers_accesses () =
  let _, _, a, b = simple_pipeline () in
  Alcotest.(check (list int)) "b producers" [ a.Func.id ] (Func.producers b);
  check_int "b accesses a once" 1 (List.length (Func.accesses_to b a.Func.id));
  check_int "a accesses none of b" 0 (List.length (Func.accesses_to a b.Func.id))

let test_tstencil_chain () =
  let ctx = Dsl.create "ts" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:psizes in
  let f = Dsl.grid ctx "F" ~dims:2 ~sizes:psizes in
  let last =
    Dsl.tstencil ctx ~name:"S" ~steps:3 ~init:v (fun ~v ->
        Expr.(Dsl.stencil v laplace () + load f.Func.id [| 0; 0 |]))
  in
  let p = Dsl.finish ctx ~outputs:[ last ] in
  check_int "3 stages" 3 (Pipeline.stage_count p);
  (match last.Func.kind with
   | Func.Smooth { step = 2; total = 3 } -> ()
   | _ -> Alcotest.fail "kind");
  (* each step reads its predecessor *)
  check_bool "chained" true
    (List.mem (last.Func.id - 1) (Func.producers last))

let test_tstencil_zero_steps () =
  let ctx = Dsl.create "ts0" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:psizes in
  let r = Dsl.tstencil ctx ~name:"S" ~steps:0 ~init:v (fun ~v ->
      Dsl.stencil v laplace ()) in
  check_int "returns init" v.Func.id r.Func.id

let test_tstencil_from_zero () =
  let ctx = Dsl.create "tz" in
  let f = Dsl.grid ctx "F" ~dims:2 ~sizes:psizes in
  let last =
    Dsl.tstencil_from_zero ctx ~name:"S" ~steps:2 ~sizes:psizes
      ~first:Expr.(const 0.5 * load f.Func.id [| 0; 0 |])
      (fun ~v -> Dsl.stencil v laplace ())
  in
  let p = Dsl.finish ctx ~outputs:[ last ] in
  check_int "2 stages" 2 (Pipeline.stage_count p);
  let first = Pipeline.func p (last.Func.id - 1) in
  (match first.Func.kind with
   | Func.Smooth { step = 0; total = 2 } -> ()
   | _ -> Alcotest.fail "first kind");
  Alcotest.(check (list int)) "first reads only F" [ f.Func.id ]
    (Func.producers first)

let test_restrict_sizes () =
  let ctx = Dsl.create "r" in
  let v = Dsl.grid ctx "V" ~dims:2 ~sizes:psizes in
  let r = Dsl.restrict_fn ctx ~name:"R" ~input:v () in
  check_int "coarse size at n=16" 7 (Sizeexpr.eval ~n:16 r.Func.sizes.(0));
  (match r.Func.kind with
   | Func.Restriction -> ()
   | _ -> Alcotest.fail "kind");
  (* full weighting: 9 terms summing to 1, all scaled 2x accesses *)
  let accs = Func.accesses_to r v.Func.id in
  check_int "9 accesses" 9 (List.length accs);
  List.iter
    (fun a -> Array.iter (fun (x : Expr.access) ->
         check_int "mul 2" 2 x.Expr.mul) a)
    accs

let test_interp_parity () =
  let ctx = Dsl.create "i" in
  let coarse_sizes = [| Sizeexpr.add_const (Sizeexpr.n_over 2) (-1);
                        Sizeexpr.add_const (Sizeexpr.n_over 2) (-1) |] in
  let v = Dsl.grid ctx "E" ~dims:2 ~sizes:coarse_sizes in
  let i = Dsl.interp_fn ctx ~name:"I" ~input:v () in
  check_int "fine size at n=16" 15 (Sizeexpr.eval ~n:16 i.Func.sizes.(0));
  (match i.Func.defn with
   | Func.Parity cases ->
     check_int "4 cases" 4 (Array.length cases);
     (* even-even injects: one load; odd-odd averages 4 loads *)
     check_int "case 0 loads" 1 (List.length (Expr.loads cases.(0)));
     check_int "case 3 loads" 4 (List.length (Expr.loads cases.(3)))
   | _ -> Alcotest.fail "parity defn")

let test_stencil_rank_mismatch () =
  let ctx = Dsl.create "m" in
  let v = Dsl.grid ctx "V" ~dims:3
      ~sizes:[| Sizeexpr.const 4; Sizeexpr.const 4; Sizeexpr.const 4 |] in
  Alcotest.check_raises "rank"
    (Invalid_argument "Dsl.stencil: weight tensor rank mismatch") (fun () ->
      ignore (Dsl.stencil v laplace ()))

let test_pipeline_pp_smoke () =
  let p, _, _, _ = simple_pipeline () in
  let s = Format.asprintf "%a" Pipeline.pp p in
  check_bool "nonempty" true (String.length s > 50)

let () =
  Alcotest.run "pipeline"
    [ ( "pipeline",
        [ Alcotest.test_case "stage count" `Quick test_stage_count_excludes_inputs;
          Alcotest.test_case "consumers" `Quick test_consumers;
          Alcotest.test_case "liveout" `Quick test_liveout;
          Alcotest.test_case "inputs" `Quick test_inputs;
          Alcotest.test_case "no outputs" `Quick test_no_outputs_rejected;
          Alcotest.test_case "output not input" `Quick test_output_must_not_be_input;
          Alcotest.test_case "pp" `Quick test_pipeline_pp_smoke ] );
      ( "func",
        [ Alcotest.test_case "validate rank" `Quick test_func_validate_rank;
          Alcotest.test_case "parity count" `Quick test_func_parity_count;
          Alcotest.test_case "producers/accesses" `Quick test_producers_accesses ] );
      ( "dsl",
        [ Alcotest.test_case "tstencil chain" `Quick test_tstencil_chain;
          Alcotest.test_case "tstencil 0 steps" `Quick test_tstencil_zero_steps;
          Alcotest.test_case "tstencil from zero" `Quick test_tstencil_from_zero;
          Alcotest.test_case "restrict" `Quick test_restrict_sizes;
          Alcotest.test_case "interp parity" `Quick test_interp_parity;
          Alcotest.test_case "stencil rank" `Quick test_stencil_rank_mismatch ] ) ]
