open Repro_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ids = Alcotest.(check (list int))

let acc ?(mul = 1) ?(add = 0) ?(den = 1) off = { Expr.mul; add; den; off }

let test_load_builders () =
  match Expr.load 3 [| 1; -1 |] with
  | Expr.Load (3, accs) ->
    check_int "off0" 1 accs.(0).Expr.off;
    check_int "off1" (-1) accs.(1).Expr.off;
    check_int "mul" 1 accs.(0).Expr.mul
  | _ -> Alcotest.fail "expected Load"

let test_id_access () =
  let a = Expr.id_access 3 in
  check_int "rank" 3 (Array.length a);
  Array.iter
    (fun x ->
      check_int "mul" 1 x.Expr.mul;
      check_int "off" 0 x.Expr.off)
    a

let test_arith_builders () =
  let e = Expr.(const 2.0 * (load 0 [| 0 |] + param "w")) in
  (match e with
   | Expr.Binop (Expr.Mul, Expr.Const 2.0, Expr.Binop (Expr.Add, _, _)) -> ()
   | _ -> Alcotest.fail "structure");
  check_int "op_count" 2 (Expr.op_count e)

let test_func_ids_dedup () =
  let e = Expr.(load 2 [| 0 |] + (load 1 [| 1 |] - load 2 [| -1 |])) in
  check_ids "sorted dedup" [ 1; 2 ] (Expr.func_ids e)

let test_loads_order () =
  let e = Expr.(load 5 [| 0 |] + load 3 [| 1 |]) in
  check_ids "syntactic order" [ 5; 3 ] (List.map fst (Expr.loads e))

let test_params () =
  let e = Expr.(param "b" + (param "a" * param "b")) in
  Alcotest.(check (list string)) "params" [ "a"; "b" ] (Expr.params e)

let test_subst_func () =
  let e = Expr.(load 1 [| 0 |] + load 2 [| 0 |]) in
  let e' = Expr.subst_func e ~old_id:1 ~new_id:9 in
  check_ids "substituted" [ 2; 9 ] (Expr.func_ids e')

let eval_access (a : Expr.access) x =
  let fdiv p q = if p >= 0 then p / q else -(((-p) + q - 1) / q) in
  fdiv ((a.Expr.mul * x) + a.Expr.add) a.Expr.den + a.Expr.off

let test_map_access_unit_compose () =
  (* consumer x+2 through producer y-1 = x+1 *)
  let c = acc 2 and p = acc (-1) in
  let m = Expr.map_access ~producer:p ~consumer:c in
  check_int "compose shift" 6 (eval_access m 5)

let test_map_access_coarse () =
  (* consumer reads producer at 2x+1; producer access itself is y-1:
     composite x -> 2x *)
  let c = acc ~mul:2 1 and p = acc (-1) in
  let m = Expr.map_access ~producer:p ~consumer:c in
  check_int "2x" 10 (eval_access m 5)

let test_map_access_interp_shift () =
  (* consumer (x+1)/2 then producer shift +1 *)
  let c = acc ~den:2 ~add:1 0 and p = acc 1 in
  let m = Expr.map_access ~producer:p ~consumer:c in
  check_int "x=5 -> 3+1" 4 (eval_access m 5)

let test_map_access_inexact () =
  let c = acc ~den:2 0 and p = acc ~mul:2 0 in
  Alcotest.check_raises "inexact"
    (Invalid_argument "Expr.map_access: inexact composition") (fun () ->
      ignore (Expr.map_access ~producer:p ~consumer:c))

let prop_map_access_matches_composition =
  QCheck.Test.make ~name:"map_access = pointwise composition (exact cases)"
    ~count:500
    QCheck.(
      quad (pair (int_range 1 3) (int_range (-3) 3))
        (pair (int_range 1 3) (int_range (-3) 3))
        (int_range 1 2) (int_range 0 20))
    (fun ((cmul, cadd), (pmul, padd), pden, x) ->
      (* consumer has den 1 so the composition is exact *)
      let c = acc ~mul:cmul ~add:cadd 1 in
      let p = acc ~mul:pmul ~add:padd ~den:pden 2 in
      let m = Expr.map_access ~producer:p ~consumer:c in
      eval_access m x = eval_access p (eval_access c x))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp_simple () =
  let e = Expr.(load 7 [| 1 |] / param "h") in
  let s = Format.asprintf "%a" (Expr.pp ~names:(fun _ -> "grid")) e in
  check_bool "grid(x0+1)" true (contains s "grid(x0+1)");
  check_bool "div" true (contains s "/ h")

let () =
  Alcotest.run "expr"
    [ ( "unit",
        [ Alcotest.test_case "load builders" `Quick test_load_builders;
          Alcotest.test_case "id_access" `Quick test_id_access;
          Alcotest.test_case "arith builders" `Quick test_arith_builders;
          Alcotest.test_case "func_ids dedup" `Quick test_func_ids_dedup;
          Alcotest.test_case "loads order" `Quick test_loads_order;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "subst_func" `Quick test_subst_func;
          Alcotest.test_case "map_access unit" `Quick test_map_access_unit_compose;
          Alcotest.test_case "map_access coarse" `Quick test_map_access_coarse;
          Alcotest.test_case "map_access interp" `Quick test_map_access_interp_shift;
          Alcotest.test_case "map_access inexact" `Quick test_map_access_inexact;
          Alcotest.test_case "pp" `Quick test_pp_simple ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_map_access_matches_composition ] ) ]
