open Repro_ir
open Repro_core
open Repro_mg
module Grid = Repro_grid.Grid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* Table 3 stage counts, reproduced exactly *)
let test_stage_counts_table3 () =
  List.iter
    (fun (dims, shape, sm, expect) ->
      let cfg = Cycle.default ~dims ~shape ~smoothing:sm in
      check_int
        (Cycle.bench_name cfg)
        expect
        (Pipeline.stage_count (Cycle.build cfg)))
    [ (2, Cycle.V, (4, 4, 4), 40);
      (2, Cycle.V, (10, 0, 0), 42);
      (2, Cycle.W, (4, 4, 4), 100);
      (2, Cycle.W, (10, 0, 0), 98);
      (3, Cycle.V, (4, 4, 4), 40);
      (3, Cycle.V, (10, 0, 0), 42);
      (3, Cycle.W, (4, 4, 4), 100);
      (3, Cycle.W, (10, 0, 0), 98) ]

let test_min_n () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  check_int "4 levels" 32 (Cycle.min_n cfg);
  check_int "6 levels" 128 (Cycle.min_n { cfg with Cycle.levels = 6 })

let test_params () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let p = Cycle.params cfg ~n:64 in
  check_float "invhsq finest" 4096.0 (p "invhsq_L3");
  check_float "invhsq coarsest" 64.0 (p "invhsq_L0");
  check_float "weight" (0.8 /. (4.0 *. 4096.0)) (p "w_L3");
  check_bool "unknown rejected" true
    (try ignore (p "bogus"); false with Invalid_argument _ -> true)

let test_params_divisibility () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  check_bool "raises" true
    (try ignore (Cycle.params cfg ~n:36 "invhsq_L0"); false
     with Invalid_argument _ -> true)

let test_zero_smoothing_cycle () =
  (* with no smoothing anywhere the cycle degenerates to a pass-through:
     all coarse corrections are zero, so one cycle returns v unchanged *)
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(0, 0, 0) in
  let p = Cycle.build cfg in
  check_bool "builds" true (Pipeline.stage_count p > 0);
  let n = 32 in
  let problem = Problem.poisson ~dims:2 ~n in
  Grid.fill_interior problem.Problem.v ~f:(fun idx -> float_of_int idx.(0));
  let rt = Exec.runtime () in
  let stepper = Solver.polymg_stepper cfg ~n ~opts:Options.naive ~rt in
  let out = Grid.create (Grid.extents problem.Problem.v) in
  stepper ~v:problem.Problem.v ~f:problem.Problem.f ~out;
  Exec.free_runtime rt;
  check_bool "pass-through" true
    (Grid.max_abs_diff out problem.Problem.v < 1e-14)

let test_inputs_outputs () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let p = Cycle.build cfg in
  check_bool "v != f" true (Cycle.input_v p <> Cycle.input_f p);
  check_bool "output not input" true
    (not (Func.is_input (Pipeline.func p (Cycle.output p))))

(* convergence *)

let residual_factor cfg ~n ~cycles =
  let r = Solver.solve cfg ~n ~opts:Options.opt_plus ~cycles () in
  let rs = List.map (fun s -> s.Solver.residual) r.Solver.stats in
  match rs with
  | first :: rest when cycles >= 2 ->
    let last = List.nth rest (List.length rest - 1) in
    (last /. first) ** (1.0 /. float_of_int (cycles - 1))
  | _ -> Alcotest.fail "need >= 2 cycles"

let test_vcycle_converges_2d () =
  let cfg =
    { (Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4)) with
      Cycle.levels = 6 }
  in
  let rho = residual_factor cfg ~n:64 ~cycles:5 in
  check_bool (Printf.sprintf "V-cycle rate %.3f < 0.25" rho) true (rho < 0.25)

let test_wcycle_converges_faster () =
  let v =
    { (Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4)) with
      Cycle.levels = 6 }
  in
  let w = { v with Cycle.shape = Cycle.W } in
  let rv = residual_factor v ~n:64 ~cycles:4 in
  let rw = residual_factor w ~n:64 ~cycles:4 in
  check_bool (Printf.sprintf "W (%.4f) beats V (%.4f)" rw rv) true (rw < rv)

let test_fcycle_converges () =
  let cfg =
    { (Cycle.default ~dims:2 ~shape:Cycle.F ~smoothing:(2, 2, 2)) with
      Cycle.levels = 5 }
  in
  let rho = residual_factor cfg ~n:32 ~cycles:4 in
  check_bool (Printf.sprintf "F-cycle rate %.3f" rho) true (rho < 0.2)

let test_3d_converges () =
  let cfg =
    { (Cycle.default ~dims:3 ~shape:Cycle.V ~smoothing:(4, 4, 4)) with
      Cycle.levels = 4 }
  in
  let rho = residual_factor cfg ~n:32 ~cycles:4 in
  check_bool (Printf.sprintf "3D rate %.3f" rho) true (rho < 0.5)

let test_solution_approaches_exact () =
  (* after enough W-cycles the iterate reaches the discrete solution,
     whose distance to the continuous solution is O(h²) *)
  let cfg =
    { (Cycle.default ~dims:2 ~shape:Cycle.W ~smoothing:(4, 4, 4)) with
      Cycle.levels = 5 }
  in
  let solve n =
    let problem = Problem.poisson ~dims:2 ~n in
    let rt = Exec.runtime () in
    let stepper = Solver.polymg_stepper cfg ~n ~opts:Options.opt_plus ~rt in
    let r = Solver.iterate stepper ~problem ~cycles:12 ~residuals:false () in
    Exec.free_runtime rt;
    Verify.error_l2 ~v:r.Solver.v ~exact:problem.Problem.exact
  in
  let e32 = solve 32 and e64 = solve 64 in
  check_bool
    (Printf.sprintf "O(h^2): e32=%.2e e64=%.2e ratio=%.2f" e32 e64 (e32 /. e64))
    true
    (e32 /. e64 > 3.0 && e32 /. e64 < 5.0)

let test_handopt_matches_polymg () =
  List.iter
    (fun (dims, shape, sm) ->
      let cfg = Cycle.default ~dims ~shape ~smoothing:sm in
      let n = if dims = 2 then 32 else 16 in
      let problem = Problem.poisson ~dims ~n in
      let rt = Exec.runtime () in
      let s_poly = Solver.polymg_stepper cfg ~n ~opts:Options.opt_plus ~rt in
      let s_hand =
        Handopt.stepper (Handopt.create cfg ~n ~par:rt.Exec.par ())
      in
      let s_pluto =
        Handopt.stepper
          (Handopt.create cfg ~n ~par:rt.Exec.par
             ~smoothing:(Handopt.Pluto { sigma = 5 })
             ())
      in
      let run s = (Solver.iterate s ~problem ~cycles:3 ~residuals:false ()).Solver.v in
      let vp = run s_poly and vh = run s_hand and vd = run s_pluto in
      Exec.free_runtime rt;
      let d1 = Grid.max_abs_diff vp vh and d2 = Grid.max_abs_diff vp vd in
      check_bool
        (Printf.sprintf "%s handopt diff %g" (Cycle.bench_name cfg) d1)
        true (d1 < 1e-12);
      check_bool
        (Printf.sprintf "%s handpluto diff %g" (Cycle.bench_name cfg) d2)
        true (d2 < 1e-12))
    [ (2, Cycle.V, (4, 4, 4)); (2, Cycle.W, (10, 0, 0));
      (3, Cycle.V, (10, 0, 0)); (3, Cycle.W, (4, 4, 4));
      (2, Cycle.V, (3, 1, 2)) ]

let test_handopt_rejects_fcycle () =
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.F ~smoothing:(2, 2, 2) in
  check_bool "raises" true
    (try
       ignore (Handopt.create cfg ~n:32 ~par:Repro_runtime.Parallel.sequential ());
       false
     with Invalid_argument _ -> true)

let test_verify_residual_of_exact_discrete () =
  (* residual of f against A·v is zero when f = A·v by construction *)
  let n = 16 in
  let v = Grid.interior ~dims:2 (n - 1) in
  Grid.fill_interior v ~f:(fun idx ->
      sin (float_of_int idx.(0)) *. cos (float_of_int idx.(1)));
  let f = Grid.create (Grid.extents v) in
  Verify.apply_poisson ~n ~v ~out:f;
  check_float "zero residual" 0.0 (Verify.residual_l2 ~n ~v ~f)

let test_problem_classes () =
  check_int "2D B" 1024 (Problem.class_n ~dims:2 Problem.B);
  check_int "3D C" 256 (Problem.class_n ~dims:3 Problem.C);
  check_bool "parse" true (Problem.cls_of_string "b" = Some Problem.B);
  check_bool "bad" true (Problem.cls_of_string "x" = None)

let test_problem_rhs () =
  let p = Problem.poisson ~dims:2 ~n:16 in
  (* rhs of the manufactured solution is positive in the interior *)
  let mn = ref infinity in
  Grid.iter_interior p.Problem.f ~f:(fun _ v -> if v < !mn then mn := v);
  check_bool "positive rhs" true (!mn > 0.0);
  check_float "zero guess" 0.0 (Repro_grid.Norms.linf p.Problem.v)

let test_solver_iterate_swaps () =
  (* two cycles through iterate must equal two manual stepper calls *)
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(2, 2, 2) in
  let n = 32 in
  let problem = Problem.poisson ~dims:2 ~n in
  let rt = Exec.runtime () in
  let stepper = Solver.polymg_stepper cfg ~n ~opts:Options.naive ~rt in
  let r = Solver.iterate stepper ~problem ~cycles:2 ~residuals:false () in
  let a = Grid.copy problem.Problem.v in
  let b = Grid.create (Grid.extents a) in
  stepper ~v:a ~f:problem.Problem.f ~out:b;
  stepper ~v:b ~f:problem.Problem.f ~out:a;
  Exec.free_runtime rt;
  check_bool "same" true (Grid.max_abs_diff r.Solver.v a < 1e-14)

let () =
  Alcotest.run "mg"
    [ ( "cycle construction",
        [ Alcotest.test_case "Table 3 stage counts" `Quick test_stage_counts_table3;
          Alcotest.test_case "min_n" `Quick test_min_n;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "params divisibility" `Quick test_params_divisibility;
          Alcotest.test_case "zero smoothing degenerate" `Quick
            test_zero_smoothing_cycle;
          Alcotest.test_case "inputs/outputs" `Quick test_inputs_outputs ] );
      ( "convergence",
        [ Alcotest.test_case "V-cycle 2D" `Quick test_vcycle_converges_2d;
          Alcotest.test_case "W beats V" `Quick test_wcycle_converges_faster;
          Alcotest.test_case "F-cycle" `Quick test_fcycle_converges;
          Alcotest.test_case "3D" `Quick test_3d_converges;
          Alcotest.test_case "O(h²) discretization" `Slow
            test_solution_approaches_exact ] );
      ( "baselines",
        [ Alcotest.test_case "handopt == polymg" `Quick test_handopt_matches_polymg;
          Alcotest.test_case "handopt rejects F" `Quick test_handopt_rejects_fcycle ] );
      ( "problem & verify",
        [ Alcotest.test_case "residual of exact" `Quick
            test_verify_residual_of_exact_discrete;
          Alcotest.test_case "classes" `Quick test_problem_classes;
          Alcotest.test_case "rhs" `Quick test_problem_rhs;
          Alcotest.test_case "iterate swaps" `Quick test_solver_iterate_swaps ] ) ]
