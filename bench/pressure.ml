(* Pressure campaign: the executable proof that resource governance
   degrades gracefully instead of failing.  The resource-exhaustion
   analogue of the fault-injection campaign (faultinject.ml).

   Budget axis — for each Poisson V-cycle config the campaign measures
   the unconstrained footprint (the naive plan's modelled peak, the
   storage the system needs with no optimization) and re-solves under
   budgets of 100/75/50/25% of it, asserting for every solve:
     - it converges to the naive-plan answer (max |diff| <= 1e-8),
     - the executed rung's modelled footprint and the pool's measured
       high-water mark stay under the budget,
     - every ladder demotion appears in both the degradation report and
       the govern.* telemetry counters.
   A budget one byte under the requested variant's footprint must force
   a reported demotion; a budget under the ladder floor must come back
   as a typed infeasible result, never an abort.

   Deadline axis — a generous per-stage deadline must pass untripped; a
   hopeless one under guarded execution must trip, quarantine the
   primary and still converge through the (deadline-free) fallback; and
   a one-shot transient crash with primary_retries=1 must recover by
   retrying the primary, never touching the fallback.

   With --incident-dir DIR the flight recorder runs during the anomalous
   cases and each asserts its incident trail: forced demotions must dump
   a "demotion" report, the under-floor budget a "budget-infeasible"
   one, the hopeless deadline a "deadline" one, and a new
   retry-exhaustion case (persistent crash, bounded retries, no
   fallback) a "crash" report whose action is "gave up" — all parseable,
   polymg.incident/1, naming the plan digest and event tail.

   Writes a polymg.pressure/1 JSON report with --out; --quick trims the
   config list for CI smoke.  Runs in `dune runtest` (test/dune). *)

open Repro_mg
open Repro_core
module Grid = Repro_grid.Grid
module Buf = Repro_grid.Buf
module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Json = Repro_runtime.Json

let tol = 1e-8

(* -- incident-trail plumbing --------------------------------------------- *)

let incident_root : string option ref = ref None

(* Arm the recorder into DIR/<sub> for one case; [None] when incidents
   are not being collected. *)
let arm_flightrec sub =
  match !incident_root with
  | None -> None
  | Some root ->
    let dir = Filename.concat root sub in
    Flightrec.reset ();
    Flightrec.set_enabled true;
    Flightrec.set_incident_dir (Some dir);
    Some dir

let disarm_flightrec () = Flightrec.set_enabled false
let jmem k d = Option.value (Json.member k d) ~default:Json.Null

(* At least one parseable polymg.incident/1 report of [kind] under
   [dir], with a plan digest, a non-empty event tail, and (when
   [need_cycle]) the triggering cycle; [detail_pred] adds a per-kind
   check on the detail block.  Returns violations (empty = pass). *)
let check_incident ~dir ~kind ?(need_cycle = false)
    ?(detail_pred = fun _ -> true) () =
  match Sys.readdir dir with
  | exception Sys_error m -> [ Printf.sprintf "cannot read %s: %s" dir m ]
  | entries ->
    let reports =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    in
    if reports = [] then [ Printf.sprintf "no incident report in %s" dir ]
    else begin
      let problems = ref [] and matched = ref false in
      List.iter
        (fun file ->
          let path = Filename.concat dir file in
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Json.parse s with
          | Error m ->
            problems :=
              Printf.sprintf "%s: parse error: %s" file m :: !problems
          | Ok doc ->
            let bad fmt =
              Printf.ksprintf
                (fun m ->
                  problems := Printf.sprintf "%s: %s" file m :: !problems)
                fmt
            in
            (match Json.to_str (jmem "schema" doc) with
             | Some "polymg.incident/1" -> ()
             | _ -> bad "missing/wrong schema");
            (match Json.to_str (jmem "digest" (jmem "plan" doc)) with
             | Some d when d <> "" -> ()
             | _ -> bad "missing plan digest");
            if Json.to_list (jmem "events" doc) = [] then
              bad "empty event tail";
            if need_cycle then (
              match Json.to_int (jmem "cycle" doc) with
              | Some c when c >= 1 -> ()
              | _ -> bad "missing triggering cycle");
            if Json.to_str (jmem "kind" doc) = Some kind
               && detail_pred (jmem "detail" doc)
            then matched := true)
        reports;
      if not !matched then
        problems :=
          Printf.sprintf "no incident of kind %S satisfying checks in %s"
            kind dir
          :: !problems;
      List.rev !problems
    end

let max_abs_diff (a : Grid.t) (b : Grid.t) =
  let ba = a.Grid.buf and bb = b.Grid.buf in
  let m = ref 0.0 in
  for i = 0 to Buf.len ba - 1 do
    m := Float.max !m (Float.abs (Buf.get ba i -. Buf.get bb i))
  done;
  !m

let failures = ref 0
let cases : Json.t list ref = ref []

let record ~name ~pass ~(detail : (string * Json.t) list) =
  if not pass then incr failures;
  Printf.printf "  %-34s %s\n%!" name (if pass then "PASS" else "FAIL");
  cases :=
    Json.Obj
      (("name", Json.Str name)
       :: ("pass", Json.Bool pass)
       :: detail)
    :: !cases

(* -- budget axis --------------------------------------------------------- *)

let governed_case ~name ~cfg ~n ~problem ~cycles ~budget ~naive_v
    ~expect_demotions =
  let opts =
    { Options.opt_plus with
      Options.mem_budget = Some budget;
      check_plan = true }
  in
  (* only the forced-demotion cases must leave an incident trail *)
  let incident_dir =
    if expect_demotions then arm_flightrec name else None
  in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  match Solver.solve_governed cfg ~n ~opts ~cycles ~problem () with
  | exception e ->
    Telemetry.set_enabled false;
    disarm_flightrec ();
    record ~name ~pass:false
      ~detail:[ ("error", Json.Str (Printexc.to_string e)) ]
  | Error inf ->
    Telemetry.set_enabled false;
    disarm_flightrec ();
    record ~name ~pass:false
      ~detail:
        [ ("error", Json.Str "unexpectedly infeasible");
          ("floor_bytes", Json.num inf.Govern.floor_bytes) ]
  | Ok g ->
    Telemetry.set_enabled false;
    disarm_flightrec ();
    let r = g.Solver.g_result in
    let diff = max_abs_diff r.Solver.v naive_v in
    let high_water =
      Telemetry.value (Telemetry.counter "govern.pool_high_water_bytes")
    in
    let reported = List.length g.Solver.g_report.Govern.demotions in
    let counted = Telemetry.value (Telemetry.counter "govern.demotions") in
    let executed = g.Solver.g_executed in
    let converged = diff <= tol in
    let model_ok = executed.Govern.peak_bytes <= budget in
    let water_ok = high_water <= budget in
    let demotions_consistent = reported = counted in
    let demotions_ok = (not expect_demotions) || reported >= 1 in
    let incident_problems =
      match incident_dir with
      | None -> []
      | Some dir ->
        check_incident ~dir ~kind:"demotion"
          ~detail_pred:(fun d -> Json.to_str (jmem "chosen" d) <> None)
          ()
    in
    let pass =
      converged && model_ok && water_ok && demotions_consistent
      && demotions_ok && incident_problems = []
    in
    record ~name ~pass
      ~detail:
        (( "incident_problems",
           Json.Arr (List.map (fun s -> Json.Str s) incident_problems) )
         :: [ ("budget", Json.num budget);
          ("executed_rung", Json.Str executed.Govern.rname);
          ("executed_peak_bytes", Json.num executed.Govern.peak_bytes);
          ("pool_high_water", Json.num high_water);
          ("max_abs_diff", Json.Num diff);
          ("demotions_reported", Json.num reported);
          ("demotions_counted", Json.num counted);
          ("runtime_demotions", Json.num g.Solver.g_runtime_demotions);
          ("report", Govern.report_json g.Solver.g_report) ])

let budget_axis ~quick =
  let configs =
    [ ("2D-n64-L3", 2, 64, 3); ("3D-n32-L3", 3, 32, 3) ]
    @ (if quick then [] else [ ("2D-n128-L4", 2, 128, 4) ])
  in
  let cycles = if quick then 3 else 4 in
  List.iter
    (fun (cname, dims, n, levels) ->
      let cfg =
        { (Cycle.default ~dims ~shape:Cycle.V ~smoothing:(4, 4, 4)) with
          Cycle.levels }
      in
      let problem = Problem.poisson ~dims ~n in
      let pipeline = Cycle.build cfg in
      let params = Cycle.params cfg ~n in
      (* naive reference answer, same problem and cycle count *)
      let naive_v =
        Exec.with_runtime (fun rt ->
            let stepper =
              Solver.polymg_stepper cfg ~n ~opts:Options.naive ~rt
            in
            (Solver.iterate stepper ~problem ~cycles ()).Solver.v)
      in
      (* modelled footprints, probed with telemetry off so the probe's
         own decide calls leave the govern.* counters untouched *)
      let probe opts =
        match Govern.decide pipeline ~opts ~n ~params with
        | Ok r -> r.Govern.ladder
        | Error i -> i.Govern.inf_ladder
      in
      let unconstrained =
        (probe Options.naive).(0).Govern.peak_bytes
      in
      let opt_ladder = probe Options.opt_plus in
      let requested_peak = opt_ladder.(0).Govern.peak_bytes in
      let floor =
        Array.fold_left
          (fun m (r : Govern.rung) -> min m r.Govern.peak_bytes)
          max_int opt_ladder
      in
      Printf.printf
        "config %s: unconstrained(naive) %d B, opt+ %d B, floor %d B\n%!"
        cname unconstrained requested_peak floor;
      List.iter
        (fun pct ->
          governed_case
            ~name:(Printf.sprintf "%s@%d%%" cname pct)
            ~cfg ~n ~problem ~cycles
            ~budget:(unconstrained * pct / 100)
            ~naive_v ~expect_demotions:false)
        [ 100; 75; 50; 25 ];
      (* one byte under the requested rung: must demote, must still
         converge to the naive answer *)
      governed_case
        ~name:(cname ^ "@forced-demotion")
        ~cfg ~n ~problem ~cycles ~budget:(requested_peak - 1) ~naive_v
        ~expect_demotions:true;
      (* under the floor: typed infeasible, never an abort *)
      let name = cname ^ "@infeasible" in
      let opts =
        { Options.opt_plus with
          Options.mem_budget = Some (floor - 1);
          check_plan = true }
      in
      let incident_dir = arm_flightrec name in
      Telemetry.reset ();
      Telemetry.set_enabled true;
      (match Solver.solve_governed cfg ~n ~opts ~cycles ~problem () with
       | exception e ->
         Telemetry.set_enabled false;
         disarm_flightrec ();
         record ~name ~pass:false
           ~detail:[ ("error", Json.Str (Printexc.to_string e)) ]
       | Ok g ->
         Telemetry.set_enabled false;
         disarm_flightrec ();
         record ~name ~pass:false
           ~detail:
             [ ("error", Json.Str "expected infeasible, got a solve");
               ("executed_rung",
                Json.Str g.Solver.g_executed.Govern.rname) ]
       | Error inf ->
         Telemetry.set_enabled false;
         disarm_flightrec ();
         let counted =
           Telemetry.value (Telemetry.counter "govern.infeasible")
         in
         let incident_problems =
           match incident_dir with
           | None -> []
           | Some dir ->
             check_incident ~dir ~kind:"budget-infeasible"
               ~detail_pred:(fun d ->
                 Json.to_str (jmem "floor_rung" d) <> None)
               ()
         in
         let pass =
           inf.Govern.inf_budget = floor - 1
           && inf.Govern.floor_bytes = floor
           && counted >= 1
           && incident_problems = []
         in
         record ~name ~pass
           ~detail:
             [ ("budget", Json.num (floor - 1));
               ("floor_bytes", Json.num inf.Govern.floor_bytes);
               ("floor_rung", Json.Str inf.Govern.floor_rung);
               ("infeasible_counted", Json.num counted);
               ( "incident_problems",
                 Json.Arr (List.map (fun s -> Json.Str s) incident_problems)
               ) ]))
    configs

(* -- deadline axis ------------------------------------------------------- *)

let deadline_axis () =
  let dims = 2 and n = 64 in
  let cfg = Cycle.default ~dims ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let problem = Problem.poisson ~dims ~n in
  let trips () =
    Telemetry.value (Telemetry.counter "govern.deadline_trips")
  in
  (* generous deadline: must pass untripped *)
  let opts =
    { Options.opt_plus with Options.deadline = Some 5.0; check_plan = true }
  in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  (match Solver.solve_governed cfg ~n ~opts ~cycles:3 ~problem () with
   | exception e ->
     Telemetry.set_enabled false;
     record ~name:"deadline-generous" ~pass:false
       ~detail:[ ("error", Json.Str (Printexc.to_string e)) ]
   | Error _ ->
     Telemetry.set_enabled false;
     record ~name:"deadline-generous" ~pass:false
       ~detail:[ ("error", Json.Str "unexpectedly infeasible") ]
   | Ok _ ->
     Telemetry.set_enabled false;
     let t = trips () in
     record ~name:"deadline-generous" ~pass:(t = 0)
       ~detail:[ ("deadline_trips", Json.num t) ]);
  (* hopeless deadline under guard: trips, quarantines the primary, and
     still converges through the deadline-free naive fallback *)
  let incident_dir = arm_flightrec "deadline-hopeless-guarded" in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let r =
    Guard.solve cfg ~n
      ~opts:
        { Options.opt_plus with
          Options.deadline = Some 1e-7;
          check_plan = true }
      ~policy:
        { Guard.default_policy with
          Guard.tol = Some 1e-8;
          Guard.max_cycles = 60 }
      ~problem ()
  in
  Telemetry.set_enabled false;
  disarm_flightrec ();
  let t = trips () in
  let quarantined =
    List.exists
      (fun (e : Guard.event) ->
        e.Guard.action = Guard.Quarantined_primary)
      r.Guard.events
  in
  let incident_problems =
    match incident_dir with
    | None -> []
    | Some dir ->
      check_incident ~dir ~kind:"deadline" ~need_cycle:true
        ~detail_pred:(fun d -> Json.to_str (jmem "fault" d) <> None)
        ()
  in
  record ~name:"deadline-hopeless-guarded"
    ~pass:
      (r.Guard.outcome = Guard.Converged && t >= 1 && quarantined
       && incident_problems = [])
    ~detail:
      [ ("outcome", Json.Str (Guard.outcome_name r.Guard.outcome));
        ("deadline_trips", Json.num t);
        ("quarantined", Json.Bool quarantined);
        ("fallback_cycles", Json.num r.Guard.fallback_cycles);
        ( "incident_problems",
          Json.Arr (List.map (fun s -> Json.Str s) incident_problems) ) ];
  (* transient crash + bounded retry: one Primary_retry event, no
     fallback cycles, converged *)
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let r =
    Exec.with_runtime (fun rt ->
        let inner =
          Solver.polymg_stepper cfg ~n
            ~opts:{ Options.opt_plus with Options.check_plan = true }
            ~rt
        in
        let armed = ref true in
        let primary ~v ~f ~out =
          if !armed then begin
            armed := false;
            failwith "pressure: transient glitch"
          end;
          inner ~v ~f ~out
        in
        let fallback () =
          Solver.polymg_stepper cfg ~n ~opts:Options.naive ~rt
        in
        Guard.run
          ~policy:
            { Guard.default_policy with
              Guard.tol = Some 1e-8;
              Guard.max_cycles = 60;
              Guard.primary_retries = 1;
              Guard.retry_backoff = 1e-3 }
          ~primary ~fallback ~problem ())
  in
  Telemetry.set_enabled false;
  let retried =
    List.exists
      (fun (e : Guard.event) -> e.Guard.action = Guard.Primary_retry)
      r.Guard.events
  in
  let counted = Telemetry.value (Telemetry.counter "govern.primary_retries") in
  record ~name:"transient-crash-retry"
    ~pass:
      (r.Guard.outcome = Guard.Converged && retried && counted = 1
       && r.Guard.fallback_cycles = 0)
    ~detail:
      [ ("outcome", Json.Str (Guard.outcome_name r.Guard.outcome));
        ("retried", Json.Bool retried);
        ("retries_counted", Json.num counted);
        ("fallback_cycles", Json.num r.Guard.fallback_cycles) ];
  (* retry exhaustion: a persistent crash, bounded retries and no
     fallback must end in a typed Faulted outcome — and leave a crash
     incident whose recorded action is "gave up" *)
  let incident_dir = arm_flightrec "retry-exhaustion" in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let r =
    Exec.with_runtime (fun rt ->
        let _keep_plan_note =
          (* note the plan the way a real solve would, so the incident
             carries the primary's digest even though the primary below
             never completes a cycle *)
          Solver.polymg_stepper cfg ~n
            ~opts:{ Options.opt_plus with Options.check_plan = true }
            ~rt
        in
        let primary ~v:_ ~f:_ ~out:_ =
          failwith "pressure: persistent crash"
        in
        Guard.run
          ~policy:
            { Guard.default_policy with
              Guard.tol = Some 1e-8;
              Guard.max_cycles = 10;
              Guard.primary_retries = 2;
              Guard.retry_backoff = 1e-3 }
          ~primary ~problem ())
  in
  Telemetry.set_enabled false;
  disarm_flightrec ();
  let retries =
    Telemetry.value (Telemetry.counter "govern.primary_retries")
  in
  let gave_up =
    List.exists
      (fun (e : Guard.event) -> e.Guard.action = Guard.Gave_up)
      r.Guard.events
  in
  let incident_problems =
    match incident_dir with
    | None -> []
    | Some dir ->
      check_incident ~dir ~kind:"crash" ~need_cycle:true
        ~detail_pred:(fun d -> Json.to_str (jmem "action" d) = Some "gave up")
        ()
  in
  record ~name:"retry-exhaustion"
    ~pass:
      ((match r.Guard.outcome with
        | Guard.Faulted (Guard.Fault_crash _) -> true
        | _ -> false)
       && retries = 2 && gave_up
       && incident_problems = [])
    ~detail:
      [ ("outcome", Json.Str (Guard.outcome_name r.Guard.outcome));
        ("retries_counted", Json.num retries);
        ("gave_up", Json.Bool gave_up);
        ( "incident_problems",
          Json.Arr (List.map (fun s -> Json.Str s) incident_problems) ) ]

(* -- driver -------------------------------------------------------------- *)

let () =
  let quick = ref false and out = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: path :: rest ->
      out := Some path;
      parse rest
    | "--incident-dir" :: dir :: rest ->
      incident_root := Some dir;
      parse rest
    | a :: _ ->
      Printf.eprintf
        "pressure: unknown argument %s (try --quick, --out FILE, \
         --incident-dir DIR)\n"
        a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "pressure campaign%s: budget ladder + deadlines, tol %g\n%!"
    (if !quick then " (quick)" else "")
    tol;
  budget_axis ~quick:!quick;
  deadline_axis ();
  (* teardown: every pooled buffer must have come back, across every
     demoted, deadline-tripped, and budget-refused solve above *)
  (match Repro_runtime.Mempool.assert_quiescent () with
   | 0 -> record ~name:"pools quiescent at teardown" ~pass:true ~detail:[]
   | n ->
     record ~name:"pools quiescent at teardown" ~pass:false
       ~detail:[ ("outstanding", Json.num n) ]
   | exception Repro_runtime.Mempool.Not_quiescent { outstanding; leaked; detail }
     ->
     record ~name:"pools quiescent at teardown" ~pass:false
       ~detail:
         [ ("outstanding", Json.num outstanding);
           ("leaked", Json.num leaked);
           ("detail", Json.Arr (List.map (fun s -> Json.Str s) detail)) ]);
  let doc =
    Json.Obj
      [ ("schema", Json.Str "polymg.pressure/1");
        ("quick", Json.Bool !quick);
        ("cases", Json.Arr (List.rev !cases));
        ("failures", Json.num !failures) ]
  in
  (match !out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Json.to_channel oc doc;
     output_char oc '\n';
     close_out oc;
     Printf.printf "pressure: wrote %s\n" path);
  if !failures > 0 then begin
    Printf.printf "pressure campaign: %d FAILURE(S)\n" !failures;
    exit 1
  end;
  Printf.printf "pressure campaign: all %d cases passed\n"
    (List.length !cases)
