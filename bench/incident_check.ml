(* Incident-report schema validator: the CI gate that every report the
   flight recorder wrote is machine-readable and self-contained.

   Usage:
     incident_check.exe DIR [DIR ...]

   Walks each DIR recursively, parses every *.json with
   Repro_runtime.Json, and requires of each:
     - schema "polymg.incident/1"
     - a non-empty "kind"
     - a plan block with a non-empty digest
     - a non-empty "events" array whose entries each carry kind/seq/dom
     - a "counters" object and an "environment" block

   Exits 1 if any report is malformed or if no report was found at all
   (an empty artifact set would make the gate vacuous). *)

module Json = Repro_runtime.Json

let problems = ref 0
let checked = ref 0

let complain path fmt =
  Printf.ksprintf
    (fun m ->
      incr problems;
      Printf.printf "incident_check: %s: %s\n" path m)
    fmt

let mem k d = Option.value (Json.member k d) ~default:Json.Null

let check_report path doc =
  (match Json.to_str (mem "schema" doc) with
   | Some "polymg.incident/1" -> ()
   | Some s -> complain path "wrong schema %S" s
   | None -> complain path "missing schema");
  (match Json.to_str (mem "kind" doc) with
   | Some k when k <> "" -> ()
   | _ -> complain path "missing kind");
  (match Json.to_str (mem "digest" (mem "plan" doc)) with
   | Some d when d <> "" -> ()
   | _ -> complain path "missing plan digest");
  (match Json.to_list (mem "events" doc) with
   | [] -> complain path "empty event tail"
   | events ->
     List.iteri
       (fun i e ->
         if Json.to_str (mem "kind" e) = None then
           complain path "event %d has no kind" i;
         if Json.to_int (mem "seq" e) = None then
           complain path "event %d has no seq" i;
         if Json.to_int (mem "dom" e) = None then
           complain path "event %d has no dom" i)
       events);
  (match mem "counters" doc with
   | Json.Obj _ -> ()
   | _ -> complain path "missing counters object");
  (match mem "environment" doc with
   | Json.Obj _ -> ()
   | _ -> complain path "missing environment block")

let check_file path =
  incr checked;
  let ic =
    try open_in_bin path
    with Sys_error m ->
      complain path "cannot open: %s" m;
      raise Exit
  in
  let s =
    try really_input_string ic (in_channel_length ic)
    with End_of_file | Sys_error _ ->
      close_in_noerr ic;
      complain path "cannot read";
      raise Exit
  in
  close_in ic;
  match Json.parse s with
  | Ok doc -> check_report path doc
  | Error m -> complain path "parse error: %s" m

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry -> walk (Filename.concat path entry))
      (Sys.readdir path)
  else if Filename.check_suffix path ".json" then
    try check_file path with Exit -> ()

let () =
  let dirs = List.tl (Array.to_list Sys.argv) in
  if dirs = [] then begin
    prerr_endline "usage: incident_check.exe DIR [DIR ...]";
    exit 2
  end;
  List.iter
    (fun d ->
      if Sys.file_exists d then walk d
      else begin
        incr problems;
        Printf.printf "incident_check: %s: no such directory\n" d
      end)
    dirs;
  if !checked = 0 then begin
    Printf.printf "incident_check: no incident report found under: %s\n"
      (String.concat " " dirs);
    exit 1
  end;
  Printf.printf "incident_check: %d report(s), %d problem(s)\n" !checked
    !problems;
  exit (if !problems > 0 then 1 else 0)
