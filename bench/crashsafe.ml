(* SIGKILL-injection campaign: the executable proof that durable
   checkpoint/restart survives being killed at any instant.

   Children are forked (domains=1, so the runtime holds no threads and
   fork is safe) to run a checkpointed 2D Poisson solve (opt+ plan,
   cadence 1, keep 3) and are killed two ways:

     boundary   SIGKILL right after an accepted cycle's checkpoint
                write completed (the on_accept hook kills the process)
     mid-write  Snapshot's crash spec arms the n-th atomic write to
                flush only a byte prefix of its temp file and SIGKILL
                before the rename — a power cut between write and
                rename, deterministically

   After every kill the parent asserts the recovery invariant: if the
   directory holds any generation at all, [Checkpoint.load_latest]
   succeeds (torn temp files are invisible under the final name; a
   mid-write kill during the very first checkpoint legitimately leaves
   no generation, and resuming such a directory must exit 6, mg_solve's
   "resume failed" code).  A resume child then finishes the solve and
   its final iterate must match an uninterrupted reference run within
   the conformance plan budget — same plan, bit-identical in practice.

   Deliberate-corruption legs bit-flip and truncate the newest
   generation (restore must fall back to the previous one) and corrupt
   every generation (load_latest must reject the directory, and a fresh
   solve must still recover it).  A digest-drift leg checkpoints under
   opt+ and resumes under naive: the resume re-plans, records a
   resume-replan incident, and still matches the reference within the
   cross-implementation budget.

   Modes:
     --quick          small campaign (8 kills, 12 cycles): the runtest tier
     (default)        full campaign (50 kills, 24 cycles): the CI job
     --overhead       also time the on_accept hook plumbing (checkpointing
                      disabled) and write ckpt_off.json / ckpt_hook.json,
                      one-record polymg.bench/1 files for
                      `compare.exe ckpt_off.json ckpt_hook.json --threshold 0.02`
     --out FILE       write a polymg.crashsafe/1 JSON summary
     --incident-dir D arm the flight recorder in resume children; the
                      checkpoint-rejected / resume-replan incident trail
                      lands under D for incident_check.exe

   Exits 0 when every kill recovered and every leg passed. *)

open Repro_mg
open Repro_core
module Grid = Repro_grid.Grid
module Snapshot = Repro_runtime.Snapshot
module Flightrec = Repro_runtime.Flightrec
module Json = Repro_runtime.Json

let dims = 2
let n = 64

let cfg =
  Cycle.default ~dims ~shape:Cycle.V ~smoothing:(4, 4, 4)

(* -- args ---------------------------------------------------------------- *)

let quick = ref false
let kills = ref 50
let kills_set = ref false
let seed = ref 42
let out = ref None
let incident_dir = ref None
let overhead = ref false
let workdir = ref "crashsafe-work"

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--kills" :: v :: rest ->
      kills := int_of_string v;
      kills_set := true;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--out" :: v :: rest ->
      out := Some v;
      parse rest
    | "--incident-dir" :: v :: rest ->
      incident_dir := Some v;
      parse rest
    | "--overhead" :: rest ->
      overhead := true;
      parse rest
    | "--workdir" :: v :: rest ->
      workdir := v;
      parse rest
    | a :: _ ->
      Printf.eprintf
        "crashsafe: unknown argument %s\n\
         usage: crashsafe [--quick] [--kills N] [--seed N] [--out FILE]\n\
        \       [--incident-dir DIR] [--overhead] [--workdir DIR]\n"
        a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !quick && not !kills_set then kills := 8

let total_cycles () = if !quick then 12 else 24

(* -- fs helpers ---------------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* -- the forked solve child ---------------------------------------------- *)

type kill = No_kill | At_cycle of int | Mid_write of int * int

(* What the child does; runs entirely in the forked process.  Returns
   the exit code (6 = no usable checkpoint generation, like mg_solve). *)
let solve_child ~dir ~resume ~opts ~variant ~kill ~incidents () =
  Flightrec.set_enabled true;
  Flightrec.set_incident_dir incidents;
  let plan = Solver.polymg_plan cfg ~n ~opts in
  let digest = Plan.digest plan in
  Flightrec.note_plan ~digest ~variant;
  let problem = Problem.poisson ~dims ~n in
  let restored =
    if not resume then None
    else
      match Checkpoint.load_latest ~dir with
      | Error msg ->
        Printf.eprintf "child resume: %s\n%!" msg;
        Some (Error ())
      | Ok r ->
        let st = r.Checkpoint.state in
        if st.Checkpoint.plan_digest <> digest then begin
          if Flightrec.on () then
            Flightrec.emit
              (Flightrec.Resume_replan
                 { old_digest = st.Checkpoint.plan_digest;
                   new_digest = digest });
          ignore
            (Flightrec.incident ~kind:"resume-replan"
               ~cycle:st.Checkpoint.cycle
               ~detail:
                 [ ("checkpoint_digest", Json.Str st.Checkpoint.plan_digest);
                   ("current_digest", Json.Str digest) ]
               ())
        end;
        Some (Ok st)
  in
  match restored with
  | Some (Error ()) -> 6
  | _ ->
    let start_cycle, history_prefix, problem =
      match restored with
      | Some (Ok st) ->
        ( st.Checkpoint.cycle + 1,
          st.Checkpoint.history,
          { problem with Problem.v = st.Checkpoint.v } )
      | _ -> (1, [], problem)
    in
    Exec.with_runtime ~domains:1 (fun rt ->
        let stepper = Solver.plan_stepper plan ~rt in
        let sink =
          Checkpoint.sink
            { Checkpoint.dir; every = 1; keep = Checkpoint.default_keep }
            ~dims ~n ~variant ~plan_digest:digest ~history_prefix ()
        in
        let on_accept ~cycle ~residual ~v ~stats =
          sink.Checkpoint.on_accept ~cycle ~residual ~v ~stats;
          match kill with
          | At_cycle k when cycle = k ->
            Unix.kill (Unix.getpid ()) Sys.sigkill
          | _ -> ()
        in
        (match kill with
         | Mid_write (w, bytes) ->
           Snapshot.set_crash_spec
             (Some { Snapshot.after_writes = w; partial_bytes = bytes })
         | _ -> ());
        let cycles_left = total_cycles () - start_cycle + 1 in
        if cycles_left >= 1 then
          ignore
            (Solver.iterate stepper ~problem ~cycles:cycles_left ~start_cycle
               ~on_accept ());
        Snapshot.set_crash_spec None;
        ignore (sink.Checkpoint.flush ());
        0)

type child_status = Exited of int | Killed of int

let in_child f =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      try f ()
      with e ->
        Printf.eprintf "child: %s\n%!" (Printexc.to_string e);
        1
    in
    Stdlib.exit code
  | pid -> (
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED c -> Exited c
    | _, Unix.WSIGNALED s -> Killed s
    | _, Unix.WSTOPPED s -> Killed s)

(* -- campaign ------------------------------------------------------------ *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" what
  end

let budgets = Conformance.default_budgets

(* counters for the summary document *)
let boundary_kills = ref 0
let midwrite_kills = ref 0
let cold_restarts = ref 0
let resumes_ok = ref 0
let rejected_gens = ref 0
let bit_identical = ref 0
let worst_abs = ref 0.0

let finish_and_compare ~what ~dir ~ref_v ~budget ~incidents =
  (* a resume child completes the solve; its final generation must hold
     the full cycle count and match the uninterrupted reference *)
  (match in_child (solve_child ~dir ~resume:true ~opts:Options.opt_plus
                     ~variant:"opt+" ~kill:No_kill ~incidents )
   with
   | Exited 0 -> incr resumes_ok
   | st ->
     check
       (Printf.sprintf "%s: resume child status %s" what
          (match st with
           | Exited c -> Printf.sprintf "exit %d" c
           | Killed s -> Printf.sprintf "signal %d" s))
       false);
  match Checkpoint.load_latest ~dir with
  | Error msg -> check (Printf.sprintf "%s: final load: %s" what msg) false
  | Ok r ->
    let st = r.Checkpoint.state in
    check
      (Printf.sprintf "%s: final cycle %d <> %d" what st.Checkpoint.cycle
         (total_cycles ()))
      (st.Checkpoint.cycle = total_cycles ());
    let d = Conformance.grid_diff st.Checkpoint.v ref_v in
    if d.Conformance.max_abs = 0.0 then incr bit_identical;
    if d.Conformance.max_abs > !worst_abs then worst_abs := d.Conformance.max_abs;
    check
      (Printf.sprintf "%s: resumed answer off by %.3e (budget %.1e)" what
         d.Conformance.max_abs budget)
      (d.Conformance.max_abs <= budget)

let () =
  rm_rf !workdir;
  mkdir_p !workdir;
  let rng = Random.State.make [| !seed |] in
  let total = total_cycles () in
  let dir_of leg = Filename.concat !workdir leg in
  let incidents_of leg =
    Option.map (fun d -> Filename.concat d leg) !incident_dir
  in

  (* Reference: an uninterrupted checkpointed run in its own child (the
     parent itself never touches the execution runtime, keeping every
     later fork trivially safe); the parent reads its final generation. *)
  let ref_dir = dir_of "reference" in
  (match in_child (solve_child ~dir:ref_dir ~resume:false
                     ~opts:Options.opt_plus ~variant:"opt+" ~kill:No_kill
                     ~incidents:None )
   with
   | Exited 0 -> ()
   | _ ->
     prerr_endline "crashsafe: reference run failed";
     exit 1);
  let ref_v =
    match Checkpoint.load_latest ~dir:ref_dir with
    | Ok r when r.Checkpoint.state.Checkpoint.cycle = total ->
      r.Checkpoint.state.Checkpoint.v
    | Ok _ | Error _ ->
      prerr_endline "crashsafe: reference run left no full checkpoint";
      exit 1
  in
  Printf.printf "crashsafe: %d randomized kills, %d cycles, seed %d\n%!"
    !kills total !seed;

  (* ---- randomized kill loop ---- *)
  for i = 1 to !kills do
    let leg = Printf.sprintf "kill-%03d" i in
    let dir = dir_of leg in
    let kill =
      if i mod 2 = 1 then begin
        incr midwrite_kills;
        (* die during the w-th checkpoint write, with only a byte
           prefix of the temp file flushed (0 = nothing at all) *)
        Mid_write
          (1 + Random.State.int rng (total - 1), Random.State.int rng 96)
      end
      else begin
        incr boundary_kills;
        At_cycle (1 + Random.State.int rng (total - 1))
      end
    in
    (match in_child (solve_child ~dir ~resume:false ~opts:Options.opt_plus
                       ~variant:"opt+" ~kill ~incidents:None )
     with
     | Killed s when s = Sys.sigkill -> ()
     | st ->
       check
         (Printf.sprintf "%s: expected SIGKILL death, got %s" leg
            (match st with
             | Exited c -> Printf.sprintf "exit %d" c
             | Killed s -> Printf.sprintf "signal %d" s))
         false);
    (* recovery invariant: any surviving generation set is loadable *)
    match Checkpoint.generations ~dir with
    | [] ->
      (* killed during the very first write: resuming must exit 6, and
         a fresh solve must still recover the directory *)
      incr cold_restarts;
      (match in_child (solve_child ~dir ~resume:true ~opts:Options.opt_plus
                         ~variant:"opt+" ~kill:No_kill ~incidents:None )
       with
       | Exited 6 -> ()
       | st ->
         check
           (Printf.sprintf "%s: empty-dir resume should exit 6, got %s" leg
              (match st with
               | Exited c -> Printf.sprintf "exit %d" c
               | Killed s -> Printf.sprintf "signal %d" s))
           false);
      (match in_child (solve_child ~dir ~resume:false ~opts:Options.opt_plus
                         ~variant:"opt+" ~kill:No_kill ~incidents:None )
       with
       | Exited 0 -> incr resumes_ok
       | _ -> check (Printf.sprintf "%s: fresh solve after cold kill" leg)
                false)
    | _ :: _ ->
      (match Checkpoint.load_latest ~dir with
       | Ok r -> rejected_gens := !rejected_gens + List.length r.Checkpoint.rejected
       | Error msg ->
         check (Printf.sprintf "%s: UNRECOVERABLE dir: %s" leg msg) false);
      finish_and_compare ~what:leg ~dir ~ref_v ~budget:budgets.Conformance.vs_plan
        ~incidents:None
  done;

  (* ---- deliberate corruption: bit-flip the newest generation ---- *)
  let corrupt leg mutate =
    let dir = dir_of leg in
    (match in_child (solve_child ~dir ~resume:false ~opts:Options.opt_plus
                       ~variant:"opt+" ~kill:(At_cycle (total / 2))
                       ~incidents:None)
     with
     | Killed s when s = Sys.sigkill -> ()
     | _ -> check (Printf.sprintf "%s: setup kill" leg) false);
    let gens = Checkpoint.generations ~dir in
    check (Printf.sprintf "%s: setup left generations" leg) (gens <> []);
    (match List.rev gens with
     | newest :: _ :: _ ->
       let path = Checkpoint.gen_path ~dir newest in
       mutate path;
       (match Checkpoint.load_latest ~dir with
        | Ok r ->
          check
            (Printf.sprintf "%s: corrupt newest gen %d not rejected" leg
               newest)
            (List.mem_assoc newest r.Checkpoint.rejected);
          check
            (Printf.sprintf "%s: fell forward to gen %d" leg r.Checkpoint.gen)
            (r.Checkpoint.gen < newest)
        | Error msg ->
          check (Printf.sprintf "%s: no fallback generation: %s" leg msg)
            false)
     | _ -> check (Printf.sprintf "%s: expected >= 2 generations" leg) false);
    finish_and_compare ~what:leg ~dir ~ref_v ~budget:budgets.Conformance.vs_plan
      ~incidents:(incidents_of leg)
  in
  corrupt "bitflip" (fun path ->
      let s = Bytes.of_string (read_file path) in
      let i = Bytes.length s / 2 in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x10));
      write_file path (Bytes.to_string s));
  corrupt "truncate" (fun path ->
      let s = read_file path in
      write_file path (String.sub s 0 (String.length s / 2)));

  (* ---- every generation corrupted: detected, not deserialized ---- *)
  let dir = dir_of "corrupt-all" in
  (match in_child (solve_child ~dir ~resume:false ~opts:Options.opt_plus
                     ~variant:"opt+" ~kill:(At_cycle (total / 2))
                     ~incidents:None)
   with
   | Killed s when s = Sys.sigkill -> ()
   | _ -> check "corrupt-all: setup kill" false);
  List.iter
    (fun g ->
      let path = Checkpoint.gen_path ~dir g in
      let s = read_file path in
      write_file path (String.sub s 0 (String.length s - 7)))
    (Checkpoint.generations ~dir);
  (match Checkpoint.load_latest ~dir with
   | Error _ -> ()
   | Ok r ->
     check
       (Printf.sprintf "corrupt-all: gen %d deserialized despite corruption"
          r.Checkpoint.gen)
       false);
  (match in_child (solve_child ~dir ~resume:true ~opts:Options.opt_plus
                     ~variant:"opt+" ~kill:No_kill
                     ~incidents:(incidents_of "corrupt-all"))
   with
   | Exited 6 -> ()
   | _ -> check "corrupt-all: resume should exit 6" false);
  (match in_child (solve_child ~dir ~resume:false ~opts:Options.opt_plus
                     ~variant:"opt+" ~kill:No_kill ~incidents:None )
   with
   | Exited 0 -> ()
   | _ -> check "corrupt-all: fresh solve recovers the dir" false);

  (* ---- plan-digest drift: checkpoint under opt+, resume under naive ---- *)
  let dir = dir_of "drift" in
  (match in_child (solve_child ~dir ~resume:false ~opts:Options.opt_plus
                     ~variant:"opt+" ~kill:(At_cycle (total / 2))
                     ~incidents:None)
   with
   | Killed s when s = Sys.sigkill -> ()
   | _ -> check "drift: setup kill" false);
  (match in_child (solve_child ~dir ~resume:true ~opts:Options.naive
                     ~variant:"naive" ~kill:No_kill
                     ~incidents:(incidents_of "drift"))
   with
   | Exited 0 -> ()
   | st ->
     check
       (Printf.sprintf "drift: naive resume status %s"
          (match st with
           | Exited c -> Printf.sprintf "exit %d" c
           | Killed s -> Printf.sprintf "signal %d" s))
       false);
  (match Checkpoint.load_latest ~dir with
   | Error msg -> check (Printf.sprintf "drift: final load: %s" msg) false
   | Ok r ->
     let st = r.Checkpoint.state in
     check "drift: resumed plan digest recorded"
       (st.Checkpoint.variant = "naive");
     check
       (Printf.sprintf "drift: final cycle %d" st.Checkpoint.cycle)
       (st.Checkpoint.cycle = total);
     let d = Conformance.grid_diff st.Checkpoint.v ref_v in
     check
       (Printf.sprintf "drift: cross-plan answer off by %.3e (budget %.1e)"
          d.Conformance.max_abs budgets.Conformance.vs_handopt)
       (d.Conformance.max_abs <= budgets.Conformance.vs_handopt));
  (match incidents_of "drift" with
   | None -> ()
   | Some d ->
     let found =
       Sys.file_exists d
       && Array.exists
            (fun f ->
              (* incident-NNN-resume-replan.json *)
              let has_sub sub =
                let ls, l = (String.length sub, String.length f) in
                let rec go i =
                  i + ls <= l && (String.sub f i ls = sub || go (i + 1))
                in
                go 0
              in
              has_sub "resume-replan")
            (Sys.readdir d)
     in
     check "drift: resume-replan incident written" found);

  (* ---- overhead of the (disabled) checkpoint hook plumbing ---- *)
  if !overhead then begin
    let cycles = 8 and reps = 3 in
    let problem = Problem.poisson_random ~dims ~n:128 ~seed:7 in
    Exec.with_runtime ~domains:1 (fun rt ->
        let stepper =
          Solver.polymg_stepper cfg ~n:128 ~opts:Options.opt_plus ~rt
        in
        let time ?on_accept () =
          let run () =
            (Solver.iterate stepper ~problem ~cycles ~residuals:false
               ?on_accept ())
              .Solver.total_seconds
          in
          ignore (run ());
          let best = ref infinity in
          for _ = 1 to reps do
            best := Float.min !best (run ())
          done;
          !best /. float_of_int cycles
        in
        let t_off = time () in
        let t_hook =
          time ~on_accept:(fun ~cycle:_ ~residual:_ ~v:_ ~stats:_ -> ()) ()
        in
        Printf.printf
          "overhead: %.4f s/cycle no hook, %.4f s/cycle no-op hook \
           (%+.1f%%)\n%!"
          t_off t_hook
          (100.0 *. ((t_hook /. t_off) -. 1.0));
        let record seconds =
          Json.Obj
            [ ("schema", Json.Str "polymg.bench/1");
              ( "records",
                Json.Arr
                  [ Json.Obj
                      [ ("bench", Json.Str (Cycle.bench_name cfg));
                        ("n", Json.num 128);
                        ("dims", Json.num dims);
                        ("domains", Json.num 1);
                        ("variant", Json.Str "opt+");
                        ("s_per_cycle", Json.Num seconds);
                        ("counters", Json.Obj []) ] ] ) ]
        in
        Snapshot.atomic_write_string ~path:"ckpt_off.json"
          (Json.to_string (record t_off) ^ "\n");
        Snapshot.atomic_write_string ~path:"ckpt_hook.json"
          (Json.to_string (record t_hook) ^ "\n");
        print_endline "wrote ckpt_off.json ckpt_hook.json")
  end;

  (* ---- teardown: pools must be quiescent across every killed,
     resumed, and rejected solve above ---- *)
  (match Repro_runtime.Mempool.assert_quiescent () with
   | 0 -> ()
   | n -> check (Printf.sprintf "pools quiescent (%d outstanding)" n) false
   | exception Repro_runtime.Mempool.Not_quiescent { outstanding; leaked; detail }
     ->
     check
       (Printf.sprintf "pools quiescent (%d outstanding, %d leaked: %s)"
          outstanding leaked
          (String.concat "; " detail))
       false);

  (* ---- summary ---- *)
  let doc =
    Json.Obj
      [ ("schema", Json.Str "polymg.crashsafe/1");
        ("kills", Json.num !kills);
        ("cycles", Json.num total);
        ("seed", Json.num !seed);
        ("boundary_kills", Json.num !boundary_kills);
        ("midwrite_kills", Json.num !midwrite_kills);
        ("cold_restarts", Json.num !cold_restarts);
        ("resumes_ok", Json.num !resumes_ok);
        ("rejected_generations", Json.num !rejected_gens);
        ("bit_identical_resumes", Json.num !bit_identical);
        ("worst_max_abs", Json.Num !worst_abs);
        ("failures", Json.num !failures) ]
  in
  (match !out with
   | Some path -> Snapshot.atomic_write_string ~path (Json.to_string doc ^ "\n")
   | None -> ());
  Printf.printf
    "crashsafe: %d kills (%d mid-write, %d boundary, %d cold), %d resumes, \
     %d generation(s) rejected, %d/%d bit-identical, worst |diff| %.3e — %s\n"
    !kills !midwrite_kills !boundary_kills !cold_restarts !resumes_ok
    !rejected_gens !bit_identical
    (!kills - !cold_restarts + 2)
    !worst_abs
    (if !failures = 0 then "PASS" else Printf.sprintf "%d FAILURES" !failures);
  exit (if !failures = 0 then 0 else 1)
