(* Conformance campaign: the executable proof that every variant of the
   compiler computes the same answer (the paper's §7 validation premise).

   Five legs, each reported and JSON-exported:
     - differential oracle: every plan variant and the hand-optimized
       baselines, run in lockstep against the naive plan over
       {2D,3D} x {V,W} x smoothing {4-4-4, 10-0-0} x domains {1,4},
       pairwise within the documented ULP/abs budgets; on mismatch the
       worst cycle and first diverging stage are named;
     - emitted-C run-equivalence: the self-contained C driver is
       compiled (gcc, falling back to cc), executed, and its grid dump
       diffed against the engine; a visible skip when no compiler;
     - backend axis: every plan variant's dlopen'd native kernel
       (Repro_core.Native) run in lockstep against the interpreter on
       the same plan, over the full campaign matrix; a visible skip
       when no compiler;
     - MMS convergence: solving the manufactured Poisson problem at
       n, 2n, 4n must show observed order 2.0 +/- 0.1 in 2D and 3D;
     - injected-bug self-test: a stencil coefficient perturbed by 1e-3
       must be *caught* by the differential property, with a minimized,
       seed-replayable counterexample — the harness proves it can see
       the bugs it exists to catch;
     - convergence health: the observatory's (Repro_mg.Health) range
       check on the standard Poisson configs — asymptotic convergence
       factor within per-config bounds, residual decreasing, no level
       stalled above round-off.

   Writes a polymg.conformance/1 JSON report with --out; --quick trims
   the matrix for CI smoke.  Runs in `dune runtest` (test/dune). *)

open Repro_mg
module Json = Repro_runtime.Json

let failures = ref 0

let leg name pass =
  if not pass then incr failures;
  Format.printf "%s: %s@." name (if pass then "PASS" else "FAIL")

(* -- leg 1: differential oracle ----------------------------------------- *)

let run_oracle ~quick =
  Format.printf "@.== differential oracle (budgets: plan %.1e, handopt %.1e) ==@."
    Conformance.default_budgets.Conformance.vs_plan
    Conformance.default_budgets.Conformance.vs_handopt;
  let cases = Conformance.oracle_campaign ~quick () in
  List.iter (fun c -> Format.printf "%a@." Conformance.pp_case c) cases;
  leg "oracle" (List.for_all Conformance.case_pass cases);
  cases

(* -- leg 2: emitted-C run-equivalence ----------------------------------- *)

let run_c ~quick =
  Format.printf "@.== emitted-C run-equivalence (budget %.1e) ==@."
    Conformance.default_budgets.Conformance.vs_c;
  let verdicts = Conformance.c_campaign ~quick () in
  List.iter (fun v -> Format.printf "%a@." Conformance.pp_c_verdict v) verdicts;
  let skips =
    List.length
      (List.filter
         (function _, Conformance.C_skip _ -> true | _ -> false)
         verdicts)
  in
  if skips > 0 then Format.printf "c-equivalence: %d case(s) SKIPPED@." skips;
  leg "c-equivalence" (List.for_all (fun (_, v) -> Conformance.c_verdict_pass v) verdicts);
  verdicts

(* -- leg 2b: backend axis (interpreter vs native) ----------------------- *)

let run_native ~quick =
  Format.printf "@.== backend axis: interpreter vs native (budget %.1e) ==@."
    Conformance.default_budgets.Conformance.vs_c;
  match Conformance.native_campaign ~quick () with
  | Error reason ->
    (* visible skip, never a silent pass *)
    Format.printf "native: SKIPPED (%s)@." reason;
    leg "native" true;
    Error reason
  | Ok cases ->
    List.iter (fun c -> Format.printf "%a@." Conformance.pp_case c) cases;
    leg "native" (List.for_all Conformance.case_pass cases);
    Ok cases

(* -- leg 3: MMS convergence order --------------------------------------- *)

let run_mms ~quick =
  Format.printf "@.== MMS convergence (expect order 2.0 +/- 0.1) ==@.";
  let dims_list = if quick then [ 2 ] else [ 2; 3 ] in
  let studies = List.map (fun dims -> Conformance.mms_study ~dims ()) dims_list in
  List.iter (fun m -> Format.printf "%a@." Conformance.pp_mms m) studies;
  leg "mms" (List.for_all Conformance.mms_pass studies);
  studies

(* -- leg 5: convergence health ------------------------------------------ *)

(* The observatory's range check on the standard Poisson configs: the
   asymptotic convergence factor must sit in the expected band, the
   residual must drop, and no level may stall above round-off.  Guards
   both the numerics (a smoother or transfer regression shows up as a
   worse factor long before it breaks the differential oracle's
   lockstep) and the --health/--metrics surface built on it. *)
let run_health ~quick =
  Format.printf "@.== convergence health (factor bounds per config) ==@.";
  (* measured asymptotic factors: V-2D ~0.67, W-2D ~0.22, V-3D ~0.28 —
     bounds leave ~15%% headroom before the leg trips *)
  let configs =
    [ ("V-2D", 2, Cycle.V, 64, 0.75); ("W-2D", 2, Cycle.W, 64, 0.30) ]
    @ (if quick then [] else [ ("V-3D", 3, Cycle.V, 32, 0.35) ])
  in
  let results =
    List.map
      (fun (name, dims, shape, n, max_factor) ->
        let cfg = Cycle.default ~dims ~shape ~smoothing:(4, 4, 4) in
        let r = Health.observe cfg ~n ~cycles:(if quick then 6 else 8) () in
        let verdict = Health.healthy ~max_factor r in
        (match verdict with
         | Ok () ->
           Format.printf
             "%-6s n=%d: asymptotic factor %.3f (bound %.2f)  ok@." name n
             r.Health.asymptotic_factor max_factor
         | Error msgs ->
           List.iter
             (fun m -> Format.printf "%-6s n=%d: %s@." name n m)
             msgs);
        (name, n, max_factor, r, verdict))
      configs
  in
  leg "health"
    (List.for_all (fun (_, _, _, _, v) -> Result.is_ok v) results);
  results

let json_of_health (name, n, max_factor, r, verdict) =
  Json.Obj
    [ ("config", Json.Str name);
      ("n", Json.num n);
      ("max_factor", Json.Num max_factor);
      ( "asymptotic_factor",
        if Float.is_finite r.Health.asymptotic_factor then
          Json.Num r.Health.asymptotic_factor
        else Json.Null );
      ("pass", Json.Bool (Result.is_ok verdict));
      ( "violations",
        Json.Arr
          (match verdict with
           | Ok () -> []
           | Error msgs -> List.map (fun m -> Json.Str m) msgs) ) ]

(* -- leg 4: injected-bug self-test -------------------------------------- *)

(* Perturb the first generated stencil's center coefficient: the kind of
   silent miscompile the oracle exists to catch. *)
let inject_bug stages =
  let done_ = ref false in
  List.map
    (fun st ->
      match st with
      | Pipeline_gen.G_stencil (p, w, f) when not !done_ ->
        done_ := true;
        let w' = Array.copy w in
        w'.(4) <- w'.(4) +. 1e-3;
        Pipeline_gen.G_stencil (p, w', f)
      | st -> st)
    stages

let max_abs_diff (a : Repro_grid.Grid.t) (b : Repro_grid.Grid.t) =
  let d = Conformance.grid_diff a b in
  d.Conformance.max_abs

let has_stencil =
  List.exists (function Pipeline_gen.G_stencil _ -> true | _ -> false)

let run_selftest ~quick =
  Format.printf "@.== injected-bug self-test (seed %d) ==@." Qc_replay.seed;
  let count = if quick then 30 else 100 in
  (* This property is deliberately FALSE: naive-on-clean must disagree
     with opt+-on-bugged whenever the perturbed stencil feeds the
     output.  The campaign passes iff QCheck finds and minimizes a
     counterexample. *)
  let prop stages =
    has_stencil stages = false
    ||
    try
      let clean =
        Pipeline_gen.run_pipeline
          (Pipeline_gen.gen_pipeline_of stages)
          ~opts:Repro_core.Options.naive ~n:32
      in
      let bugged =
        Pipeline_gen.run_pipeline
          (Pipeline_gen.gen_pipeline_of (inject_bug stages))
          ~opts:Repro_core.Options.opt_plus ~n:32
      in
      max_abs_diff clean bugged
      <= Conformance.default_budgets.Conformance.vs_plan
    with _ -> true
  in
  let cell =
    QCheck.Test.make_cell ~count ~name:"injected stencil bug is caught"
      Pipeline_gen.pipelines_arb prop
  in
  let result = QCheck.Test.check_cell ~rand:(Qc_replay.rand ()) cell in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed { instances = c_ex :: _ } ->
    Format.printf
      "bug caught; minimized counterexample (%d shrink steps):@.%s@."
      c_ex.QCheck.TestResult.shrink_steps
      (Pipeline_gen.print_stages c_ex.QCheck.TestResult.instance);
    Format.printf "replay: QCHECK_SEED=%d dune exec bench/conformance.exe@."
      Qc_replay.seed;
    let minimal = has_stencil c_ex.QCheck.TestResult.instance in
    if not minimal then
      Format.printf "counterexample lost its stencil stage (shrinker bug?)@.";
    leg "injected-bug" minimal;
    Some (c_ex.QCheck.TestResult.shrink_steps,
          Pipeline_gen.print_stages c_ex.QCheck.TestResult.instance)
  | QCheck.TestResult.Failed { instances = [] } | QCheck.TestResult.Success ->
    Format.printf
      "the oracle did NOT catch the injected bug (seed %d, replay: \
       QCHECK_SEED=%d dune exec bench/conformance.exe)@."
      Qc_replay.seed Qc_replay.seed;
    leg "injected-bug" false;
    None
  | QCheck.TestResult.Failed_other { msg } ->
    Format.printf "self-test aborted: %s@." msg;
    leg "injected-bug" false;
    None
  | QCheck.TestResult.Error { exn; _ } ->
    Format.printf "self-test raised: %s@." (Printexc.to_string exn);
    leg "injected-bug" false;
    None

(* -- driver -------------------------------------------------------------- *)

let () =
  let quick = ref false and out = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: path :: rest ->
      out := Some path;
      parse rest
    | a :: _ ->
      Printf.eprintf
        "conformance: unknown argument %s (try --quick, --out FILE)\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Format.printf "conformance campaign%s@."
    (if !quick then " (quick)" else "");
  let oracle = run_oracle ~quick:!quick in
  let c_verdicts = run_c ~quick:!quick in
  let native = run_native ~quick:!quick in
  let mms = run_mms ~quick:!quick in
  let health = run_health ~quick:!quick in
  let selftest = run_selftest ~quick:!quick in
  let doc =
    Json.Obj
      [ ("schema", Json.Str "polymg.conformance/1");
        ("quick", Json.Bool !quick);
        ("oracle", Json.Arr (List.map Conformance.json_of_case oracle));
        ( "c_equivalence",
          Json.Arr (List.map Conformance.json_of_c_verdict c_verdicts) );
        ( "native",
          match native with
          | Error reason ->
            Json.Obj
              [ ("status", Json.Str "skip"); ("reason", Json.Str reason) ]
          | Ok cases ->
            Json.Arr (List.map Conformance.json_of_case cases) );
        ("mms", Json.Arr (List.map Conformance.json_of_mms mms));
        ("health", Json.Arr (List.map json_of_health health));
        ( "injected_bug",
          match selftest with
          | Some (shrink_steps, counterexample) ->
            Json.Obj
              [ ("caught", Json.Bool true);
                ("seed", Json.num Qc_replay.seed);
                ("shrink_steps", Json.num shrink_steps);
                ("counterexample", Json.Str counterexample) ]
          | None ->
            Json.Obj
              [ ("caught", Json.Bool false); ("seed", Json.num Qc_replay.seed) ]
        );
        ("failures", Json.num !failures) ]
  in
  (match !out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Json.to_channel oc doc;
     output_char oc '\n';
     close_out oc;
     Format.printf "conformance: wrote %s@." path);
  if !failures > 0 then begin
    Format.printf "conformance campaign: %d FAILING LEG(S)@." !failures;
    exit 1
  end;
  Format.printf "conformance campaign: all legs passed@."
