(* Shared measurement utilities for the paper harness. *)

open Repro_mg
open Repro_core
module Telemetry = Repro_runtime.Telemetry
module Json = Repro_runtime.Json

let init_gc () =
  (* keep bigarray custom-block accounting from forcing extra majors, so
     allocation costs reflect malloc/page-fault behaviour, not the GC *)
  Gc.set
    { (Gc.get ()) with
      Gc.custom_major_ratio = 10000;
      Gc.custom_minor_ratio = 10000 }

(* paper methodology: minimum over [reps] measurements after one warmup *)
let time_stepper ?(reps = 2) ~cycles stepper (problem : Problem.t) =
  let run () =
    (Solver.iterate stepper ~problem ~cycles ~residuals:false ())
      .Solver.total_seconds
  in
  ignore (run ());
  let best = ref infinity in
  for _ = 1 to reps do
    best := Float.min !best (run ())
  done;
  !best /. float_of_int cycles

type variant = {
  vname : string;
  make : Cycle.config -> n:int -> rt:Exec.runtime -> Solver.stepper;
}

let polymg_variant vname opts =
  { vname; make = (fun cfg ~n ~rt -> Solver.polymg_stepper cfg ~n ~opts ~rt) }

(* Autotune-lite (paper §3.2.4 tunes 80-135 configurations per benchmark;
   we probe a compact subset): group-size limits crossed with tile sizes,
   one trial cycle each, keeping the fastest. *)
let tune_space =
  [ (1, [| 64; 512 |], [| 16; 16; 128 |]);
    (3, [| 32; 512 |], [| 8; 16; 128 |]);
    (3, [| 64; 512 |], [| 16; 16; 128 |]);
    (6, [| 32; 256 |], [| 16; 16; 128 |]);
    (6, [| 64; 512 |], [| 32; 32; 256 |]) ]

let tune_opts base cfg ~n =
  let problem =
    Problem.poisson_random ~dims:cfg.Cycle.dims ~n ~seed:99
  in
  let best = ref (infinity, base) in
  List.iter
    (fun (limit, t2, t3) ->
      let opts =
        { (Options.with_tiles base ~t2 ~t3) with
          Options.group_size_limit = limit }
      in
      let rt = Exec.runtime () in
      (try
         let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
         let t = time_stepper ~reps:2 ~cycles:1 stepper problem in
         if t < fst !best then best := (t, opts)
       with Invalid_argument _ -> ());
      Exec.free_runtime rt)
    tune_space;
  snd !best

let tuned_variant vname base =
  { vname;
    make =
      (fun cfg ~n ~rt ->
        let opts = tune_opts base cfg ~n in
        Solver.polymg_stepper cfg ~n ~opts ~rt) }

let handopt_variant =
  { vname = "handopt";
    make =
      (fun cfg ~n ~rt ->
        Handopt.stepper (Handopt.create cfg ~n ~par:rt.Exec.par ())) }

let handpluto_variant ?(sigma = 16) () =
  { vname = "handopt+pluto";
    make =
      (fun cfg ~n ~rt ->
        Handopt.stepper
          (Handopt.create cfg ~n ~par:rt.Exec.par
             ~smoothing:(Handopt.Pluto { sigma })
             ())) }

let all_variants =
  [ polymg_variant "polymg-naive" Options.naive;
    handopt_variant;
    handpluto_variant ();
    tuned_variant "polymg-opt" Options.opt;
    tuned_variant "polymg-opt+" Options.opt_plus;
    tuned_variant "polymg-dtile-opt+" Options.dtile_opt_plus ]

(* A preset run through the native backend (compiled, dlopen'd kernels).
   The stepper build compiles (or cache-hits) the kernel, so the timed
   region measures kernel calls only.  Forced Native, never Auto: a
   missing compiler must fail the bench loudly, not quietly measure the
   interpreter. *)
let native_variant vname opts =
  { vname = vname ^ "/native";
    make =
      (fun cfg ~n ~rt ->
        Solver.polymg_stepper cfg ~n
          ~opts:{ opts with Options.backend = Options.Native }
          ~rt) }

(* The equal-footing comparison the native backend exists for: every
   preset as a compiled kernel, the interpreted naive/opt+ plans and the
   hand-written baseline alongside. *)
let native_variants =
  [ polymg_variant "polymg-naive" Options.naive;
    polymg_variant "polymg-opt+" Options.opt_plus;
    handopt_variant;
    native_variant "polymg-naive" Options.naive;
    native_variant "polymg-opt" Options.opt;
    native_variant "polymg-opt+" Options.opt_plus;
    native_variant "polymg-dtile-opt+" Options.dtile_opt_plus ]

let benchmarks ~dims =
  [ Cycle.default ~dims ~shape:Cycle.V ~smoothing:(4, 4, 4);
    Cycle.default ~dims ~shape:Cycle.V ~smoothing:(10, 0, 0);
    Cycle.default ~dims ~shape:Cycle.W ~smoothing:(4, 4, 4);
    Cycle.default ~dims ~shape:Cycle.W ~smoothing:(10, 0, 0) ]

(* ---- structured measurement records (machine-readable trajectory) ---- *)

let counters_json cs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%d" (Telemetry.json_escape k) v)
         cs)
  ^ "}"

(* Every emitted record is also accumulated here so a run can end by
   writing the whole trajectory as one machine-readable artifact
   (BENCH_results.json, the file bench/compare.exe diffs). *)
let records : Json.t list ref = ref []

let record_json ~bench ~n ~dims ~domains ~vname ~seconds ~counters =
  Json.Obj
    [ ("bench", Json.Str bench);
      ("n", Json.num n);
      ("dims", Json.num dims);
      ("domains", Json.num domains);
      ("variant", Json.Str vname);
      ("s_per_cycle", Json.Num seconds);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) counters))
    ]

(* One line per measurement, greppable as ^BENCH and parseable as JSON —
   the BENCH_*.json-compatible record every perf PR is judged against. *)
let emit_bench_json ~bench ~n ~dims ~domains ~vname ~seconds ~counters =
  records :=
    record_json ~bench ~n ~dims ~domains ~vname ~seconds ~counters :: !records;
  Printf.printf
    "BENCH \
     {\"bench\":\"%s\",\"n\":%d,\"dims\":%d,\"domains\":%d,\"variant\":\"%s\",\"s_per_cycle\":%.6f,\"counters\":%s}\n"
    (Telemetry.json_escape bench) n dims domains
    (Telemetry.json_escape vname)
    seconds (counters_json counters)

let write_results ?(path = "BENCH_results.json") () =
  match !records with
  | [] -> ()
  | rs ->
    let doc =
      Json.Obj
        [ ("schema", Json.Str "polymg.bench/1");
          ("records", Json.Arr (List.rev rs)) ]
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Json.to_channel oc doc;
        output_char oc '\n');
    Printf.printf "wrote %s (%d records)\n" path (List.length rs)

(* Counter snapshot from one instrumented cycle, run outside the timed
   region so telemetry never perturbs the measurement itself. *)
let counter_snapshot stepper problem =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  ignore (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
  Telemetry.set_enabled false;
  let cs = Telemetry.counters () in
  Telemetry.reset ();
  cs

(* The disabled telemetry path must keep tier-1 timings at the seed
   level: measure the per-call cost of the no-op instrumentation and
   fail loudly if it is not far below measurement noise (a cycle is
   milliseconds; 5M no-op calls must cost well under one). *)
let assert_telemetry_noop () =
  Telemetry.set_enabled false;
  let iters = 5_000_000 in
  let c = Telemetry.counter "bench.noop" in
  let t0 = Telemetry.now_ns () in
  for _ = 1 to iters do
    let t = Telemetry.begin_span () in
    Telemetry.end_span t "noop";
    Telemetry.add c 1
  done;
  let per_call =
    float_of_int (Telemetry.now_ns () - t0) /. float_of_int iters
  in
  Printf.printf
    "telemetry disabled-path: %.1f ns per span+counter site (budget 100 ns)\n"
    per_call;
  if per_call > 100.0 then
    failwith "telemetry disabled path exceeds the no-op budget"

(* Same discipline for the flight recorder: a guarded call site
   ([if Flightrec.on () then Flightrec.emit ...]) with the recorder off
   must cost one atomic load and a predictable branch — no event is
   constructed, so the loop must not allocate either. *)
let assert_flightrec_noop () =
  let module Flightrec = Repro_runtime.Flightrec in
  Flightrec.set_enabled false;
  let iters = 5_000_000 in
  let minor0 = Gc.minor_words () in
  let t0 = Telemetry.now_ns () in
  for i = 1 to iters do
    if Flightrec.on () then
      Flightrec.emit (Flightrec.Checkpoint { cycle = i; residual = 0.0 })
  done;
  let per_call =
    float_of_int (Telemetry.now_ns () - t0) /. float_of_int iters
  in
  let minor_words = Gc.minor_words () -. minor0 in
  Printf.printf
    "flightrec disabled-path: %.1f ns per guarded site (budget 100 ns), \
     %.0f minor words for %d sites (budget 256)\n"
    per_call minor_words iters;
  if per_call > 100.0 then
    failwith "flightrec disabled path exceeds the no-op budget";
  (* slack for the Gc.minor_words probes themselves, not the loop *)
  if minor_words > 256.0 then
    failwith "flightrec disabled path allocates"

(* Same discipline for the profiler: a disabled [Profile.start]/[stop]
   pair must cost one atomic load and a predictable branch per site —
   no clock read, no accumulator touch, no allocation. *)
let assert_profile_noop () =
  let module Profile = Repro_runtime.Profile in
  Profile.set_enabled false;
  let site = Profile.site "bench.noop" in
  let iters = 5_000_000 in
  let minor0 = Gc.minor_words () in
  let t0 = Telemetry.now_ns () in
  for _ = 1 to iters do
    let t = Profile.start () in
    Profile.stop t site
  done;
  let per_call =
    float_of_int (Telemetry.now_ns () - t0) /. float_of_int iters
  in
  let minor_words = Gc.minor_words () -. minor0 in
  Printf.printf
    "profile disabled-path: %.1f ns per start/stop site (budget 100 ns), \
     %.0f minor words for %d sites (budget 256)\n"
    per_call minor_words iters;
  if per_call > 100.0 then
    failwith "profile disabled path exceeds the no-op budget";
  if minor_words > 256.0 then failwith "profile disabled path allocates"

(* Per-site profile stats from one instrumented cycle, reset-bracketed
   like counter_snapshot so nothing bleeds between variants. *)
let profile_snapshot stepper problem =
  let module Profile = Repro_runtime.Profile in
  Profile.reset ();
  Profile.set_enabled true;
  ignore (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
  Profile.set_enabled false;
  let sites = Profile.sites () in
  Profile.reset ();
  sites

(* Append one ledger record for a measured run (durable JSONL — the
   longitudinal trajectory bench/trend.exe reads). *)
let ledger_append ~path ~cfg ~n ~domains ~vname ~seconds ~plan_digest ~sites =
  let module Ledger = Repro_runtime.Ledger in
  let r =
    Ledger.make ~sites ~bench:(Cycle.bench_name cfg) ~n ~domains
      ~variant:vname ~plan_digest ~s_per_cycle:seconds ()
  in
  Ledger.append ~path r;
  Printf.printf "ledger: appended %s -> %s\n" (Ledger.key r) path

(* Time every variant of one benchmark at one size; returns
   (variant, seconds-per-cycle) in order.  Variants are measured
   round-robin — one timed run each per round — so that machine noise
   phases (frequency scaling, co-tenants) hit every variant equally, and
   the per-variant minimum over rounds is reported.  With [json] (the
   default) each variant also gets one instrumented cycle after the
   timed region, and its counter snapshot is emitted as a BENCH record. *)
let run_benchmark ?(domains = 1) ?(cycles = 2) ?(reps = 2) ?(json = true)
    ?variants cfg ~n =
  (* counter hygiene: whatever instrumentation an earlier command left
     on, timed regions run with telemetry off and zeroed state, and each
     variant's snapshot (in counter_snapshot) is reset-bracketed so no
     counts bleed between variants *)
  Telemetry.set_enabled false;
  Telemetry.reset ();
  let variants = Option.value variants ~default:all_variants in
  let problem =
    Problem.poisson_random ~dims:cfg.Cycle.dims ~n ~seed:20170704
  in
  let prepared =
    List.map
      (fun v ->
        let rt = Exec.runtime ~domains () in
        let stepper = v.make cfg ~n ~rt in
        (* warm-up: first run allocates pools and touches memory *)
        ignore (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
        (v, rt, stepper, ref infinity))
      variants
  in
  for _ = 1 to reps do
    List.iter
      (fun (_, _, stepper, best) ->
        let t =
          (Solver.iterate stepper ~problem ~cycles ~residuals:false ())
            .Solver.total_seconds
          /. float_of_int cycles
        in
        if t < !best then best := t)
      prepared
  done;
  List.map
    (fun (v, rt, stepper, best) ->
      if json then
        emit_bench_json ~bench:(Cycle.bench_name cfg) ~n
          ~dims:cfg.Cycle.dims ~domains ~vname:v.vname ~seconds:!best
          ~counters:(counter_snapshot stepper problem);
      Exec.free_runtime rt;
      (v.vname, !best))
    prepared

let speedup_table ~base rows =
  let tbase = List.assoc base rows in
  List.map (fun (name, t) -> (name, t, tbase /. t)) rows

let print_speedups ~title ~base rows =
  Printf.printf "\n%s\n" title;
  Printf.printf "  %-20s %12s %10s\n" "variant" "s/cycle" "speedup";
  List.iter
    (fun (name, t, s) -> Printf.printf "  %-20s %12.4f %9.2fx\n" name t s)
    (speedup_table ~base rows)

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log x) 0.0 xs
         /. float_of_int (List.length xs))
