(* Longitudinal trend reporter over a polymg.ledger/1 JSONL file.

   Usage:
     trend.exe LEDGER [--out report.md] [--threshold 0.25] [--window 5]
     trend.exe --quick [--threshold 0.25]

   Records are grouped by Ledger.key (hostname + bench + n + domains +
   variant — never compare across machines).  Within each series, the
   latest record is gated against a baseline: the median s_per_cycle of
   the up-to-[window] records preceding it.  A latest/baseline ratio
   beyond 1+threshold is a REGRESSION (exit 1); beyond the other side it
   is an improvement.  A running-median level-shift scan also names the
   record where the series last changed level (changepoint), so a
   regression that crept in several runs ago is still attributed to the
   run that introduced it.

   The markdown report (--out; stdout summary always) carries one
   section per series with an ASCII sparkline of the whole history.

   --quick is the synthetic self-test: it builds a flat ledger and a
   copy with an injected 1.6x slowdown in two temp files, and asserts
   the analysis passes the flat one (no regression) and catches the
   injected one.  Exit 0 when the self-test holds, 1 when it does not —
   the gate that proves the gate works.

   Exit status: 0 no regression, 1 regression (or failed self-test),
   2 usage errors / unreadable ledger / no usable records. *)

module Json = Repro_runtime.Json
module Ledger = Repro_runtime.Ledger
module Roofline = Repro_runtime.Roofline

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* ------------------------------------------------------------------ *)
(* Small stats *)

let median xs =
  match List.sort compare xs with
  | [] -> Float.nan
  | sorted ->
    let n = List.length sorted in
    let a = Array.of_list sorted in
    if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let sparkline xs =
  let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                  "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                  "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  match xs with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min infinity xs in
    let hi = List.fold_left Float.max neg_infinity xs in
    let span = hi -. lo in
    String.concat ""
      (List.map
         (fun v ->
           let k =
             if span <= 0.0 then 0
             else Int.min 7 (int_of_float ((v -. lo) /. span *. 8.0))
           in
           glyphs.(k))
         xs)

let iso t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* ------------------------------------------------------------------ *)
(* Series analysis *)

type verdict = Regression | Improved | Ok | Insufficient

let verdict_name = function
  | Regression -> "REGRESSION"
  | Improved -> "improved"
  | Ok -> "ok"
  | Insufficient -> "insufficient history"

type series = {
  skey : string;
  records : Ledger.record list;  (* chronological *)
  latest : float;
  baseline : float;  (* median of the preceding window; nan if none *)
  ratio : float;
  sverdict : verdict;
  changepoint : (int * float) option;  (* index, level-shift ratio *)
}

(* running-median level shift: compare the median of the [w] records
   before each index with the median of the [w] records from it on, and
   keep the last index whose shift exceeds the threshold *)
let find_changepoint ~window ~threshold times =
  let n = Array.length times in
  let w = Int.max 2 (Int.min window (n / 2)) in
  let best = ref None in
  for i = w to n - w do
    let before = Array.to_list (Array.sub times (i - w) w) in
    let after = Array.to_list (Array.sub times i w) in
    let mb = median before and ma = median after in
    if mb > 0.0 then begin
      let shift = ma /. mb in
      if Float.abs (Float.log shift) > Float.log (1.0 +. threshold) then
        best := Some (i, shift)
    end
  done;
  !best

let analyze ~window ~threshold (skey, records) =
  let records =
    List.sort
      (fun (a : Ledger.record) b -> compare a.Ledger.timestamp b.Ledger.timestamp)
      records
  in
  let times = List.map (fun (r : Ledger.record) -> r.Ledger.s_per_cycle) records in
  let latest = List.nth times (List.length times - 1) in
  let prior = List.filteri (fun i _ -> i < List.length times - 1) times in
  let base_window =
    let np = List.length prior in
    List.filteri (fun i _ -> i >= np - window) prior
  in
  let baseline = median base_window in
  let ratio = if baseline > 0.0 then latest /. baseline else Float.nan in
  let sverdict =
    if base_window = [] || not (Float.is_finite ratio) then Insufficient
    else if ratio > 1.0 +. threshold then Regression
    else if ratio < 1.0 -. threshold then Improved
    else Ok
  in
  { skey;
    records;
    latest;
    baseline;
    ratio;
    sverdict;
    changepoint =
      find_changepoint ~window ~threshold (Array.of_list times) }

let group_by_key records =
  let tbl : (string, Ledger.record list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let k = Ledger.key r in
      Hashtbl.replace tbl k
        (r :: Option.value (Hashtbl.find_opt tbl k) ~default:[]))
    records;
  Hashtbl.fold (fun k rs acc -> (k, rs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Report rendering *)

let render_series b (s : series) =
  Buffer.add_string b (Printf.sprintf "## %s\n\n" s.skey);
  let times =
    List.map (fun (r : Ledger.record) -> r.Ledger.s_per_cycle) s.records
  in
  Buffer.add_string b
    (Printf.sprintf "- records: %d; trend `%s`\n" (List.length s.records)
       (sparkline times));
  Buffer.add_string b
    (Printf.sprintf "- latest: %.4g ms/cycle (%s)\n" (s.latest *. 1e3)
       (iso
          (List.nth s.records (List.length s.records - 1)).Ledger.timestamp));
  if Float.is_finite s.baseline then
    Buffer.add_string b
      (Printf.sprintf "- baseline (median of preceding window): %.4g ms/cycle\n"
         (s.baseline *. 1e3));
  Buffer.add_string b
    (Printf.sprintf "- verdict: ratio %s -> **%s**\n"
       (if Float.is_finite s.ratio then Printf.sprintf "%.3f" s.ratio
        else "n/a")
       (verdict_name s.sverdict));
  (match s.changepoint with
   | Some (i, shift) ->
     let r = List.nth s.records i in
     Buffer.add_string b
       (Printf.sprintf
          "- changepoint: level shift %+.0f%% at record %d (%s, plan %s)\n"
          (100.0 *. (shift -. 1.0))
          i
          (iso r.Ledger.timestamp)
          (if r.Ledger.plan_digest = "" then "?" else r.Ledger.plan_digest))
   | None -> ());
  Buffer.add_string b "\n| # | timestamp | ms/cycle | plan digest |\n";
  Buffer.add_string b "|---|---|---|---|\n";
  let nrec = List.length s.records in
  List.iteri
    (fun i (r : Ledger.record) ->
      (* keep long histories readable: first + last 10 rows *)
      if i = 0 || i >= nrec - 10 then
        Buffer.add_string b
          (Printf.sprintf "| %d | %s | %.4g | %s |\n" i
             (iso r.Ledger.timestamp)
             (r.Ledger.s_per_cycle *. 1e3)
             r.Ledger.plan_digest)
      else if i = 1 && nrec > 11 then Buffer.add_string b "| … | | | |\n")
    s.records;
  Buffer.add_string b "\n"

let render ~path ~skipped ~threshold ~window series_list =
  let b = Buffer.create 4096 in
  Buffer.add_string b "# Performance trend report\n\n";
  Buffer.add_string b
    (Printf.sprintf
       "ledger: `%s` — %d record(s) in %d series, %d skipped line(s); \
        threshold %.0f%%, baseline window %d\n\n"
       path
       (List.fold_left (fun acc s -> acc + List.length s.records) 0 series_list)
       (List.length series_list)
       skipped (100.0 *. threshold) window);
  List.iter (render_series b) series_list;
  let regressions =
    List.filter (fun s -> s.sverdict = Regression) series_list
  in
  Buffer.add_string b
    (if regressions = [] then "No series regressed.\n"
     else
       Printf.sprintf "**%d series REGRESSED**: %s\n"
         (List.length regressions)
         (String.concat ", " (List.map (fun s -> s.skey) regressions)));
  Buffer.contents b

let run_analysis ~path ~threshold ~window ~out =
  let records, skipped = Ledger.load path in
  if records = [] then
    fail "trend: %s: no usable ledger records (%d line(s) skipped)" path
      skipped;
  let series_list =
    List.map (analyze ~window ~threshold) (group_by_key records)
  in
  let report = render ~path ~skipped ~threshold ~window series_list in
  (match out with
   | Some p -> Repro_runtime.Snapshot.atomic_write_string ~path:p report
   | None -> ());
  print_string report;
  List.exists (fun s -> s.sverdict = Regression) series_list

(* ------------------------------------------------------------------ *)
(* --quick: synthetic self-test *)

let synthetic_record ~t ~s_per_cycle =
  Ledger.make ~timestamp:t
    ~roofline:{ Roofline.bandwidth_gbs = 10.0; gflops = 10.0 }
    ~sites:[] ~bench:"synthetic" ~n:64 ~domains:1 ~variant:"opt+"
    ~plan_digest:"selftest" ~s_per_cycle ()

let self_test ~threshold =
  let dir = Filename.temp_file "trend_selftest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let flat = Filename.concat dir "flat.jsonl" in
  let injected = Filename.concat dir "injected.jsonl" in
  let t0 = Unix.gettimeofday () -. 3600.0 in
  (* flat series with ±2% jitter, deterministic *)
  let jitter i = 1.0 +. (0.02 *. Float.sin (float_of_int i *. 1.7)) in
  for i = 0 to 7 do
    let r =
      synthetic_record ~t:(t0 +. (60.0 *. float_of_int i))
        ~s_per_cycle:(1e-3 *. jitter i)
    in
    Ledger.append ~path:flat r;
    Ledger.append ~path:injected
      (if i = 7 then { r with Ledger.s_per_cycle = 1e-3 *. 1.6 } else r)
  done;
  print_endline "trend --quick: flat ledger (expect no regression)";
  let flat_regressed =
    run_analysis ~path:flat ~threshold ~window:5 ~out:None
  in
  print_endline "trend --quick: injected 1.6x slowdown (expect REGRESSION)";
  let injected_regressed =
    run_analysis ~path:injected ~threshold ~window:5 ~out:None
  in
  Sys.remove flat;
  Sys.remove injected;
  Unix.rmdir dir;
  let ok = (not flat_regressed) && injected_regressed in
  Printf.printf
    "trend --quick: flat %s, injected %s -> self-test %s\n"
    (if flat_regressed then "REGRESSED (wrong)" else "passed")
    (if injected_regressed then "caught" else "MISSED (wrong)")
    (if ok then "passed" else "FAILED");
  ok

(* ------------------------------------------------------------------ *)

let () =
  let threshold = ref 0.25 in
  let window = ref 5 in
  let out = ref None in
  let quick = ref false in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t > 0.0 -> threshold := t
       | Some _ | None -> fail "trend: bad --threshold %s" v);
      go rest
    | "--window" :: v :: rest ->
      (match int_of_string_opt v with
       | Some w when w >= 1 -> window := w
       | Some _ | None -> fail "trend: bad --window %s" v);
      go rest
    | "--out" :: v :: rest ->
      out := Some v;
      go rest
    | "--quick" :: rest ->
      quick := true;
      go rest
    | f :: rest when String.length f = 0 || f.[0] <> '-' ->
      files := f :: !files;
      go rest
    | f :: _ -> fail "trend: unknown option %s" f
  in
  go (List.tl (Array.to_list Sys.argv));
  if !quick then exit (if self_test ~threshold:!threshold then 0 else 1)
  else
    match List.rev !files with
    | [ path ] ->
      if not (Sys.file_exists path) then fail "trend: %s: no such ledger" path;
      let regressed =
        run_analysis ~path ~threshold:!threshold ~window:!window ~out:!out
      in
      exit (if regressed then 1 else 0)
    | _ ->
      fail
        "usage: trend.exe LEDGER [--out report.md] [--threshold 0.25] \
         [--window 5] | trend.exe --quick"
