(* Counter-name audit: every observability counter the library can
   increment must be documented, or the counter tables silently rot.

   Usage:
     audit_counters.exe LIBDIR DOC [DOC ...]

   Scans every .ml under LIBDIR for [Telemetry.counter "NAME"]
   registrations, keeps the audited families (the guard, govern,
   flightrec, snapshot, profile, ledger, serve and native prefixes), and
   requires each
   name to appear verbatim in at
   least one DOC (the README/TESTING counter tables).  Exits 1 listing any
   undocumented counter — and any documented counter of those families
   that no longer exists in the code, so stale rows fail too. *)

let audited name =
  List.exists
    (fun p -> String.starts_with ~prefix:p name)
    [ "guard."; "govern."; "flightrec."; "snapshot."; "profile."; "ledger.";
      "serve."; "native." ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* every string literal immediately following "Telemetry.counter" *)
let counters_in src =
  let key = "Telemetry.counter" in
  let klen = String.length key and n = String.length src in
  let names = ref [] in
  let i = ref 0 in
  (try
     while true do
       let at = Str.search_forward (Str.regexp_string key) src !i in
       i := at + klen;
       (* skip whitespace to the opening quote *)
       let j = ref !i in
       while !j < n && (src.[!j] = ' ' || src.[!j] = '\n') do incr j done;
       if !j < n && src.[!j] = '"' then begin
         let close = String.index_from src (!j + 1) '"' in
         names := String.sub src (!j + 1) (close - !j - 1) :: !names
       end
     done
   with Not_found -> ());
  !names

let rec ml_files path =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.concat_map (fun e -> ml_files (Filename.concat path e))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  match List.tl (Array.to_list Sys.argv) with
  | libdir :: (_ :: _ as docs) ->
    let declared =
      ml_files libdir
      |> List.concat_map (fun f -> counters_in (read_file f))
      |> List.filter audited
      |> List.sort_uniq compare
    in
    if declared = [] then begin
      Printf.printf "audit_counters: no audited counter found under %s\n"
        libdir;
      exit 1
    end;
    let doc_text = String.concat "\n" (List.map read_file docs) in
    let contains s =
      try
        ignore (Str.search_forward (Str.regexp_string s) doc_text 0);
        true
      with Not_found -> false
    in
    let undocumented = List.filter (fun c -> not (contains c)) declared in
    (* stale direction: documented rows (backquoted names in a table
       column) that no code declares anymore *)
    let stale =
      let re =
        Str.regexp
          "`\\(\\(guard\\|govern\\|flightrec\\|snapshot\\|profile\\|ledger\\|serve\\|native\\)\\.[a-z_.]+\\)`"
      in
      let rec collect i acc =
        match Str.search_forward re doc_text i with
        | exception Not_found -> acc
        | at -> collect (at + 1) (Str.matched_group 1 doc_text :: acc)
      in
      collect 0 []
      |> List.sort_uniq compare
      |> List.filter (fun c -> not (List.mem c declared))
    in
    List.iter
      (fun c -> Printf.printf "audit_counters: undocumented counter %s\n" c)
      undocumented;
    List.iter
      (fun c ->
        Printf.printf "audit_counters: stale documented counter %s\n" c)
      stale;
    Printf.printf
      "audit_counters: %d audited counter(s), %d undocumented, %d stale\n"
      (List.length declared)
      (List.length undocumented)
      (List.length stale);
    exit (if undocumented <> [] || stale <> [] then 1 else 0)
  | _ ->
    prerr_endline "usage: audit_counters.exe LIBDIR DOC [DOC ...]";
    exit 2
