(* Benchmark harness regenerating every table and figure of the paper
   (see DESIGN.md for the experiment index, EXPERIMENTS.md for results).

   Usage:
     bench/main.exe                    full paper run at class B (default)
     bench/main.exe all --class C      full paper run at class C
     bench/main.exe table3|fig9|fig10|fig11a|fig11b|fig12|nas|scaling
     bench/main.exe quick              fast smoke pass (small sizes)
     bench/main.exe bechamel           Bechamel micro-suite (one Test.make
                                       per table/figure kernel) *)

open Repro_mg
open Repro_core

let usage () =
  print_endline
    "usage: main.exe \
     [all|table3|fig9|fig10|fig11a|fig11b|fig12|nas|scaling|ablation|quick|native|bechamel|telemetry|flightrec|profile] \
     [--class B|C] [--cycles N] [--reps N] [--ledger PATH]";
  exit 1

type args = {
  cmd : string;
  cls : Problem.cls;
  nas_cls : Repro_nas.Nas_coeffs.cls;
  cycles : int;
  reps : int;
  ledger : string option;
}

let parse_args () =
  let cmd = ref "all" in
  let cls = ref Problem.B in
  let nas_cls = ref Repro_nas.Nas_coeffs.B in
  let cycles = ref 2 in
  let reps = ref 2 in
  let ledger = ref None in
  let rec go = function
    | [] -> ()
    | "--class" :: v :: rest ->
      (match Problem.cls_of_string v with
       | Some c -> cls := c
       | None -> usage ());
      (match Repro_nas.Nas_coeffs.cls_of_string v with
       | Some c -> nas_cls := c
       | None -> ());
      go rest
    | "--cycles" :: v :: rest ->
      (match int_of_string_opt v with
       | Some c when c > 0 -> cycles := c
       | Some _ | None -> usage ());
      go rest
    | "--reps" :: v :: rest ->
      (match int_of_string_opt v with
       | Some c when c > 0 -> reps := c
       | Some _ | None -> usage ());
      go rest
    | "--ledger" :: v :: rest ->
      ledger := Some v;
      go rest
    | c :: rest when not (String.length c > 1 && c.[0] = '-') ->
      cmd := c;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  { cmd = !cmd;
    cls = !cls;
    nas_cls = !nas_cls;
    cycles = !cycles;
    reps = !reps;
    ledger = !ledger }

(* ---- Bechamel micro-suite: one Test.make per table/figure kernel ---- *)

let bechamel_suite () =
  let open Bechamel in
  let mk_cycle name cfg n opts =
    Test.make ~name
      (Staged.stage (fun () ->
           let r = Solver.solve cfg ~n ~opts ~cycles:1 ~residuals:false () in
           ignore r.Solver.total_seconds))
  in
  let v2 = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let w2 = Cycle.default ~dims:2 ~shape:Cycle.W ~smoothing:(10, 0, 0) in
  let v3 = Cycle.default ~dims:3 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let tests =
    Test.make_grouped ~name:"polymg"
      [ mk_cycle "table3:V-2D-444:naive" v2 64 Options.naive;
        mk_cycle "fig9:V-2D-444:opt+" v2 64 Options.opt_plus;
        mk_cycle "fig9:W-2D-1000:opt+" w2 64 Options.opt_plus;
        mk_cycle "fig10:V-3D-444:opt+" v3 32 Options.opt_plus;
        mk_cycle "fig11a:smoother-dtile" w2 64 Options.dtile_opt_plus;
        mk_cycle "fig11b:intra+pool" v2 64
          { Options.opt with Options.scratch_reuse = true; Options.pool = true } ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n=== Bechamel micro-suite (ns per cycle, small grids) ===\n";
  Hashtbl.iter
    (fun name o ->
      match Bechamel.Analyze.OLS.estimates o with
      | Some [ est ] -> Printf.printf "  %-32s %14.0f ns\n" name est
      | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results

let main () =
  let a = parse_args () in
  let header () =
    Printf.printf
      "PolyMG paper harness — class %s, %d cycle(s) per measurement, min of %d\n"
      (Problem.cls_name a.cls) a.cycles a.reps
  in
  match a.cmd with
  | "bechamel" -> bechamel_suite ()
  | "table3" -> header (); Tables.table3 ~cycles:a.cycles ~reps:a.reps ()
  | "fig9" ->
    header ();
    Tables.fig ~dims:2 ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ()
  | "fig10" ->
    header ();
    Tables.fig ~dims:3 ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ();
    Tables.nas ~cls:a.nas_cls ~iters:3 ~reps:a.reps ()
  | "fig11a" -> header (); Figures.fig11a ~cls:a.cls ~reps:a.reps ()
  | "fig11b" ->
    header ();
    Figures.fig11b ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ()
  | "fig12" -> header (); Figures.fig12 ~cls:a.cls ~cycles:1 ()
  | "nas" -> header (); Tables.nas ~cls:a.nas_cls ~iters:3 ~reps:a.reps ()
  | "scaling" ->
    header ();
    Figures.scaling ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ()
  | "ablation" ->
    header ();
    Figures.ablation ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ()
  | "quick" ->
    Printf.printf "PolyMG quick smoke run (tiny sizes)\n";
    Harness.assert_telemetry_noop ();
    let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
    let rows = Harness.run_benchmark ~cycles:2 ~reps:1 cfg ~n:128 in
    Harness.print_speedups ~title:"V-2D-4-4-4 N=128" ~base:"polymg-naive" rows
  | "native" ->
    (* backend comparison on the issue's reference config: DSL variants
       through the compiled-kernel backend next to the interpreter and
       the hand-optimized baseline, all on the same problem and rep
       protocol, so the speedup table answers "does the native backend
       close the engine gap?" directly.  Skips visibly (exit 0, loud
       message) when no C compiler is on PATH — CI treats the skip as
       environmental, not as a pass. *)
    (match Repro_core.Native.cc () with
     | None ->
       Printf.printf
         "native: SKIPPED (no C compiler found; tried gcc, cc)\n"
     | Some compiler ->
       Printf.printf
         "PolyMG native backend bench — %s, %d cycle(s) per measurement, \
          min of %d\n"
         compiler a.cycles a.reps;
       let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
       let rows =
         Harness.run_benchmark ~cycles:a.cycles ~reps:a.reps
           ~variants:Harness.native_variants cfg ~n:128
       in
       Harness.print_speedups ~title:"V-2D-4-4-4 N=128 (backend axis)"
         ~base:"polymg-naive/native" rows)
  | "telemetry" ->
    (* instrumentation-off cost check: the no-op budget plus a paired
       timing of the same stepper with telemetry off vs on *)
    Harness.assert_telemetry_noop ();
    let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
    let n = 256 in
    let problem = Problem.poisson_random ~dims:2 ~n ~seed:7 in
    let rt = Exec.runtime () in
    let stepper = Solver.polymg_stepper cfg ~n ~opts:Options.opt_plus ~rt in
    let t_off = Harness.time_stepper ~reps:a.reps ~cycles:a.cycles stepper problem in
    Repro_runtime.Telemetry.set_enabled true;
    let t_on = Harness.time_stepper ~reps:a.reps ~cycles:a.cycles stepper problem in
    Repro_runtime.Telemetry.set_enabled false;
    Repro_runtime.Telemetry.reset ();
    Exec.free_runtime rt;
    Printf.printf
      "V-2D-4-4-4 N=%d opt+: %.4f s/cycle telemetry off, %.4f s/cycle on \
       (overhead %+.1f%%)\n"
      n t_off t_on
      (100.0 *. ((t_on /. t_off) -. 1.0))
  | "flightrec" ->
    (* recorder-cost gate: the disabled path must be a no-op (and
       allocation-free), and a recorder-on solve of the reference config
       must stay within noise of recorder-off.  Writes one-record
       polymg.bench/1 files for both so CI can hold the <2% line with
       `compare.exe flightrec_off.json flightrec_on.json --threshold
       0.02`. *)
    Harness.assert_flightrec_noop ();
    let module Flightrec = Repro_runtime.Flightrec in
    let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
    let n = 128 in
    let problem = Problem.poisson_random ~dims:2 ~n ~seed:7 in
    let rt = Exec.runtime () in
    let stepper = Solver.polymg_stepper cfg ~n ~opts:Options.opt_plus ~rt in
    let reps = max a.reps 3 in
    Flightrec.set_enabled false;
    (* throwaway pass: page in pool buffers so the off-timing is not
       charged the cold start the on-timing then skips *)
    ignore (Harness.time_stepper ~reps:1 ~cycles:a.cycles stepper problem);
    let t_off = Harness.time_stepper ~reps ~cycles:a.cycles stepper problem in
    Flightrec.set_enabled true;
    let t_on = Harness.time_stepper ~reps ~cycles:a.cycles stepper problem in
    Flightrec.set_enabled false;
    Flightrec.reset ();
    Exec.free_runtime rt;
    Printf.printf
      "V-2D-4-4-4 N=%d opt+: %.4f s/cycle recorder off, %.4f s/cycle on \
       (overhead %+.1f%%)\n"
      n t_off t_on
      (100.0 *. ((t_on /. t_off) -. 1.0));
    let write path seconds =
      let doc =
        Repro_runtime.Json.Obj
          [ ("schema", Repro_runtime.Json.Str "polymg.bench/1");
            ( "records",
              Repro_runtime.Json.Arr
                [ Harness.record_json ~bench:(Cycle.bench_name cfg) ~n
                    ~dims:2 ~domains:1 ~vname:"opt+" ~seconds ~counters:[]
                ] ) ]
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Repro_runtime.Json.to_channel oc doc;
          output_char oc '\n');
      Printf.printf "wrote %s\n" path
    in
    write "flightrec_off.json" t_off;
    write "flightrec_on.json" t_on
  | "profile" ->
    (* profiler-cost gate, same shape as the flightrec leg: the
       disabled start/stop path must be a no-op (and allocation-free),
       and a profiler-on solve of the reference config must stay within
       noise of profiler-off.  Writes one-record polymg.bench/1 files
       for the CI `compare.exe profile_off.json profile_on.json
       --threshold 0.02` gate, prints the per-site profile table from
       the instrumented run, and with --ledger appends the profiled
       record to the longitudinal ledger for trend.exe. *)
    Harness.assert_profile_noop ();
    let module Profile = Repro_runtime.Profile in
    let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
    let n = 128 in
    let problem = Problem.poisson_random ~dims:2 ~n ~seed:7 in
    let rt = Exec.runtime () in
    let plan = Solver.polymg_plan cfg ~n ~opts:Options.opt_plus in
    let stepper = Solver.plan_stepper plan ~rt in
    let reps = max a.reps 3 in
    Profile.set_enabled false;
    Profile.reset ();
    (* throwaway pass: page in pool buffers so the off-timing is not
       charged the cold start the on-timing then skips *)
    ignore (Harness.time_stepper ~reps:1 ~cycles:a.cycles stepper problem);
    let t_off = Harness.time_stepper ~reps ~cycles:a.cycles stepper problem in
    Profile.set_enabled true;
    let t_on = Harness.time_stepper ~reps ~cycles:a.cycles stepper problem in
    Profile.set_enabled false;
    Printf.printf
      "V-2D-4-4-4 N=%d opt+: %.4f s/cycle profiler off, %.4f s/cycle on \
       (overhead %+.1f%%)\n"
      n t_off t_on
      (100.0 *. ((t_on /. t_off) -. 1.0));
    Profile.report Format.std_formatter;
    Format.pp_print_newline Format.std_formatter ();
    let sites = Profile.sites () in
    Profile.reset ();
    Exec.free_runtime rt;
    let write path seconds =
      let doc =
        Repro_runtime.Json.Obj
          [ ("schema", Repro_runtime.Json.Str "polymg.bench/1");
            ( "records",
              Repro_runtime.Json.Arr
                [ Harness.record_json ~bench:(Cycle.bench_name cfg) ~n
                    ~dims:2 ~domains:1 ~vname:"opt+" ~seconds ~counters:[]
                ] ) ]
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Repro_runtime.Json.to_channel oc doc;
          output_char oc '\n');
      Printf.printf "wrote %s\n" path
    in
    write "profile_off.json" t_off;
    write "profile_on.json" t_on;
    (match a.ledger with
     | Some path ->
       Harness.ledger_append ~path ~cfg ~n ~domains:1 ~vname:"opt+"
         ~seconds:t_on ~plan_digest:(Plan.digest plan) ~sites
     | None -> ())
  | "all" ->
    header ();
    Tables.table3 ~cycles:a.cycles ~reps:1 ();
    Tables.fig ~dims:2 ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ();
    Tables.fig ~dims:3 ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ();
    Tables.nas ~cls:a.nas_cls ~iters:3 ~reps:a.reps ();
    Figures.fig11a ~cls:a.cls ~reps:a.reps ();
    Figures.fig11b ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ();
    Figures.fig12 ~cls:Problem.B ~cycles:1 ();
    Figures.scaling ~cls:a.cls ~cycles:a.cycles ~reps:1 ();
    Figures.ablation ~cls:a.cls ~cycles:a.cycles ~reps:a.reps ()
  | _ -> usage ()

let () =
  Harness.init_gc ();
  main ();
  (* any command that emitted BENCH records also leaves the artifact the
     comparator (and CI's regression gate) consumes *)
  Harness.write_results ()
