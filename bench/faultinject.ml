(* Fault-injection campaign: the executable proof that guarded execution
   detects and recovers every fault class.  Each campaign runs a guarded
   2D Poisson solve with the optimized (opt+) plan as primary and the
   naive plan as fallback, injecting one class of fault into the primary:

     nan-out      a NaN written into the iterate after a cycle
     bitflip      one flipped exponent bit in an iterate value
     crash        an exception raised mid-cycle, before any output
     stage-nan    a NaN written into an intermediate buffer *between*
                  stages of the optimized plan (Exec fault-injector hook)
     stage-kill   an exception raised between stages, mid-plan

   A campaign passes when the guard (a) detects the expected fault class,
   (b) rolls back, and (c) still converges to tolerance through the
   fallback.  Exits nonzero if any campaign fails.

   With --incident-dir DIR the flight recorder runs during every
   campaign and each campaign additionally asserts its incident trail:
   at least one incident report of the expected kind was written under
   DIR/<campaign>/, every report parses, carries the polymg.incident/1
   schema, names the triggering fault and cycle, the primary plan's
   digest, and a non-empty event tail.

   Run directly or via `dune runtest` (wired in test/dune). *)

open Repro_mg
open Repro_core
module Grid = Repro_grid.Grid
module Buf = Repro_grid.Buf
module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Json = Repro_runtime.Json

let tol = 1e-8

(* -- injection wrappers -------------------------------------------------- *)

let every k inject stepper =
  let attempts = ref 0 in
  fun ~v ~f ~out ->
    incr attempts;
    Fun.protect
      ~finally:(fun () -> Exec.set_fault_injector None)
      (fun () -> inject ~fire:(!attempts mod k = 0) stepper ~v ~f ~out)

let nan_out ~fire stepper ~v ~f ~out =
  stepper ~v ~f ~out;
  if fire then Buf.set out.Grid.buf (Buf.len out.Grid.buf / 2) Float.nan

let bitflip ~fire stepper ~v ~f ~out =
  stepper ~v ~f ~out;
  if fire then begin
    (* flip the top exponent bit of the first non-negligible value: a
       single-event upset that turns it into a huge number, Inf or NaN *)
    let buf = out.Grid.buf in
    let rec find i =
      if i >= Buf.len buf then None
      else if Float.abs (Buf.get buf i) > 1e-12 then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> Buf.set buf 0 Float.nan
    | Some i ->
      let flipped =
        Int64.float_of_bits
          (Int64.logxor
             (Int64.bits_of_float (Buf.get buf i))
             (Int64.shift_left 1L 62))
      in
      Buf.set buf i flipped
  end

let crash ~fire stepper ~v ~f ~out =
  if fire then failwith "faultinject: killed mid-cycle";
  stepper ~v ~f ~out

let stage_nan ~fire stepper ~v ~f ~out =
  if fire then
    Exec.set_fault_injector
      (Some
         (fun ~gid ~stage:_ (dst : Compile.source) ->
           if gid = 1 then
             let d = dst.Compile.data in
             Bigarray.Array1.set d (Bigarray.Array1.dim d / 2) Float.nan));
  stepper ~v ~f ~out

let stage_kill ~fire stepper ~v ~f ~out =
  if fire then
    Exec.set_fault_injector
      (Some
         (fun ~gid ~stage ->
           if gid = 2 then
             failwith ("faultinject: killed mid-plan at stage " ^ stage)
           else fun _ -> ()));
  stepper ~v ~f ~out

let is_nan = function Guard.Fault_nan -> true | _ -> false
let is_numeric = function
  | Guard.Fault_nan | Guard.Fault_diverged -> true
  | Guard.Fault_crash _ -> false
let is_crash = function Guard.Fault_crash _ -> true | _ -> false

(* expected incident-report kinds per campaign: bitflips surface as NaN
   or divergence depending on where the flipped bit lands *)
let campaigns =
  [ ("nan-out", every 3 nan_out, is_nan, [ "nan" ]);
    ("bitflip", every 3 bitflip, is_numeric, [ "nan"; "divergence" ]);
    ("crash", every 3 crash, is_crash, [ "crash" ]);
    ("stage-nan", every 4 stage_nan, is_nan, [ "nan" ]);
    ("stage-kill", every 4 stage_kill, is_crash, [ "crash" ]) ]

(* -- incident-trail assertions ------------------------------------------- *)

let mem k d = Option.value (Json.member k d) ~default:Json.Null

(* Every report under [dir] must parse, carry the incident schema, and
   name the triggering fault, the cycle it hit, the plan digest and a
   non-empty event tail; at least one must be of an expected [kind].
   Returns the list of violations (empty = pass). *)
let check_incident_trail ~dir ~kinds =
  match Sys.readdir dir with
  | exception Sys_error m -> [ Printf.sprintf "cannot read %s: %s" dir m ]
  | entries ->
    let reports =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    in
    if reports = [] then [ Printf.sprintf "no incident report in %s" dir ]
    else
      let problems = ref [] in
      let seen_kinds = ref [] in
      List.iter
        (fun file ->
          let path = Filename.concat dir file in
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Json.parse s with
          | Error m ->
            problems := Printf.sprintf "%s: parse error: %s" file m :: !problems
          | Ok doc ->
            let bad fmt =
              Printf.ksprintf
                (fun m -> problems := Printf.sprintf "%s: %s" file m :: !problems)
                fmt
            in
            (match Json.to_str (mem "schema" doc) with
             | Some "polymg.incident/1" -> ()
             | _ -> bad "missing/wrong schema");
            (match Json.to_str (mem "kind" doc) with
             | Some k -> seen_kinds := k :: !seen_kinds
             | None -> bad "missing kind");
            (match Json.to_int (mem "cycle" doc) with
             | Some c when c >= 1 -> ()
             | _ -> bad "missing triggering cycle");
            (match Json.to_str (mem "digest" (mem "plan" doc)) with
             | Some d when d <> "" -> ()
             | _ -> bad "missing plan digest");
            (match Json.to_str (mem "fault" (mem "detail" doc)) with
             | Some _ -> ()
             | None -> bad "detail does not name the triggering fault");
            if Json.to_list (mem "events" doc) = [] then
              bad "empty event tail")
        reports;
      if not (List.exists (fun k -> List.mem k !seen_kinds) kinds) then
        problems :=
          Printf.sprintf "no incident of expected kind [%s] in %s (saw: %s)"
            (String.concat "|" kinds) dir
            (String.concat " " (List.sort_uniq compare !seen_kinds))
          :: !problems;
      List.rev !problems

let () =
  let incident_root = ref None in
  let rec parse = function
    | [] -> ()
    | "--incident-dir" :: dir :: rest ->
      incident_root := Some dir;
      parse rest
    | a :: _ ->
      Printf.eprintf "faultinject: unknown argument %s (try --incident-dir DIR)\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg = Cycle.default ~dims:2 ~shape:Cycle.V ~smoothing:(4, 4, 4) in
  let n = 64 in
  let problem = Problem.poisson ~dims:2 ~n in
  let failures = ref 0 in
  Printf.printf "fault-injection campaign: %s N=%d primary=opt+ fallback=naive tol=%g\n"
    (Cycle.bench_name cfg) n tol;
  Exec.with_runtime (fun rt ->
      let fallback () = Solver.polymg_stepper cfg ~n ~opts:Options.naive ~rt in
      List.iter
        (fun (name, wrap, expected, kinds) ->
          let incident_dir =
            Option.map (fun root -> Filename.concat root name) !incident_root
          in
          Telemetry.reset ();
          Telemetry.set_enabled true;
          if incident_dir <> None then begin
            (* reset first: the stepper below notes the plan digest the
               incident reports must carry *)
            Flightrec.reset ();
            Flightrec.set_enabled true;
            Flightrec.set_incident_dir incident_dir
          end;
          let primary =
            wrap
              (Solver.polymg_stepper cfg ~n
                 ~opts:{ Options.opt_plus with Options.check_plan = true }
                 ~rt)
          in
          let r =
            Guard.run
              ~policy:
                { Guard.default_policy with
                  Guard.tol = Some tol;
                  Guard.max_cycles = 60 }
              ~primary ~fallback ~problem ()
          in
          Flightrec.set_enabled false;
          Telemetry.set_enabled false;
          let detected =
            List.exists (fun e -> expected e.Guard.fault) r.Guard.events
          in
          let recovered =
            r.Guard.outcome = Guard.Converged
            && r.Guard.residual <= tol
            && Buf.find_nonfinite r.Guard.v.Grid.buf = None
          in
          let rollbacks =
            Telemetry.value (Telemetry.counter "guard.rollbacks")
          in
          let incident_problems =
            match incident_dir with
            | None -> []
            | Some dir -> check_incident_trail ~dir ~kinds
          in
          let pass = detected && recovered && incident_problems = [] in
          Printf.printf
            "  %-10s %s  detected=%b recovered=%b outcome=%s faults=%d \
             rollbacks=%d fallback-cycles=%d residual=%.3e%s\n"
            name
            (if pass then "PASS" else "FAIL")
            detected recovered
            (Guard.outcome_name r.Guard.outcome)
            (List.length r.Guard.events)
            rollbacks r.Guard.fallback_cycles r.Guard.residual
            (match incident_dir with
             | None -> ""
             | Some _ -> Printf.sprintf " incidents=%s"
                           (if incident_problems = [] then "ok" else "BAD"));
          List.iter
            (fun m -> Printf.printf "      incident-trail: %s\n" m)
            incident_problems;
          if not pass then incr failures)
        campaigns);
  if !failures > 0 then begin
    Printf.printf "fault-injection campaign: %d FAILURE(S)\n" !failures;
    exit 1
  end;
  Printf.printf "fault-injection campaign: all %d classes detected and recovered\n"
    (List.length campaigns)
