(* Traffic campaign: the executable proof that multigrid-as-a-service
   stays up, fair, and leak-free under concurrent, adversarial load.
   The service analogue of pressure.ml (resource exhaustion) and
   faultinject.ml (fault recovery).

   Phase 1 — per-class probes: one request per response class (ok,
   quarantined via injected NaN and crash, deadline, budget-infeasible,
   unresumable, invalid, shed-by-eviction), each asserting its typed
   status and exit-code mapping — and, for the faulted classes, that a
   schema-valid incident report was filed AND the very next request on
   the same server still succeeds (request isolation).

   Phase 2 — load: a heavy-tail mix of shapes across three tenants.
   Alice and bob are well-behaved (bounded submission window); mallory
   floods far past its token rate and small queue cap, and every few
   requests sends a poisoned one (NaN fault, hopeless deadline,
   infeasible budget, bad resume dir, unknown variant).  Asserts:
     - every response arrives (no lost tickets), throughput > 0,
     - alice and bob are never shed and answer only "ok",
     - mallory is shed heavily (rate + queue) — the abuser degrades
       itself first — and every poisoned class shows up in its typed
       response statuses,
     - alice/bob p99 latency (read back from the serve_latency_ns
       Metrics histograms) stays within a generous budget, i.e. the
       abuser cannot starve the well-behaved tenants,
     - the shared plan cache reports hits (serve.plan_cache_hits > 0),
     - after drain + shutdown the memory pools are quiescent:
       Mempool.assert_quiescent sees zero outstanding buffers across
       every request including the faulted ones.

   Writes a polymg.traffic/1 JSON report with --out and the OpenMetrics
   dump with --metrics; --quick trims the request counts for CI smoke.
   Incident reports land under --incident-dir for incident_check.exe. *)

open Repro_mg
module Telemetry = Repro_runtime.Telemetry
module Metrics = Repro_runtime.Metrics
module Flightrec = Repro_runtime.Flightrec
module Mempool = Repro_runtime.Mempool
module Json = Repro_runtime.Json

let failures = ref 0
let cases : Json.t list ref = ref []

let record ~name ~pass ~(detail : (string * Json.t) list) =
  if not pass then incr failures;
  Printf.printf "  %-36s %s\n%!" name (if pass then "PASS" else "FAIL");
  cases :=
    Json.Obj (("name", Json.Str name) :: ("pass", Json.Bool pass) :: detail)
    :: !cases

let jmem k d = Option.value (Json.member k d) ~default:Json.Null

(* At least one parseable polymg.incident/1 report of [kind] in [dir]
   (shared by the whole campaign), with plan digest and event tail. *)
let check_incident ~dir ~kind =
  match Sys.readdir dir with
  | exception Sys_error m -> [ Printf.sprintf "cannot read %s: %s" dir m ]
  | entries ->
    let problems = ref [] and matched = ref false in
    Array.iter
      (fun file ->
        if Filename.check_suffix file ".json" then begin
          let path = Filename.concat dir file in
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Json.parse s with
          | Error m ->
            problems := Printf.sprintf "%s: parse error: %s" file m :: !problems
          | Ok doc ->
            if Json.to_str (jmem "schema" doc) <> Some "polymg.incident/1"
            then problems := Printf.sprintf "%s: bad schema" file :: !problems
            else if
              Json.to_str (jmem "kind" doc) = Some kind
              && Json.to_str (jmem "digest" (jmem "plan" doc)) <> Some ""
              && Json.to_list (jmem "events" doc) <> []
            then matched := true
        end)
      entries;
    if not !matched then
      problems :=
        Printf.sprintf "no schema-valid incident of kind %S in %s" kind dir
        :: !problems;
    List.rev !problems

(* -- phase 1: one probe per response class ------------------------------- *)

let probe_request =
  { Serve.default_request with
    Serve.rq_tenant = "probe";
    rq_n = 32;
    rq_cycles = 3;
    rq_variant = "opt+" }

let phase_probes ~incident_dir =
  Printf.printf "phase 1: response-class probes\n%!";
  let config =
    { Serve.default_config with
      Serve.sv_allow_faults = true;
      sv_tenants = [ ("probe", Serve.default_tenant) ] }
  in
  let sv = Serve.create ~config () in
  let case name rq ~status ~code ?(min_incidents = 0) ?(extra = []) () =
    let r = Serve.solve sv rq in
    (* isolation: the server must answer a clean request right after
       every probe, whatever the probe did to its own solve *)
    let after = Serve.solve sv probe_request in
    let pass =
      r.Serve.rs_status = status
      && r.Serve.rs_code = code
      && r.Serve.rs_incidents >= min_incidents
      && after.Serve.rs_status = Serve.Ok
    in
    record ~name ~pass
      ~detail:
        ([ ("status", Json.Str (Serve.status_name r.Serve.rs_status));
           ("code", Json.num r.Serve.rs_code);
           ("incidents", Json.num r.Serve.rs_incidents);
           ("detail", Json.Str r.Serve.rs_detail);
           ( "next_request_status",
             Json.Str (Serve.status_name after.Serve.rs_status) ) ]
         @ extra)
  in
  case "probe-ok" probe_request ~status:Serve.Ok ~code:0 ();
  case "probe-nan-quarantined"
    { probe_request with Serve.rq_fault = Some "nan"; rq_cycles = 4 }
    ~status:Serve.Quarantined ~code:3 ~min_incidents:1 ();
  case "probe-crash-quarantined"
    { probe_request with Serve.rq_fault = Some "crash"; rq_cycles = 4 }
    ~status:Serve.Quarantined ~code:3 ~min_incidents:1 ();
  case "probe-deadline"
    { probe_request with
      Serve.rq_n = 128;
      rq_cycles = 5;
      rq_deadline_s = Some 1e-4 }
    ~status:Serve.Deadline ~code:4 ();
  case "probe-infeasible"
    { probe_request with Serve.rq_mem_budget = Some 4096 }
    ~status:Serve.Infeasible ~code:5 ();
  case "probe-unresumable"
    { probe_request with Serve.rq_resume_dir = Some "traffic-empty-ckpt" }
    ~status:Serve.Unresumable ~code:6 ();
  case "probe-invalid"
    { probe_request with Serve.rq_variant = "bogus" }
    ~status:Serve.Invalid ~code:2 ();
  Serve.shutdown sv;
  (* shed + eviction on a caller-driven server: queue bounds are exact
     with no worker racing the admissions *)
  let config =
    { Serve.default_config with
      Serve.sv_workers = 0;
      sv_queue_cap = 6;
      sv_allow_faults = false;
      sv_tenants =
        [ ("greedy", { Serve.default_tenant with Serve.tc_queue_cap = 8 });
          ("meek", Serve.default_tenant) ] }
  in
  let sv = Serve.create ~config () in
  let tiny tenant =
    { Serve.default_request with
      Serve.rq_tenant = tenant;
      rq_n = 32;
      rq_cycles = 1;
      rq_variant = "naive" }
  in
  let meek_tk = Serve.submit sv (tiny "meek") in
  let greedy_tks = List.init 8 (fun _ -> Serve.submit sv (tiny "greedy")) in
  let greedy = Serve.tenant_stats sv "greedy" in
  let meek = Serve.tenant_stats sv "meek" in
  let shed_resp =
    List.filter_map Serve.peek greedy_tks
    |> List.find_opt (fun r -> r.Serve.rs_status = Serve.Shed)
  in
  Serve.drain sv;
  let meek_resp = Serve.await meek_tk in
  Serve.shutdown sv;
  record ~name:"probe-eviction-sheds-heaviest"
    ~pass:
      (greedy.Serve.ts_evicted >= 1 && meek.Serve.ts_evicted = 0
      && meek_resp.Serve.rs_status = Serve.Ok
      && (match shed_resp with
          | Some r ->
            r.Serve.rs_code = 7 && r.Serve.rs_retry_after_s <> None
          | None -> false))
    ~detail:
      [ ("greedy_evicted", Json.num greedy.Serve.ts_evicted);
        ("meek_evicted", Json.num meek.Serve.ts_evicted);
        ("meek_status", Json.Str (Serve.status_name meek_resp.Serve.rs_status)) ];
  match incident_dir with
  | None -> ()
  | Some dir ->
    let problems = check_incident ~dir ~kind:"nan" @ check_incident ~dir ~kind:"crash" in
    record ~name:"probe-incident-trail" ~pass:(problems = [])
      ~detail:
        [ ("problems", Json.Arr (List.map (fun s -> Json.Str s) problems)) ]

(* -- phase 2: mixed-tenant load ------------------------------------------ *)

(* Deterministic splitmix-style PRNG so the heavy-tail mix replays
   identically run to run. *)
let rng = ref 0x2545F491
let rand_int bound =
  (* 48-bit LCG (POSIX drand48 constants) *)
  rng := ((!rng * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  (!rng lsr 16) mod bound

(* Heavy-tail shape mix: mostly tiny solves, a thin tail of big ones
   (32 is the smallest valid n for the default 4-level cycle). *)
let tail_n () =
  let r = rand_int 100 in
  if r < 70 then 32 else if r < 98 then 64 else 128

let mk_request tenant =
  let variant = if rand_int 10 < 8 then "opt+" else "opt" in
  { Serve.default_request with
    Serve.rq_tenant = tenant;
    rq_n = tail_n ();
    rq_cycles = 1 + rand_int 2;
    rq_variant = variant }

(* Every poisoned flavour mallory sends, cycled through in order so each
   class appears even in --quick runs. *)
let poison rq = function
  | 0 -> { rq with Serve.rq_fault = Some "nan"; rq_cycles = 4 }
  | 1 -> { rq with Serve.rq_n = 128; rq_cycles = 5; rq_deadline_s = Some 1e-4 }
  | 2 -> { rq with Serve.rq_mem_budget = Some 4096 }
  | 3 -> { rq with Serve.rq_resume_dir = Some "traffic-empty-ckpt" }
  | _ -> { rq with Serve.rq_variant = "bogus" }

let phase_load ~quick =
  Printf.printf "phase 2: mixed-tenant load%s\n%!" (if quick then " (quick)" else "");
  (* full mode: 10k+ requests end to end; --quick trims for CI smoke *)
  let per_good = if quick then 300 else 6000 in
  let flood = if quick then 400 else 4000 in
  let config =
    { Serve.default_config with
      Serve.sv_allow_faults = true;
      sv_queue_cap = 64;
      sv_tenants =
        [ ("alice", Serve.default_tenant);
          ("bob", Serve.default_tenant);
          ( "mallory",
            { Serve.tc_rate = 20.0;
              tc_burst = 8.0;
              tc_queue_cap = 8;
              tc_mem_budget = Some (32 * 1024 * 1024) } ) ] }
  in
  let sv = Serve.create ~config () in
  let t0 = Unix.gettimeofday () in
  let all_tickets : (string * Serve.ticket) list ref = ref [] in
  let submit tenant rq =
    let tk = Serve.submit sv rq in
    all_tickets := (tenant, tk) :: !all_tickets;
    tk
  in
  (* well-behaved tenants: at most [window] requests in flight each *)
  let window = 4 in
  let good_outstanding = Queue.create () in
  let pump_good tenant =
    if Queue.length good_outstanding >= 2 * window then
      ignore (Serve.await (Queue.pop good_outstanding));
    Queue.push (submit tenant (mk_request tenant)) good_outstanding
  in
  let mallory_sent = ref 0 in
  let pump_mallory () =
    (* floods: a burst per turn, poisoned every 7th request *)
    for _ = 1 to 3 do
      let rq = mk_request "mallory" in
      let rq =
        if !mallory_sent mod 7 = 6 then poison rq (!mallory_sent / 7 mod 5)
        else rq
      in
      incr mallory_sent;
      ignore (submit "mallory" rq)
    done
  in
  (* mallory leads with one request of every poisoned class — all five
     admitted within its initial token burst, so every typed failure
     status is observed deterministically *)
  for k = 0 to 4 do
    incr mallory_sent;
    ignore (submit "mallory" (poison (mk_request "mallory") k))
  done;
  (* the rest of the burst drains within a few turns, and the steady
     20/s refill cannot keep up with 3 floods per turn *)
  for i = 0 to per_good - 1 do
    pump_good (if i land 1 = 0 then "alice" else "bob");
    if !mallory_sent < flood then pump_mallory ()
  done;
  while !mallory_sent < flood do
    pump_mallory ()
  done;
  (* collect every response: no ticket may be lost *)
  let responses =
    List.rev_map (fun (tenant, tk) -> (tenant, Serve.await tk)) !all_tickets
  in
  Serve.drain sv;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = List.length responses in
  let count pred = List.length (List.filter pred responses) in
  let by tenant status =
    count (fun (t, r) -> t = tenant && r.Serve.rs_status = status)
  in
  let good_total = count (fun (t, _) -> t = "alice" || t = "bob") in
  let good_ok = by "alice" Serve.Ok + by "bob" Serve.Ok in
  let alice = Serve.tenant_stats sv "alice" in
  let bob = Serve.tenant_stats sv "bob" in
  let mallory = Serve.tenant_stats sv "mallory" in
  let executed = Telemetry.value (Telemetry.counter "serve.completed") in
  let sent = per_good + !mallory_sent in
  record ~name:"load-all-responses-arrive"
    ~pass:(total = sent && executed > 0)
    ~detail:
      [ ("total", Json.num total);
        ("expected", Json.num sent);
        ("elapsed_s", Json.Num elapsed);
        ("throughput_rps", Json.Num (float_of_int total /. elapsed)) ];
  record ~name:"load-good-tenants-never-degraded"
    ~pass:
      (alice.Serve.ts_shed = 0 && bob.Serve.ts_shed = 0
      && alice.Serve.ts_evicted = 0 && bob.Serve.ts_evicted = 0
      && good_ok = good_total)
    ~detail:
      [ ("alice_shed", Json.num alice.Serve.ts_shed);
        ("bob_shed", Json.num bob.Serve.ts_shed);
        ("good_ok", Json.num good_ok);
        ("good_total", Json.num good_total) ];
  record ~name:"load-abuser-shed-first"
    ~pass:
      (mallory.Serve.ts_shed > !mallory_sent / 2
      && mallory.Serve.ts_accepted > 0)
    ~detail:
      [ ("mallory_sent", Json.num !mallory_sent);
        ("mallory_shed", Json.num mallory.Serve.ts_shed);
        ("mallory_accepted", Json.num mallory.Serve.ts_accepted) ];
  let m_quarantined = by "mallory" Serve.Quarantined in
  let m_deadline = by "mallory" Serve.Deadline in
  let m_infeasible = by "mallory" Serve.Infeasible in
  let m_unresumable = by "mallory" Serve.Unresumable in
  let m_invalid = by "mallory" Serve.Invalid in
  let m_shed = by "mallory" Serve.Shed in
  record ~name:"load-poison-classes-all-typed"
    ~pass:
      (m_quarantined >= 1 && m_deadline >= 1 && m_infeasible >= 1
      && m_unresumable >= 1 && m_invalid >= 1 && m_shed >= 1)
    ~detail:
      [ ("quarantined", Json.num m_quarantined);
        ("deadline", Json.num m_deadline);
        ("infeasible", Json.num m_infeasible);
        ("unresumable", Json.num m_unresumable);
        ("invalid", Json.num m_invalid);
        ("shed", Json.num m_shed) ];
  (* fairness: the abuser must not starve the good tenants.  The budget
     is generous (CI machines are noisy) but far below what an unfair
     scheduler would produce with mallory's queue always full. *)
  let p99_budget_s = 2.0 in
  let p tenant q =
    Metrics.percentile
      (Metrics.histogram ~labels:[ ("tenant", tenant) ] "serve_latency_ns")
      q
    /. 1e9
  in
  let alice_p99 = p "alice" 0.99 and bob_p99 = p "bob" 0.99 in
  record ~name:"load-good-tenant-p99-within-budget"
    ~pass:
      ((not (Float.is_nan alice_p99)) && alice_p99 <= p99_budget_s
      && (not (Float.is_nan bob_p99)) && bob_p99 <= p99_budget_s)
    ~detail:
      [ ("alice_p50_s", Json.Num (p "alice" 0.5));
        ("alice_p99_s", Json.Num alice_p99);
        ("bob_p99_s", Json.Num bob_p99);
        ("budget_s", Json.Num p99_budget_s) ];
  let hits, misses = Serve.plan_cache_stats sv in
  record ~name:"load-plan-cache-hits"
    ~pass:
      (hits > 0
      (* the counters are process-global: phase 1's server contributes *)
      && Telemetry.value (Telemetry.counter "serve.plan_cache_hits") >= hits
      && Telemetry.value (Telemetry.counter "serve.plan_cache_misses") >= misses)
    ~detail:[ ("hits", Json.num hits); ("misses", Json.num misses) ];
  Serve.shutdown sv

(* -- driver -------------------------------------------------------------- *)

let () =
  let quick = ref false and out = ref None in
  let metrics_out = ref None and incident_dir = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: path :: rest ->
      out := Some path;
      parse rest
    | "--metrics" :: path :: rest ->
      metrics_out := Some path;
      parse rest
    | "--incident-dir" :: dir :: rest ->
      incident_dir := Some dir;
      parse rest
    | a :: _ ->
      Printf.eprintf
        "traffic: unknown argument %s (try --quick, --out FILE, --metrics \
         FILE, --incident-dir DIR)\n"
        a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "traffic campaign%s: multigrid-as-a-service under load\n%!"
    (if !quick then " (quick)" else "");
  Telemetry.reset ();
  Metrics.reset ();
  Telemetry.set_enabled true;
  Flightrec.set_enabled true;
  Flightrec.set_max_incidents 16;
  (match !incident_dir with
   | Some dir -> Flightrec.set_incident_dir (Some dir)
   | None -> ());
  phase_probes ~incident_dir:!incident_dir;
  phase_load ~quick:!quick;
  Telemetry.set_enabled false;
  Flightrec.set_enabled false;
  (* the headline leak check: across every request — including the
     faulted, quarantined, deadline-stopped and budget-refused ones —
     every pool buffer must have come back *)
  (match Mempool.assert_quiescent () with
   | 0 -> record ~name:"pools-quiescent" ~pass:true ~detail:[]
   | n ->
     record ~name:"pools-quiescent" ~pass:false
       ~detail:[ ("outstanding", Json.num n) ]
   | exception Mempool.Not_quiescent { outstanding; leaked; detail } ->
     record ~name:"pools-quiescent" ~pass:false
       ~detail:
         [ ("outstanding", Json.num outstanding);
           ("leaked", Json.num leaked);
           ("detail", Json.Arr (List.map (fun s -> Json.Str s) detail)) ]);
  (match !metrics_out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc (Metrics.to_openmetrics ());
     close_out oc;
     Printf.printf "traffic: wrote %s\n" path);
  let doc =
    Json.Obj
      [ ("schema", Json.Str "polymg.traffic/1");
        ("quick", Json.Bool !quick);
        ("cases", Json.Arr (List.rev !cases));
        ("failures", Json.num !failures) ]
  in
  (match !out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Json.to_channel oc doc;
     output_char oc '\n';
     close_out oc;
     Printf.printf "traffic: wrote %s\n" path);
  if !failures > 0 then begin
    Printf.printf "traffic campaign: %d FAILURE(S)\n" !failures;
    exit 1
  end;
  Printf.printf "traffic campaign: all %d cases passed\n" (List.length !cases)
