(* Bench/metrics regression comparator: diffs two BENCH_results.json
   (schema polymg.bench/1) or mg_solve --metrics (polymg.metrics/1)
   documents, matching measurements by key and flagging any slowdown
   beyond a noise threshold.

   Usage:
     compare.exe OLD.json NEW.json [--threshold 0.25] [--relative VARIANT]
                 [--faster-than FAST,SLOW]... [--json VERDICT.json]

   Keys:
     bench files    "<bench> n=<n> dims=<d> domains=<p> <variant>"
                    value: seconds per cycle (min of reps)
     metrics files  "<bench> n=<n> cycle_seconds" and, per executed
                    stage, "<bench> n=<n> stage:<name>" (ns per plan
                    execution) — the variant is deliberately NOT part of
                    the key, so comparing an opt run against a naive run
                    of the same problem flags exactly the stages that
                    got slower.

   --relative VARIANT normalizes every bench row by that variant's time
   within the same (bench, n, dims, domains) group of the SAME file, so
   the comparison checks optimization speedups rather than absolute
   machine speed — the right gate for CI runners of unknown hardware.

   Keys present in only one input — e.g. counters or metric blocks
   (flightrec.*, health) that a newer build emits and an older baseline
   lacks, or vice versa — are tolerated: they get a stderr warning and a
   MISSING/NEW row, never a failure, so schema growth can't break the
   regression gate against an old baseline.

   --faster-than FAST,SLOW (repeatable) asserts an ordering *within the
   NEW file*: in every (bench, n, dims, domains) group where both
   variants appear, FAST's seconds-per-cycle must be strictly below
   SLOW's.  An inversion is a regression (exit 1) — this is how CI flags
   the optimized DSL variant slipping below the naive one under the
   native backend, where both move together and a baseline-relative
   threshold would stay green.  A pair that matches no group at all is
   an unusable input (exit 2), never a silent pass.

   --json PATH additionally writes the verdicts as a machine-readable
   polymg.compare/1 document (atomic write), so CI jobs and trend
   tooling can consume comparisons without scraping the markdown.

   Exit status: 0 when no key regressed, 1 when at least one key
   regressed, 2 on usage errors and unusable inputs — a missing or
   unreadable file, malformed JSON, an unknown schema, or a document
   with no comparable measurements (empty comparisons never pass
   silently). *)

module Json = Repro_runtime.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_doc path =
  let ic = try open_in_bin path with Sys_error m -> fail "compare: %s" m in
  let s =
    try really_input_string ic (in_channel_length ic)
    with End_of_file | Sys_error _ ->
      close_in_noerr ic;
      fail "compare: %s: cannot read" path
  in
  close_in ic;
  match Json.parse s with
  | Ok d -> d
  | Error m -> fail "compare: %s: %s" path m

let str j = Option.value (Json.to_str j) ~default:""
let num j = Option.value (Json.to_float j) ~default:nan
let inum j = Option.value (Json.to_int j) ~default:0

(* -> (key, value) rows in file order *)
let rows_of_bench doc ~relative =
  let records =
    match Json.member "records" doc with
    | Some r -> Json.to_list r
    | None -> []
  in
  let field r k = Option.value (Json.member k r) ~default:Json.Null in
  let group r =
    Printf.sprintf "%s n=%d dims=%d domains=%d"
      (str (field r "bench"))
      (inum (field r "n"))
      (inum (field r "dims"))
      (inum (field r "domains"))
  in
  let base_time =
    match relative with
    | None -> fun _ -> 1.0
    | Some v ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun r ->
          if str (field r "variant") = v then
            Hashtbl.replace tbl (group r) (num (field r "s_per_cycle")))
        records;
      fun r ->
        (match Hashtbl.find_opt tbl (group r) with
         | Some t when t > 0.0 -> t
         | Some _ | None ->
           fail "compare: --relative %s: no base row for %s" v (group r))
  in
  List.filter_map
    (fun r ->
      let v = str (field r "variant") in
      if relative = Some v then None (* the base normalizes to 1.0 *)
      else
        Some
          ( Printf.sprintf "%s %s" (group r) v,
            num (field r "s_per_cycle") /. base_time r ))
    records

let rows_of_metrics doc =
  let mem k d = Option.value (Json.member k d) ~default:Json.Null in
  let config = mem "config" doc in
  let prefix =
    Printf.sprintf "%s n=%d" (str (mem "bench" config)) (inum (mem "n" config))
  in
  let ncycles = List.length (Json.to_list (mem "cycles" doc)) in
  let cycle_row =
    if ncycles = 0 then []
    else
      [ ( prefix ^ " cycle_seconds",
          num (mem "total_seconds" doc) /. float_of_int ncycles ) ]
  in
  let stage_rows =
    List.filter_map
      (fun s ->
        let m = mem "measured" s in
        let ns = num (mem "ns" m) and execs = inum (mem "execs" m) in
        if execs = 0 then None
        else
          Some
            ( Printf.sprintf "%s stage:%s" prefix (str (mem "name" s)),
              ns /. float_of_int execs ))
      (Json.to_list (mem "stages" doc))
  in
  cycle_row @ stage_rows

let rows_of path ~relative =
  let doc = read_doc path in
  let rows =
    match Option.bind (Json.member "schema" doc) Json.to_str with
    | Some "polymg.bench/1" -> rows_of_bench doc ~relative
    | Some "polymg.metrics/1" -> rows_of_metrics doc
    | Some s -> fail "compare: %s: unknown schema %s" path s
    | None -> fail "compare: %s: missing \"schema\" field" path
  in
  (* A well-formed document with nothing to compare would make every
     comparison vacuously pass — treat it as a malformed input. *)
  if rows = [] then
    fail "compare: %s: no comparable measurements (truncated run?)" path;
  rows

(* (group, variant, s_per_cycle) triples of a polymg.bench/1 document,
   for the --faster-than ordering gate *)
let bench_triples path =
  let doc = read_doc path in
  (match Option.bind (Json.member "schema" doc) Json.to_str with
   | Some "polymg.bench/1" -> ()
   | Some s -> fail "compare: --faster-than needs a bench file, %s is %s" path s
   | None -> fail "compare: %s: missing \"schema\" field" path);
  let records =
    match Json.member "records" doc with
    | Some r -> Json.to_list r
    | None -> []
  in
  List.map
    (fun r ->
      let field k = Option.value (Json.member k r) ~default:Json.Null in
      ( Printf.sprintf "%s n=%d dims=%d domains=%d"
          (str (field "bench")) (inum (field "n")) (inum (field "dims"))
          (inum (field "domains")),
        str (field "variant"),
        num (field "s_per_cycle") ))
    records

(* Check one FAST,SLOW ordering over every group of the new file where
   both variants appear; returns the number of inversions.  Zero groups
   with both variants is exit 2 — an ordering gate that never fires
   would pass vacuously forever. *)
let check_ordering triples ~fast ~slow ~emit =
  let find group v =
    List.find_map
      (fun (g, var, s) -> if g = group && var = v then Some s else None)
      triples
  in
  let groups =
    List.sort_uniq compare (List.map (fun (g, _, _) -> g) triples)
  in
  let inversions = ref 0 and matched = ref 0 in
  List.iter
    (fun group ->
      match (find group fast, find group slow) with
      | Some tf, Some ts ->
        incr matched;
        let ok = tf < ts in
        if not ok then incr inversions;
        let verdict = if ok then "ordered" else "INVERSION" in
        Printf.printf "| %s %s < %s | %.4g | %.4g | %.3f | %s |\n" group
          fast slow tf ts (tf /. ts) verdict;
        emit
          (Printf.sprintf "%s %s<%s" group fast slow)
          (Some ts) (Some tf)
          (Some (tf /. ts))
          verdict
      | _ -> ())
    groups;
  if !matched = 0 then
    fail "compare: --faster-than %s,%s: no group has both variants" fast slow;
  !inversions

let fnum f = if Float.is_finite f then Json.Num f else Json.Null
let fopt = function Some f -> fnum f | None -> Json.Null

let () =
  let threshold = ref 0.25 in
  let relative = ref None in
  let json_out = ref None in
  let orderings = ref [] in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--faster-than" :: v :: rest ->
      (match String.index_opt v ',' with
       | Some i when i > 0 && i < String.length v - 1 ->
         orderings :=
           ( String.sub v 0 i,
             String.sub v (i + 1) (String.length v - i - 1) )
           :: !orderings
       | Some _ | None -> fail "compare: bad --faster-than %s (want FAST,SLOW)" v);
      go rest
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t > 0.0 -> threshold := t
       | Some _ | None -> fail "compare: bad --threshold %s" v);
      go rest
    | "--relative" :: v :: rest ->
      relative := Some v;
      go rest
    | "--json" :: v :: rest ->
      json_out := Some v;
      go rest
    | f :: rest when String.length f = 0 || f.[0] <> '-' ->
      files := f :: !files;
      go rest
    | f :: _ -> fail "compare: unknown option %s" f
  in
  go (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ ->
      fail
        "usage: compare.exe OLD.json NEW.json [--threshold 0.25] [--relative \
         VARIANT] [--faster-than FAST,SLOW] [--json VERDICT.json]"
  in
  let old_rows = rows_of old_path ~relative:!relative in
  let new_rows = rows_of new_path ~relative:!relative in
  let regressions = ref 0 and improvements = ref 0 and missing = ref 0 in
  (* (key, old, new, ratio, verdict) in output order, for the JSON sink *)
  let out_rows = ref [] in
  let emit key t_old t_new ratio verdict =
    out_rows := (key, t_old, t_new, ratio, verdict) :: !out_rows
  in
  Printf.printf "| key | old | new | ratio | verdict |\n";
  Printf.printf "|---|---|---|---|---|\n";
  List.iter
    (fun (key, t_old) ->
      match List.assoc_opt key new_rows with
      | None ->
        incr missing;
        Printf.eprintf
          "compare: warning: key %S only in old file (tolerated)\n" key;
        Printf.printf "| %s | %.4g | — | — | MISSING |\n" key t_old;
        emit key (Some t_old) None None "MISSING"
      | Some t_new ->
        let ratio = if t_old > 0.0 then t_new /. t_old else nan in
        let verdict =
          if Float.is_nan ratio then "n/a"
          else if ratio > 1.0 +. !threshold then begin
            incr regressions;
            "REGRESSION"
          end
          else if ratio < 1.0 -. !threshold then begin
            incr improvements;
            "improved"
          end
          else "ok"
        in
        Printf.printf "| %s | %.4g | %.4g | %.3f | %s |\n" key t_old t_new
          ratio verdict;
        emit key (Some t_old) (Some t_new) (Some ratio) verdict)
    old_rows;
  List.iter
    (fun (key, t_new) ->
      if not (List.mem_assoc key old_rows) then begin
        incr missing;
        Printf.eprintf
          "compare: warning: key %S only in new file (tolerated)\n" key;
        Printf.printf "| %s | — | … | — | NEW |\n" key;
        emit key None (Some t_new) None "NEW"
      end)
    new_rows;
  (match List.rev !orderings with
   | [] -> ()
   | pairs ->
     let triples = bench_triples new_path in
     List.iter
       (fun (fast, slow) ->
         regressions :=
           !regressions + check_ordering triples ~fast ~slow ~emit)
       pairs);
  Printf.printf
    "\ncompare: %d keys, %d regression(s), %d improvement(s), %d \
     missing/new (threshold %.0f%%%s)\n"
    (List.length old_rows) !regressions !improvements !missing
    (100.0 *. !threshold)
    (match !relative with
     | Some v -> Printf.sprintf ", relative to %s" v
     | None -> "");
  (match !json_out with
   | None -> ()
   | Some path ->
     let doc =
       Json.Obj
         [ ("schema", Json.Str "polymg.compare/1");
           ("old", Json.Str old_path);
           ("new", Json.Str new_path);
           ("threshold", Json.Num !threshold);
           ( "relative",
             match !relative with Some v -> Json.Str v | None -> Json.Null );
           ("regressions", Json.num !regressions);
           ("improvements", Json.num !improvements);
           ("missing", Json.num !missing);
           ( "verdict",
             Json.Str (if !regressions > 0 then "REGRESSION" else "ok") );
           ( "rows",
             Json.Arr
               (List.rev_map
                  (fun (key, t_old, t_new, ratio, verdict) ->
                    Json.Obj
                      [ ("key", Json.Str key);
                        ("old", fopt t_old);
                        ("new", fopt t_new);
                        ("ratio", fopt ratio);
                        ("verdict", Json.Str verdict) ])
                  !out_rows) ) ]
     in
     Repro_runtime.Snapshot.atomic_write_string ~path
       (Json.to_string doc ^ "\n"));
  exit (if !regressions > 0 then 1 else 0)
