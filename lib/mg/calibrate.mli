(** Cost-model calibration: {!Cost}'s predicted per-stage DRAM bytes and
    FLOPs joined with profiler-measured per-stage times
    ({!Repro_runtime.Profile}) across a sweep of shapes x plan variants.

    Per stage it reports the ratio of measured time to the roofline
    prediction [max(bytes/bandwidth, flops/gflops)] and flags drifts
    beyond a threshold factor; per shape it reports the Spearman rank
    correlation of predicted-vs-measured plan ordering — the validation
    number the ROADMAP's autotuning item calls for.  Surfaced as
    [polymg_dump --what calibrate] and the ["calibration"] block of
    [mg_solve --metrics]. *)

module Json := Repro_runtime.Json
module Roofline := Repro_runtime.Roofline
open Repro_core

val predicted_stage_ns : Roofline.t -> Cost.stage -> float
(** Roofline time bound for one stage execution, in ns: the max of the
    DRAM-traffic and FLOP terms. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on average ranks, tie-safe);
    [nan] when fewer than two points or either side is constant. *)

type stage_cal = {
  sc_name : string;
  sc_gid : int;
  sc_predicted_ns : float;  (** per plan execution *)
  sc_measured_ns : float;  (** per plan execution *)
  sc_ratio : float;  (** measured / predicted; [nan] without data *)
  sc_attributed : bool;  (** diamond stage: flops-share attribution *)
  sc_drift : bool;  (** ratio outside [[1/factor, factor]] *)
}

val join :
  roofline:Roofline.t ->
  drift_factor:float ->
  cost:Cost.t ->
  measured_ns:(Cost.stage -> float * bool) ->
  stage_cal list
(** Join predictions with a measurement source returning
    [(ns_per_execution, attributed)] per stage. *)

val calibration_block :
  roofline:Roofline.t ->
  ?drift_factor:float ->
  cost:Cost.t ->
  measured_ns:(Cost.stage -> float * bool) ->
  unit ->
  Json.t
(** Single-plan calibration JSON (per-stage join, totals, stage-rank
    Spearman, drifting stage names) — the [mg_solve --metrics] block. *)

val profile_measured_ns : Cost.t -> Cost.stage -> float * bool
(** Measurement source reading the profiler's merged per-site stats
    (stage sites, diamond front sites attributed by flops share),
    normalized per plan execution by the [exec.run] site count. *)

type cell = {
  cell_n : int;
  cell_variant : string;
  cell_predicted_ns : float;  (** per cycle: sum of stage predictions *)
  cell_measured_ns : float;  (** per cycle: mean of [solver.cycle] *)
  cell_stages : stage_cal list;
}

type t = {
  bench : string;
  cycles : int;
  domains : int;
  drift_factor : float;
  roofline : Roofline.t;
  cells : cell list;
  spearman_by_n : (int * float) list;
}

val run :
  ?variants:Options.t list ->
  ?shapes:int list ->
  ?cycles:int ->
  ?domains:int ->
  ?drift_factor:float ->
  Cycle.config ->
  n:int ->
  t
(** Run the calibration sweep: for every shape in [shapes] (default
    [[n]]) and every variant (default naive/opt/opt+/dtile-opt+), plan,
    warm up one unprofiled cycle, then measure [cycles] profiled cycles
    and join against the plan's cost model.  Resets the profiler around
    each cell. *)

val drifting : t -> (int * string * stage_cal) list
(** Every drifting stage as [(n, variant, stage)]. *)

val pp : Format.formatter -> t -> unit
(** The calibration report: per-shape variant table with Spearman, then
    the drifting stages. *)

val to_json : t -> Json.t
(** The report as a [polymg.calibrate/1] document. *)
