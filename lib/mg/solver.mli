(** The outer multigrid driver: iterates cycles (the loop that is external
    to the DSL, §2) over any cycle implementation — PolyMG plans or the
    hand-optimized baselines — and records convergence and timing. *)

type status =
  | Ok  (** residual finite and improving (or not computed) *)
  | Nan  (** residual NaN/Inf: non-finite values in the iterate *)
  | Diverged  (** residual grew past the divergence factor × best-so-far *)
  | Stagnated  (** residual no longer improving meaningfully *)

val status_name : status -> string

type cycle_stats = {
  cycle : int;  (** 1-based *)
  residual : float;  (** L2 residual after the cycle; NaN if not computed *)
  seconds : float;  (** wall time of the cycle execution alone *)
  status : status;
}

type result = {
  stats : cycle_stats list;
  v : Repro_grid.Grid.t;  (** final iterate *)
  total_seconds : float;  (** time in cycle executions, excluding checks *)
}

type stepper = v:Repro_grid.Grid.t -> f:Repro_grid.Grid.t ->
  out:Repro_grid.Grid.t -> unit
(** One cycle: reads the iterate [v] and rhs [f], writes the new iterate. *)

val classify :
  ?divergence_factor:float -> ?stagnation_eps:float -> best:float ->
  prev:float -> float -> status
(** [classify ~best ~prev residual] assigns a status to a fresh residual
    given the best and previous residuals (pass [infinity] when unknown —
    infinite bounds disable the corresponding test).  NaN/Inf residuals
    are {!Nan}; residuals above [divergence_factor] (default 1e4) times
    [best] are {!Diverged}; improvements below [stagnation_eps] (default
    1e-2, i.e. less than 1% per cycle) are {!Stagnated}. *)

val iterate :
  stepper -> problem:Problem.t -> cycles:int -> ?residuals:bool ->
  ?start_cycle:int ->
  ?on_accept:
    (cycle:int -> residual:float -> v:Repro_grid.Grid.t ->
     stats:cycle_stats list -> unit) ->
  unit -> result
(** Runs [cycles] iterations, ping-ponging two iterate grids.
    [residuals] (default true) computes the residual after each cycle with
    {!Verify.residual_l2} (excluded from timings) and classifies it with
    {!classify} at default thresholds; with [residuals:false] every status
    is {!Ok}.  [start_cycle] (default 1) offsets cycle numbering so a
    resumed solve continues where the checkpointed one stopped; [cycles]
    stays the number of cycles {e this} call runs.  [on_accept] is
    called after every completed cycle with the fresh iterate and the
    stats so far — {!Checkpoint.sink} plugs in here to persist durable
    generations on its cadence (the grid is read, never retained).  For
    fault detection with rollback and fallback, use {!Guard.run}
    instead. *)

val polymg_plan :
  Cycle.config -> n:int -> opts:Repro_core.Options.t -> Repro_core.Plan.t
(** Builds the cycle pipeline and optimizes it into a plan (through
    {!Repro_core.Plan_check.build}, so [opts.check_plan] validates the
    storage mapping before first use). *)

val plan_stepper : Repro_core.Plan.t -> rt:Repro_core.Exec.runtime -> stepper
(** The stepper executing an already-built cycle plan — callers that also
    want to report on the plan ({!Repro_core.Cost}, {!Perf_report}) build
    it once with {!polymg_plan} and reuse it here, so stage names in the
    report match the executed spans. *)

val polymg_stepper :
  Cycle.config -> n:int -> opts:Repro_core.Options.t -> rt:Repro_core.Exec.runtime ->
  stepper
(** [plan_stepper (polymg_plan cfg ~n ~opts) ~rt]. *)

val solve :
  Cycle.config -> n:int -> opts:Repro_core.Options.t ->
  ?domains:int -> cycles:int -> ?residuals:bool -> unit -> result
(** Convenience: fresh runtime + {!polymg_stepper} + {!iterate} on the
    standard Poisson problem.  The runtime is torn down when the solve
    returns {e or raises} (no domain-pool leak on stepper failure). *)

(** {2 Governed solve (resource governance)} *)

type governed = {
  g_result : result;
  g_report : Repro_core.Govern.report;
      (** the plan-time ladder decision (footprints, demotions) *)
  g_executed : Repro_core.Govern.rung;
      (** the rung actually executed — differs from the report's chosen
          rung when runtime demotion stepped further down *)
  g_runtime_demotions : int;
      (** rungs abandoned at {e run} time because the pool raised
          {!Repro_runtime.Mempool.Budget_exceeded} (model optimism);
          also counted in [govern.runtime_demotions] *)
}

val solve_governed :
  Cycle.config -> n:int -> opts:Repro_core.Options.t -> ?domains:int ->
  ?poison:bool -> cycles:int -> ?residuals:bool -> ?start_cycle:int ->
  ?on_accept:
    (cycle:int -> residual:float -> v:Repro_grid.Grid.t ->
     stats:cycle_stats list -> unit) ->
  ?problem:Problem.t ->
  unit -> (governed, Repro_core.Govern.infeasible) Stdlib.result
(** The budgeted solve: {!Repro_core.Govern.decide} picks the most
    aggressive ladder rung whose modelled footprint fits
    [opts.mem_budget], then the rung runs under a fresh runtime whose
    pool budget is the remaining (non-scratch) share of the budget.  A
    {!Repro_runtime.Mempool.Budget_exceeded} escaping a cycle demotes
    to the next fitting rung with a fresh runtime instead of aborting;
    exhausting the ladder — like a budget below the ladder floor at
    plan time — returns [Error].  With no budget set this is {!solve}
    plus a (fully modelled) report. *)
