(** Durable checkpoint/restart for solver state.

    Built on {!Repro_runtime.Snapshot} (atomic temp+fsync+rename writes,
    CRC-framed [polymg.snapshot/1] container), this module makes a
    long-running solve survivable: the accepted iterate, residual
    history and solve identity are persisted every [every] accepted
    cycles into a rotating set of {e generations} ([ckpt-NNNNNN.snap],
    numbered by cycle), and {!load_latest} restores the newest
    generation that still verifies — a torn, truncated or bit-flipped
    file is detected by the CRC framing and skipped in favour of the
    previous generation, never deserialized.

    Rotation never deletes the newest good generation: a new generation
    is written (atomically) {e first}, and only then are generations
    beyond [keep] pruned, so the directory always holds at least one
    complete checkpoint once any save succeeded, whatever instant the
    process is killed.

    Registered counters: [guard.checkpoint_writes],
    [guard.checkpoint_restores], [guard.checkpoint_rejected],
    [guard.checkpoint_pruned] (see the README counter tables). *)

type state = {
  cycle : int;  (** last accepted cycle (1-based) *)
  residual : float;  (** L2 residual of [v] *)
  dims : int;
  n : int;  (** problem-size parameter *)
  variant : string;  (** optimizer variant name *)
  plan_digest : string;  (** {!Repro_core.Plan.digest} of the active plan *)
  seed : int;  (** RNG/fill seed of the problem; [0] = manufactured *)
  history : Solver.cycle_stats list;  (** accepted cycles, oldest first *)
  v : Repro_grid.Grid.t;  (** the accepted iterate *)
}

type config = {
  dir : string;
  every : int;  (** save cadence in accepted cycles *)
  keep : int;  (** generations retained (the last [keep]) *)
}

val default_keep : int
(** 3. *)

val effective_every : every:int -> deadline:float option -> int
(** The cadence actually used.  Under a {!Repro_runtime.Watchdog}
    deadline a kill can arrive at any stage boundary, so the cadence is
    clamped to every accepted cycle — at most one cycle of work is ever
    lost to a deadline stop. *)

val gen_path : dir:string -> int -> string
(** [dir/ckpt-NNNNNN.snap] for generation (= cycle) [NNNNNN]. *)

val generations : dir:string -> int list
(** Generation numbers present (complete or not), ascending; [[]] when
    the directory is missing or empty. *)

val save : config -> state -> string
(** Atomically writes generation [state.cycle], prunes generations
    beyond [config.keep] (oldest first) and stale temp droppings from
    killed writers, and returns the path written. *)

val load : path:string -> (state, string) result
(** Reads one generation file back, verifying the container framing and
    the metadata/payload consistency. *)

type resume = {
  gen : int;  (** generation restored *)
  state : state;
  rejected : (int * string) list;
      (** newer generations skipped as corrupt: (generation, reason),
          newest first.  Each is also a [Checkpoint_reject] flight-
          recorder event and counted in [guard.checkpoint_rejected]. *)
}

val load_latest : dir:string -> (resume, string) result
(** Restores the newest generation that verifies, falling back through
    older generations on corruption.  [Error] when the directory holds
    no usable generation at all ([mg_solve --resume] exit code 6). *)

(** {2 Periodic sink}

    The glue between a solve loop and the store: an [on_accept] hook to
    pass to {!Solver.iterate}/[Guard.run], a [flush] for signal
    handlers and end-of-solve, and a [restore] for Guard's
    disk-rollback path. *)

type sink = {
  on_accept :
    cycle:int -> residual:float -> v:Repro_grid.Grid.t ->
    stats:Solver.cycle_stats list -> unit;
      (** saves when [cycle] lands on the cadence; always remembers the
          state so a later [flush] can persist it *)
  flush : unit -> string option;
      (** force-saves the last accepted state if it is newer than the
          last durable generation (final checkpoint at solve end, and
          the SIGINT/SIGTERM flush); [None] when nothing newer exists *)
  restore : unit -> (int * float * Repro_grid.Grid.t) option;
      (** newest durable [(cycle, residual, iterate)], for Guard
          rollback when the in-memory checkpoint is unusable *)
}

val sink :
  config -> dims:int -> n:int -> variant:string -> plan_digest:string ->
  ?seed:int -> ?history_prefix:Solver.cycle_stats list -> unit -> sink
(** [history_prefix] (a restored run's earlier cycles) is prepended to
    the stats each save records, so a twice-resumed run still carries
    its full residual history. *)
