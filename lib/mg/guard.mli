(** Guarded execution: per-cycle fault detection with checkpoint,
    rollback, and graceful fallback to an unoptimized plan.

    The optimizing plan pipeline (overlapped tiling, scratchpads, storage
    remapping) is exactly the kind of code whose bugs corrupt answers
    silently.  {!run} wraps any {!Solver.stepper} in a monitor that after
    every cycle scans the fresh iterate for non-finite values and
    classifies its residual ({!Solver.classify}); on a NaN, divergence,
    or crash it rolls the iterate back to a checkpoint of the last good
    cycle and re-runs the failed cycle on a {e fallback} stepper —
    typically the same cycle compiled with {!Repro_core.Options.naive},
    no optimizations — which isolates whether the optimizer caused the
    fault.  If the primary plan keeps faulting it is quarantined for the
    rest of the solve; if the {e fallback} faults, the fault is inherent
    to the problem and the solve stops with the last good iterate.

    Every detection, rollback, and switch is recorded in telemetry
    counters ([guard.*]) and returned as {!event}s. *)

type policy = {
  tol : float option;
      (** stop as soon as the L2 residual is [<= tol] (early stop) *)
  max_cycles : int;  (** accepted-cycle budget (faulted retries excluded) *)
  divergence_factor : float;
      (** fault when residual > factor × best-so-far (default 1e3) *)
  stagnation_eps : float;
      (** minimum relative improvement per cycle (default 1e-3) *)
  stagnation_window : int;
      (** stop after this many consecutive stagnant cycles (default 3) *)
  max_primary_faults : int;
      (** quarantine the primary stepper after this many faults
          (default 2); until then each fault costs one fallback retry *)
  primary_retries : int;
      (** bounded retry: re-run a faulted cycle on the {e primary} plan
          up to this many times before switching to the fallback
          (default 0 — first fault goes straight to the fallback).
          Retried faults do not count toward [max_primary_faults]; the
          retry budget resets on every accepted cycle.  Retries are
          counted in the [govern.primary_retries] telemetry counter. *)
  retry_backoff : float;
      (** base of the exponential backoff slept before each primary
          retry: retry [k] waits [retry_backoff × 2{^k-1}] seconds
          (default 0 — no sleep). *)
}

val default_policy : policy
(** [tol = None], [max_cycles = 50], and the defaults noted above. *)

type fault =
  | Fault_nan  (** non-finite values in the iterate or its residual *)
  | Fault_diverged  (** residual blew past [divergence_factor × best] *)
  | Fault_crash of string  (** the stepper raised; payload is the message *)

val fault_name : fault -> string

type action =
  | Primary_retry
      (** rolled back; cycle re-run on the {e primary} plan after the
          policy's exponential backoff ([policy.primary_retries]) *)
  | Fallback_retry  (** rolled back; cycle re-run on the fallback plan *)
  | Quarantined_primary
      (** rolled back; primary disabled for the rest of the solve *)
  | Gave_up  (** fault on the fallback plan (or no fallback): stop *)

val action_name : action -> string

type event = { cycle : int; fault : fault; action : action }

type outcome =
  | Converged  (** reached [policy.tol] *)
  | Exhausted  (** ran [max_cycles] without meeting [tol] *)
  | Stagnated  (** residual stopped improving for [stagnation_window] *)
  | Faulted of fault
      (** unrecoverable fault; [v] holds the last good iterate *)

val outcome_name : outcome -> string

type result = {
  stats : Solver.cycle_stats list;
      (** every attempted cycle, including faulted attempts (status
          [Nan]/[Diverged]); crashed attempts appear only in [events] *)
  v : Repro_grid.Grid.t;  (** final (always last-good) iterate *)
  residual : float;  (** residual of [v]; the initial residual if no
                         cycle was accepted *)
  outcome : outcome;
  events : event list;  (** faults in detection order *)
  fallback_cycles : int;  (** accepted cycles run on the fallback plan *)
  total_seconds : float;  (** stepper time, all attempts, checks excluded *)
}

type checkpoint_sink = {
  ck_accept :
    cycle:int -> residual:float -> v:Repro_grid.Grid.t ->
    stats:Solver.cycle_stats list -> unit;
      (** called after every accepted cycle with the last-good iterate
          (stable identity: only overwritten on the next accept) —
          {!Checkpoint.sink} persists it on its cadence *)
  ck_restore : unit -> (int * float * Repro_grid.Grid.t) option;
      (** newest durable [(cycle, residual, iterate)]; consulted on
          rollback when the in-memory checkpoint holds non-finite
          values, so recovery can restore from disk, not just memory
          (counted in [guard.checkpoint_disk_restores]) *)
}

val run :
  ?policy:policy -> ?checkpoint:checkpoint_sink -> ?start_cycle:int ->
  primary:Solver.stepper -> ?fallback:(unit -> Solver.stepper) ->
  problem:Problem.t -> unit -> result
(** Runs guarded cycles of [primary] on [problem].  [fallback] is built
    lazily, on the first fault.  Cycle numbers in [stats]/[events] only
    advance on accepted cycles, so a retried cycle keeps its number.
    [start_cycle] (default 1) resumes numbering mid-run after a durable
    restore: [problem.v] should then hold the restored iterate, and
    [policy.max_cycles] keeps meaning the {e absolute} cycle budget. *)

val fallback_opts : Repro_core.Options.t -> Repro_core.Options.t
(** {!Repro_core.Options.naive} with [check_plan] inherited — the option
    set the guard falls back to. *)

val solve :
  Cycle.config -> n:int -> opts:Repro_core.Options.t -> ?domains:int ->
  ?poison:bool -> ?policy:policy -> ?fallback:bool -> ?problem:Problem.t ->
  unit -> result
(** Convenience: one runtime ({!Repro_core.Exec.with_runtime}, with
    [poison] enabling {!Repro_runtime.Mempool} buffer poisoning) shared
    by a {!Solver.polymg_stepper} primary and, unless [fallback:false],
    a lazily built naive-plan fallback; then {!run} on [problem]
    (default: the standard Poisson problem for [cfg.dims]). *)
