module Buf = Repro_grid.Buf
module Grid = Repro_grid.Grid
module Json = Repro_runtime.Json
module K = Kernels

type visit = { cycle : int; pre : float; mid : float; post : float }

type level_diag = {
  level : int;
  nl : int;
  visits : visit array;
  smoothing_rate : float;
  level_factor : float;
  stalled_at : int option;
}

type report = {
  bench : string;
  dims : int;
  n : int;
  levels : int;
  cycles : int;
  residual0 : float;
  residuals : float array;
  cycle_factors : float array;
  asymptotic_factor : float;
  level_diags : level_diag array;
  stalled_level : int option;
}

(* Relative improvement below this counts as "not improving" for stall
   attribution, and residuals below [floor_rel * r0] are considered at
   the round-off floor (no factor or stall is derived from them). *)
let stall_eps = 1e-3
let floor_rel = 1e-12

(* ------------------------------------------------------------------ *)
(* Reference cycle state (sequential Kernels path, Handopt's sizes)     *)

(* dimension-dispatched kernel table (Handopt keeps its own private) *)
type ops = {
  jacobi :
    n:int -> w:float -> invhsq:float -> src:K.buf -> frhs:K.buf ->
    dst:K.buf -> rlo:int -> rhi:int -> unit;
  scalef :
    n:int -> w:float -> frhs:K.buf -> dst:K.buf -> rlo:int -> rhi:int -> unit;
  resid :
    n:int -> invhsq:float -> v:K.buf -> frhs:K.buf -> dst:K.buf ->
    rlo:int -> rhi:int -> unit;
  restr : nc:int -> fine:K.buf -> dst:K.buf -> rlo:int -> rhi:int -> unit;
  interp_correct :
    nc:int -> coarse:K.buf -> v:K.buf -> rlo:int -> rhi:int -> unit;
  copy : n:int -> src:K.buf -> dst:K.buf -> rlo:int -> rhi:int -> unit;
}

let ops2 =
  { jacobi = K.jacobi2d;
    scalef = K.scalef2d;
    resid = K.resid2d;
    restr = K.restrict2d;
    interp_correct = K.interp_correct2d;
    copy = K.copy2d }

let ops3 =
  { jacobi = K.jacobi3d;
    scalef = K.scalef3d;
    resid = K.resid3d;
    restr = K.restrict3d;
    interp_correct = K.interp_correct3d;
    copy = K.copy3d }

type level = {
  ln : int;
  invhsq : float;
  w : float;
  ebuf : Buf.t;  (* level iterate *)
  tmp : Buf.t;  (* smoothing ping-pong partner *)
  frhs : Buf.t;  (* level right-hand side *)
  r : Buf.t;  (* residual scratch (also the restriction source) *)
  mutable seen : visit list;  (* newest first *)
}

type state = {
  cfg : Cycle.config;
  n : int;
  ops : ops;
  levels : level array;  (* index 0 = coarsest *)
}

let make_state cfg ~n =
  (match cfg.Cycle.shape with
  | Cycle.V | Cycle.W -> ()
  | Cycle.F -> invalid_arg "Health.observe: F-cycles not supported");
  (match cfg.Cycle.smoother with
  | Cycle.Jacobi -> ()
  | Cycle.Gsrb -> invalid_arg "Health.observe: GSRB smoothing not supported");
  let nlev = cfg.Cycle.levels in
  if n mod (1 lsl (nlev - 1)) <> 0 then
    invalid_arg "Health.observe: N must be divisible by 2^(levels-1)";
  let dims = cfg.Cycle.dims in
  let levels =
    Array.init nlev (fun l ->
        let nl = (n / (1 lsl (nlev - 1 - l))) - 1 in
        let len = int_of_float (float_of_int (nl + 2) ** float_of_int dims) in
        let invhsq = float_of_int ((nl + 1) * (nl + 1)) in
        { ln = nl;
          invhsq;
          w = cfg.Cycle.omega /. (float_of_int (2 * dims) *. invhsq);
          ebuf = Buf.create len;
          tmp = Buf.create len;
          frhs = Buf.create len;
          r = Buf.create len;
          seen = [] })
  in
  { cfg; n; ops = (if dims = 2 then ops2 else ops3); levels }

let data (b : Buf.t) = b.Buf.data

(* RMS over the interior, matching Verify.residual_l2's scaling. *)
let interior_rms st (lv : level) (buf : Buf.t) =
  let s = lv.ln + 2 in
  let d = data buf in
  let sum = ref 0.0 in
  (match st.cfg.Cycle.dims with
  | 2 ->
    for i = 1 to lv.ln do
      for j = 1 to lv.ln do
        let x = Bigarray.Array1.unsafe_get d ((i * s) + j) in
        sum := !sum +. (x *. x)
      done
    done
  | _ ->
    for i = 1 to lv.ln do
      for j = 1 to lv.ln do
        for k = 1 to lv.ln do
          let x =
            Bigarray.Array1.unsafe_get d ((((i * s) + j) * s) + k)
          in
          sum := !sum +. (x *. x)
        done
      done
    done);
  let count = float_of_int lv.ln ** float_of_int st.cfg.Cycle.dims in
  sqrt (!sum /. count)

(* Level residual norm: r <- frhs - A e, then RMS(r).  The residual is
   left in [lv.r], so the caller can restrict it without recomputing. *)
let resid_norm st (lv : level) =
  let o = st.ops in
  o.resid ~n:lv.ln ~invhsq:lv.invhsq ~v:(data lv.ebuf)
    ~frhs:(data lv.frhs) ~dst:(data lv.r) ~rlo:1 ~rhi:lv.ln;
  interior_rms st lv lv.r

(* Jacobi smoothing with ping-pong buffers; the result always lands back
   in [lv.ebuf].  [zero_init] means the incoming iterate is (logically)
   zero, so the first step is the scalef special case, exactly as the
   DSL cycle and Handopt build it. *)
let smooth st (lv : level) ~steps ~zero_init =
  if steps > 0 then begin
    let o = st.ops in
    let n = lv.ln in
    let a = ref lv.ebuf and b = ref lv.tmp in
    for step = 1 to steps do
      (if step = 1 && zero_init then
         o.scalef ~n ~w:lv.w ~frhs:(data lv.frhs) ~dst:(data !b)
           ~rlo:1 ~rhi:n
       else
         o.jacobi ~n ~w:lv.w ~invhsq:lv.invhsq ~src:(data !a)
           ~frhs:(data lv.frhs) ~dst:(data !b) ~rlo:1 ~rhi:n);
      let t = !a in
      a := !b;
      b := t
    done;
    if not (!a == lv.ebuf) then
      o.copy ~n ~src:(data !a) ~dst:(data lv.ebuf) ~rlo:1 ~rhi:n
  end

let rec visit st ~cycle ~level ~zero_init =
  let lv = st.levels.(level) in
  if zero_init then Buf.fill lv.ebuf 0.0;
  let pre = resid_norm st lv in
  let v =
    if level = 0 then begin
      smooth st lv ~steps:st.cfg.Cycle.n2 ~zero_init;
      let m = resid_norm st lv in
      { cycle; pre; mid = m; post = m }
    end
    else begin
      let o = st.ops in
      smooth st lv ~steps:st.cfg.Cycle.n1 ~zero_init;
      let mid = resid_norm st lv in
      (* resid_norm left the fresh residual in lv.r: restrict it into
         the coarse right-hand side and recurse for the correction *)
      let co = st.levels.(level - 1) in
      o.restr ~nc:co.ln ~fine:(data lv.r) ~dst:(data co.frhs) ~rlo:1
        ~rhi:co.ln;
      let recursions =
        match st.cfg.Cycle.shape with
        | Cycle.W when level >= 2 -> 2
        | Cycle.V | Cycle.W | Cycle.F -> 1
      in
      for k = 1 to recursions do
        visit st ~cycle ~level:(level - 1) ~zero_init:(k = 1)
      done;
      o.interp_correct ~nc:co.ln ~coarse:(data co.ebuf)
        ~v:(data lv.ebuf) ~rlo:0 ~rhi:co.ln;
      smooth st lv ~steps:st.cfg.Cycle.n3 ~zero_init:false;
      let post = resid_norm st lv in
      { cycle; pre; mid; post }
    end
  in
  lv.seen <- v :: lv.seen

(* ------------------------------------------------------------------ *)
(* Statistics *)

let geo_mean ratios =
  let usable = List.filter (fun x -> Float.is_finite x && x > 0.0) ratios in
  match usable with
  | [] -> Float.nan
  | xs ->
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
      /. float_of_int (List.length xs))

(* Per-cycle improvement series -> first cycle of a terminal non-improving
   streak (>= 2 cycles, still above the floor). *)
let stall_of_series p =
  let c = Array.length p in
  if c < 3 then None
  else begin
    let floor = floor_rel *. Float.max p.(0) 1e-300 in
    (* j = smallest index such that every step from p.(j-1) to p.(c-1)
       fails to improve by stall_eps *)
    let j = ref c in
    while
      !j > 1 && p.(!j - 1) >= (1.0 -. stall_eps) *. p.(!j - 2) && p.(!j - 2) > floor
    do
      decr j
    done;
    if c - !j >= 2 then Some (!j + 1) else None
  end

let diag_of_level (lv : level) ~level =
  let visits = Array.of_list (List.rev lv.seen) in
  let ratios sel =
    Array.to_list visits
    |> List.filter_map (fun v ->
           let num, den = sel v in
           if den > 0.0 && Float.is_finite num then Some (num /. den)
           else None)
  in
  (* per-cycle last-visit post norms, for stall attribution *)
  let by_cycle = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace by_cycle v.cycle v.post) visits;
  let cycles = Hashtbl.fold (fun c _ acc -> Int.max c acc) by_cycle 0 in
  let series =
    Array.init cycles (fun i ->
        Option.value (Hashtbl.find_opt by_cycle (i + 1)) ~default:Float.nan)
  in
  { level;
    nl = lv.ln;
    visits;
    smoothing_rate = geo_mean (ratios (fun v -> (v.mid, v.pre)));
    level_factor = geo_mean (ratios (fun v -> (v.post, v.pre)));
    stalled_at = stall_of_series series }

let asymptotic ~residual0 ~residuals =
  let floor = floor_rel *. Float.max residual0 1e-300 in
  let factors = ref [] in
  let prev = ref residual0 in
  Array.iter
    (fun r ->
      if r > floor && !prev > floor && Float.is_finite r && r > 0.0 then
        factors := (r /. !prev) :: !factors;
      prev := r)
    residuals;
  let usable = List.rev !factors in
  let k = List.length usable in
  if k = 0 then Float.nan
  else
    (* last half: early cycles flatter the factor *)
    let last_half = List.filteri (fun i _ -> i >= k / 2) usable in
    geo_mean last_half

let observe cfg ~n ~cycles ?problem () =
  if cycles < 1 then invalid_arg "Health.observe: cycles must be >= 1";
  let st = make_state cfg ~n in
  let problem =
    match problem with
    | Some p -> p
    | None -> Problem.poisson ~dims:cfg.Cycle.dims ~n
  in
  let finest = st.levels.(Array.length st.levels - 1) in
  let expect = Array.make cfg.Cycle.dims (finest.ln + 2) in
  if
    Grid.extents problem.Problem.v <> expect
    || Grid.extents problem.Problem.f <> expect
  then invalid_arg "Health.observe: problem extents mismatch";
  Buf.blit ~src:problem.Problem.f.Grid.buf ~dst:finest.frhs;
  Buf.blit ~src:problem.Problem.v.Grid.buf ~dst:finest.ebuf;
  let residual0 = resid_norm st finest in
  let residuals =
    Array.init cycles (fun c ->
        visit st ~cycle:(c + 1)
          ~level:(Array.length st.levels - 1)
          ~zero_init:false;
        (List.hd finest.seen).post)
  in
  let cycle_factors =
    Array.mapi
      (fun c r ->
        let prev = if c = 0 then residual0 else residuals.(c - 1) in
        if prev > 0.0 then r /. prev else Float.nan)
      residuals
  in
  let level_diags = Array.mapi (fun l lv -> diag_of_level lv ~level:l) st.levels in
  let stalled_level =
    Array.to_list level_diags
    |> List.filter_map (fun d ->
           match d.stalled_at with Some c -> Some (d.level, c) | None -> None)
    |> List.fold_left
         (fun best (l, c) ->
           match best with
           | Some (_, bc) when bc < c -> best
           | Some (bl, bc) when bc = c && bl > l -> best
           | _ -> Some (l, c))
         None
    |> Option.map fst
  in
  { bench = Cycle.bench_name cfg;
    dims = cfg.Cycle.dims;
    n;
    levels = cfg.Cycle.levels;
    cycles;
    residual0;
    residuals;
    cycle_factors;
    asymptotic_factor = asymptotic ~residual0 ~residuals;
    level_diags;
    stalled_level }

(* ------------------------------------------------------------------ *)
(* Sinks *)

let pp ppf r =
  let final =
    if Array.length r.residuals = 0 then r.residual0
    else r.residuals.(Array.length r.residuals - 1)
  in
  Format.fprintf ppf "@[<v>== health: %s n=%d, %d cycles ==@," r.bench r.n
    r.cycles;
  Format.fprintf ppf
    "residual %.3e -> %.3e; asymptotic convergence factor %.3f@," r.residual0
    final r.asymptotic_factor;
  Format.fprintf ppf "cycle factors:";
  Array.iter (fun f -> Format.fprintf ppf " %.3f" f) r.cycle_factors;
  Format.fprintf ppf "@,%-10s %6s %7s %10s %8s  %s@," "level" "nl" "visits"
    "smoothing" "factor" "stall";
  for l = Array.length r.level_diags - 1 downto 0 do
    let d = r.level_diags.(l) in
    Format.fprintf ppf "%-10s %6d %7d %10.3f %8.3f  %s@,"
      (Printf.sprintf "L%d%s" d.level
         (if l = Array.length r.level_diags - 1 then " (fine)" else ""))
      d.nl
      (Array.length d.visits)
      d.smoothing_rate d.level_factor
      (match d.stalled_at with
      | Some c -> Printf.sprintf "cycle %d" c
      | None -> "-")
  done;
  (match r.stalled_level with
  | Some l ->
    let d = r.level_diags.(l) in
    Format.fprintf ppf
      "stall attribution: level %d stopped reducing its residual at cycle %d@,"
      l
      (Option.value d.stalled_at ~default:0)
  | None -> Format.fprintf ppf "stall attribution: no stalls@,");
  Format.fprintf ppf "@]"

let fnum x = if Float.is_finite x then Json.Num x else Json.Null

let to_json r =
  Json.Obj
    [ ("bench", Json.Str r.bench);
      ("dims", Json.num r.dims);
      ("n", Json.num r.n);
      ("levels", Json.num r.levels);
      ("cycles", Json.num r.cycles);
      ("residual0", fnum r.residual0);
      ( "residuals",
        Json.Arr (Array.to_list (Array.map fnum r.residuals)) );
      ( "cycle_factors",
        Json.Arr (Array.to_list (Array.map fnum r.cycle_factors)) );
      ("asymptotic_factor", fnum r.asymptotic_factor);
      ( "levels_diag",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun d ->
                  Json.Obj
                    [ ("level", Json.num d.level);
                      ("nl", Json.num d.nl);
                      ( "visits",
                        Json.Arr
                          (Array.to_list
                             (Array.map
                                (fun v ->
                                  Json.Obj
                                    [ ("cycle", Json.num v.cycle);
                                      ("pre", fnum v.pre);
                                      ("mid", fnum v.mid);
                                      ("post", fnum v.post) ])
                                d.visits)) );
                      ("smoothing_rate", fnum d.smoothing_rate);
                      ("level_factor", fnum d.level_factor);
                      ( "stalled_at",
                        match d.stalled_at with
                        | Some c -> Json.num c
                        | None -> Json.Null ) ])
                r.level_diags)) );
      ( "stalled_level",
        match r.stalled_level with
        | Some l -> Json.num l
        | None -> Json.Null ) ]

let healthy ?(max_factor = 0.75) r =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (if not (Float.is_finite r.asymptotic_factor) || r.asymptotic_factor <= 0.0
   then err "asymptotic convergence factor is not a positive finite number"
   else if r.asymptotic_factor > max_factor then
     err "asymptotic convergence factor %.3f exceeds %.3f"
       r.asymptotic_factor max_factor);
  let final =
    if Array.length r.residuals = 0 then r.residual0
    else r.residuals.(Array.length r.residuals - 1)
  in
  if not (final < r.residual0) then
    err "residual did not decrease (%.3e -> %.3e)" r.residual0 final;
  (match r.stalled_level with
  | Some l -> err "level %d stalled above the round-off floor" l
  | None -> ());
  match !errs with [] -> Ok () | es -> Error (List.rev es)
