module Grid = Repro_grid.Grid
module Json = Repro_runtime.Json
open Repro_core
module Pipeline = Repro_ir.Pipeline
module Func = Repro_ir.Func
module Sizeexpr = Repro_ir.Sizeexpr

(* ------------------------------------------------------------------ *)
(* Difference metrics                                                   *)

let ulps a b =
  if a = b then 0.0
  else if Float.is_nan a || Float.is_nan b then infinity
  else
    (* map bit patterns to an order-preserving integer line, so the ULP
       distance is a plain subtraction even across zero *)
    let key x =
      let bits = Int64.bits_of_float x in
      if Int64.compare bits 0L >= 0 then bits else Int64.sub Int64.min_int bits
    in
    Int64.to_float (Int64.abs (Int64.sub (key a) (key b)))

type diff = { max_abs : float; max_ulp : float; worst : int }

let no_diff = { max_abs = 0.0; max_ulp = 0.0; worst = -1 }

let diff_acc d i a b =
  let abs = Float.abs (a -. b) in
  let abs = if Float.is_nan abs then infinity else abs in
  if abs > d.max_abs then { max_abs = abs; max_ulp = ulps a b; worst = i }
  else d

let grid_diff (a : Grid.t) (b : Grid.t) =
  if Grid.extents a <> Grid.extents b then
    invalid_arg "Conformance.grid_diff: extents differ";
  let ba = a.Grid.buf and bb = b.Grid.buf in
  let d = ref no_diff in
  for i = 0 to Repro_grid.Buf.len ba - 1 do
    d := diff_acc !d i (Repro_grid.Buf.get ba i) (Repro_grid.Buf.get bb i)
  done;
  !d

(* ------------------------------------------------------------------ *)
(* Tolerance budgets (documented in TESTING.md)                         *)

type budgets = { vs_plan : float; vs_handopt : float; vs_c : float }

let default_budgets = { vs_plan = 1e-11; vs_handopt = 1e-9; vs_c = 1e-10 }

(* ------------------------------------------------------------------ *)
(* Deterministic input fill — the OCaml twin of the C driver's
   [fill_val] (see C_emit.driver_to_string): FNV-1a over (input index,
   multi-index), folded to [-0.5, 0.5) with a 20-bit mantissa so the
   double value is exact on both sides. *)

let fill_val ~input idx =
  let step h x = Int.logxor h x * 16777619 land 0xFFFFFFFF in
  let h = step 0x811c9dc5 input in
  let h = Array.fold_left step h idx in
  (float_of_int (h land 0xFFFFF) /. 1048576.0) -. 0.5

(* ------------------------------------------------------------------ *)
(* Stage drilldown: on a variant mismatch, re-run the cycle pipeline
   truncated after each stage (in topological order) under both plans on
   the same inputs, and report the first stage whose values diverge. *)

let with_output pipe id =
  let b = Pipeline.builder (Pipeline.name pipe) in
  Array.iter
    (fun (f : Func.t) ->
      ignore (Pipeline.add b (fun ~id ->
          assert (id = f.Func.id);
          f)))
    (Pipeline.funcs pipe);
  Pipeline.finish b ~outputs:[ Pipeline.func pipe id ]

let stage_grid pipe ~n id =
  let f = Pipeline.func pipe id in
  Grid.create
    (Array.map (fun s -> Sizeexpr.eval ~n s + 2) f.Func.sizes)

let drilldown cfg ~n ~opts ~v ~f ~budget =
  let pipe = Cycle.build cfg in
  let params = Cycle.params cfg ~n in
  let vin = Cycle.input_v pipe and fin = Cycle.input_f pipe in
  let nfuncs = Array.length (Pipeline.funcs pipe) in
  let run_stage id opts =
    let truncated = with_output pipe id in
    let plan = Plan.build truncated ~opts ~n ~params in
    let g = stage_grid pipe ~n id in
    Exec.with_runtime (fun rt ->
        Exec.run plan rt ~inputs:[ (vin, v); (fin, f) ] ~outputs:[ (id, g) ]);
    g
  in
  let rec scan id =
    if id >= nfuncs then None
    else
      let fn = Pipeline.func pipe id in
      if Func.is_input fn then scan (id + 1)
      else
        let d = grid_diff (run_stage id Options.naive) (run_stage id opts) in
        if d.max_abs > budget then Some (fn.Func.name, d.max_abs)
        else scan (id + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Differential oracle                                                  *)

type pair = {
  candidate : string;
  domains : int;
  max_abs : float;
  max_ulp : float;
  worst_cycle : int;  (* 1-based; 0 when no difference at all *)
  budget : float;
  pass : bool;
  first_bad_stage : (string * float) option;
}

type case = {
  bench : string;
  n : int;
  cycles : int;
  pairs : pair list;
}

let case_pass c = List.for_all (fun p -> p.pass) c.pairs

(* Lockstep comparison: every candidate cycle starts from the
   {e reference} iterate of the previous cycle, so each comparison
   isolates exactly one cycle's worth of divergence on identical
   inputs — differences cannot compound across cycles. *)
let lockstep ~refs ~f ~cycles step =
  let worst = ref no_diff and worst_cycle = ref 0 in
  for c = 1 to cycles do
    let out = Grid.create (Grid.extents refs.(0)) in
    step ~v:refs.(c - 1) ~f ~out;
    let d = grid_diff refs.(c) out in
    if d.max_abs > !worst.max_abs then begin
      worst := d;
      worst_cycle := c
    end
  done;
  (!worst, !worst_cycle)

let plan_variants =
  [ ("opt", Options.opt);
    ("opt+", Options.opt_plus);
    ("dtile-opt+", Options.dtile_opt_plus) ]

let oracle_case ?(budgets = default_budgets) ?(quick = false) cfg ~n ~cycles
    () =
  let dims = cfg.Cycle.dims in
  let prob = Problem.poisson ~dims ~n in
  let f = prob.Problem.f in
  (* reference: the naive plan on one domain, iterates v0..v_cycles *)
  let refs = Array.make (cycles + 1) prob.Problem.v in
  Exec.with_runtime (fun rt ->
      let step =
        Solver.plan_stepper (Solver.polymg_plan cfg ~n ~opts:Options.naive) ~rt
      in
      for c = 1 to cycles do
        let out = Grid.create (Grid.extents prob.Problem.v) in
        step ~v:refs.(c - 1) ~f ~out;
        refs.(c) <- out
      done);
  let pair ?(drill = None) candidate ~domains ~budget mk_step =
    let d, wc =
      Exec.with_runtime ~domains (fun rt ->
          lockstep ~refs ~f ~cycles (mk_step rt))
    in
    let pass = d.max_abs <= budget in
    let first_bad_stage =
      match (pass, drill) with
      | false, Some opts ->
        drilldown cfg ~n ~opts ~v:refs.(Int.max 0 (wc - 1)) ~f ~budget
      | _ -> None
    in
    { candidate; domains; max_abs = d.max_abs; max_ulp = d.max_ulp;
      worst_cycle = wc; budget; pass; first_bad_stage }
  in
  let domain_list = if quick then [ 1 ] else [ 1; 4 ] in
  let variant_pairs =
    List.concat_map
      (fun (vname, opts) ->
        List.map
          (fun domains ->
            pair vname ~drill:(Some opts) ~domains ~budget:budgets.vs_plan
              (fun rt ->
                Solver.plan_stepper (Solver.polymg_plan cfg ~n ~opts) ~rt))
          domain_list)
      plan_variants
  in
  (* the naive plan itself on 4 domains: same schedule, partitioned *)
  let naive_domains =
    if quick then []
    else
      [ pair "naive" ~domains:4 ~budget:budgets.vs_plan (fun rt ->
            Solver.plan_stepper
              (Solver.polymg_plan cfg ~n ~opts:Options.naive)
              ~rt) ]
  in
  let handopt_pairs =
    let smoothings =
      if quick then [ ("handopt", Handopt.Plain) ]
      else
        [ ("handopt", Handopt.Plain);
          ("handopt+pluto", Handopt.Pluto { sigma = 2 }) ]
    in
    List.map
      (fun (name, smoothing) ->
        pair name ~domains:1 ~budget:budgets.vs_handopt (fun rt ->
            Handopt.stepper
              (Handopt.create cfg ~n ~par:rt.Exec.par ~smoothing ())))
      smoothings
  in
  { bench = Cycle.bench_name cfg;
    n;
    cycles;
    pairs = variant_pairs @ naive_domains @ handopt_pairs }

let campaign_matrix ~quick =
  let smoothings = if quick then [ (4, 4, 4) ] else [ (4, 4, 4); (10, 0, 0) ] in
  let shapes = if quick then [ Cycle.V ] else [ Cycle.V; Cycle.W ] in
  List.concat_map
    (fun dims ->
      List.concat_map
        (fun shape ->
          List.map
            (fun sm ->
              (Cycle.default ~dims ~shape ~smoothing:sm,
               if dims = 2 then 32 else 16))
            smoothings)
        shapes)
    [ 2; 3 ]

let oracle_campaign ?(budgets = default_budgets) ?(quick = false) () =
  List.map
    (fun (cfg, n) -> oracle_case ~budgets ~quick cfg ~n ~cycles:3 ())
    (campaign_matrix ~quick)

(* ------------------------------------------------------------------ *)
(* Emitted-C run-equivalence                                            *)

type c_verdict =
  | C_ok of {
      compiler : string;
      bit_identical : bool;
      max_abs : float;
      max_ulp : float;
    }
  | C_fail of { reason : string; max_abs : float; max_ulp : float }
  | C_skip of string

let cc_available () =
  let ok c = Sys.command (c ^ " --version >/dev/null 2>&1") = 0 in
  if ok "gcc" then Some "gcc" else if ok "cc" then Some "cc" else None

let read_doubles path count =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let bytes = Bytes.create (8 * count) in
      really_input ic bytes 0 (8 * count);
      Array.init count (fun i ->
          Int64.float_of_bits (Bytes.get_int64_le bytes (8 * i))))

let with_temp_files f =
  let src = Filename.temp_file "polymg_conform" ".c" in
  let exe = Filename.temp_file "polymg_conform" ".exe" in
  let out = Filename.temp_file "polymg_conform" ".bin" in
  let log = Filename.temp_file "polymg_conform" ".log" in
  (* POLYMG_CONFORM_KEEP leaves the generated source/binary/log behind
     for postmortems on a C-equivalence failure *)
  let keep = Sys.getenv_opt "POLYMG_CONFORM_KEEP" <> None in
  Fun.protect
    ~finally:(fun () ->
      if keep then Printf.eprintf "[conform] kept artifacts: %s %s %s %s\n%!" src exe out log
      else
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ src; exe; out; log ])
    (fun () -> f ~src ~exe ~out ~log)

let first_log_line log =
  try
    let ic = open_in log in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> try input_line ic with End_of_file -> "")
  with Sys_error _ -> ""

let engine_reference (plan : Plan.t) =
  let n = plan.Plan.n in
  let pipe = plan.Plan.pipeline in
  let grid_of fid =
    let fn = Pipeline.func pipe fid in
    Grid.create (Array.map (fun s -> Sizeexpr.eval ~n s + 2) fn.Func.sizes)
  in
  let inputs =
    Array.to_list
      (Array.mapi
         (fun i fid ->
           let g = grid_of fid in
           Grid.fill_interior g ~f:(fill_val ~input:i);
           (fid, g))
         plan.Plan.inputs)
  in
  let outputs = List.map (fun (fid, _) -> (fid, grid_of fid)) plan.Plan.output_arrays in
  Exec.with_runtime (fun rt -> Exec.run plan rt ~inputs ~outputs);
  outputs

let c_equivalence ?(budget = default_budgets.vs_c) (plan : Plan.t) =
  match C_emit.driver_to_string plan with
  | Error e -> C_skip ("plan not renderable as a complete C program: " ^ e)
  | Ok source -> (
    match cc_available () with
    | None -> C_skip "no C compiler found (tried gcc, cc)"
    | Some cc ->
      with_temp_files (fun ~src ~exe ~out ~log ->
          let oc = open_out src in
          output_string oc source;
          close_out oc;
          let compile =
            Printf.sprintf "%s -O2 -std=c99 -ffp-contract=off -o %s %s -lm > %s 2>&1"
              cc (Filename.quote exe) (Filename.quote src) (Filename.quote log)
          in
          if Sys.command compile <> 0 then
            C_fail
              { reason =
                  Printf.sprintf "%s failed to compile the driver: %s" cc
                    (first_log_line log);
                max_abs = nan;
                max_ulp = nan }
          else
            let run =
              Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
                (Filename.quote out) (Filename.quote log)
            in
            let rc = Sys.command run in
            if rc <> 0 then
              C_fail
                { reason = Printf.sprintf "driver exited with code %d" rc;
                  max_abs = nan;
                  max_ulp = nan }
            else begin
              let outputs = engine_reference plan in
              let total =
                List.fold_left
                  (fun acc (_, g) -> acc + Grid.points g)
                  0 outputs
              in
              let c_vals = read_doubles out total in
              let d = ref no_diff and base = ref 0 in
              List.iter
                (fun (_, g) ->
                  let buf = g.Grid.buf in
                  let len = Repro_grid.Buf.len buf in
                  for i = 0 to len - 1 do
                    d :=
                      diff_acc !d (!base + i) (Repro_grid.Buf.get buf i)
                        c_vals.(!base + i)
                  done;
                  base := !base + len)
                outputs;
              if !d.max_abs <= budget then
                C_ok
                  { compiler = cc;
                    bit_identical = !d.max_abs = 0.0;
                    max_abs = !d.max_abs;
                    max_ulp = !d.max_ulp }
              else
                C_fail
                  { reason =
                      Printf.sprintf
                        "C output differs from the engine beyond %.1e" budget;
                    max_abs = !d.max_abs;
                    max_ulp = !d.max_ulp }
            end))

let c_campaign ?(budget = default_budgets.vs_c) ?(quick = false) () =
  let variants =
    if quick then [ ("naive", Options.naive); ("opt+", Options.opt_plus) ]
    else
      ("naive", Options.naive)
      :: ("dtile-opt+", Options.dtile_opt_plus)
      :: plan_variants
  in
  List.concat_map
    (fun (cfg, n) ->
      List.map
        (fun (vname, opts) ->
          let plan = Solver.polymg_plan cfg ~n ~opts in
          (Printf.sprintf "%s/%s" (Cycle.bench_name cfg) vname,
           c_equivalence ~budget plan))
        variants)
    (campaign_matrix ~quick)

let c_verdict_pass = function
  | C_ok _ | C_skip _ -> true
  | C_fail _ -> false

(* ------------------------------------------------------------------ *)
(* Backend axis: interpreter-vs-native lockstep                         *)

(* For each plan variant the reference iterates come from the
   interpreter running that same plan (at 1 and 4 domains), and the
   candidate is the dlopen'd native kernel compiled from it — so a
   mismatch is pinned to the backend, not to the schedule.  The native
   kernel is the emitted C under a different harness, so it shares the
   [vs_c] budget. *)
let native_case ?(budgets = default_budgets) ?(quick = false) cfg ~n ~cycles
    () =
  let dims = cfg.Cycle.dims in
  let prob = Problem.poisson ~dims ~n in
  let f = prob.Problem.f in
  let variants =
    if quick then [ ("naive", Options.naive); ("opt+", Options.opt_plus) ]
    else ("naive", Options.naive) :: plan_variants
  in
  let domain_list = if quick then [ 1 ] else [ 1; 4 ] in
  let pairs =
    List.concat_map
      (fun (vname, opts) ->
        let plan =
          Solver.polymg_plan cfg ~n ~opts:{ opts with Options.backend = Interp }
        in
        let pipe = plan.Plan.pipeline in
        let vin = Cycle.input_v pipe and fin = Cycle.input_f pipe in
        let out_id = Cycle.output pipe in
        match Native.load plan with
        | Error e ->
          (* a load failure is a conformance failure, not a skip: the
             campaign only runs when a compiler is present *)
          [ { candidate = "native:" ^ vname;
              domains = 1;
              max_abs = infinity;
              max_ulp = infinity;
              worst_cycle = 0;
              budget = budgets.vs_c;
              pass = false;
              first_bad_stage = Some ("native load: " ^ e, infinity) } ]
        | Ok kernel ->
          List.map
            (fun domains ->
              let refs = Array.make (cycles + 1) prob.Problem.v in
              Exec.with_runtime ~domains (fun rt ->
                  let step = Solver.plan_stepper plan ~rt in
                  for c = 1 to cycles do
                    let out = Grid.create (Grid.extents prob.Problem.v) in
                    step ~v:refs.(c - 1) ~f ~out;
                    refs.(c) <- out
                  done);
              let d, wc =
                lockstep ~refs ~f ~cycles (fun ~v ~f ~out ->
                    Native.run kernel
                      ~inputs:[ (vin, v); (fin, f) ]
                      ~outputs:[ (out_id, out) ])
              in
              { candidate = "native:" ^ vname;
                domains;
                max_abs = d.max_abs;
                max_ulp = d.max_ulp;
                worst_cycle = wc;
                budget = budgets.vs_c;
                pass = d.max_abs <= budgets.vs_c;
                first_bad_stage = None })
            domain_list)
      variants
  in
  { bench = Cycle.bench_name cfg; n; cycles; pairs }

let native_campaign ?(budgets = default_budgets) ?(quick = false) () =
  match Native.available () with
  | false -> Error "no C compiler found (tried gcc, cc)"
  | true ->
    Ok
      (List.map
         (fun (cfg, n) -> native_case ~budgets ~quick cfg ~n ~cycles:3 ())
         (campaign_matrix ~quick))

(* ------------------------------------------------------------------ *)
(* Method-of-manufactured-solutions convergence order                   *)

type mms = {
  m_dims : int;
  m_samples : (int * float) list;
  m_order : float;
}

(* 60 cycles: at the campaign's largest grids the V-cycle contraction
   is ~0.67/cycle, so the algebraic error lands around 1e-10 — far
   below the ~1e-4 discretization error whose decay we are measuring. *)
let mms_study ?(opts = Options.opt_plus) ?(cycles = 60) ~dims () =
  (* four levels in both ranks (coarsest interior stays valid down to
     n = 16): a shallower 3D hierarchy contracts at only ~0.9/cycle and
     never pushes the algebraic error below the discretization error,
     and an n = 8 sample is pre-asymptotic (observed order ~2.16) *)
  let levels = 4 in
  let ns = [ 16; 32; 64 ] in
  let cfg =
    { (Cycle.default ~dims ~shape:Cycle.V ~smoothing:(4, 4, 4)) with
      Cycle.levels }
  in
  let solve ~n =
    (Solver.solve cfg ~n ~opts ~cycles ~residuals:false ()).Solver.v
  in
  let exact ~n =
    let p = Problem.poisson ~dims ~n in
    p.Problem.exact
  in
  let samples = Verify.convergence_study ~solve ~exact ~ns in
  { m_dims = dims; m_samples = samples; m_order = Verify.observed_order samples }

let mms_pass m = Float.abs (m.m_order -. 2.0) <= 0.1

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)

let json_of_pair p =
  Json.Obj
    [ ("candidate", Json.Str p.candidate);
      ("domains", Json.num p.domains);
      ("max_abs", Json.Num p.max_abs);
      ("max_ulp", Json.Num p.max_ulp);
      ("worst_cycle", Json.num p.worst_cycle);
      ("budget", Json.Num p.budget);
      ("pass", Json.Bool p.pass);
      ( "first_bad_stage",
        match p.first_bad_stage with
        | None -> Json.Null
        | Some (stage, abs) ->
          Json.Obj [ ("stage", Json.Str stage); ("max_abs", Json.Num abs) ] )
    ]

let json_of_case c =
  Json.Obj
    [ ("bench", Json.Str c.bench);
      ("n", Json.num c.n);
      ("cycles", Json.num c.cycles);
      ("pass", Json.Bool (case_pass c));
      ("pairs", Json.Arr (List.map json_of_pair c.pairs)) ]

let json_of_c_verdict (name, v) =
  let fields =
    match v with
    | C_ok { compiler; bit_identical; max_abs; max_ulp } ->
      [ ("status", Json.Str "ok");
        ("compiler", Json.Str compiler);
        ("bit_identical", Json.Bool bit_identical);
        ("max_abs", Json.Num max_abs);
        ("max_ulp", Json.Num max_ulp) ]
    | C_fail { reason; max_abs; max_ulp } ->
      [ ("status", Json.Str "fail");
        ("reason", Json.Str reason);
        ("max_abs", Json.Num max_abs);
        ("max_ulp", Json.Num max_ulp) ]
    | C_skip reason ->
      [ ("status", Json.Str "skip"); ("reason", Json.Str reason) ]
  in
  Json.Obj (("case", Json.Str name) :: fields)

let json_of_mms m =
  Json.Obj
    [ ("dims", Json.num m.m_dims);
      ("order", Json.Num m.m_order);
      ("pass", Json.Bool (mms_pass m));
      ( "samples",
        Json.Arr
          (List.map
             (fun (n, e) ->
               Json.Obj [ ("n", Json.num n); ("error_l2", Json.Num e) ])
             m.m_samples) ) ]

let pp_pair fmt p =
  Format.fprintf fmt "%-18s dom=%d  max|Δ|=%.3e  ulp=%.1e  cycle=%d  %s" p.candidate
    p.domains p.max_abs p.max_ulp p.worst_cycle
    (if p.pass then "ok" else Printf.sprintf "FAIL (budget %.1e)" p.budget);
  match p.first_bad_stage with
  | Some (stage, abs) ->
    Format.fprintf fmt "@,    first diverging stage: %s (max|Δ|=%.3e)" stage abs
  | None -> ()

let pp_case fmt c =
  Format.fprintf fmt "@[<v2>%s (n=%d, %d cycles): %s@,%a@]" c.bench c.n
    c.cycles
    (if case_pass c then "PASS" else "FAIL")
    (Format.pp_print_list pp_pair)
    c.pairs

let pp_c_verdict fmt (name, v) =
  match v with
  | C_ok { compiler; bit_identical; max_abs; max_ulp } ->
    Format.fprintf fmt "%-28s ok (%s%s, max|Δ|=%.3e, ulp=%.1e)" name compiler
      (if bit_identical then ", bit-identical" else "")
      max_abs max_ulp
  | C_fail { reason; max_abs; _ } ->
    Format.fprintf fmt "%-28s FAIL: %s (max|Δ|=%.3e)" name reason max_abs
  | C_skip reason -> Format.fprintf fmt "%-28s skip: %s" name reason

let pp_mms fmt m =
  Format.fprintf fmt "@[<v2>MMS %dD: observed order %.3f (%s)@,%a@]" m.m_dims
    m.m_order
    (if mms_pass m then "ok" else "FAIL, want 2.0 +/- 0.1")
    (Format.pp_print_list (fun fmt (n, e) ->
         Format.fprintf fmt "n=%-3d  error_l2=%.6e" n e))
    m.m_samples
