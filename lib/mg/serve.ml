module Options = Repro_core.Options
module Govern = Repro_core.Govern
module Exec = Repro_core.Exec
module Plan = Repro_core.Plan
module Telemetry = Repro_runtime.Telemetry
module Metrics = Repro_runtime.Metrics
module Flightrec = Repro_runtime.Flightrec
module Watchdog = Repro_runtime.Watchdog
module Mempool = Repro_runtime.Mempool
module Json = Repro_runtime.Json

(* ------------------------------------------------------------------ *)
(* Requests and responses *)

type request = {
  rq_tenant : string;
  rq_dims : int;
  rq_n : int;
  rq_shape : Cycle.cycle_shape;
  rq_smoothing : int * int * int;
  rq_variant : string;
  rq_cycles : int;
  rq_tol : float option;
  rq_deadline_s : float option;
  rq_mem_budget : int option;
  rq_resume_dir : string option;
  rq_fault : string option;
}

let default_request =
  { rq_tenant = "anon";
    rq_dims = 2;
    rq_n = 64;
    rq_shape = Cycle.V;
    rq_smoothing = (4, 4, 4);
    rq_variant = "opt+";
    rq_cycles = 10;
    rq_tol = None;
    rq_deadline_s = None;
    rq_mem_budget = None;
    rq_resume_dir = None;
    rq_fault = None }

type status =
  | Ok
  | Invalid
  | Quarantined
  | Deadline
  | Faulted
  | Infeasible
  | Unresumable
  | Shed

let status_name = function
  | Ok -> "ok"
  | Invalid -> "invalid"
  | Quarantined -> "quarantined"
  | Deadline -> "deadline"
  | Faulted -> "faulted"
  | Infeasible -> "infeasible"
  | Unresumable -> "unresumable"
  | Shed -> "shed"

let status_of_name = function
  | "ok" -> Some Ok
  | "invalid" -> Some Invalid
  | "quarantined" -> Some Quarantined
  | "deadline" -> Some Deadline
  | "faulted" -> Some Faulted
  | "infeasible" -> Some Infeasible
  | "unresumable" -> Some Unresumable
  | "shed" -> Some Shed
  | _ -> None

(* The mg_solve exit-code table, plus 7 for the service-only shed. *)
let code_of_status = function
  | Ok -> 0
  | Invalid -> 2
  | Quarantined -> 3
  | Deadline -> 4
  | Faulted -> 4
  | Infeasible -> 5
  | Unresumable -> 6
  | Shed -> 7

type response = {
  rs_status : status;
  rs_code : int;
  rs_tenant : string;
  rs_cycles : int;
  rs_residual : float;
  rs_queue_s : float;
  rs_solve_s : float;
  rs_retry_after_s : float option;
  rs_plan_digest : string;
  rs_plan_cached : bool;
  rs_incidents : int;
  rs_detail : string;
}

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let max_frame_bytes = 1 lsl 20

let shape_name = function Cycle.V -> "V" | Cycle.W -> "W" | Cycle.F -> "F"

let shape_of_name = function
  | "V" -> Some Cycle.V
  | "W" -> Some Cycle.W
  | "F" -> Some Cycle.F
  | _ -> None

let opt_num = function Some v -> Json.Num v | None -> Json.Null
let opt_int = function Some v -> Json.num v | None -> Json.Null
let opt_str = function Some s -> Json.Str s | None -> Json.Null

let request_to_json rq =
  let n1, n2, n3 = rq.rq_smoothing in
  Json.Obj
    [ ("tenant", Json.Str rq.rq_tenant);
      ("dims", Json.num rq.rq_dims);
      ("n", Json.num rq.rq_n);
      ("shape", Json.Str (shape_name rq.rq_shape));
      ("smoothing", Json.Arr [ Json.num n1; Json.num n2; Json.num n3 ]);
      ("variant", Json.Str rq.rq_variant);
      ("cycles", Json.num rq.rq_cycles);
      ("tol", opt_num rq.rq_tol);
      ("deadline_s", opt_num rq.rq_deadline_s);
      ("mem_budget", opt_int rq.rq_mem_budget);
      ("resume_dir", opt_str rq.rq_resume_dir);
      ("fault", opt_str rq.rq_fault) ]

let mem name j = Json.member name j
let mem_str name j = Option.bind (mem name j) Json.to_str
let mem_int name j = Option.bind (mem name j) Json.to_int
let mem_float name j = Option.bind (mem name j) Json.to_float

let request_of_json j =
  match j with
  | Json.Obj _ ->
    let d = default_request in
    let smoothing =
      match mem "smoothing" j with
      | Some (Json.Arr [ a; b; c ]) -> (
        match (Json.to_int a, Json.to_int b, Json.to_int c) with
        | Some a, Some b, Some c -> Stdlib.Ok (a, b, c)
        | _ -> Error "smoothing must be three integers")
      | Some _ -> Error "smoothing must be three integers"
      | None -> Stdlib.Ok d.rq_smoothing
    in
    let shape =
      match mem_str "shape" j with
      | None -> Stdlib.Ok d.rq_shape
      | Some s -> (
        match shape_of_name s with
        | Some sh -> Stdlib.Ok sh
        | None -> Error (Printf.sprintf "unknown cycle shape %S" s))
    in
    (match (smoothing, shape) with
     | Error e, _ | _, Error e -> Error e
     | Stdlib.Ok smoothing, Stdlib.Ok shape ->
       Stdlib.Ok
         { rq_tenant = Option.value (mem_str "tenant" j) ~default:d.rq_tenant;
           rq_dims = Option.value (mem_int "dims" j) ~default:d.rq_dims;
           rq_n = Option.value (mem_int "n" j) ~default:d.rq_n;
           rq_shape = shape;
           rq_smoothing = smoothing;
           rq_variant =
             Option.value (mem_str "variant" j) ~default:d.rq_variant;
           rq_cycles = Option.value (mem_int "cycles" j) ~default:d.rq_cycles;
           rq_tol = mem_float "tol" j;
           rq_deadline_s = mem_float "deadline_s" j;
           rq_mem_budget = mem_int "mem_budget" j;
           rq_resume_dir = mem_str "resume_dir" j;
           rq_fault = mem_str "fault" j })
  | _ -> Error "request must be a JSON object"

let response_to_json rs =
  Json.Obj
    [ ("status", Json.Str (status_name rs.rs_status));
      ("code", Json.num rs.rs_code);
      ("tenant", Json.Str rs.rs_tenant);
      ("cycles", Json.num rs.rs_cycles);
      ("residual", Json.Num rs.rs_residual);
      ("queue_s", Json.Num rs.rs_queue_s);
      ("solve_s", Json.Num rs.rs_solve_s);
      ("retry_after_s", opt_num rs.rs_retry_after_s);
      ("plan_digest", Json.Str rs.rs_plan_digest);
      ("plan_cached", Json.Bool rs.rs_plan_cached);
      ("incidents", Json.num rs.rs_incidents);
      ("detail", Json.Str rs.rs_detail) ]

let response_of_json j =
  match j with
  | Json.Obj _ -> (
    match Option.bind (mem_str "status" j) status_of_name with
    | None -> Error "response missing a valid status"
    | Some st ->
      Stdlib.Ok
        { rs_status = st;
          rs_code = Option.value (mem_int "code" j) ~default:(code_of_status st);
          rs_tenant = Option.value (mem_str "tenant" j) ~default:"";
          rs_cycles = Option.value (mem_int "cycles" j) ~default:0;
          rs_residual = Option.value (mem_float "residual" j) ~default:Float.nan;
          rs_queue_s = Option.value (mem_float "queue_s" j) ~default:0.0;
          rs_solve_s = Option.value (mem_float "solve_s" j) ~default:0.0;
          rs_retry_after_s = mem_float "retry_after_s" j;
          rs_plan_digest = Option.value (mem_str "plan_digest" j) ~default:"";
          rs_plan_cached =
            (match mem "plan_cached" j with
             | Some (Json.Bool b) -> b
             | _ -> false);
          rs_incidents = Option.value (mem_int "incidents" j) ~default:0;
          rs_detail = Option.value (mem_str "detail" j) ~default:"" })
  | _ -> Error "response must be a JSON object"

let write_frame oc j =
  let s = Json.to_string j in
  let len = String.length s in
  if len > max_frame_bytes then invalid_arg "Serve.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (len land 0xff));
  output_bytes oc hdr;
  output_string oc s;
  flush oc

let read_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file -> None
  | hdr ->
    let b i = Char.code hdr.[i] in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame_bytes then
      (* refuse before buffering: framing is part of admission control *)
      Some
        (Error
           (Printf.sprintf "frame length %d exceeds the %d-byte limit" len
              max_frame_bytes))
    else (
      match really_input_string ic len with
      | exception End_of_file -> Some (Error "truncated frame")
      | body -> (
        match Json.parse body with
        | Stdlib.Ok j -> Some (Stdlib.Ok j)
        | Error e -> Some (Error e)))

(* ------------------------------------------------------------------ *)
(* Configuration *)

type tenant_config = {
  tc_rate : float;
  tc_burst : float;
  tc_queue_cap : int;
  tc_mem_budget : int option;
}

let default_tenant =
  { tc_rate = infinity; tc_burst = 64.0; tc_queue_cap = 64;
    tc_mem_budget = None }

type config = {
  sv_queue_cap : int;
  sv_workers : int;
  sv_domains : int;
  sv_default_tenant : tenant_config;
  sv_tenants : (string * tenant_config) list;
  sv_max_cycles : int;
  sv_max_n : int;
  sv_retry_after_s : float;
  sv_primary_retries : int;
  sv_retry_backoff : float;
  sv_allow_faults : bool;
  sv_backend : Options.backend;
  sv_clock : unit -> float;
}

let default_config =
  { sv_queue_cap = 256;
    sv_workers = 1;
    sv_domains = 1;
    sv_default_tenant = default_tenant;
    sv_tenants = [];
    sv_max_cycles = 64;
    sv_max_n = 1024;
    sv_retry_after_s = 0.05;
    sv_primary_retries = 1;
    sv_retry_backoff = 0.0;
    sv_allow_faults = false;
    sv_backend = Options.Interp;
    sv_clock = Unix.gettimeofday }

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let c_submitted = Telemetry.counter "serve.submitted"
let c_accepted = Telemetry.counter "serve.accepted"
let c_shed = Telemetry.counter "serve.shed"
let c_evicted = Telemetry.counter "serve.evicted"
let c_completed = Telemetry.counter "serve.completed"
let c_ok = Telemetry.counter "serve.ok"
let c_invalid = Telemetry.counter "serve.invalid"
let c_quarantined = Telemetry.counter "serve.quarantined"
let c_deadline = Telemetry.counter "serve.deadline"
let c_faulted = Telemetry.counter "serve.faulted"
let c_infeasible = Telemetry.counter "serve.infeasible"
let c_unresumable = Telemetry.counter "serve.unresumable"
let c_cache_hits = Telemetry.counter "serve.plan_cache_hits"
let c_cache_misses = Telemetry.counter "serve.plan_cache_misses"

let status_counter = function
  | Ok -> c_ok
  | Invalid -> c_invalid
  | Quarantined -> c_quarantined
  | Deadline -> c_deadline
  | Faulted -> c_faulted
  | Infeasible -> c_infeasible
  | Unresumable -> c_unresumable
  | Shed -> c_shed

(* ------------------------------------------------------------------ *)
(* Server state *)

type ticket = {
  tk_mu : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_resp : response option;
}

type pending_req = { p_req : request; p_submit : float; p_ticket : ticket }

type tenant_stats = {
  ts_accepted : int;
  ts_shed : int;
  ts_evicted : int;
  ts_completed : int;
}

type tenant = {
  tn_id : string;
  tn_cfg : tenant_config;
  mutable tn_tokens : float;
  mutable tn_refill_at : float;
  mutable tn_q : pending_req list;  (* oldest first *)
  mutable tn_in_ring : bool;
  mutable tn_accepted : int;
  mutable tn_shed : int;
  mutable tn_evicted : int;
  mutable tn_completed : int;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  work_cond : Condition.t;  (* queued work available / stopping *)
  idle_cond : Condition.t;  (* a request finished executing *)
  tenants : (string, tenant) Hashtbl.t;
  ring : string Queue.t;  (* round-robin order of tenants with work *)
  mutable n_pending : int;
  mutable n_busy : int;
  mutable stopped : bool;
  mutable workers : Thread.t list;
  cache_mu : Mutex.t;
  plan_cache : (string, (Govern.report, Govern.infeasible) result) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let new_ticket () =
  { tk_mu = Mutex.create (); tk_cond = Condition.create (); tk_resp = None }

let complete tk resp =
  Mutex.lock tk.tk_mu;
  tk.tk_resp <- Some resp;
  Condition.broadcast tk.tk_cond;
  Mutex.unlock tk.tk_mu

let await tk =
  Mutex.lock tk.tk_mu;
  while tk.tk_resp = None do
    Condition.wait tk.tk_cond tk.tk_mu
  done;
  let r = Option.get tk.tk_resp in
  Mutex.unlock tk.tk_mu;
  r

let peek tk =
  Mutex.lock tk.tk_mu;
  let r = tk.tk_resp in
  Mutex.unlock tk.tk_mu;
  r

let tenant_of t id =
  match Hashtbl.find_opt t.tenants id with
  | Some tn -> tn
  | None ->
    let cfg =
      Option.value
        (List.assoc_opt id t.cfg.sv_tenants)
        ~default:t.cfg.sv_default_tenant
    in
    let tn =
      { tn_id = id;
        tn_cfg = cfg;
        tn_tokens = cfg.tc_burst;
        tn_refill_at = t.cfg.sv_clock ();
        tn_q = [];
        tn_in_ring = false;
        tn_accepted = 0;
        tn_shed = 0;
        tn_evicted = 0;
        tn_completed = 0 }
    in
    Hashtbl.replace t.tenants id tn;
    tn

let refill t tn =
  if tn.tn_cfg.tc_rate = infinity then tn.tn_tokens <- tn.tn_cfg.tc_burst
  else begin
    let now = t.cfg.sv_clock () in
    let dt = max 0.0 (now -. tn.tn_refill_at) in
    tn.tn_refill_at <- now;
    tn.tn_tokens <-
      min tn.tn_cfg.tc_burst (tn.tn_tokens +. (dt *. tn.tn_cfg.tc_rate))
  end

let h_latency tenant =
  Metrics.histogram ~labels:[ ("tenant", tenant) ] "serve_latency_ns"

let h_queue_wait tenant =
  Metrics.histogram ~labels:[ ("tenant", tenant) ] "serve_queue_wait_ns"

let mk_response ?(cycles = 0) ?(residual = Float.nan) ?(queue_s = 0.0)
    ?(solve_s = 0.0) ?retry_after ?(digest = "") ?(cached = false)
    ?(incidents = 0) ~detail status tenant =
  { rs_status = status;
    rs_code = code_of_status status;
    rs_tenant = tenant;
    rs_cycles = cycles;
    rs_residual = residual;
    rs_queue_s = queue_s;
    rs_solve_s = solve_s;
    rs_retry_after_s = retry_after;
    rs_plan_digest = digest;
    rs_plan_cached = cached;
    rs_incidents = incidents;
    rs_detail = detail }

(* ------------------------------------------------------------------ *)
(* Admission *)

let heaviest_tenant t =
  Hashtbl.fold
    (fun _ tn best ->
      match best with
      | Some b when List.length b.tn_q >= List.length tn.tn_q -> best
      | _ -> if tn.tn_q = [] then best else Some tn)
    t.tenants None

(* Global queue full: drop the *newest* request of the heaviest tenant —
   the flooding tenant loses its own most recent work first, and older
   (fairer) requests keep their place. *)
let evict_one t =
  match heaviest_tenant t with
  | None -> ()
  | Some tn ->
    let rec split_last acc = function
      | [] -> (List.rev acc, None)
      | [ x ] -> (List.rev acc, Some x)
      | x :: rest -> split_last (x :: acc) rest
    in
    let keep, victim = split_last [] tn.tn_q in
    (match victim with
     | None -> ()
     | Some p ->
       tn.tn_q <- keep;
       t.n_pending <- t.n_pending - 1;
       tn.tn_evicted <- tn.tn_evicted + 1;
       Telemetry.add c_evicted 1;
       Telemetry.add c_shed 1;
       complete p.p_ticket
         (mk_response Shed tn.tn_id
            ~retry_after:t.cfg.sv_retry_after_s
            ~detail:"evicted: global queue full (heaviest tenant)"))

let submit t rq =
  Telemetry.add c_submitted 1;
  let tk = new_ticket () in
  Mutex.lock t.mu;
  if t.stopped then begin
    Mutex.unlock t.mu;
    complete tk (mk_response Shed rq.rq_tenant ~detail:"server shutting down");
    tk
  end
  else begin
    let tn = tenant_of t rq.rq_tenant in
    refill t tn;
    if tn.tn_tokens < 1.0 then begin
      tn.tn_shed <- tn.tn_shed + 1;
      Mutex.unlock t.mu;
      Telemetry.add c_shed 1;
      let retry_after =
        if tn.tn_cfg.tc_rate > 0.0 && tn.tn_cfg.tc_rate < infinity then
          (1.0 -. tn.tn_tokens) /. tn.tn_cfg.tc_rate
        else t.cfg.sv_retry_after_s
      in
      complete tk
        (mk_response Shed rq.rq_tenant ~retry_after
           ~detail:"shed: tenant token budget exhausted");
      tk
    end
    else if List.length tn.tn_q >= tn.tn_cfg.tc_queue_cap then begin
      tn.tn_shed <- tn.tn_shed + 1;
      Mutex.unlock t.mu;
      Telemetry.add c_shed 1;
      complete tk
        (mk_response Shed rq.rq_tenant ~retry_after:t.cfg.sv_retry_after_s
           ~detail:"shed: tenant queue full");
      tk
    end
    else begin
      if t.n_pending >= t.cfg.sv_queue_cap then evict_one t;
      tn.tn_tokens <- tn.tn_tokens -. 1.0;
      tn.tn_accepted <- tn.tn_accepted + 1;
      let p = { p_req = rq; p_submit = t.cfg.sv_clock (); p_ticket = tk } in
      tn.tn_q <- tn.tn_q @ [ p ];
      t.n_pending <- t.n_pending + 1;
      if not tn.tn_in_ring then begin
        Queue.push tn.tn_id t.ring;
        tn.tn_in_ring <- true
      end;
      Telemetry.add c_accepted 1;
      Condition.signal t.work_cond;
      Mutex.unlock t.mu;
      tk
    end
  end

(* Round-robin dequeue: one request from the next tenant with work, the
   tenant re-queued at the back while it still has more. *)
let rec take_locked t =
  match Queue.take_opt t.ring with
  | None -> None
  | Some id -> (
    let tn = tenant_of t id in
    match tn.tn_q with
    | [] ->
      tn.tn_in_ring <- false;
      take_locked t
    | p :: rest ->
      tn.tn_q <- rest;
      t.n_pending <- t.n_pending - 1;
      if rest = [] then tn.tn_in_ring <- false else Queue.push id t.ring;
      Some (tn, p))

(* ------------------------------------------------------------------ *)
(* Request execution *)

let validate t rq =
  let n1, n2, n3 = rq.rq_smoothing in
  if rq.rq_dims <> 2 && rq.rq_dims <> 3 then Error "dims must be 2 or 3"
  else if n1 < 0 || n2 < 0 || n3 < 0 || n1 + n2 + n3 = 0 then
    Error "smoothing steps must be non-negative and not all zero"
  else if n1 > 32 || n2 > 32 || n3 > 32 then
    Error "smoothing steps must be at most 32"
  else if rq.rq_cycles < 1 then Error "cycles must be at least 1"
  else if rq.rq_fault <> None && not t.cfg.sv_allow_faults then
    Error "fault injection is disabled on this server"
  else
    match rq.rq_fault with
    | Some f when f <> "nan" && f <> "crash" ->
      Error (Printf.sprintf "unknown fault kind %S" f)
    | _ -> (
      match Options.variant_of_string rq.rq_variant with
      | None -> Error (Printf.sprintf "unknown variant %S" rq.rq_variant)
      | Some opts ->
        let ccfg =
          Cycle.default ~dims:rq.rq_dims ~shape:rq.rq_shape
            ~smoothing:rq.rq_smoothing
        in
        let step = 1 lsl (ccfg.Cycle.levels - 1) in
        if rq.rq_n > t.cfg.sv_max_n then
          Error
            (Printf.sprintf "n %d exceeds the server maximum %d" rq.rq_n
               t.cfg.sv_max_n)
        else if rq.rq_n < Cycle.min_n ccfg || rq.rq_n mod step <> 0 then
          Error
            (Printf.sprintf "n must be a multiple of %d and at least %d" step
               (Cycle.min_n ccfg))
        else
          (* the backend is a daemon deployment property, not a request
             field: apply it here so every plan (and every governance
             ladder rung derived from these opts) inherits it *)
          Stdlib.Ok (ccfg, { opts with Options.backend = t.cfg.sv_backend }))

let cache_key t rq budget =
  let n1, n2, n3 = rq.rq_smoothing in
  Printf.sprintf "%dD|n%d|%s|%d-%d-%d|%s|%s|d%d" rq.rq_dims rq.rq_n
    (shape_name rq.rq_shape) n1 n2 n3 rq.rq_variant
    (match budget with None -> "-" | Some b -> string_of_int b)
    t.cfg.sv_domains

(* The shared plan cache: repeat shapes skip pipeline construction,
   planning, and the governance ladder walk.  Keyed by the full
   shape/variant/budget/domain signature, so a cached decision is exact
   for every request that hits it — including cached infeasibility. *)
let plan_decision t key build =
  Mutex.lock t.cache_mu;
  match Hashtbl.find_opt t.plan_cache key with
  | Some d ->
    t.cache_hits <- t.cache_hits + 1;
    Mutex.unlock t.cache_mu;
    Telemetry.add c_cache_hits 1;
    (true, d)
  | None ->
    let d =
      Fun.protect ~finally:(fun () -> Mutex.unlock t.cache_mu) (fun () ->
          let d = build () in
          Hashtbl.replace t.plan_cache key d;
          t.cache_misses <- t.cache_misses + 1;
          d)
    in
    Telemetry.add c_cache_misses 1;
    (false, d)

let chaos t rq primary =
  if not t.cfg.sv_allow_faults then primary
  else
    match rq.rq_fault with
    | Some "crash" ->
      fun ~v:_ ~f:_ ~out:_ -> failwith "injected crash (serve chaos hook)"
    | Some "nan" ->
      fun ~v ~f ~out ->
        primary ~v ~f ~out;
        let buf = out.Repro_grid.Grid.buf in
        Repro_grid.Buf.set buf (Repro_grid.Buf.len buf / 2) Float.nan
    | _ -> primary

let run_request t (p : pending_req) =
  let rq = p.p_req in
  let clock = t.cfg.sv_clock in
  let t_dequeue = clock () in
  let queue_s = max 0.0 (t_dequeue -. p.p_submit) in
  Metrics.observe (h_queue_wait rq.rq_tenant) (queue_s *. 1e9);
  let deadline_left =
    match rq.rq_deadline_s with None -> infinity | Some d -> d -. queue_s
  in
  let answer = mk_response ~queue_s in
  if deadline_left <= 0.0 then
    answer Deadline rq.rq_tenant ~detail:"deadline expired while queued"
  else
    match validate t rq with
    | Error msg -> answer Invalid rq.rq_tenant ~detail:msg
    | Stdlib.Ok (ccfg, opts0) -> (
      let resume =
        match rq.rq_resume_dir with
        | None -> Stdlib.Ok None
        | Some dir -> (
          match Checkpoint.load_latest ~dir with
          | Error msg -> Error msg
          | Stdlib.Ok r ->
            let st = r.Checkpoint.state in
            if st.Checkpoint.dims <> rq.rq_dims || st.Checkpoint.n <> rq.rq_n
            then
              Error
                (Printf.sprintf
                   "checkpoint is %dD n=%d, request is %dD n=%d"
                   st.Checkpoint.dims st.Checkpoint.n rq.rq_dims rq.rq_n)
            else Stdlib.Ok (Some st))
      in
      match resume with
      | Error msg ->
        answer Unresumable rq.rq_tenant ~detail:("resume: " ^ msg)
      | Stdlib.Ok resume ->
        let tn_cfg =
          Option.value
            (List.assoc_opt rq.rq_tenant t.cfg.sv_tenants)
            ~default:t.cfg.sv_default_tenant
        in
        let budget =
          match (rq.rq_mem_budget, tn_cfg.tc_mem_budget) with
          | Some a, Some b -> Some (min a b)
          | (Some _ as b), None | None, b -> b
        in
        let opts = { opts0 with Options.mem_budget = budget } in
        let n = rq.rq_n in
        let cached, decision =
          plan_decision t (cache_key t rq budget) (fun () ->
              Govern.decide ~domains:t.cfg.sv_domains (Cycle.build ccfg)
                ~opts ~n ~params:(Cycle.params ccfg ~n))
        in
        (match decision with
         | Error inf ->
           answer Infeasible rq.rq_tenant ~cached
             ~detail:
               (Printf.sprintf
                  "budget %d B below the ladder floor (%d B at rung %s)"
                  inf.Govern.inf_budget inf.Govern.floor_bytes
                  inf.Govern.floor_rung)
         | Stdlib.Ok report ->
           let rung = Govern.chosen report in
           let digest = Plan.digest rung.Govern.plan in
           let incidents_before = Flightrec.incident_count () in
           let problem = Problem.poisson ~dims:rq.rq_dims ~n in
           let problem, start_cycle =
             match resume with
             | Some st ->
               ({ problem with Problem.v = st.Checkpoint.v },
                st.Checkpoint.cycle + 1)
             | None -> (problem, 1)
           in
           let r =
             Exec.with_runtime ~domains:t.cfg.sv_domains @@ fun rt ->
             (match budget with
              | Some b when rung.Govern.ropts.Options.pool ->
                Mempool.set_budget rt.Exec.pool
                  (Some (max 1 (b - rung.Govern.scratch_bytes)))
              | _ -> ());
             Flightrec.note_plan ~digest
               ~variant:(Options.name rung.Govern.ropts);
             let primary =
               chaos t rq (Solver.plan_stepper rung.Govern.plan ~rt)
             in
             let fallback () =
               Solver.polymg_stepper ccfg ~n
                 ~opts:(Guard.fallback_opts rung.Govern.ropts)
                 ~rt
             in
             let policy =
               { Guard.default_policy with
                 Guard.tol = rq.rq_tol;
                 max_cycles =
                   min rq.rq_cycles t.cfg.sv_max_cycles + start_cycle - 1;
                 primary_retries = t.cfg.sv_primary_retries;
                 retry_backoff = t.cfg.sv_retry_backoff }
             in
             let run () =
               Guard.run ~policy ~start_cycle ~primary ~fallback ~problem ()
             in
             (* One in-flight solve owns the Watchdog's single armed
                slot, so a hung stage trips at a tile boundary instead
                of wedging the worker.  With concurrent workers the slot
                would be contended, so deadlines fall back to the
                wall-clock check below. *)
             match rq.rq_deadline_s with
             | Some _ when t.cfg.sv_workers <= 1 ->
               Watchdog.with_deadline
                 ~stage:(Printf.sprintf "request:%s" rq.rq_tenant)
                 ~budget_ns:
                   (max 1
                      (int_of_float (min deadline_left 9e9 *. 1e9)))
                 run
             | _ -> run ()
           in
           let solve_s = max 0.0 (clock () -. t_dequeue) in
           let deadline_blown =
             match rq.rq_deadline_s with
             | Some d -> queue_s +. solve_s > d
             | None -> false
           in
           let quarantined =
             List.exists
               (fun (e : Guard.event) ->
                 e.Guard.action = Guard.Quarantined_primary)
               r.Guard.events
           in
           let status =
             if deadline_blown then Deadline
             else
               match r.Guard.outcome with
               | Guard.Faulted _ -> Faulted
               | Guard.Converged | Guard.Exhausted | Guard.Stagnated ->
                 if quarantined then Quarantined else Ok
           in
           let detail =
             Printf.sprintf "%s; %d fault event(s), %d fallback cycle(s)"
               (Guard.outcome_name r.Guard.outcome)
               (List.length r.Guard.events)
               r.Guard.fallback_cycles
           in
           answer status rq.rq_tenant ~solve_s ~digest ~cached
             ~cycles:(List.length r.Guard.stats)
             ~residual:r.Guard.residual
             ~incidents:(Flightrec.incident_count () - incidents_before)
             ~detail))

let execute t tn p =
  let resp =
    try run_request t p
    with e ->
      (* isolation: an unexpected exception in one request must never
         take the worker (and with it the server) down *)
      mk_response Faulted p.p_req.rq_tenant
        ~detail:("internal error: " ^ Printexc.to_string e)
  in
  Telemetry.add c_completed 1;
  Telemetry.add (status_counter resp.rs_status) 1;
  Metrics.observe
    (h_latency p.p_req.rq_tenant)
    ((resp.rs_queue_s +. resp.rs_solve_s) *. 1e9);
  Mutex.lock t.mu;
  tn.tn_completed <- tn.tn_completed + 1;
  Mutex.unlock t.mu;
  complete p.p_ticket resp

let step t =
  Mutex.lock t.mu;
  match take_locked t with
  | None ->
    Mutex.unlock t.mu;
    false
  | Some (tn, p) ->
    t.n_busy <- t.n_busy + 1;
    Mutex.unlock t.mu;
    execute t tn p;
    Mutex.lock t.mu;
    t.n_busy <- t.n_busy - 1;
    Condition.broadcast t.idle_cond;
    Mutex.unlock t.mu;
    true

let worker t () =
  let rec loop () =
    Mutex.lock t.mu;
    let rec next () =
      match take_locked t with
      | Some got -> Some got
      | None ->
        if t.stopped then None
        else begin
          Condition.wait t.work_cond t.mu;
          next ()
        end
    in
    match next () with
    | None ->
      Mutex.unlock t.mu;
      ()
    | Some (tn, p) ->
      t.n_busy <- t.n_busy + 1;
      Mutex.unlock t.mu;
      execute t tn p;
      Mutex.lock t.mu;
      t.n_busy <- t.n_busy - 1;
      Condition.broadcast t.idle_cond;
      Mutex.unlock t.mu;
      loop ()
  in
  loop ()

let create ?(config = default_config) () =
  if config.sv_queue_cap < 1 then
    invalid_arg "Serve.create: queue cap must be at least 1";
  let t =
    { cfg = config;
      mu = Mutex.create ();
      work_cond = Condition.create ();
      idle_cond = Condition.create ();
      tenants = Hashtbl.create 16;
      ring = Queue.create ();
      n_pending = 0;
      n_busy = 0;
      stopped = false;
      workers = [];
      cache_mu = Mutex.create ();
      plan_cache = Hashtbl.create 16;
      cache_hits = 0;
      cache_misses = 0 }
  in
  t.workers <- List.init config.sv_workers (fun _ -> Thread.create (worker t) ());
  t

let solve t rq = await (submit t rq)

let pending t =
  Mutex.lock t.mu;
  let n = t.n_pending in
  Mutex.unlock t.mu;
  n

let drain t =
  if t.cfg.sv_workers = 0 then while step t do () done
  else begin
    Mutex.lock t.mu;
    while t.n_pending > 0 || t.n_busy > 0 do
      Condition.wait t.idle_cond t.mu
    done;
    Mutex.unlock t.mu
  end

let shutdown t =
  drain t;
  Mutex.lock t.mu;
  t.stopped <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.mu;
  List.iter Thread.join t.workers;
  t.workers <- []

let tenant_stats t id =
  Mutex.lock t.mu;
  let s =
    match Hashtbl.find_opt t.tenants id with
    | Some tn ->
      { ts_accepted = tn.tn_accepted;
        ts_shed = tn.tn_shed;
        ts_evicted = tn.tn_evicted;
        ts_completed = tn.tn_completed }
    | None ->
      { ts_accepted = 0; ts_shed = 0; ts_evicted = 0; ts_completed = 0 }
  in
  Mutex.unlock t.mu;
  s

let plan_cache_stats t =
  Mutex.lock t.cache_mu;
  let s = (t.cache_hits, t.cache_misses) in
  Mutex.unlock t.cache_mu;
  s
