open Repro_core
module Json = Repro_runtime.Json
module Telemetry = Repro_runtime.Telemetry
module Metrics = Repro_runtime.Metrics
module Roofline = Repro_runtime.Roofline

let plan_digest = Plan.digest

(* span name -> (total ns, count); diamond front time keyed by gid *)
let aggregate spans =
  let by_name : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let front_by_gid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Telemetry.span) ->
      let t, c =
        Option.value (Hashtbl.find_opt by_name s.Telemetry.name) ~default:(0, 0)
      in
      Hashtbl.replace by_name s.Telemetry.name
        (t + s.Telemetry.dur_ns, c + 1);
      if s.Telemetry.name = "diamond.front" then begin
        match List.assoc_opt "gid" s.Telemetry.args with
        | Some (Telemetry.Int gid) ->
          let t =
            Option.value (Hashtbl.find_opt front_by_gid gid) ~default:0
          in
          Hashtbl.replace front_by_gid gid (t + s.Telemetry.dur_ns)
        | _ -> ()
      end)
    spans;
  (by_name, front_by_gid)

let fnum f = if Float.is_finite f then Json.Num f else Json.Null

(* total measured ns for a stage over every execution in the span set:
   direct stage spans for tiled groups, flops-share attribution of the
   per-gid diamond front time for diamond groups *)
let measured_stage_ns ~by_name ~front_by_gid ~group_flops ~kinds
    (s : Cost.stage) =
  let diamond =
    match Hashtbl.find_opt kinds s.Cost.gid with
    | Some `Diamond -> true
    | _ -> false
  in
  if diamond then begin
    let front =
      Option.value (Hashtbl.find_opt front_by_gid s.Cost.gid) ~default:0
    in
    let total =
      Option.value (Hashtbl.find_opt group_flops s.Cost.gid) ~default:0.0
    in
    let share = if total > 0.0 then s.Cost.flops /. total else 0.0 in
    (float_of_int front *. share, true)
  end
  else
    match Hashtbl.find_opt by_name ("stage:" ^ s.Cost.name) with
    | Some (t, _) -> (float_of_int t, false)
    | None -> (0.0, false)

let stage_json ~execs ~by_name ~front_by_gid ~group_flops ~kinds
    ~(roofline : Roofline.t) (s : Cost.stage) =
  let ai = Cost.stage_intensity s in
  let measured_ns, attributed =
    measured_stage_ns ~by_name ~front_by_gid ~group_flops ~kinds s
  in
  let per_exec = float_of_int execs in
  let achieved_gbs =
    if measured_ns > 0.0 then
      float_of_int (Cost.stage_bytes s) *. per_exec /. measured_ns
    else nan
  in
  let achieved_gflops =
    if measured_ns > 0.0 then s.Cost.flops *. per_exec /. measured_ns else nan
  in
  let roof =
    if Float.is_finite ai then Roofline.roof_gflops roofline ~intensity:ai
    else roofline.Roofline.gflops
  in
  Json.Obj
    [ ("name", Json.Str s.Cost.name);
      ("gid", Json.num s.Cost.gid);
      ( "predicted",
        Json.Obj
          [ ("points", Json.num s.Cost.points);
            ("domain", Json.num s.Cost.domain);
            ("flops_per_point", Json.Num s.Cost.flops_per_point);
            ("flops", Json.Num s.Cost.flops);
            ("dram_read_bytes", Json.num s.Cost.dram_read);
            ("dram_write_bytes", Json.num s.Cost.dram_write);
            ("scratch_read_bytes", Json.num s.Cost.scratch_read);
            ("scratch_write_bytes", Json.num s.Cost.scratch_write);
            ("intensity", fnum ai) ] );
      ( "measured",
        Json.Obj
          [ ("ns", Json.Num measured_ns);
            ("execs", Json.num execs);
            ("attributed", Json.Bool attributed);
            ("achieved_gbs", fnum achieved_gbs);
            ("achieved_gflops", fnum achieved_gflops);
            ("roof_gflops", fnum roof);
            ( "roofline_fraction",
              fnum
                (if roof > 0.0 && Float.is_finite achieved_gflops then
                   achieved_gflops /. roof
                 else nan) ) ] ) ]

let status_str (s : Solver.cycle_stats) = Solver.status_name s.Solver.status

let build ~health ~cfg ~n ~variant ~domains ~cost ~plan ~stats ~total_seconds
    ~spans ~counters ~(roofline : Roofline.t) =
  let by_name, front_by_gid = aggregate spans in
  let execs =
    match Hashtbl.find_opt by_name "exec.run" with Some (_, c) -> c | None -> 0
  in
  let plan_json =
    match plan with
    | None -> Json.Null
    | Some p ->
      Json.Obj
        [ ("digest", Json.Str (plan_digest p));
          ("groups", Json.num (Plan.group_count p));
          ("members", Json.num (Plan.member_count p));
          ("arrays", Json.num (Plan.array_count p));
          ("array_bytes", Json.num (Plan.total_array_bytes p));
          ( "scratch_bytes_per_thread",
            Json.num (Plan.scratch_bytes_per_thread p) ) ]
  in
  let cost_json, stages_json, groups_json, calibration_json =
    match cost with
    | None -> (Json.Null, Json.Arr [], Json.Arr [], Json.Null)
    | Some c ->
      let kinds = Hashtbl.create 8 in
      let group_flops = Hashtbl.create 8 in
      Array.iter
        (fun (g : Cost.group) -> Hashtbl.replace kinds g.Cost.g_gid g.Cost.kind)
        c.Cost.groups;
      Array.iter
        (fun (s : Cost.stage) ->
          let t =
            Option.value (Hashtbl.find_opt group_flops s.Cost.gid) ~default:0.0
          in
          Hashtbl.replace group_flops s.Cost.gid (t +. s.Cost.flops))
        c.Cost.stages;
      ( Json.Obj
          [ ("dram_read_bytes", Json.num c.Cost.dram_read);
            ("dram_write_bytes", Json.num c.Cost.dram_write);
            ("scratch_traffic_bytes", Json.num c.Cost.scratch_traffic);
            ("flops", Json.Num c.Cost.flops);
            ("useful_flops", Json.Num c.Cost.useful_flops);
            ("intensity", fnum c.Cost.intensity) ],
        Json.Arr
          (Array.to_list
             (Array.map
                (stage_json ~execs ~by_name ~front_by_gid ~group_flops ~kinds
                   ~roofline)
                c.Cost.stages)),
        Json.Arr
          (Array.to_list
             (Array.map
                (fun (g : Cost.group) ->
                  Json.Obj
                    [ ("gid", Json.num g.Cost.g_gid);
                      ( "kind",
                        Json.Str
                          (match g.Cost.kind with
                           | `Tiled -> "tiled"
                           | `Diamond -> "diamond") );
                      ("working_set_bytes", Json.num g.Cost.working_set);
                      ("fits_in", Json.Str g.Cost.fits_in);
                      ("redundancy", Json.Num g.Cost.redundancy);
                      ( "stages",
                        Json.Arr
                          (List.map (fun s -> Json.Str s) g.Cost.stage_names)
                      ) ])
                c.Cost.groups)),
        Calibrate.calibration_block ~roofline ~cost:c
          ~measured_ns:(fun s ->
            let t, attributed =
              measured_stage_ns ~by_name ~front_by_gid ~group_flops ~kinds s
            in
            ( (if execs > 0 then t /. float_of_int execs else 0.0),
              attributed ))
          () )
  in
  let cycles_json =
    Json.Arr
      (List.map
         (fun (s : Solver.cycle_stats) ->
           Json.Obj
             [ ("cycle", Json.num s.Solver.cycle);
               ("residual", fnum s.Solver.residual);
               ("seconds", Json.Num s.Solver.seconds);
               ("status", Json.Str (status_str s)) ])
         stats)
  in
  Json.Obj
    [ ("schema", Json.Str "polymg.metrics/1");
      ( "config",
        Json.Obj
          [ ("bench", Json.Str (Cycle.bench_name cfg));
            ("dims", Json.num cfg.Cycle.dims);
            ("n", Json.num n);
            ("levels", Json.num cfg.Cycle.levels);
            ("variant", Json.Str variant);
            ("domains", Json.num domains);
            ("cycles", Json.num (List.length stats)) ] );
      ( "roofline",
        Json.Obj
          [ ("bandwidth_gbs", Json.Num roofline.Roofline.bandwidth_gbs);
            ("gflops", Json.Num roofline.Roofline.gflops) ] );
      ("plan", plan_json);
      ("cost", cost_json);
      ("stages", stages_json);
      ("groups", groups_json);
      ("calibration", calibration_json);
      ("cycles", cycles_json);
      ("total_seconds", Json.Num total_seconds);
      ( "health",
        match health with
        | Some h -> Health.to_json h
        | None -> Json.Null );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) counters) );
      ("metrics", Metrics.to_json ()) ]

let write ~path doc =
  (* atomic replacement (temp + fsync + rename): a crash mid-dump can
     not leave a torn metrics document for compare.exe to trip on *)
  Repro_runtime.Snapshot.atomic_write_string ~path (Json.to_string doc ^ "\n")
