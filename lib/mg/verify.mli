(** Independent numerical checks, written directly against grids (no DSL
    machinery) so they validate the execution engine rather than share
    code with it.  All checks support rectangular interiors: per-dim
    sizes are taken from the grid extents, and a grid with no interior is
    rejected with [Invalid_argument] rather than silently skipped. *)

val residual_l2 : n:int -> v:Repro_grid.Grid.t -> f:Repro_grid.Grid.t -> float
(** L2 norm of [f − A_h v] for the Poisson operator [A = −∇²_h] at grid
    spacing [h = 1/n]; rank taken from the grids (2 or 3). *)

val error_l2 : v:Repro_grid.Grid.t -> exact:(int array -> float) -> float
(** L2 norm of [v − exact] over interior points. *)

val apply_poisson :
  n:int -> v:Repro_grid.Grid.t -> out:Repro_grid.Grid.t -> unit
(** [out ← A_h v] on the interior; [v] and [out] must share extents. *)

(** {2 Method-of-manufactured-solutions convergence verification}

    Solve the same problem at a ladder of sizes against a known exact
    solution; the discrete L2 error of a second-order discretization must
    shrink as [h² = n⁻²].  This catches whole-family discretization bugs
    (wrong stencil scaling, off-by-h boundary handling) that differential
    variant-vs-variant testing can never see, because every variant would
    be wrong in the same way. *)

val convergence_study :
  solve:(n:int -> Repro_grid.Grid.t) ->
  exact:(n:int -> int array -> float) ->
  ns:int list ->
  (int * float) list
(** [(n, error_l2)] per requested size, via the caller's solver. *)

val pairwise_orders : (int * float) list -> float list
(** Observed order between consecutive samples:
    [log(e_coarse/e_fine) / log(n_fine/n_coarse)].
    @raise Invalid_argument on non-increasing [n] or non-positive error. *)

val observed_order : (int * float) list -> float
(** Mean of {!pairwise_orders}; ≈ 2 for a correct second-order solver.
    @raise Invalid_argument with fewer than two samples. *)
