(** Conformance harness: the repo's answer to "do all the variants
    actually compute the same thing?" (the paper's §7 validation premise).

    Three independent legs, combined by [bench/conformance.exe] and the
    [mg_solve --conform] / [polymg_dump --what conform] CLIs:

    - a {b differential oracle} running every plan variant (and the
      hand-optimized baselines) in lockstep against the naive plan —
      every candidate cycle starts from the {e reference} iterate, so a
      mismatch is pinned to one cycle, and a stage-level drilldown then
      pins it to the first diverging stage;
    - {b emitted-C run-equivalence}: the C driver from
      {!Repro_core.C_emit.driver_to_string} is compiled (gcc, falling
      back to cc), executed, and its binary grid dump diffed against the
      engine on identically filled inputs;
    - {b MMS convergence verification}: solving the manufactured Poisson
      problem at a ladder of sizes must show second-order error decay —
      the one check that catches bugs shared by {e every} variant.

    Tolerances are centralized in {!budgets} and documented in
    TESTING.md. *)

(** {2 Difference metrics} *)

val ulps : float -> float -> float
(** ULP distance between two doubles ([0.] iff equal, [infinity] when
    either is NaN); finite values use the order-preserving integer
    mapping of the bit patterns, so the metric is meaningful across
    zero. *)

type diff = {
  max_abs : float;  (** worst absolute difference; [infinity] on NaN *)
  max_ulp : float;  (** ULP distance at the worst point *)
  worst : int;  (** flat buffer index of the worst point; [-1] if none *)
}

val grid_diff : Repro_grid.Grid.t -> Repro_grid.Grid.t -> diff
(** Whole-buffer comparison, ghosts included; extents must match. *)

(** {2 Tolerance budgets} *)

type budgets = {
  vs_plan : float;
      (** plan variants vs the naive plan: same compiled kernels, only
          walk specialization reorders arithmetic *)
  vs_handopt : float;
      (** vs the hand-written baselines: independent implementation *)
  vs_c : float;  (** emitted C vs the engine *)
}

val default_budgets : budgets

(** {2 Deterministic fill} *)

val fill_val : input:int -> int array -> float
(** The OCaml twin of the emitted driver's [fill_val]: FNV-1a over
    (input index, multi-index), folded to a 20-bit value in [-0.5, 0.5)
    that is exact in double on both sides. *)

(** {2 Differential oracle} *)

type pair = {
  candidate : string;
  domains : int;
  max_abs : float;
  max_ulp : float;
  worst_cycle : int;  (** 1-based; [0] when no difference at all *)
  budget : float;
  pass : bool;
  first_bad_stage : (string * float) option;
      (** drilldown result on failure: first diverging stage and its
          worst absolute difference (plan variants only) *)
}

type case = {
  bench : string;  (** {!Cycle.bench_name} *)
  n : int;
  cycles : int;
  pairs : pair list;
}

val case_pass : case -> bool

val oracle_case :
  ?budgets:budgets -> ?quick:bool -> Cycle.config -> n:int -> cycles:int ->
  unit -> case
(** Runs the naive reference, then every candidate in lockstep.  [quick]
    restricts to one domain and the plain handopt baseline. *)

val campaign_matrix : quick:bool -> (Cycle.config * int) list
(** {2D, 3D} × {V, W} × smoothing {4-4-4, 10-0-0} with the campaign's
    problem sizes; [quick] keeps only V-4-4-4 per rank. *)

val oracle_campaign : ?budgets:budgets -> ?quick:bool -> unit -> case list

(** {2 Emitted-C run-equivalence} *)

type c_verdict =
  | C_ok of {
      compiler : string;
      bit_identical : bool;
      max_abs : float;
      max_ulp : float;
    }
  | C_fail of { reason : string; max_abs : float; max_ulp : float }
  | C_skip of string
      (** no compiler on PATH, or the plan is not renderable as a
          complete program *)

val cc_available : unit -> string option
(** First of [gcc], [cc] that answers [--version]. *)

val c_equivalence : ?budget:float -> Repro_core.Plan.t -> c_verdict
(** Emits the driver, compiles it ([-O2 -std=c99 -ffp-contract=off]),
    runs it, and diffs the dumped grids — ghosts included — against
    {!Repro_core.Exec.run} on identically filled inputs. *)

val c_campaign : ?budget:float -> ?quick:bool -> unit -> (string * c_verdict) list

val c_verdict_pass : c_verdict -> bool
(** Skips count as passing (they are reported, not hidden). *)

(** {2 Backend axis: interpreter vs native} *)

val native_case :
  ?budgets:budgets -> ?quick:bool -> Cycle.config -> n:int -> cycles:int ->
  unit -> case
(** Lockstep differential oracle across the backend axis: for every
    plan variant, the reference iterates come from the interpreter
    running that plan (at 1 and 4 domains unless [quick]), and the
    candidate (named [native:<variant>]) is the dlopen'd kernel
    {!Repro_core.Native} compiled from the same plan, judged against
    the [vs_c] budget.  A kernel that fails to load is reported as a
    failing pair — the case assumes a compiler is present. *)

val native_campaign :
  ?budgets:budgets -> ?quick:bool -> unit -> (case list, string) result
(** The backend axis over {!campaign_matrix}.  [Error reason] when no C
    compiler is available, so callers surface a visible skip instead of
    a silent pass. *)

(** {2 MMS convergence order} *)

type mms = { m_dims : int; m_samples : (int * float) list; m_order : float }

val mms_study :
  ?opts:Repro_core.Options.t -> ?cycles:int -> dims:int -> unit -> mms

val mms_pass : mms -> bool
(** Observed order within [2.0 ± 0.1]. *)

(** {2 Reporting} *)

val json_of_case : case -> Repro_runtime.Json.t
val json_of_c_verdict : string * c_verdict -> Repro_runtime.Json.t
val json_of_mms : mms -> Repro_runtime.Json.t

val pp_case : Format.formatter -> case -> unit
val pp_c_verdict : Format.formatter -> string * c_verdict -> unit
val pp_mms : Format.formatter -> mms -> unit
