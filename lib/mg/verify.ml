module Grid = Repro_grid.Grid

(* Interior sizes per dimension.  Grids carry one ghost layer per side,
   so the interior along dim k is [1 .. extents.(k) - 2]; rectangular
   interiors are supported throughout (a grid with any extent < 3 has no
   interior and is rejected loudly rather than silently looped over). *)
let interior_sizes g =
  let ext = Grid.extents g in
  Array.iter
    (fun e ->
      if e < 3 then
        invalid_arg
          (Printf.sprintf "Verify: extent %d leaves no interior" e))
    ext;
  Array.map (fun e -> e - 2) ext

let apply_poisson ~n ~v ~out =
  let invhsq = float_of_int (n * n) in
  if Grid.extents v <> Grid.extents out then
    invalid_arg "Verify.apply_poisson: v and out extents differ";
  let sz = interior_sizes v in
  match Grid.dims v with
  | 2 ->
    for i = 1 to sz.(0) do
      for j = 1 to sz.(1) do
        let c = Grid.get2 v i j in
        let s =
          (4.0 *. c) -. Grid.get2 v (i - 1) j -. Grid.get2 v (i + 1) j
          -. Grid.get2 v i (j - 1) -. Grid.get2 v i (j + 1)
        in
        Grid.set2 out i j (invhsq *. s)
      done
    done
  | 3 ->
    for i = 1 to sz.(0) do
      for j = 1 to sz.(1) do
        for k = 1 to sz.(2) do
          let c = Grid.get3 v i j k in
          let s =
            (6.0 *. c) -. Grid.get3 v (i - 1) j k -. Grid.get3 v (i + 1) j k
            -. Grid.get3 v i (j - 1) k -. Grid.get3 v i (j + 1) k
            -. Grid.get3 v i j (k - 1) -. Grid.get3 v i j (k + 1)
          in
          Grid.set3 out i j k (invhsq *. s)
        done
      done
    done
  | _ -> invalid_arg "Verify.apply_poisson: rank must be 2 or 3"

let residual_l2 ~n ~v ~f =
  let av = Grid.create (Grid.extents v) in
  apply_poisson ~n ~v ~out:av;
  let sum = ref 0.0 and count = ref 0 in
  Grid.iter_interior f ~f:(fun idx fv ->
      let r = fv -. Grid.get av idx in
      sum := !sum +. (r *. r);
      incr count);
  if !count = 0 then 0.0 else sqrt (!sum /. float_of_int !count)

let error_l2 ~v ~exact =
  let sum = ref 0.0 and count = ref 0 in
  Grid.iter_interior v ~f:(fun idx value ->
      let e = value -. exact idx in
      sum := !sum +. (e *. e);
      incr count);
  if !count = 0 then 0.0 else sqrt (!sum /. float_of_int !count)

(* --- Method-of-manufactured-solutions convergence verification --- *)

let convergence_study ~solve ~exact ~ns =
  List.map
    (fun n ->
      let v = solve ~n in
      (n, error_l2 ~v ~exact:(exact ~n)))
    ns

let pairwise_orders samples =
  let rec go = function
    | (nc, ec) :: ((nf, ef) :: _ as rest) ->
      if nf <= nc then invalid_arg "Verify: ns must be strictly increasing";
      if ec <= 0.0 || ef <= 0.0 then
        invalid_arg "Verify: non-positive error in convergence study";
      (* e ∝ h^p = n^{-p}  ⇒  p = log(e_c/e_f) / log(n_f/n_c) *)
      (log (ec /. ef) /. log (float_of_int nf /. float_of_int nc)) :: go rest
    | _ -> []
  in
  go samples

let observed_order samples =
  match pairwise_orders samples with
  | [] -> invalid_arg "Verify.observed_order: need at least two samples"
  | orders ->
    List.fold_left ( +. ) 0.0 orders /. float_of_int (List.length orders)
