(** Convergence observatory: per-level numerical diagnostics.

    Where {!Verify} answers "is the answer right" and {!Guard} answers
    "did the solve survive", this module answers "is the multigrid
    {e healthy}": is each level pulling its weight, how fast is the
    cycle contracting, and if convergence stalls, {e which level}
    stopped reducing its residual and when.

    The observatory runs a sequential reference V/W-cycle (the
    {!Kernels} path, the same per-level sizes and Jacobi weights as
    {!Handopt}) instrumented at every level visit: the level residual
    norm is measured on entry ([pre]), after pre-smoothing ([mid]) and
    after coarse correction + post-smoothing ([post]).  From those
    series it derives the standard multigrid health numbers:

    - {e convergence factor} per cycle: [r_c / r_(c-1)] on the finest
      grid, and the {e asymptotic} factor — the geometric mean over the
      last half of the cycles still above the round-off floor (early
      cycles flatter the factor; late ones sit in noise).
    - {e smoothing rate} per level: geometric mean of [mid/pre] — how
      much one pre-smoothing phase contracts that level's residual.
    - {e stall attribution}: the first cycle after which a level's
      [post] residual stopped improving (relative drop below 0.1%)
      while still above the floor, i.e. "level 3 stopped reducing its
      residual at cycle 7".

    Like {!Handopt}, only Jacobi-smoothed V and W cycles are supported
    ([Invalid_argument] otherwise).  The probe is diagnostic: it runs
    its own iterate, never touching the production solve's state. *)

type visit = {
  cycle : int;  (** 1-based cycle this visit belongs to *)
  pre : float;  (** level residual norm entering the visit *)
  mid : float;  (** after pre-smoothing (= [post] at the coarsest) *)
  post : float;  (** after coarse correction + post-smoothing *)
}

type level_diag = {
  level : int;  (** 0 = coarsest *)
  nl : int;  (** interior size at this level *)
  visits : visit array;  (** in execution order; W-cycles revisit *)
  smoothing_rate : float;  (** geometric mean of [mid/pre] *)
  level_factor : float;  (** geometric mean of [post/pre] *)
  stalled_at : int option;  (** cycle the level stopped improving *)
}

type report = {
  bench : string;  (** e.g. ["V-2D-4-4-4"] *)
  dims : int;
  n : int;
  levels : int;
  cycles : int;
  residual0 : float;  (** finest residual norm of the initial guess *)
  residuals : float array;  (** finest residual norm after each cycle *)
  cycle_factors : float array;  (** [residuals.(c) / previous] *)
  asymptotic_factor : float;
  level_diags : level_diag array;  (** index 0 = coarsest *)
  stalled_level : int option;  (** earliest-stalling level, if any *)
}

val observe :
  Cycle.config -> n:int -> cycles:int -> ?problem:Problem.t -> unit -> report
(** Runs [cycles] reference cycles on [problem] (default: the standard
    Poisson problem) and returns the full diagnostic report.
    @raise Invalid_argument for F-cycles, GSRB smoothing, or [n] not
    divisible by [2^(levels-1)]. *)

val pp : Format.formatter -> report -> unit
(** Human-readable health table ([mg_solve --health]). *)

val to_json : report -> Repro_runtime.Json.t
(** The ["health"] block embedded in the metrics document. *)

val healthy : ?max_factor:float -> report -> (unit, string list) result
(** Range check for the conformance campaign: the asymptotic convergence
    factor must be finite, positive and at most [max_factor] (default
    0.75 — the standard Poisson configs measure ~0.22 (W-2D) to ~0.67
    (V-2D)), the final residual must have dropped, and no level may
    stall while the solve is above the round-off floor.  [Error]
    carries one message per violated check. *)
