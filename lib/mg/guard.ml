module Grid = Repro_grid.Grid
module Buf = Repro_grid.Buf
module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Watchdog = Repro_runtime.Watchdog
module Json = Repro_runtime.Json
open Repro_core

type policy = {
  tol : float option;
  max_cycles : int;
  divergence_factor : float;
  stagnation_eps : float;
  stagnation_window : int;
  max_primary_faults : int;
  primary_retries : int;
  retry_backoff : float;
}

let default_policy =
  { tol = None;
    max_cycles = 50;
    divergence_factor = 1e3;
    stagnation_eps = 1e-3;
    stagnation_window = 3;
    max_primary_faults = 2;
    primary_retries = 0;
    retry_backoff = 0.0 }

type fault = Fault_nan | Fault_diverged | Fault_crash of string

let fault_name = function
  | Fault_nan -> "nan"
  | Fault_diverged -> "divergence"
  | Fault_crash _ -> "crash"

type action =
  | Primary_retry
  | Fallback_retry
  | Quarantined_primary
  | Gave_up

let action_name = function
  | Primary_retry -> "retried on primary plan after backoff"
  | Fallback_retry -> "retried on fallback plan"
  | Quarantined_primary -> "primary plan quarantined, staying on fallback"
  | Gave_up -> "gave up"

type event = { cycle : int; fault : fault; action : action }

type outcome =
  | Converged
  | Exhausted
  | Stagnated
  | Faulted of fault

let outcome_name = function
  | Converged -> "converged"
  | Exhausted -> "max-cycles"
  | Stagnated -> "stagnated"
  | Faulted f -> "faulted:" ^ fault_name f

type result = {
  stats : Solver.cycle_stats list;
  v : Grid.t;
  residual : float;
  outcome : outcome;
  events : event list;
  fallback_cycles : int;
  total_seconds : float;
}

let c_cycles = Telemetry.counter "guard.cycles"
let c_nan = Telemetry.counter "guard.nan_detected"
let c_div = Telemetry.counter "guard.divergence_detected"
let c_crash = Telemetry.counter "guard.crash_detected"
let c_rollbacks = Telemetry.counter "guard.rollbacks"
let c_switch = Telemetry.counter "guard.fallback_switches"
let c_fb_cycles = Telemetry.counter "guard.fallback_cycles"
let c_early = Telemetry.counter "guard.early_stops"
let c_stag_stop = Telemetry.counter "guard.stagnation_stops"
let c_retries = Telemetry.counter "govern.primary_retries"
let c_disk_restore = Telemetry.counter "guard.checkpoint_disk_restores"

type checkpoint_sink = {
  ck_accept :
    cycle:int -> residual:float -> v:Grid.t ->
    stats:Solver.cycle_stats list -> unit;
  ck_restore : unit -> (int * float * Grid.t) option;
}

let count_fault = function
  | Fault_nan -> Telemetry.add c_nan 1
  | Fault_diverged -> Telemetry.add c_div 1
  | Fault_crash _ -> Telemetry.add c_crash 1

let run ?(policy = default_policy) ?checkpoint ?(start_cycle = 1) ~primary
    ?fallback ~(problem : Problem.t) () =
  if policy.max_cycles < 1 then
    invalid_arg "Guard.run: max_cycles must be >= 1";
  if start_cycle < 1 then invalid_arg "Guard.run: start_cycle must be >= 1";
  if policy.primary_retries < 0 then
    invalid_arg "Guard.run: primary_retries must be >= 0";
  if policy.retry_backoff < 0.0 then
    invalid_arg "Guard.run: retry_backoff must be >= 0";
  let cur = ref (Grid.copy problem.Problem.v) in
  let next = ref (Grid.create (Grid.extents problem.Problem.v)) in
  (* Checkpoint of the last-good iterate.  [cur] is only advanced on an
     accepted cycle, but the explicit copy also survives steppers that
     scribble on their [v] argument. *)
  let good = Grid.copy !cur in
  let r0 =
    Verify.residual_l2 ~n:problem.Problem.n ~v:!cur ~f:problem.Problem.f
  in
  let best = ref r0 and prev = ref r0 and good_res = ref r0 in
  let stats = ref [] and events = ref [] in
  let total = ref 0.0 in
  let fb_stepper = ref None in
  let get_fallback () =
    match !fb_stepper with
    | Some s -> Some s
    | None -> (
      match fallback with
      | None -> None
      | Some mk ->
        let s = mk () in
        fb_stepper := Some s;
        Some s)
  in
  let quarantined = ref false in
  let retry_on_fallback = ref false in
  let primary_faults = ref 0 in
  let retries_this_cycle = ref 0 in
  let fallback_cycles = ref 0 in
  let stagnant = ref 0 in
  let cycle = ref start_cycle in
  let outcome = ref None in
  let converged r = match policy.tol with Some t -> r <= t | None -> false in
  if converged r0 then begin
    Telemetry.add c_early 1;
    outcome := Some Converged
  end;
  while !outcome = None do
    let on_fallback = !quarantined || !retry_on_fallback in
    let stepper =
      if on_fallback then Option.get (get_fallback ()) else primary
    in
    if Flightrec.on () then
      Flightrec.emit
        (Flightrec.Cycle_begin { cycle = !cycle; fallback = on_fallback });
    let t0 = Unix.gettimeofday () in
    let t_span = Telemetry.begin_span () in
    let crash =
      match stepper ~v:!cur ~f:problem.Problem.f ~out:!next with
      | () -> None
      | exception e -> Some e
    in
    if t_span <> 0 then
      Telemetry.end_span t_span ~cat:"solver"
        ~args:
          [ ("cycle", Telemetry.Int !cycle);
            ("fallback", Telemetry.Int (Bool.to_int on_fallback)) ]
        "guard.cycle";
    let dt = Unix.gettimeofday () -. t0 in
    total := !total +. dt;
    Telemetry.add c_cycles 1;
    let record residual status =
      stats :=
        { Solver.cycle = !cycle; residual; seconds = dt; status } :: !stats
    in
    let fault =
      match crash with
      | Some e -> Some (Fault_crash (Printexc.to_string e))
      | None ->
        if Buf.find_nonfinite !next.Grid.buf <> None then begin
          record Float.nan Solver.Nan;
          Some Fault_nan
        end
        else begin
          let r =
            Verify.residual_l2 ~n:problem.Problem.n ~v:!next
              ~f:problem.Problem.f
          in
          match
            Solver.classify ~divergence_factor:policy.divergence_factor
              ~stagnation_eps:policy.stagnation_eps ~best:!best ~prev:!prev r
          with
          | Solver.Nan ->
            record r Solver.Nan;
            Some Fault_nan
          | Solver.Diverged ->
            record r Solver.Diverged;
            Some Fault_diverged
          | (Solver.Ok | Solver.Stagnated) as status ->
            (* accept the cycle: swap iterates and move the checkpoint *)
            record r status;
            let tmp = !cur in
            cur := !next;
            next := tmp;
            Grid.blit ~src:!cur ~dst:good;
            good_res := r;
            (match checkpoint with
             | Some ck ->
               (* durable checkpoint of the accepted iterate: [good] is
                  only touched on accepts, so the sink may keep the
                  reference and persist it from a signal handler too *)
               ck.ck_accept ~cycle:!cycle ~residual:r ~v:good
                 ~stats:(List.rev !stats)
             | None -> ());
            if Flightrec.on () then begin
              Flightrec.emit
                (Flightrec.Cycle_end
                   { cycle = !cycle;
                     residual = r;
                     status = Solver.status_name status });
              Flightrec.emit
                (Flightrec.Checkpoint { cycle = !cycle; residual = r })
            end;
            if r < !best then best := r;
            prev := r;
            if status = Solver.Stagnated then incr stagnant
            else stagnant := 0;
            if on_fallback then begin
              incr fallback_cycles;
              Telemetry.add c_fb_cycles 1
            end;
            retry_on_fallback := false;
            retries_this_cycle := 0;
            if converged r then begin
              Telemetry.add c_early 1;
              outcome := Some Converged
            end
            else if !stagnant >= policy.stagnation_window then begin
              Telemetry.add c_stag_stop 1;
              outcome := Some Stagnated
            end
            else if !cycle >= policy.max_cycles then
              outcome := Some Exhausted
            else incr cycle;
            None
        end
    in
    match fault with
    | None -> ()
    | Some f ->
      count_fault f;
      if Flightrec.on () then begin
        Flightrec.emit
          (Flightrec.Fault
             { cycle = !cycle;
               fault =
                 (match f with
                 | Fault_crash msg -> "crash: " ^ msg
                 | f -> fault_name f) })
      end;
      (* rollback to the checkpoint — normally the in-memory copy, but
         if that copy is itself unusable (non-finite values, e.g. memory
         corruption in a long-running process) restore the newest
         durable generation from disk instead *)
      (match checkpoint with
       | Some ck when Buf.find_nonfinite good.Grid.buf <> None -> (
         match ck.ck_restore () with
         | Some (ck_cycle, ck_res, g)
           when Grid.extents g = Grid.extents good ->
           Grid.blit ~src:g ~dst:good;
           good_res := ck_res;
           Telemetry.add c_disk_restore 1;
           if Flightrec.on () then
             Flightrec.emit
               (Flightrec.Checkpoint_restore
                  { gen = ck_cycle; cycle = !cycle })
         | Some _ | None -> ())
       | Some _ | None -> ());
      Grid.blit ~src:good ~dst:!cur;
      Telemetry.add c_rollbacks 1;
      if Flightrec.on () then
        Flightrec.emit (Flightrec.Rollback { cycle = !cycle });
      let action =
        if (not on_fallback) && !retries_this_cycle < policy.primary_retries
        then begin
          (* bounded same-plan retry with exponential backoff: transient
             faults (a tripped deadline under momentary load, an injected
             glitch) get another shot at the primary before it costs a
             fallback switch.  Retried faults do not count toward the
             quarantine threshold. *)
          incr retries_this_cycle;
          Telemetry.add c_retries 1;
          if policy.retry_backoff > 0.0 then
            Unix.sleepf
              (policy.retry_backoff
              *. (2.0 ** float_of_int (!retries_this_cycle - 1)));
          Primary_retry
        end
        else if on_fallback || get_fallback () = None then begin
          (* fault on the fallback plan (or nothing to fall back to):
             the fault is inherent to the problem, not the optimizer *)
          outcome := Some (Faulted f);
          Gave_up
        end
        else begin
          incr primary_faults;
          retry_on_fallback := true;
          Telemetry.add c_switch 1;
          if !primary_faults >= policy.max_primary_faults then begin
            quarantined := true;
            Quarantined_primary
          end
          else Fallback_retry
        end
      in
      events := { cycle = !cycle; fault = f; action } :: !events;
      if Flightrec.on () then begin
        (match action with
        | Primary_retry ->
          Flightrec.emit
            (Flightrec.Retry
               { cycle = !cycle;
                 attempt = !retries_this_cycle;
                 backoff_s =
                   policy.retry_backoff
                   *. (2.0 ** float_of_int (!retries_this_cycle - 1)) })
        | Fallback_retry ->
          Flightrec.emit (Flightrec.Fallback_switch { cycle = !cycle })
        | Quarantined_primary ->
          Flightrec.emit (Flightrec.Fallback_switch { cycle = !cycle });
          Flightrec.emit
            (Flightrec.Quarantine
               { cycle = !cycle; faults = !primary_faults })
        | Gave_up -> ());
        (* One incident report per fault, with the recovery decision
           already taken so the report names both cause and action.
           Deadline trips arrive as a crash carrying the watchdog's
           typed exception; report them under their own kind. *)
        let kind =
          match (crash, f) with
          | Some (Watchdog.Deadline_exceeded _), _ -> "deadline"
          | _, Fault_crash _ -> "crash"
          | _, f -> fault_name f
        in
        let fnum x = if Float.is_finite x then Json.Num x else Json.Null in
        ignore
          (Flightrec.incident ~kind ~cycle:!cycle
             ~detail:
               [ ( "fault",
                   Json.Str
                     (match f with
                     | Fault_crash msg -> "crash: " ^ msg
                     | f -> fault_name f) );
                 ("action", Json.Str (action_name action));
                 ("fallback_active", Json.Bool on_fallback);
                 ("primary_faults", Json.num !primary_faults);
                 ("checkpoint_residual", fnum !good_res);
                 ( "residual_history",
                   Json.Arr
                     (List.rev_map
                        (fun (s : Solver.cycle_stats) ->
                          fnum s.Solver.residual)
                        !stats) );
                 ( "policy",
                   Json.Obj
                     [ ( "tol",
                         match policy.tol with
                         | Some t -> Json.Num t
                         | None -> Json.Null );
                       ("max_cycles", Json.num policy.max_cycles);
                       ( "divergence_factor",
                         Json.Num policy.divergence_factor );
                       ("stagnation_eps", Json.Num policy.stagnation_eps);
                       ( "stagnation_window",
                         Json.num policy.stagnation_window );
                       ( "max_primary_faults",
                         Json.num policy.max_primary_faults );
                       ("primary_retries", Json.num policy.primary_retries);
                       ("retry_backoff", Json.Num policy.retry_backoff) ] )
               ]
             ())
      end
  done;
  { stats = List.rev !stats;
    v = !cur;
    residual = !good_res;
    outcome = Option.get !outcome;
    events = List.rev !events;
    fallback_cycles = !fallback_cycles;
    total_seconds = !total }

let fallback_opts (opts : Options.t) =
  { Options.naive with Options.check_plan = opts.Options.check_plan }

let solve cfg ~n ~opts ?(domains = 1) ?(poison = false) ?policy
    ?(fallback = true) ?problem () =
  Exec.with_runtime ~domains ~poison (fun rt ->
      let problem =
        match problem with
        | Some p -> p
        | None -> Problem.poisson ~dims:cfg.Cycle.dims ~n
      in
      (* Budget enforcement under guard: a pool overrun surfaces as a
         Fault_crash, so the guard rolls back and retries the cycle on
         the (unpooled) naive fallback instead of aborting. *)
      (match opts.Options.mem_budget with
       | Some b when opts.Options.pool ->
         Repro_runtime.Mempool.set_budget rt.Exec.pool (Some b)
       | Some _ | None -> ());
      let primary = Solver.polymg_stepper cfg ~n ~opts ~rt in
      let fb =
        if fallback then
          Some
            (fun () ->
              Solver.polymg_stepper cfg ~n ~opts:(fallback_opts opts) ~rt)
        else None
      in
      run ?policy ~primary ?fallback:fb ~problem ())
