(** Multigrid-as-a-service: a fault-isolated concurrent solver front end.

    The one-shot CLI ({!Solver}, [mg_solve]) runs a single well-behaved
    solve; this module is the long-running counterpart: a server object
    accepting concurrent solve {e requests} (shape, size, cycle,
    tolerance, tenant identity, deadline), pushing each through the
    existing robustness stack — {!Repro_core.Govern} for the budgeted
    planning ladder, {!Guard} for fault detection/rollback/fallback,
    {!Repro_runtime.Watchdog} for deadlines, {!Repro_runtime.Mempool}
    hard budgets — and answering with a typed {!status} mirroring the
    CLI's exit codes.

    Robustness properties, in order of importance:

    - {b Isolation}: every request executes on a fresh
      {!Repro_core.Exec} runtime; a quarantined, faulted, or
      budget-infeasible solve produces an error response (plus
      {!Repro_runtime.Flightrec} incident reports) and the server keeps
      serving.  Pooled buffers are provably returned even on faulted
      solves ({!Repro_runtime.Mempool.assert_quiescent}).
    - {b Bounded admission}: requests wait in per-tenant queues under a
      per-tenant cap and a global cap.  A full tenant queue or an empty
      token bucket sheds the {e submitting} tenant's request
      ({!Shed}, wire code 7, with a [retry_after_s] hint); a full global
      queue evicts the {e newest} request of the {e heaviest} tenant —
      the misbehaving tenant degrades itself first.
    - {b Fairness}: one round-robin turn per tenant with queued work, so
      a flooding tenant cannot starve the others.
    - {b Graceful degradation}: per-tenant byte budgets feed
      [opts.mem_budget], so an oversized request walks the governance
      ladder (or is refused as {!Infeasible}) instead of exhausting
      memory.

    A shared plan cache keyed by the full shape/variant/budget signature
    lets repeat shapes skip planning; hits and misses are visible in the
    [serve.plan_cache_hits]/[serve.plan_cache_misses] counters. *)

(** {2 Requests and responses} *)

type request = {
  rq_tenant : string;
  rq_dims : int;  (** 2 or 3 *)
  rq_n : int;  (** problem-size parameter [N] *)
  rq_shape : Cycle.cycle_shape;
  rq_smoothing : int * int * int;  (** pre/coarsest/post smoothing steps *)
  rq_variant : string;  (** optimizer preset ({!Repro_core.Options}) *)
  rq_cycles : int;  (** cycle budget (clamped to the server maximum) *)
  rq_tol : float option;  (** early-stop residual tolerance *)
  rq_deadline_s : float option;
      (** wall-clock budget from submission; overrunning it — in queue
          or in solve — answers {!Deadline} *)
  rq_mem_budget : int option;
      (** per-request byte budget, intersected with the tenant budget *)
  rq_resume_dir : string option;
      (** resume from the newest durable {!Checkpoint} generation; an
          unusable directory answers {!Unresumable} *)
  rq_fault : string option;
      (** chaos hook (["nan"] or ["crash"], honored only when the server
          config allows faults): makes every primary-stepper cycle
          fault, driving the request through Guard's rollback →
          retry → quarantine path *)
}

val default_request : request
(** Tenant ["anon"], 2-D [n = 64], V-4-4-4, variant ["opt+"], 10 cycles,
    everything else off. *)

type status =
  | Ok  (** solve completed (converged, exhausted, or stagnated) *)
  | Invalid  (** malformed request (unknown variant, bad size, …) *)
  | Quarantined
      (** the primary plan was quarantined; the answer was completed on
          the fallback *)
  | Deadline  (** the request overran [rq_deadline_s] *)
  | Faulted  (** unrecoverable fault; last-good iterate discarded *)
  | Infeasible  (** budget below the governance ladder floor *)
  | Unresumable  (** [rq_resume_dir] holds no usable generation *)
  | Shed  (** admission refused: rate, queue, or eviction *)

val status_name : status -> string
val status_of_name : string -> status option

val code_of_status : status -> int
(** The CLI exit-code mapping: [Ok] 0, [Invalid] 2, [Quarantined] 3,
    [Deadline]/[Faulted] 4, [Infeasible] 5, [Unresumable] 6, and [Shed]
    7 (the one service-only code: the CLI never load-sheds). *)

type response = {
  rs_status : status;
  rs_code : int;  (** [code_of_status rs_status] *)
  rs_tenant : string;
  rs_cycles : int;  (** accepted cycles run *)
  rs_residual : float;  (** final residual (nan when no cycle ran) *)
  rs_queue_s : float;  (** admission-to-dequeue wait *)
  rs_solve_s : float;  (** dequeue-to-answer time *)
  rs_retry_after_s : float option;  (** set on {!Shed}: when to retry *)
  rs_plan_digest : string;  (** digest of the executed plan ("" if none) *)
  rs_plan_cached : bool;  (** the plan decision came from the cache *)
  rs_incidents : int;  (** incident reports filed by this request *)
  rs_detail : string;  (** human-readable amplification *)
}

(** {2 Wire codec}

    Length-framed JSON: each frame is a 4-byte big-endian payload length
    followed by that many bytes of JSON.  Oversized frames (beyond
    {!max_frame_bytes}) are refused without buffering the payload —
    framing is part of admission control. *)

val max_frame_bytes : int

val request_to_json : request -> Repro_runtime.Json.t
val request_of_json : Repro_runtime.Json.t -> (request, string) result
val response_to_json : response -> Repro_runtime.Json.t
val response_of_json : Repro_runtime.Json.t -> (response, string) result

val write_frame : out_channel -> Repro_runtime.Json.t -> unit
(** Writes one frame and flushes. *)

val read_frame : in_channel -> (Repro_runtime.Json.t, string) result option
(** [None] on clean EOF (no partial frame); [Some (Error _)] on a
    truncated, oversized, or unparseable frame. *)

(** {2 Server configuration} *)

type tenant_config = {
  tc_rate : float;
      (** token-bucket refill, requests/second ([infinity] = unmetered) *)
  tc_burst : float;  (** bucket capacity (>= 1) *)
  tc_queue_cap : int;  (** queued (not yet executing) requests allowed *)
  tc_mem_budget : int option;
      (** byte ceiling intersected with each request's own budget *)
}

val default_tenant : tenant_config
(** Unmetered, burst 64, queue cap 64, no budget. *)

type config = {
  sv_queue_cap : int;  (** global queued-request cap (>= 1) *)
  sv_workers : int;
      (** executor threads.  Default 1: request deadlines are enforced
          with the {!Repro_runtime.Watchdog}'s single armed slot, which
          only one in-flight solve may own.  With more workers (or 0 =
          caller-driven {!step}), deadlines degrade to wall-clock checks
          at cycle granularity. *)
  sv_domains : int;  (** execution domains per solve runtime *)
  sv_default_tenant : tenant_config;  (** for tenants not listed *)
  sv_tenants : (string * tenant_config) list;
  sv_max_cycles : int;  (** ceiling clamped onto [rq_cycles] *)
  sv_max_n : int;  (** largest accepted problem size *)
  sv_retry_after_s : float;  (** hint for queue-full sheds *)
  sv_primary_retries : int;  (** {!Guard.policy.primary_retries} *)
  sv_retry_backoff : float;  (** {!Guard.policy.retry_backoff} seconds *)
  sv_allow_faults : bool;  (** honor the [rq_fault] chaos hook *)
  sv_backend : Repro_core.Options.backend;
      (** execution backend applied to every admitted request's plan
          (a deployment property of the daemon, not a request field:
          tenants should not be able to trigger compiler runs) *)
  sv_clock : unit -> float;
      (** monotonic seconds; injectable so admission and fairness math
          are unit-testable with a frozen clock *)
}

val default_config : config
(** Queue cap 256, 1 worker, 1 domain, max 64 cycles, max [n] 1024,
    retry-after 0.05 s, 1 primary retry with no backoff, faults off,
    interpreter backend, [Unix.gettimeofday]. *)

(** {2 Server} *)

type t

type ticket
(** A pending response: {!submit} returns immediately, {!await} blocks
    until a worker (or {!step}) answers.  Shed and invalid requests are
    answered at submission time. *)

val create : ?config:config -> unit -> t
(** Starts [sv_workers] executor threads (none when 0). *)

val submit : t -> request -> ticket
val await : ticket -> response
val peek : ticket -> response option

val solve : t -> request -> response
(** [await (submit t rq)] — only sensible with [sv_workers >= 1]. *)

val step : t -> bool
(** Executes the next queued request (round-robin across tenants) on the
    calling thread; [false] when no request is queued.  The test
    harness's driver for [sv_workers = 0]. *)

val pending : t -> int
(** Requests queued (admitted, not yet executing). *)

val drain : t -> unit
(** Blocks until every admitted request has been answered (with
    [sv_workers = 0], executes them on the calling thread). *)

val shutdown : t -> unit
(** {!drain}, then stops and joins the workers.  The server object must
    not be used afterwards. *)

type tenant_stats = {
  ts_accepted : int;
  ts_shed : int;  (** rate- and queue-shed at submission *)
  ts_evicted : int;  (** shed by a global-queue eviction after admission *)
  ts_completed : int;  (** responses with an executed (non-shed) status *)
}

val tenant_stats : t -> string -> tenant_stats
(** Zeros for a tenant the server has not seen. *)

val plan_cache_stats : t -> int * int
(** [(hits, misses)] of the shared plan cache. *)
