(** The self-describing metrics document behind [mg_solve --metrics FILE]:
    one JSON object per run tying together what the run {e was} (config +
    plan digest), what it {e should} have cost ({!Repro_core.Cost}), what
    it {e did} cost (telemetry spans and counters), and where that lands
    against the measured machine roofline
    ({!Repro_runtime.Roofline}) — per stage, achieved GB/s and GFLOP/s
    next to the model's prediction.

    Schema: ["polymg.metrics/1"].  Stages of diamond groups have no
    per-step span (execution interleaves steps inside wavefronts), so
    their measured time is the group's front time distributed by FLOP
    share and marked ["attributed": true]. *)

val build :
  health:Health.report option ->
  cfg:Cycle.config ->
  n:int ->
  variant:string ->
  domains:int ->
  cost:Repro_core.Cost.t option ->
  plan:Repro_core.Plan.t option ->
  stats:Solver.cycle_stats list ->
  total_seconds:float ->
  spans:Repro_runtime.Telemetry.span list ->
  counters:(string * int) list ->
  roofline:Repro_runtime.Roofline.t ->
  Repro_runtime.Json.t
(** [plan]/[cost] are [None] for the hand-optimized baselines (no DSL
    plan exists); the document then carries measured data only. *)

val write : path:string -> Repro_runtime.Json.t -> unit
(** @raise Sys_error if the file cannot be written. *)
