(* Cost-model calibration: join Cost's predicted per-stage DRAM bytes /
   FLOPs with profiler-measured per-stage times, across a sweep of
   shapes x plan variants.  Reports per-stage model error (ratio of
   measured to roofline-predicted time), names the stages that drift
   beyond a threshold, and computes the Spearman rank correlation of
   predicted-vs-measured plan ordering — the number the ROADMAP's
   autotuning item needs before the cost model can steer a search. *)

open Repro_core
module Json = Repro_runtime.Json
module Profile = Repro_runtime.Profile
module Roofline = Repro_runtime.Roofline

(* ------------------------------------------------------------------ *)
(* Roofline prediction: GB/s is numerically bytes/ns, GFLOP/s is
   FLOPs/ns, so the per-stage prediction needs no unit shuffling. *)

let predicted_stage_ns (r : Roofline.t) (s : Cost.stage) =
  let bytes = float_of_int (Cost.stage_bytes s) in
  Float.max (bytes /. r.Roofline.bandwidth_gbs) (s.Cost.flops /. r.Roofline.gflops)

(* ------------------------------------------------------------------ *)
(* Spearman rank correlation: Pearson on average ranks (tie-safe). *)

let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let pearson a b =
  let n = Array.length a in
  if n < 2 then Float.nan
  else begin
    let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    let ma = mean a and mb = mean b in
    let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
    for i = 0 to n - 1 do
      let xa = a.(i) -. ma and xb = b.(i) -. mb in
      num := !num +. (xa *. xb);
      da := !da +. (xa *. xa);
      db := !db +. (xb *. xb)
    done;
    if !da = 0.0 || !db = 0.0 then Float.nan
    else !num /. Float.sqrt (!da *. !db)
  end

let spearman a b =
  if Array.length a <> Array.length b then
    invalid_arg "Calibrate.spearman: length mismatch";
  pearson (ranks a) (ranks b)

(* ------------------------------------------------------------------ *)
(* The per-stage join *)

type stage_cal = {
  sc_name : string;
  sc_gid : int;
  sc_predicted_ns : float;  (* per plan execution *)
  sc_measured_ns : float;  (* per plan execution *)
  sc_ratio : float;  (* measured / predicted; nan without data *)
  sc_attributed : bool;  (* diamond: flops-share attribution *)
  sc_drift : bool;  (* ratio outside [1/factor, factor] *)
}

let join ~(roofline : Roofline.t) ~drift_factor ~(cost : Cost.t) ~measured_ns =
  Array.to_list cost.Cost.stages
  |> List.map (fun (s : Cost.stage) ->
         let predicted = predicted_stage_ns roofline s in
         let measured, attributed = measured_ns s in
         let ratio =
           if measured > 0.0 && predicted > 0.0 then measured /. predicted
           else Float.nan
         in
         let drift =
           Float.is_finite ratio
           && (ratio > drift_factor || ratio < 1.0 /. drift_factor)
         in
         { sc_name = s.Cost.name;
           sc_gid = s.Cost.gid;
           sc_predicted_ns = predicted;
           sc_measured_ns = measured;
           sc_ratio = ratio;
           sc_attributed = attributed;
           sc_drift = drift })

let stage_spearman stages =
  let usable =
    List.filter
      (fun sc -> sc.sc_measured_ns > 0.0 && sc.sc_predicted_ns > 0.0)
      stages
  in
  spearman
    (Array.of_list (List.map (fun sc -> sc.sc_predicted_ns) usable))
    (Array.of_list (List.map (fun sc -> sc.sc_measured_ns) usable))

let fnum f = if Float.is_finite f then Json.Num f else Json.Null

let stage_json sc =
  Json.Obj
    [ ("name", Json.Str sc.sc_name);
      ("gid", Json.num sc.sc_gid);
      ("predicted_ns", fnum sc.sc_predicted_ns);
      ("measured_ns", fnum sc.sc_measured_ns);
      ("ratio", fnum sc.sc_ratio);
      ("attributed", Json.Bool sc.sc_attributed);
      ("drift", Json.Bool sc.sc_drift) ]

(* One calibration block for a single executed plan (the [mg_solve
   --metrics] surface): per-stage join + stage-rank correlation. *)
let calibration_block ~(roofline : Roofline.t) ?(drift_factor = 4.0)
    ~(cost : Cost.t) ~measured_ns () =
  let stages = join ~roofline ~drift_factor ~cost ~measured_ns in
  let predicted_total =
    List.fold_left (fun acc sc -> acc +. sc.sc_predicted_ns) 0.0 stages
  in
  let measured_total =
    List.fold_left (fun acc sc -> acc +. sc.sc_measured_ns) 0.0 stages
  in
  Json.Obj
    [ ("drift_factor", Json.Num drift_factor);
      ("predicted_total_ns", fnum predicted_total);
      ("measured_total_ns", fnum measured_total);
      ("stage_rank_spearman", fnum (stage_spearman stages));
      ( "drifting_stages",
        Json.Arr
          (List.filter_map
             (fun sc -> if sc.sc_drift then Some (Json.Str sc.sc_name) else None)
             stages) );
      ("stages", Json.Arr (List.map stage_json stages)) ]

(* ------------------------------------------------------------------ *)
(* Profile-side measurement: per-stage ns per plan execution, read back
   from the profiler after instrumented cycles.  Diamond groups expose
   one front site per gid; stage time is attributed by flops share, the
   same rule Perf_report applies to telemetry spans. *)

let profile_measured_ns (cost : Cost.t) =
  let execs =
    match Profile.stats (Profile.site "exec.run") with
    | Some st -> st.Profile.count
    | None -> 0
  in
  let kinds = Hashtbl.create 8 in
  Array.iter
    (fun (g : Cost.group) -> Hashtbl.replace kinds g.Cost.g_gid g.Cost.kind)
    cost.Cost.groups;
  let group_flops = Hashtbl.create 8 in
  Array.iter
    (fun (s : Cost.stage) ->
      let t = Option.value (Hashtbl.find_opt group_flops s.Cost.gid) ~default:0.0 in
      Hashtbl.replace group_flops s.Cost.gid (t +. s.Cost.flops))
    cost.Cost.stages;
  fun (s : Cost.stage) ->
    if execs = 0 then (0.0, false)
    else begin
      let per_exec total = total /. float_of_int execs in
      match Hashtbl.find_opt kinds s.Cost.gid with
      | Some `Diamond ->
        let front =
          match
            Profile.stats
              (Profile.site (Printf.sprintf "diamond.front.g%d" s.Cost.gid))
          with
          | Some st -> st.Profile.total
          | None -> 0.0
        in
        let total =
          Option.value (Hashtbl.find_opt group_flops s.Cost.gid) ~default:0.0
        in
        let share = if total > 0.0 then s.Cost.flops /. total else 0.0 in
        (per_exec (front *. share), true)
      | _ -> (
        match Profile.stats (Profile.site ("stage:" ^ s.Cost.name)) with
        | Some st -> (per_exec st.Profile.total, false)
        | None -> (0.0, false))
    end

(* ------------------------------------------------------------------ *)
(* The sweep *)

type cell = {
  cell_n : int;
  cell_variant : string;
  cell_predicted_ns : float;  (* per cycle: sum of stage predictions *)
  cell_measured_ns : float;  (* per cycle: mean of solver.cycle *)
  cell_stages : stage_cal list;
}

type t = {
  bench : string;
  cycles : int;
  domains : int;
  drift_factor : float;
  roofline : Roofline.t;
  cells : cell list;
  spearman_by_n : (int * float) list;
      (* predicted-vs-measured plan ordering, per shape *)
}

let default_variants () =
  [ Options.naive; Options.opt; Options.opt_plus; Options.dtile_opt_plus ]

let measure_cell ~roofline ~drift_factor ~cycles ~domains cfg ~n opts =
  Exec.with_runtime ~domains (fun rt ->
      let plan = Solver.polymg_plan cfg ~n ~opts in
      let cost = Cost.of_plan plan in
      let stepper = Solver.plan_stepper plan ~rt in
      let problem = Problem.poisson ~dims:cfg.Cycle.dims ~n in
      (* one unprofiled warmup cycle: page faults and pool growth are
         not model error *)
      ignore (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
      let was = Profile.enabled () in
      Profile.reset ();
      Profile.set_enabled true;
      ignore (Solver.iterate stepper ~problem ~cycles ~residuals:false ());
      Profile.set_enabled was;
      let stages =
        join ~roofline ~drift_factor ~cost ~measured_ns:(profile_measured_ns cost)
      in
      let measured =
        match Profile.stats (Profile.site "solver.cycle") with
        | Some st -> st.Profile.mean
        | None -> Float.nan
      in
      Profile.reset ();
      { cell_n = n;
        cell_variant = Options.name opts;
        cell_predicted_ns =
          List.fold_left (fun acc sc -> acc +. sc.sc_predicted_ns) 0.0 stages;
        cell_measured_ns = measured;
        cell_stages = stages })

let run ?variants ?shapes ?(cycles = 3) ?(domains = 1) ?(drift_factor = 4.0)
    cfg ~n =
  let variants =
    match variants with Some v -> v | None -> default_variants ()
  in
  let shapes = match shapes with Some s -> s | None -> [ n ] in
  let roofline = Roofline.get () in
  let cells =
    List.concat_map
      (fun n ->
        List.map
          (measure_cell ~roofline ~drift_factor ~cycles ~domains cfg ~n)
          variants)
      shapes
  in
  let spearman_by_n =
    List.map
      (fun n ->
        let cs = List.filter (fun c -> c.cell_n = n) cells in
        ( n,
          spearman
            (Array.of_list (List.map (fun c -> c.cell_predicted_ns) cs))
            (Array.of_list (List.map (fun c -> c.cell_measured_ns) cs)) ))
      shapes
  in
  { bench = Cycle.bench_name cfg;
    cycles;
    domains;
    drift_factor;
    roofline;
    cells;
    spearman_by_n }

let drifting t =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun sc ->
          if sc.sc_drift then Some (c.cell_n, c.cell_variant, sc) else None)
        c.cell_stages)
    t.cells

(* ------------------------------------------------------------------ *)
(* Sinks *)

let pp fmt t =
  Format.fprintf fmt "@[<v>== calibration: %s ==@," t.bench;
  Format.fprintf fmt
    "roofline %.2f GB/s, %.2f GFLOP/s; %d cycle(s)/cell, %d domain(s), drift \
     threshold %.1fx@,"
    t.roofline.Roofline.bandwidth_gbs t.roofline.Roofline.gflops t.cycles
    t.domains t.drift_factor;
  List.iter
    (fun (n, rho) ->
      let cs = List.filter (fun c -> c.cell_n = n) t.cells in
      Format.fprintf fmt "@,n=%d: plan-order spearman %s over %d variants@," n
        (if Float.is_finite rho then Printf.sprintf "%.3f" rho else "nan")
        (List.length cs);
      Format.fprintf fmt "  %-12s %14s %14s %8s@," "variant" "predicted ms"
        "measured ms" "ratio";
      List.iter
        (fun c ->
          Format.fprintf fmt "  %-12s %14.3f %14.3f %8.2f@," c.cell_variant
            (c.cell_predicted_ns /. 1e6)
            (c.cell_measured_ns /. 1e6)
            (if c.cell_predicted_ns > 0.0 then
               c.cell_measured_ns /. c.cell_predicted_ns
             else Float.nan))
        cs)
    t.spearman_by_n;
  let drifts = drifting t in
  if drifts = [] then
    Format.fprintf fmt "@,no stage drifts beyond %.1fx@," t.drift_factor
  else begin
    Format.fprintf fmt "@,stages drifting beyond %.1fx (measured/predicted):@,"
      t.drift_factor;
    List.iter
      (fun (n, v, sc) ->
        Format.fprintf fmt "  n=%d %-12s %-24s pred %10.1f us meas %10.1f us \
                            ratio %8.2fx%s@,"
          n v sc.sc_name
          (sc.sc_predicted_ns /. 1e3)
          (sc.sc_measured_ns /. 1e3)
          sc.sc_ratio
          (if sc.sc_attributed then " (attributed)" else ""))
      drifts
  end;
  Format.fprintf fmt "@]"

let to_json t =
  Json.Obj
    [ ("schema", Json.Str "polymg.calibrate/1");
      ("bench", Json.Str t.bench);
      ("cycles", Json.num t.cycles);
      ("domains", Json.num t.domains);
      ("drift_factor", Json.Num t.drift_factor);
      ( "roofline",
        Json.Obj
          [ ("bandwidth_gbs", Json.Num t.roofline.Roofline.bandwidth_gbs);
            ("gflops", Json.Num t.roofline.Roofline.gflops) ] );
      ( "spearman_by_n",
        Json.Arr
          (List.map
             (fun (n, rho) ->
               Json.Obj [ ("n", Json.num n); ("spearman", fnum rho) ])
             t.spearman_by_n) );
      ( "cells",
        Json.Arr
          (List.map
             (fun c ->
               Json.Obj
                 [ ("n", Json.num c.cell_n);
                   ("variant", Json.Str c.cell_variant);
                   ("predicted_ns_per_cycle", fnum c.cell_predicted_ns);
                   ("measured_ns_per_cycle", fnum c.cell_measured_ns);
                   ("stages", Json.Arr (List.map stage_json c.cell_stages)) ])
             t.cells) ) ]
