module Grid = Repro_grid.Grid
module Telemetry = Repro_runtime.Telemetry
module Mempool = Repro_runtime.Mempool
module Flightrec = Repro_runtime.Flightrec
module Profile = Repro_runtime.Profile
module Json = Repro_runtime.Json
open Repro_core

type status = Ok | Nan | Diverged | Stagnated

let status_name = function
  | Ok -> "ok"
  | Nan -> "nan"
  | Diverged -> "diverged"
  | Stagnated -> "stagnated"

type cycle_stats = {
  cycle : int;
  residual : float;
  seconds : float;
  status : status;
}

type result = {
  stats : cycle_stats list;
  v : Grid.t;
  total_seconds : float;
}

type stepper = v:Grid.t -> f:Grid.t -> out:Grid.t -> unit

let classify ?(divergence_factor = 1e4) ?(stagnation_eps = 1e-2) ~best ~prev
    residual =
  if not (Float.is_finite residual) then Nan
  else if Float.is_finite best && residual > divergence_factor *. best then
    Diverged
  else if Float.is_finite prev && residual >= (1.0 -. stagnation_eps) *. prev
  then Stagnated
  else Ok

let iterate stepper ~(problem : Problem.t) ~cycles ?(residuals = true)
    ?(start_cycle = 1) ?on_accept () =
  if cycles < 1 then invalid_arg "Solver.iterate: cycles must be >= 1";
  if start_cycle < 1 then
    invalid_arg "Solver.iterate: start_cycle must be >= 1";
  let cur = ref (Grid.copy problem.Problem.v) in
  let next = ref (Grid.create (Grid.extents problem.Problem.v)) in
  let stats = ref [] in
  let total = ref 0.0 in
  let best = ref Float.infinity in
  let prev = ref Float.infinity in
  let p_cycle_site =
    if Profile.enabled () then Some (Profile.site "solver.cycle") else None
  in
  for c = start_cycle to start_cycle + cycles - 1 do
    if Flightrec.on () then
      Flightrec.emit (Flightrec.Cycle_begin { cycle = c; fallback = false });
    let t0 = Unix.gettimeofday () in
    let t_cycle = Telemetry.begin_span () in
    let p_cycle = Profile.start () in
    stepper ~v:!cur ~f:problem.Problem.f ~out:!next;
    if t_cycle <> 0 then
      Telemetry.end_span t_cycle ~cat:"solver"
        ~args:[ ("cycle", Telemetry.Int c) ]
        "solver.cycle";
    (match p_cycle_site with
    | Some ps -> Profile.stop p_cycle ps
    | None -> ());
    let dt = Unix.gettimeofday () -. t0 in
    total := !total +. dt;
    let tmp = !cur in
    cur := !next;
    next := tmp;
    let residual =
      if residuals then
        Verify.residual_l2 ~n:problem.Problem.n ~v:!cur ~f:problem.Problem.f
      else Float.nan
    in
    let status =
      if not residuals then Ok
      else if not (Float.is_finite residual) then Nan
      else classify ~best:!best ~prev:!prev residual
    in
    if Float.is_finite residual then begin
      if residual < !best then best := residual;
      prev := residual
    end;
    if Flightrec.on () then
      Flightrec.emit
        (Flightrec.Cycle_end
           { cycle = c; residual; status = status_name status });
    stats := { cycle = c; residual; seconds = dt; status } :: !stats;
    (match on_accept with
     | Some hook ->
       hook ~cycle:c ~residual ~v:!cur ~stats:(List.rev !stats)
     | None -> ())
  done;
  { stats = List.rev !stats; v = !cur; total_seconds = !total }

let polymg_plan cfg ~n ~opts =
  let pipeline = Cycle.build cfg in
  Plan_check.build pipeline ~opts ~n ~params:(Cycle.params cfg ~n)

let plan_stepper plan ~rt =
  let pipeline = plan.Plan.pipeline in
  let vin = Cycle.input_v pipeline in
  let fin = Cycle.input_f pipeline in
  let out = Cycle.output pipeline in
  let digest = Plan.digest plan in
  let variant = Options.name plan.Plan.opts in
  Flightrec.note_plan ~digest ~variant;
  let interp ~v ~f ~out:out_grid =
    Exec.run plan rt ~inputs:[ (vin, v); (fin, f) ]
      ~outputs:[ (out, out_grid) ]
  in
  let native k ~v ~f ~out:out_grid =
    Native.run k ~inputs:[ (vin, v); (fin, f) ]
      ~outputs:[ (out, out_grid) ]
  in
  match plan.Plan.opts.Options.backend with
  | Options.Interp -> interp
  | Options.Native ->
    (* forced native: no compiler, an unemittable plan, or a compile
       failure is an error, never a silent downgrade *)
    (match Native.load plan with
     | Stdlib.Ok k -> native k
     | Stdlib.Error e -> raise (Native.Unavailable e))
  | Options.Auto ->
    (match Native.load plan with
     | Stdlib.Ok k -> native k
     | Stdlib.Error e ->
       Native.note_fallback ~digest ~variant ~reason:e;
       interp)

let polymg_stepper cfg ~n ~opts ~rt = plan_stepper (polymg_plan cfg ~n ~opts) ~rt

let solve cfg ~n ~opts ?(domains = 1) ~cycles ?(residuals = true) () =
  Exec.with_runtime ~domains (fun rt ->
      let problem = Problem.poisson ~dims:cfg.Cycle.dims ~n in
      let stepper = polymg_stepper cfg ~n ~opts ~rt in
      iterate stepper ~problem ~cycles ~residuals ())

(* ------------------------------------------------------------------ *)
(* Governed solve: ladder planning + runtime demotion                   *)

type governed = {
  g_result : result;
  g_report : Govern.report;
  g_executed : Govern.rung;
  g_runtime_demotions : int;
}

let c_rt_demote = Telemetry.counter "govern.runtime_demotions"

(* Run one ladder rung under its own fresh runtime.  The pool budget is
   the total budget minus the rung's modelled scratch term, so the two
   enforcement layers (model at plan time, pool at run time) agree on
   what the pooled share may spend.  Unpooled rungs never consult the
   pool, so no budget is installed for them. *)
let attempt_rung ~domains ?poison ~budget ~problem ~cycles ~residuals
    ~start_cycle ?on_accept (rung : Govern.rung) =
  try
    Repro_core.Exec.with_runtime ~domains ?poison (fun rt ->
        (match budget with
         | Some b when rung.Govern.ropts.Options.pool ->
           Mempool.set_budget rt.Exec.pool
             (Some (max 1 (b - rung.Govern.scratch_bytes)))
         | Some _ | None -> ());
        Stdlib.Ok
          (iterate (plan_stepper rung.Govern.plan ~rt) ~problem ~cycles
             ~residuals ~start_cycle ?on_accept ()))
  with Mempool.Budget_exceeded _ as e -> Stdlib.Error (Printexc.to_string e)

let solve_governed cfg ~n ~(opts : Options.t) ?(domains = 1) ?poison ~cycles
    ?(residuals = true) ?(start_cycle = 1) ?on_accept ?problem () =
  let pipeline = Cycle.build cfg in
  let params = Cycle.params cfg ~n in
  match Govern.decide ~domains pipeline ~opts ~n ~params with
  | Stdlib.Error inf -> Stdlib.Error inf
  | Stdlib.Ok report ->
    let problem =
      match problem with
      | Some p -> p
      | None -> Problem.poisson ~dims:cfg.Cycle.dims ~n
    in
    let budget = report.Govern.budget in
    let ladder = report.Govern.ladder in
    (* Walk fitting rungs from the planner's choice downward: a rung
       whose *actual* footprint overruns the model (the pool raises
       Budget_exceeded) is demoted at runtime and the next fitting rung
       gets a fresh attempt.  The solve never aborts mid-ladder. *)
    let rec walk i demotions =
      if i >= Array.length ladder then
        let floor =
          Array.fold_left
            (fun best (r : Govern.rung) ->
              match best with
              | Some (b : Govern.rung) when b.Govern.peak_bytes <= r.Govern.peak_bytes
                -> best
              | _ -> Some r)
            None ladder
          |> Option.get
        in
        begin
          if Flightrec.on () then begin
            Flightrec.emit
              (Flightrec.Infeasible
                 { budget_bytes =
                     (match budget with Some b -> b | None -> 0);
                   floor_bytes = floor.Govern.peak_bytes;
                   floor_rung = floor.Govern.rname });
            ignore
              (Flightrec.incident ~kind:"budget-infeasible"
                 ~detail:
                   [ ( "budget_bytes",
                       match budget with
                       | Some b -> Json.num b
                       | None -> Json.Null );
                     ("floor_bytes", Json.num floor.Govern.peak_bytes);
                     ("floor_rung", Json.Str floor.Govern.rname);
                     ("runtime_demotions", Json.num demotions);
                     ( "ladder",
                       Json.Arr
                         (Array.to_list
                            (Array.map
                               (fun (r : Govern.rung) ->
                                 Json.Str r.Govern.rname)
                               ladder)) ) ]
                 ())
          end;
          Stdlib.Error
            { Govern.inf_budget =
                (match budget with Some b -> b | None -> 0);
              floor_bytes = floor.Govern.peak_bytes;
              floor_rung = floor.Govern.rname;
              inf_ladder = ladder }
        end
      else if not ladder.(i).Govern.fits then walk (i + 1) demotions
      else
        match
          attempt_rung ~domains ?poison ~budget ~problem ~cycles ~residuals
            ~start_cycle ?on_accept ladder.(i)
        with
        | Stdlib.Ok r ->
          Stdlib.Ok
            { g_result = r;
              g_report = report;
              g_executed = ladder.(i);
              g_runtime_demotions = demotions }
        | Stdlib.Error _ ->
          Telemetry.add c_rt_demote 1;
          if Flightrec.on () then
            Flightrec.emit
              (Flightrec.Runtime_demotion { rung = ladder.(i).Govern.rname });
          walk (i + 1) (demotions + 1)
    in
    walk report.Govern.chosen 0
