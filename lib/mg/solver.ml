module Grid = Repro_grid.Grid
module Telemetry = Repro_runtime.Telemetry
open Repro_core

type status = Ok | Nan | Diverged | Stagnated

let status_name = function
  | Ok -> "ok"
  | Nan -> "nan"
  | Diverged -> "diverged"
  | Stagnated -> "stagnated"

type cycle_stats = {
  cycle : int;
  residual : float;
  seconds : float;
  status : status;
}

type result = {
  stats : cycle_stats list;
  v : Grid.t;
  total_seconds : float;
}

type stepper = v:Grid.t -> f:Grid.t -> out:Grid.t -> unit

let classify ?(divergence_factor = 1e4) ?(stagnation_eps = 1e-2) ~best ~prev
    residual =
  if not (Float.is_finite residual) then Nan
  else if Float.is_finite best && residual > divergence_factor *. best then
    Diverged
  else if Float.is_finite prev && residual >= (1.0 -. stagnation_eps) *. prev
  then Stagnated
  else Ok

let iterate stepper ~(problem : Problem.t) ~cycles ?(residuals = true) () =
  if cycles < 1 then invalid_arg "Solver.iterate: cycles must be >= 1";
  let cur = ref (Grid.copy problem.Problem.v) in
  let next = ref (Grid.create (Grid.extents problem.Problem.v)) in
  let stats = ref [] in
  let total = ref 0.0 in
  let best = ref Float.infinity in
  let prev = ref Float.infinity in
  for c = 1 to cycles do
    let t0 = Unix.gettimeofday () in
    let t_cycle = Telemetry.begin_span () in
    stepper ~v:!cur ~f:problem.Problem.f ~out:!next;
    if t_cycle <> 0 then
      Telemetry.end_span t_cycle ~cat:"solver"
        ~args:[ ("cycle", Telemetry.Int c) ]
        "solver.cycle";
    let dt = Unix.gettimeofday () -. t0 in
    total := !total +. dt;
    let tmp = !cur in
    cur := !next;
    next := tmp;
    let residual =
      if residuals then
        Verify.residual_l2 ~n:problem.Problem.n ~v:!cur ~f:problem.Problem.f
      else Float.nan
    in
    let status =
      if not residuals then Ok
      else if not (Float.is_finite residual) then Nan
      else classify ~best:!best ~prev:!prev residual
    in
    if Float.is_finite residual then begin
      if residual < !best then best := residual;
      prev := residual
    end;
    stats := { cycle = c; residual; seconds = dt; status } :: !stats
  done;
  { stats = List.rev !stats; v = !cur; total_seconds = !total }

let polymg_plan cfg ~n ~opts =
  let pipeline = Cycle.build cfg in
  Plan_check.build pipeline ~opts ~n ~params:(Cycle.params cfg ~n)

let plan_stepper plan ~rt =
  let pipeline = plan.Plan.pipeline in
  let vin = Cycle.input_v pipeline in
  let fin = Cycle.input_f pipeline in
  let out = Cycle.output pipeline in
  fun ~v ~f ~out:out_grid ->
    Exec.run plan rt ~inputs:[ (vin, v); (fin, f) ]
      ~outputs:[ (out, out_grid) ]

let polymg_stepper cfg ~n ~opts ~rt = plan_stepper (polymg_plan cfg ~n ~opts) ~rt

let solve cfg ~n ~opts ?(domains = 1) ~cycles ?(residuals = true) () =
  Exec.with_runtime ~domains (fun rt ->
      let problem = Problem.poisson ~dims:cfg.Cycle.dims ~n in
      let stepper = polymg_stepper cfg ~n ~opts ~rt in
      iterate stepper ~problem ~cycles ~residuals ())
