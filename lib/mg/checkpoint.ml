module Grid = Repro_grid.Grid
module Snapshot = Repro_runtime.Snapshot
module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Json = Repro_runtime.Json

type state = {
  cycle : int;
  residual : float;
  dims : int;
  n : int;
  variant : string;
  plan_digest : string;
  seed : int;
  history : Solver.cycle_stats list;
  v : Grid.t;
}

type config = { dir : string; every : int; keep : int }

let default_keep = 3

let effective_every ~every ~deadline =
  if every < 1 then invalid_arg "Checkpoint: every must be >= 1";
  match deadline with Some _ -> 1 | None -> every

let c_writes = Telemetry.counter "guard.checkpoint_writes"
let c_restores = Telemetry.counter "guard.checkpoint_restores"
let c_rejected = Telemetry.counter "guard.checkpoint_rejected"
let c_pruned = Telemetry.counter "guard.checkpoint_pruned"

let gen_path ~dir g = Filename.concat dir (Printf.sprintf "ckpt-%06d.snap" g)

let gen_of_name name =
  if String.length name > 10
     && String.sub name 0 5 = "ckpt-"
     && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name 5 (String.length name - 10))
  else None

let generations ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map gen_of_name
    |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Serialization *)

let status_name_of = Solver.status_name

let status_of_name = function
  | "ok" -> Some Solver.Ok
  | "nan" -> Some Solver.Nan
  | "diverged" -> Some Solver.Diverged
  | "stagnated" -> Some Solver.Stagnated
  | _ -> None

let meta_of_state st =
  let fnum x = if Float.is_finite x then Json.Num x else Json.Null in
  Json.Obj
    [ ("kind", Json.Str "mg-checkpoint");
      ("cycle", Json.num st.cycle);
      ("residual", fnum st.residual);
      ("dims", Json.num st.dims);
      ("n", Json.num st.n);
      ("variant", Json.Str st.variant);
      ("plan_digest", Json.Str st.plan_digest);
      ("seed", Json.num st.seed);
      ( "extents",
        Json.Arr
          (Array.to_list
             (Array.map (fun e -> Json.num e) (Grid.extents st.v))) );
      ( "history",
        Json.Arr
          (List.map
             (fun (s : Solver.cycle_stats) ->
               Json.Obj
                 [ ("cycle", Json.num s.Solver.cycle);
                   ("residual", fnum s.Solver.residual);
                   ("seconds", Json.Num s.Solver.seconds);
                   ("status", Json.Str (status_name_of s.Solver.status)) ])
             st.history) ) ]

let ensure_dir dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      let parent = Filename.dirname d in
      if parent <> d then go parent;
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let prune config ~newest =
  (* Only after the newest generation is durably in place: delete
     generations beyond [keep] (never [newest]) and temp droppings left
     by writers that were killed mid-write. *)
  let gens = generations ~dir:config.dir in
  let keep = max 1 config.keep in
  let excess = List.length gens - keep in
  if excess > 0 then
    List.iteri
      (fun i g ->
        if i < excess && g <> newest then begin
          (try Sys.remove (gen_path ~dir:config.dir g)
           with Sys_error _ -> ());
          Telemetry.add c_pruned 1
        end)
      gens;
  match Sys.readdir config.dir with
  | exception Sys_error _ -> ()
  | entries ->
    (* droppings look like ckpt-NNNNNN.snap.tmp.PID, left by writers
       killed mid-write; only one process writes a checkpoint dir at a
       time and this process is between writes, so removal is safe *)
    Array.iter
      (fun name ->
        if
          String.length name > 5
          && String.sub name 0 5 = "ckpt-"
          && not (Filename.check_suffix name ".snap")
        then
          try Sys.remove (Filename.concat config.dir name)
          with Sys_error _ -> ())
      entries

let save config st =
  ensure_dir config.dir;
  let path = gen_path ~dir:config.dir st.cycle in
  Snapshot.write ~path ~meta:(meta_of_state st)
    ~payloads:[ Snapshot.payload_of_buf st.v.Grid.buf ];
  Telemetry.add c_writes 1;
  if Flightrec.on () then
    Flightrec.emit
      (Flightrec.Checkpoint_write { gen = st.cycle; cycle = st.cycle });
  prune config ~newest:st.cycle;
  path

let mem k d = Option.value (Json.member k d) ~default:Json.Null

let load ~path =
  match Snapshot.read ~path with
  | Error m -> Error m
  | Ok (meta, payloads) -> (
    let int k = Json.to_int (mem k meta) in
    let str k = Json.to_str (mem k meta) in
    match (str "kind", int "cycle", int "dims", int "n") with
    | Some "mg-checkpoint", Some cycle, Some dims, Some n -> (
      let extents =
        List.filter_map Json.to_int (Json.to_list (mem "extents" meta))
      in
      let history =
        Json.to_list (mem "history" meta)
        |> List.filter_map (fun h ->
               match
                 ( Json.to_int (mem "cycle" h),
                   Json.to_str (mem "status" h) )
               with
               | Some cycle, Some status_name -> (
                 match status_of_name status_name with
                 | Some status ->
                   Some
                     { Solver.cycle;
                       residual =
                         Option.value
                           (Json.to_float (mem "residual" h))
                           ~default:Float.nan;
                       seconds =
                         Option.value
                           (Json.to_float (mem "seconds" h))
                           ~default:0.0;
                       status }
                 | None -> None)
               | _ -> None)
      in
      match (extents, payloads) with
      | [], _ -> Error "metadata: missing extents"
      | extents, [ payload ] -> (
        let v = Grid.create (Array.of_list extents) in
        match Snapshot.payload_to_buf payload v.Grid.buf with
        | Error m -> Error ("grid payload: " ^ m)
        | Ok () ->
          Ok
            { cycle;
              residual =
                Option.value
                  (Json.to_float (mem "residual" meta))
                  ~default:Float.nan;
              dims;
              n;
              variant = Option.value (str "variant") ~default:"";
              plan_digest = Option.value (str "plan_digest") ~default:"";
              seed = Option.value (int "seed") ~default:0;
              history;
              v })
      | _, payloads ->
        Error
          (Printf.sprintf "expected 1 grid payload, found %d"
             (List.length payloads)))
    | _ -> Error "metadata: not an mg-checkpoint")

type resume = {
  gen : int;
  state : state;
  rejected : (int * string) list;
}

let load_latest ~dir =
  let gens = List.rev (generations ~dir) in
  if gens = [] then
    Error (Printf.sprintf "no checkpoint generation in %s" dir)
  else
    let rec walk rejected = function
      | [] ->
        Error
          (Printf.sprintf
             "no usable checkpoint generation in %s (%d present, all \
              rejected: %s)"
             dir
             (List.length gens)
             (String.concat "; "
                (List.rev_map
                   (fun (g, m) -> Printf.sprintf "gen %d: %s" g m)
                   rejected)))
      | g :: older -> (
        match load ~path:(gen_path ~dir g) with
        | Ok state ->
          Telemetry.add c_restores 1;
          Ok { gen = g; state; rejected = List.rev rejected }
        | Error m ->
          Telemetry.add c_rejected 1;
          if Flightrec.on () then begin
            Flightrec.emit (Flightrec.Checkpoint_reject { gen = g; reason = m });
            ignore
              (Flightrec.incident ~kind:"checkpoint-rejected"
                 ~detail:
                   [ ("generation", Json.num g);
                     ("reason", Json.Str m);
                     ("dir", Json.Str dir);
                     ( "older_generations",
                       Json.Arr (List.map (fun g -> Json.num g) older) ) ]
                 ())
          end;
          walk ((g, m) :: rejected) older)
    in
    walk [] gens

(* ------------------------------------------------------------------ *)
(* Periodic sink *)

type sink = {
  on_accept :
    cycle:int -> residual:float -> v:Grid.t ->
    stats:Solver.cycle_stats list -> unit;
  flush : unit -> string option;
  restore : unit -> (int * float * Grid.t) option;
}

let sink config ~dims ~n ~variant ~plan_digest ?(seed = 0)
    ?(history_prefix = []) () =
  let every = max 1 config.every in
  let last : state option ref = ref None in
  let last_saved = ref min_int in
  let state_of ~cycle ~residual ~v ~stats =
    { cycle;
      residual;
      dims;
      n;
      variant;
      plan_digest;
      seed;
      history = history_prefix @ stats;
      v }
  in
  let save_state st =
    let path = save config st in
    last_saved := st.cycle;
    path
  in
  { on_accept =
      (fun ~cycle ~residual ~v ~stats ->
        if cycle mod every = 0 then begin
          let st = state_of ~cycle ~residual ~v ~stats in
          last := Some st;
          ignore (save_state st)
        end
        else
          (* off-cadence: the solve loop ping-pongs [v], so a deferred
             flush must snapshot its own copy, not the live buffer *)
          last := Some (state_of ~cycle ~residual ~v:(Grid.copy v) ~stats));
    flush =
      (fun () ->
        match !last with
        | Some st when st.cycle > !last_saved ->
          (* the signal handler runs at a safe point in the solving
             thread, so [st.v] is a settled accepted iterate *)
          Some (save_state st)
        | Some _ | None -> None);
    restore =
      (fun () ->
        match load_latest ~dir:config.dir with
        | Ok { state; _ } -> Some (state.cycle, state.residual, state.v)
        | Error _ -> None) }
