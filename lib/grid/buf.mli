(** Flat float64 buffers backed by [Bigarray.Array1].

    All grid data in the library lives in these buffers.  A buffer is a bare
    1-D array of doubles; multi-dimensional indexing is layered on top by
    {!Grid} (for user-facing grids) and by the execution engine (for
    scratchpads and full arrays), which both compute row-major offsets
    explicitly.  Keeping the storage 1-D mirrors the generated C code of the
    paper, where every array — scratchpad or malloc'd — is indexed through
    explicit strides. *)

type data =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private { data : data; len : int }

val create : int -> t
(** [create len] allocates a buffer of [len] doubles initialized to 0. *)

val create_uninit : int -> t
(** [create_uninit len] allocates without clearing; contents are arbitrary. *)

val len : t -> int

val get : t -> int -> float
(** Bounds-checked element read. *)

val set : t -> int -> float -> unit
(** Bounds-checked element write. *)

val unsafe_get : t -> int -> float
val unsafe_set : t -> int -> float -> unit

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] copies [src] into [dst]; lengths must match. *)

val copy : t -> t

val sub_view : t -> pos:int -> len:int -> t
(** [sub_view t ~pos ~len] is a buffer sharing [t]'s storage over the
    given element range: writes through the view are visible in [t].
    Used by the pooled allocator to hand out exact-length windows over
    guarded allocations. *)

val fill_range : t -> pos:int -> len:int -> float -> unit

val find_nonfinite : t -> int option
(** Index of the first NaN or infinity, scanning the whole buffer. *)

val sub_blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

val of_array : float array -> t

val to_array : t -> float array

val iteri : (int -> float -> unit) -> t -> unit

val map_inplace : (float -> float) -> t -> unit

val equal : ?eps:float -> t -> t -> bool
(** Element-wise comparison with absolute tolerance [eps] (default 0). *)

val max_abs_diff : t -> t -> float
(** Largest absolute element-wise difference; lengths must match. *)

val bytes : t -> int
(** Size of the buffer payload in bytes. *)
