type data =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { data : data; len : int }

let create len =
  if len < 0 then invalid_arg "Buf.create: negative length";
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
  Bigarray.Array1.fill data 0.0;
  { data; len }

let create_uninit len =
  if len < 0 then invalid_arg "Buf.create_uninit: negative length";
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
  { data; len }

let len t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Buf.get: index out of bounds";
  Bigarray.Array1.unsafe_get t.data i

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Buf.set: index out of bounds";
  Bigarray.Array1.unsafe_set t.data i v

let unsafe_get t i = Bigarray.Array1.unsafe_get t.data i
let unsafe_set t i v = Bigarray.Array1.unsafe_set t.data i v
let fill t v = Bigarray.Array1.fill t.data v

let blit ~src ~dst =
  if src.len <> dst.len then invalid_arg "Buf.blit: length mismatch";
  Bigarray.Array1.blit src.data dst.data

let copy t =
  let c = create_uninit t.len in
  Bigarray.Array1.blit t.data c.data;
  c

let sub_view t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Buf.sub_view: range out of bounds";
  { data = Bigarray.Array1.sub t.data pos len; len }

let fill_range t ~pos ~len v =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Buf.fill_range: range out of bounds";
  Bigarray.Array1.fill (Bigarray.Array1.sub t.data pos len) v

let find_nonfinite t =
  let rec go i =
    if i >= t.len then None
    else if Float.is_finite (Bigarray.Array1.unsafe_get t.data i) then
      go (i + 1)
    else Some i
  in
  go 0

let sub_blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || dst_pos < 0
     || src_pos + len > src.len || dst_pos + len > dst.len
  then invalid_arg "Buf.sub_blit: range out of bounds";
  let s = Bigarray.Array1.sub src.data src_pos len in
  let d = Bigarray.Array1.sub dst.data dst_pos len in
  Bigarray.Array1.blit s d

let of_array a =
  let t = create_uninit (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set t.data i v) a;
  t

let to_array t = Array.init t.len (fun i -> Bigarray.Array1.unsafe_get t.data i)

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Bigarray.Array1.unsafe_get t.data i)
  done

let map_inplace f t =
  for i = 0 to t.len - 1 do
    Bigarray.Array1.unsafe_set t.data i (f (Bigarray.Array1.unsafe_get t.data i))
  done

let max_abs_diff a b =
  if a.len <> b.len then invalid_arg "Buf.max_abs_diff: length mismatch";
  let m = ref 0.0 in
  for i = 0 to a.len - 1 do
    let d = Float.abs (unsafe_get a i -. unsafe_get b i) in
    if d > !m then m := d
  done;
  !m

let equal ?(eps = 0.0) a b = a.len = b.len && max_abs_diff a b <= eps

let bytes t = 8 * t.len
