(** Stage watchdog: soft deadlines with cooperative cancellation.

    A hung or pathologically slow stage would otherwise block a solve
    forever — the failure mode resource governance must not have.  The
    watchdog is armed around a stage (a plan group) with a nanosecond
    budget; worker code calls {!check} at natural preemption points
    (tile boundaries in {!Repro_core.Exec}), and the first check past
    the deadline raises {!Deadline_exceeded}.  The exception propagates
    out of {!Parallel.parallel_for} like any worker exception, so the
    caller (typically {!Guard}) sees one typed, attributable fault
    instead of a hang.

    Cancellation is {e cooperative}: a stage is only interrupted at a
    tile boundary, never mid-kernel, so buffers are never left in a
    torn state within a tile.  The disarmed fast path of {!check} is a
    single atomic load and compare.

    State is global (one deadline at a time), matching the executor's
    sequential group loop; arming is not reentrant. *)

exception
  Deadline_exceeded of {
    stage : string;  (** the armed stage/group label *)
    elapsed_ns : int;  (** time since arming when the trip was detected *)
    budget_ns : int;
  }

val arm : stage:string -> budget_ns:int -> unit
(** Starts the deadline clock for [stage].  [budget_ns <= 0] raises
    [Invalid_argument].  Re-arming replaces the previous deadline. *)

val disarm : unit -> unit
(** Clears the deadline.  Always safe; idempotent. *)

val armed : unit -> bool

type trip = { t_stage : string; t_elapsed_ns : int; t_budget_ns : int }
(** The payload of {!Deadline_exceeded} as a plain record. *)

val trip_of_exn : exn -> trip option
(** Typed decoding of a {!Deadline_exceeded} exception — response paths
    (the solver daemon) classify deadline stops with this instead of
    matching on rendered exception strings.  [None] for any other
    exception. *)

val remaining_ns : unit -> int option
(** Time left on the armed deadline, clamped at 0; [None] when
    disarmed.  Lets a server report time-left in responses without
    re-deriving the deadline arithmetic. *)

val check : unit -> unit
(** Raises {!Deadline_exceeded} when armed and past the deadline (and
    counts the trip in the [govern.deadline_trips] telemetry counter).
    A cheap no-op otherwise — safe to call from any domain at tile
    granularity. *)

val with_deadline : stage:string -> budget_ns:int -> (unit -> 'a) -> 'a
(** [arm]s, runs the thunk, and [disarm]s even on raise. *)
