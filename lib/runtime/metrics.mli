(** Metrics registry: log-scale histograms, labelled gauges and counters,
    with percentile summaries and machine-readable sinks.

    This extends {!Telemetry} from raw spans/counters to aggregated
    series a monitoring stack can scrape: every series is interned by
    [(name, labels)], histograms bucket values on a log2 scale (64
    buckets, bucket [k] covering [[2^k, 2^(k+1))]), and two sinks render
    the whole registry — {!to_json} (one self-describing document) and
    {!to_openmetrics} (Prometheus/OpenMetrics text exposition, including
    the {!Telemetry} runtime counters).

    Gating follows the telemetry flag: {!observe} and {!incr_by} are
    no-ops costing a single branch-predictable flag test (and zero
    allocations) while telemetry is disabled, so instrumented hot paths
    time identically to the seed.  {!record} bypasses the gate — it is
    the sink-side ingestion path ({!ingest_spans} runs after a
    measurement, when telemetry has already been switched off).

    Recording is multi-domain safe (per-bucket atomics); the sinks and
    {!reset} must run while no domain is recording. *)

type histogram

val histogram : ?labels:(string * string) list -> string -> histogram
(** Interns a histogram series: same [(name, labels)] yields the same
    series.  [name] should be a valid metric name
    ([[a-zA-Z_][a-zA-Z0-9_]*]); labels carry arbitrary strings. *)

val observe : histogram -> float -> unit
(** Records a non-negative sample; a no-op when telemetry is disabled. *)

val record : histogram -> float -> unit
(** Ungated {!observe}, for sink-time ingestion and tests. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [[0, 1]]: linear interpolation inside the
    covering log2 bucket, clamped to the observed min/max.  [nan] when
    the series is empty (JSON sinks render empty-series percentiles as
    [null]). *)

val buckets : histogram -> (float * int) list
(** Cumulative bucket counts as [(upper_bound, count <= bound)] pairs,
    trimmed to the populated range; monotonically non-decreasing. *)

type gauge

val gauge : ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type lcounter
(** A labelled monotonic counter ({!Telemetry.counter} carries a bare
    name; these carry a label set, e.g. per-stage or per-variant). *)

val lcounter : ?labels:(string * string) list -> string -> lcounter

val incr_by : lcounter -> int -> unit
(** Atomic add; a no-op when telemetry is disabled. *)

val lcounter_value : lcounter -> int

val reset : unit -> unit
(** Drops every registered series, so the next sink render starts from a
    clean registry (mirrors {!Telemetry.reset}).  Handles obtained
    before the reset keep accepting updates but are detached — they no
    longer appear in {!to_json}/{!to_openmetrics}; re-intern to
    re-attach. *)

val ingest_spans : Telemetry.span list -> unit
(** Folds completed spans into [span_duration_ns{name=...}] histograms —
    the bridge from the span log to scrapeable duration distributions. *)

(** {2 Sinks} *)

val to_json : unit -> Json.t
(** [{ "histograms": [...], "gauges": [...], "counters": {...} }] with
    per-histogram count/sum/min/max/p50/p90/p99 and cumulative buckets.
    Includes the {!Telemetry} counters under ["counters"]. *)

val to_openmetrics : unit -> string
(** OpenMetrics text exposition: histogram families with cumulative
    [_bucket{le=...}]/[_sum]/[_count] lines, gauges, labelled counters,
    and the {!Telemetry} runtime counters as
    [polymg_runtime_counter_total{name="..."}].  Label values are
    escaped; ends with [# EOF]. *)
