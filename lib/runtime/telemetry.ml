type arg =
  | Int of int
  | Float of float
  | Str of string

type span = {
  name : string;
  cat : string;
  tid : int;
  start_ns : int;
  dur_ns : int;
  args : (string * arg) list;
}

(* A single global flag: the disabled path is one atomic load (a plain
   mov on x86) and a predictable branch, before any clock read. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* ------------------------------------------------------------------ *)
(* Per-domain span buffers.  Each domain appends to its own growable
   array (no sharing on the record path); buffers register themselves in
   a global list on first use so the sinks can merge them. *)

let dummy_span =
  { name = ""; cat = ""; tid = 0; start_ns = 0; dur_ns = 0; args = [] }

type dbuf = { tid : int; mutable sp : span array; mutable len : int }

let registry : dbuf list ref = ref []
let registry_mutex = Mutex.create ()

let dbuf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int);
          sp = Array.make 1024 dummy_span;
          len = 0 }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let record sp =
  let b = Domain.DLS.get dbuf_key in
  if b.len = Array.length b.sp then begin
    let bigger = Array.make (2 * b.len) dummy_span in
    Array.blit b.sp 0 bigger 0 b.len;
    b.sp <- bigger
  end;
  b.sp.(b.len) <- sp;
  b.len <- b.len + 1

let begin_span () = if Atomic.get enabled_flag then now_ns () else 0

let end_span t0 ?(cat = "") ?(args = []) name =
  if t0 <> 0 && Atomic.get enabled_flag then
    let stop = now_ns () in
    record
      { name;
        cat;
        tid = (Domain.self () :> int);
        start_ns = t0;
        dur_ns = stop - t0;
        args }

let with_span ?cat ?args name f =
  let t0 = begin_span () in
  match f () with
  | v ->
    end_span t0 ?cat ?args name;
    v
  | exception e ->
    end_span t0 ?cat ?args name;
    raise e

let spans () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.concat_map (fun b -> Array.to_list (Array.sub b.sp 0 b.len)) bufs
  |> List.sort (fun a b -> compare a.start_ns b.start_ns)

let span_total_ns name =
  List.fold_left
    (fun acc s -> if s.name = name then acc + s.dur_ns else acc)
    0 (spans ())

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = { cname : string; v : int Atomic.t }

let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 32
let counter_mutex = Mutex.create ()

let counter name =
  Mutex.lock counter_mutex;
  let c =
    match Hashtbl.find_opt counter_registry name with
    | Some c -> c
    | None ->
      let c = { cname = name; v = Atomic.make 0 } in
      Hashtbl.replace counter_registry name c;
      c
  in
  Mutex.unlock counter_mutex;
  c

let add c n =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.v n)

let max_to c n =
  if Atomic.get enabled_flag then begin
    let rec go () =
      let cur = Atomic.get c.v in
      if n > cur && not (Atomic.compare_and_set c.v cur n) then go ()
    in
    go ()
  end

let value c = Atomic.get c.v

let counters () =
  Mutex.lock counter_mutex;
  let all =
    Hashtbl.fold
      (fun _ c acc -> (c.cname, Atomic.get c.v) :: acc)
      counter_registry []
  in
  Mutex.unlock counter_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun b -> b.len <- 0) !registry;
  Mutex.unlock registry_mutex;
  Mutex.lock counter_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.v 0) counter_registry;
  Mutex.unlock counter_mutex

(* ------------------------------------------------------------------ *)
(* Sinks *)

let report fmt =
  let sp = spans () in
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let count, total =
        Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0)
      in
      Hashtbl.replace tbl s.name (count + 1, total + s.dur_ns))
    sp;
  let rows = Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl [] in
  let rows = List.sort (fun (_, _, a) (_, _, b) -> compare b a) rows in
  (* wall = the outermost measured region: the cycle spans if present,
     otherwise the largest aggregate *)
  let wall =
    match List.find_opt (fun (n, _, _) -> n = "solver.cycle") rows with
    | Some (_, _, t) -> t
    | None -> List.fold_left (fun acc (_, _, t) -> Int.max acc t) 0 rows
  in
  Format.fprintf fmt "@[<v>== telemetry: spans ==@,";
  Format.fprintf fmt "%-36s %8s %12s %12s %7s@," "name" "count" "total ms"
    "mean us" "wall";
  List.iter
    (fun (name, c, t) ->
      Format.fprintf fmt "%-36s %8d %12.3f %12.1f %6.1f%%@," name c
        (float_of_int t /. 1e6)
        (float_of_int t /. float_of_int c /. 1e3)
        (if wall = 0 then 0.0
         else 100.0 *. float_of_int t /. float_of_int wall))
    rows;
  let busy : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if s.cat = "parallel" then begin
        let t, n = Option.value (Hashtbl.find_opt busy s.tid) ~default:(0, 0) in
        let chunks =
          List.fold_left
            (fun acc kv ->
              match kv with "chunks", Int c -> acc + c | _ -> acc)
            0 s.args
        in
        Hashtbl.replace busy s.tid (t + s.dur_ns, n + chunks)
      end)
    sp;
  if Hashtbl.length busy > 0 then begin
    Format.fprintf fmt "== telemetry: per-domain busy ==@,";
    Hashtbl.fold (fun tid tn acc -> (tid, tn) :: acc) busy []
    |> List.sort compare
    |> List.iter (fun (tid, (t, n)) ->
           Format.fprintf fmt "domain %d: %.3f ms busy, %d chunks@," tid
             (float_of_int t /. 1e6)
             n)
  end;
  Format.fprintf fmt "== telemetry: counters ==@,";
  List.iter
    (fun (n, v) -> Format.fprintf fmt "%-36s %d@," n v)
    (counters ());
  Format.fprintf fmt "@]"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.17g" f
    else "\"" ^ string_of_float f ^ "\""
  | Str s -> "\"" ^ json_escape s ^ "\""

let chrome_trace () =
  let sp = spans () in
  let t0 = match sp with [] -> 0 | s :: _ -> s.start_ns in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (json_escape s.name)
           (json_escape (if s.cat = "" then "default" else s.cat))
           s.tid
           (float_of_int (s.start_ns - t0) /. 1e3)
           (float_of_int s.dur_ns /. 1e3));
      (match s.args with
       | [] -> ()
       | args ->
         Buffer.add_string b ",\"args\":{";
         List.iteri
           (fun j (k, v) ->
             if j > 0 then Buffer.add_char b ',';
             Buffer.add_string b ("\"" ^ json_escape k ^ "\":" ^ arg_json v))
           args;
         Buffer.add_char b '}');
      Buffer.add_char b '}')
    sp;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out path in
  output_string oc (chrome_trace ());
  close_out oc
