type job = {
  f : int -> unit;
  hi : int;
  next : int Atomic.t;  (* next unclaimed index *)
  left : int Atomic.t;  (* indices not yet completed *)
  failed : exn option Atomic.t;
}

type t = {
  nproc : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable shutdown : bool;
  mutable domains : unit Domain.t array;
  in_region : bool Atomic.t;  (* detect nested parallel_for *)
}

let size t = t.nproc

let c_regions = Telemetry.counter "parallel.regions"
let c_chunks = Telemetry.counter "parallel.chunks"
let c_busy_ns = Telemetry.counter "parallel.busy_ns"

let run_share_plain job =
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i <= job.hi then begin
      (try job.f i
       with e ->
         ignore (Atomic.compare_and_set job.failed None (Some e)));
      ignore (Atomic.fetch_and_add job.left (-1));
      loop ()
    end
  in
  loop ()

(* Instrumented variant: one span per domain per parallel region, tagged
   with the number of dynamically claimed chunks. *)
let run_share_timed job =
  let t0 = Telemetry.now_ns () in
  let chunks = ref 0 in
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i <= job.hi then begin
      incr chunks;
      (try job.f i
       with e ->
         ignore (Atomic.compare_and_set job.failed None (Some e)));
      ignore (Atomic.fetch_and_add job.left (-1));
      loop ()
    end
  in
  loop ();
  Telemetry.add c_chunks !chunks;
  Telemetry.add c_busy_ns (Telemetry.now_ns () - t0);
  Telemetry.end_span t0 ~cat:"parallel"
    ~args:[ ("chunks", Telemetry.Int !chunks) ]
    "parallel.share"

let run_share job =
  if Telemetry.enabled () then run_share_timed job else run_share_plain job

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.shutdown) && t.generation = !seen do
      Condition.wait t.has_work t.mutex
    done;
    if t.shutdown then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = t.current in
      Mutex.unlock t.mutex;
      (match job with
       | None -> ()
       | Some job ->
         run_share job;
         if Atomic.get job.left = 0 then begin
           Mutex.lock t.mutex;
           Condition.broadcast t.all_done;
           Mutex.unlock t.mutex
         end);
      loop ()
    end
  in
  loop ()

let create nproc =
  if nproc < 1 then invalid_arg "Parallel.create: pool size must be >= 1";
  let t =
    { nproc;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      current = None;
      generation = 0;
      shutdown = false;
      domains = [||];
      in_region = Atomic.make false }
  in
  t.domains <- Array.init (nproc - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let sequential = create 1

let inline_for ~lo ~hi f =
  if Telemetry.enabled () then begin
    let t0 = Telemetry.now_ns () in
    for i = lo to hi do
      f i
    done;
    Telemetry.add c_chunks (hi - lo + 1);
    Telemetry.add c_busy_ns (Telemetry.now_ns () - t0);
    Telemetry.end_span t0 ~cat:"parallel"
      ~args:[ ("chunks", Telemetry.Int (hi - lo + 1)) ]
      "parallel.inline"
  end
  else
    for i = lo to hi do
      f i
    done

let parallel_for t ~lo ~hi f =
  if hi < lo then ()
  else if t.nproc = 1 || not (Atomic.compare_and_set t.in_region false true)
  then begin
    Telemetry.add c_regions 1;
    inline_for ~lo ~hi f
  end
  else begin
    Telemetry.add c_regions 1;
    let job =
      { f; hi;
        next = Atomic.make lo;
        left = Atomic.make (hi - lo + 1);
        failed = Atomic.make None }
    in
    Mutex.lock t.mutex;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    run_share job;
    Mutex.lock t.mutex;
    while Atomic.get job.left > 0 do
      Condition.wait t.all_done t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    Atomic.set t.in_region false;
    match Atomic.get job.failed with
    | Some e -> raise e
    | None -> ()
  end

let teardown t =
  if t != sequential && not t.shutdown then begin
    Mutex.lock t.mutex;
    t.shutdown <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
