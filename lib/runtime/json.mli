(** Minimal JSON values: just enough for the machine-readable sinks.

    The telemetry/metrics subsystem emits several JSON documents (Chrome
    traces, metrics documents, BENCH records) and the bench comparator
    reads them back; this module is the shared value type, printer and
    parser so emitters and consumers can never disagree on syntax.  It
    is deliberately small — no streaming, no numbers beyond [float] —
    and has no dependencies, so every layer (runtime, bench, tests) can
    use it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num : int -> t
(** Integer-valued {!Num}. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val to_string : t -> string
(** Compact single-line serialization.  Integral floats print without a
    fractional part, so counters round-trip as integers. *)

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Strict parser for the subset this module prints (standard JSON minus
    exotic number forms; [\u] escapes are accepted but decoded as ['?']).
    Errors carry a byte offset. *)

(** {2 Accessors} (total: return [None]/defaults rather than raising) *)

val member : string -> t -> t option
(** Field of an object; [None] for missing fields and non-objects. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list
(** Elements of an array; [[]] for non-arrays. *)
