module Buf = Repro_grid.Buf

let c_writes = Telemetry.counter "snapshot.writes"
let c_bytes = Telemetry.counter "snapshot.bytes_written"
let c_read_ok = Telemetry.counter "snapshot.read_ok"
let c_read_rejected = Telemetry.counter "snapshot.read_rejected"

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE / zlib polynomial, reflected) *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) s =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Crash injection *)

type crash_spec = { after_writes : int; partial_bytes : int }

let crash_spec : crash_spec option ref =
  ref
    (match Sys.getenv_opt "POLYMG_SNAPSHOT_KILL" with
    | None -> None
    | Some s -> (
      match String.split_on_char ':' s with
      | [ w; b ] -> (
        match (int_of_string_opt w, int_of_string_opt b) with
        | Some after_writes, Some partial_bytes ->
          Some { after_writes; partial_bytes }
        | _ -> None)
      | _ -> None))

let set_crash_spec s = crash_spec := s
let writes_done = ref 0
let write_count () = !writes_done

(* ------------------------------------------------------------------ *)
(* Atomic replacement: temp + fsync + rename + directory sync *)

let fsync_dir dir =
  (* Durability of the rename itself.  Some filesystems reject fsync on
     a directory fd; that only weakens the ordering guarantee, never
     correctness of what a reader can observe, so failures are
     ignored. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let write_all fd s len =
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let atomic_write_string ~path s =
  incr writes_done;
  let dir = Filename.dirname path in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let len =
    match !crash_spec with
    | Some { after_writes; partial_bytes } when after_writes = !writes_done ->
      min partial_bytes (String.length s)
    | _ -> String.length s
  in
  (try
     write_all fd s len;
     Unix.fsync fd
   with e ->
     Unix.close fd;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.close fd;
  (match !crash_spec with
   | Some { after_writes; _ } when after_writes = !writes_done ->
     (* die mid-write: the temp file is (partially) on disk, the rename
        never happened — the destination must be unaffected *)
     Unix.kill (Unix.getpid ()) Sys.sigkill
   | _ -> ());
  (try Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  fsync_dir dir;
  Telemetry.add c_writes 1;
  Telemetry.add c_bytes (String.length s)

(* ------------------------------------------------------------------ *)
(* Framed container *)

let schema = "polymg.snapshot/1"
let magic = schema ^ "\n"
let end_marker = "POLYMG-END"

let add_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let add_frame b payload =
  add_u32 b (String.length payload);
  Buffer.add_string b payload;
  add_u32 b (crc32 payload)

let write ~path ~meta ~payloads =
  let header =
    Json.Obj
      [ ("schema", Json.Str schema);
        ("frames", Json.num (List.length payloads));
        ("meta", meta) ]
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_frame b (Json.to_string header);
  List.iter (add_frame b) payloads;
  add_frame b end_marker;
  atomic_write_string ~path (Buffer.contents b)

exception Bad of string

let read ~path =
  let reject msg =
    Telemetry.add c_read_rejected 1;
    Error msg
  in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> reject ("cannot read: " ^ m)
  | s -> (
    let n = String.length s in
    let pos = ref 0 in
    let u32 () =
      if !pos + 4 > n then raise (Bad "truncated: incomplete frame length");
      let v =
        (Char.code s.[!pos] lsl 24)
        lor (Char.code s.[!pos + 1] lsl 16)
        lor (Char.code s.[!pos + 2] lsl 8)
        lor Char.code s.[!pos + 3]
      in
      pos := !pos + 4;
      v
    in
    let frame () =
      let len = u32 () in
      if !pos + len + 4 > n then raise (Bad "truncated: incomplete frame");
      let payload = String.sub s !pos len in
      pos := !pos + len;
      let stored = u32 () in
      if crc32 payload <> stored then raise (Bad "CRC mismatch");
      payload
    in
    match
      if n < String.length magic
         || String.sub s 0 (String.length magic) <> magic
      then raise (Bad "bad magic (not a polymg.snapshot/1 file)");
      pos := String.length magic;
      let header =
        match Json.parse (frame ()) with
        | Ok h -> h
        | Error m -> raise (Bad ("header: " ^ m))
      in
      (match Option.bind (Json.member "schema" header) Json.to_str with
       | Some v when v = schema -> ()
       | _ -> raise (Bad "header: wrong schema"));
      let frames =
        match Option.bind (Json.member "frames" header) Json.to_int with
        | Some f when f >= 0 -> f
        | _ -> raise (Bad "header: missing frame count")
      in
      let payloads = List.init frames (fun _ -> frame ()) in
      if frame () <> end_marker then raise (Bad "bad end marker");
      if !pos <> n then raise (Bad "trailing bytes after end marker");
      let meta =
        Option.value (Json.member "meta" header) ~default:Json.Null
      in
      (meta, payloads)
    with
    | exception Bad m -> reject m
    | result ->
      Telemetry.add c_read_ok 1;
      Ok result)

(* ------------------------------------------------------------------ *)
(* Grid payload codec *)

let payload_of_buf buf =
  let len = Buf.len buf in
  let b = Bytes.create (8 * len) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le b (8 * i) (Int64.bits_of_float (Buf.unsafe_get buf i))
  done;
  Bytes.unsafe_to_string b

let payload_to_buf s buf =
  let len = Buf.len buf in
  if String.length s <> 8 * len then
    Error
      (Printf.sprintf "payload is %d bytes, buffer needs %d"
         (String.length s) (8 * len))
  else begin
    let b = Bytes.unsafe_of_string s in
    for i = 0 to len - 1 do
      Buf.unsafe_set buf i (Int64.float_of_bits (Bytes.get_int64_le b (8 * i)))
    done;
    Ok ()
  end
