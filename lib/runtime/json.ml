type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num i = Num (float_of_int i)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null" (* NaN/Inf have no JSON form; null is the least-bad choice *)

let rec write b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (num_to_string f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b x)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

let to_channel oc v = output_string oc (to_string v)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char b c;
          advance ();
          go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          Buffer.add_char b '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        if Char.code c < 0x20 then fail "raw control char in string";
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> xs | _ -> []
