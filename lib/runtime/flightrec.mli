(** Flight recorder: always-on, bounded-overhead structured event log.

    The black box behind incident reports.  Robustness and execution
    layers ({!Watchdog}, {!Mempool}, [Guard], [Govern], [Exec], the
    solver loop) emit typed events into fixed-size per-domain ring
    buffers; when an anomaly occurs — a guard fault, a quarantine, a
    deadline stop, a budget infeasibility, an uncaught exception — the
    recorder dumps a self-contained {e incident report} (JSON, schema
    [polymg.incident/1]) carrying the event tail, the plan digest, the
    caller's detail payload, a counter snapshot and the environment.

    Overhead discipline mirrors {!Telemetry}: the disabled state costs
    one atomic flag load and a predictable branch per call site and
    never allocates.  Call sites therefore guard event construction:

    {[
      if Flightrec.on () then
        Flightrec.emit (Flightrec.Fault { cycle; fault = "nan" })
    ]}

    Recording is multi-domain safe (each domain appends to its own
    ring) and systhread-safe (threads multiplexed onto one domain share
    its ring under a per-ring lock, and incident filing serializes on a
    process-wide mutex with OS-atomic file creation) — the solver daemon
    records from concurrent request threads.  {!reset} still assumes no
    recorder is mid-solve. *)

(** {2 Ring buffers}

    Exposed for direct testing; {!emit} uses one ring per domain. *)

module Ring : sig
  type 'a t

  val create : int -> 'a t
  (** [create cap] makes an empty ring holding at most [cap] elements.
      @raise Invalid_argument when [cap < 1]. *)

  val push : 'a t -> 'a -> unit
  (** Appends, overwriting (and counting as dropped) the oldest element
      when full. *)

  val to_list : 'a t -> 'a list
  (** Retained elements, oldest first. *)

  val length : 'a t -> int
  val capacity : 'a t -> int

  val dropped : 'a t -> int
  (** Number of elements overwritten since creation. *)
end

(** {2 Events} *)

type kind =
  | Cycle_begin of { cycle : int; fallback : bool }
  | Cycle_end of { cycle : int; residual : float; status : string }
  | Group_begin of { gid : int; kind : string }
  | Group_end of { gid : int }
  | Plan_set of { digest : string; variant : string }
  | Checkpoint of { cycle : int; residual : float }
  | Fault of { cycle : int; fault : string }
  | Rollback of { cycle : int }
  | Retry of { cycle : int; attempt : int; backoff_s : float }
  | Fallback_switch of { cycle : int }
  | Quarantine of { cycle : int; faults : int }
  | Watchdog_armed of { stage : string; budget_ns : int }
  | Deadline_trip of { stage : string; elapsed_ns : int; budget_ns : int }
  | Budget_exceeded of {
      requested_bytes : int;
      budget_bytes : int;
      pool_bytes : int;
    }
  | Pool_trim of { dropped_bytes : int }
  | High_water of { bytes : int; budget_bytes : int }
  | Demotion of { from_rung : string; to_rung : string; over_bytes : int }
  | Runtime_demotion of { rung : string }
  | Infeasible of {
      budget_bytes : int;
      floor_bytes : int;
      floor_rung : string;
    }
  | Checkpoint_write of { gen : int; cycle : int }
      (** a durable checkpoint generation was written *)
  | Checkpoint_restore of { gen : int; cycle : int }
      (** solver state restored from a durable generation *)
  | Checkpoint_reject of { gen : int; reason : string }
      (** a torn/corrupt generation was detected and skipped *)
  | Resume_replan of { old_digest : string; new_digest : string }
      (** resume found a checkpoint from a different plan and re-planned *)
  | Note of string

type event = {
  t_ns : int;  (** monotonic clock, nanoseconds *)
  dom : int;  (** recording domain's id *)
  seq : int;  (** global sequence number: total order across domains *)
  kind : kind;
}

val on : unit -> bool
(** One atomic load; the intended guard around {!emit} call sites. *)

val set_enabled : bool -> unit

val set_capacity : int -> unit
(** Per-domain ring capacity (default 512).  Applies to rings created
    after the call; {!reset} re-creates existing rings at the current
    capacity. *)

val emit : kind -> unit
(** Records an event in the calling domain's ring.  A no-op when
    disabled (but prefer guarding with {!on} so the argument is never
    constructed). *)

val events : unit -> event list
(** Every retained event across all domains, in [seq] order. *)

val dropped_events : unit -> int
(** Total events overwritten across all domains' rings. *)

val reset : unit -> unit
(** Empties every ring, zeroes the drop counts and the incident
    counter, and forgets the noted plan. *)

val event_to_json : event -> Json.t

(** {2 Plan context} *)

val note_plan : digest:string -> variant:string -> unit
(** Remembers the active plan (stored even when disabled, so a recorder
    enabled mid-run still attributes incidents) and, when enabled,
    records a {!Plan_set} event. *)

val noted_plan : unit -> (string * string) option
(** [(digest, variant)] of the most recently noted plan. *)

(** {2 Incident reports} *)

val set_incident_dir : string option -> unit
(** Directory for incident-report files (created on first write).
    [None] (the default) disables report writing; {!incident} is then a
    no-op. *)

val set_max_incidents : int -> unit
(** Cap on reports written per process (default 32); further incidents
    only bump the [flightrec.incidents_suppressed] counter. *)

val incident :
  kind:string -> ?cycle:int -> ?detail:(string * Json.t) list -> unit ->
  string option
(** [incident ~kind ()] writes [incident-NNN-<kind>.json] into the
    incident directory and prints a one-line summary on stderr,
    returning the path.  The document (schema [polymg.incident/1])
    contains the triggering [kind] and [cycle], the noted plan digest
    and variant, the caller's [detail] object, the retained event tail,
    the drop count, a {!Telemetry.counters} snapshot and the process
    environment.  Returns [None] (and writes nothing) when the recorder
    is disabled, no incident directory is set, or the cap is reached.

    Concurrency-safe: the file number is claimed with an atomic
    exclusive create (two overlapping solves — even in different
    processes sharing the directory — can never clobber each other's
    reports), the per-process cap is checked under the incident mutex,
    and filing never raises: an I/O failure is reported as [None] and
    counted in [flightrec.incidents_suppressed]. *)

val incident_count : unit -> int
(** Reports written so far in this process. *)
