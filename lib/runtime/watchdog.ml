exception
  Deadline_exceeded of { stage : string; elapsed_ns : int; budget_ns : int }

(* Pretty-print the payload in backtraces and Guard crash messages. *)
let () =
  Printexc.register_printer (function
    | Deadline_exceeded { stage; elapsed_ns; budget_ns } ->
      Some
        (Printf.sprintf
           "Watchdog.Deadline_exceeded(stage %s: %.3f ms elapsed, budget \
            %.3f ms)"
           stage
           (float_of_int elapsed_ns /. 1e6)
           (float_of_int budget_ns /. 1e6))
    | _ -> None)

type armed_state = {
  stage : string;
  start_ns : int;
  deadline_ns : int;
  tripped : bool Atomic.t;  (* count the trip once across domains *)
}

(* One deadline at a time: groups execute sequentially and the executor
   arms/disarms around each.  Workers only read. *)
let state : armed_state option Atomic.t = Atomic.make None

let c_trips = Telemetry.counter "govern.deadline_trips"

let arm ~stage ~budget_ns =
  if budget_ns <= 0 then invalid_arg "Watchdog.arm: budget must be positive";
  let start_ns = Telemetry.now_ns () in
  Atomic.set state
    (Some
       { stage;
         start_ns;
         deadline_ns = start_ns + budget_ns;
         tripped = Atomic.make false });
  if Flightrec.on () then
    Flightrec.emit (Flightrec.Watchdog_armed { stage; budget_ns })

let disarm () = Atomic.set state None

let armed () = Atomic.get state <> None

(* Typed view of a deadline trip: callers (the solver daemon's response
   path) match on this instead of string-scraping exception messages. *)
type trip = { t_stage : string; t_elapsed_ns : int; t_budget_ns : int }

let trip_of_exn = function
  | Deadline_exceeded { stage; elapsed_ns; budget_ns } ->
    Some { t_stage = stage; t_elapsed_ns = elapsed_ns; t_budget_ns = budget_ns }
  | _ -> None

let remaining_ns () =
  match Atomic.get state with
  | None -> None
  | Some s -> Some (max 0 (s.deadline_ns - Telemetry.now_ns ()))

(* The watchdog stays armed after a trip: Parallel keeps draining the
   remaining indices of a failed region, so every later tile must keep
   raising at its boundary check (skipping its kernel) for cancellation
   to actually shed the work.  Only the first raise per arming counts as
   a trip. *)
let check () =
  match Atomic.get state with
  | None -> ()
  | Some s ->
    let now = Telemetry.now_ns () in
    if now > s.deadline_ns then begin
      if Atomic.compare_and_set s.tripped false true then begin
        Telemetry.add c_trips 1;
        if Flightrec.on () then
          Flightrec.emit
            (Flightrec.Deadline_trip
               { stage = s.stage;
                 elapsed_ns = now - s.start_ns;
                 budget_ns = s.deadline_ns - s.start_ns })
      end;
      raise
        (Deadline_exceeded
           { stage = s.stage;
             elapsed_ns = now - s.start_ns;
             budget_ns = s.deadline_ns - s.start_ns })
    end

let with_deadline ~stage ~budget_ns f =
  arm ~stage ~budget_ns;
  Fun.protect ~finally:disarm f
