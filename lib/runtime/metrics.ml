(* Series are interned by (name, sorted labels).  Histogram buckets are
   per-bucket atomics so concurrent domains can record without locks;
   sum/min/max use CAS loops (they allocate a boxed float per update,
   which only happens on the enabled path — the disabled path is the
   single telemetry flag test and touches nothing). *)

let nbuckets = 64

(* bucket k covers [2^k, 2^(k+1)); bucket 0 additionally absorbs [0, 1) *)
let bucket_of v =
  if not (v >= 2.0) then 0
  else Int.min (nbuckets - 1) (int_of_float (Float.log2 v))

let bucket_hi k = Float.of_int (1 lsl (k + 1))
let bucket_lo k = if k = 0 then 0.0 else Float.of_int (1 lsl k)

let cas_update (a : float Atomic.t) f =
  let rec go () =
    let cur = Atomic.get a in
    let next = f cur in
    if next <> cur && not (Atomic.compare_and_set a cur next) then go ()
  in
  go ()

type histogram = {
  buckets : int Atomic.t array;
  hsum : float Atomic.t;
  hmin : float Atomic.t;
  hmax : float Atomic.t;
}

type gauge = float Atomic.t

type lcounter = int Atomic.t

type series =
  | S_hist of histogram
  | S_gauge of gauge
  | S_counter of lcounter

(* identity -> series; the mutex guards interning only, not updates *)
let registry : (string * (string * string) list, series) Hashtbl.t =
  Hashtbl.create 32

let registry_mutex = Mutex.create ()

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let intern name labels make match_existing =
  let key = (name, canon_labels labels) in
  Mutex.lock registry_mutex;
  let s =
    match Hashtbl.find_opt registry key with
    | Some s -> match_existing s
    | None ->
      let s = make () in
      Hashtbl.replace registry key s;
      s
  in
  Mutex.unlock registry_mutex;
  s

let wrong_kind name =
  invalid_arg ("Metrics: series " ^ name ^ " registered with another kind")

let histogram ?(labels = []) name =
  match
    intern name labels
      (fun () ->
        S_hist
          { buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
            hsum = Atomic.make 0.0;
            hmin = Atomic.make infinity;
            hmax = Atomic.make neg_infinity })
      Fun.id
  with
  | S_hist h -> h
  | S_gauge _ | S_counter _ -> wrong_kind name

let gauge ?(labels = []) name =
  match intern name labels (fun () -> S_gauge (Atomic.make 0.0)) Fun.id with
  | S_gauge g -> g
  | S_hist _ | S_counter _ -> wrong_kind name

let lcounter ?(labels = []) name =
  match intern name labels (fun () -> S_counter (Atomic.make 0)) Fun.id with
  | S_counter c -> c
  | S_hist _ | S_gauge _ -> wrong_kind name

let record h v =
  let v = if v < 0.0 || Float.is_nan v then 0.0 else v in
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  cas_update h.hsum (fun s -> s +. v);
  cas_update h.hmin (fun m -> Float.min m v);
  cas_update h.hmax (fun m -> Float.max m v)

let observe h v = if Telemetry.enabled () then record h v

let incr_by c n =
  if Telemetry.enabled () then ignore (Atomic.fetch_and_add c n)

let lcounter_value c = Atomic.get c
let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let hist_count h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

let hist_sum h = Atomic.get h.hsum

let percentile h q =
  let total = hist_count h in
  if total = 0 then Float.nan
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = q *. float_of_int total in
    let rec walk k cum =
      if k >= nbuckets then bucket_hi (nbuckets - 1)
      else begin
        let c = Atomic.get h.buckets.(k) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let frac =
            if c = 0 then 0.0
            else Float.max 0.0 (target -. cum) /. float_of_int c
          in
          bucket_lo k +. (frac *. (bucket_hi k -. bucket_lo k))
        end
        else walk (k + 1) cum'
      end
    in
    let raw = walk 0 0.0 in
    Float.min (Atomic.get h.hmax) (Float.max (Atomic.get h.hmin) raw)
  end

let buckets h =
  let lastk = ref (-1) in
  Array.iteri (fun k b -> if Atomic.get b > 0 then lastk := k) h.buckets;
  if !lastk < 0 then []
  else begin
    let acc = ref [] in
    let cum = ref 0 in
    for k = 0 to !lastk do
      cum := !cum + Atomic.get h.buckets.(k);
      acc := (bucket_hi k, !cum) :: !acc
    done;
    List.rev !acc
  end

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

let ingest_spans spans =
  List.iter
    (fun (s : Telemetry.span) ->
      let h =
        histogram ~labels:[ ("name", s.Telemetry.name) ] "span_duration_ns"
      in
      record h (float_of_int s.Telemetry.dur_ns))
    spans

(* ------------------------------------------------------------------ *)
(* Sinks *)

let sorted_series () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun k s acc -> (k, s) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) all

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json () =
  let hists = ref [] and gauges = ref [] and lcounters = ref [] in
  List.iter
    (fun ((name, labels), s) ->
      match s with
      | S_hist h ->
        let count = hist_count h in
        let entry =
          Json.Obj
            [ ("name", Json.Str name);
              ("labels", labels_json labels);
              ("count", Json.num count);
              ("sum", Json.Num (hist_sum h));
              ( "min",
                if count = 0 then Json.Null else Json.Num (Atomic.get h.hmin) );
              ( "max",
                if count = 0 then Json.Null else Json.Num (Atomic.get h.hmax) );
              ( "p50",
                if count = 0 then Json.Null else Json.Num (percentile h 0.5) );
              ( "p90",
                if count = 0 then Json.Null else Json.Num (percentile h 0.9) );
              ( "p99",
                if count = 0 then Json.Null else Json.Num (percentile h 0.99)
              );
              ( "buckets",
                Json.Arr
                  (List.map
                     (fun (le, c) -> Json.Arr [ Json.Num le; Json.num c ])
                     (buckets h)) ) ]
        in
        hists := entry :: !hists
      | S_gauge g ->
        gauges :=
          Json.Obj
            [ ("name", Json.Str name);
              ("labels", labels_json labels);
              ("value", Json.Num (Atomic.get g)) ]
          :: !gauges
      | S_counter c ->
        lcounters :=
          Json.Obj
            [ ("name", Json.Str name);
              ("labels", labels_json labels);
              ("value", Json.num (Atomic.get c)) ]
          :: !lcounters)
    (List.rev (sorted_series ()));
  Json.Obj
    [ ("histograms", Json.Arr !hists);
      ("gauges", Json.Arr !gauges);
      ("labelled_counters", Json.Arr !lcounters);
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.num v)) (Telemetry.counters ())) )
    ]

(* OpenMetrics text exposition.  Metric names are sanitized to the
   allowed charset; label values use the escaping of the spec. *)

let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let label_escape v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_name k) (label_escape v))
           labels)
    ^ "}"

let float_om f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_openmetrics () =
  let b = Buffer.create 4096 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let declare name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun ((name, labels), s) ->
      let name = "polymg_" ^ sanitize_name name in
      match s with
      | S_hist h ->
        declare name "histogram";
        let bs = buckets h in
        let count = hist_count h in
        List.iter
          (fun (le, c) ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (render_labels (labels @ [ ("le", float_om le) ]))
                 c))
          bs;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" name
             (render_labels (labels @ [ ("le", "+Inf") ]))
             count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
             (float_om (hist_sum h)));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) count)
      | S_gauge g ->
        declare name "gauge";
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" name (render_labels labels)
             (float_om (Atomic.get g)))
      | S_counter c ->
        declare name "counter";
        Buffer.add_string b
          (Printf.sprintf "%s_total%s %d\n" name (render_labels labels)
             (Atomic.get c)))
    (sorted_series ());
  (* the raw Telemetry runtime counters, as one labelled family *)
  let rc = "polymg_runtime_counter" in
  declare rc "counter";
  List.iter
    (fun (cname, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s_total%s %d\n" rc
           (render_labels [ ("name", cname) ])
           v))
    (Telemetry.counters ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
