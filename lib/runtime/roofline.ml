type t = {
  bandwidth_gbs : float;
  gflops : float;
}

(* STREAM triad a[i] = b[i] + s*c[i]; bandwidth counts the canonical
   3 × 8 bytes per element (write-allocate traffic is not charged, per
   STREAM convention). *)
let triad_pass a b c n =
  let s = 3.0 in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set a i
      (Bigarray.Array1.unsafe_get b i
      +. (s *. Bigarray.Array1.unsafe_get c i))
  done

let measure_bandwidth ~mib ~reps =
  let n = mib * 1024 * 1024 / 8 / 3 in
  let mk () =
    let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    Bigarray.Array1.fill a 1.0;
    a
  in
  let a = mk () and b = mk () and c = mk () in
  triad_pass a b c n (* warm-up: touch every page *);
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Telemetry.now_ns () in
    triad_pass a b c n;
    let dt = Telemetry.now_ns () - t0 in
    if float_of_int dt < !best then best := float_of_int dt
  done;
  ignore (Sys.opaque_identity (Bigarray.Array1.get a 0));
  float_of_int (3 * 8 * n) /. !best (* bytes/ns = GB/s *)

(* Peak scalar FLOP/s: 8 independent multiply-add chains in registers.
   OCaml's native compiler keeps the local floats unboxed; 8 chains are
   enough to cover FMA latency on current cores. *)
let flops_pass iters =
  let x0 = ref 1.0 and x1 = ref 1.1 and x2 = ref 1.2 and x3 = ref 1.3 in
  let x4 = ref 1.4 and x5 = ref 1.5 and x6 = ref 1.6 and x7 = ref 1.7 in
  let s = 0.999999 and t = 1e-9 in
  for _ = 1 to iters do
    x0 := (!x0 *. s) +. t;
    x1 := (!x1 *. s) +. t;
    x2 := (!x2 *. s) +. t;
    x3 := (!x3 *. s) +. t;
    x4 := (!x4 *. s) +. t;
    x5 := (!x5 *. s) +. t;
    x6 := (!x6 *. s) +. t;
    x7 := (!x7 *. s) +. t
  done;
  !x0 +. !x1 +. !x2 +. !x3 +. !x4 +. !x5 +. !x6 +. !x7

let measure_gflops ~reps =
  let iters = 4_000_000 in
  ignore (Sys.opaque_identity (flops_pass 1000));
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Telemetry.now_ns () in
    ignore (Sys.opaque_identity (flops_pass iters));
    let dt = Telemetry.now_ns () - t0 in
    if float_of_int dt < !best then best := float_of_int dt
  done;
  float_of_int (16 * iters) /. !best (* flops/ns = GFLOP/s *)

let measure ?(mib = 48) ?(reps = 3) () =
  { bandwidth_gbs = measure_bandwidth ~mib ~reps;
    gflops = measure_gflops ~reps }

let cached : t option ref = ref None
let cache_mutex = Mutex.create ()

let get () =
  Mutex.lock cache_mutex;
  let r =
    match !cached with
    | Some r -> r
    | None ->
      let r = measure () in
      cached := Some r;
      r
  in
  Mutex.unlock cache_mutex;
  r

let roof_gflops t ~intensity =
  Float.min t.gflops (intensity *. t.bandwidth_gbs)
