(** Per-stage statistical profiler.

    Interned sites, per-domain [Domain.DLS] accumulators holding
    streaming Welford moments (count/mean/variance/min/max/total, in
    nanoseconds) plus a log2 histogram, merged across domains by the
    sinks with the parallel Welford combination.  Always compiled in;
    the disabled path is a single atomic flag load and a predictable
    branch, reads no clock, and never allocates (asserted by
    [bench/main.exe profile] and the CI on/off gate at
    [compare.exe --threshold 0.02]).

    Counter mirrors [profile.samples] / [profile.sites] move only while
    telemetry is enabled; the profiler's own accumulators are
    authoritative. *)

type site
(** An interned measurement site (a stage, a group, a whole run). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val site : string -> site
(** Intern (or look up) a site by name.  Cheap but mutex-guarded: hoist
    out of hot loops. *)

val site_name : site -> string

val start : unit -> int
(** [start ()] reads the monotonic clock when the profiler is enabled,
    and returns [0] (no clock read, no allocation) when disabled. *)

val stop : int -> site -> unit
(** [stop t0 site] records [now - t0] ns against [site]; a no-op when
    [t0 = 0] (i.e. when [start] ran disabled). *)

val record : site -> float -> unit
(** Record a raw sample (in ns) directly; gated on the enabled flag. *)

type stats = {
  count : int;
  mean : float;
  variance : float;  (** sample variance (n-1 denominator); 0 if count < 2 *)
  min : float;
  max : float;
  total : float;
}

val stats : site -> stats option
(** Welford stats merged across every domain that sampled the site;
    [None] if no sample was recorded.  Unsynchronized with the record
    path — read at quiescence. *)

val percentile : site -> float -> float
(** Log2-histogram percentile (q in [0,1]), clamped to the observed
    [min,max]; [nan] when the site has no samples. *)

val sites : unit -> (string * stats) list
(** Every site with at least one sample, sorted by name. *)

val report : Format.formatter -> unit
(** Human-readable per-site table, sorted by total time. *)

val to_json : unit -> Json.t
(** All populated sites with stats and p50/p90/p99, as JSON. *)

val reset : unit -> unit
(** Drop all samples from every registered domain table.  Site interning
    (and ids) survive. *)
