(** Runtime telemetry: monotonic-clock spans and atomic counters.

    The engine behind [mg_solve --profile]/[--trace], [polymg_dump
    explain] and the bench harness counter snapshots.  It is designed so
    that the {e disabled} state (the default) costs a single
    branch-predictable flag test per call site: {!begin_span} returns the
    immediate token [0] without reading the clock, {!end_span} and
    counter updates return immediately, and nothing allocates.  Tier-1
    timings are therefore unperturbed when telemetry is off.

    When enabled, completed spans are appended to per-domain buffers
    (registered once per domain, no cross-domain contention on the hot
    path) and counters are updated with atomic read-modify-writes.  Two
    sinks consume the recorded data: {!report}, a human-readable profile
    table, and {!chrome_trace}, trace-event JSON that
    [chrome://tracing]/Perfetto loads directly.

    Recording is multi-domain safe; the sinks ({!spans}, {!report},
    {!chrome_trace}) and {!reset} must be called while no domain is
    actively recording (i.e. between plan executions). *)

type arg =
  | Int of int
  | Float of float
  | Str of string  (** span argument payloads, shown in trace viewers *)

type span = {
  name : string;
  cat : string;  (** category, e.g. ["exec"], ["stage"], ["parallel"] *)
  tid : int;  (** recording domain's id *)
  start_ns : int;  (** monotonic clock, nanoseconds *)
  dur_ns : int;
  args : (string * arg) list;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drops every recorded span and zeroes every counter. *)

val now_ns : unit -> int
(** Raw monotonic clock in nanoseconds (always live, even when
    disabled). *)

val begin_span : unit -> int
(** Start-of-span token: the current monotonic time, or [0] when
    disabled.  No allocation either way. *)

val end_span : int -> ?cat:string -> ?args:(string * arg) list -> string -> unit
(** [end_span t0 name] records a completed span opened at [begin_span]'s
    token [t0].  A no-op (without evaluating defaults) when [t0 = 0] or
    telemetry is disabled.  Call sites that must stay allocation-free
    when disabled should guard argument construction with [t0 <> 0]. *)

val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Convenience wrapper; records the span even when [f] raises. *)

val spans : unit -> span list
(** All completed spans, sorted by start time. *)

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Interns a counter by name: the same name always yields the same
    counter.  Create counters once (at module init) — creation takes a
    lock; updates are lock-free. *)

val add : counter -> int -> unit
(** Atomic increment; a no-op when disabled. *)

val max_to : counter -> int -> unit
(** Raises the counter to [n] if [n] is greater (atomic); a no-op when
    disabled. *)

val value : counter -> int

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

(** {2 Sinks} *)

val report : Format.formatter -> unit
(** Profile table: spans aggregated by name (count, total, mean, share
    of wall-clock), per-domain busy time from ["parallel"]-category
    spans, and all counters. *)

val span_total_ns : string -> int
(** Sum of [dur_ns] over recorded spans with the given name. *)

val chrome_trace : unit -> string
(** Chrome trace-event JSON (["X"] complete events, microsecond
    timestamps relative to the first span). *)

val write_chrome_trace : string -> unit
(** Writes {!chrome_trace} to a file. *)

val json_escape : string -> string
(** JSON string-body escaping helper (shared with the bench harness). *)
