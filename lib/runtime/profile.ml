(* Per-stage statistical profiler.

   Sites are interned once (by name); each domain accumulates streaming
   Welford moments (count/mean/M2/min/max/total) plus a log2 histogram
   into its own [Domain.DLS] table, so the record path never shares a
   cache line with another domain.  Tables register themselves in a
   global list on first use and outlive their domain, so the sinks can
   merge per-domain accumulators at teardown with the parallel Welford
   combination (Chan et al.).

   Overhead discipline (house rule, same as Telemetry/Flightrec): the
   disabled path is one atomic flag load and a predictable branch —
   [start] returns 0 without reading the clock, [stop 0 _] does nothing,
   and neither allocates.  The enabled path may allocate only on the
   first sample of a (domain, site) pair. *)

type site = { id : int; sname : string }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Counter mirrors (gated on the telemetry flag, like Flightrec's): the
   profiler's own accumulators are authoritative. *)
let c_samples = Telemetry.counter "profile.samples"
let c_sites = Telemetry.counter "profile.sites"

(* ------------------------------------------------------------------ *)
(* Site interning: id is a dense index into the per-domain tables. *)

let site_registry : (string, site) Hashtbl.t = Hashtbl.create 64
let site_mutex = Mutex.create ()
let next_id = ref 0 (* guarded by site_mutex *)

let site name =
  Mutex.lock site_mutex;
  let s =
    match Hashtbl.find_opt site_registry name with
    | Some s -> s
    | None ->
      let s = { id = !next_id; sname = name } in
      incr next_id;
      Hashtbl.replace site_registry name s;
      Telemetry.add c_sites 1;
      s
  in
  Mutex.unlock site_mutex;
  s

let site_name s = s.sname

let all_sites () =
  Mutex.lock site_mutex;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) site_registry [] in
  Mutex.unlock site_mutex;
  List.sort (fun a b -> String.compare a.sname b.sname) all

(* ------------------------------------------------------------------ *)
(* Per-domain accumulators.  The float state lives in a flat float
   array ([q]) so enabled-path updates are in-place stores, never boxed
   allocations (a mutable float field in a mixed record would box). *)

let nbuckets = 64

(* bucket k covers [2^k, 2^(k+1)) ns; bucket 0 additionally absorbs
   [0, 1) — same shape as Metrics histograms *)
let bucket_of v =
  if not (v >= 2.0) then 0
  else Int.min (nbuckets - 1) (int_of_float (Float.log2 v))

let bucket_hi k = Float.of_int (1 lsl (k + 1))
let bucket_lo k = if k = 0 then 0.0 else Float.of_int (1 lsl k)

type acc = {
  mutable count : int;
  q : float array; (* mean; m2; min; max; total *)
  hist : int array;
}

let fresh_acc () =
  { count = 0;
    q = [| 0.0; 0.0; infinity; neg_infinity; 0.0 |];
    hist = Array.make nbuckets 0 }

type dtab = { mutable accs : acc option array }

let registry : dtab list ref = ref []
let registry_mutex = Mutex.create ()

let tab_key : dtab Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t = { accs = Array.make 64 None } in
      Mutex.lock registry_mutex;
      registry := t :: !registry;
      Mutex.unlock registry_mutex;
      t)

let record s v =
  if Atomic.get enabled_flag then begin
    let t = Domain.DLS.get tab_key in
    let n = Array.length t.accs in
    if s.id >= n then begin
      let bigger = Array.make (Int.max (2 * n) (s.id + 1)) None in
      Array.blit t.accs 0 bigger 0 n;
      t.accs <- bigger
    end;
    let a =
      match t.accs.(s.id) with
      | Some a -> a
      | None ->
        let a = fresh_acc () in
        t.accs.(s.id) <- Some a;
        a
    in
    let q = a.q in
    a.count <- a.count + 1;
    let delta = v -. q.(0) in
    q.(0) <- q.(0) +. (delta /. float_of_int a.count);
    q.(1) <- q.(1) +. (delta *. (v -. q.(0)));
    if v < q.(2) then q.(2) <- v;
    if v > q.(3) then q.(3) <- v;
    q.(4) <- q.(4) +. v;
    let k = bucket_of v in
    a.hist.(k) <- a.hist.(k) + 1;
    Telemetry.add c_samples 1
  end

let start () = if Atomic.get enabled_flag then now_ns () else 0
let stop t0 s = if t0 <> 0 then record s (float_of_int (now_ns () - t0))

(* ------------------------------------------------------------------ *)
(* Sinks: merge per-domain accumulators.  Reads are unsynchronized with
   the record path (like Telemetry's span merge) — call at quiescence. *)

type stats = {
  count : int;
  mean : float;
  variance : float; (* sample variance (n-1); 0 when count < 2 *)
  min : float;
  max : float;
  total : float;
}

let snapshot_tabs () =
  Mutex.lock registry_mutex;
  let tabs = !registry in
  Mutex.unlock registry_mutex;
  tabs

let merged_acc id =
  let count = ref 0
  and mean = ref 0.0
  and m2 = ref 0.0
  and vmin = ref infinity
  and vmax = ref neg_infinity
  and total = ref 0.0 in
  List.iter
    (fun t ->
      if id < Array.length t.accs then
        match t.accs.(id) with
        | Some a when a.count > 0 ->
          (* parallel Welford combination *)
          let na = float_of_int !count and nb = float_of_int a.count in
          let n = na +. nb in
          let delta = a.q.(0) -. !mean in
          m2 := !m2 +. a.q.(1) +. (delta *. delta *. na *. nb /. n);
          mean := !mean +. (delta *. nb /. n);
          count := !count + a.count;
          if a.q.(2) < !vmin then vmin := a.q.(2);
          if a.q.(3) > !vmax then vmax := a.q.(3);
          total := !total +. a.q.(4)
        | _ -> ())
    (snapshot_tabs ());
  if !count = 0 then None
  else
    Some
      { count = !count;
        mean = !mean;
        variance =
          (if !count < 2 then 0.0 else !m2 /. float_of_int (!count - 1));
        min = !vmin;
        max = !vmax;
        total = !total }

let stats s = merged_acc s.id

let merged_hist id =
  let h = Array.make nbuckets 0 in
  List.iter
    (fun t ->
      if id < Array.length t.accs then
        match t.accs.(id) with
        | Some a ->
          for k = 0 to nbuckets - 1 do
            h.(k) <- h.(k) + a.hist.(k)
          done
        | None -> ())
    (snapshot_tabs ());
  h

let percentile s qv =
  match merged_acc s.id with
  | None -> Float.nan
  | Some st ->
    let h = merged_hist s.id in
    let total = Array.fold_left ( + ) 0 h in
    if total = 0 then Float.nan
    else begin
      let qv = Float.min 1.0 (Float.max 0.0 qv) in
      let target = qv *. float_of_int total in
      let rec walk k cum =
        if k >= nbuckets then bucket_hi (nbuckets - 1)
        else begin
          let c = h.(k) in
          let cum' = cum +. float_of_int c in
          if c > 0 && cum' >= target then begin
            let frac = Float.max 0.0 (target -. cum) /. float_of_int c in
            bucket_lo k +. (frac *. (bucket_hi k -. bucket_lo k))
          end
          else walk (k + 1) cum'
        end
      in
      let raw = walk 0 0.0 in
      Float.min st.max (Float.max st.min raw)
    end

let sites () =
  List.filter_map
    (fun s -> Option.map (fun st -> (s.sname, st)) (stats s))
    (all_sites ())

let reset () =
  List.iter
    (fun t -> Array.iteri (fun i _ -> t.accs.(i) <- None) t.accs)
    (snapshot_tabs ())

let report fmt =
  let rows = sites () in
  let rows =
    List.sort (fun (_, a) (_, b) -> compare b.total a.total) rows
  in
  let wall =
    match List.assoc_opt "solver.cycle" rows with
    | Some st -> st.total
    | None -> List.fold_left (fun acc (_, st) -> Float.max acc st.total) 0.0 rows
  in
  Format.fprintf fmt "@[<v>== profile: per-site streaming stats ==@,";
  Format.fprintf fmt "%-36s %8s %10s %10s %10s %10s %10s %6s@," "site" "count"
    "total ms" "mean us" "sd us" "min us" "max us" "wall";
  List.iter
    (fun (name, st) ->
      Format.fprintf fmt
        "%-36s %8d %10.3f %10.2f %10.2f %10.2f %10.2f %5.1f%%@," name st.count
        (st.total /. 1e6) (st.mean /. 1e3)
        (Float.sqrt st.variance /. 1e3)
        (st.min /. 1e3) (st.max /. 1e3)
        (if wall = 0.0 then 0.0 else 100.0 *. st.total /. wall))
    rows;
  Format.fprintf fmt "@]"

let fnum f = if Float.is_finite f then Json.Num f else Json.Null

let site_json s =
  match stats s with
  | None -> None
  | Some st ->
    Some
      (Json.Obj
         [ ("site", Json.Str s.sname);
           ("count", Json.num st.count);
           ("total_ns", fnum st.total);
           ("mean_ns", fnum st.mean);
           ("variance_ns2", fnum st.variance);
           ("min_ns", fnum st.min);
           ("max_ns", fnum st.max);
           ("p50_ns", fnum (percentile s 0.5));
           ("p90_ns", fnum (percentile s 0.9));
           ("p99_ns", fnum (percentile s 0.99)) ])

let to_json () =
  Json.Obj
    [ ("enabled", Json.Bool (enabled ()));
      ("sites", Json.Arr (List.filter_map site_json (all_sites ()))) ]
