(** Longitudinal performance ledger: one self-describing
    [polymg.ledger/1] JSONL record per bench/profiled run, carrying the
    machine fingerprint (hostname, OCaml version, word size, measured
    roofline), the run configuration and plan digest, the per-cycle
    time, and per-site profiler stats.

    Appends are durable ({!Snapshot.atomic_write_string}: temp + fsync +
    rename of the whole file), so a crash can never leave a torn line.
    [bench/trend.exe] reads the ledger back to render trend reports and
    gate on regressions.  Counters: [ledger.appends], [ledger.skipped]
    (telemetry-gated mirrors). *)

val schema : string
(** ["polymg.ledger/1"]. *)

type record = {
  timestamp : float;  (** unix seconds *)
  hostname : string;
  ocaml_version : string;
  word_size : int;
  roofline : Roofline.t;
  bench : string;  (** config name, e.g. ["V-2D-4-4-4"] *)
  n : int;
  domains : int;
  variant : string;
  plan_digest : string;
  s_per_cycle : float;
  sites : (string * Profile.stats) list;
  extra : (string * Json.t) list;
      (** caller-specific fields, serialized at top level; not parsed
          back by {!load} *)
}

val make :
  ?timestamp:float ->
  ?roofline:Roofline.t ->
  ?sites:(string * Profile.stats) list ->
  ?extra:(string * Json.t) list ->
  bench:string ->
  n:int ->
  domains:int ->
  variant:string ->
  plan_digest:string ->
  s_per_cycle:float ->
  unit ->
  record
(** Build a record stamped with the current time, machine fingerprint,
    cached roofline, and the profiler's current merged site stats. *)

val key : record -> string
(** The series key records are grouped by for trend analysis: hostname,
    bench, n, domains and variant — never compare across machines. *)

val to_json : record -> Json.t
val of_json : Json.t -> record option

val append : path:string -> record -> unit
(** Durably append one record (atomic whole-file rewrite). *)

val load : string -> record list * int
(** Parse a ledger file in order, tolerantly: returns the readable
    records and the number of skipped (unparsable or alien-schema)
    lines.  A missing file is an empty ledger. *)
