(** Pooled memory allocation (paper §3.2.3).

    Full-array allocation requests from the execution engine go through a
    pool that outlives individual multigrid cycles: [acquire] returns an
    existing free buffer when one is large enough (best fit), otherwise
    allocates a fresh one; [release] is a table update making the buffer
    available again.  Arrays are thus physically allocated on the first
    cycle and reused by all later cycles — and releasing as soon as the
    last consumer of an array finishes lets later stages of the {e same}
    cycle reuse it, catching inter-group reuse the static pass missed.

    {b Poison/canary mode} ([create ~poison:true]) hardens the pool for
    fault hunting: every handed-out buffer is an exact-length view filled
    with signaling NaNs (so reads of released or never-written memory
    surface as NaNs the solver guard detects), and canary guard words are
    written just past each window and re-checked on [release], turning
    out-of-bounds tile writes into an immediate [Invalid_argument]
    instead of silent corruption of a neighbouring array. *)

type t

type stats = {
  fresh_allocs : int;  (** requests served by a new allocation *)
  reuse_hits : int;  (** requests served from the free list *)
  live_bytes : int;  (** bytes currently acquired *)
  pool_bytes : int;  (** bytes owned by the pool (live + free) *)
  peak_live_bytes : int;
}

exception
  Budget_exceeded of {
    requested_bytes : int;  (** size of the refused fresh allocation *)
    budget_bytes : int;
    pool_bytes : int;  (** bytes the pool already owned *)
  }
(** Raised by {!acquire} when a fresh allocation would push the pool past
    its byte budget even after trimming every free buffer.  The pool is
    left in a consistent state (nothing was allocated), so the caller can
    recover — {!Repro_mg.Solver} responds by re-planning one rung down
    the degradation ladder instead of aborting the solve. *)

val create : ?poison:bool -> ?budget:int -> unit -> t
(** [poison] (default false) enables poison/canary mode.  [budget] caps
    the bytes the pool may own (see {!set_budget}). *)

val poisoned : t -> bool

val set_budget : t -> int option -> unit
(** Installs (or with [None] removes) a hard byte ceiling on
    [pool_bytes].  Once set, {!acquire} keeps the pool under the budget:
    reuse from the free list is always allowed, a fresh allocation first
    trims free buffers to make room, and an allocation that still cannot
    fit raises {!Budget_exceeded} — it never aborts the process, and the
    high-water mark provably stays at or under the budget.  Overruns and
    trims are counted in the [govern.budget_exceeded] / [govern.pool_trims]
    telemetry counters; the high-water mark and budget are exported as
    [govern_pool_high_water_bytes] / [govern_pool_budget_bytes] gauges.
    @raise Invalid_argument for a non-positive budget. *)

val budget : t -> int option

val guard_elems : int
(** Guard words reserved past every window in poison mode. *)

val snan : float
(** The signaling-NaN payload poison mode fills buffers with. *)

val acquire : t -> int -> Repro_grid.Buf.t
(** [acquire t len] returns a buffer with at least [len] elements.
    Contents are unspecified (reused buffers are dirty); in poison mode
    the buffer has exactly [len] elements, every one a signaling NaN.
    @raise Budget_exceeded when a budget is set and cannot be met. *)

val release : t -> Repro_grid.Buf.t -> unit
(** Returns a buffer to the pool.
    @raise Invalid_argument if the buffer is not currently acquired
    (double releases name the buffer size and its acquire count), or if
    poison-mode guard words were clobbered by an out-of-bounds write. *)

val with_pool : ?poison:bool -> ?budget:int -> (t -> 'a) -> 'a
(** Scoped pool: created for [f] and cleared on exit, even on raise. *)

val with_buf : t -> int -> (Repro_grid.Buf.t -> 'a) -> 'a
(** Scoped acquire: the buffer is released when [f] returns or raises, so
    callers cannot forget {!release}. *)

val stats : t -> stats

val live_count : t -> int

val clear : t -> unit
(** Drops every buffer (free and acquired) and resets statistics.
    Buffers still acquired at clear time are recorded in the process-wide
    leak ledger (see {!assert_quiescent}) — clearing does not forgive a
    leak, it files it. *)

(** {2 Process-wide quiescence}

    Every acquire/release across every pool also updates one global
    outstanding-buffer count (exact regardless of the telemetry flag).
    Long-running hosts — the solver daemon, campaign teardowns — call
    {!assert_quiescent} between requests or at shutdown to turn a leaked
    buffer into a typed failure instead of slow memory growth. *)

exception
  Not_quiescent of {
    outstanding : int;  (** buffers acquired and never released *)
    leaked : int;  (** buffers dropped by {!clear} while still acquired *)
    detail : string list;  (** per-pool descriptions (bounded) *)
  }

val outstanding : unit -> int
(** Buffers currently acquired across all pools in this process. *)

val assert_quiescent : unit -> int
(** Returns 0 when no buffer is outstanding and nothing was leaked at
    clear time; otherwise raises {!Not_quiescent} with per-pool detail.
    The return value is the outstanding count, kept as an [int] so call
    sites can log it. *)

val reset_quiescence : unit -> unit
(** Zeroes the global quiescence ledger.  For test harnesses that
    deliberately leak (fault-injection campaigns) and must not poison
    later checks. *)
