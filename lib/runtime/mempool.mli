(** Pooled memory allocation (paper §3.2.3).

    Full-array allocation requests from the execution engine go through a
    pool that outlives individual multigrid cycles: [acquire] returns an
    existing free buffer when one is large enough (best fit), otherwise
    allocates a fresh one; [release] is a table update making the buffer
    available again.  Arrays are thus physically allocated on the first
    cycle and reused by all later cycles — and releasing as soon as the
    last consumer of an array finishes lets later stages of the {e same}
    cycle reuse it, catching inter-group reuse the static pass missed.

    {b Poison/canary mode} ([create ~poison:true]) hardens the pool for
    fault hunting: every handed-out buffer is an exact-length view filled
    with signaling NaNs (so reads of released or never-written memory
    surface as NaNs the solver guard detects), and canary guard words are
    written just past each window and re-checked on [release], turning
    out-of-bounds tile writes into an immediate [Invalid_argument]
    instead of silent corruption of a neighbouring array. *)

type t

type stats = {
  fresh_allocs : int;  (** requests served by a new allocation *)
  reuse_hits : int;  (** requests served from the free list *)
  live_bytes : int;  (** bytes currently acquired *)
  pool_bytes : int;  (** bytes owned by the pool (live + free) *)
  peak_live_bytes : int;
}

val create : ?poison:bool -> unit -> t
(** [poison] (default false) enables poison/canary mode. *)

val poisoned : t -> bool

val guard_elems : int
(** Guard words reserved past every window in poison mode. *)

val snan : float
(** The signaling-NaN payload poison mode fills buffers with. *)

val acquire : t -> int -> Repro_grid.Buf.t
(** [acquire t len] returns a buffer with at least [len] elements.
    Contents are unspecified (reused buffers are dirty); in poison mode
    the buffer has exactly [len] elements, every one a signaling NaN. *)

val release : t -> Repro_grid.Buf.t -> unit
(** Returns a buffer to the pool.
    @raise Invalid_argument if the buffer is not currently acquired
    (double releases name the buffer size and its acquire count), or if
    poison-mode guard words were clobbered by an out-of-bounds write. *)

val with_pool : ?poison:bool -> (t -> 'a) -> 'a
(** Scoped pool: created for [f] and cleared on exit, even on raise. *)

val with_buf : t -> int -> (Repro_grid.Buf.t -> 'a) -> 'a
(** Scoped acquire: the buffer is released when [f] returns or raises, so
    callers cannot forget {!release}. *)

val stats : t -> stats

val live_count : t -> int

val clear : t -> unit
(** Drops every buffer (free and acquired) and resets statistics. *)
