(** Machine roofline: measured-once STREAM-style memory bandwidth and a
    register-resident multiply-add peak, the two ceilings achieved
    per-stage GB/s and GFLOP/s are judged against (Williams et al.,
    "Roofline: an insightful visual performance model").

    Both probes are deliberately crude — a triad sweep over arrays far
    larger than cache, and independent multiply-add chains that never
    touch memory — because the model only needs the right order of
    magnitude to say "this stage runs at 80% of what its memory traffic
    predicts" vs "this stage is nowhere near the roof". *)

type t = {
  bandwidth_gbs : float;  (** sustained triad bandwidth, GB/s *)
  gflops : float;  (** sustained scalar multiply-add rate, GFLOP/s *)
}

val measure : ?mib:int -> ?reps:int -> unit -> t
(** Runs both probes now.  [mib] (default 48) is the total triad working
    set across the three arrays; [reps] (default 3) takes the best pass.
    Costs roughly [reps] × tens of milliseconds. *)

val get : unit -> t
(** The process-wide roofline, measured on first call and cached — so a
    metrics document can embed it without re-paying the probe. *)

val roof_gflops : t -> intensity:float -> float
(** The roofline ceiling at a given arithmetic intensity (FLOP/byte):
    [min gflops (intensity * bandwidth_gbs)]. *)
