open Repro_grid

type stats = {
  fresh_allocs : int;
  reuse_hits : int;
  live_bytes : int;
  pool_bytes : int;
  peak_live_bytes : int;
}

(* Global telemetry counters (shared by all pools; in practice one pool
   per runtime).  Updates are no-ops while telemetry is disabled. *)
let c_acquire = Telemetry.counter "mempool.acquire"
let c_release = Telemetry.counter "mempool.release"
let c_hit = Telemetry.counter "mempool.hit"
let c_miss = Telemetry.counter "mempool.miss"
let c_peak = Telemetry.counter "mempool.peak_live_bytes"

type entry = { buf : Buf.t; mutable free : bool }

type t = {
  mutable entries : entry list;
  mutable fresh_allocs : int;
  mutable reuse_hits : int;
  mutable live_bytes : int;
  mutable pool_bytes : int;
  mutable peak_live_bytes : int;
}

let create () =
  { entries = [];
    fresh_allocs = 0;
    reuse_hits = 0;
    live_bytes = 0;
    pool_bytes = 0;
    peak_live_bytes = 0 }

let note_live t delta =
  t.live_bytes <- t.live_bytes + delta;
  if t.live_bytes > t.peak_live_bytes then t.peak_live_bytes <- t.live_bytes;
  Telemetry.max_to c_peak t.peak_live_bytes

(* Best fit: smallest free buffer that is large enough. *)
let find_fit t len =
  List.fold_left
    (fun best e ->
      if e.free && Buf.len e.buf >= len then
        match best with
        | Some b when Buf.len b.buf <= Buf.len e.buf -> best
        | _ -> Some e
      else best)
    None t.entries

let acquire t len =
  if len < 0 then invalid_arg "Mempool.acquire: negative length";
  Telemetry.add c_acquire 1;
  match find_fit t len with
  | Some e ->
    e.free <- false;
    t.reuse_hits <- t.reuse_hits + 1;
    Telemetry.add c_hit 1;
    note_live t (Buf.bytes e.buf);
    e.buf
  | None ->
    let buf = Buf.create_uninit len in
    t.entries <- { buf; free = false } :: t.entries;
    t.fresh_allocs <- t.fresh_allocs + 1;
    Telemetry.add c_miss 1;
    t.pool_bytes <- t.pool_bytes + Buf.bytes buf;
    note_live t (Buf.bytes buf);
    buf

let release t buf =
  let rec find = function
    | [] -> invalid_arg "Mempool.release: buffer not from this pool"
    | e :: rest -> if e.buf == buf then e else find rest
  in
  let e = find t.entries in
  if e.free then invalid_arg "Mempool.release: double release";
  Telemetry.add c_release 1;
  e.free <- true;
  t.live_bytes <- t.live_bytes - Buf.bytes e.buf

let stats t =
  { fresh_allocs = t.fresh_allocs;
    reuse_hits = t.reuse_hits;
    live_bytes = t.live_bytes;
    pool_bytes = t.pool_bytes;
    peak_live_bytes = t.peak_live_bytes }

let live_count t =
  List.length (List.filter (fun e -> not e.free) t.entries)

let clear t =
  t.entries <- [];
  t.fresh_allocs <- 0;
  t.reuse_hits <- 0;
  t.live_bytes <- 0;
  t.pool_bytes <- 0;
  t.peak_live_bytes <- 0
