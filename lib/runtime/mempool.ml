open Repro_grid

type stats = {
  fresh_allocs : int;
  reuse_hits : int;
  live_bytes : int;
  pool_bytes : int;
  peak_live_bytes : int;
}

exception
  Budget_exceeded of { requested_bytes : int; budget_bytes : int;
                       pool_bytes : int }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { requested_bytes; budget_bytes; pool_bytes } ->
      Some
        (Printf.sprintf
           "Mempool.Budget_exceeded(requested %d B with %d B pooled, \
            budget %d B)"
           requested_bytes pool_bytes budget_bytes)
    | _ -> None)

(* Global telemetry counters (shared by all pools; in practice one pool
   per runtime).  Updates are no-ops while telemetry is disabled. *)
let c_acquire = Telemetry.counter "mempool.acquire"
let c_release = Telemetry.counter "mempool.release"
let c_hit = Telemetry.counter "mempool.hit"
let c_miss = Telemetry.counter "mempool.miss"
let c_peak = Telemetry.counter "mempool.peak_live_bytes"
let c_guard_trips = Telemetry.counter "mempool.guard_trips"

(* Resource-governance series: budget overruns, free-list trims made to
   stay under budget, and the cross-pool high-water gauge the pressure
   campaign asserts against. *)
let c_budget_exceeded = Telemetry.counter "govern.budget_exceeded"
let c_trims = Telemetry.counter "govern.pool_trims"
let c_high_water = Telemetry.counter "govern.pool_high_water_bytes"
let g_high_water = Metrics.gauge "govern_pool_high_water_bytes"
let g_budget = Metrics.gauge "govern_pool_budget_bytes"

(* Poison mode constants: a signaling-NaN payload so any arithmetic on a
   stale or uninitialized read yields a NaN the solver-level guard can
   catch, and a recognizable canary bit pattern for the guard words laid
   down past each handed-out window. *)
(* ------------------------------------------------------------------ *)
(* Process-wide quiescence accounting.

   [outstanding] counts buffers currently acquired across *every* pool
   (ungated by the telemetry flag, so the ledger is exact whether or not
   instrumentation is on).  [clear]-ing a pool that still holds acquired
   buffers moves them to the leak ledger instead of silently forgiving
   them — a runtime torn down mid-request with live buffers is exactly
   the bug a long-running server must surface.  Campaign teardowns call
   {!assert_quiescent} to turn either kind of residue into a failure. *)

exception
  Not_quiescent of {
    outstanding : int;
    leaked : int;
    detail : string list;
  }

let () =
  Printexc.register_printer (function
    | Not_quiescent { outstanding; leaked; detail } ->
      Some
        (Printf.sprintf
           "Mempool.Not_quiescent(%d outstanding, %d leaked at clear%s)"
           outstanding leaked
           (match detail with
            | [] -> ""
            | l -> "; " ^ String.concat "; " l))
    | _ -> None)

let q_outstanding = Atomic.make 0
let q_leaked = Atomic.make 0
let q_mutex = Mutex.create ()
let q_detail : string list ref = ref []
let q_detail_cap = 16

let note_leak ~buffers ~bytes ~poison =
  ignore (Atomic.fetch_and_add q_leaked buffers);
  ignore (Atomic.fetch_and_add q_outstanding (-buffers));
  Mutex.lock q_mutex;
  if List.length !q_detail < q_detail_cap then
    q_detail :=
      Printf.sprintf "pool cleared with %d live buffer(s), %d B%s" buffers
        bytes
        (if poison then " [poison]" else "")
      :: !q_detail;
  Mutex.unlock q_mutex

let guard_elems = 4
let snan = Int64.float_of_bits 0x7ff0_0000_dead_beefL
let canary = Int64.float_of_bits 0x5CA1_AB1E_5CA1_AB1EL
let is_canary v = Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float canary)

type entry = {
  raw : Buf.t;  (* full allocation, including guard words in poison mode *)
  mutable free : bool;
  mutable view : Buf.t;  (* the buffer handed to the caller *)
  mutable acquires : int;  (* times this entry served an acquire *)
}

type t = {
  poison : bool;
  mutable budget : int option;  (* byte ceiling on [pool_bytes] *)
  mutable entries : entry list;
  mutable fresh_allocs : int;
  mutable reuse_hits : int;
  mutable live_bytes : int;
  mutable pool_bytes : int;
  mutable peak_live_bytes : int;
  mutable hw_next_quarter : int;
      (* next quarter-of-budget threshold (1..4) the recorder has not
         yet seen live_bytes cross; 5 = all reported *)
}

let create ?(poison = false) ?budget () =
  (match budget with
   | Some b when b <= 0 -> invalid_arg "Mempool.create: budget must be positive"
   | Some _ | None -> ());
  { poison;
    budget;
    entries = [];
    fresh_allocs = 0;
    reuse_hits = 0;
    live_bytes = 0;
    pool_bytes = 0;
    peak_live_bytes = 0;
    hw_next_quarter = 1 }

let poisoned t = t.poison

let set_budget t budget =
  (match budget with
   | Some b when b <= 0 ->
     invalid_arg "Mempool.set_budget: budget must be positive"
   | Some b -> Metrics.set_gauge g_budget (float_of_int b)
   | None -> ());
  t.budget <- budget

let budget t = t.budget

let note_live t delta =
  t.live_bytes <- t.live_bytes + delta;
  if t.live_bytes > t.peak_live_bytes then t.peak_live_bytes <- t.live_bytes;
  Telemetry.max_to c_peak t.peak_live_bytes;
  Telemetry.max_to c_high_water t.peak_live_bytes;
  Metrics.set_gauge g_high_water (float_of_int t.peak_live_bytes);
  (* Flight-recorder breadcrumbs as live bytes cross each quarter of the
     budget: cheap (at most 4 events per pool lifetime), and the tail
     shows how close to the ceiling the solve was running. *)
  match t.budget with
  | Some b when t.hw_next_quarter <= 4 ->
    while
      t.hw_next_quarter <= 4 && 4 * t.live_bytes >= t.hw_next_quarter * b
    do
      if Flightrec.on () then
        Flightrec.emit
          (Flightrec.High_water { bytes = t.live_bytes; budget_bytes = b });
      t.hw_next_quarter <- t.hw_next_quarter + 1
    done
  | Some _ | None -> ()

(* Best fit: smallest free buffer that is large enough. *)
let find_fit t need =
  List.fold_left
    (fun best e ->
      if e.free && Buf.len e.raw >= need then
        match best with
        | Some b when Buf.len b.raw <= Buf.len e.raw -> best
        | _ -> Some e
      else best)
    None t.entries

(* Arm an entry for hand-out: in poison mode the caller gets an exact
   [len]-element window filled with signaling NaNs, with canary guard
   words written just past it (the raw allocation always reserves at
   least [guard_elems] beyond the request, so guards never go missing). *)
let arm t e len =
  e.free <- false;
  e.acquires <- e.acquires + 1;
  ignore (Atomic.fetch_and_add q_outstanding 1);
  if t.poison then begin
    let view = Buf.sub_view e.raw ~pos:0 ~len in
    Buf.fill view snan;
    Buf.fill_range e.raw ~pos:len ~len:guard_elems canary;
    e.view <- view
  end
  else e.view <- e.raw;
  note_live t (Buf.bytes e.raw);
  e.view

(* Budget enforcement: a fresh allocation that would push [pool_bytes]
   past the budget first trims free (released) buffers — largest first,
   so the fewest entries are sacrificed — and only if the pool still
   cannot make room raises the typed {!Budget_exceeded}.  Reuse never
   grows the pool, so it is always allowed; thus [pool_bytes] (and with
   it [live_bytes] and the high-water mark) never exceeds the budget. *)
let trim_for t need_bytes budget =
  let frees =
    List.filter (fun e -> e.free) t.entries
    |> List.sort (fun a b -> compare (Buf.len b.raw) (Buf.len a.raw))
  in
  let rec drop dropped = function
    | _ when t.pool_bytes + need_bytes <= budget -> dropped
    | [] -> dropped
    | e :: rest ->
      t.pool_bytes <- t.pool_bytes - Buf.bytes e.raw;
      Telemetry.add c_trims 1;
      drop (e :: dropped) rest
  in
  let dropped = drop [] frees in
  if dropped <> [] then begin
    if Flightrec.on () then
      Flightrec.emit
        (Flightrec.Pool_trim
           { dropped_bytes =
               List.fold_left (fun acc e -> acc + Buf.bytes e.raw) 0 dropped
           });
    t.entries <-
      List.filter (fun e -> not (List.memq e dropped)) t.entries
  end

let acquire t len =
  if len < 0 then invalid_arg "Mempool.acquire: negative length";
  Telemetry.add c_acquire 1;
  let need = if t.poison then len + guard_elems else len in
  match find_fit t need with
  | Some e ->
    t.reuse_hits <- t.reuse_hits + 1;
    Telemetry.add c_hit 1;
    arm t e len
  | None ->
    let need_bytes = 8 * need in
    (match t.budget with
     | Some b when t.pool_bytes + need_bytes > b ->
       trim_for t need_bytes b;
       if t.pool_bytes + need_bytes > b then begin
         Telemetry.add c_budget_exceeded 1;
         if Flightrec.on () then
           Flightrec.emit
             (Flightrec.Budget_exceeded
                { requested_bytes = need_bytes;
                  budget_bytes = b;
                  pool_bytes = t.pool_bytes });
         raise
           (Budget_exceeded
              { requested_bytes = need_bytes;
                budget_bytes = b;
                pool_bytes = t.pool_bytes })
       end
     | Some _ | None -> ());
    let raw = Buf.create_uninit need in
    let e = { raw; free = false; view = raw; acquires = 0 } in
    t.entries <- e :: t.entries;
    t.fresh_allocs <- t.fresh_allocs + 1;
    Telemetry.add c_miss 1;
    t.pool_bytes <- t.pool_bytes + Buf.bytes raw;
    arm t e len

let check_guard e =
  let lo = Buf.len e.view in
  for i = lo to lo + guard_elems - 1 do
    if not (is_canary (Buf.get e.raw i)) then begin
      Telemetry.add c_guard_trips 1;
      invalid_arg
        (Printf.sprintf
           "Mempool.release: guard word %d past a %d-element buffer was \
            clobbered (out-of-bounds write; buffer acquired %d times)"
           (i - lo) lo e.acquires)
    end
  done

let release t buf =
  let rec find = function
    | [] ->
      invalid_arg "Mempool.release: buffer not from this pool (or stale view)"
    | e :: rest -> if e.view == buf then e else find rest
  in
  let e = find t.entries in
  if e.free then
    invalid_arg
      (Printf.sprintf
         "Mempool.release: double release of a %d-element buffer (acquired \
          %d times from this pool)"
         (Buf.len e.view) e.acquires);
  if t.poison then begin
    check_guard e;
    Buf.fill e.raw snan
  end;
  Telemetry.add c_release 1;
  e.free <- true;
  ignore (Atomic.fetch_and_add q_outstanding (-1));
  t.live_bytes <- t.live_bytes - Buf.bytes e.raw

let stats t =
  { fresh_allocs = t.fresh_allocs;
    reuse_hits = t.reuse_hits;
    live_bytes = t.live_bytes;
    pool_bytes = t.pool_bytes;
    peak_live_bytes = t.peak_live_bytes }

let live_count t =
  List.length (List.filter (fun e -> not e.free) t.entries)

let clear t =
  let live = List.filter (fun e -> not e.free) t.entries in
  if live <> [] then
    note_leak ~buffers:(List.length live)
      ~bytes:(List.fold_left (fun acc e -> acc + Buf.bytes e.raw) 0 live)
      ~poison:t.poison;
  t.entries <- [];
  t.fresh_allocs <- 0;
  t.reuse_hits <- 0;
  t.live_bytes <- 0;
  t.pool_bytes <- 0;
  t.peak_live_bytes <- 0;
  t.hw_next_quarter <- 1

let with_pool ?poison ?budget f =
  let t = create ?poison ?budget () in
  Fun.protect ~finally:(fun () -> clear t) (fun () -> f t)

let with_buf t len f =
  let b = acquire t len in
  Fun.protect ~finally:(fun () -> release t b) (fun () -> f b)

let outstanding () = Atomic.get q_outstanding

let assert_quiescent () =
  let out = Atomic.get q_outstanding in
  let leaked = Atomic.get q_leaked in
  if out <> 0 || leaked <> 0 then begin
    Mutex.lock q_mutex;
    let detail = List.rev !q_detail in
    Mutex.unlock q_mutex;
    raise (Not_quiescent { outstanding = out; leaked; detail })
  end;
  0

let reset_quiescence () =
  Atomic.set q_outstanding 0;
  Atomic.set q_leaked 0;
  Mutex.lock q_mutex;
  q_detail := [];
  Mutex.unlock q_mutex
