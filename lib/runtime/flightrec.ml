(* Flight recorder: per-domain event rings + incident-report dumps.
   Overhead discipline matches Telemetry: disabled = one atomic load and
   a predictable branch, no allocation. *)

(* ------------------------------------------------------------------ *)
(* Generic bounded ring with drop counting. *)

module Ring = struct
  type 'a t = {
    cap : int;
    buf : 'a option array;
    mutable head : int;  (* next write index *)
    mutable count : int;
    mutable drops : int;
  }

  let create cap =
    if cap < 1 then invalid_arg "Flightrec.Ring.create: capacity must be >= 1";
    { cap; buf = Array.make cap None; head = 0; count = 0; drops = 0 }

  let push t x =
    if t.count = t.cap then t.drops <- t.drops + 1
    else t.count <- t.count + 1;
    t.buf.(t.head) <- Some x;
    t.head <- (t.head + 1) mod t.cap

  let to_list t =
    let oldest = (t.head - t.count + (2 * t.cap)) mod t.cap in
    List.init t.count (fun i ->
        match t.buf.((oldest + i) mod t.cap) with
        | Some x -> x
        | None -> assert false)

  let length t = t.count
  let capacity t = t.cap
  let dropped t = t.drops
end

(* ------------------------------------------------------------------ *)
(* Events *)

type kind =
  | Cycle_begin of { cycle : int; fallback : bool }
  | Cycle_end of { cycle : int; residual : float; status : string }
  | Group_begin of { gid : int; kind : string }
  | Group_end of { gid : int }
  | Plan_set of { digest : string; variant : string }
  | Checkpoint of { cycle : int; residual : float }
  | Fault of { cycle : int; fault : string }
  | Rollback of { cycle : int }
  | Retry of { cycle : int; attempt : int; backoff_s : float }
  | Fallback_switch of { cycle : int }
  | Quarantine of { cycle : int; faults : int }
  | Watchdog_armed of { stage : string; budget_ns : int }
  | Deadline_trip of { stage : string; elapsed_ns : int; budget_ns : int }
  | Budget_exceeded of {
      requested_bytes : int;
      budget_bytes : int;
      pool_bytes : int;
    }
  | Pool_trim of { dropped_bytes : int }
  | High_water of { bytes : int; budget_bytes : int }
  | Demotion of { from_rung : string; to_rung : string; over_bytes : int }
  | Runtime_demotion of { rung : string }
  | Infeasible of {
      budget_bytes : int;
      floor_bytes : int;
      floor_rung : string;
    }
  | Checkpoint_write of { gen : int; cycle : int }
  | Checkpoint_restore of { gen : int; cycle : int }
  | Checkpoint_reject of { gen : int; reason : string }
  | Resume_replan of { old_digest : string; new_digest : string }
  | Note of string

type event = { t_ns : int; dom : int; seq : int; kind : kind }

let enabled_flag = Atomic.make false
let on () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let default_capacity = 512
let capacity = Atomic.make default_capacity

let set_capacity n =
  if n < 1 then invalid_arg "Flightrec.set_capacity: capacity must be >= 1";
  Atomic.set capacity n

(* Global sequence counter: events within one domain's ring are already
   ordered, the seq gives a total order across domains for the merged
   tail in incident reports. *)
let seq_counter = Atomic.make 0

(* Telemetry mirrors (gated on the telemetry flag, like every counter;
   the ring's own drop count is authoritative for incident reports). *)
let c_events = Telemetry.counter "flightrec.events"
let c_dropped = Telemetry.counter "flightrec.dropped"
let c_incidents = Telemetry.counter "flightrec.incidents"
let c_suppressed = Telemetry.counter "flightrec.incidents_suppressed"

(* Each domain owns one ring, but systhreads multiplexed onto the same
   domain (the solver daemon's admission threads) share it — so every
   ring operation takes the owning dbuf's lock.  Uncontended in the
   domain-only case; the emit fast path when disabled is still just the
   flag load. *)
type dbuf = { dom : int; lock : Mutex.t; mutable ring : event Ring.t }

let registry : dbuf list ref = ref []
let registry_mutex = Mutex.create ()

let dbuf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int);
          lock = Mutex.create ();
          ring = Ring.create (Atomic.get capacity) }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let emit kind =
  if Atomic.get enabled_flag then begin
    let b = Domain.DLS.get dbuf_key in
    let seq = Atomic.fetch_and_add seq_counter 1 in
    let t_ns = Telemetry.now_ns () in
    Mutex.lock b.lock;
    let was_full = Ring.length b.ring = Ring.capacity b.ring in
    Ring.push b.ring { t_ns; dom = b.dom; seq; kind };
    Mutex.unlock b.lock;
    Telemetry.add c_events 1;
    if was_full then Telemetry.add c_dropped 1
  end

let with_rings f =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.map
    (fun b ->
      Mutex.lock b.lock;
      let r = f b in
      Mutex.unlock b.lock;
      r)
    bufs

let events () =
  with_rings (fun b -> Ring.to_list b.ring)
  |> List.concat
  |> List.sort (fun a b -> compare a.seq b.seq)

let dropped_events () =
  with_rings (fun b -> Ring.dropped b.ring) |> List.fold_left ( + ) 0

(* ------------------------------------------------------------------ *)
(* Plan context *)

let plan_note : (string * string) option Atomic.t = Atomic.make None

let note_plan ~digest ~variant =
  Atomic.set plan_note (Some (digest, variant));
  if Atomic.get enabled_flag then emit (Plan_set { digest; variant })

let noted_plan () = Atomic.get plan_note

(* ------------------------------------------------------------------ *)
(* JSON *)

let event_fields = function
  | Cycle_begin { cycle; fallback } ->
    ("cycle_begin", [ ("cycle", Json.num cycle); ("fallback", Json.Bool fallback) ])
  | Cycle_end { cycle; residual; status } ->
    ( "cycle_end",
      [ ("cycle", Json.num cycle);
        ("residual", Json.Num residual);
        ("status", Json.Str status) ] )
  | Group_begin { gid; kind } ->
    ("group_begin", [ ("gid", Json.num gid); ("group_kind", Json.Str kind) ])
  | Group_end { gid } -> ("group_end", [ ("gid", Json.num gid) ])
  | Plan_set { digest; variant } ->
    ("plan", [ ("digest", Json.Str digest); ("variant", Json.Str variant) ])
  | Checkpoint { cycle; residual } ->
    ( "checkpoint",
      [ ("cycle", Json.num cycle); ("residual", Json.Num residual) ] )
  | Fault { cycle; fault } ->
    ("fault", [ ("cycle", Json.num cycle); ("fault", Json.Str fault) ])
  | Rollback { cycle } -> ("rollback", [ ("cycle", Json.num cycle) ])
  | Retry { cycle; attempt; backoff_s } ->
    ( "retry",
      [ ("cycle", Json.num cycle);
        ("attempt", Json.num attempt);
        ("backoff_s", Json.Num backoff_s) ] )
  | Fallback_switch { cycle } ->
    ("fallback_switch", [ ("cycle", Json.num cycle) ])
  | Quarantine { cycle; faults } ->
    ("quarantine", [ ("cycle", Json.num cycle); ("faults", Json.num faults) ])
  | Watchdog_armed { stage; budget_ns } ->
    ( "watchdog_armed",
      [ ("stage", Json.Str stage); ("budget_ns", Json.num budget_ns) ] )
  | Deadline_trip { stage; elapsed_ns; budget_ns } ->
    ( "deadline_trip",
      [ ("stage", Json.Str stage);
        ("elapsed_ns", Json.num elapsed_ns);
        ("budget_ns", Json.num budget_ns) ] )
  | Budget_exceeded { requested_bytes; budget_bytes; pool_bytes } ->
    ( "budget_exceeded",
      [ ("requested_bytes", Json.num requested_bytes);
        ("budget_bytes", Json.num budget_bytes);
        ("pool_bytes", Json.num pool_bytes) ] )
  | Pool_trim { dropped_bytes } ->
    ("pool_trim", [ ("dropped_bytes", Json.num dropped_bytes) ])
  | High_water { bytes; budget_bytes } ->
    ( "high_water",
      [ ("bytes", Json.num bytes); ("budget_bytes", Json.num budget_bytes) ] )
  | Demotion { from_rung; to_rung; over_bytes } ->
    ( "demotion",
      [ ("from", Json.Str from_rung);
        ("to", Json.Str to_rung);
        ("over_bytes", Json.num over_bytes) ] )
  | Runtime_demotion { rung } ->
    ("runtime_demotion", [ ("rung", Json.Str rung) ])
  | Infeasible { budget_bytes; floor_bytes; floor_rung } ->
    ( "infeasible",
      [ ("budget_bytes", Json.num budget_bytes);
        ("floor_bytes", Json.num floor_bytes);
        ("floor_rung", Json.Str floor_rung) ] )
  | Checkpoint_write { gen; cycle } ->
    ( "checkpoint_write",
      [ ("gen", Json.num gen); ("cycle", Json.num cycle) ] )
  | Checkpoint_restore { gen; cycle } ->
    ( "checkpoint_restore",
      [ ("gen", Json.num gen); ("cycle", Json.num cycle) ] )
  | Checkpoint_reject { gen; reason } ->
    ( "checkpoint_reject",
      [ ("gen", Json.num gen); ("reason", Json.Str reason) ] )
  | Resume_replan { old_digest; new_digest } ->
    ( "resume_replan",
      [ ("old_digest", Json.Str old_digest);
        ("new_digest", Json.Str new_digest) ] )
  | Note s -> ("note", [ ("text", Json.Str s) ])

let event_to_json e =
  let kind, fields = event_fields e.kind in
  Json.Obj
    (("kind", Json.Str kind)
     :: ("seq", Json.num e.seq)
     :: ("dom", Json.num e.dom)
     :: ("t_ns", Json.num e.t_ns)
     :: fields)

(* ------------------------------------------------------------------ *)
(* Incident reports *)

let incident_dir : string option Atomic.t = Atomic.make None
let set_incident_dir d = Atomic.set incident_dir d

let max_incidents = Atomic.make 32

let set_max_incidents n =
  if n < 0 then invalid_arg "Flightrec.set_max_incidents";
  Atomic.set max_incidents n

(* Two counters: [incident_seq] hands out file numbers (advanced past
   any number another process already claimed on disk), while
   [incidents_written] counts reports this process actually wrote and
   enforces the per-process cap.  Keeping them separate means a number
   lost to a cross-process EEXIST race doesn't eat into the cap. *)
let incidents_written = Atomic.make 0
let incident_seq = Atomic.make 0
let incident_count () = Atomic.get incidents_written
let incident_mutex = Mutex.create ()

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Filenames stay shell- and artifact-safe whatever the kind string. *)
let sanitize_kind k =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    k

let environment_json () =
  Json.Obj
    [ ("ocaml_version", Json.Str Sys.ocaml_version);
      ("os_type", Json.Str Sys.os_type);
      ("word_size", Json.num Sys.word_size);
      ( "argv",
        Json.Arr (Array.to_list (Array.map (fun a -> Json.Str a) Sys.argv)) )
    ]

(* Claim a numbered incident path atomically: O_CREAT|O_EXCL creates
   the placeholder iff the number is unclaimed, so two processes (or a
   process racing a crashed predecessor's leftovers) can never agree on
   the same filename.  The placeholder is immediately replaced by the
   full report via [Snapshot.atomic_write_string] (write temp + rename),
   so readers only ever see empty-or-complete, never torn.  Bounded so a
   pathological directory cannot spin forever. *)
let claim_path dir kind =
  let rec try_claim attempts =
    if attempts <= 0 then None
    else begin
      let n = Atomic.fetch_and_add incident_seq 1 in
      let path =
        Filename.concat dir
          (Printf.sprintf "incident-%03d-%s.json" (n + 1) (sanitize_kind kind))
      in
      match
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
      with
      | fd ->
        Unix.close fd;
        Some (n, path)
      | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
        try_claim (attempts - 1)
    end
  in
  try_claim 1000

let incident ~kind ?cycle ?(detail = []) () =
  if not (Atomic.get enabled_flag) then None
  else
    match Atomic.get incident_dir with
    | None -> None
    | Some dir ->
      Mutex.lock incident_mutex;
      let result =
        Fun.protect ~finally:(fun () -> Mutex.unlock incident_mutex)
          (fun () ->
            (* Cap check under the mutex: concurrent solves can't both
               sneak past a cap with one slot left. *)
            if Atomic.get incidents_written >= Atomic.get max_incidents then
              None
            else
              try
                ensure_dir dir;
                match claim_path dir kind with
                | None -> None
                | Some (n, path) ->
                  let plan_digest, plan_variant =
                    match noted_plan () with
                    | Some (d, v) -> (d, v)
                    | None -> ("", "")
                  in
                  let doc =
                    Json.Obj
                      [ ("schema", Json.Str "polymg.incident/1");
                        ("seq", Json.num (n + 1));
                        ("kind", Json.Str kind);
                        ( "cycle",
                          match cycle with
                          | Some c -> Json.num c
                          | None -> Json.Null );
                        ( "plan",
                          Json.Obj
                            [ ("digest", Json.Str plan_digest);
                              ("variant", Json.Str plan_variant) ] );
                        ("detail", Json.Obj detail);
                        ( "events",
                          Json.Arr (List.map event_to_json (events ())) );
                        ("dropped_events", Json.num (dropped_events ()));
                        ( "counters",
                          Json.Obj
                            (List.map
                               (fun (k, v) -> (k, Json.num v))
                               (Telemetry.counters ())) );
                        ("environment", environment_json ())
                      ]
                  in
                  (* atomic replacement: a crash mid-dump must never leave
                     a torn JSON file for incident_check/compare to trip
                     on *)
                  Snapshot.atomic_write_string ~path
                    (Json.to_string doc ^ "\n");
                  ignore (Atomic.fetch_and_add incidents_written 1);
                  Some path
              with _ ->
                (* A report is best-effort evidence; failing to file one
                   (disk full, permissions) must never take down the
                   solve that produced it. *)
                None)
      in
      (match result with
       | Some path ->
         Telemetry.add c_incidents 1;
         Printf.eprintf "flightrec: incident %s (kind %s%s) -> %s\n%!"
           (Filename.basename path) kind
           (match cycle with
           | Some c -> Printf.sprintf ", cycle %d" c
           | None -> "")
           path
       | None -> Telemetry.add c_suppressed 1);
      result

let reset () =
  ignore
    (with_rings (fun b -> b.ring <- Ring.create (Atomic.get capacity)));
  Atomic.set seq_counter 0;
  Atomic.set incidents_written 0;
  Atomic.set incident_seq 0;
  Atomic.set plan_note None
