(** Durable snapshot primitives: atomic writes and torn-write detection.

    The crash-safety layer's foundation.  Two concerns, deliberately
    separated from {e what} is being saved (solver state lives in
    [Repro_mg.Checkpoint], built on top of this module):

    - {b Atomic writes}: {!atomic_write_string} writes to a unique temp
      file in the target directory, flushes it to disk ([fsync]),
      renames it over the destination, and (best-effort) syncs the
      directory — so a reader never observes a half-written file under
      the final name, whatever instant the process dies.
    - {b Torn-write detection}: the [polymg.snapshot/1] container is a
      self-describing sequence of length-prefixed, CRC-32-framed
      sections (a JSON header, binary payloads, an end marker), so a
      file that {e did} end up torn — a partial temp file adopted by
      hand, a truncated copy, a flipped bit — is rejected by {!read}
      rather than deserialized into garbage.

    Registered counters: [snapshot.writes], [snapshot.bytes_written],
    [snapshot.read_ok], [snapshot.read_rejected] (documented in the
    README counter tables, enforced by [bench/audit_counters.exe]). *)

(** {2 CRC-32} *)

val crc32 : ?crc:int -> string -> int
(** IEEE CRC-32 (the zlib/PNG polynomial) of a string, as an unsigned
    32-bit value in an [int].  [?crc] continues a running checksum. *)

(** {2 Atomic file replacement} *)

val atomic_write_string : path:string -> string -> unit
(** [atomic_write_string ~path s] durably replaces [path] with contents
    [s]: temp file in [path]'s directory, write, [fsync], [rename],
    directory sync.  Raises [Sys_error]/[Unix.Unix_error] on I/O
    failure; on any failure the destination is untouched. *)

(** {2 Crash injection (test hook)}

    The SIGKILL campaign ([bench/crashsafe.exe]) must be able to die
    {e mid-write}, deterministically.  With a crash spec armed, the
    [n]-th {!atomic_write_string} of this process writes only the first
    [bytes] bytes of the temp file, syncs them, and SIGKILLs the
    process — the rename never happens, exactly like a power cut
    between write and rename.  Also armed by the environment variable
    [POLYMG_SNAPSHOT_KILL="N:BYTES"] for exec'd children. *)

type crash_spec = { after_writes : int;  (** 1-based write index *)
                    partial_bytes : int  (** bytes flushed before death *) }

val set_crash_spec : crash_spec option -> unit
val write_count : unit -> int
(** Atomic writes performed by this process (crash-spec bookkeeping). *)

(** {2 The [polymg.snapshot/1] container} *)

val schema : string
(** ["polymg.snapshot/1"]. *)

val write : path:string -> meta:Json.t -> payloads:string list -> unit
(** Atomically writes a snapshot: magic line, CRC-framed header (the
    schema, the payload count, and the caller's [meta] document), one
    CRC-framed section per payload, and a CRC-framed end marker. *)

val read : path:string -> (Json.t * string list, string) result
(** Reads a snapshot back, verifying the magic, every frame's CRC, the
    header's declared payload count, the end marker, and that no bytes
    trail it.  [Error] carries a one-line reason; any single-byte
    corruption or truncation of the file is rejected. *)

(** {2 Grid payload codec}

    Bit-exact binary encoding for {!Repro_grid.Buf} contents
    (little-endian IEEE-754 doubles), so a restored iterate is the
    {e same} floats — a resumed solve replays the uninterrupted one
    exactly. *)

val payload_of_buf : Repro_grid.Buf.t -> string

val payload_to_buf : string -> Repro_grid.Buf.t -> (unit, string) result
(** Decodes into an existing buffer; [Error] on length mismatch. *)
