(* Longitudinal performance ledger: one self-describing JSONL record per
   bench/profiled run, appended durably so the repo accumulates a
   machine-keyed performance history across sessions (the trajectory
   bench/trend.exe reads).

   Appends rewrite the whole file through Snapshot.atomic_write_string
   (temp + fsync + rename), so a crash mid-append can never leave a torn
   line — the ledger is either the old history or the old history plus
   one complete record.  O(file) per append, which is fine at ledger
   scale (one record per bench run). *)

let schema = "polymg.ledger/1"
let c_appends = Telemetry.counter "ledger.appends"
let c_skipped = Telemetry.counter "ledger.skipped"

type record = {
  timestamp : float;  (* unix seconds *)
  hostname : string;
  ocaml_version : string;
  word_size : int;
  roofline : Roofline.t;
  bench : string;  (* config name, e.g. V-2D-4-4-4 *)
  n : int;
  domains : int;
  variant : string;
  plan_digest : string;
  s_per_cycle : float;
  sites : (string * Profile.stats) list;  (* per-site profile stats *)
  extra : (string * Json.t) list;  (* caller-specific fields *)
}

let fingerprint () =
  let hostname = try Unix.gethostname () with Unix.Unix_error _ -> "unknown" in
  (hostname, Sys.ocaml_version, Sys.word_size)

let make ?(timestamp = Unix.gettimeofday ()) ?(roofline = Roofline.get ())
    ?(sites = Profile.sites ()) ?(extra = []) ~bench ~n ~domains ~variant
    ~plan_digest ~s_per_cycle () =
  let hostname, ocaml_version, word_size = fingerprint () in
  { timestamp;
    hostname;
    ocaml_version;
    word_size;
    roofline;
    bench;
    n;
    domains;
    variant;
    plan_digest;
    s_per_cycle;
    sites;
    extra }

(* the series key: records compare only within the same machine, config
   and variant *)
let key r =
  Printf.sprintf "%s|%s|n=%d|d=%d|%s" r.hostname r.bench r.n r.domains
    r.variant

let fnum f = if Float.is_finite f then Json.Num f else Json.Null

let site_json (name, (st : Profile.stats)) =
  Json.Obj
    [ ("site", Json.Str name);
      ("count", Json.num st.Profile.count);
      ("total_ns", fnum st.Profile.total);
      ("mean_ns", fnum st.Profile.mean);
      ("variance_ns2", fnum st.Profile.variance);
      ("min_ns", fnum st.Profile.min);
      ("max_ns", fnum st.Profile.max) ]

let to_json r =
  Json.Obj
    ([ ("schema", Json.Str schema);
      ("timestamp", Json.Num r.timestamp);
      ("hostname", Json.Str r.hostname);
      ("ocaml_version", Json.Str r.ocaml_version);
      ("word_size", Json.num r.word_size);
      ( "roofline",
        Json.Obj
          [ ("bandwidth_gbs", Json.Num r.roofline.Roofline.bandwidth_gbs);
            ("gflops", Json.Num r.roofline.Roofline.gflops) ] );
      ("bench", Json.Str r.bench);
      ("n", Json.num r.n);
      ("domains", Json.num r.domains);
      ("variant", Json.Str r.variant);
      ("plan_digest", Json.Str r.plan_digest);
      ("s_per_cycle", fnum r.s_per_cycle);
      ("sites", Json.Arr (List.map site_json r.sites)) ]
    @ r.extra)

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let flt k = Option.bind (Json.member k j) Json.to_float in
  let int k = Option.bind (Json.member k j) Json.to_int in
  match (str "schema", str "bench", flt "s_per_cycle", flt "timestamp") with
  | Some s, Some bench, Some s_per_cycle, Some timestamp when s = schema ->
    let roofline =
      match Json.member "roofline" j with
      | Some rj ->
        { Roofline.bandwidth_gbs =
            Option.value ~default:Float.nan
              (Option.bind (Json.member "bandwidth_gbs" rj) Json.to_float);
          gflops =
            Option.value ~default:Float.nan
              (Option.bind (Json.member "gflops" rj) Json.to_float) }
      | None -> { Roofline.bandwidth_gbs = Float.nan; gflops = Float.nan }
    in
    let sites =
      match Json.member "sites" j with
      | None -> []
      | Some sj ->
        List.filter_map
          (fun e ->
            let estr k = Option.bind (Json.member k e) Json.to_str in
            let eflt k =
              Option.value ~default:Float.nan
                (Option.bind (Json.member k e) Json.to_float)
            in
            let eint k =
              Option.value ~default:0
                (Option.bind (Json.member k e) Json.to_int)
            in
            match estr "site" with
            | None -> None
            | Some name ->
              Some
                ( name,
                  { Profile.count = eint "count";
                    mean = eflt "mean_ns";
                    variance = eflt "variance_ns2";
                    min = eflt "min_ns";
                    max = eflt "max_ns";
                    total = eflt "total_ns" } ))
          (Json.to_list sj)
    in
    Some
      { timestamp;
        hostname = Option.value ~default:"unknown" (str "hostname");
        ocaml_version = Option.value ~default:"" (str "ocaml_version");
        word_size = Option.value ~default:0 (int "word_size");
        roofline;
        bench;
        n = Option.value ~default:0 (int "n");
        domains = Option.value ~default:1 (int "domains");
        variant = Option.value ~default:"" (str "variant");
        plan_digest = Option.value ~default:"" (str "plan_digest");
        s_per_cycle;
        sites;
        extra = [] }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Durable JSONL persistence *)

let read_file path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  end
  else ""

let append ~path r =
  let old = read_file path in
  let line = Json.to_string (to_json r) ^ "\n" in
  Snapshot.atomic_write_string ~path (old ^ line);
  Telemetry.add c_appends 1

(* tolerant load: unparsable or alien lines are counted, not fatal — a
   ledger written by a future schema must not brick trend reporting *)
let load path =
  let text = read_file path in
  let lines = String.split_on_char '\n' text in
  let skipped = ref 0 in
  let records =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" then None
        else
          match Json.parse line with
          | Error _ ->
            incr skipped;
            None
          | Ok j -> (
            match of_json j with
            | Some r -> Some r
            | None ->
              incr skipped;
              None))
      lines
  in
  if !skipped > 0 then Telemetry.add c_skipped !skipped;
  (records, !skipped)
