(** Native execution backend: emitted C compiled to dlopen'd kernels.

    Takes a compiled plan, emits its C through the {!C_emit.runnable}
    path plus a small entry wrapper (a bump-allocator arena standing in
    for the driver's [calloc] pool, and a [polymg_entry] function that
    runs the pipeline on caller-provided buffers), invokes the system C
    compiler to build a shared object, [dlopen]s it and calls the entry
    point directly on the grids' Bigarray storage.

    Compiled kernels are cached on disk under {!cache_dir}, keyed by
    plan digest + compiler identity + flags + emitter version
    ([<key>.c], [<key>.so], [<key>.meta], [<key>.log]).  The [.so] is
    installed with {!Repro_runtime.Snapshot.atomic_write_string} and
    carries a CRC-32 sidecar re-verified before every [dlopen]: a torn
    or corrupt cache entry is rejected (counted as
    [native.cache_rejects]) and recompiled, never executed.

    Counter family: [native.compiles], [native.compile_ms],
    [native.cache_hits], [native.cache_rejects], [native.kernel_calls],
    [native.fallbacks].  Compile failures and cache rejections emit
    flight-recorder events; the Auto-mode interpreter fallback
    additionally files an incident ({!note_fallback}).

    The backend is selected per plan through {!Options.backend}; the
    dispatch lives in [Repro_mg.Solver.plan_stepper]. *)

type kernel
(** A loaded kernel: a dlopen handle, the resolved entry point, and the
    expected buffer signature.  Calls on one kernel are serialized (the
    shared object holds a single arena). *)

exception Unavailable of string
(** Raised by callers (the solver) when [Options.Native] is forced but
    the backend cannot run — no compiler, unemittable plan, or a
    compile failure. *)

val available : unit -> bool
(** A usable C compiler was found (or an override is installed). *)

val cc : unit -> string option
(** The compiler that will be used: the test override or [POLYMG_CC]
    verbatim when set, otherwise the first of [gcc], [cc] that answers
    [--version] — the same discovery the conformance harness uses. *)

val set_compiler_override : string option -> unit
(** Test hook: force a specific compiler command, bypassing discovery
    and probing (so a deliberately broken command exercises the
    compile-failure path). *)

val cache_dir : unit -> string
(** Kernel cache directory: {!set_cache_dir} override, else
    [POLYMG_NATIVE_CACHE], else [<tmpdir>/polymg-native-cache].
    Created on first compile. *)

val set_cache_dir : string option -> unit

val entry_source : Plan.t -> (string, string) result
(** The full C translation unit for a plan's kernel: {!C_emit.to_string}
    plus the arena allocator and the [polymg_entry] wrapper.  [Error]
    when {!C_emit.runnable} fails. *)

val cache_key : Plan.t -> compiler:string -> string
(** Content key of a plan's compiled kernel (hex digest over plan
    digest, compiler identity, flags, emitter version). *)

val load : Plan.t -> (kernel, string) result
(** Loads (compiling on a cache miss) the kernel for a plan.  Kernels
    are interned per cache key: a second load of the same plan in the
    same process is a memory hit; a fresh process hits the disk cache.
    [Error] when no compiler exists, the plan is not emittable, or
    compilation fails. *)

val run :
  kernel ->
  inputs:(int * Repro_grid.Grid.t) list ->
  outputs:(int * Repro_grid.Grid.t) list ->
  unit
(** Runs the kernel with the given input/output grids, keyed by func id
    like {!Exec.run}: output buffers are overwritten in place (interior
    and ghost layers), inputs are never modified.  Buffer lengths are
    validated against the plan the kernel was compiled from.
    @raise Invalid_argument on a missing grid or a length mismatch.
    @raise Failure when the kernel reports an arena failure. *)

val so_path : kernel -> string

val unload_all : unit -> unit
(** Drops every interned kernel and [dlclose]s its handle.  Tests use
    this to force the next {!load} back to the disk cache. *)

val note_fallback : digest:string -> variant:string -> reason:string -> unit
(** Records an Auto-mode fallback to the interpreter: bumps
    [native.fallbacks] and, when the flight recorder is armed, emits an
    event and files a [native-fallback] incident. *)
