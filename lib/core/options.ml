type smoother_path =
  | Overlapped_smoother
  | Diamond_smoother of { sigma : int }
  | Skewed_smoother of { tau : int; sigma : int }

type backend = Interp | Native | Auto

type t = {
  fuse : bool;
  tile_2d : int array;
  tile_3d : int array;
  naive_rows : int;
  group_size_limit : int;
  overlap_threshold : float;
  scratch_reuse : bool;
  scratch_class_threshold : int;
  array_reuse : bool;
  pool : bool;
  smoother : smoother_path;
  walk_kernels : bool;
  check_plan : bool;
  mem_budget : int option;
  deadline : float option;
  backend : backend;
}

let naive =
  { fuse = false;
    tile_2d = [| 32; 256 |];
    tile_3d = [| 8; 8; 64 |];
    naive_rows = 128;
    group_size_limit = 1;
    overlap_threshold = 0.6;
    scratch_reuse = false;
    scratch_class_threshold = 32;
    array_reuse = false;
    pool = false;
    smoother = Overlapped_smoother;
    walk_kernels = true;
    check_plan = false;
    mem_budget = None;
    deadline = None;
    backend = Interp }

let opt =
  { naive with fuse = true; group_size_limit = 6 }

let opt_plus =
  { opt with scratch_reuse = true; array_reuse = true; pool = true }

let dtile_opt_plus =
  { opt_plus with smoother = Diamond_smoother { sigma = 16 } }

let variant_of_string = function
  | "naive" -> Some naive
  | "opt" -> Some opt
  | "opt+" -> Some opt_plus
  | "dtile-opt+" -> Some dtile_opt_plus
  | _ -> None

let name t =
  let same_features a b =
    a.fuse = b.fuse && a.scratch_reuse = b.scratch_reuse
    && a.array_reuse = b.array_reuse && a.pool = b.pool
    && (match (a.smoother, b.smoother) with
        | Overlapped_smoother, Overlapped_smoother -> true
        | Diamond_smoother _, Diamond_smoother _ -> true
        | Skewed_smoother _, Skewed_smoother _ -> true
        | (Overlapped_smoother | Diamond_smoother _ | Skewed_smoother _), _ ->
          false)
  in
  if same_features t naive then "naive"
  else if same_features t opt then "opt"
  else if same_features t opt_plus then "opt+"
  else if same_features t dtile_opt_plus then "dtile-opt+"
  else "custom"

let with_tiles t ~t2 ~t3 = { t with tile_2d = t2; tile_3d = t3 }

let backend_of_string = function
  | "interp" -> Some Interp
  | "native" -> Some Native
  | "auto" -> Some Auto
  | _ -> None

let backend_name = function
  | Interp -> "interp"
  | Native -> "native"
  | Auto -> "auto"

let pp fmt t =
  let smoother =
    match t.smoother with
    | Overlapped_smoother -> "overlapped"
    | Diamond_smoother { sigma } -> Printf.sprintf "diamond(sigma=%d)" sigma
    | Skewed_smoother { tau; sigma } ->
      Printf.sprintf "skewed(tau=%d,sigma=%d)" tau sigma
  in
  let govern =
    (match t.mem_budget with
     | Some b -> Printf.sprintf " mem_budget=%dB" b
     | None -> "")
    ^
    match t.deadline with
    | Some d -> Printf.sprintf " deadline=%gs" d
    | None -> ""
  in
  (* [backend] is deliberately not printed: it selects how a plan is
     executed, not what it computes, and [Plan.summary] (hence the plan
     digest, checkpoint identity, and the native compile-cache key) must
     stay identical across backends. *)
  Format.fprintf fmt
    "{%s fuse=%b tiles2d=%s tiles3d=%s limit=%d scratch_reuse=%b \
     array_reuse=%b pool=%b smoother=%s%s}"
    (name t) t.fuse
    (String.concat "x" (Array.to_list (Array.map string_of_int t.tile_2d)))
    (String.concat "x" (Array.to_list (Array.map string_of_int t.tile_3d)))
    t.group_size_limit t.scratch_reuse t.array_reuse t.pool smoother govern
