(** Analytical cost model: what a compiled plan {e should} cost, derived
    from the plan alone — no execution.

    The paper's optimizations are memory-traffic arguments: grouping and
    scratchpad reuse win because intermediate stages stop touching DRAM,
    overlapped tiling pays a bounded redundant-compute tax to get there,
    and storage remapping shrinks the footprint.  This module turns a
    {!Plan.t} into those numbers so they can be printed next to measured
    telemetry ([polymg_dump --what cost] / [explain], [mg_solve
    --metrics]) and fed to a roofline comparison.

    Modelling conventions (all per single plan execution, 8-byte reals):

    - {b Compulsory DRAM reads}: for every binding of a stage to a
      pipeline input or a full array, the footprint of its accesses over
      the stage's {e interior} domain — the unique bytes any schedule
      must fetch.  Halo re-reads across overlapped tiles are assumed
      cache-served and show up only in the redundant-points term.
    - {b DRAM writes}: interior points of every full-array live-out
      (own slices partition the domain exactly; ghost-rim prefills are
      excluded as lower-order).
    - {b Scratch traffic}: reads/writes through scratchpads and diamond
      modulo buffers, kept separate — with scratchpad reuse working
      these bytes never reach DRAM.
    - {b FLOPs}: walk-form structure — one multiply-add (2 FLOPs) per
      linear-stencil term per point, one add for a nonzero base, and
      {!Repro_ir.Expr.op_count} for general-fallback cases — times the
      points actually computed (including overlapped-tile redundancy). *)

type stage = {
  name : string;
  gid : int;
  points : int;  (** points computed per execution, incl. halo redundancy *)
  domain : int;  (** useful interior points *)
  flops_per_point : float;
  flops : float;  (** [flops_per_point *. points] *)
  useful_flops : float;  (** [flops_per_point *. domain] *)
  dram_read : int;  (** compulsory bytes from inputs + full arrays *)
  dram_write : int;  (** bytes written to full arrays *)
  scratch_read : int;  (** bytes read through scratch / modulo buffers *)
  scratch_write : int;
}

type group = {
  g_gid : int;
  kind : [ `Tiled | `Diamond ];
  stage_names : string list;
  working_set : int;
      (** bytes live while the group runs: arrays live across it, one
          thread's scratchpads, and the input footprints it reads *)
  fits_in : string;  (** smallest cache level holding [working_set] *)
  redundancy : float;  (** redundant-compute fraction of this group *)
}

type t = {
  stages : stage array;  (** execution order *)
  groups : group array;
  dram_read : int;
  dram_write : int;
  scratch_traffic : int;  (** total scratch bytes moved (read + write) *)
  flops : float;
  useful_flops : float;
  intensity : float;
      (** arithmetic intensity: FLOPs per DRAM byte moved (read+write) *)
}

type cache_level = { lname : string; bytes : int }

val default_cache_levels : cache_level list
(** L1 32 KiB, L2 1 MiB, L3 32 MiB — overridable per call; anything
    larger is reported as ["DRAM"]. *)

val of_plan : ?cache_levels:cache_level list -> Plan.t -> t

val stage_bytes : stage -> int
(** DRAM bytes moved by the stage: [dram_read + dram_write]. *)

val stage_intensity : stage -> float
(** FLOPs per DRAM byte; [infinity] for stages with no DRAM traffic. *)

val total_bytes : t -> int

val pp : Format.formatter -> t -> unit
(** Per-stage table plus group and plan totals — the predicted side of
    [polymg_dump --what cost]. *)
