(** Static storage-safety validation of compiled plans.

    The optimizations a plan encodes — intra-group scratchpad colouring
    and inter-group full-array reuse (paper §3.2, Algorithms 2 and 3) —
    rest entirely on liveness arguments.  A bug there does not crash: it
    silently aliases two live values and corrupts the solution.  This
    pass re-derives the safety conditions {e independently} of
    {!Storage.remap} and checks the finished plan against them:

    - {b full arrays}: simulating the group sequence, every [P_array]
      read must find its producer's value still in the slot (no
      simultaneously-live stage outputs share a pooled array, no read
      straddles an acquire/release boundary, every slot is large enough
      for every stage mapped to it);
    - {b scratchpads}: within a tiled group, a slot may be re-coloured to
      a later member only strictly after the previous occupant's last
      in-group reader, and each slot holds the largest demand region any
      of its occupants writes in any tile;
    - {b halos}: per tile, the image of every stencil read stays inside
      the producer's computed scratch region (in-group) or allocated
      domain-plus-ghost box (live-ins), for overlapped and diamond
      groups both.

    The pass is diagnostic-only: it never mutates the plan, and runs in
    time polynomial in (groups × tiles × members × accesses) — cheap at
    the problem sizes where it is on. *)

val check : Plan.t -> (unit, string list) result
(** [Ok ()] when the plan is storage-safe, otherwise every violation
    found, in deterministic order. *)

val check_exn : Plan.t -> unit
(** @raise Invalid_argument listing every violation. *)

val build :
  Repro_ir.Pipeline.t -> opts:Options.t -> n:int ->
  params:(string -> float) -> Plan.t
(** {!Plan.build} followed by {!check_exn} when [opts.check_plan] is set.
    This is the build entry the solver and CLI drivers use, so turning
    the option on guards every plan that reaches execution. *)
