open Repro_ir
open Repro_poly

type stage = {
  name : string;
  gid : int;
  points : int;
  domain : int;
  flops_per_point : float;
  flops : float;
  useful_flops : float;
  dram_read : int;
  dram_write : int;
  scratch_read : int;
  scratch_write : int;
}

type group = {
  g_gid : int;
  kind : [ `Tiled | `Diamond ];
  stage_names : string list;
  working_set : int;
  fits_in : string;
  redundancy : float;
}

type t = {
  stages : stage array;
  groups : group array;
  dram_read : int;
  dram_write : int;
  scratch_traffic : int;
  flops : float;
  useful_flops : float;
  intensity : float;
}

type cache_level = { lname : string; bytes : int }

let default_cache_levels =
  [ { lname = "L1"; bytes = 32 * 1024 };
    { lname = "L2"; bytes = 1024 * 1024 };
    { lname = "L3"; bytes = 32 * 1024 * 1024 } ]

let word = 8

(* ------------------------------------------------------------------ *)
(* FLOPs per point: the walk-form accounting of Compile — one
   multiply-add per linear-stencil term, one add for a nonzero base; a
   general-fallback case costs its expression's op count.  Parity cases
   each cover exactly 1/|cases| of the lattice. *)

let flops_per_point (m : Plan.member) =
  let exprs = Func.defn_exprs m.Plan.func in
  let cases = m.Plan.compiled.Compile.cases in
  let ncases = List.length cases in
  if ncases = 0 then 0.0
  else begin
    let case_flops (c : Compile.case_t) expr =
      match c.Compile.kernel with
      | Compile.Lin { base; terms } ->
        float_of_int ((2 * Array.length terms) + (if base <> 0.0 then 1 else 0))
      | Compile.Gen _ -> (
        match expr with
        | Some e -> float_of_int (Expr.op_count e)
        | None -> 0.0)
    in
    let rec zip cs es acc =
      match cs with
      | [] -> acc
      | c :: cs' ->
        let e, es' = match es with e :: tl -> (Some e, tl) | [] -> (None, []) in
        zip cs' es' (acc +. case_flops c e)
    in
    zip cases exprs 0.0 /. float_of_int ncases
  end

(* Compulsory read footprint of binding [i] of a member: the image of
   all its accesses to that producer over the member's interior. *)
let read_bytes (m : Plan.member) i =
  let pid = m.Plan.compiled.Compile.producers.(i) in
  let interior = Box.of_sizes m.Plan.sizes in
  let fp = Box.map_accesses (Func.accesses_to m.Plan.func pid) interior in
  word * Box.points fp

(* ------------------------------------------------------------------ *)

let tiled_stage gid (tg : Plan.tiled_group) ~computed p =
  let m = tg.Plan.members.(p) in
  let domain = Box.points (Box.of_sizes m.Plan.sizes) in
  let points = computed.(p) in
  let dram_read = ref 0 and scratch_read = ref 0 in
  Array.iteri
    (fun i src ->
      let bytes = read_bytes m i in
      match src with
      | Plan.P_input _ | Plan.P_array _ -> dram_read := !dram_read + bytes
      | Plan.P_member _ -> scratch_read := !scratch_read + bytes)
    m.Plan.src_of;
  let dram_write = ref 0 and scratch_write = ref 0 in
  (match (m.Plan.scratch_slot, m.Plan.array_id) with
   | Some _, Some _ ->
     (* computes into scratch, then copies its own slice out to DRAM *)
     scratch_write := word * points;
     scratch_read := !scratch_read + (word * domain);
     dram_write := word * domain
   | Some _, None -> scratch_write := word * points
   | None, Some _ -> dram_write := word * domain
   | None, None -> ());
  let fpp = flops_per_point m in
  { name = m.Plan.func.Func.name;
    gid;
    points;
    domain;
    flops_per_point = fpp;
    flops = fpp *. float_of_int points;
    useful_flops = fpp *. float_of_int domain;
    dram_read = !dram_read;
    dram_write = !dram_write;
    scratch_read = !scratch_read;
    scratch_write = !scratch_write }

let diamond_stage gid (dg : Plan.diamond_group) step =
  let m = dg.Plan.steps.(step) in
  let domain = Box.points (Box.of_sizes m.Plan.sizes) in
  let nsteps = Array.length dg.Plan.steps in
  let dram_read = ref 0 and scratch_read = ref 0 in
  Array.iteri
    (fun i src ->
      let bytes = read_bytes m i in
      if i = dg.Plan.prev_pos.(step) then
        if step = 0 then begin
          (* the initial iterate comes from DRAM (input or full array) *)
          match dg.Plan.init_src with
          | Some (Plan.P_input _ | Plan.P_array _) ->
            dram_read := !dram_read + bytes
          | Some (Plan.P_member _) | None -> ()
        end
        else scratch_read := !scratch_read + bytes
      else begin
        match src with
        | Plan.P_input _ | Plan.P_array _ -> dram_read := !dram_read + bytes
        | Plan.P_member _ -> scratch_read := !scratch_read + bytes
      end)
    m.Plan.src_of;
  let last = step = nsteps - 1 in
  let fpp = flops_per_point m in
  { name = m.Plan.func.Func.name;
    gid;
    points = domain;
    domain;
    flops_per_point = fpp;
    flops = fpp *. float_of_int domain;
    useful_flops = fpp *. float_of_int domain;
    dram_read = !dram_read;
    dram_write = (if last then word * domain else 0);
    scratch_read = !scratch_read;
    scratch_write = (if last then 0 else word * domain) }

(* ------------------------------------------------------------------ *)

let full_len sizes = Array.fold_left (fun a s -> a * (s + 2)) 1 sizes

let input_bytes plan idx =
  let fid = plan.Plan.inputs.(idx) in
  let f = Pipeline.func plan.Plan.pipeline fid in
  let sizes =
    Array.map (fun s -> Sizeexpr.eval ~n:plan.Plan.n s) f.Func.sizes
  in
  word * full_len sizes

let group_members (g : Plan.group_exec) =
  match g with
  | Plan.G_tiled tg -> tg.Plan.members
  | Plan.G_diamond dg -> dg.Plan.steps

let working_set plan gi (g : Plan.group_exec) =
  (* arrays live across this group *)
  let arrays =
    Array.fold_left
      (fun acc (a : Plan.array_info) ->
        if a.Plan.first_group <= gi && (a.Plan.output || a.Plan.last_group >= gi)
        then acc + (word * a.Plan.len)
        else acc)
      0 plan.Plan.arrays
  in
  (* one thread's scratchpads (tiled) or the modulo buffer (diamond) *)
  let scratch =
    match g with
    | Plan.G_tiled tg ->
      word * Array.fold_left ( + ) 0 tg.Plan.scratch_slot_len
    | Plan.G_diamond dg -> word * full_len dg.Plan.sizes
  in
  (* distinct pipeline inputs this group reads *)
  let inputs = Hashtbl.create 4 in
  Array.iter
    (fun (m : Plan.member) ->
      Array.iter
        (fun src ->
          match src with
          | Plan.P_input idx -> Hashtbl.replace inputs idx ()
          | Plan.P_array _ | Plan.P_member _ -> ())
        m.Plan.src_of)
    (group_members g);
  let input_ws =
    Hashtbl.fold (fun idx () acc -> acc + input_bytes plan idx) inputs 0
  in
  arrays + scratch + input_ws

let fits_in levels ws =
  match List.find_opt (fun l -> ws <= l.bytes) levels with
  | Some l -> l.lname
  | None -> "DRAM"

let of_plan ?(cache_levels = default_cache_levels) (plan : Plan.t) =
  let levels =
    List.sort (fun a b -> compare a.bytes b.bytes) cache_levels
  in
  let stages = ref [] and groups = ref [] in
  Array.iteri
    (fun gi g ->
      (match g with
       | Plan.G_tiled tg ->
         (* per-member computed points: demand regions summed over tiles *)
         let nm = Array.length tg.Plan.members in
         let computed = Array.make nm 0 in
         Array.iter
           (fun tile ->
             let req = Regions.demand tg.Plan.geom ~tile in
             Array.iteri
               (fun p (_, b) -> computed.(p) <- computed.(p) + Box.points b)
               req)
           tg.Plan.tiles;
         for p = 0 to nm - 1 do
           stages := tiled_stage gi tg ~computed p :: !stages
         done
       | Plan.G_diamond dg ->
         for step = 0 to Array.length dg.Plan.steps - 1 do
           stages := diamond_stage gi dg step :: !stages
         done);
      let ws = working_set plan gi g in
      let kind, redundancy =
        match g with
        | Plan.G_tiled tg ->
          (`Tiled, Regions.redundancy tg.Plan.geom ~tile_sizes:tg.Plan.tile_sizes)
        | Plan.G_diamond _ -> (`Diamond, 0.0)
      in
      groups :=
        { g_gid = gi;
          kind;
          stage_names =
            Array.to_list
              (Array.map
                 (fun (m : Plan.member) -> m.Plan.func.Func.name)
                 (group_members g));
          working_set = ws;
          fits_in = fits_in levels ws;
          redundancy }
        :: !groups)
    plan.Plan.groups;
  let stages = Array.of_list (List.rev !stages) in
  let groups = Array.of_list (List.rev !groups) in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stages in
  let sumf f = Array.fold_left (fun acc s -> acc +. f s) 0.0 stages in
  let dram_read = sum (fun s -> s.dram_read) in
  let dram_write = sum (fun s -> s.dram_write) in
  let flops = sumf (fun s -> s.flops) in
  let dram = dram_read + dram_write in
  { stages;
    groups;
    dram_read;
    dram_write;
    scratch_traffic = sum (fun s -> s.scratch_read + s.scratch_write);
    flops;
    useful_flops = sumf (fun s -> s.useful_flops);
    intensity = (if dram = 0 then infinity else flops /. float_of_int dram) }

let stage_bytes (s : stage) = s.dram_read + s.dram_write

let stage_intensity (s : stage) =
  let b = stage_bytes s in
  if b = 0 then infinity else s.flops /. float_of_int b

let total_bytes t = t.dram_read + t.dram_write

(* ------------------------------------------------------------------ *)

let mb x = float_of_int x /. 1048576.0

let pp fmt t =
  Format.fprintf fmt "@[<v>== cost model: stages ==@,";
  Format.fprintf fmt "%-16s %4s %10s %8s %10s %10s %10s %7s@," "stage" "gid"
    "points" "flop/pt" "dram rd" "dram wr" "scratch" "flop/B";
  Array.iter
    (fun (s : stage) ->
      let ai = stage_intensity s in
      Format.fprintf fmt "%-16s %4d %10d %8.1f %9.2fM %9.2fM %9.2fM %7s@,"
        s.name s.gid s.points s.flops_per_point (mb s.dram_read)
        (mb s.dram_write)
        (mb (s.scratch_read + s.scratch_write))
        (if Float.is_finite ai then Printf.sprintf "%.2f" ai else "inf"))
    t.stages;
  Format.fprintf fmt "== cost model: groups ==@,";
  Array.iter
    (fun (g : group) ->
      Format.fprintf fmt
        "group %d (%s): working set %.2f MiB (fits %s), redundancy %.2f%%, \
         stages [%s]@,"
        g.g_gid
        (match g.kind with `Tiled -> "tiled" | `Diamond -> "diamond")
        (mb g.working_set) g.fits_in
        (100.0 *. g.redundancy)
        (String.concat " " g.stage_names))
    t.groups;
  Format.fprintf fmt "== cost model: totals ==@,";
  Format.fprintf fmt
    "dram read %.2f MiB  write %.2f MiB  scratch traffic %.2f MiB@,"
    (mb t.dram_read) (mb t.dram_write) (mb t.scratch_traffic);
  Format.fprintf fmt
    "flops %.1fM (useful %.1fM)  arithmetic intensity %.3f flop/byte@,"
    (t.flops /. 1e6) (t.useful_flops /. 1e6)
    t.intensity;
  Format.fprintf fmt "@]"
