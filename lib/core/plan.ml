open Repro_ir
open Repro_poly

type producer_src =
  | P_input of int
  | P_array of int
  | P_member of int

type member = {
  func : Func.t;
  compiled : Compile.t;
  sizes : int array;
  scratch_slot : int option;
  array_id : int option;
  src_of : producer_src array;
}

type tiled_group = {
  gid : int;
  geom : Regions.t;
  members : member array;
  tile_sizes : int array;
  tiles : Box.t array;
  scratch_slot_len : int array;
}

type time_scheme =
  | Sched_diamond of { sigma : int }
  | Sched_skewed of { tau : int; sigma : int }

type diamond_group = {
  gid : int;
  steps : member array;
  scheme : time_scheme;
  sizes : int array;
  prev_pos : int array;
  init_src : producer_src option;
}

type group_exec =
  | G_tiled of tiled_group
  | G_diamond of diamond_group

type array_info = {
  len : int;
  first_group : int;
  last_group : int;
  output : bool;
}

type t = {
  uid : int;
  pipeline : Pipeline.t;
  opts : Options.t;
  n : int;
  groups : group_exec array;
  arrays : array_info array;
  inputs : int array;
  output_arrays : (int * int) list;
}

let uid_counter = Atomic.make 0

let concrete_sizes ~n (f : Func.t) =
  Array.map (fun s -> Sizeexpr.eval ~n s) f.Func.sizes

let full_len sizes = Array.fold_left (fun a s -> a * (s + 2)) 1 sizes

(* quantize extents up to the class threshold for scratch storage classes *)
let quantize q e = if q <= 1 then e else (e + q - 1) / q * q

(* Every access made from a stage's interior must land inside the
   producer's domain-plus-ghost box: grids carry exactly one ghost layer,
   so e.g. unit-scale stencils must have radius <= 1. *)
let validate_footprints pipeline ~n =
  Array.iter
    (fun (f : Func.t) ->
      if not (Func.is_input f) then begin
        let interior = Box.of_sizes (concrete_sizes ~n f) in
        List.iter
          (fun pid ->
            let p = Pipeline.func pipeline pid in
            let ghost = Box.with_ghost (concrete_sizes ~n p) in
            let image =
              Box.map_accesses (Func.accesses_to f pid) interior
            in
            if not (Box.contains ghost image) then
              invalid_arg
                (Printf.sprintf
                   "Plan.build: %s reads %s outside its ghost zone (%s vs %s)"
                   f.Func.name p.Func.name (Box.to_string image)
                   (Box.to_string ghost)))
          (Func.producers f)
      end)
    (Pipeline.funcs pipeline)

let build pipeline ~(opts : Options.t) ~n ~params =
  Pipeline.validate pipeline;
  validate_footprints pipeline ~n;
  let groups = Grouping.run pipeline ~opts ~n in
  let ngroups = List.length groups in
  (* topological index of the group producing each stage *)
  let group_of = Hashtbl.create 64 in
  List.iteri
    (fun gi (g : Grouping.group) ->
      List.iter (fun m -> Hashtbl.replace group_of m gi) g.Grouping.members)
    groups;
  let inputs =
    Pipeline.inputs pipeline
    |> List.map (fun (f : Func.t) -> f.Func.id)
    |> Array.of_list
  in
  let input_index = Hashtbl.create 8 in
  Array.iteri (fun i id -> Hashtbl.replace input_index id i) inputs;
  (* ---- full-array storage mapping over live-outs ---- *)
  let all_liveouts =
    List.concat_map (fun (g : Grouping.group) -> g.Grouping.liveouts) groups
    |> List.sort_uniq Int.compare
  in
  let outputs = Pipeline.outputs pipeline in
  let reusable = List.filter (fun id -> not (List.mem id outputs)) all_liveouts in
  let time id = Hashtbl.find group_of id in
  let last_use id =
    List.fold_left
      (fun acc c ->
        match Hashtbl.find_opt group_of c with
        | Some gc -> Int.max acc gc
        | None -> acc)
      (time id)
      (Pipeline.consumers pipeline id)
  in
  let cls id =
    let f = Pipeline.func pipeline id in
    Array.map
      (fun (s : Sizeexpr.t) -> (s.Sizeexpr.num, s.Sizeexpr.den))
      f.Func.sizes
  in
  let storage, base_count =
    if opts.Options.array_reuse then
      Storage.remap ~ids:reusable ~time ~last_use ~cls
    else Storage.no_reuse ~ids:reusable
  in
  (* dedicated slots for pipeline outputs *)
  let next = ref base_count in
  List.iter
    (fun id ->
      Hashtbl.replace storage id !next;
      incr next)
    outputs;
  let array_count = !next in
  let arrays =
    Array.init array_count (fun _ ->
        { len = 0; first_group = max_int; last_group = min_int; output = false })
  in
  List.iter
    (fun id ->
      let slot = Hashtbl.find storage id in
      let f = Pipeline.func pipeline id in
      let len = full_len (concrete_sizes ~n f) in
      let is_out = List.mem id outputs in
      let a = arrays.(slot) in
      arrays.(slot) <-
        { len = Int.max a.len len;
          first_group = Int.min a.first_group (time id);
          last_group =
            (if is_out then max_int else Int.max a.last_group (last_use id));
          output = a.output || is_out })
    all_liveouts;
  let array_of_func id =
    match Hashtbl.find_opt storage id with
    | Some s -> s
    | None -> invalid_arg "Plan.build: stage without array storage"
  in
  (* ---- per-group construction ---- *)
  let build_tiled gid (g : Grouping.group) =
    let liveouts = g.Grouping.liveouts in
    let geom =
      match
        Regions.build pipeline ~n ~members:g.Grouping.members ~liveouts
      with
      | Ok geom -> geom
      | Error msg -> invalid_arg ("Plan.build: " ^ msg)
    in
    let rmembers = Regions.members geom in
    let dims = (Regions.reference geom).Regions.func.Func.dims in
    let tile_sizes =
      if opts.Options.fuse then Grouping.tile_sizes_for opts ~dims
      else begin
        (* naive: chunk the outer dimension only *)
        let ref_sizes = (Regions.reference geom).Regions.sizes in
        Array.init dims (fun k ->
            if k = 0 then Int.min opts.Options.naive_rows ref_sizes.(0)
            else ref_sizes.(k))
      end
    in
    let tiles = Regions.tiles geom ~tile_sizes in
    let extents = Regions.scratch_extents geom ~tile_sizes in
    let member_ids = Array.map (fun m -> m.Regions.func.Func.id) rmembers in
    let pos_of_id = Hashtbl.create 8 in
    Array.iteri (fun p id -> Hashtbl.replace pos_of_id id p) member_ids;
    (* members needing scratch: read by another member of this group *)
    let needs_scratch id =
      List.exists
        (fun c -> Hashtbl.mem pos_of_id c)
        (Pipeline.consumers pipeline id)
    in
    let scratch_ids =
      Array.to_list member_ids |> List.filter needs_scratch
    in
    let s_time id = Hashtbl.find pos_of_id id in
    let s_last_use id =
      List.fold_left
        (fun acc c ->
          match Hashtbl.find_opt pos_of_id c with
          | Some p -> Int.max acc p
          | None -> acc)
        (s_time id)
        (Pipeline.consumers pipeline id)
    in
    let ext_of id = List.assoc id extents in
    let s_cls id =
      Array.map
        (quantize opts.Options.scratch_class_threshold)
        (ext_of id)
    in
    let s_storage, s_count =
      if opts.Options.scratch_reuse then
        Storage.remap ~ids:scratch_ids ~time:s_time ~last_use:s_last_use
          ~cls:s_cls
      else Storage.no_reuse ~ids:scratch_ids
    in
    let scratch_slot_len = Array.make s_count 0 in
    List.iter
      (fun id ->
        let slot = Hashtbl.find s_storage id in
        let len = Array.fold_left ( * ) 1 (ext_of id) in
        scratch_slot_len.(slot) <- Int.max scratch_slot_len.(slot) len)
      scratch_ids;
    let members =
      Array.map
        (fun (rm : Regions.member) ->
          let f = rm.Regions.func in
          let compiled =
            Compile.compile ~specialize:opts.Options.walk_kernels f ~params
          in
          let src_of =
            Array.map
              (fun pid ->
                match Hashtbl.find_opt input_index pid with
                | Some i -> P_input i
                | None -> (
                  match Hashtbl.find_opt pos_of_id pid with
                  | Some p when Hashtbl.mem s_storage pid -> P_member p
                  | Some _ ->
                    invalid_arg
                      "Plan.build: in-group producer without scratchpad"
                  | None -> P_array (array_of_func pid)))
              compiled.Compile.producers
          in
          { func = f;
            compiled;
            sizes = rm.Regions.sizes;
            scratch_slot = Hashtbl.find_opt s_storage f.Func.id;
            array_id =
              (if rm.Regions.liveout then Some (array_of_func f.Func.id)
               else None);
            src_of })
        rmembers
    in
    G_tiled { gid; geom; members; tile_sizes; tiles; scratch_slot_len }
  in
  let build_diamond gid (g : Grouping.group) =
    let scheme =
      match opts.Options.smoother with
      | Options.Diamond_smoother { sigma } -> Sched_diamond { sigma }
      | Options.Skewed_smoother { tau; sigma } -> Sched_skewed { tau; sigma }
      | Options.Overlapped_smoother ->
        invalid_arg "Plan.build: time-tiled group without such a smoother"
    in
    let chain = List.map (Pipeline.func pipeline) g.Grouping.members in
    let sizes =
      match chain with
      | f :: _ -> concrete_sizes ~n f
      | [] -> invalid_arg "Plan.build: empty diamond group"
    in
    let chain_arr = Array.of_list chain in
    let nsteps = Array.length chain_arr in
    let prev_id_of step =
      if step = 0 then None else Some chain_arr.(step - 1).Func.id
    in
    (* init: the producer of step 0 that plays the role of the previous
       iterate.  It is the producer of step 0 that is not among the
       non-prev producers of step 1 (all steps share the same defn). *)
    let init_id =
      if nsteps >= 2 then begin
        let step1_others =
          List.filter
            (fun p -> p <> chain_arr.(0).Func.id)
            (Func.producers chain_arr.(1))
        in
        match
          List.filter
            (fun p -> not (List.mem p step1_others))
            (Func.producers chain_arr.(0))
        with
        | [ p ] -> Some p
        | [] -> None (* zero-init chain: step 0 reads no previous iterate *)
        | _ :: _ -> invalid_arg "Plan.build: cannot identify smoother input"
      end
      else invalid_arg "Plan.build: diamond chain too short"
    in
    let src_basic pid =
      match Hashtbl.find_opt input_index pid with
      | Some i -> P_input i
      | None -> P_array (array_of_func pid)
    in
    let prev_pos = Array.make nsteps (-1) in
    let steps =
      Array.mapi
        (fun step (f : Func.t) ->
          let compiled =
            Compile.compile ~specialize:opts.Options.walk_kernels f ~params
          in
          let prev =
            match prev_id_of step with Some p -> Some p | None -> init_id
          in
          let src_of =
            Array.mapi
              (fun pi pid ->
                if prev = Some pid then begin
                  prev_pos.(step) <- pi;
                  (* placeholder: bound to a modulo buffer at exec *)
                  P_member 0
                end
                else src_basic pid)
              compiled.Compile.producers
          in
          { func = f;
            compiled;
            sizes;
            scratch_slot = None;
            array_id =
              (if step = nsteps - 1 then Some (array_of_func f.Func.id)
               else None);
            src_of })
        chain_arr
    in
    G_diamond
      { gid; steps; scheme; sizes; prev_pos;
        init_src = Option.map src_basic init_id }
  in
  let groups_exec =
    List.mapi
      (fun gi (g : Grouping.group) ->
        if g.Grouping.diamond then build_diamond gi g else build_tiled gi g)
      groups
    |> Array.of_list
  in
  ignore ngroups;
  { uid = Atomic.fetch_and_add uid_counter 1;
    pipeline;
    opts;
    n;
    groups = groups_exec;
    arrays;
    inputs;
    output_arrays = List.map (fun id -> (id, array_of_func id)) outputs }

let group_count t = Array.length t.groups
let array_count t = Array.length t.arrays

let total_array_bytes t =
  Array.fold_left (fun acc a -> acc + (8 * a.len)) 0 t.arrays

let scratch_bytes_per_thread t =
  Array.fold_left
    (fun acc g ->
      match g with
      | G_tiled tg ->
        Int.max acc
          (8 * Array.fold_left ( + ) 0 tg.scratch_slot_len)
      | G_diamond _ -> acc)
    0 t.groups

let member_count t =
  Array.fold_left
    (fun acc g ->
      match g with
      | G_tiled tg -> acc + Array.length tg.members
      | G_diamond dg -> acc + Array.length dg.steps)
    0 t.groups

let summary fmt t =
  Format.fprintf fmt "@[<v>plan: %s  n=%d  opts=%a@," (Pipeline.name t.pipeline)
    t.n Options.pp t.opts;
  Format.fprintf fmt "groups=%d arrays=%d array_bytes=%d scratch_bytes=%d@,"
    (group_count t) (array_count t) (total_array_bytes t)
    (scratch_bytes_per_thread t);
  Array.iter
    (fun g ->
      match g with
      | G_tiled tg ->
        Format.fprintf fmt
          "@[<v 2>group %d (overlapped, tiles=%s, %d tiles, redundancy %.1f%%)@,"
          tg.gid
          (String.concat "x"
             (Array.to_list (Array.map string_of_int tg.tile_sizes)))
          (Array.length tg.tiles)
          (100.0 *. Regions.redundancy tg.geom ~tile_sizes:tg.tile_sizes);
        Array.iter
          (fun m ->
            Format.fprintf fmt "%s%s%s@," m.func.Func.name
              (match m.scratch_slot with
               | Some s -> Printf.sprintf " scratch#%d" s
               | None -> "")
              (match m.array_id with
               | Some a -> Printf.sprintf " array#%d" a
               | None -> ""))
          tg.members;
        Format.fprintf fmt "@]@,"
      | G_diamond dg ->
        let scheme_str =
          match dg.scheme with
          | Sched_diamond { sigma } -> Printf.sprintf "diamond, sigma=%d" sigma
          | Sched_skewed { tau; sigma } ->
            Printf.sprintf "skewed, tau=%d sigma=%d" tau sigma
        in
        Format.fprintf fmt "@[<v 2>group %d (%s, %d steps)@," dg.gid scheme_str
          (Array.length dg.steps);
        Array.iter
          (fun m ->
            Format.fprintf fmt "%s%s@," m.func.Func.name
              (match m.array_id with
               | Some a -> Printf.sprintf " array#%d" a
               | None -> " (modulo buffer)"))
          dg.steps;
        Format.fprintf fmt "@]@,")
    t.groups;
  Format.fprintf fmt "@]"

(* The digest fingerprints the full summary dump (pipeline, options,
   grouping, storage mapping), memoized by uid — summary is O(members)
   to print and the digest is consulted per cycle by the recorder. *)
let digest_cache : (int, string) Hashtbl.t = Hashtbl.create 8
let digest_mutex = Mutex.create ()

let digest t =
  Mutex.lock digest_mutex;
  let d =
    match Hashtbl.find_opt digest_cache t.uid with
    | Some d -> d
    | None ->
      let d = Digest.to_hex (Digest.string (Format.asprintf "%a" summary t)) in
      Hashtbl.replace digest_cache t.uid d;
      d
  in
  Mutex.unlock digest_mutex;
  d
